//! The Figure-13 invariant as a test: at every tree level, the aggregated
//! KARL bounds are at least as tight as the aggregated SOTA bounds, and
//! both enclose the exact aggregate. (The paper's figure reports the same
//! quantities as averages; here they are asserted per level.)

use karl::core::{node_bounds, BoundMethod, Evaluator, Kernel};
use karl::data::{by_name, sample_queries};
use karl::geom::{norm2, Rect};

#[test]
fn karl_frontier_bounds_dominate_sota_at_every_level() {
    for (name, kernel) in [
        ("home", None),                       // Scott's-rule Gaussian
        ("nsl-kdd", Some(Kernel::gaussian(0.02))),
        ("ijcnn1", Some(Kernel::laplacian(1.0))),
    ] {
        let ds = by_name(name).unwrap().generate_n(2_000);
        let kernel = kernel.unwrap_or_else(|| {
            Kernel::gaussian(karl::kde::scotts_gamma(&ds.points))
        });
        let w = vec![1.0; ds.points.len()];
        let eval = Evaluator::<Rect>::build(&ds.points, &w, kernel, BoundMethod::Karl, 80);
        let tree = eval.pos_tree().expect("positive weights");
        let queries = sample_queries(&ds.points, 10, 9);
        for q in queries.iter() {
            let qn = norm2(q);
            let truth = eval.exact(q);
            for level in 0..=tree.max_depth() {
                let mut karl = (0.0, 0.0);
                let mut sota = (0.0, 0.0);
                for id in tree.frontier_at_depth(level) {
                    let node = tree.node(id);
                    let bk =
                        node_bounds(BoundMethod::Karl, &kernel, &node.shape, &node.stats, q, qn);
                    let bs =
                        node_bounds(BoundMethod::Sota, &kernel, &node.shape, &node.stats, q, qn);
                    karl.0 += bk.lb;
                    karl.1 += bk.ub;
                    sota.0 += bs.lb;
                    sota.1 += bs.ub;
                }
                let tol = 1e-7 * (1.0 + truth.abs());
                // Both bracket the truth…
                assert!(sota.0 <= truth + tol && truth <= sota.1 + tol, "{name} SOTA L{level}");
                assert!(karl.0 <= truth + tol && truth <= karl.1 + tol, "{name} KARL L{level}");
                // …and KARL is never looser (Lemmas 3–4 aggregated).
                assert!(karl.0 + tol >= sota.0, "{name} L{level}: KARL LB looser");
                assert!(karl.1 <= sota.1 + tol, "{name} L{level}: KARL UB looser");
            }
        }
    }
}

#[test]
fn frontier_bounds_tighten_monotonically_with_depth() {
    // Descending a level never loosens the aggregated bounds: children
    // volumes are contained in the parent volume.
    let ds = by_name("susy").unwrap().generate_n(1_500);
    let kernel = Kernel::gaussian(karl::kde::scotts_gamma(&ds.points));
    let w = vec![1.0; ds.points.len()];
    let eval = Evaluator::<Rect>::build(&ds.points, &w, kernel, BoundMethod::Karl, 16);
    let tree = eval.pos_tree().unwrap();
    let q = ds.points.point(7);
    let qn = norm2(q);
    let mut prev_gap = f64::INFINITY;
    for level in 0..=tree.max_depth() {
        let (mut lb, mut ub) = (0.0, 0.0);
        for id in tree.frontier_at_depth(level) {
            let node = tree.node(id);
            let b = node_bounds(BoundMethod::Karl, &kernel, &node.shape, &node.stats, q, qn);
            lb += b.lb;
            ub += b.ub;
        }
        let gap = ub - lb;
        assert!(
            gap <= prev_gap + 1e-9 * (1.0 + prev_gap.abs()),
            "gap grew from {prev_gap} to {gap} at level {level}"
        );
        prev_gap = gap;
    }
}
