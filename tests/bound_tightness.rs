//! The Figure-13 invariant as a test: at every tree level, the aggregated
//! KARL bounds are at least as tight as the aggregated SOTA bounds, and
//! both enclose the exact aggregate. (The paper's figure reports the same
//! quantities as averages; here they are asserted per level.)

use karl::core::{
    node_bounds, pair_bounds_frozen, BoundMethod, DualQueryContext, Evaluator, Kernel, QueryRegion,
};
use karl::data::{by_name, sample_queries};
use karl::geom::{norm2, PointSet, Rect};
use karl::tree::{freeze_built, NodeShape, NodeStats};
use karl_testkit::oracle::{check_bracket, check_tighter, exact_sum, Interval};
use karl_testkit::rng::{Rng, SeedableRng, StdRng};

#[test]
fn karl_frontier_bounds_dominate_sota_at_every_level() {
    for (name, kernel) in [
        ("home", None),                       // Scott's-rule Gaussian
        ("nsl-kdd", Some(Kernel::gaussian(0.02))),
        ("ijcnn1", Some(Kernel::laplacian(1.0))),
    ] {
        let ds = by_name(name).unwrap().generate_n(2_000);
        let kernel = kernel.unwrap_or_else(|| {
            Kernel::gaussian(karl::kde::scotts_gamma(&ds.points))
        });
        let w = vec![1.0; ds.points.len()];
        let eval = Evaluator::<Rect>::build(&ds.points, &w, kernel, BoundMethod::Karl, 80);
        let tree = eval.pos_tree().expect("positive weights");
        let queries = sample_queries(&ds.points, 10, 9);
        for q in queries.iter() {
            let qn = norm2(q);
            let truth = eval.exact(q);
            for level in 0..=tree.max_depth() {
                let mut karl = (0.0, 0.0);
                let mut sota = (0.0, 0.0);
                for id in tree.frontier_at_depth(level) {
                    let node = tree.node(id);
                    let bk =
                        node_bounds(BoundMethod::Karl, &kernel, &node.shape, &node.stats, q, qn);
                    let bs =
                        node_bounds(BoundMethod::Sota, &kernel, &node.shape, &node.stats, q, qn);
                    karl.0 += bk.lb;
                    karl.1 += bk.ub;
                    sota.0 += bs.lb;
                    sota.1 += bs.ub;
                }
                let tol = 1e-7 * (1.0 + truth.abs());
                // Both bracket the truth…
                assert!(sota.0 <= truth + tol && truth <= sota.1 + tol, "{name} SOTA L{level}");
                assert!(karl.0 <= truth + tol && truth <= karl.1 + tol, "{name} KARL L{level}");
                // …and KARL is never looser (Lemmas 3–4 aggregated).
                assert!(karl.0 + tol >= sota.0, "{name} L{level}: KARL LB looser");
                assert!(karl.1 <= sota.1 + tol, "{name} L{level}: KARL UB looser");
            }
        }
    }
}

/// Oracle-backed per-node soundness and Lemma-3 tightness: for random
/// synthetic nodes, the brute-force kernel sum `F_P(q)` (computed by the
/// testkit oracle, not by any library fast path) must satisfy
/// `LB ≤ F_P(q) ≤ UB` for both bound methods, and KARL's chord upper
/// bound must never exceed SOTA's constant upper bound.
#[test]
fn random_nodes_bracket_oracle_sum_and_karl_ub_dominates() {
    let kernels = [
        Kernel::gaussian(0.8),
        Kernel::laplacian(0.6),
        Kernel::polynomial(0.3, 0.2, 3),
        Kernel::sigmoid(0.4, 0.1),
    ];
    let mut rng = StdRng::seed_from_u64(0xB0_0B5);
    for trial in 0..200 {
        let n = rng.random_range(1usize..40);
        let d = rng.random_range(1usize..5);
        let mut rows = Vec::with_capacity(n);
        for _ in 0..n {
            rows.push((0..d).map(|_| rng.random_range(-2.5..2.5)).collect::<Vec<f64>>());
        }
        let ps = PointSet::from_rows(&rows);
        let w: Vec<f64> = (0..n).map(|_| rng.random_range(0.05..3.0)).collect();
        let q: Vec<f64> = (0..d).map(|_| rng.random_range(-3.0..3.0)).collect();
        let qn = norm2(&q);
        let kernel = kernels[trial % kernels.len()];

        let stats = NodeStats::from_range(&ps, &w, 0, n);
        let idx: Vec<usize> = (0..n).collect();
        let rect = Rect::bounding(&ps, &idx);

        // The oracle: a plain Σ wᵢ·k(q, xᵢ) loop over raw slices.
        let truth = exact_sum(rows.iter().map(|r| r.as_slice()), &w, &q, |a, b| {
            kernel.eval(a, b)
        });

        let karl = node_bounds(BoundMethod::Karl, &kernel, &rect, &stats, &q, qn);
        let sota = node_bounds(BoundMethod::Sota, &kernel, &rect, &stats, &q, qn);

        check_bracket(karl.lb, truth, karl.ub, 1e-7)
            .unwrap_or_else(|e| panic!("trial {trial} KARL: {e}"));
        check_bracket(sota.lb, truth, sota.ub, 1e-7)
            .unwrap_or_else(|e| panic!("trial {trial} SOTA: {e}"));
        // Lemma 3: the full KARL interval sits inside SOTA's.
        check_tighter(
            Interval::new(karl.lb, karl.ub.max(karl.lb)),
            Interval::new(sota.lb, sota.ub.max(sota.lb)),
            1e-7,
        )
        .unwrap_or_else(|e| panic!("trial {trial} ({kernel:?}): {e}"));
    }
}

/// Node-vs-node soundness against the brute-force oracle: for every
/// query-tree node × data-tree node pair, the joint interval produced by
/// the dual pair kernels must bracket `Σ wᵢ·k(q, xᵢ)` over the data
/// node's points for **every** query stored in the query node — the
/// invariant [`QueryBatch::run_dual`]'s wholesale decisions rest on.
///
/// The query set deliberately contains exact duplicates so some query
/// leaves have zero-volume (single-point) bounding volumes, pinning the
/// degenerate end of the joint-interval math.
#[test]
fn joint_pair_bounds_bracket_the_oracle_for_every_member_query() {
    fn check_family<S: NodeShape>() {
        let mut rng = StdRng::seed_from_u64(0xD0A1);
        let n = 260;
        let d = 3;
        let mut rows = Vec::with_capacity(n);
        for _ in 0..n {
            rows.push(
                (0..d)
                    .map(|_| rng.random_range(-2.0..2.0))
                    .collect::<Vec<f64>>(),
            );
        }
        let ps = PointSet::from_rows(&rows);
        let w: Vec<f64> = (0..n).map(|_| rng.random_range(0.05..2.0)).collect();
        let (dtree, dfrozen) = freeze_built::<S>(ps, &w, 16);

        // 12 distinct queries, each duplicated → zero-volume query leaves.
        let mut qrows = Vec::new();
        for _ in 0..12 {
            let q: Vec<f64> = (0..d).map(|_| rng.random_range(-2.5..2.5)).collect();
            qrows.push(q.clone());
            qrows.push(q);
        }
        let qps = PointSet::from_rows(&qrows);
        let ones = vec![1.0; qps.len()];
        let (qtree, qfrozen) = freeze_built::<S>(qps, &ones, 3);

        let kernels = [
            Kernel::gaussian(0.8),
            Kernel::laplacian(0.6),
            Kernel::polynomial(0.3, 0.2, 2),
            Kernel::sigmoid(0.2, 0.1),
        ];
        for kernel in kernels {
            for method in [BoundMethod::Karl, BoundMethod::Sota] {
                for qnode in 0..qfrozen.num_nodes() as u32 {
                    let ctx = DualQueryContext::from_frozen(&kernel, method, &qfrozen, qnode);
                    let (qs, qe) = qfrozen.range(qnode);
                    for dnode in 0..dfrozen.num_nodes() as u32 {
                        let b = pair_bounds_frozen(&ctx, &dfrozen, dnode);
                        let (ds, de) = dfrozen.range(dnode);
                        for qi in qs..qe {
                            let q = qtree.points().point(qi);
                            let truth = exact_sum(
                                (ds..de).map(|i| dtree.points().point(i)),
                                &dtree.weights()[ds..de],
                                q,
                                |a, b| kernel.eval(a, b),
                            );
                            check_bracket(b.lb, truth, b.ub, 1e-7).unwrap_or_else(|e| {
                                panic!("{kernel:?} {method:?} q{qnode} x d{dnode}: {e}")
                            });
                        }
                    }
                }
            }
        }
    }
    check_family::<Rect>();
    check_family::<karl::geom::Ball>();
}

/// The joint interval must hold not just for the stored queries but for
/// *any* point of the query region — sampled interior points and the
/// region's corners all get bracketed by the root pair's bounds.
#[test]
fn joint_pair_bounds_hold_for_sampled_points_of_the_region() {
    let mut rng = StdRng::seed_from_u64(0xD0A2);
    let n = 220;
    let d = 3;
    let mut rows = Vec::with_capacity(n);
    for _ in 0..n {
        rows.push(
            (0..d)
                .map(|_| rng.random_range(-2.0..2.0))
                .collect::<Vec<f64>>(),
        );
    }
    let ps = PointSet::from_rows(&rows);
    let w: Vec<f64> = (0..n).map(|_| rng.random_range(0.05..2.0)).collect();
    let (dtree, dfrozen) = freeze_built::<Rect>(ps, &w, 12);

    let lo = [-1.25, -0.5, 0.25];
    let hi = [0.5, 0.75, 1.5];
    let kernel = Kernel::gaussian(0.7);
    for method in [BoundMethod::Karl, BoundMethod::Sota] {
        let ctx = DualQueryContext::new(&kernel, method, QueryRegion::Rect { lo: &lo, hi: &hi });
        // 8 corners + 24 interior samples of the region.
        let mut samples: Vec<Vec<f64>> = (0..8u32)
            .map(|m| {
                (0..d)
                    .map(|j| if m >> j & 1 == 1 { hi[j] } else { lo[j] })
                    .collect()
            })
            .collect();
        for _ in 0..24 {
            samples.push(
                (0..d)
                    .map(|j| rng.random_range(lo[j]..=hi[j]))
                    .collect::<Vec<f64>>(),
            );
        }
        for dnode in 0..dfrozen.num_nodes() as u32 {
            let b = pair_bounds_frozen(&ctx, &dfrozen, dnode);
            let (ds, de) = dfrozen.range(dnode);
            for q in &samples {
                let truth = exact_sum(
                    (ds..de).map(|i| dtree.points().point(i)),
                    &dtree.weights()[ds..de],
                    q,
                    |a, b| kernel.eval(a, b),
                );
                check_bracket(b.lb, truth, b.ub, 1e-7)
                    .unwrap_or_else(|e| panic!("{method:?} d{dnode} q={q:?}: {e}"));
            }
        }
    }
}

#[test]
fn frontier_bounds_tighten_monotonically_with_depth() {
    // Descending a level never loosens the aggregated bounds: children
    // volumes are contained in the parent volume.
    let ds = by_name("susy").unwrap().generate_n(1_500);
    let kernel = Kernel::gaussian(karl::kde::scotts_gamma(&ds.points));
    let w = vec![1.0; ds.points.len()];
    let eval = Evaluator::<Rect>::build(&ds.points, &w, kernel, BoundMethod::Karl, 16);
    let tree = eval.pos_tree().unwrap();
    let q = ds.points.point(7);
    let qn = norm2(q);
    let mut prev_gap = f64::INFINITY;
    for level in 0..=tree.max_depth() {
        let (mut lb, mut ub) = (0.0, 0.0);
        for id in tree.frontier_at_depth(level) {
            let node = tree.node(id);
            let b = node_bounds(BoundMethod::Karl, &kernel, &node.shape, &node.stats, q, qn);
            lb += b.lb;
            ub += b.ub;
        }
        let gap = ub - lb;
        assert!(
            gap <= prev_gap + 1e-9 * (1.0 + prev_gap.abs()),
            "gap grew from {prev_gap} to {gap} at level {level}"
        );
        prev_gap = gap;
    }
}
