//! Serve-loop fault quarantine under *injected* faults (feature
//! `fault-inject`): the fault plan addresses **dispatch ordinals** — "the
//! k-th request handed to the engine" — via the base offset the serve
//! loop installs before each micro-batch group, so a panic can be aimed
//! at a request in the middle of a served stream. The poisoned request
//! must get a typed error line; every other request keeps bits identical
//! to an uninjected run of the same script, at 1, 2, 4 and 8 threads.

#![cfg(feature = "fault-inject")]

use std::collections::BTreeMap;
use std::io::Cursor;

use karl::core::{
    fault, parse_json, AnyEvaluator, BoundMethod, Fault, Json, Kernel, ServeConfig, Server,
};
use karl::geom::PointSet;
use karl_testkit::rng::{Rng, SeedableRng, StdRng};
use karl_testkit::serve_script::ScriptBuilder;

fn clustered(n: usize, d: usize, seed: u64) -> PointSet {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut data = Vec::with_capacity(n * d);
    for i in 0..n {
        let center = if i % 2 == 0 { -2.0 } else { 2.0 };
        for _ in 0..d {
            data.push(center + rng.random_range(-0.5..0.5));
        }
    }
    PointSet::new(d, data)
}

fn evaluator() -> AnyEvaluator {
    // Injected panics are expected; silence the default backtrace spew.
    static QUIET: std::sync::Once = std::sync::Once::new();
    QUIET.call_once(|| std::panic::set_hook(Box::new(|_| {})));
    let ps = clustered(300, 2, 5);
    let n = ps.len();
    let w = vec![1.0 / n as f64; n];
    use karl::core::IndexKind;
    AnyEvaluator::build(
        IndexKind::Kd,
        &ps,
        &w,
        Kernel::gaussian(0.8),
        BoundMethod::Karl,
        16,
    )
}

fn script() -> (String, Vec<u64>) {
    let mut s = ScriptBuilder::new();
    let mut rng = StdRng::seed_from_u64(11);
    // batch_max 4 below → micro-batches [0..4), [4..8), drain [8..10).
    let ids = s.ekaq_burst(10, 2, 0.05, -2.5..2.5, &mut rng);
    s.shutdown();
    (s.build(), ids)
}

fn run(eval: &AnyEvaluator, threads: usize, script: &str) -> (String, u64) {
    let cfg = ServeConfig {
        batch_max: 4,
        threads: Some(threads),
        ..ServeConfig::default()
    };
    let mut server = Server::new(eval, cfg).unwrap();
    let mut out = Vec::new();
    server
        .run(Cursor::new(script.as_bytes().to_vec()), &mut out, std::io::sink())
        .unwrap();
    let faulted = server.stats().faulted;
    (String::from_utf8(out).unwrap(), faulted)
}

fn answers(transcript: &str) -> BTreeMap<u64, (String, Option<u64>)> {
    let mut map = BTreeMap::new();
    for line in transcript.lines() {
        let v = parse_json(line).expect("well-formed response");
        let Some(id) = v.get("id").and_then(Json::as_f64) else {
            continue;
        };
        let status = v.get("status").and_then(Json::as_str).unwrap().to_string();
        let bits = v.get("answer").and_then(Json::as_f64).map(f64::to_bits);
        assert!(map.insert(id as u64, (status, bits)).is_none(), "dup id {id}");
    }
    map
}

/// A panic aimed at dispatch ordinal 5 — the second request of the
/// *second* micro-batch — poisons exactly that request; its batch
/// neighbors and every other micro-batch keep the uninjected bits.
#[test]
fn injected_panic_hits_one_dispatch_ordinal_and_nothing_else() {
    let eval = evaluator();
    let (script, ids) = script();
    let baseline = answers(&run(&eval, 2, &script).0);

    for threads in [1usize, 2, 4, 8] {
        let _guard = fault::inject(&[(5usize, Fault::Panic)]);
        let (transcript, faulted) = run(&eval, threads, &script);
        drop(_guard);
        assert_eq!(faulted, 1, "{threads} threads");
        let got = answers(&transcript);
        for (slot, id) in ids.iter().enumerate() {
            if slot == 5 {
                assert_eq!(got[id].0, "error", "{threads} threads");
                assert!(
                    transcript.contains("panicked"),
                    "typed panic error expected: {transcript}"
                );
            } else {
                assert_eq!(
                    got[id], baseline[id],
                    "slot {slot} at {threads} threads must keep its bits"
                );
            }
        }
    }
}

/// The base offset really is per-group: a plan index beyond every
/// dispatched ordinal never fires, and serving resets the base so later
/// standalone `QueryBatch` runs are not misaddressed.
#[test]
fn plan_indices_beyond_the_stream_never_fire_and_base_resets() {
    let eval = evaluator();
    let (script, _ids) = script();
    let _guard = fault::inject(&[(99usize, Fault::Panic)]);
    let (transcript, faulted) = run(&eval, 2, &script);
    assert_eq!(faulted, 0);
    assert!(!transcript.contains("\"status\":\"error\""));
    assert_eq!(fault::base(), 0, "serve must leave the base reset");
}
