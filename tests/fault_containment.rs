//! Batch fault containment under injected faults (feature `fault-inject`):
//! with panics / NaN queries forced at chosen indices, `try_run` must
//! return `Err` for exactly those queries — with the right error variant —
//! and **bitwise identical** `Ok` outcomes for every other query, at 1, 2,
//! 4 and 8 threads. A panicking query also quarantines the worker's
//! scratch (it is discarded, never reused).
#![cfg(feature = "fault-inject")]

use karl::core::{
    fault, BoundMethod, Coreset, Evaluator, Fault, KarlError, Kernel, Outcome, Query, QueryBatch,
};
use karl::geom::{PointSet, Rect};
use karl_testkit::rng::{Rng, SeedableRng, StdRng};

fn clustered(n: usize, d: usize, seed: u64) -> PointSet {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut data = Vec::with_capacity(n * d);
    for i in 0..n {
        let center = if i % 2 == 0 { -2.0 } else { 2.0 };
        for _ in 0..d {
            data.push(center + rng.random_range(-0.5..0.5));
        }
    }
    PointSet::new(d, data)
}

fn setup() -> (Evaluator<Rect>, PointSet) {
    // Injected panics are expected here by the dozen; silence the default
    // per-panic backtrace spew once for the whole binary.
    static QUIET: std::sync::Once = std::sync::Once::new();
    QUIET.call_once(|| std::panic::set_hook(Box::new(|_| {})));
    let ps = clustered(400, 3, 1);
    let w: Vec<f64> = (0..400).map(|i| 0.3 + (i % 5) as f64 * 0.2).collect();
    let eval = Evaluator::<Rect>::build(&ps, &w, Kernel::gaussian(0.6), BoundMethod::Karl, 8);
    let queries = clustered(67, 3, 2);
    (eval, queries)
}

fn healthy_outcomes(eval: &Evaluator<Rect>, queries: &PointSet) -> Vec<Outcome> {
    QueryBatch::new(queries, Query::Ekaq { eps: 0.1 })
        .threads(1)
        .try_run(eval)
        .unwrap()
        .results()
        .iter()
        .map(|r| *r.as_ref().unwrap())
        .collect()
}

#[test]
fn injected_faults_poison_exactly_their_own_slots() {
    let (eval, queries) = setup();
    let baseline = healthy_outcomes(&eval, &queries);
    let plan = [(3usize, Fault::Panic), (17, Fault::Nan), (40, Fault::Panic)];
    let _guard = fault::inject(&plan);
    for threads in [1, 2, 4, 8] {
        let report = QueryBatch::new(&queries, Query::Ekaq { eps: 0.1 })
            .threads(threads)
            .try_run(&eval)
            .unwrap();
        assert_eq!(report.len(), queries.len());
        assert_eq!(report.failed_indices(), vec![3, 17, 40], "x{threads}");
        assert_eq!(report.ok_count(), queries.len() - 3);
        assert!(report.has_failures());
        // Exactly the two panicking queries quarantined a scratch.
        assert_eq!(report.quarantined(), 2, "x{threads}");
        for (i, result) in report.results().iter().enumerate() {
            match result {
                Ok(out) => {
                    // Healthy slots carry the same bits as an all-healthy
                    // run — faults must not perturb their neighbours.
                    let b = &baseline[i];
                    assert_eq!(out.lb().to_bits(), b.lb().to_bits(), "query {i} x{threads}");
                    assert_eq!(out.ub().to_bits(), b.ub().to_bits(), "query {i} x{threads}");
                }
                Err(KarlError::QueryPanicked { index, message }) => {
                    assert_eq!(*index, i);
                    assert!(matches!(i, 3 | 40), "unexpected panic slot {i}");
                    assert!(message.contains("injected fault"), "{message}");
                }
                Err(KarlError::NonFiniteQuery { value, .. }) => {
                    assert_eq!(i, 17);
                    assert!(value.is_nan());
                }
                Err(e) => panic!("query {i}: unexpected error {e}"),
            }
        }
    }
}

#[test]
fn guard_drop_clears_the_plan() {
    let (eval, queries) = setup();
    {
        let _guard = fault::inject(&[(0, Fault::Panic)]);
        let report = QueryBatch::new(&queries, Query::Tkaq { tau: 0.5 })
            .threads(2)
            .try_run(&eval)
            .unwrap();
        assert_eq!(report.failed_indices(), vec![0]);
    }
    // Plan cleared on drop: the same batch is now fully healthy.
    let report = QueryBatch::new(&queries, Query::Tkaq { tau: 0.5 })
        .threads(2)
        .try_run(&eval)
        .unwrap();
    assert!(!report.has_failures());
    assert_eq!(report.quarantined(), 0);
}

#[test]
fn all_faulted_batch_still_completes() {
    let (eval, queries) = setup();
    let plan: Vec<(usize, Fault)> = (0..queries.len()).map(|i| (i, Fault::Panic)).collect();
    let _guard = fault::inject(&plan);
    for threads in [1, 4] {
        let report = QueryBatch::new(&queries, Query::Ekaq { eps: 0.1 })
            .threads(threads)
            .try_run(&eval)
            .unwrap();
        assert_eq!(report.ok_count(), 0);
        assert_eq!(report.quarantined(), queries.len());
        assert_eq!(report.failed_indices().len(), queries.len());
    }
}

#[test]
fn dual_path_poisons_exactly_the_planted_slots() {
    // The dual descent decides whole query nodes wholesale — a planted
    // fault must still surface in exactly its own slot (fault-planned
    // queries are excluded from wholesale acceptance), and every other
    // slot must carry the same bits as a healthy dual run.
    let (eval, queries) = setup();
    let query = Query::Tkaq { tau: 0.05 };
    let healthy: Vec<Outcome> = QueryBatch::new(&queries, query)
        .threads(1)
        .try_run_dual(&eval)
        .unwrap()
        .results()
        .iter()
        .map(|r| *r.as_ref().unwrap())
        .collect();
    let plan = [(3usize, Fault::Panic), (17, Fault::Nan), (40, Fault::Panic)];
    let _guard = fault::inject(&plan);
    for threads in [1, 2, 4, 8] {
        let report = QueryBatch::new(&queries, query)
            .threads(threads)
            .try_run_dual(&eval)
            .unwrap();
        assert_eq!(report.failed_indices(), vec![3, 17, 40], "x{threads}");
        assert_eq!(report.quarantined(), 2, "x{threads}");
        for (i, result) in report.results().iter().enumerate() {
            match result {
                Ok(out) => {
                    let b = &healthy[i];
                    assert_eq!(out.lb().to_bits(), b.lb().to_bits(), "query {i} x{threads}");
                    assert_eq!(out.ub().to_bits(), b.ub().to_bits(), "query {i} x{threads}");
                }
                Err(KarlError::QueryPanicked { index, message }) => {
                    assert_eq!(*index, i);
                    assert!(matches!(i, 3 | 40), "unexpected panic slot {i}");
                    assert!(message.contains("injected fault"), "{message}");
                }
                Err(KarlError::NonFiniteQuery { value, .. }) => {
                    assert_eq!(i, 17);
                    assert!(value.is_nan());
                }
                Err(e) => panic!("query {i}: unexpected error {e}"),
            }
        }
    }
}

#[test]
fn dual_wholesale_never_masks_a_planted_fault() {
    // Even when the joint interval would have decided the faulted query's
    // whole node, the fault wins: plant a fault at every index in turn of
    // one query leaf's worth of slots and check it always errs.
    let (eval, queries) = setup();
    let query = Query::Tkaq { tau: 0.01 };
    let clean = QueryBatch::new(&queries, query)
        .threads(1)
        .try_run_dual(&eval)
        .unwrap();
    assert!(
        clean.dual_wholesale() > 0,
        "setup must produce wholesale decisions for the test to bite"
    );
    for victim in [0usize, 11, 33, 66] {
        let _guard = fault::inject(&[(victim, Fault::Panic)]);
        let report = QueryBatch::new(&queries, query)
            .threads(2)
            .try_run_dual(&eval)
            .unwrap();
        assert_eq!(report.failed_indices(), vec![victim]);
    }
}

#[test]
fn cascade_path_poisons_exactly_the_planted_slots() {
    // With the coreset cascade enabled, planted faults must still surface
    // in exactly their own slots (fault-planned queries skip the tier and
    // fail through the plain budgeted path), and every healthy slot must
    // carry the same bits as a healthy *cascade* run at any thread count.
    let (eval, queries) = setup();
    let ps = clustered(400, 3, 1);
    let w: Vec<f64> = (0..400).map(|i| 0.3 + (i % 5) as f64 * 0.2).collect();
    let coreset = Coreset::try_build(&ps, &w, Kernel::gaussian(0.6), 0.05).unwrap();
    let cascade = eval.with_coreset_tier(&coreset, 8).unwrap();
    let query = Query::Ekaq { eps: 0.1 };
    let healthy: Vec<Outcome> = QueryBatch::new(&queries, query)
        .threads(1)
        .coreset(true)
        .try_run(&cascade)
        .unwrap()
        .results()
        .iter()
        .map(|r| *r.as_ref().unwrap())
        .collect();
    let plan = [(3usize, Fault::Panic), (17, Fault::Nan), (40, Fault::Panic)];
    let _guard = fault::inject(&plan);
    for threads in [1, 2, 4, 8] {
        let report = QueryBatch::new(&queries, query)
            .threads(threads)
            .coreset(true)
            .try_run(&cascade)
            .unwrap();
        assert_eq!(report.failed_indices(), vec![3, 17, 40], "x{threads}");
        assert_eq!(report.quarantined(), 2, "x{threads}");
        // Tier accounting excludes the three fault-planned (bypassed)
        // queries and is identical at every thread count.
        assert_eq!(
            report.coreset_decided() + report.coreset_fallthrough(),
            (queries.len() - plan.len()) as u64,
            "x{threads}"
        );
        for (i, result) in report.results().iter().enumerate() {
            match result {
                Ok(out) => {
                    let b = &healthy[i];
                    assert_eq!(out.lb().to_bits(), b.lb().to_bits(), "query {i} x{threads}");
                    assert_eq!(out.ub().to_bits(), b.ub().to_bits(), "query {i} x{threads}");
                }
                Err(KarlError::QueryPanicked { index, message }) => {
                    assert_eq!(*index, i);
                    assert!(matches!(i, 3 | 40), "unexpected panic slot {i}");
                    assert!(message.contains("injected fault"), "{message}");
                }
                Err(KarlError::NonFiniteQuery { value, .. }) => {
                    assert_eq!(i, 17);
                    assert!(value.is_nan());
                }
                Err(e) => panic!("query {i}: unexpected error {e}"),
            }
        }
    }
}

#[test]
fn envelope_cache_survives_containment_with_identical_bits() {
    // The quarantine path re-enables the envelope-cache flag on the fresh
    // scratch; with faults injected, cached healthy outcomes must still be
    // bitwise identical to the uncached baseline.
    let (eval, queries) = setup();
    let baseline = healthy_outcomes(&eval, &queries);
    let _guard = fault::inject(&[(5, Fault::Panic)]);
    for threads in [1, 4, 8] {
        let report = QueryBatch::new(&queries, Query::Ekaq { eps: 0.1 })
            .threads(threads)
            .envelope_cache(true)
            .try_run(&eval)
            .unwrap();
        assert_eq!(report.failed_indices(), vec![5]);
        for (i, result) in report.results().iter().enumerate() {
            if let Ok(out) = result {
                assert_eq!(out.lb().to_bits(), baseline[i].lb().to_bits(), "query {i}");
                assert_eq!(out.ub().to_bits(), baseline[i].ub().to_bits(), "query {i}");
            }
        }
    }
}
