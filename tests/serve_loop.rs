//! End-to-end contract of the online serve loop (`karl_core::serve`):
//!
//! * a fixed request script with a fixed queue capacity produces the same
//!   admitted/shed/rejected partition and a **byte-identical** response
//!   transcript at 1/2/4/8 worker threads,
//! * answers for admitted, un-shed requests are bitwise identical to an
//!   offline [`QueryBatch`] over the same queries,
//! * a poisoned request (NaN coordinates on the wire) gets a typed error
//!   line while its micro-batch neighbors keep their exact bits,
//! * graceful drain: every admitted request is answered exactly once,
//!   whether the script ends in `shutdown` or plain EOF,
//! * an already-expired per-request deadline (`deadline_ms: 0`) answers
//!   from the certified root interval with zero refinement work,
//! * malformed lines get typed protocol errors without disturbing their
//!   neighbors, and invalid configurations are rejected up front.

use std::collections::BTreeMap;
use std::io::Cursor;

use karl::core::{
    parse_json, AnyEvaluator, BoundMethod, Budget, IndexKind, Json, Kernel, Query, QueryBatch,
    ServeConfig, ServeStats, Server,
};
use karl::geom::PointSet;
use karl_testkit::rng::{Rng, SeedableRng, StdRng};
use karl_testkit::serve_script::ScriptBuilder;

fn clustered(n: usize, d: usize, seed: u64) -> PointSet {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut data = Vec::with_capacity(n * d);
    for i in 0..n {
        let center = if i % 2 == 0 { -2.0 } else { 2.0 };
        for _ in 0..d {
            data.push(center + rng.random_range(-0.5..0.5));
        }
    }
    PointSet::new(d, data)
}

fn evaluator(seed: u64) -> AnyEvaluator {
    let ps = clustered(400, 2, seed);
    let n = ps.len();
    let w = vec![1.0 / n as f64; n];
    AnyEvaluator::build(
        IndexKind::Kd,
        &ps,
        &w,
        Kernel::gaussian(0.8),
        BoundMethod::Karl,
        16,
    )
}

/// Runs `script` through a fresh server, returning the response
/// transcript, the final counters, and whether `shutdown` ended the loop.
fn run_script(eval: &AnyEvaluator, cfg: ServeConfig, script: &str) -> (String, ServeStats, bool) {
    let mut server = Server::new(eval, cfg).expect("valid config");
    let mut out = Vec::new();
    let mut log = Vec::new();
    server
        .run(Cursor::new(script.as_bytes().to_vec()), &mut out, &mut log)
        .expect("in-memory transport cannot fail");
    let stats = server.stats().clone();
    let shutdown = server.shutdown_requested();
    (String::from_utf8(out).expect("utf-8 transcript"), stats, shutdown)
}

/// Parses every transcript line that carries an `id` into `id ->
/// (status, answer-bits)` — duplicate ids are a drain violation, so they
/// panic here.
fn responses_by_id(transcript: &str) -> BTreeMap<u64, (String, Option<u64>)> {
    let mut map = BTreeMap::new();
    for line in transcript.lines().filter(|l| !l.trim().is_empty()) {
        let v = parse_json(line).unwrap_or_else(|e| panic!("bad response line {line:?}: {e}"));
        let Some(id) = v.get("id").and_then(Json::as_f64) else {
            continue;
        };
        let status = v
            .get("status")
            .and_then(Json::as_str)
            .unwrap_or_else(|| panic!("no status in {line:?}"))
            .to_string();
        let answer = v.get("answer").and_then(Json::as_f64).map(f64::to_bits);
        let prev = map.insert(id as u64, (status, answer));
        assert!(prev.is_none(), "id {id} answered twice");
    }
    map
}

fn burst_config(threads: usize) -> ServeConfig {
    ServeConfig {
        queue_cap: 6,
        shed_at: 4,
        // Larger than the queue: dispatch never triggers on its own, so
        // the admission script alone decides who is shed and who is
        // rejected — the overflow burst is deterministic by construction.
        batch_max: 100,
        threads: Some(threads),
        budget: Budget::unlimited(),
        summary_every: 0,
    }
}

/// Eight requests against capacity 6 / shed watermark 4: 1–4 run
/// normally, 5–6 are shed, 7–8 are rejected. The partition and the full
/// transcript must not depend on the worker thread count.
#[test]
fn overload_partition_and_transcript_are_identical_at_any_thread_count() {
    let eval = evaluator(42);
    let mut script = ScriptBuilder::new();
    let mut rng = StdRng::seed_from_u64(9);
    let ids = script.ekaq_burst(8, 2, 0.05, -2.5..2.5, &mut rng);
    script.flush();
    script.stats();
    script.shutdown();
    let script = script.build();

    let mut transcripts = Vec::new();
    for threads in [1usize, 2, 4, 8] {
        let (transcript, stats, shutdown) = run_script(&eval, burst_config(threads), &script);
        assert!(shutdown);
        assert_eq!(
            (stats.queries, stats.admitted, stats.shed, stats.rejected),
            (8, 6, 2, 2),
            "admission partition at {threads} threads"
        );
        assert_eq!(stats.queue_depth_max, 6);
        let by_id = responses_by_id(&transcript);
        for &id in &ids[0..4] {
            assert_eq!(by_id[&id].0, "ok", "id {id} at {threads} threads");
        }
        for &id in &ids[4..6] {
            let status = &by_id[&id].0;
            // A shed request may still complete: the root interval can
            // decide an eKAQ outright. Either way it never runs refinement.
            assert!(
                status == "shed" || status == "ok",
                "id {id} at {threads} threads: {status}"
            );
        }
        for &id in &ids[6..8] {
            assert_eq!(by_id[&id].0, "rejected", "id {id} at {threads} threads");
        }
        transcripts.push(transcript);
    }
    // The `stats` response embeds the resolved worker-thread count — the
    // one transcript field that reflects configuration, not the script.
    // Every other byte (answers, intervals, rejections, order) is pinned.
    let strip_stats = |t: &str| {
        t.lines()
            .filter(|l| !l.contains("\"status\":\"stats\""))
            .collect::<Vec<_>>()
            .join("\n")
    };
    for t in &transcripts[1..] {
        assert_eq!(
            strip_stats(t).as_bytes(),
            strip_stats(&transcripts[0]).as_bytes(),
            "transcript must be byte-identical across thread counts"
        );
    }
    // The `stats` response is part of the transcript, so the counters in
    // it are pinned too.
    assert!(transcripts[0].contains("\"admitted\":6,\"rejected\":2,\"shed\":2"));
}

/// Served answers carry the exact bits of an offline `QueryBatch` over
/// the same query points — serving changes scheduling, never answers.
#[test]
fn served_answers_are_bitwise_identical_to_offline_batch() {
    let eval = evaluator(43);
    let mut rng = StdRng::seed_from_u64(17);
    let queries: Vec<Vec<f64>> = (0..12)
        .map(|_| (0..2).map(|_| rng.random_range(-2.5..2.5)).collect())
        .collect();

    let mut script = ScriptBuilder::new();
    let ids: Vec<u64> = queries.iter().map(|q| script.ekaq(0.05, q)).collect();
    script.shutdown();
    let cfg = ServeConfig {
        batch_max: 5, // several micro-batches plus a drain remainder
        threads: Some(2),
        ..ServeConfig::default()
    };
    let (transcript, stats, _) = run_script(&eval, cfg, &script.build());
    assert_eq!(stats.batches, 3, "12 requests at batch_max 5 → 5+5+2");
    let by_id = responses_by_id(&transcript);

    let flat: Vec<f64> = queries.iter().flatten().copied().collect();
    let offline_queries = PointSet::new(2, flat);
    let offline = QueryBatch::new(&offline_queries, Query::Ekaq { eps: 0.05 })
        .threads(4) // any thread count: the engine is bitwise deterministic
        .try_run_any(&eval)
        .expect("offline batch");
    for (slot, &id) in ids.iter().enumerate() {
        let outcome = offline.results()[slot].as_ref().expect("healthy query");
        let expected = offline.answer(outcome).to_bits();
        let (status, answer) = &by_id[&id];
        assert_eq!(status, "ok");
        assert_eq!(
            answer.expect("ok carries an answer"),
            expected,
            "served id {id} (slot {slot}) must match offline bits"
        );
    }
}

/// One NaN request in the middle of a micro-batch: it gets a typed error
/// line, everyone else keeps the exact bits of a fully-healthy run.
#[test]
fn poisoned_request_is_contained_and_neighbors_keep_their_bits() {
    let eval = evaluator(44);
    let mut rng = StdRng::seed_from_u64(23);
    let healthy: Vec<Vec<f64>> = (0..6)
        .map(|_| (0..2).map(|_| rng.random_range(-2.5..2.5)).collect())
        .collect();

    // Poisoned run: healthy[0..3], NaN, healthy[3..6] — one micro-batch.
    let mut script = ScriptBuilder::new();
    let mut ids = Vec::new();
    for q in &healthy[0..3] {
        ids.push(script.ekaq(0.05, q));
    }
    let bad = script.ekaq(0.05, &[f64::NAN, 0.5]);
    for q in &healthy[3..6] {
        ids.push(script.ekaq(0.05, q));
    }
    script.shutdown();
    let cfg = ServeConfig {
        threads: Some(4),
        ..ServeConfig::default()
    };
    let (transcript, stats, _) = run_script(&eval, cfg, &script.build());
    assert_eq!(stats.faulted, 1);
    assert_eq!(stats.completed, 6);
    let by_id = responses_by_id(&transcript);
    assert_eq!(by_id[&bad].0, "error");
    let error_line = transcript
        .lines()
        .find(|l| l.contains("\"status\":\"error\""))
        .expect("typed error line");
    assert!(
        error_line.contains("non-finite"),
        "error should name the defect: {error_line}"
    );

    // Healthy-only run: same six queries, no poison.
    let mut clean = ScriptBuilder::new();
    let clean_ids: Vec<u64> = healthy.iter().map(|q| clean.ekaq(0.05, q)).collect();
    clean.shutdown();
    let cfg = ServeConfig {
        threads: Some(4),
        ..ServeConfig::default()
    };
    let (clean_transcript, clean_stats, _) = run_script(&eval, cfg, &clean.build());
    assert_eq!(clean_stats.faulted, 0);
    let clean_by_id = responses_by_id(&clean_transcript);
    for (i, (&id, &cid)) in ids.iter().zip(clean_ids.iter()).enumerate() {
        assert_eq!(
            by_id[&id].1, clean_by_id[&cid].1,
            "healthy query {i} must keep its bits next to the poisoned slot"
        );
    }
}

/// Every admitted request is answered exactly once — on explicit
/// `shutdown` (which reports how many it drained) and on plain EOF.
#[test]
fn drain_answers_every_admitted_request_exactly_once() {
    let eval = evaluator(45);
    for end_with_shutdown in [true, false] {
        let mut script = ScriptBuilder::new();
        let mut rng = StdRng::seed_from_u64(31);
        // 7 requests, batch_max 3: two dispatched batches and one
        // remainder that only the drain path can answer.
        let ids = script.ekaq_burst(7, 2, 0.05, -2.5..2.5, &mut rng);
        if end_with_shutdown {
            script.shutdown();
        }
        let cfg = ServeConfig {
            batch_max: 3,
            threads: Some(2),
            ..ServeConfig::default()
        };
        let (transcript, stats, shutdown) = run_script(&eval, cfg, &script.build());
        assert_eq!(shutdown, end_with_shutdown);
        assert_eq!(stats.admitted, 7);
        assert_eq!(stats.batches, 3);
        let by_id = responses_by_id(&transcript);
        for &id in &ids {
            assert!(by_id.contains_key(&id), "id {id} lost in drain");
        }
        if end_with_shutdown {
            // The remainder (7 = 3+3+1) was still pending at shutdown.
            assert!(transcript.contains("\"status\":\"shutdown\",\"admitted\":7,\"drained\":1"));
        }
    }
}

/// `deadline_ms: 0` can never be met, so the response must be a
/// `truncated`/`deadline` line answering from the certified root
/// interval — bitwise the interval a zero-node budget reports offline.
#[test]
fn expired_deadline_answers_from_the_root_interval() {
    let eval = evaluator(46);
    let q = [0.25, -0.75];
    let mut script = ScriptBuilder::new();
    let id = script.ekaq_deadline(0.05, &q, 0.0);
    script.shutdown();
    let (transcript, stats, _) =
        run_script(&eval, ServeConfig::default(), &script.build());
    assert_eq!(stats.truncated, 1);
    let line = transcript
        .lines()
        .find(|l| l.contains(&format!("\"id\":{id},")))
        .expect("response line");
    let v = parse_json(line).unwrap();
    assert_eq!(v.get("status").and_then(Json::as_str), Some("truncated"));
    assert_eq!(v.get("reason").and_then(Json::as_str), Some("deadline"));

    // Offline zero-work run over the same query: the served lb/ub must
    // carry exactly its bits (zero refinement happened while queued).
    let offline_queries = PointSet::new(2, q.to_vec());
    let offline = QueryBatch::new(&offline_queries, Query::Ekaq { eps: 0.05 })
        .budget(Budget::unlimited().max_nodes(0))
        .try_run_any(&eval)
        .expect("offline run");
    let outcome = offline.results()[0].as_ref().expect("healthy query");
    assert!(outcome.is_truncated(), "zero-node budget must truncate");
    for (key, expected) in [("lb", outcome.lb()), ("ub", outcome.ub())] {
        let got = v.get(key).and_then(Json::as_f64).expect(key);
        assert_eq!(got.to_bits(), expected.to_bits(), "{key} bits");
    }
    assert_eq!(
        v.get("answer").and_then(Json::as_f64).expect("answer").to_bits(),
        offline.answer(outcome).to_bits()
    );
}

/// Malformed lines are per-line protocol errors: typed, counted, and
/// invisible to the healthy requests around them.
#[test]
fn protocol_errors_are_typed_and_contained() {
    let eval = evaluator(47);
    let mut script = ScriptBuilder::new();
    let good_before = script.ekaq(0.05, &[0.1, 0.2]);
    script.raw("this is not json");
    script.raw("{\"id\":7,\"op\":\"warp\",\"q\":[0,0]}");
    script.raw("{\"id\":8,\"op\":\"ekaq\",\"eps\":0.05,\"q\":[1,2,3]}"); // wrong dims
    script.raw("{\"op\":\"ekaq\",\"eps\":0.05,\"q\":[0,0]}"); // missing id
    script.raw("# a comment line");
    script.raw("");
    let good_after = script.ekaq(0.05, &[0.3, -0.4]);
    script.shutdown();
    let (transcript, stats, _) =
        run_script(&eval, ServeConfig::default(), &script.build());
    assert_eq!(stats.protocol_errors, 4);
    assert_eq!(stats.admitted, 2);
    assert_eq!(stats.faulted, 0);
    let by_id = responses_by_id(&transcript);
    assert_eq!(by_id[&good_before].0, "ok");
    assert_eq!(by_id[&good_after].0, "ok");
    assert_eq!(by_id[&7].0, "error");
    assert_eq!(by_id[&8].0, "error");
    assert!(transcript.contains("unknown op"));
    assert!(transcript.contains("dimensionality mismatch") || transcript.contains("dims"));
}

/// Nonsense configurations are rejected at construction with a typed
/// `InvalidConfig`, not discovered mid-request-loop.
#[test]
fn invalid_configs_are_rejected_up_front() {
    let eval = evaluator(48);
    for (cfg, needle) in [
        (
            ServeConfig {
                queue_cap: 0,
                ..ServeConfig::default()
            },
            "queue capacity",
        ),
        (
            ServeConfig {
                batch_max: 0,
                ..ServeConfig::default()
            },
            "micro-batch",
        ),
        (
            ServeConfig {
                threads: Some(0),
                ..ServeConfig::default()
            },
            "thread count",
        ),
    ] {
        let err = Server::new(&eval, cfg).expect_err("must reject").to_string();
        assert!(err.contains("invalid serve config"), "{err}");
        assert!(err.contains(needle), "{err}");
    }
}
