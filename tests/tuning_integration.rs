//! Integration tests for the automatic index tuning (Section III-C) on
//! registry datasets.

use karl::core::{BoundMethod, IndexKind, Kernel, OfflineTuner, OnlineTuner, Query, Scan};
use karl::data::{by_name, sample_queries};
use karl::kde::Kde;

#[test]
fn offline_tuner_sweeps_every_candidate_and_stays_correct() {
    let ds = by_name("home").unwrap().generate_n(2_000);
    let kde = Kde::fit(ds.points.clone());
    let weights = vec![kde.weight(); ds.points.len()];
    let kernel = Kernel::gaussian(kde.gamma());
    let sample = sample_queries(&ds.points, 50, 1);

    let tuner = OfflineTuner {
        leaf_capacities: vec![10, 40, 160],
        index_kinds: vec![IndexKind::Kd, IndexKind::Ball],
    };
    let out = tuner.tune(
        &ds.points,
        &weights,
        kernel,
        BoundMethod::Karl,
        &sample,
        Query::Ekaq { eps: 0.2 },
    );
    assert_eq!(out.report.len(), 6, "2 families × 3 capacities");

    // The recommended evaluator honours the ε contract everywhere.
    let scan = Scan::new(ds.points.clone(), weights, kernel);
    for q in sample.iter() {
        let truth = scan.aggregate(q);
        let est = out.best.ekaq(q, 0.2);
        assert!(est >= 0.8 * truth - 1e-12 && est <= 1.2 * truth + 1e-12);
    }
}

#[test]
fn online_tuner_end_to_end_on_tkaq_stream() {
    let ds = by_name("susy").unwrap().generate_n(3_000);
    let kde = Kde::fit(ds.points.clone());
    let weights = vec![kde.weight(); ds.points.len()];
    let kernel = Kernel::gaussian(kde.gamma());
    let queries = sample_queries(&ds.points, 300, 2);
    let scan = Scan::new(ds.points.clone(), weights.clone(), kernel);
    let mu: f64 = queries.iter().map(|q| scan.aggregate(q)).sum::<f64>() / queries.len() as f64;

    let report = OnlineTuner::default().run(
        &ds.points,
        &weights,
        kernel,
        BoundMethod::Karl,
        &queries,
        Query::Tkaq { tau: mu },
    );
    assert_eq!(report.answers.len(), queries.len());
    for (i, q) in queries.iter().enumerate() {
        let truth = scan.aggregate(q) >= mu;
        assert_eq!(report.answers[i] == 1.0, truth, "query {i} answer drifted");
    }
    assert!(report.build_time.as_nanos() > 0);
    assert!(report.throughput > 0.0);
}

#[test]
fn online_tuner_level_is_within_tree_depth() {
    let ds = by_name("miniboone").unwrap().generate_n(1_000);
    let weights = vec![1.0; ds.points.len()];
    let kernel = Kernel::gaussian(2.0);
    let queries = sample_queries(&ds.points, 100, 3);
    let tuner = OnlineTuner {
        sample_fraction: 0.1,
        leaf_capacity: 4,
    };
    let report = tuner.run(
        &ds.points,
        &weights,
        kernel,
        BoundMethod::Karl,
        &queries,
        Query::Ekaq { eps: 0.3 },
    );
    // log2(1000/4) ≈ 8 levels; the chosen level must be a real level.
    assert!(report.chosen_level <= 16, "level {}", report.chosen_level);
}
