//! Cross-cutting consistency: every (bound method × index family × kernel ×
//! weighting type) combination must answer queries identically — only their
//! speed may differ. This is the core soundness claim of the paper: KARL
//! changes the bounds, never the answers.

use karl::core::{
    aggregate_exact, AnyEvaluator, BoundMethod, IndexKind, Kernel, Query,
};
use karl::data::{by_name, normalize_symmetric, sample_queries};

fn weight_profiles(n: usize) -> Vec<(&'static str, Vec<f64>)> {
    vec![
        ("type1-identical", vec![0.37; n]),
        (
            "type2-positive",
            (0..n).map(|i| 0.1 + ((i * 31) % 17) as f64 / 17.0).collect(),
        ),
        (
            "type3-mixed",
            (0..n)
                .map(|i| {
                    let w = 0.2 + ((i * 13) % 11) as f64 / 11.0;
                    if i % 3 == 0 {
                        -w
                    } else {
                        w
                    }
                })
                .collect(),
        ),
    ]
}

#[test]
fn all_method_index_combinations_agree_gaussian() {
    let ds = by_name("home").unwrap().generate_n(1_500);
    let kernel = Kernel::gaussian(3.0);
    let queries = sample_queries(&ds.points, 25, 7);
    for (wname, weights) in weight_profiles(ds.points.len()) {
        let evals: Vec<AnyEvaluator> = [IndexKind::Kd, IndexKind::Ball]
            .into_iter()
            .flat_map(|kind| {
                [BoundMethod::Sota, BoundMethod::Karl].into_iter().map(move |m| (kind, m))
            })
            .map(|(kind, m)| AnyEvaluator::build(kind, &ds.points, &weights, kernel, m, 16))
            .collect();
        for q in queries.iter() {
            let truth = aggregate_exact(&kernel, &ds.points, &weights, q);
            for delta in [-0.3, -0.01, 0.01, 0.3] {
                let tau = truth + delta * (1.0 + truth.abs());
                let expect = truth >= tau;
                for e in &evals {
                    assert_eq!(
                        e.tkaq(q, tau),
                        expect,
                        "{wname}: {:?} disagreed at τ offset {delta}",
                        e.kind()
                    );
                }
            }
        }
    }
}

#[test]
fn all_kernels_agree_across_methods() {
    let ds = by_name("ijcnn1").unwrap().generate_n(900);
    let sym = normalize_symmetric(&ds.points);
    let d_inv = 1.0 / sym.dims() as f64;
    let kernels = [
        Kernel::gaussian(d_inv),
        Kernel::polynomial(d_inv, 0.5, 3),
        Kernel::polynomial(d_inv, 0.0, 2),
        Kernel::polynomial(d_inv, 0.1, 5),
        Kernel::sigmoid(d_inv, -0.1),
    ];
    let queries = sample_queries(&sym, 15, 8);
    let (_, weights) = weight_profiles(sym.len()).pop().unwrap(); // type3-mixed
    for kernel in kernels {
        let karl = AnyEvaluator::build(IndexKind::Kd, &sym, &weights, kernel, BoundMethod::Karl, 8);
        let sota = AnyEvaluator::build(IndexKind::Kd, &sym, &weights, kernel, BoundMethod::Sota, 8);
        for q in queries.iter() {
            let truth = aggregate_exact(&kernel, &sym, &weights, q);
            for delta in [-0.2, 0.2] {
                let tau = truth + delta * (1.0 + truth.abs());
                let expect = truth >= tau;
                assert_eq!(karl.tkaq(q, tau), expect, "{kernel:?} KARL");
                assert_eq!(sota.tkaq(q, tau), expect, "{kernel:?} SOTA");
            }
        }
    }
}

#[test]
fn karl_never_needs_more_iterations_than_sota_on_gaussian_type1() {
    // Lemmas 3–4 imply per-node bounds are tighter, so the refinement loop
    // can only stop earlier (same refinement order heuristics).
    let ds = by_name("miniboone").unwrap().generate_n(2_000);
    let weights = vec![1.0; ds.points.len()];
    let kernel = Kernel::gaussian(4.0);
    let queries = sample_queries(&ds.points, 30, 9);
    let karl =
        AnyEvaluator::build(IndexKind::Kd, &ds.points, &weights, kernel, BoundMethod::Karl, 16);
    let sota =
        AnyEvaluator::build(IndexKind::Kd, &ds.points, &weights, kernel, BoundMethod::Sota, 16);
    let mut karl_total = 0usize;
    let mut sota_total = 0usize;
    for q in queries.iter() {
        let truth = aggregate_exact(&kernel, &ds.points, &weights, q);
        let w = Query::Tkaq { tau: truth * 1.1 };
        karl_total += karl.run_query(q, w, None).iterations;
        sota_total += sota.run_query(q, w, None).iterations;
    }
    assert!(
        karl_total <= sota_total,
        "KARL {karl_total} vs SOTA {sota_total} total iterations"
    );
}
