//! Differential property test for the coreset cascade: for random
//! clustered datasets, mixed-sign weights, all four kernels, both index
//! families and thread counts 1/2/4/8, a [`QueryBatch`] with
//! `.coreset(true)` over an evaluator carrying a certified tier must
//! *answer* exactly like the plain engine —
//!
//! * identical TKAQ `decisions()` (the tier only answers when its widened
//!   interval clears τ, so a decision is never flipped),
//! * eKAQ estimates within the requested relative error of the
//!   brute-force oracle (tier answers may differ bitwise from the full
//!   tree — both satisfy ε),
//! * bitwise-identical Within `intervals()` (Within always bypasses the
//!   tier; this is the documented batch.rs contract),
//!
//! and every reported interval — widened tier answers included — must
//! bracket the oracle sum. Polynomial and sigmoid kernels have no uniform
//! Lipschitz bound, so coreset construction must be rejected with the
//! typed error rather than producing an uncertifiable tier. The analytic
//! certificate is also validated against measurement: the discrepancy
//! brute-forced on held-out probes never exceeds the widening margin.
//!
//! With the flag off — even with a tier attached — answers must be
//! bitwise identical to the plain engine at every thread count
//! (default-off neutrality).

use karl::core::{
    BoundMethod, Coreset, Engine, Evaluator, KarlError, Kernel, Query, QueryBatch, Scratch,
    TierPath,
};
use karl::geom::{Ball, PointSet, Rect};
use karl_testkit::oracle;
use karl_testkit::rng::{Rng, SeedableRng, StdRng};
use karl_testkit::{prop_assert, prop_assert_eq, props};

/// Two tight blobs plus background — queries near a blob sit far above
/// typical thresholds and queries in the void far below, which is the
/// regime where the widened tier interval actually decides.
fn clustered(n: usize, d: usize, rng: &mut StdRng) -> PointSet {
    let mut data = Vec::with_capacity(n * d);
    for i in 0..n {
        match i % 3 {
            0 => data.extend((0..d).map(|_| -1.5 + rng.random_range(-0.4..0.4))),
            1 => data.extend((0..d).map(|_| 1.5 + rng.random_range(-0.4..0.4))),
            _ => data.extend((0..d).map(|_| rng.random_range(-3.0..3.0))),
        }
    }
    PointSet::new(d, data)
}

fn mixed_weights(n: usize, rng: &mut StdRng) -> Vec<f64> {
    (0..n)
        .map(|_| {
            let w: f64 = rng.random_range(0.1..1.5);
            if rng.random_bool(0.35) {
                -w
            } else {
                w
            }
        })
        .collect()
}

/// Brute-force aggregate at `q` straight from the testkit oracle.
fn exact_at(points: &PointSet, weights: &[f64], kernel: Kernel, q: &[f64]) -> f64 {
    oracle::exact_sum(points.iter(), weights, q, |a, b| kernel.eval(a, b))
}

/// Asserts the cascade contract for one index family.
#[allow(clippy::too_many_arguments)]
fn check_cascade<S: karl::tree::NodeShape + Sync>(
    points: &PointSet,
    weights: &[f64],
    kernel: Kernel,
    leaf: usize,
    target_eps: f64,
    queries: &PointSet,
    query: Query,
) {
    let plain = Evaluator::<S>::build(points, weights, kernel, BoundMethod::Karl, leaf);
    let coreset = Coreset::try_build(points, weights, kernel, target_eps);

    let coreset = match kernel {
        Kernel::Polynomial { .. } | Kernel::Sigmoid { .. } => {
            // No uniform Lipschitz bound — the certificate cannot exist and
            // construction must say so, not silently degrade.
            prop_assert!(matches!(
                coreset,
                Err(KarlError::UnsupportedCoresetKernel { .. })
            ));
            return;
        }
        _ => coreset.expect("gaussian/laplacian coresets must build"),
    };

    // The measured discrepancy over held-out probes can never exceed the
    // analytic widening margin (tiny slack for the brute-force roundoff).
    prop_assert!(
        coreset.eps_measured() <= coreset.margin() * (1.0 + 1e-9) + 1e-12,
        "measured {} must be bounded by certified margin {}",
        coreset.eps_measured(),
        coreset.margin()
    );

    let cascade = plain
        .clone()
        .with_coreset_tier(&coreset, leaf)
        .expect("tier over same kernel/dims must attach");

    let baseline = QueryBatch::new(queries, query).threads(1).run(&plain);
    let cascade_seq = QueryBatch::new(queries, query)
        .threads(1)
        .coreset(true)
        .run(&cascade);

    // Default-off neutrality: a tier that is attached but not enabled is
    // invisible — bitwise — at any thread count.
    for threads in [1usize, 4] {
        let off = QueryBatch::new(queries, query).threads(threads).run(&cascade);
        prop_assert_eq!(off.outcomes(), baseline.outcomes());
        prop_assert_eq!(off.estimates(), baseline.estimates());
        prop_assert_eq!(off.coreset_decided(), 0);
        prop_assert_eq!(off.coreset_fallthrough(), 0);
    }

    for threads in [1usize, 2, 4, 8] {
        let run = QueryBatch::new(queries, query)
            .threads(threads)
            .coreset(true)
            .run(&cascade);
        prop_assert!(run.threads() >= 1 && run.threads() <= threads);

        // Tier accounting is a pure function of each query, so the tallies
        // are identical at every thread count; Within never runs the tier,
        // TKAQ/eKAQ queries land in exactly one of the two buckets.
        prop_assert_eq!(run.coreset_decided(), cascade_seq.coreset_decided());
        prop_assert_eq!(run.coreset_fallthrough(), cascade_seq.coreset_fallthrough());
        match query {
            Query::Within { .. } => {
                prop_assert_eq!(run.coreset_decided() + run.coreset_fallthrough(), 0);
            }
            _ => {
                prop_assert_eq!(
                    run.coreset_decided() + run.coreset_fallthrough(),
                    queries.len() as u64
                );
            }
        }

        match query {
            Query::Tkaq { .. } => {
                prop_assert_eq!(run.decisions(), baseline.decisions());
                prop_assert_eq!(run.estimates(), baseline.estimates());
            }
            Query::Ekaq { eps } => {
                for (i, (&est, q)) in run.estimates().iter().zip(queries.iter()).enumerate() {
                    let exact = exact_at(points, weights, kernel, q);
                    let slack = eps * exact.abs() + 1e-9;
                    prop_assert!(
                        (est - exact).abs() <= slack,
                        "query {i}: estimate {est} misses exact {exact} by more than ε-slack {slack}"
                    );
                }
            }
            Query::Within { .. } => {
                prop_assert_eq!(run.outcomes(), baseline.outcomes());
                prop_assert_eq!(run.intervals(), baseline.intervals());
                prop_assert_eq!(run.estimates(), baseline.estimates());
            }
        }

        // Soundness: every reported interval — widened tier answers
        // included — brackets the oracle sum.
        for (o, q) in run.outcomes().iter().zip(queries.iter()) {
            let exact = exact_at(points, weights, kernel, q);
            if let Err(msg) = oracle::check_bracket(o.lb, exact, o.ub, 1e-9) {
                panic!("cascade interval excludes the true sum: {msg}");
            }
        }
    }

    // Per-query provenance through the public cascade entry point: Within
    // always bypasses; for TKAQ/eKAQ a Decided path must carry an interval
    // that still satisfies the query predicate after widening.
    let mut scratch = Scratch::new();
    for q in queries.iter().take(8) {
        let (out, path) =
            cascade.run_cascade_with_scratch_on(Engine::Frozen, q, query, None, &mut scratch);
        match query {
            Query::Within { .. } => prop_assert_eq!(path, TierPath::Bypassed),
            _ => prop_assert!(path == TierPath::Decided || path == TierPath::FellThrough),
        }
        let exact = exact_at(points, weights, kernel, q);
        if let Err(msg) = oracle::check_bracket(out.lb, exact, out.ub, 1e-9) {
            panic!("cascade run interval excludes the true sum: {msg}");
        }
    }
}

props! {
    #[test]
    fn cascade_answers_match_plain_engine(
        seed in 0u64..1_000_000,
        n in 40usize..200,
        d in 1usize..4,
        leaf in 1usize..24,
        kernel_id in 0usize..4,
        variant in 0usize..3
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let points = clustered(n, d, &mut rng);
        let weights = mixed_weights(n, &mut rng);
        let kernel = match kernel_id {
            0 => Kernel::gaussian(rng.random_range(0.3..1.5)),
            1 => Kernel::laplacian(rng.random_range(0.3..1.2)),
            2 => Kernel::polynomial(rng.random_range(0.1..0.5), 0.2, 2),
            _ => Kernel::sigmoid(rng.random_range(0.05..0.3), 0.1),
        };
        let query = match variant {
            0 => Query::Tkaq { tau: rng.random_range(-0.5..0.5) },
            1 => Query::Ekaq { eps: rng.random_range(0.01..0.4) },
            _ => Query::Within { tol: rng.random_range(0.001..0.1) },
        };
        // Coarse-to-tight coverage: coarse coresets mostly fall through,
        // tight ones mostly decide — both paths must stay sound.
        let target_eps = rng.random_range(0.001..0.2);
        let queries = clustered(33, d, &mut rng);

        check_cascade::<Rect>(&points, &weights, kernel, leaf, target_eps, &queries, query);
        check_cascade::<Ball>(&points, &weights, kernel, leaf, target_eps, &queries, query);
    }
}
