//! Anytime-evaluation contract of the refinement [`Budget`]:
//!
//! * an unlimited budget is **bitwise identical** to the unbudgeted path,
//! * every truncated outcome's certified interval encloses the exact
//!   aggregate (the anytime guarantee),
//! * the node / leaf-point / deadline caps each trip with the right
//!   [`TruncateReason`],
//! * budgeted TKAQ degrades to `Undecided` (never a wrong decision) and
//!   budgeted eKAQ reports the relative error it actually achieved.

use std::time::Duration;

use karl::core::{
    aggregate_exact, BoundMethod, Budget, Coreset, Evaluator, Kernel, Outcome, Query, QueryBatch,
    TkaqDecision, TruncateReason,
};
use karl::geom::{PointSet, Rect};
use karl_testkit::rng::{Rng, SeedableRng, StdRng};
use karl_testkit::{prop_assert, prop_assert_eq, props};

fn clustered(n: usize, d: usize, seed: u64) -> PointSet {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut data = Vec::with_capacity(n * d);
    for i in 0..n {
        let center = if i % 2 == 0 { -2.0 } else { 2.0 };
        for _ in 0..d {
            data.push(center + rng.random_range(-0.5..0.5));
        }
    }
    PointSet::new(d, data)
}

fn mixed_weights(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let w: f64 = rng.random_range(0.2..2.0);
            if rng.random_bool(0.3) {
                -w
            } else {
                w
            }
        })
        .collect()
}

fn build(seed: u64) -> (Evaluator<Rect>, PointSet, Vec<f64>, Kernel) {
    let ps = clustered(500, 3, seed);
    let w = mixed_weights(500, seed + 1000);
    let kernel = Kernel::gaussian(0.6);
    let eval = Evaluator::<Rect>::build(&ps, &w, kernel, BoundMethod::Karl, 4);
    (eval, ps, w, kernel)
}

#[test]
fn unlimited_budget_is_bitwise_identical_to_run_query() {
    let (eval, ps, _, _) = build(1);
    let query = Query::Ekaq { eps: 0.05 };
    for i in [0, 17, 123] {
        let q = ps.point(i);
        let plain = eval.run_query(q, query, None);
        match eval.run_budgeted(q, query, None, &Budget::UNLIMITED).unwrap() {
            Outcome::Complete(out) => {
                assert_eq!(out.lb.to_bits(), plain.lb.to_bits());
                assert_eq!(out.ub.to_bits(), plain.ub.to_bits());
                assert_eq!(out.iterations, plain.iterations);
            }
            Outcome::Truncated { .. } => panic!("unlimited budget truncated"),
        }
    }
}

#[test]
fn generous_budget_is_complete_and_identical() {
    let (eval, ps, _, _) = build(2);
    let query = Query::Within { tol: 1e-6 };
    let q = ps.point(42);
    let plain = eval.run_query(q, query, None);
    let budget = Budget::unlimited().max_nodes(plain.iterations as u64 + 1);
    match eval.run_budgeted(q, query, None, &budget).unwrap() {
        Outcome::Complete(out) => {
            assert_eq!(out.lb.to_bits(), plain.lb.to_bits());
            assert_eq!(out.ub.to_bits(), plain.ub.to_bits());
        }
        Outcome::Truncated { reason, .. } => panic!("generous budget truncated: {reason}"),
    }
}

#[test]
fn node_budget_truncates_with_enclosing_interval() {
    let (eval, ps, w, kernel) = build(3);
    let query = Query::Within { tol: 1e-9 };
    for i in [3, 99, 250] {
        let q = ps.point(i);
        let exact = aggregate_exact(&kernel, &ps, &w, q);
        let out = eval
            .run_budgeted(q, query, None, &Budget::unlimited().max_nodes(5))
            .unwrap();
        match out {
            Outcome::Truncated { lb, ub, reason } => {
                assert_eq!(reason, TruncateReason::NodeBudget);
                assert!(lb.is_finite() && ub.is_finite());
                let tol = 1e-9 * (1.0 + exact.abs());
                assert!(
                    lb <= exact + tol && exact <= ub + tol,
                    "truncated interval [{lb}, {ub}] does not enclose {exact}"
                );
            }
            Outcome::Complete(_) => panic!("5-node budget should truncate a 500-point query"),
        }
    }
}

#[test]
fn leaf_budget_trips_with_its_own_reason() {
    let (eval, ps, _, _) = build(4);
    // leaf_capacity = 4 on 500 points: refinement scans leaves almost
    // immediately, so a 1-point leaf budget trips as soon as one leaf is
    // refined exactly.
    let out = eval
        .run_budgeted(
            ps.point(7),
            Query::Within { tol: 1e-9 },
            None,
            &Budget::unlimited().max_leaf_points(1),
        )
        .unwrap();
    match out {
        Outcome::Truncated { reason, .. } => assert_eq!(reason, TruncateReason::LeafBudget),
        Outcome::Complete(out) => panic!("leaf budget ignored: {out:?}"),
    }
}

#[test]
fn zero_deadline_truncates_deterministically_at_the_root() {
    let (eval, ps, w, kernel) = build(5);
    let q = ps.point(11);
    let exact = aggregate_exact(&kernel, &ps, &w, q);
    // A zero deadline trips at the very first check (elapsed >= 0), so the
    // reported interval is the root-level bound — still certified.
    let out = eval
        .run_budgeted(
            q,
            Query::Within { tol: 1e-9 },
            None,
            &Budget::unlimited().deadline(Duration::ZERO),
        )
        .unwrap();
    match out {
        Outcome::Truncated { lb, ub, reason } => {
            assert_eq!(reason, TruncateReason::Deadline);
            let tol = 1e-9 * (1.0 + exact.abs());
            assert!(lb <= exact + tol && exact <= ub + tol);
            assert!(out.is_truncated());
        }
        Outcome::Complete(_) => panic!("zero deadline did not trip"),
    }
}

#[test]
fn deadline_after_saturates_and_expired_deadlines_answer_from_the_root() {
    let ms = Duration::from_millis;
    let base = Budget::unlimited();
    // The serving queue maps "deadline minus time spent queued" through
    // deadline_after; pin its saturating arithmetic exactly (Budget is Eq).
    assert_eq!(base.deadline_after(ms(5), ms(0)), base.deadline(ms(5)));
    assert_eq!(base.deadline_after(ms(7), ms(5)), base.deadline(ms(2)));
    assert_eq!(base.deadline_after(ms(5), ms(5)), base.deadline(Duration::ZERO));
    assert_eq!(base.deadline_after(ms(5), ms(600)), base.deadline(Duration::ZERO));
    assert_eq!(
        base.deadline_after(Duration::ZERO, Duration::ZERO),
        base.deadline(Duration::ZERO)
    );

    // A deadline that expired while queued (spent > total) must do ZERO
    // refinement work: its certified interval is the root interval, bit
    // for bit the same one a zero-node budget reports — no frontier pass,
    // no underflow, only the truncation reason differs.
    let (eval, ps, _, _) = build(12);
    let q = ps.point(5);
    let query = Query::Within { tol: 1e-9 };
    let expired = eval
        .run_budgeted(q, query, None, &base.deadline_after(ms(3), ms(9)))
        .unwrap();
    let zero_nodes = eval
        .run_budgeted(q, query, None, &base.max_nodes(0))
        .unwrap();
    match (expired, zero_nodes) {
        (
            Outcome::Truncated {
                lb: lb_d,
                ub: ub_d,
                reason: r_d,
            },
            Outcome::Truncated {
                lb: lb_n,
                ub: ub_n,
                reason: r_n,
            },
        ) => {
            assert_eq!(r_d, TruncateReason::Deadline);
            assert_eq!(r_n, TruncateReason::NodeBudget);
            assert_eq!(lb_d.to_bits(), lb_n.to_bits(), "root lb must match");
            assert_eq!(ub_d.to_bits(), ub_n.to_bits(), "root ub must match");
        }
        other => panic!("expired deadline must truncate at the root: {other:?}"),
    }
}

#[test]
fn budgeted_tkaq_is_decided_or_honestly_undecided() {
    let (eval, ps, w, kernel) = build(6);
    let q = ps.point(33).to_vec();
    let exact = aggregate_exact(&kernel, &ps, &w, &q);
    let tau = exact + 1e-4; // truth: false, but only barely
    match eval
        .tkaq_budgeted(&q, tau, &Budget::unlimited().max_nodes(2))
        .unwrap()
    {
        TkaqDecision::Decided(ans) => assert_eq!(ans, exact >= tau),
        TkaqDecision::Undecided { lb, ub } => {
            // Undecided means the certified interval still straddles τ —
            // and it must still enclose the exact value.
            assert!(lb < tau && tau <= ub);
            let tol = 1e-9 * (1.0 + exact.abs());
            assert!(lb <= exact + tol && exact <= ub + tol);
        }
    }
    // With no budget pressure the same query decides.
    match eval.tkaq_budgeted(&q, tau, &Budget::UNLIMITED).unwrap() {
        TkaqDecision::Decided(ans) => assert_eq!(ans, exact >= tau),
        TkaqDecision::Undecided { .. } => panic!("unlimited TKAQ must decide"),
    }
}

#[test]
fn budgeted_ekaq_reports_achieved_error() {
    let (eval, ps, _, _) = build(7);
    let ps_pos = ps;
    let w = vec![1.0; ps_pos.len()];
    let kernel = Kernel::gaussian(0.6);
    let eval_pos = Evaluator::<Rect>::build(&ps_pos, &w, kernel, BoundMethod::Karl, 4);
    let _ = eval; // mixed-sign evaluator unused here: the ε contract needs F > 0
    let q = ps_pos.point(21).to_vec();
    let exact = aggregate_exact(&kernel, &ps_pos, &w, &q);

    let complete = eval_pos.ekaq_budgeted(&q, 0.05, &Budget::UNLIMITED).unwrap();
    assert!(complete.truncated.is_none());
    assert!(complete.achieved_eps <= 0.05 + 1e-12);
    assert!((complete.value - exact).abs() <= 0.05 * exact + 1e-9);

    let truncated = eval_pos
        .ekaq_budgeted(&q, 1e-12, &Budget::unlimited().max_nodes(3))
        .unwrap();
    assert!(truncated.truncated.is_some());
    // The midpoint estimate's true error is bounded by the achieved ε it
    // reports (worst case over the certified interval).
    let achieved = truncated.achieved_eps;
    assert!((truncated.value - exact).abs() <= achieved * exact.abs() + 1e-9);
    assert!(truncated.lb <= exact + 1e-9 && exact <= truncated.ub + 1e-9);
    // Tiny requested ε under a 3-node budget cannot possibly be achieved.
    assert!(achieved > 1e-12);
}

#[test]
fn dual_wholesale_decisions_are_complete_despite_a_starving_budget() {
    // A joint query-node decision costs zero refinement iterations, so
    // even a 1-node budget cannot trip it: with τ far above every
    // aggregate, the descent decides the whole batch wholesale and no
    // query reports `Truncated`.
    let (eval, _, _, _) = build(8);
    let queries = clustered(60, 3, 77);
    let report = QueryBatch::new(&queries, Query::Tkaq { tau: 1000.0 })
        .threads(2)
        .budget(Budget::unlimited().max_nodes(1))
        .try_run_dual(&eval)
        .unwrap();
    assert_eq!(report.dual_wholesale(), 60, "τ=1000 must decide wholesale");
    assert_eq!(report.truncated_count(), 0);
    for r in report.results() {
        match r.as_ref().unwrap() {
            Outcome::Complete(run) => assert_eq!(run.iterations, 0),
            Outcome::Truncated { reason, .. } => panic!("wholesale slot truncated: {reason}"),
        }
    }
}

#[test]
fn dual_fallback_queries_truncate_with_certified_intervals() {
    // τ pinned to one query's exact aggregate: its query node can never
    // be decided jointly, so it falls back to the budgeted per-query
    // path, trips the 2-node budget, and must still report an interval
    // enclosing the exact value — the anytime guarantee through the
    // dual path.
    let (eval, ps, w, kernel) = build(9);
    let queries = clustered(60, 3, 78);
    let tau = aggregate_exact(&kernel, &ps, &w, queries.point(0));
    let report = QueryBatch::new(&queries, Query::Tkaq { tau })
        .threads(2)
        .budget(Budget::unlimited().max_nodes(2))
        .try_run_dual(&eval)
        .unwrap();
    assert!(
        report.truncated_count() > 0,
        "a τ on the decision boundary must starve at least query 0"
    );
    for (i, r) in report.results().iter().enumerate() {
        if let Outcome::Truncated { lb, ub, reason } = r.as_ref().unwrap() {
            assert_eq!(*reason, TruncateReason::NodeBudget, "query {i}");
            let exact = aggregate_exact(&kernel, &ps, &w, queries.point(i));
            let tol = 1e-9 * (1.0 + exact.abs());
            assert!(
                *lb <= exact + tol && exact <= *ub + tol,
                "query {i}: truncated interval [{lb}, {ub}] misses {exact}"
            );
        }
    }
}

#[test]
fn coreset_decided_queries_are_complete_despite_a_starving_budget() {
    // The coreset tier is unbudgeted (its cost is bounded by the coreset
    // size) and the caller's budget governs the fall-through run only —
    // the same contract as dual wholesale decisions. With τ far above
    // every aggregate the widened tier interval decides every query, so
    // even a 1-node budget produces zero truncations.
    let (eval, ps, w, kernel) = build(10);
    let coreset = Coreset::try_build(&ps, &w, kernel, 0.05).unwrap();
    let cascade = eval.with_coreset_tier(&coreset, 4).unwrap();
    let queries = clustered(60, 3, 79);
    let report = QueryBatch::new(&queries, Query::Tkaq { tau: 1000.0 })
        .threads(2)
        .coreset(true)
        .budget(Budget::unlimited().max_nodes(1))
        .try_run(&cascade)
        .unwrap();
    assert_eq!(report.coreset_decided(), 60, "τ=1000 must decide at tier 1");
    assert_eq!(report.coreset_fallthrough(), 0);
    assert_eq!(report.truncated_count(), 0);
    for r in report.results() {
        assert!(matches!(r.as_ref().unwrap(), Outcome::Complete(_)));
    }
}

#[test]
fn coreset_fallthrough_queries_truncate_with_certified_intervals() {
    // τ pinned to one query's exact aggregate: the widened tier interval
    // straddles it, so that query falls through to the budgeted full-tree
    // run, trips the 2-node budget, and must still report an interval
    // enclosing the exact value — the anytime guarantee composes with the
    // cascade unchanged.
    let (eval, ps, w, kernel) = build(11);
    let coreset = Coreset::try_build(&ps, &w, kernel, 0.05).unwrap();
    let cascade = eval.with_coreset_tier(&coreset, 4).unwrap();
    let queries = clustered(60, 3, 80);
    let tau = aggregate_exact(&kernel, &ps, &w, queries.point(0));
    let report = QueryBatch::new(&queries, Query::Tkaq { tau })
        .threads(2)
        .coreset(true)
        .budget(Budget::unlimited().max_nodes(2))
        .try_run(&cascade)
        .unwrap();
    assert!(
        report.coreset_fallthrough() > 0,
        "a τ on the decision boundary must fall through for at least query 0"
    );
    assert!(
        report.truncated_count() > 0,
        "fall-through under a 2-node budget must truncate"
    );
    for (i, r) in report.results().iter().enumerate() {
        if let Outcome::Truncated { lb, ub, reason } = r.as_ref().unwrap() {
            assert_eq!(*reason, TruncateReason::NodeBudget, "query {i}");
            let exact = aggregate_exact(&kernel, &ps, &w, queries.point(i));
            let tol = 1e-9 * (1.0 + exact.abs());
            assert!(
                *lb <= exact + tol && exact <= *ub + tol,
                "query {i}: truncated interval [{lb}, {ub}] misses {exact}"
            );
        }
    }
}

props! {
    /// Anytime guarantee as a property: for random queries and random node
    /// budgets, a truncated interval always encloses the oracle's exact
    /// value, and completion always matches the unbudgeted bits.
    #[test]
    fn prop_truncated_intervals_enclose_exact(
        seed in 0u64..25,
        qi in 0usize..500,
        cap in 1u64..40,
    ) {
        let (eval, ps, w, kernel) = build(seed + 100);
        let q = ps.point(qi % ps.len());
        let exact = aggregate_exact(&kernel, &ps, &w, q);
        let query = Query::Within { tol: 1e-7 };
        let budget = Budget::unlimited().max_nodes(cap);
        let out = eval.run_budgeted(q, query, None, &budget).unwrap();
        let tol = 1e-9 * (1.0 + exact.abs());
        prop_assert!(out.lb() <= exact + tol && exact <= out.ub() + tol,
            "[{}, {}] misses {exact}", out.lb(), out.ub());
        if let Outcome::Complete(run) = out {
            let plain = eval.run_query(q, query, None);
            prop_assert_eq!(run.lb.to_bits(), plain.lb.to_bits());
            prop_assert_eq!(run.ub.to_bits(), plain.ub.to_bits());
            prop_assert_eq!(run.iterations, plain.iterations);
        }
    }
}
