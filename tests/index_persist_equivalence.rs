//! The persistence contract as a property: an evaluator restored from an
//! index file must be **bitwise indistinguishable** from the one that
//! wrote it — same outcomes, same iteration counts, same refinement
//! traces, for both index families, every kernel, every query variant,
//! mixed-sign weights, and every batch thread count. No tolerance
//! anywhere: loading is a zero-copy re-view of the very buffers that
//! were serialized, so a single differing bit is a format bug.
//!
//! The second half pins the failure mode: corrupted files (truncated,
//! bit-flipped, foreign magic/endianness/version) must be rejected with
//! the matching typed [`KarlError`] — never a panic, never UB, and never
//! a silently wrong evaluator.

use std::path::{Path, PathBuf};

use karl::core::{
    AnyEvaluator, BoundMethod, Budget, Engine, Evaluator, IndexMeta, KarlError, Kernel, Query,
    QueryBatch, Scratch, StorageCalibration, StorageProfile,
};
use karl::geom::{Ball, PointSet, Rect};
use karl::tree::NodeShape;
use karl_testkit::rng::{Rng, SeedableRng, StdRng};
use karl_testkit::{prop_assert, prop_assert_eq, props};

fn clustered(n: usize, d: usize, rng: &mut StdRng) -> PointSet {
    let mut data = Vec::with_capacity(n * d);
    for i in 0..n {
        match i % 3 {
            0 => data.extend((0..d).map(|_| -1.5 + rng.random_range(-0.4..0.4))),
            1 => data.extend((0..d).map(|_| 1.5 + rng.random_range(-0.4..0.4))),
            _ => data.extend((0..d).map(|_| rng.random_range(-3.0..3.0))),
        }
    }
    PointSet::new(d, data)
}

fn mixed_weights(n: usize, rng: &mut StdRng) -> Vec<f64> {
    (0..n)
        .map(|_| {
            let w: f64 = rng.random_range(0.1..1.5);
            if rng.random_bool(0.35) {
                -w
            } else {
                w
            }
        })
        .collect()
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("karl_index_persist_tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn meta_for(eval_kernel: Kernel, method: BoundMethod, leaf: usize) -> IndexMeta {
    IndexMeta {
        kernel: eval_kernel,
        method,
        leaf_capacity: leaf as u32,
        profile: StorageProfile::Memory,
        calibration: StorageCalibration::canned(StorageProfile::Memory),
    }
}

/// Writes `fresh` to `path`, loads it back, and asserts the loaded
/// evaluator is bitwise identical on raw outcomes, traces, exact scans,
/// and batch execution at 1/2/4/8 threads plus the `KARL_THREADS`
/// default.
fn assert_round_trip<S: NodeShape + Sync>(
    fresh: &Evaluator<S>,
    path: &Path,
    meta: &IndexMeta,
    queries: &PointSet,
    query: Query,
) {
    let bytes = fresh.write_index_file(path, meta).unwrap();
    prop_assert!(bytes >= 64);
    let (loaded, rmeta) = Evaluator::<S>::from_index_file(path).unwrap();
    prop_assert_eq!(&rmeta, meta);
    prop_assert_eq!(loaded.len(), fresh.len());
    prop_assert_eq!(loaded.dims(), fresh.dims());
    prop_assert_eq!(loaded.max_depth(), fresh.max_depth());
    prop_assert!(!loaded.pointer_available() || fresh.is_empty());

    let mut scratch = Scratch::new();
    for q in queries.iter() {
        // Raw outcomes, fresh and reused scratch.
        let a = fresh.run_query(q, query, None);
        prop_assert_eq!(loaded.run_query(q, query, None), a);
        prop_assert_eq!(
            loaded.run_with_scratch_on(Engine::Frozen, q, query, None, &mut scratch),
            a
        );
        // Refinement traces, step by step.
        let (out_f, trace_f) = fresh.trace_run_on(Engine::Frozen, q, query);
        let (out_l, trace_l) = loaded.trace_run_on(Engine::Frozen, q, query);
        prop_assert_eq!(out_l, out_f);
        prop_assert_eq!(trace_l, trace_f);
        // Ground-truth scans agree bit for bit (same buffers, same order).
        prop_assert_eq!(loaded.exact(q).to_bits(), fresh.exact(q).to_bits());
    }

    // Batch execution: explicit thread counts plus the KARL_THREADS
    // default (ci.sh replays this test under KARL_THREADS=4).
    let baseline = QueryBatch::new(queries, query).threads(1).run(fresh);
    for threads in [1usize, 2, 4, 8] {
        let batch = QueryBatch::new(queries, query).threads(threads).run(&loaded);
        prop_assert_eq!(batch.outcomes(), baseline.outcomes());
    }
    let default_threads = QueryBatch::new(queries, query).run(&loaded);
    prop_assert_eq!(default_threads.outcomes(), baseline.outcomes());

    // The pointer engine is typed-unavailable on the loaded side.
    let q0: Vec<f64> = queries.point(0).to_vec();
    let err = loaded
        .run_budgeted_with_scratch_on(
            Engine::Pointer,
            &q0,
            query,
            None,
            &Budget::unlimited(),
            &mut Scratch::new(),
        )
        .unwrap_err();
    prop_assert_eq!(err, KarlError::PointerEngineUnavailable);
}

props! {
    #[test]
    fn loaded_index_is_bitwise_identical_to_fresh_build(
        seed in 0u64..1_000_000,
        n in 30usize..150,
        d in 1usize..9,
        leaf in 1usize..24,
        kernel_id in 0usize..4,
        variant in 0usize..3
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let sota = rng.random_bool(0.5);
        let points = clustered(n, d, &mut rng);
        let weights = mixed_weights(n, &mut rng);
        let kernel = match kernel_id {
            0 => Kernel::gaussian(rng.random_range(0.3..1.5)),
            1 => Kernel::laplacian(rng.random_range(0.3..1.2)),
            2 => Kernel::polynomial(rng.random_range(0.1..0.5), 0.2, 2),
            _ => Kernel::sigmoid(rng.random_range(0.1..0.6), 0.1),
        };
        let query = match variant {
            0 => Query::Tkaq { tau: rng.random_range(-0.5..0.5) },
            1 => Query::Ekaq { eps: rng.random_range(0.01..0.4) },
            _ => Query::Within { tol: rng.random_range(0.001..0.1) },
        };
        let method = if sota { BoundMethod::Sota } else { BoundMethod::Karl };
        let queries = clustered(12, d, &mut rng);
        let meta = meta_for(kernel, method, leaf);

        let kd = Evaluator::<Rect>::build(&points, &weights, kernel, method, leaf);
        let kd_path = tmp(&format!("kd_{seed}_{n}_{d}_{leaf}_{kernel_id}_{variant}.idx"));
        assert_round_trip(&kd, &kd_path, &meta, &queries, query);

        let ball = Evaluator::<Ball>::build(&points, &weights, kernel, method, leaf);
        let ball_path = tmp(&format!("ball_{seed}_{n}_{d}_{leaf}_{kernel_id}_{variant}.idx"));
        assert_round_trip(&ball, &ball_path, &meta, &queries, query);

        // Family dispatch: AnyEvaluator picks the family from the header
        // and answers identically.
        let (any, _) = AnyEvaluator::from_index_file(&kd_path).unwrap();
        let q0: Vec<f64> = queries.point(0).to_vec();
        prop_assert_eq!(any.exact(&q0).to_bits(), kd.exact(&q0).to_bits());
        // Loading a kd file as a ball evaluator is a typed format error.
        prop_assert!(matches!(
            Evaluator::<Ball>::from_index_file(&kd_path),
            Err(KarlError::IndexFormat { .. })
        ));

        std::fs::remove_file(&kd_path).ok();
        std::fs::remove_file(&ball_path).ok();
    }
}

// ---------------------------------------------------------------------
// Corruption: every damaged file is rejected with the matching typed
// error. Built once, damaged many ways.
// ---------------------------------------------------------------------

fn written_index(name: &str) -> (PathBuf, Vec<u8>) {
    let mut rng = StdRng::seed_from_u64(7);
    let points = clustered(80, 3, &mut rng);
    let weights = mixed_weights(80, &mut rng);
    let kernel = Kernel::gaussian(0.7);
    let eval = Evaluator::<Rect>::build(&points, &weights, kernel, BoundMethod::Karl, 8);
    let path = tmp(name);
    eval.write_index_file(&path, &meta_for(kernel, BoundMethod::Karl, 8))
        .unwrap();
    let bytes = std::fs::read(&path).unwrap();
    (path, bytes)
}

#[test]
fn truncated_files_are_rejected_typed() {
    let (path, bytes) = written_index("truncated.idx");
    // Shorter than the fixed header.
    std::fs::write(&path, &bytes[..32]).unwrap();
    let err = Evaluator::<Rect>::from_index_file(&path).unwrap_err();
    assert_eq!(err, KarlError::Truncated { needed: 64, got: 32 });
    // Mid-payload cut: the header promises more bytes than exist.
    std::fs::write(&path, &bytes[..bytes.len() - 128]).unwrap();
    assert!(matches!(
        Evaluator::<Rect>::from_index_file(&path),
        Err(KarlError::Truncated { .. })
    ));
    std::fs::remove_file(&path).ok();
}

#[test]
fn flipped_payload_byte_is_a_checksum_mismatch() {
    let (path, bytes) = written_index("bitflip.idx");
    let mut bad = bytes.clone();
    let last = bad.len() - 1;
    bad[last] ^= 0x01;
    std::fs::write(&path, &bad).unwrap();
    let err = Evaluator::<Rect>::from_index_file(&path).unwrap_err();
    assert!(
        matches!(err, KarlError::ChecksumMismatch { expected, got } if expected != got),
        "{err:?}"
    );
    // Every single-byte flip in the payload region is caught.
    for off in [64usize, 200, bytes.len() / 2] {
        let mut bad = bytes.clone();
        bad[off] ^= 0xFF;
        std::fs::write(&path, &bad).unwrap();
        assert!(
            matches!(
                Evaluator::<Rect>::from_index_file(&path),
                Err(KarlError::ChecksumMismatch { .. })
            ),
            "flip at {off}"
        );
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn wrong_magic_and_endianness_are_format_errors() {
    let (path, bytes) = written_index("magic.idx");
    // Foreign magic.
    let mut bad = bytes.clone();
    bad[..8].copy_from_slice(b"NOTKARL!");
    std::fs::write(&path, &bad).unwrap();
    assert!(matches!(
        Evaluator::<Rect>::from_index_file(&path),
        Err(KarlError::IndexFormat { .. })
    ));
    // Byte-swapped endianness tag (a file from a foreign-endian host).
    let mut bad = bytes.clone();
    bad[12..16].reverse();
    std::fs::write(&path, &bad).unwrap();
    let err = Evaluator::<Rect>::from_index_file(&path).unwrap_err();
    assert!(matches!(err, KarlError::IndexFormat { .. }), "{err:?}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn future_version_is_rejected_with_supported_range() {
    let (path, bytes) = written_index("version.idx");
    let mut bad = bytes.clone();
    bad[8..12].copy_from_slice(&99u32.to_le_bytes());
    std::fs::write(&path, &bad).unwrap();
    let err = Evaluator::<Rect>::from_index_file(&path).unwrap_err();
    assert_eq!(
        err,
        KarlError::VersionUnsupported {
            found: 99,
            supported: 1
        }
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn missing_file_is_an_io_error() {
    let path = tmp("does_not_exist.idx");
    std::fs::remove_file(&path).ok();
    assert!(matches!(
        Evaluator::<Rect>::from_index_file(&path),
        Err(KarlError::IndexIo { .. })
    ));
}
