//! End-to-end Type II / Type III pipelines: SMO training on registry
//! datasets, classification served through KARL evaluators, answers
//! compared with the exact model decision.

use karl::core::{BoundMethod, Evaluator, Kernel, LibSvmScan};
use karl::data::{by_name, sample_queries};
use karl::geom::{Ball, Rect};
use karl::svm::{CSvc, OneClassSvm};

#[test]
fn one_class_tkaq_matches_model_predictions() {
    let spec = by_name("nsl-kdd").unwrap();
    let ds = spec.generate_n(1_500);
    let kernel = Kernel::gaussian(1.0 / ds.points.dims() as f64);
    let model = OneClassSvm::new(spec.suggested_nu, kernel).train(&ds.points);
    assert!(model.weights().iter().all(|&w| w > 0.0), "Type II weights");

    let queries = sample_queries(&ds.points, 150, 3);
    let tau = model.threshold();
    let eval_kd =
        Evaluator::<Rect>::build(model.support(), model.weights(), kernel, BoundMethod::Karl, 20);
    let eval_ball =
        Evaluator::<Ball>::build(model.support(), model.weights(), kernel, BoundMethod::Karl, 20);
    for q in queries.iter() {
        let expect = model.predict(q);
        assert_eq!(eval_kd.tkaq(q, tau), expect);
        assert_eq!(eval_ball.tkaq(q, tau), expect);
    }
}

#[test]
fn two_class_tkaq_matches_model_predictions() {
    let spec = by_name("ijcnn1").unwrap();
    let ds = spec.generate_n(1_200);
    let labels = ds.labels.unwrap();
    let kernel = Kernel::gaussian(1.0 / ds.points.dims() as f64);
    let model = CSvc::new(10.0, kernel).train(&ds.points, &labels);
    assert!(
        model.weights().iter().any(|&w| w < 0.0),
        "Type III weighting must mix signs"
    );

    let queries = sample_queries(&ds.points, 150, 4);
    let tau = model.threshold();
    let eval =
        Evaluator::<Rect>::build(model.support(), model.weights(), kernel, BoundMethod::Karl, 20);
    let libsvm = LibSvmScan::new(model.support().clone(), model.weights().to_vec(), kernel);
    for q in queries.iter() {
        let expect = model.predict(q);
        assert_eq!(eval.tkaq(q, tau), expect, "KARL flipped a prediction");
        assert_eq!(libsvm.tkaq(q, tau), expect, "LIBSVM-style scan disagrees");
    }
}

#[test]
fn polynomial_kernel_svm_served_by_karl() {
    // The Table X pipeline: polynomial kernel (deg 3), data in [−1, 1]^d.
    let spec = by_name("a9a").unwrap();
    let ds = spec.generate_n(800);
    let labels = ds.labels.unwrap();
    let sym = karl::data::normalize_symmetric(&ds.points);
    let kernel = Kernel::polynomial(1.0 / sym.dims() as f64, 0.0, 3);
    let model = CSvc::new(2.0, kernel).train(&sym, &labels);
    let queries = sample_queries(&sym, 100, 5);
    let tau = model.threshold();
    let eval =
        Evaluator::<Rect>::build(model.support(), model.weights(), kernel, BoundMethod::Karl, 20);
    for q in queries.iter() {
        assert_eq!(eval.tkaq(q, tau), model.predict(q));
    }
}

#[test]
fn sota_and_karl_agree_on_svm_workloads() {
    let spec = by_name("covtype").unwrap();
    let ds = spec.generate_n(1_000);
    let kernel = Kernel::gaussian(1.0 / ds.points.dims() as f64);
    let model = OneClassSvm::new(spec.suggested_nu, kernel).train(&ds.points);
    let queries = sample_queries(&ds.points, 100, 6);
    let tau = model.threshold();
    let karl =
        Evaluator::<Rect>::build(model.support(), model.weights(), kernel, BoundMethod::Karl, 20);
    let sota = karl.clone().with_method(BoundMethod::Sota);
    for q in queries.iter() {
        assert_eq!(karl.tkaq(q, tau), sota.tkaq(q, tau));
    }
}
