//! The tentpole contract of the frozen SoA index as a property: for random
//! datasets, mixed-sign weights, both index families, both bound methods
//! (SOTA and KARL), every kernel and every query variant, the frozen engine
//! must return [`RunOutcome`]s and refinement traces **bitwise identical**
//! to the pointer engine's. No tolerance anywhere — freezing the tree and
//! fusing the bound kernels may not change a single bit, a single
//! iteration count, or a single trace step.
//!
//! The pointer tree is the differential-testing oracle: it computes each
//! per-node quantity with the original separate primitives, so any
//! reassociation sneaking into the fused kernels fails here immediately.

use karl::core::{BoundMethod, Engine, Evaluator, Kernel, Query, QueryBatch, RunOutcome, Scratch};
use karl::geom::{Ball, PointSet, Rect};
use karl::tree::NodeShape;
use karl_testkit::rng::{Rng, SeedableRng, StdRng};
use karl_testkit::{prop_assert, prop_assert_eq, props};

/// Two Gaussian blobs plus a uniform background (same shape as the batch
/// equivalence test) so refinement actually walks the tree.
fn clustered(n: usize, d: usize, rng: &mut StdRng) -> PointSet {
    let mut data = Vec::with_capacity(n * d);
    for i in 0..n {
        match i % 3 {
            0 => data.extend((0..d).map(|_| -1.5 + rng.random_range(-0.4..0.4))),
            1 => data.extend((0..d).map(|_| 1.5 + rng.random_range(-0.4..0.4))),
            _ => data.extend((0..d).map(|_| rng.random_range(-3.0..3.0))),
        }
    }
    PointSet::new(d, data)
}

fn mixed_weights(n: usize, rng: &mut StdRng) -> Vec<f64> {
    (0..n)
        .map(|_| {
            let w: f64 = rng.random_range(0.1..1.5);
            if rng.random_bool(0.35) {
                -w
            } else {
                w
            }
        })
        .collect()
}

/// Asserts pointer/frozen bitwise identity for one evaluator over a query
/// stream: raw outcomes, level-capped outcomes, traces, shared-scratch
/// runs, and batch execution at several thread counts.
fn assert_engines_identical<S: NodeShape + Sync>(
    eval: &Evaluator<S>,
    queries: &PointSet,
    query: Query,
    level_cap: Option<u16>,
) {
    let pointer: Vec<RunOutcome> = queries
        .iter()
        .map(|q| eval.run_query_on(Engine::Pointer, q, query, None))
        .collect();

    let mut scratch = Scratch::new();
    for (i, q) in queries.iter().enumerate() {
        // Fresh-scratch frozen run.
        let frozen = eval.run_query_on(Engine::Frozen, q, query, None);
        prop_assert_eq!(frozen, pointer[i]);
        // Reused-scratch frozen run (the batch worker's hot path).
        let reused = eval.run_with_scratch_on(Engine::Frozen, q, query, None, &mut scratch);
        prop_assert_eq!(reused, pointer[i]);
        // Level-capped runs through both engines.
        let cap_p = eval.run_query_on(Engine::Pointer, q, query, level_cap);
        let cap_f = eval.run_query_on(Engine::Frozen, q, query, level_cap);
        prop_assert_eq!(cap_f, cap_p);
        // Full refinement traces, step by step.
        let (out_p, trace_p) = eval.trace_run_on(Engine::Pointer, q, query);
        let (out_f, trace_f) = eval.trace_run_on(Engine::Frozen, q, query);
        prop_assert_eq!(out_f, out_p);
        prop_assert_eq!(trace_f, trace_p);
        prop_assert!(!trace_f.is_empty());
    }

    // The batch engine defaults to the frozen path; at every thread count
    // it must reproduce the sequential pointer loop bitwise.
    for threads in [1usize, 2, 4, 8] {
        let batch = QueryBatch::new(queries, query).threads(threads).run(eval);
        prop_assert_eq!(batch.outcomes(), &pointer[..]);
        let batch_ptr = QueryBatch::new(queries, query)
            .engine(Engine::Pointer)
            .threads(threads)
            .run(eval);
        prop_assert_eq!(batch_ptr.outcomes(), &pointer[..]);
    }
}

props! {
    #[test]
    fn frozen_engine_is_bitwise_identical_to_pointer(
        seed in 0u64..1_000_000,
        n in 30usize..170,
        d in 1usize..9,
        leaf in 1usize..24,
        kernel_id in 0usize..4,
        variant in 0usize..3
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        // Bound method and level cap are drawn from the seeded RNG (the
        // testkit tuple strategy tops out at six bindings).
        let sota = rng.random_bool(0.5);
        let cap = rng.random_range(0u32..6) as u16;
        let points = clustered(n, d, &mut rng);
        let weights = mixed_weights(n, &mut rng);
        let kernel = match kernel_id {
            0 => Kernel::gaussian(rng.random_range(0.3..1.5)),
            1 => Kernel::laplacian(rng.random_range(0.3..1.2)),
            2 => Kernel::polynomial(rng.random_range(0.1..0.5), 0.2, 2),
            _ => Kernel::sigmoid(rng.random_range(0.1..0.6), 0.1),
        };
        let query = match variant {
            0 => Query::Tkaq { tau: rng.random_range(-0.5..0.5) },
            1 => Query::Ekaq { eps: rng.random_range(0.01..0.4) },
            _ => Query::Within { tol: rng.random_range(0.001..0.1) },
        };
        let method = if sota { BoundMethod::Sota } else { BoundMethod::Karl };
        let queries = clustered(16, d, &mut rng);

        let kd = Evaluator::<Rect>::build(&points, &weights, kernel, method, leaf);
        assert_engines_identical(&kd, &queries, query, Some(cap));

        let ball = Evaluator::<Ball>::build(&points, &weights, kernel, method, leaf);
        assert_engines_identical(&ball, &queries, query, Some(cap));
    }
}
