//! The determinism contract of the SIMD backend as a property: for random
//! datasets, mixed-sign weights, both index families, every kernel and
//! every query variant — including tail lengths `n % 4 ≠ 0` and odd
//! dimensionalities — the dispatched vector backend must produce
//! [`RunOutcome`]s, refinement traces and batch reports **bitwise
//! identical** to the forced-scalar backend. No tolerance anywhere: the
//! 4-wide blocked accumulator order is canonical, SIMD lanes map 1:1 onto
//! the four scalar accumulators, and no FMA contraction is permitted, so
//! switching backends may not change a single bit, iteration count, or
//! trace step at any thread count.
//!
//! The backend selector is process-global, so every flip in this file is
//! serialized behind one mutex and restored to `Auto` afterward — the
//! other integration-test binaries then still run whatever the host
//! detects.

use std::sync::Mutex;

use karl::core::{
    BoundMethod, Engine, Evaluator, Kernel, Query, QueryBatch, RunOutcome, TraceStep,
};
use karl::geom::{backend_name, set_backend, Ball, PointSet, Rect, SimdChoice};
use karl::tree::NodeShape;
use karl_testkit::rng::{Rng, SeedableRng, StdRng};
use karl_testkit::{prop_assert, prop_assert_eq, props};

/// Serializes backend flips across the `props!` shrink loop and any future
/// sibling tests in this binary.
static BACKEND_LOCK: Mutex<()> = Mutex::new(());

/// Restores the `Auto` backend even if an assertion unwinds mid-case.
struct RestoreAuto;
impl Drop for RestoreAuto {
    fn drop(&mut self) {
        set_backend(SimdChoice::Auto);
    }
}

/// Two Gaussian blobs plus a uniform background so refinement walks the
/// tree instead of terminating at the root.
fn clustered(n: usize, d: usize, rng: &mut StdRng) -> PointSet {
    let mut data = Vec::with_capacity(n * d);
    for i in 0..n {
        match i % 3 {
            0 => data.extend((0..d).map(|_| -1.5 + rng.random_range(-0.4..0.4))),
            1 => data.extend((0..d).map(|_| 1.5 + rng.random_range(-0.4..0.4))),
            _ => data.extend((0..d).map(|_| rng.random_range(-3.0..3.0))),
        }
    }
    PointSet::new(d, data)
}

fn mixed_weights(n: usize, rng: &mut StdRng) -> Vec<f64> {
    (0..n)
        .map(|_| {
            let w: f64 = rng.random_range(0.1..1.5);
            if rng.random_bool(0.35) {
                -w
            } else {
                w
            }
        })
        .collect()
}

/// Everything one backend produces for one (evaluator, query stream) pair:
/// per-query outcomes and traces through both engines, plus batch reports
/// at several thread counts. Derives `PartialEq` so a whole run compares
/// bitwise in one assertion.
#[derive(Debug, PartialEq)]
struct BackendRun {
    pointer: Vec<RunOutcome>,
    frozen: Vec<RunOutcome>,
    traces: Vec<(RunOutcome, Vec<TraceStep>)>,
    batches: Vec<Vec<RunOutcome>>,
}

fn run_everything<S: NodeShape + Sync>(
    eval: &Evaluator<S>,
    queries: &PointSet,
    query: Query,
) -> BackendRun {
    let pointer = queries
        .iter()
        .map(|q| eval.run_query_on(Engine::Pointer, q, query, None))
        .collect();
    let frozen = queries
        .iter()
        .map(|q| eval.run_query_on(Engine::Frozen, q, query, None))
        .collect();
    let traces = queries
        .iter()
        .map(|q| eval.trace_run_on(Engine::Frozen, q, query))
        .collect();
    let batches = [1usize, 2, 4, 8]
        .iter()
        .map(|&t| {
            QueryBatch::new(queries, query)
                .threads(t)
                .run(eval)
                .outcomes()
                .to_vec()
        })
        .collect();
    BackendRun {
        pointer,
        frozen,
        traces,
        batches,
    }
}

/// Builds the evaluator under the *active* backend too: `NodeStats` sums,
/// bounding rectangles and centroid norms all flow through the dispatched
/// primitives, so the build itself is part of the contract.
fn scalar_vs_dispatched<S: NodeShape + Sync>(
    points: &PointSet,
    weights: &[f64],
    kernel: Kernel,
    method: BoundMethod,
    leaf: usize,
    queries: &PointSet,
    query: Query,
) {
    set_backend(SimdChoice::Scalar);
    assert_eq!(backend_name(), "scalar");
    let eval_s = Evaluator::<S>::build(points, weights, kernel, method, leaf);
    let scalar = run_everything(&eval_s, queries, query);

    set_backend(SimdChoice::Auto);
    let eval_d = Evaluator::<S>::build(points, weights, kernel, method, leaf);
    let dispatched = run_everything(&eval_d, queries, query);

    prop_assert_eq!(
        &dispatched,
        &scalar,
        "backend {} diverged from scalar",
        backend_name()
    );
    // Cross-build check: a scalar-built tree queried by the dispatched
    // backend (the persistence story — indexes outlive the process that
    // built them) must answer identically as well.
    let cross = run_everything(&eval_s, queries, query);
    prop_assert_eq!(&cross, &scalar, "cross-backend query diverged");
    prop_assert!(!scalar.traces.is_empty());
}

props! {
    /// The tentpole property: across both families, four kernels, three
    /// query variants, mixed-sign weights, every tail length and 1/2/4/8
    /// threads, forced-scalar and runtime-dispatched backends are bitwise
    /// interchangeable — outcomes, traces and batch reports alike.
    #[test]
    fn simd_backends_are_bitwise_interchangeable(
        seed in 0u64..1_000_000,
        n in 30usize..170,
        d in 1usize..9,
        leaf in 1usize..24,
        kernel_id in 0usize..4,
        variant in 0usize..3
    ) {
        let _guard = BACKEND_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let _restore = RestoreAuto;
        let mut rng = StdRng::seed_from_u64(seed);
        let sota = rng.random_bool(0.5);
        // Force every congruence class of n mod 4 into the stream so the
        // vector kernels' scalar tails are exercised on point counts too.
        let n = n + (seed as usize) % 4;
        let points = clustered(n, d, &mut rng);
        let weights = mixed_weights(n, &mut rng);
        let kernel = match kernel_id {
            0 => Kernel::gaussian(rng.random_range(0.3..1.5)),
            1 => Kernel::laplacian(rng.random_range(0.3..1.2)),
            2 => Kernel::polynomial(rng.random_range(0.1..0.5), 0.2, 2),
            _ => Kernel::sigmoid(rng.random_range(0.1..0.6), 0.1),
        };
        let query = match variant {
            0 => Query::Tkaq { tau: rng.random_range(-0.5..0.5) },
            1 => Query::Ekaq { eps: rng.random_range(0.01..0.4) },
            _ => Query::Within { tol: rng.random_range(0.001..0.1) },
        };
        let method = if sota { BoundMethod::Sota } else { BoundMethod::Karl };
        let queries = clustered(16, d, &mut rng);

        scalar_vs_dispatched::<Rect>(&points, &weights, kernel, method, leaf, &queries, query);
        scalar_vs_dispatched::<Ball>(&points, &weights, kernel, method, leaf, &queries, query);
    }
}

/// A pinned, non-random spot check kept deliberately tiny so a contract
/// break fails with a readable diff: n = 7 (largest tail), d = 5 (odd),
/// one query per variant.
#[test]
fn pinned_tail_case_is_backend_independent() {
    let _guard = BACKEND_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let _restore = RestoreAuto;
    let points = PointSet::new(
        5,
        (0..35).map(|i| ((i * 37) % 11) as f64 * 0.25 - 1.0).collect(),
    );
    let weights = vec![1.0, -0.5, 0.75, 2.0, -1.25, 0.3, 1.1];
    let kernel = Kernel::gaussian(0.8);
    let q = [0.1, -0.2, 0.3, -0.4, 0.5];
    for query in [
        Query::Tkaq { tau: 0.2 },
        Query::Ekaq { eps: 0.05 },
        Query::Within { tol: 0.01 },
    ] {
        set_backend(SimdChoice::Scalar);
        let es = Evaluator::<Rect>::build(&points, &weights, kernel, BoundMethod::Karl, 2);
        let (out_s, trace_s) = es.trace_run_on(Engine::Frozen, &q, query);
        set_backend(SimdChoice::Auto);
        let ed = Evaluator::<Rect>::build(&points, &weights, kernel, BoundMethod::Karl, 2);
        let (out_d, trace_d) = ed.trace_run_on(Engine::Frozen, &q, query);
        assert_eq!(out_d, out_s, "{query:?} outcome under {}", backend_name());
        assert_eq!(trace_d, trace_s, "{query:?} trace under {}", backend_name());
    }
}
