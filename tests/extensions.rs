//! Integration coverage for the features beyond the paper's core scope:
//! the Laplacian kernel, the absolute-gap query mode, the streaming
//! evaluator, kernel regression and multi-class SVM (the paper's stated
//! future directions).

use karl::core::{
    aggregate_exact, BoundMethod, Evaluator, Kernel, Query, StreamingEvaluator,
};
use karl::data::{by_name, sample_queries};
use karl::geom::{PointSet, Rect};
use karl::kde::KernelRegression;
use karl::svm::{CSvc, FastMultiClass, MultiClassSvm};

#[test]
fn laplacian_kernel_end_to_end() {
    let ds = by_name("home").unwrap().generate_n(1_500);
    let w = vec![1.0; ds.points.len()];
    let kernel = Kernel::laplacian(3.0);
    let eval = Evaluator::<Rect>::build(&ds.points, &w, kernel, BoundMethod::Karl, 16);
    let queries = sample_queries(&ds.points, 30, 1);
    for q in queries.iter() {
        let truth = aggregate_exact(&kernel, &ds.points, &w, q);
        assert!(eval.tkaq(q, truth * 0.9));
        assert!(!eval.tkaq(q, truth * 1.1));
        let est = eval.ekaq(q, 0.15);
        assert!(est >= 0.85 * truth - 1e-12 && est <= 1.15 * truth + 1e-12);
    }
}

#[test]
fn within_query_encloses_truth_for_mixed_signs() {
    let ds = by_name("ijcnn1").unwrap().generate_n(800);
    let w: Vec<f64> = (0..800)
        .map(|i| if i % 2 == 0 { 1.0 } else { -0.7 })
        .collect();
    let kernel = Kernel::gaussian(4.0);
    let eval = Evaluator::<Rect>::build(&ds.points, &w, kernel, BoundMethod::Karl, 16);
    let queries = sample_queries(&ds.points, 20, 2);
    for q in queries.iter() {
        let truth = aggregate_exact(&kernel, &ds.points, &w, q);
        for tol in [1.0, 0.1, 0.001] {
            let (est, half) = eval.within(q, tol);
            assert!(half <= tol / 2.0 + 1e-12);
            assert!(
                (est - truth).abs() <= half + 1e-9 * (1.0 + truth.abs()),
                "estimate {est} ± {half} misses {truth}"
            );
        }
    }
}

#[test]
fn streaming_evaluator_tracks_a_growing_model() {
    // The online-kernel-learning scenario: the model grows batch by batch
    // and every intermediate state must answer queries exactly.
    let ds = by_name("susy").unwrap().generate_n(2_000);
    let kernel = Kernel::gaussian(5.0);
    let mut ev = StreamingEvaluator::<Rect>::new(ds.points.dims(), kernel, BoundMethod::Karl, 16);
    let mut so_far = PointSet::empty(ds.points.dims());
    let mut weights = Vec::new();
    for (i, p) in ds.points.iter().enumerate() {
        ev.insert(p, 1.0);
        so_far.push(p);
        weights.push(1.0);
        if i % 487 == 0 {
            let q = ds.points.point(i / 2);
            let truth = aggregate_exact(&kernel, &so_far, &weights, q);
            assert!((ev.exact(q) - truth).abs() < 1e-9 * (1.0 + truth));
            assert!(!ev.tkaq(q, truth * 1.05));
            assert!(ev.tkaq(q, truth * 0.95));
        }
    }
    assert_eq!(ev.len(), 2_000);
}

#[test]
fn kernel_regression_on_registry_data() {
    // Regress a smooth function of the first coordinate on home-like data.
    let ds = by_name("home").unwrap().generate_n(2_000);
    let targets: Vec<f64> = ds.points.iter().map(|p| (4.0 * p[0]).sin()).collect();
    let reg = KernelRegression::fit_with_gamma(ds.points.clone(), &targets, 60.0);
    let queries = sample_queries(&ds.points, 25, 3);
    for q in queries.iter() {
        let exact = reg.predict_exact(q);
        let est = reg.predict(q, 0.02);
        assert!(est.lo <= exact + 1e-9 && exact <= est.hi + 1e-9);
        assert!((est.value - exact).abs() <= 0.02 + 1e-9);
    }
}

#[test]
fn multiclass_svm_served_by_karl() {
    // 4 latent clusters → 4 classes; the KARL-served voter must agree with
    // the exact one-vs-one predictor on every query.
    let ds = by_name("home").unwrap().generate_n(900);
    // Label by quadrant of the two leading coordinates (an arbitrary but
    // learnable 4-class structure).
    let labels: Vec<usize> = ds
        .points
        .iter()
        .map(|p| (usize::from(p[0] > 0.5)) * 2 + usize::from(p[1] > 0.5))
        .collect();
    let distinct: std::collections::HashSet<_> = labels.iter().collect();
    assert!(distinct.len() >= 3, "need a real multi-class problem");
    let trainer = CSvc::new(10.0, Kernel::gaussian(8.0));
    let model = MultiClassSvm::train(&trainer, &ds.points, &labels);
    assert!(model.accuracy(&ds.points, &labels) > 0.9);
    let fast = FastMultiClass::new(&model, BoundMethod::Karl, 16);
    let queries = sample_queries(&ds.points, 60, 4);
    for q in queries.iter() {
        assert_eq!(fast.predict(q), model.predict(q));
    }
}

#[test]
fn within_query_tol_one_shot_on_type1() {
    // Query::Within through the AnyEvaluator `answer` plumbing.
    let ds = by_name("miniboone").unwrap().generate_n(1_000);
    let w = vec![1.0; 1_000];
    let kernel = Kernel::gaussian(2.0);
    let eval = karl::core::AnyEvaluator::build(
        karl::core::IndexKind::Ball,
        &ds.points,
        &w,
        kernel,
        BoundMethod::Karl,
        32,
    );
    let q = ds.points.point(123);
    let truth = aggregate_exact(&kernel, &ds.points, &w, q);
    let est = eval.answer(q, Query::Within { tol: 0.05 });
    assert!((est - truth).abs() <= 0.025 + 1e-9);
}
