//! Validated constructors vs. the adversarial-input generator: every
//! hostile case must either be rejected with the *right* [`KarlError`]
//! variant (index-level diagnostics included) or — when structurally
//! valid — build an evaluator whose answers match the brute-force oracle,
//! denormals, duplicates, mixed signs, extreme γ and all.

use karl::core::{BoundMethod, Evaluator, KarlError, Kernel, Query, QueryBatch};
use karl::geom::{Ball, PointSet, Rect};
use karl_testkit::adversarial::{adversarial_case, shape_edge_case, Expected};
use karl_testkit::oracle::exact_sum;
use karl_testkit::{prop_assert, prop_assert_eq, props};

props! {
    /// The tentpole property: constructor verdicts match the generator's
    /// tags, and accepted inputs answer correctly.
    #[test]
    fn prop_validated_build_matches_expected_verdict(seed in 0u64..300) {
        let case = adversarial_case(seed);
        let points = PointSet::new(case.dims, case.data.clone());
        let kernel = Kernel::gaussian(case.gamma);
        let built =
            Evaluator::<Rect>::try_build(&points, &case.weights, kernel, BoundMethod::Karl, 4);
        match case.expected {
            Expected::Accept => {
                let eval = match built {
                    Ok(e) => e,
                    Err(e) => panic!("valid case rejected: {e}"),
                };
                // Oracle agreement on an exact-interval query at a data point.
                let q = points.point(0);
                let exact = exact_sum(points.iter(), &case.weights, q, |a, b| kernel.eval(a, b));
                let out = eval.run_query(q, Query::Within { tol: 1e-12 }, None);
                // The evaluator computes distances via the norm identity,
                // the oracle via direct differences; at the generator's
                // coordinate/γ extremes the two agree to ~γ·‖x‖²·ε, which
                // this tolerance dominates.
                let tol = 1e-5 * (1.0 + exact.abs());
                prop_assert!(out.lb <= exact + tol && exact <= out.ub + tol,
                    "[{}, {}] misses oracle {exact}", out.lb, out.ub);
            }
            Expected::NonFinitePoint { index, dim } => {
                match built {
                    Err(KarlError::NonFinitePoint { index: i, dim: d, value }) => {
                        prop_assert_eq!(i, index);
                        prop_assert_eq!(d, dim);
                        prop_assert!(!value.is_finite());
                    }
                    other => panic!("expected NonFinitePoint({index},{dim}), got {other:?}"),
                }
            }
            Expected::NonFiniteWeight { index } => {
                match built {
                    Err(KarlError::NonFiniteWeight { index: i, value }) => {
                        prop_assert_eq!(i, index);
                        prop_assert!(!value.is_finite());
                    }
                    other => panic!("expected NonFiniteWeight({index}), got {other:?}"),
                }
            }
            Expected::AllZeroWeights => {
                prop_assert!(
                    matches!(built, Err(KarlError::AllZeroWeights)),
                    "expected AllZeroWeights, got {:?}", built.err()
                );
            }
        }
    }
}

props! {
    /// Shape edges: every SIMD tail length (n = 1..=7) crossed with odd
    /// dimensionalities, at leaf capacities that make the whole tree one
    /// tiny leaf or a few near-degenerate nodes. Verdicts must stay typed
    /// and accepted cases must still bracket the oracle — under both
    /// bounding families, so the vector kernels' scalar tails are hit on
    /// every code path.
    #[test]
    fn prop_shape_edges_build_and_answer_or_reject_typed(seed in 0u64..300) {
        let case = shape_edge_case(seed);
        let points = PointSet::new(case.dims, case.data.clone());
        let kernel = Kernel::gaussian(case.gamma);
        for leaf in [1usize, 2, 8] {
            let rect =
                Evaluator::<Rect>::try_build(&points, &case.weights, kernel, BoundMethod::Karl, leaf);
            let ball =
                Evaluator::<Ball>::try_build(&points, &case.weights, kernel, BoundMethod::Karl, leaf);
            match case.expected {
                Expected::Accept => {
                    let (rect, ball) = match (rect, ball) {
                        (Ok(r), Ok(b)) => (r, b),
                        (r, b) => panic!("valid tiny case rejected: {:?} / {:?}",
                            r.err(), b.err()),
                    };
                    let q = points.point(0);
                    let exact =
                        exact_sum(points.iter(), &case.weights, q, |a, b| kernel.eval(a, b));
                    let tol = 1e-5 * (1.0 + exact.abs());
                    for out in [
                        rect.run_query(q, Query::Within { tol: 1e-12 }, None),
                        ball.run_query(q, Query::Within { tol: 1e-12 }, None),
                    ] {
                        prop_assert!(out.lb <= exact + tol && exact <= out.ub + tol,
                            "n={} d={} leaf={leaf}: [{}, {}] misses oracle {exact}",
                            case.len(), case.dims, out.lb, out.ub);
                    }
                }
                Expected::NonFinitePoint { index, dim } => {
                    for built in [rect.err(), ball.map(|_| ()).err()] {
                        match built {
                            Some(KarlError::NonFinitePoint { index: i, dim: d, value }) => {
                                prop_assert_eq!(i, index);
                                prop_assert_eq!(d, dim);
                                prop_assert!(!value.is_finite());
                            }
                            other => panic!("expected NonFinitePoint({index},{dim}), got {other:?}"),
                        }
                    }
                }
                Expected::NonFiniteWeight { index } => {
                    for built in [rect.err(), ball.map(|_| ()).err()] {
                        match built {
                            Some(KarlError::NonFiniteWeight { index: i, value }) => {
                                prop_assert_eq!(i, index);
                                prop_assert!(!value.is_finite());
                            }
                            other => panic!("expected NonFiniteWeight({index}), got {other:?}"),
                        }
                    }
                }
                Expected::AllZeroWeights => {
                    prop_assert!(matches!(rect, Err(KarlError::AllZeroWeights)));
                    prop_assert!(matches!(ball, Err(KarlError::AllZeroWeights)));
                }
            }
        }
    }
}

#[test]
fn empty_ranges_panic_in_geometry_builders() {
    // Shape satellite: empty index sets are a caller bug, caught loudly at
    // the geometry boundary rather than producing a garbage rectangle.
    let points = PointSet::new(3, vec![0.0, 1.0, 2.0]);
    assert!(std::panic::catch_unwind(|| Rect::bounding(&points, &[])).is_err());
    assert!(std::panic::catch_unwind(|| Rect::bounding_range(&points, 1, 1)).is_err());
}

#[test]
fn invalid_parameters_are_rejected_with_typed_errors() {
    assert!(matches!(
        Kernel::try_gaussian(0.0),
        Err(KarlError::InvalidGamma { value }) if value == 0.0
    ));
    assert!(matches!(
        Kernel::try_gaussian(f64::NAN),
        Err(KarlError::InvalidGamma { .. })
    ));
    assert!(matches!(
        Kernel::try_polynomial(1.0, f64::INFINITY, 2),
        Err(KarlError::InvalidCoef0 { .. })
    ));
    assert!(matches!(
        Kernel::try_sigmoid(-1.0, 0.0),
        Err(KarlError::InvalidGamma { .. })
    ));
    // Extreme but valid γ is accepted.
    assert!(Kernel::try_gaussian(1e-300).is_ok());
    assert!(Kernel::try_laplacian(1e300).is_ok());

    let points = PointSet::new(2, vec![0.0, 0.0, 1.0, 1.0]);
    assert!(matches!(
        Evaluator::<Rect>::try_build(&points, &[1.0, 1.0], Kernel::gaussian(1.0),
            BoundMethod::Karl, 0),
        Err(KarlError::InvalidLeafCapacity)
    ));
    assert!(matches!(
        Evaluator::<Rect>::try_build(&points, &[1.0], Kernel::gaussian(1.0),
            BoundMethod::Karl, 2),
        Err(KarlError::LengthMismatch { expected: 2, got: 1 })
    ));

    let eval =
        Evaluator::<Rect>::try_build(&points, &[1.0, 1.0], Kernel::gaussian(1.0), BoundMethod::Karl, 2)
            .unwrap();
    assert!(matches!(
        eval.try_run_query(&[0.0], Query::Tkaq { tau: 0.5 }, None),
        Err(KarlError::DimMismatch { expected: 2, got: 1 })
    ));
    assert!(matches!(
        eval.try_run_query(&[f64::NAN, 0.0], Query::Tkaq { tau: 0.5 }, None),
        Err(KarlError::NonFiniteQuery { dim: 0, .. })
    ));
    assert!(matches!(
        eval.try_run_query(&[0.0, 0.0], Query::Ekaq { eps: -1.0 }, None),
        Err(KarlError::InvalidEps { .. })
    ));
    assert!(matches!(
        eval.try_run_query(&[0.0, 0.0], Query::Within { tol: 0.0 }, None),
        Err(KarlError::InvalidTol { .. })
    ));
}

#[test]
fn batch_rejects_dim_mismatch_in_release_builds() {
    // Satellite (a): the batch-entry dimension check is a checked error,
    // not a debug_assert, so release builds reject it too.
    let points = PointSet::new(3, vec![0.0; 9]);
    let eval = Evaluator::<Rect>::try_build(
        &points,
        &[1.0, 1.0, 1.0],
        Kernel::gaussian(1.0),
        BoundMethod::Karl,
        2,
    )
    .unwrap();
    let queries = PointSet::new(2, vec![0.0; 4]);
    let report = QueryBatch::new(&queries, Query::Tkaq { tau: 0.5 }).try_run(&eval);
    assert!(matches!(
        report,
        Err(KarlError::DimMismatch { expected: 3, got: 2 })
    ));
    // Batch-level construction errors are typed as well.
    assert!(matches!(
        QueryBatch::try_new(&queries, Query::Ekaq { eps: 0.0 }),
        Err(KarlError::InvalidEps { .. })
    ));
}

#[test]
fn error_display_carries_index_level_diagnostics() {
    let e = KarlError::NonFinitePoint {
        index: 7,
        dim: 2,
        value: f64::NEG_INFINITY,
    };
    let msg = e.to_string();
    assert!(msg.contains('7') && msg.contains('2'), "{msg}");
    let e = KarlError::QueryPanicked {
        index: 12,
        message: "boom".into(),
    };
    assert!(e.to_string().contains("12") && e.to_string().contains("boom"));
}
