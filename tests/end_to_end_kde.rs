//! End-to-end Type I (KDE) pipeline: registry dataset → Scott's-rule KDE →
//! KARL/SOTA evaluators over both index families, validated against the
//! exact scan.

use karl::core::{aggregate_exact, BoundMethod, IndexKind, Kernel, Scan};
use karl::data::{by_name, sample_queries};
use karl::kde::Kde;

#[test]
fn kde_pipeline_matches_scan_on_all_type1_datasets() {
    for name in ["miniboone", "home", "susy"] {
        let ds = by_name(name).unwrap().generate_n(3_000);
        let kde = Kde::fit(ds.points.clone());
        let weights = vec![kde.weight(); ds.points.len()];
        let kernel = Kernel::gaussian(kde.gamma());
        let scan = Scan::new(ds.points.clone(), weights.clone(), kernel);
        let queries = sample_queries(&ds.points, 40, 1);
        let mu: f64 =
            queries.iter().map(|q| scan.aggregate(q)).sum::<f64>() / queries.len() as f64;

        for kind in [IndexKind::Kd, IndexKind::Ball] {
            for method in [BoundMethod::Sota, BoundMethod::Karl] {
                let eval = karl::core::AnyEvaluator::build(
                    kind, &ds.points, &weights, kernel, method, 40,
                );
                for q in queries.iter() {
                    let truth = scan.aggregate(q);
                    // I-τ at the paper's default τ = μ (skip FP ties).
                    if (truth - mu).abs() > 1e-9 * mu.abs() {
                        assert_eq!(
                            eval.tkaq(q, mu),
                            truth >= mu,
                            "{name}/{kind:?}/{method:?} wrong TKAQ answer"
                        );
                    }
                    // I-ε at the paper's default ε = 0.2.
                    let est = eval.ekaq(q, 0.2);
                    assert!(
                        est >= 0.8 * truth - 1e-12 && est <= 1.2 * truth + 1e-12,
                        "{name}/{kind:?}/{method:?} eKAQ outside ε: {est} vs {truth}"
                    );
                }
            }
        }
    }
}

#[test]
fn kde_mean_density_threshold_is_discriminative() {
    // τ = μ must split the query set non-trivially on multi-modal data —
    // the property that makes the paper's I-τ experiments meaningful.
    let ds = by_name("miniboone").unwrap().generate_n(4_000);
    let kde = Kde::fit(ds.points.clone());
    let queries = sample_queries(&ds.points, 200, 2);
    let mu = kde.mean_density(&queries, 0.01);
    let eval = kde.evaluator(BoundMethod::Karl, 40);
    let above = queries.iter().filter(|q| eval.tkaq(q, mu)).count();
    assert!(
        above > 0 && above < queries.len(),
        "τ=μ separated {above}/{} queries",
        queries.len()
    );
}

#[test]
fn kde_density_agrees_with_direct_aggregate() {
    let ds = by_name("home").unwrap().generate_n(1_000);
    let kde = Kde::fit(ds.points.clone());
    let w = vec![kde.weight(); ds.points.len()];
    let q = ds.points.point(17);
    let direct = aggregate_exact(&Kernel::gaussian(kde.gamma()), &ds.points, &w, q);
    assert!((kde.density_exact(q) - direct).abs() < 1e-12);
}
