//! The tentpole contract of the envelope memoization as a property: the
//! cache is keyed on the exact bit patterns of `(curve, lo, hi, x̄)` and
//! stores the exact bits the builder produced, so enabling it may not
//! change a single output bit — not in the outcomes, not in the
//! iteration counts, not in any refinement trace step.
//!
//! For random datasets, mixed-sign weights, both index families, every
//! kernel and every query variant, this test runs a **duplicate-heavy**
//! query stream (each query appears twice, so the cache actually hits)
//! through three paths and demands bitwise identity:
//!
//! * the pointer engine (the differential-testing oracle, no cache),
//! * a shared cache-**on** scratch (warm across the whole stream), and
//! * a shared cache-**off** scratch,
//!
//! then replays the stream through [`QueryBatch`] at 1/2/4/8 threads with
//! the cache toggled both ways.

use karl::core::{BoundMethod, Engine, Evaluator, Kernel, Query, QueryBatch, RunOutcome, Scratch};
use karl::geom::{Ball, PointSet, Rect};
use karl::tree::NodeShape;
use karl_testkit::rng::{Rng, SeedableRng, StdRng};
use karl_testkit::{prop_assert, prop_assert_eq, props};

/// Two Gaussian blobs plus a uniform background so refinement actually
/// walks the tree (same shape as `frozen_equivalence.rs`).
fn clustered(n: usize, d: usize, rng: &mut StdRng) -> PointSet {
    let mut data = Vec::with_capacity(n * d);
    for i in 0..n {
        match i % 3 {
            0 => data.extend((0..d).map(|_| -1.5 + rng.random_range(-0.4..0.4))),
            1 => data.extend((0..d).map(|_| 1.5 + rng.random_range(-0.4..0.4))),
            _ => data.extend((0..d).map(|_| rng.random_range(-3.0..3.0))),
        }
    }
    PointSet::new(d, data)
}

fn mixed_weights(n: usize, rng: &mut StdRng) -> Vec<f64> {
    (0..n)
        .map(|_| {
            let w: f64 = rng.random_range(0.1..1.5);
            if rng.random_bool(0.35) {
                -w
            } else {
                w
            }
        })
        .collect()
}

/// Each of 8 distinct query points repeated twice, back to back — the
/// repeat guarantees exact key collisions, which is what exercises the
/// cache's hit path rather than just its insert path.
fn duplicated_queries(d: usize, rng: &mut StdRng) -> PointSet {
    let base = clustered(8, d, rng);
    let mut data = Vec::with_capacity(16 * d);
    for i in 0..16 {
        data.extend_from_slice(base.point(i % 8));
    }
    PointSet::new(d, data)
}

/// Asserts cache-on / cache-off / pointer-oracle bitwise identity for one
/// evaluator over a duplicate-heavy query stream: outcomes, traces, and
/// batch execution at several thread counts under both cache settings.
fn assert_cache_is_bitwise_neutral<S: NodeShape + Sync>(
    eval: &Evaluator<S>,
    queries: &PointSet,
    query: Query,
) {
    let pointer: Vec<RunOutcome> = queries
        .iter()
        .map(|q| eval.run_query_on(Engine::Pointer, q, query, None))
        .collect();

    // Shared scratches: the cache-on one stays warm across the whole
    // stream, so the second copy of every query hits entries the first
    // copy inserted.
    let mut on = Scratch::new();
    on.set_envelope_cache(true);
    let mut off = Scratch::new();
    for (i, q) in queries.iter().enumerate() {
        let with_cache = eval.run_with_scratch_on(Engine::Frozen, q, query, None, &mut on);
        let without = eval.run_with_scratch_on(Engine::Frozen, q, query, None, &mut off);
        prop_assert_eq!(with_cache, pointer[i]);
        prop_assert_eq!(without, pointer[i]);
    }

    // Refinement traces, step by step, through the same warm scratches.
    for q in queries.iter() {
        let out_on = eval.trace_run_with_scratch_on(Engine::Frozen, q, query, &mut on);
        let trace_on = on.trace().to_vec();
        let out_off = eval.trace_run_with_scratch_on(Engine::Frozen, q, query, &mut off);
        prop_assert_eq!(out_on, out_off);
        prop_assert_eq!(&trace_on[..], off.trace());
        prop_assert!(!trace_on.is_empty());
    }

    // Batch execution: both cache settings, several thread counts, all
    // bitwise equal to the sequential pointer oracle.
    for threads in [1usize, 2, 4, 8] {
        for cache in [true, false] {
            let batch = QueryBatch::new(queries, query)
                .threads(threads)
                .envelope_cache(cache)
                .run(eval);
            prop_assert_eq!(batch.outcomes(), &pointer[..]);
        }
    }
}

props! {
    #[test]
    fn envelope_cache_changes_no_bits(
        seed in 0u64..1_000_000,
        n in 30usize..170,
        d in 1usize..9,
        leaf in 1usize..24,
        kernel_id in 0usize..4,
        variant in 0usize..3
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let sota = rng.random_bool(0.25);
        let points = clustered(n, d, &mut rng);
        let weights = mixed_weights(n, &mut rng);
        let kernel = match kernel_id {
            0 => Kernel::gaussian(rng.random_range(0.3..1.5)),
            1 => Kernel::laplacian(rng.random_range(0.3..1.2)),
            2 => Kernel::polynomial(rng.random_range(0.1..0.5), 0.2, 2),
            _ => Kernel::sigmoid(rng.random_range(0.1..0.6), 0.1),
        };
        let query = match variant {
            0 => Query::Tkaq { tau: rng.random_range(-0.5..0.5) },
            1 => Query::Ekaq { eps: rng.random_range(0.01..0.4) },
            _ => Query::Within { tol: rng.random_range(0.001..0.1) },
        };
        // The cache only matters for KARL bounds, but SOTA runs ride along
        // to prove the toggle is inert there too.
        let method = if sota { BoundMethod::Sota } else { BoundMethod::Karl };
        let queries = duplicated_queries(d, &mut rng);

        let kd = Evaluator::<Rect>::build(&points, &weights, kernel, method, leaf);
        assert_cache_is_bitwise_neutral(&kd, &queries, query);

        let ball = Evaluator::<Ball>::build(&points, &weights, kernel, method, leaf);
        assert_cache_is_bitwise_neutral(&ball, &queries, query);
    }
}
