//! The batch engine's determinism contract as a property: for random
//! datasets, mixed-sign weights, every query variant, both index families
//! and thread counts 1/2/4/8, [`QueryBatch`] must return outcomes
//! **bitwise identical** to looping the sequential `Evaluator::run_query`
//! over the same queries. No tolerance anywhere — the parallel engine may
//! not change a single bit.

use karl::core::{BoundMethod, Evaluator, Kernel, Query, QueryBatch, RunOutcome, Scratch};
use karl::geom::{Ball, PointSet, Rect};
use karl_testkit::rng::{Rng, SeedableRng, StdRng};
use karl_testkit::{prop_assert, prop_assert_eq, props};

/// Two Gaussian blobs plus a uniform background — enough structure that
/// the refinement order actually matters (some queries terminate in a few
/// iterations, others walk deep into one cluster).
fn clustered(n: usize, d: usize, rng: &mut StdRng) -> PointSet {
    let mut data = Vec::with_capacity(n * d);
    for i in 0..n {
        match i % 3 {
            0 => data.extend((0..d).map(|_| -1.5 + rng.random_range(-0.4..0.4))),
            1 => data.extend((0..d).map(|_| 1.5 + rng.random_range(-0.4..0.4))),
            _ => data.extend((0..d).map(|_| rng.random_range(-3.0..3.0))),
        }
    }
    PointSet::new(d, data)
}

fn mixed_weights(n: usize, rng: &mut StdRng) -> Vec<f64> {
    (0..n)
        .map(|_| {
            let w: f64 = rng.random_range(0.1..1.5);
            if rng.random_bool(0.35) {
                -w
            } else {
                w
            }
        })
        .collect()
}

props! {
    #[test]
    fn batch_is_bitwise_identical_to_sequential_loop(
        seed in 0u64..1_000_000,
        n in 40usize..220,
        d in 1usize..5,
        leaf in 1usize..24,
        kernel_id in 0usize..3,
        variant in 0usize..3
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let points = clustered(n, d, &mut rng);
        let weights = mixed_weights(n, &mut rng);
        let kernel = match kernel_id {
            0 => Kernel::gaussian(rng.random_range(0.3..1.5)),
            1 => Kernel::laplacian(rng.random_range(0.3..1.2)),
            _ => Kernel::polynomial(rng.random_range(0.1..0.5), 0.2, 2),
        };
        let query = match variant {
            0 => Query::Tkaq { tau: rng.random_range(-0.5..0.5) },
            1 => Query::Ekaq { eps: rng.random_range(0.01..0.4) },
            _ => Query::Within { tol: rng.random_range(0.001..0.1) },
        };
        let queries = clustered(33, d, &mut rng);

        let kd = Evaluator::<Rect>::build(&points, &weights, kernel, BoundMethod::Karl, leaf);
        let ball = Evaluator::<Ball>::build(&points, &weights, kernel, BoundMethod::Karl, leaf);

        let seq_kd: Vec<RunOutcome> =
            queries.iter().map(|q| kd.run_query(q, query, None)).collect();
        let seq_ball: Vec<RunOutcome> =
            queries.iter().map(|q| ball.run_query(q, query, None)).collect();

        for threads in [1usize, 2, 4, 8] {
            let out_kd = QueryBatch::new(&queries, query).threads(threads).run(&kd);
            prop_assert_eq!(out_kd.outcomes(), &seq_kd[..]);
            prop_assert!(out_kd.threads() >= 1 && out_kd.threads() <= threads);

            let out_ball = QueryBatch::new(&queries, query).threads(threads).run(&ball);
            prop_assert_eq!(out_ball.outcomes(), &seq_ball[..]);
        }

        // One shared scratch across all queries must not leak state between
        // them either — this is exactly what each batch worker does.
        let mut scratch = Scratch::new();
        for (q, expect) in queries.iter().zip(&seq_kd) {
            prop_assert_eq!(kd.run_with_scratch(q, query, None, &mut scratch), *expect);
        }
    }
}
