//! Differential property test for the dual-tree batch engine: for random
//! clustered datasets, mixed-sign weights, all four kernels, both index
//! families and thread counts 1/2/4/8, [`QueryBatch::run_dual`] must
//! *answer* exactly like the per-query frozen engine —
//!
//! * identical TKAQ `decisions()` (and therefore bitwise-identical
//!   `estimates()`, which are `1.0`/`0.0` images of the decisions),
//! * bitwise-identical eKAQ `estimates()`,
//! * bitwise-identical Within `intervals()`,
//!
//! at every thread count. Raw `outcomes()` of wholesale-decided TKAQ
//! queries legitimately carry the joint interval instead of the
//! per-query refinement endpoint, which is why the contract is stated on
//! answers; eKAQ and Within answers never take the wholesale path, so
//! for them the raw outcomes must also match bit for bit.

use karl::core::{BoundMethod, Evaluator, Kernel, Query, QueryBatch};
use karl::geom::{Ball, PointSet, Rect};
use karl_testkit::rng::{Rng, SeedableRng, StdRng};
use karl_testkit::{prop_assert, prop_assert_eq, props};

/// Two tight blobs plus background — the workload shape where joint
/// query-node intervals actually decide whole leaves wholesale.
fn clustered(n: usize, d: usize, rng: &mut StdRng) -> PointSet {
    let mut data = Vec::with_capacity(n * d);
    for i in 0..n {
        match i % 3 {
            0 => data.extend((0..d).map(|_| -1.5 + rng.random_range(-0.4..0.4))),
            1 => data.extend((0..d).map(|_| 1.5 + rng.random_range(-0.4..0.4))),
            _ => data.extend((0..d).map(|_| rng.random_range(-3.0..3.0))),
        }
    }
    PointSet::new(d, data)
}

fn mixed_weights(n: usize, rng: &mut StdRng) -> Vec<f64> {
    (0..n)
        .map(|_| {
            let w: f64 = rng.random_range(0.1..1.5);
            if rng.random_bool(0.35) {
                -w
            } else {
                w
            }
        })
        .collect()
}

/// Asserts the answer-equivalence contract for one evaluator.
fn check_dual<S: karl::tree::NodeShape + Sync>(
    eval: &Evaluator<S>,
    queries: &PointSet,
    query: Query,
) {
    let single = QueryBatch::new(queries, query).threads(1).run(eval);
    for threads in [1usize, 2, 4, 8] {
        let dual = QueryBatch::new(queries, query).threads(threads).run_dual(eval);
        prop_assert!(dual.threads() >= 1 && dual.threads() <= threads);
        match query {
            Query::Tkaq { .. } => {
                prop_assert_eq!(dual.decisions(), single.decisions());
                prop_assert_eq!(dual.estimates(), single.estimates());
            }
            Query::Ekaq { .. } => {
                prop_assert_eq!(dual.outcomes(), single.outcomes());
                prop_assert_eq!(dual.estimates(), single.estimates());
            }
            Query::Within { .. } => {
                prop_assert_eq!(dual.outcomes(), single.outcomes());
                prop_assert_eq!(dual.intervals(), single.intervals());
            }
        }
    }
}

props! {
    #[test]
    fn dual_tree_answers_match_per_query_engine(
        seed in 0u64..1_000_000,
        n in 40usize..220,
        d in 1usize..5,
        leaf in 1usize..24,
        kernel_id in 0usize..4,
        variant in 0usize..3
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let points = clustered(n, d, &mut rng);
        let weights = mixed_weights(n, &mut rng);
        let kernel = match kernel_id {
            0 => Kernel::gaussian(rng.random_range(0.3..1.5)),
            1 => Kernel::laplacian(rng.random_range(0.3..1.2)),
            2 => Kernel::polynomial(rng.random_range(0.1..0.5), 0.2, 2),
            _ => Kernel::sigmoid(rng.random_range(0.05..0.3), 0.1),
        };
        let query = match variant {
            0 => Query::Tkaq { tau: rng.random_range(-0.5..0.5) },
            1 => Query::Ekaq { eps: rng.random_range(0.01..0.4) },
            _ => Query::Within { tol: rng.random_range(0.001..0.1) },
        };
        // More queries than the dual QUERY_LEAF so internal query nodes,
        // leaf query nodes and the split/fallback paths all exercise.
        let queries = clustered(41, d, &mut rng);

        let kd = Evaluator::<Rect>::build(&points, &weights, kernel, BoundMethod::Karl, leaf);
        check_dual(&kd, &queries, query);

        let ball = Evaluator::<Ball>::build(&points, &weights, kernel, BoundMethod::Karl, leaf);
        check_dual(&ball, &queries, query);
    }
}
