#!/bin/sh
# Runs every experiment harness binary and collects the outputs under
# results/. Scale knobs: KARL_SCALE, KARL_QUERIES, KARL_TRAIN_CAP (see
# crates/bench/src/lib.rs).
set -eu
cd "$(dirname "$0")/.."
mkdir -p results
cargo build --release -p karl-bench --bins
for b in exp_fig1 exp_fig6 exp_fig7 exp_fig9 exp_fig10 exp_fig11 exp_fig12 \
         exp_fig13 exp_table7 exp_table8 exp_table9 exp_table10; do
    echo "=== $b ==="
    cargo run --release -p karl-bench --bin "$b" 2>/dev/null | tee "results/$b.txt"
done
echo "All experiment outputs written to results/"
