#!/usr/bin/env python3
"""Splices the harness outputs from results/ into EXPERIMENTS.md.

Each `<!-- MEASURED:ID -->` marker is replaced by (marker + fenced block
holding the corresponding results file), so re-running is idempotent.
"""
import pathlib
import re

ROOT = pathlib.Path(__file__).resolve().parent.parent
MAP = {
    "TABLE7": "exp_table7.txt",
    "FIG6": "exp_fig6.txt",
    "FIG7": "exp_fig7.txt",
    "FIG9": "exp_fig9.txt",
    "FIG10": "exp_fig10.txt",
    "FIG11": "exp_fig11.txt",
    "FIG12": "exp_fig12.txt",
    "FIG13": "exp_fig13.txt",
    "TABLE8": "exp_table8.txt",
    "TABLE9": "exp_table9.txt",
    "TABLE10": "exp_table10.txt",
    "FIG1": "exp_fig1.txt",
}


def main() -> None:
    md_path = ROOT / "EXPERIMENTS.md"
    text = md_path.read_text()
    for key, fname in MAP.items():
        path = ROOT / "results" / fname
        if not path.exists():
            print(f"skipping {key}: {path} missing")
            continue
        body = path.read_text().rstrip()
        # Trim the noisy per-step progress lines.
        body = "\n".join(
            line for line in body.splitlines() if not line.strip().startswith("[")
        ).strip()
        marker = f"<!-- MEASURED:{key} -->"
        block = f"{marker}\n```text\n{body}\n```"
        pattern = re.compile(
            re.escape(marker) + r"(\n```text\n.*?\n```)?", re.DOTALL
        )
        text, n = pattern.subn(lambda _m: block, text, count=1)
        print(f"{key}: {'updated' if n else 'marker not found!'}")
    md_path.write_text(text)


if __name__ == "__main__":
    main()
