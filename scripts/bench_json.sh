#!/usr/bin/env bash
# Runs the perf benches and records the merged results as JSON.
#
# Produces BENCH_PR6.json at the repo root with two sections plus host
# metadata (available_parallelism, uname), so numbers from different
# machines are interpretable:
#
#   * throughput_batch — end-to-end queries/s: sequential pointer engine
#     (baseline) vs the default frozen engine, scratch reuse, and
#     QueryBatch at 1/2/4/8 worker threads (eKAQ and TKAQ workloads),
#     plus the dual_tkaq section: node visits and queries/s of the
#     dual-tree descent vs the single-tree engine on a clustered grid
#     of TKAQ queries;
#   * frozen_bounds — per-node bound-kernel throughput (bounds/s),
#     pointer vs frozen, kd and ball families, SOTA and KARL methods,
#     plus the envelope_micro section: envelopes/s for the direct
#     builder vs a cold (all-miss) and a warm (all-hit) envelope cache.
#
# Usage: scripts/bench_json.sh [output.json]
# Sizing overrides: KARL_BENCH_N (points), KARL_BENCH_QUERIES
# (end-to-end queries), KARL_BENCH_BOUND_QUERIES (bound-kernel queries).

set -euo pipefail
cd "$(dirname "$0")/.."

# cargo bench runs the bench binary from the package directory, so make
# the output path absolute before handing it over.
out="${1:-BENCH_PR6.json}"
case "$out" in
    /*) ;;
    *) out="$(pwd)/$out" ;;
esac

tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT

KARL_BENCH_JSON="$tmpdir/throughput_batch.json" cargo bench -p karl-bench \
    --features criterion-benches --bench throughput_batch --offline

KARL_BENCH_JSON="$tmpdir/frozen_bounds.json" cargo bench -p karl-bench \
    --features criterion-benches --bench frozen_bounds --offline

python3 - "$tmpdir" "$out" <<'PY'
import json, os, platform, sys
tmpdir, out = sys.argv[1], sys.argv[2]
with open(os.path.join(tmpdir, "throughput_batch.json")) as f:
    throughput = json.load(f)
with open(os.path.join(tmpdir, "frozen_bounds.json")) as f:
    bounds = json.load(f)
merged = {
    "bench": "BENCH_PR6",
    "note": (
        "PR6 adds the dual-tree batch path (QueryBatch::run_dual): a second "
        "frozen tree over the queries and node-vs-node joint intervals that "
        "decide whole TKAQ query nodes wholesale. The dual_tkaq section "
        "runs the canonical profitable workload -- a 2-D KDE level-set grid "
        "(tau = 1/8 of peak blob density, fixed gamma, data leaf 16; "
        "dual-tree gains are a low-d phenomenon, see DESIGN.md s12) -- and "
        "compares node visits: single = per-query refinement iterations, "
        "dual = pair intervals scored + fallback iterations; visits are "
        "deterministic and machine-independent, wall clock on this shared "
        "host varies +/-3-10% per row. The default (single-tree) path is "
        "untouched, so the remaining rows are a no-regression control. "
        "Methodology otherwise identical to BENCH_PR5 (same benches and "
        "sizes for the pre-existing sections)."
    ),
    "host": {
        # The Rust-side value is cgroup-aware; os.cpu_count() is not.
        "available_parallelism": throughput.get("available_parallelism"),
        "uname": " ".join(platform.uname()),
    },
    "throughput_batch": throughput,
    "frozen_bounds": bounds,
}
with open(out, "w") as f:
    json.dump(merged, f, indent=2)
    f.write("\n")
PY

echo "==> wrote $out"
