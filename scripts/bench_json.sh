#!/usr/bin/env bash
# Runs the batch-engine throughput bench and records the results as JSON.
#
# Produces BENCH_PR2.json at the repo root: sequential vs QueryBatch
# throughput at 1/2/4/8 worker threads over a synthetic 100 000-point
# Type-I workload (eKAQ and TKAQ), plus the host's available_parallelism
# so numbers from different machines are interpretable.
#
# Usage: scripts/bench_json.sh [output.json]
# Sizing overrides: KARL_BENCH_N (points), KARL_BENCH_QUERIES (queries).

set -euo pipefail
cd "$(dirname "$0")/.."

# cargo bench runs the bench binary from the package directory, so make
# the output path absolute before handing it over.
out="${1:-BENCH_PR2.json}"
case "$out" in
    /*) ;;
    *) out="$(pwd)/$out" ;;
esac

KARL_BENCH_JSON="$out" cargo bench -p karl-bench \
    --features criterion-benches --bench throughput_batch --offline

echo "==> wrote $out"
