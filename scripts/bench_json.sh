#!/usr/bin/env bash
# Runs the perf benches and records the merged results as JSON.
#
# Produces BENCH_PR5.json at the repo root with two sections plus host
# metadata (available_parallelism, uname), so numbers from different
# machines are interpretable:
#
#   * throughput_batch — end-to-end queries/s: sequential pointer engine
#     (baseline) vs the default frozen engine, scratch reuse, and
#     QueryBatch at 1/2/4/8 worker threads (eKAQ and TKAQ workloads);
#   * frozen_bounds — per-node bound-kernel throughput (bounds/s),
#     pointer vs frozen, kd and ball families, SOTA and KARL methods,
#     plus the envelope_micro section: envelopes/s for the direct
#     builder vs a cold (all-miss) and a warm (all-hit) envelope cache.
#
# Usage: scripts/bench_json.sh [output.json]
# Sizing overrides: KARL_BENCH_N (points), KARL_BENCH_QUERIES
# (end-to-end queries), KARL_BENCH_BOUND_QUERIES (bound-kernel queries).

set -euo pipefail
cd "$(dirname "$0")/.."

# cargo bench runs the bench binary from the package directory, so make
# the output path absolute before handing it over.
out="${1:-BENCH_PR5.json}"
case "$out" in
    /*) ;;
    *) out="$(pwd)/$out" ;;
esac

tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT

KARL_BENCH_JSON="$tmpdir/throughput_batch.json" cargo bench -p karl-bench \
    --features criterion-benches --bench throughput_batch --offline

KARL_BENCH_JSON="$tmpdir/frozen_bounds.json" cargo bench -p karl-bench \
    --features criterion-benches --bench frozen_bounds --offline

python3 - "$tmpdir" "$out" <<'PY'
import json, os, platform, sys
tmpdir, out = sys.argv[1], sys.argv[2]
with open(os.path.join(tmpdir, "throughput_batch.json")) as f:
    throughput = json.load(f)
with open(os.path.join(tmpdir, "frozen_bounds.json")) as f:
    bounds = json.load(f)
merged = {
    "bench": "BENCH_PR5",
    "note": (
        "PR5 adds validated entry points, per-query budget checks and batch "
        "fault containment; validation runs once at the boundary and the "
        "budget check is one predicted branch after the termination test, so "
        "the bound-kernel rows are a control for overhead. Same-code "
        "back-to-back reruns on this shared 1-core host vary +/-3-10% per "
        "row; the SOTA rows (untouched arithmetic) and KARL rows move within "
        "the same band, i.e. the robustness-layer overhead is within noise. "
        "Methodology otherwise identical to BENCH_PR4 (same benches, sizes, "
        "workloads)."
    ),
    "host": {
        # The Rust-side value is cgroup-aware; os.cpu_count() is not.
        "available_parallelism": throughput.get("available_parallelism"),
        "uname": " ".join(platform.uname()),
    },
    "throughput_batch": throughput,
    "frozen_bounds": bounds,
}
with open(out, "w") as f:
    json.dump(merged, f, indent=2)
    f.write("\n")
PY

echo "==> wrote $out"
