#!/usr/bin/env bash
# Runs the perf benches and records the merged results as JSON.
#
# Produces BENCH_PR8.json at the repo root with three sections plus host
# metadata (available_parallelism, uname), so numbers from different
# machines are interpretable:
#
#   * throughput_batch — end-to-end queries/s: sequential pointer engine
#     (baseline) vs the default frozen engine, scratch reuse, and
#     QueryBatch at 1/2/4/8 worker threads (eKAQ and TKAQ workloads),
#     plus the dual_tkaq section: node visits and queries/s of the
#     dual-tree descent vs the single-tree engine on a clustered grid
#     of TKAQ queries, and the coreset_cascade section: tier-1 decided
#     fraction and end-to-end speedup of the certified coreset cascade
#     vs the same-process full-tree control on a quantized skewed-τ
#     level-set workload;
#   * frozen_bounds — per-node bound-kernel throughput (bounds/s),
#     pointer vs frozen, kd and ball families, SOTA and KARL methods,
#     plus the envelope_micro section: envelopes/s for the direct
#     builder vs a cold (all-miss) and a warm (all-hit) envelope cache;
#   * cold_start — process cold-start cost at three dataset sizes:
#     rebuilding the evaluator from raw points vs loading the persisted
#     index file (one bulk read + checksum walk, zero per-node work),
#     with the loaded answers re-verified bitwise identical each run.
#
# Usage: scripts/bench_json.sh [output.json]
# Sizing overrides: KARL_BENCH_N (points), KARL_BENCH_QUERIES
# (end-to-end queries), KARL_BENCH_BOUND_QUERIES (bound-kernel queries),
# KARL_BENCH_COLD_N (largest cold-start size).

set -euo pipefail
cd "$(dirname "$0")/.."

# cargo bench runs the bench binary from the package directory, so make
# the output path absolute before handing it over.
out="${1:-BENCH_PR8.json}"
case "$out" in
    /*) ;;
    *) out="$(pwd)/$out" ;;
esac

tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT

KARL_BENCH_JSON="$tmpdir/throughput_batch.json" cargo bench -p karl-bench \
    --features criterion-benches --bench throughput_batch --offline

KARL_BENCH_JSON="$tmpdir/frozen_bounds.json" cargo bench -p karl-bench \
    --features criterion-benches --bench frozen_bounds --offline

KARL_BENCH_JSON="$tmpdir/cold_start.json" cargo bench -p karl-bench \
    --features criterion-benches --bench cold_start --offline

python3 - "$tmpdir" "$out" <<'PY'
import json, os, platform, sys
tmpdir, out = sys.argv[1], sys.argv[2]
with open(os.path.join(tmpdir, "throughput_batch.json")) as f:
    throughput = json.load(f)
with open(os.path.join(tmpdir, "frozen_bounds.json")) as f:
    bounds = json.load(f)
with open(os.path.join(tmpdir, "cold_start.json")) as f:
    cold = json.load(f)
merged = {
    "bench": "BENCH_PR8",
    "note": (
        "PR8 adds the persistent zero-copy index (karl index build/info, "
        "batch --index, Evaluator::from_index_file). The cold_start "
        "section is the new measurement: at each size, build = full "
        "Evaluator::build from raw points and load = "
        "Evaluator::from_index_file on the persisted file (one bulk read "
        "into a 64-byte-aligned arena + checksum walk + zero-copy section "
        "views, no per-node work), best-of-5 wall clock, with the loaded "
        "evaluator re-verified bitwise identical to the fresh build on a "
        "live query every run. Load cost is O(bytes) and dominated by "
        "read+checksum bandwidth, so the load-vs-build speedup grows with "
        "n until the file outruns the page cache. Wall clock on this "
        "shared host varies +/-3-10% per row. The throughput_batch and "
        "frozen_bounds sections are unchanged from BENCH_PR7 as a "
        "no-regression control (same benches and sizes)."
    ),
    "host": {
        # The Rust-side value is cgroup-aware; os.cpu_count() is not.
        "available_parallelism": throughput.get("available_parallelism"),
        "uname": " ".join(platform.uname()),
    },
    "cold_start": cold,
    "throughput_batch": throughput,
    "frozen_bounds": bounds,
}
with open(out, "w") as f:
    json.dump(merged, f, indent=2)
    f.write("\n")
PY

echo "==> wrote $out"
