#!/usr/bin/env bash
# Runs the perf benches and records the merged results as JSON.
#
# Produces BENCH_PR9.json at the repo root with four sections plus host
# metadata (available_parallelism, uname), so numbers from different
# machines are interpretable:
#
#   * throughput_batch — end-to-end queries/s: sequential pointer engine
#     (baseline) vs the default frozen engine, scratch reuse, and
#     QueryBatch at 1/2/4/8 worker threads (eKAQ and TKAQ workloads),
#     plus the dual_tkaq section: node visits and queries/s of the
#     dual-tree descent vs the single-tree engine on a clustered grid
#     of TKAQ queries, and the coreset_cascade section: tier-1 decided
#     fraction and end-to-end speedup of the certified coreset cascade
#     vs the same-process full-tree control on a quantized skewed-τ
#     level-set workload;
#   * frozen_bounds — per-node bound-kernel throughput (bounds/s),
#     pointer vs frozen, kd and ball families, SOTA and KARL methods,
#     plus the envelope_micro section: envelopes/s for the direct
#     builder vs a cold (all-miss) and a warm (all-hit) envelope cache;
#   * cold_start — process cold-start cost at three dataset sizes:
#     rebuilding the evaluator from raw points vs loading the persisted
#     index file (one bulk read + checksum walk, zero per-node work),
#     with the loaded answers re-verified bitwise identical each run;
#   * simd_kernels — runtime-dispatched vector backend vs the forced
#     scalar backend as same-run controls (one process flips the
#     backend between timings, probe values asserted bitwise identical
#     first): bound-kernel and leaf-aggregate rows at d=8 and d=32,
#     with the detected ISA recorded next to every ratio.
#
# Usage: scripts/bench_json.sh [output.json]
# Sizing overrides: KARL_BENCH_N (points), KARL_BENCH_QUERIES
# (end-to-end queries), KARL_BENCH_BOUND_QUERIES (bound-kernel queries),
# KARL_BENCH_COLD_N (largest cold-start size).

set -euo pipefail
cd "$(dirname "$0")/.."

# cargo bench runs the bench binary from the package directory, so make
# the output path absolute before handing it over.
out="${1:-BENCH_PR9.json}"
case "$out" in
    /*) ;;
    *) out="$(pwd)/$out" ;;
esac

tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT

KARL_BENCH_JSON="$tmpdir/throughput_batch.json" cargo bench -p karl-bench \
    --features criterion-benches --bench throughput_batch --offline

KARL_BENCH_JSON="$tmpdir/frozen_bounds.json" cargo bench -p karl-bench \
    --features criterion-benches --bench frozen_bounds --offline

KARL_BENCH_JSON="$tmpdir/cold_start.json" cargo bench -p karl-bench \
    --features criterion-benches --bench cold_start --offline

KARL_BENCH_JSON="$tmpdir/simd_kernels.json" cargo bench -p karl-bench \
    --features criterion-benches --bench simd_kernels --offline

python3 - "$tmpdir" "$out" <<'PY'
import json, os, platform, sys
tmpdir, out = sys.argv[1], sys.argv[2]
with open(os.path.join(tmpdir, "throughput_batch.json")) as f:
    throughput = json.load(f)
with open(os.path.join(tmpdir, "frozen_bounds.json")) as f:
    bounds = json.load(f)
with open(os.path.join(tmpdir, "cold_start.json")) as f:
    cold = json.load(f)
with open(os.path.join(tmpdir, "simd_kernels.json")) as f:
    simd = json.load(f)
merged = {
    "bench": "BENCH_PR9",
    "note": (
        "PR9 adds runtime-dispatched explicit SIMD kernels under a "
        "bitwise determinism contract (KARL_SIMD / batch --simd; scalar "
        "and avx2 backends produce identical answers, enforced by "
        "tests/simd_equivalence.rs). The simd_kernels section is the new "
        "measurement: same-run scalar-vs-dispatched controls for the "
        "bound-kernel and leaf-aggregate hot loops at d=8 and d=32, ISA "
        "recorded per row. At d=8 the non-inlinable target_feature call "
        "boundary (+vzeroupper) eats most of the 256-bit win; at d=32 "
        "the vector loop amortizes it and the kd bound kernels and raw "
        "primitives clear it comfortably. Wall clock on this shared "
        "host varies +/-3-10% per row. The other sections are carried "
        "as no-regression controls (same benches and sizes as "
        "BENCH_PR8); their numbers now flow through the dispatched "
        "backend by default."
    ),
    "host": {
        # The Rust-side value is cgroup-aware; os.cpu_count() is not.
        "available_parallelism": throughput.get("available_parallelism"),
        "uname": " ".join(platform.uname()),
    },
    "simd_kernels": simd,
    "cold_start": cold,
    "throughput_batch": throughput,
    "frozen_bounds": bounds,
}
with open(out, "w") as f:
    json.dump(merged, f, indent=2)
    f.write("\n")
PY

echo "==> wrote $out"
