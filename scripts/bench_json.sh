#!/usr/bin/env bash
# Runs the perf benches and records the merged results as JSON.
#
# Produces BENCH_PR10.json at the repo root with five sections plus host
# metadata (available_parallelism, uname), so numbers from different
# machines are interpretable:
#
#   * serve_load — the online serving loop driven over an in-memory
#     transport: steady-state requests/s and p50/p99
#     admission-to-response latency at 1/2/4/8 worker threads, plus an
#     overload run whose admit/shed/reject partition is deterministic
#     admission arithmetic;
#   * throughput_batch — end-to-end queries/s: sequential pointer engine
#     (baseline) vs the default frozen engine, scratch reuse, and
#     QueryBatch at 1/2/4/8 worker threads (eKAQ and TKAQ workloads),
#     plus the dual_tkaq section: node visits and queries/s of the
#     dual-tree descent vs the single-tree engine on a clustered grid
#     of TKAQ queries, and the coreset_cascade section: tier-1 decided
#     fraction and end-to-end speedup of the certified coreset cascade
#     vs the same-process full-tree control on a quantized skewed-τ
#     level-set workload;
#   * frozen_bounds — per-node bound-kernel throughput (bounds/s),
#     pointer vs frozen, kd and ball families, SOTA and KARL methods,
#     plus the envelope_micro section: envelopes/s for the direct
#     builder vs a cold (all-miss) and a warm (all-hit) envelope cache;
#   * cold_start — process cold-start cost at three dataset sizes:
#     rebuilding the evaluator from raw points vs loading the persisted
#     index file (one bulk read + checksum walk, zero per-node work),
#     with the loaded answers re-verified bitwise identical each run;
#   * simd_kernels — runtime-dispatched vector backend vs the forced
#     scalar backend as same-run controls (one process flips the
#     backend between timings, probe values asserted bitwise identical
#     first): bound-kernel and leaf-aggregate rows at d=8 and d=32,
#     with the detected ISA recorded next to every ratio.
#
# Usage: scripts/bench_json.sh [output.json]
# Sizing overrides: KARL_BENCH_N (points), KARL_BENCH_QUERIES
# (end-to-end queries), KARL_BENCH_BOUND_QUERIES (bound-kernel queries),
# KARL_BENCH_COLD_N (largest cold-start size), KARL_BENCH_SERVE_REQS
# (steady serve requests), KARL_BENCH_SERVE_BURSTS (overload bursts).

set -euo pipefail
cd "$(dirname "$0")/.."

# cargo bench runs the bench binary from the package directory, so make
# the output path absolute before handing it over.
out="${1:-BENCH_PR10.json}"
case "$out" in
    /*) ;;
    *) out="$(pwd)/$out" ;;
esac

tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT

KARL_BENCH_JSON="$tmpdir/throughput_batch.json" cargo bench -p karl-bench \
    --features criterion-benches --bench throughput_batch --offline

KARL_BENCH_JSON="$tmpdir/frozen_bounds.json" cargo bench -p karl-bench \
    --features criterion-benches --bench frozen_bounds --offline

KARL_BENCH_JSON="$tmpdir/cold_start.json" cargo bench -p karl-bench \
    --features criterion-benches --bench cold_start --offline

KARL_BENCH_JSON="$tmpdir/simd_kernels.json" cargo bench -p karl-bench \
    --features criterion-benches --bench simd_kernels --offline

KARL_BENCH_JSON="$tmpdir/serve_load.json" cargo bench -p karl-bench \
    --features criterion-benches --bench serve_load --offline

python3 - "$tmpdir" "$out" <<'PY'
import json, os, platform, sys
tmpdir, out = sys.argv[1], sys.argv[2]
with open(os.path.join(tmpdir, "throughput_batch.json")) as f:
    throughput = json.load(f)
with open(os.path.join(tmpdir, "frozen_bounds.json")) as f:
    bounds = json.load(f)
with open(os.path.join(tmpdir, "cold_start.json")) as f:
    cold = json.load(f)
with open(os.path.join(tmpdir, "simd_kernels.json")) as f:
    simd = json.load(f)
with open(os.path.join(tmpdir, "serve_load.json")) as f:
    serve = json.load(f)
merged = {
    "bench": "BENCH_PR10",
    "note": (
        "PR10 adds the online serving loop (karl serve): NDJSON "
        "requests coalesced into deterministic micro-batches behind a "
        "bounded admission queue with load shedding and per-request "
        "deadlines. The serve_load section is the new measurement: "
        "steady-state requests/s and p50/p99 admission-to-response "
        "latency over an in-memory transport at 1/2/4/8 worker "
        "threads, plus an overload run whose admit/shed/reject "
        "partition is deterministic admission arithmetic (identical at "
        "every thread count). Wall clock on this shared host varies "
        "+/-3-10% per row. The other sections are carried as "
        "no-regression controls (same benches and sizes as BENCH_PR9)."
    ),
    "host": {
        # The Rust-side value is cgroup-aware; os.cpu_count() is not.
        "available_parallelism": throughput.get("available_parallelism"),
        "uname": " ".join(platform.uname()),
    },
    "serve_load": serve,
    "simd_kernels": simd,
    "cold_start": cold,
    "throughput_batch": throughput,
    "frozen_bounds": bounds,
}
with open(out, "w") as f:
    json.dump(merged, f, indent=2)
    f.write("\n")
PY

echo "==> wrote $out"
