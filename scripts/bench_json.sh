#!/usr/bin/env bash
# Runs the perf benches and records the merged results as JSON.
#
# Produces BENCH_PR7.json at the repo root with two sections plus host
# metadata (available_parallelism, uname), so numbers from different
# machines are interpretable:
#
#   * throughput_batch — end-to-end queries/s: sequential pointer engine
#     (baseline) vs the default frozen engine, scratch reuse, and
#     QueryBatch at 1/2/4/8 worker threads (eKAQ and TKAQ workloads),
#     plus the dual_tkaq section: node visits and queries/s of the
#     dual-tree descent vs the single-tree engine on a clustered grid
#     of TKAQ queries, and the coreset_cascade section: tier-1 decided
#     fraction and end-to-end speedup of the certified coreset cascade
#     vs the same-process full-tree control on a quantized skewed-τ
#     level-set workload;
#   * frozen_bounds — per-node bound-kernel throughput (bounds/s),
#     pointer vs frozen, kd and ball families, SOTA and KARL methods,
#     plus the envelope_micro section: envelopes/s for the direct
#     builder vs a cold (all-miss) and a warm (all-hit) envelope cache.
#
# Usage: scripts/bench_json.sh [output.json]
# Sizing overrides: KARL_BENCH_N (points), KARL_BENCH_QUERIES
# (end-to-end queries), KARL_BENCH_BOUND_QUERIES (bound-kernel queries).

set -euo pipefail
cd "$(dirname "$0")/.."

# cargo bench runs the bench binary from the package directory, so make
# the output path absolute before handing it over.
out="${1:-BENCH_PR7.json}"
case "$out" in
    /*) ;;
    *) out="$(pwd)/$out" ;;
esac

tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT

KARL_BENCH_JSON="$tmpdir/throughput_batch.json" cargo bench -p karl-bench \
    --features criterion-benches --bench throughput_batch --offline

KARL_BENCH_JSON="$tmpdir/frozen_bounds.json" cargo bench -p karl-bench \
    --features criterion-benches --bench frozen_bounds --offline

python3 - "$tmpdir" "$out" <<'PY'
import json, os, platform, sys
tmpdir, out = sys.argv[1], sys.argv[2]
with open(os.path.join(tmpdir, "throughput_batch.json")) as f:
    throughput = json.load(f)
with open(os.path.join(tmpdir, "frozen_bounds.json")) as f:
    bounds = json.load(f)
merged = {
    "bench": "BENCH_PR7",
    "note": (
        "PR7 adds the certified coreset front tier (Evaluator::"
        "with_coreset_tier + QueryBatch::coreset). The coreset_cascade "
        "section runs the tier's profitable workload: the 2-D level-set "
        "grid with every coordinate quantized to a 0.05 sensor lattice "
        "(duplicate-heavy metered data), where the grid-snap coreset is a "
        "certified dedup (measured eps_c ~ 1e-15) an order of magnitude "
        "smaller than the data. Decisive queries terminate at coarse node "
        "resolution on either tree; the tau-straddling band must refine "
        "to leaf scans, where the tier pays compression-fold fewer kernel "
        "evaluations -- the reported speedup is cascade vs a same-process "
        "full-tree control differing only in the tier flag. On smooth "
        "un-quantized data the tier is roughly cost-neutral (refinement "
        "cost tracks geometric resolution, not point count; see DESIGN.md "
        "s13). Wall clock on this shared host varies +/-3-10% per row; "
        "tier-1 decided counts are deterministic. The dual_tkaq section "
        "and the remaining rows are unchanged from BENCH_PR6 as a "
        "no-regression control (same benches and sizes)."
    ),
    "host": {
        # The Rust-side value is cgroup-aware; os.cpu_count() is not.
        "available_parallelism": throughput.get("available_parallelism"),
        "uname": " ".join(platform.uname()),
    },
    "throughput_batch": throughput,
    "frozen_bounds": bounds,
}
with open(out, "w") as f:
    json.dump(merged, f, indent=2)
    f.write("\n")
PY

echo "==> wrote $out"
