#!/usr/bin/env bash
# Tier-1 gate plus the hermeticity guard.
#
# The workspace's testing policy (see DESIGN.md, "Hermetic testing") is
# that the default feature set resolves with ZERO registry dependencies,
# so `cargo build && cargo test` pass on a machine with no network. This
# script runs the tier-1 gate and then fails the build if any non-path
# dependency has crept back into a manifest.
#
# Usage: scripts/ci.sh  (from anywhere inside the repo)

set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> tier-1: cargo build --release"
cargo build --release --offline

echo "==> tier-1: cargo test -q (whole workspace)"
cargo test --workspace -q --offline

echo "==> guard: benches must build under --features criterion-benches (release)"
cargo build --release -p karl-bench --benches --features criterion-benches --offline

echo "==> guard: batch engine bitwise-identical to sequential at KARL_THREADS=4"
KARL_THREADS=4 cargo test -q --offline -p karl --test batch_equivalence

echo "==> guard: frozen engine bitwise-identical to pointer at KARL_THREADS=4"
KARL_THREADS=4 cargo test -q --offline -p karl --test frozen_equivalence

echo "==> guard: persisted index round-trip bitwise-identical at KARL_THREADS=4"
KARL_THREADS=4 cargo test -q --offline -p karl --test index_persist_equivalence

echo "==> guard: mmap loader passes the round-trip suite (--features mmap)"
cargo test -q --offline -p karl --features mmap --test index_persist_equivalence
cargo test -q --offline -p karl-tree --features mmap

echo "==> guard: envelope cache bitwise-neutral at KARL_THREADS=4"
KARL_THREADS=4 cargo test -q --offline -p karl --test envelope_cache_equivalence

echo "==> guard: dual-tree answers match the per-query engine at KARL_THREADS=4"
KARL_THREADS=4 cargo test -q --offline -p karl --test dual_tree_equivalence

echo "==> guard: coreset cascade answers match the plain engine at KARL_THREADS=4"
KARL_THREADS=4 cargo test -q --offline -p karl --test coreset_cascade_equivalence

echo "==> guard: SIMD backends bitwise-interchangeable (dispatched run)"
cargo test -q --offline -p karl --test simd_equivalence

echo "==> guard: tier-1 equivalence suites replayed under KARL_SIMD=scalar"
# The forced-scalar backend must pass every bitwise gate the dispatched
# one does — the determinism contract cuts both ways.
KARL_SIMD=scalar cargo test -q --offline -p karl --test frozen_equivalence
KARL_SIMD=scalar cargo test -q --offline -p karl --test batch_equivalence
KARL_SIMD=scalar cargo test -q --offline -p karl --test index_persist_equivalence
KARL_SIMD=scalar cargo test -q --offline -p karl --test simd_equivalence
KARL_SIMD=scalar cargo test -q --offline -p karl-geom

echo "==> guard: run counters build and pass under --features stats"
cargo test -q --offline -p karl-core --features stats
cargo test -q --offline -p karl-cli --features stats

echo "==> guard: fault containment under --features fault-inject"
cargo test -q --offline -p karl --features fault-inject --test fault_containment
cargo test -q --offline -p karl-core --features fault-inject

echo "==> guard: fault containment replayed at KARL_THREADS=4"
KARL_THREADS=4 cargo test -q --offline -p karl --features fault-inject --test fault_containment

echo "==> guard: serve loop replayed at KARL_THREADS=4"
KARL_THREADS=4 cargo test -q --offline -p karl --test serve_loop

echo "==> guard: serve fault quarantine under --features fault-inject"
cargo test -q --offline -p karl --features fault-inject --test serve_fault

echo "==> guard: TCP transport serves and shuts down (--features net)"
cargo test -q --offline -p karl-cli --features net

echo "==> guard: clippy clean across the workspace (incl. unsafe audit)"
# The unsafe-audit lints keep every unsafe block annotated and small:
# all unsafe lives in karl_geom::simd behind safe entry points, and each
# block must carry a SAFETY comment and one operation.
cargo clippy --workspace --all-targets --offline -- -D warnings \
    -W clippy::undocumented-unsafe-blocks \
    -W clippy::multiple-unsafe-ops-per-block

echo "==> guard: release bench smoke (tiny workload, one pass)"
# A minimal end-to-end run of both bench binaries so a broken bench
# can never merge green; sizes are tiny so this stays in CI budget.
KARL_BENCH_N=2000 KARL_BENCH_QUERIES=64 KARL_BENCH_BOUND_QUERIES=4 \
    KARL_BENCH_COLD_N=8000 KARL_BENCH_DIMS=8 KARL_BENCH_REPS=1 \
    KARL_BENCH_SERVE_REQS=64 KARL_BENCH_SERVE_BURSTS=2 \
    cargo bench -p karl-bench --features criterion-benches \
    --bench throughput_batch --bench frozen_bounds --bench cold_start \
    --bench simd_kernels --bench serve_load \
    --offline >/dev/null

echo "==> guard: CLI index round trip — batch --index byte-identical to batch --data"
# End-to-end through the release binary: persist an index, then the
# loaded evaluator must print byte-identical batch output (comment lines
# carry timings, so they are stripped before the diff). The root
# `cargo build` only builds the facade package, so build the binary
# explicitly.
cargo build --release -p karl-cli --offline
cli_tmp="$(mktemp -d)"
karl=target/release/karl
"$karl" generate --name home --n 500 --out "$cli_tmp/data.csv" >/dev/null
# Family and leaf pinned to the in-memory `batch` defaults (kd, 80).
"$karl" index build "$cli_tmp/data.csv" "$cli_tmp/home.idx" --family kd --leaf 80 >/dev/null
"$karl" index info "$cli_tmp/home.idx" | grep -q '(verified)'
"$karl" batch --data "$cli_tmp/data.csv" --queries "$cli_tmp/data.csv" \
    --tau 0.3 --threads 2 | grep -v '^#' > "$cli_tmp/fresh.out"
"$karl" batch --index "$cli_tmp/home.idx" --queries "$cli_tmp/data.csv" \
    --tau 0.3 --threads 2 | grep -v '^#' > "$cli_tmp/loaded.out"
diff "$cli_tmp/fresh.out" "$cli_tmp/loaded.out"
# The SIMD backend is a pure perf switch: forcing scalar (flag or env)
# must reproduce the dispatched output byte for byte.
"$karl" batch --data "$cli_tmp/data.csv" --queries "$cli_tmp/data.csv" \
    --tau 0.3 --threads 2 --simd scalar | grep -v '^#' > "$cli_tmp/scalar.out"
diff "$cli_tmp/fresh.out" "$cli_tmp/scalar.out"
KARL_SIMD=scalar "$karl" batch --data "$cli_tmp/data.csv" \
    --queries "$cli_tmp/data.csv" --tau 0.3 --threads 2 \
    | grep -v '^#' > "$cli_tmp/scalar_env.out"
diff "$cli_tmp/fresh.out" "$cli_tmp/scalar_env.out"
"$karl" index info "$cli_tmp/home.idx" | grep -q 'simd backend'
rm -rf "$cli_tmp"
echo "ok: CLI loaded-index and forced-scalar outputs are byte-identical"

echo "==> guard: serve smoke — overload ladder, fault quarantine, byte-stable replays"
# One scripted NDJSON session through the release binary exercising the
# whole degradation ladder: admitted requests, a forced shed (queue 4,
# shed watermark 3), queue-overflow rejections, a NaN-poisoned request
# next to a healthy neighbor, an already-expired deadline, a stats probe
# and a graceful shutdown. The contained fault must surface as exit code
# 2 (0 = clean, 1 = command error, 2 = contained per-query failures),
# and the transcript must replay byte-identically under KARL_THREADS=4
# and KARL_SIMD=scalar — the stats line embeds the resolved thread
# count (configuration, not data), so that one field is normalized
# before the diff.
serve_tmp="$(mktemp -d)"
"$karl" generate --name home --n 400 --out "$serve_tmp/data.csv" >/dev/null
dims=$(head -1 "$serve_tmp/data.csv" | awk -F, '{print NF}')
python3 - "$dims" > "$serve_tmp/requests.ndjson" <<'PY'
import sys
d = int(sys.argv[1])
q = lambda v: "[" + ",".join(str(v) for _ in range(d)) + "]"
out = []
# Six queries against queue 4 / shed 3 with no flush in between: ids
# 1-3 admitted normally, id 4 admitted past the shed watermark, ids
# 5-6 rejected at capacity.
for i in range(1, 7):
    out.append('{"id":%d,"op":"ekaq","eps":0.05,"q":%s}' % (i, q(0.1 * i)))
out.append('{"op":"flush"}')
# A poisoned request (NaN coordinate) beside a healthy neighbor and an
# already-expired deadline; the fault must stay contained to id 7.
out.append('{"id":7,"op":"ekaq","eps":0.05,"q":[NaN%s]}' % ("," + ",".join("0.2" for _ in range(d - 1)) if d > 1 else ""))
out.append('{"id":8,"op":"ekaq","eps":0.05,"q":%s}' % q(0.25))
out.append('{"id":9,"op":"ekaq","eps":0.05,"deadline_ms":0,"q":%s}' % q(0.3))
out.append('{"op":"flush"}')
out.append('{"id":10,"op":"stats"}')
out.append('{"id":11,"op":"shutdown"}')
print("\n".join(out))
PY
serve_run() { # serve_run OUT  (extra env via leading VAR=... in caller)
    rc=0
    "$karl" serve --stdio --data "$serve_tmp/data.csv" \
        --queue 4 --shed 3 < "$serve_tmp/requests.ndjson" \
        > "$1" 2> "$serve_tmp/serve.log" || rc=$?
    # The contained NaN fault must map to exit code 2, never 0 or 1.
    [ "$rc" -eq 2 ] || { echo "serve exit code $rc, expected 2"; exit 1; }
}
serve_run "$serve_tmp/t_default.out"
KARL_THREADS=4 serve_run "$serve_tmp/t_threads4.out"
KARL_SIMD=scalar serve_run "$serve_tmp/t_scalar.out"
for f in t_default t_threads4 t_scalar; do
    sed 's/"threads":[0-9]*/"threads":0/' "$serve_tmp/$f.out" > "$serve_tmp/$f.norm"
done
diff "$serve_tmp/t_default.norm" "$serve_tmp/t_threads4.norm"
diff "$serve_tmp/t_default.norm" "$serve_tmp/t_scalar.norm"
grep -q '"status":"shed"' "$serve_tmp/t_default.out"
grep -q '"status":"rejected"' "$serve_tmp/t_default.out"
grep -q 'admission queue full' "$serve_tmp/t_default.out"
grep -q '"id":7,"status":"error"' "$serve_tmp/t_default.out"
grep -q '"id":8,"status":"ok"' "$serve_tmp/t_default.out"
grep -q '"reason":"deadline"' "$serve_tmp/t_default.out"
grep -q '"status":"shutdown"' "$serve_tmp/t_default.out"
# A clean session (no fault, nothing rejected) must exit 0.
printf '%s\n' '{"id":1,"op":"ekaq","eps":0.05,"q":'"$(python3 -c "import sys;print('['+','.join('0.1' for _ in range(int(sys.argv[1])))+']')" "$dims")"'}' \
    '{"id":2,"op":"shutdown"}' > "$serve_tmp/clean.ndjson"
"$karl" serve --stdio --data "$serve_tmp/data.csv" \
    < "$serve_tmp/clean.ndjson" >/dev/null 2>&1
echo "ok: serve transcript byte-stable across threads and SIMD; exit codes 2/0 as specified"

echo "==> guard: batch --stats-json byte-stable across runs"
"$karl" batch --data "$serve_tmp/data.csv" --queries "$serve_tmp/data.csv" \
    --tau 0.3 --threads 2 --stats-json "$serve_tmp/stats1.json" >/dev/null
"$karl" batch --data "$serve_tmp/data.csv" --queries "$serve_tmp/data.csv" \
    --tau 0.3 --threads 2 --stats-json "$serve_tmp/stats2.json" >/dev/null
diff "$serve_tmp/stats1.json" "$serve_tmp/stats2.json"
grep -q '"schema":"karl-stats-v1"' "$serve_tmp/stats1.json"
rm -rf "$serve_tmp"
echo "ok: batch --stats-json is byte-stable and carries the shared schema"

echo "==> guard: no registry dependencies in the resolved graph"
# cargo metadata reports "source": null for path dependencies and a
# "registry+https://..." (or git+...) URL for anything external. The
# criterion-benches feature gates *bench targets*, not dependencies, so
# this check is unconditional: nothing in any feature set may be external.
cargo metadata --format-version 1 --offline | python3 -c '
import json, sys
meta = json.load(sys.stdin)
bad = []
for pkg in meta["packages"]:
    for dep in pkg["dependencies"]:
        if dep["source"] is not None:
            bad.append("  {} -> {} ({})".format(pkg["name"], dep["name"], dep["source"]))
if bad:
    print("non-path dependencies found (hermeticity policy violated):")
    print("\n".join(bad))
    sys.exit(1)
print("ok: all dependencies are workspace path dependencies")
'

echo "==> all gates passed"
