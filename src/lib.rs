//! # KARL — Kernel Aggregation Rapid Library
//!
//! A from-scratch Rust reproduction of *"KARL: Fast Kernel Aggregation
//! Queries"* (Chan, Yiu, U — ICDE 2019). This facade crate re-exports the
//! whole workspace so applications can depend on a single crate:
//!
//! * [`geom`] — point sets, bounding rectangles/balls, distance bounds.
//! * [`tree`] — augmented kd-trees and ball-trees.
//! * [`core`] — kernels, KARL/SOTA bound functions, the branch-and-bound
//!   evaluator for threshold (TKAQ) and approximate (eKAQ) queries, and
//!   automatic index tuning.
//! * [`svm`] — an SMO-based SVM trainer (2-class C-SVC, 1-class ν-SVM)
//!   producing kernel-aggregation models.
//! * [`kde`] — kernel density estimation with Scott's-rule bandwidth.
//! * [`data`] — seeded synthetic datasets mirroring the paper's evaluation
//!   suite, PCA and preprocessing.
//!
//! ## Quick start
//!
//! ```
//! use karl::core::{BoundMethod, Evaluator, Kernel};
//! use karl::geom::{PointSet, Rect};
//!
//! // A tiny dataset of 2-d points.
//! let points = PointSet::from_rows(&[
//!     vec![0.0, 0.0],
//!     vec![0.1, 0.1],
//!     vec![5.0, 5.0],
//! ]);
//! let weights = vec![1.0; 3];
//! let eval = Evaluator::<Rect>::build(
//!     &points, &weights, Kernel::gaussian(0.5), BoundMethod::Karl, 2);
//!
//! // Threshold query: is the aggregate at the origin at least 1.0?
//! assert!(eval.tkaq(&[0.0, 0.0], 1.0));
//! // Approximate query: value within 10% relative error.
//! let f = eval.ekaq(&[0.0, 0.0], 0.1);
//! assert!(f > 1.7 && f < 2.2);
//! ```

pub use karl_core as core;
pub use karl_data as data;
pub use karl_geom as geom;
pub use karl_kde as kde;
pub use karl_svm as svm;
pub use karl_tree as tree;
