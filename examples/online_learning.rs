//! In-situ / online-learning scenario (Section III-C, Table IX): the model
//! arrives just before the query stream, so index construction and tuning
//! time count. A 1-class SVM is trained on fresh data (novelty detection),
//! then the stream is answered three ways:
//!
//! 1. baseline — plain sequential scan (no index to build),
//! 2. SOTA with online tuning,
//! 3. KARL with online tuning (build one kd-tree, probe levels on 1% of
//!    the stream, answer the rest at the best level).
//!
//! ```text
//! cargo run --release --example online_learning
//! ```

use std::time::Instant;

use karl::core::{BoundMethod, Kernel, OnlineTuner, Query, Scan};
use karl::data::{by_name, sample_queries};
use karl::svm::OneClassSvm;

fn main() {
    let spec = by_name("nsl-kdd").expect("registry dataset");
    let dataset = spec.generate_n(8_000);

    // Train the 1-class model (Type II weighting: all weights positive).
    let gamma = 1.0 / dataset.points.dims() as f64;
    let kernel = Kernel::gaussian(gamma);
    println!(
        "training 1-class ν-SVM (ν = {}) on {} points...",
        spec.suggested_nu,
        dataset.points.len()
    );
    let model = OneClassSvm::new(spec.suggested_nu, kernel).train(&dataset.points);
    let tau = model.threshold();
    println!("{} support vectors, ρ = {:.4}", model.num_support(), tau);

    // The query stream: novelty checks against the trained model.
    let queries = sample_queries(&dataset.points, 4_000, 123);
    let workload = Query::Tkaq { tau };

    // 1) Baseline scan: no build cost, but every query is O(n·d).
    let scan = Scan::new(model.support().clone(), model.weights().to_vec(), kernel);
    let t = Instant::now();
    let base_answers: Vec<bool> = queries.iter().map(|q| scan.tkaq(q, tau)).collect();
    let base_tp = queries.len() as f64 / t.elapsed().as_secs_f64();

    // 2) + 3) Online-tuned index evaluation, SOTA vs KARL bounds.
    let tuner = OnlineTuner::default();
    for (name, method) in [("SOTA", BoundMethod::Sota), ("KARL", BoundMethod::Karl)] {
        let report = tuner.run(
            model.support(),
            model.weights(),
            kernel,
            method,
            &queries,
            workload,
        );
        for (i, &a) in report.answers.iter().enumerate() {
            assert_eq!(a == 1.0, base_answers[i], "online answers must be exact");
        }
        println!(
            "{name}_online: {:>9.1} queries/s end-to-end \
             (build {:.1?} + tune {:.1?} + query {:.1?}; chose level {})",
            report.throughput,
            report.build_time,
            report.tuning_time,
            report.query_time,
            report.chosen_level
        );
    }
    println!("baseline scan: {base_tp:>9.1} queries/s (no build cost)");
}
