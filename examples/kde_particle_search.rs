//! Particle-search scenario (the paper's Figure 1 motivation): physicists
//! scan a detector dataset for high-density regions. We reproduce the
//! workflow on the miniboone-like dataset — estimate the density surface
//! over the first two principal dimensions and mark the dense cells that a
//! threshold query isolates.
//!
//! ```text
//! cargo run --release --example kde_particle_search
//! ```

use karl::core::{BoundMethod, Query};
use karl::data::{by_name, Pca};
use karl::kde::Kde;

const GRID: usize = 24;

fn main() {
    let dataset = by_name("miniboone").expect("registry dataset").generate_n(30_000);

    // Project to the two leading principal dimensions for the 2-d density
    // picture (the paper plots dims 1–2 directly; PCA gives us the same
    // kind of 2-d view of the synthetic cloud).
    let pca = Pca::fit(&dataset.points);
    let plane = pca.project(&dataset.points, 2);
    let kde = Kde::fit(plane.clone());
    let eval = kde.evaluator(BoundMethod::Karl, 80);

    // Bounding box of the projected data.
    let (mut xmin, mut xmax, mut ymin, mut ymax) = (f64::MAX, f64::MIN, f64::MAX, f64::MIN);
    for p in plane.iter() {
        xmin = xmin.min(p[0]);
        xmax = xmax.max(p[0]);
        ymin = ymin.min(p[1]);
        ymax = ymax.max(p[1]);
    }

    // Density over a GRID × GRID lattice via ε-approximate queries.
    let mut field = [[0.0f64; GRID]; GRID];
    let mut peak: f64 = 0.0;
    #[allow(clippy::needless_range_loop)] // gx/gy drive both the grid and the query
    for gy in 0..GRID {
        for gx in 0..GRID {
            let q = [
                xmin + (xmax - xmin) * (gx as f64 + 0.5) / GRID as f64,
                ymin + (ymax - ymin) * (gy as f64 + 0.5) / GRID as f64,
            ];
            let d = eval.ekaq(&q, 0.05);
            field[gy][gx] = d;
            peak = peak.max(d);
        }
    }

    // The "interesting" region: density above 60% of the peak, isolated
    // with threshold queries (this is exactly the paper's TKAQ use case).
    let tau = 0.6 * peak;
    println!("density surface ({GRID}x{GRID}), peak = {peak:.4}, τ = {tau:.4}");
    println!("('#' = TKAQ says F ≥ τ — candidate particle region)");
    let shades = [' ', '.', ':', '+', '*'];
    let mut dense_cells = 0;
    #[allow(clippy::needless_range_loop)] // gx drives both the grid and the query
    for gy in (0..GRID).rev() {
        let mut row = String::with_capacity(GRID);
        for gx in 0..GRID {
            let q = [
                xmin + (xmax - xmin) * (gx as f64 + 0.5) / GRID as f64,
                ymin + (ymax - ymin) * (gy as f64 + 0.5) / GRID as f64,
            ];
            let hot = eval.tkaq(&q, tau);
            if hot {
                dense_cells += 1;
                row.push('#');
            } else {
                let level = (field[gy][gx] / peak * (shades.len() - 1) as f64).round() as usize;
                row.push(shades[level.min(shades.len() - 1)]);
            }
        }
        println!("{row}");
    }
    println!("{dense_cells} of {} cells are candidate regions", GRID * GRID);

    // Show how little work the bounds needed on one dense-region query.
    let q = [0.5 * (xmin + xmax), 0.5 * (ymin + ymax)];
    let out = eval.run_query(&q, Query::Tkaq { tau }, None);
    println!(
        "center query decided after {} refinement steps over {} points",
        out.iterations,
        plane.len()
    );
}
