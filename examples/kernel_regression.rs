//! Kernel (Nadaraya–Watson) regression with bounded predictions — one of
//! the paper's stated future directions, built on the same KARL machinery:
//! the regression estimate is a ratio of two kernel aggregates, each
//! enclosed by branch-and-bound bounds instead of computed by a scan.
//!
//! ```text
//! cargo run --release --example kernel_regression
//! ```

use std::time::Instant;

use karl::geom::PointSet;
use karl::kde::KernelRegression;
use karl_testkit::rng::StdRng;
use karl_testkit::rng::{Rng, SeedableRng};

fn main() {
    // A noisy 1-d regression problem: y = sin(2πx) + x + noise.
    let n = 50_000;
    let mut rng = StdRng::seed_from_u64(7);
    let mut xs = Vec::with_capacity(n);
    let mut ys = Vec::with_capacity(n);
    for _ in 0..n {
        let x: f64 = rng.random_range(0.0..1.0);
        xs.push(x);
        ys.push((std::f64::consts::TAU * x).sin() + x + rng.random_range(-0.1..0.1));
    }
    let points = PointSet::new(1, xs);
    println!("fitting kernel regression on {n} noisy samples of y = sin(2πx) + x ...");
    let reg = KernelRegression::fit(points, &ys);
    println!("Scott's rule: γ = {:.1}", reg.gamma());

    // Predict along a grid, once exactly (scans) and once through bounds.
    let grid: Vec<f64> = (0..=20).map(|i| i as f64 / 20.0).collect();

    let t = Instant::now();
    let exact: Vec<f64> = grid.iter().map(|&x| reg.predict_exact(&[x])).collect();
    let exact_time = t.elapsed();

    let tol = 0.01;
    let t = Instant::now();
    let bounded: Vec<_> = grid.iter().map(|&x| reg.predict(&[x], tol)).collect();
    let bounded_time = t.elapsed();

    println!("\n    x     truth    exact-NW  bounded-NW  (± guaranteed)");
    for (i, &x) in grid.iter().enumerate() {
        let truth = (std::f64::consts::TAU * x).sin() + x;
        let b = bounded[i];
        println!(
            "  {x:.2}  {truth:>8.4}  {:>9.4}  {:>9.4}   ±{:.4}",
            exact[i],
            b.value,
            (b.hi - b.lo) / 2.0
        );
        assert!((b.value - exact[i]).abs() <= tol + 1e-9, "tolerance violated");
    }
    println!(
        "\nexact scans: {:.1?}; bounded predictions: {:.1?} ({:.1}x faster, every answer within ±{tol})",
        exact_time,
        bounded_time,
        exact_time.as_secs_f64() / bounded_time.as_secs_f64()
    );
}
