//! Network-intrusion-style 2-class SVM served through KARL (the paper's
//! Type III-τ workload): train a C-SVC on an ijcnn1-like dataset, then
//! compare classification throughput of the LIBSVM-style scan against
//! KARL's threshold kernel aggregation queries — with identical answers.
//!
//! ```text
//! cargo run --release --example svm_classification
//! ```

use std::time::Instant;

use karl::core::{BoundMethod, Evaluator, Kernel, LibSvmScan};
use karl::data::{by_name, sample_queries, train_test_split};
use karl::geom::Rect;
use karl::svm::CSvc;

fn main() {
    let dataset = by_name("ijcnn1").expect("registry dataset").generate_n(6_000);
    let labels = dataset.labels.expect("2-class dataset");
    let (train_x, train_y, test_x, test_y) =
        train_test_split(&dataset.points, &labels, 0.5, 7);

    // LIBSVM-like defaults: Gaussian kernel with γ = 1/d.
    let gamma = 1.0 / dataset.points.dims() as f64;
    let kernel = Kernel::gaussian(gamma);
    println!(
        "training C-SVC on {} points ({} dims, γ = {:.4})...",
        train_x.len(),
        train_x.dims(),
        gamma
    );
    let t = Instant::now();
    let model = CSvc::new(10.0, kernel).train(&train_x, &train_y);
    println!(
        "trained in {:.2?}: {} support vectors, ρ = {:.4}, test accuracy {:.1}%",
        t.elapsed(),
        model.num_support(),
        model.threshold(),
        100.0 * model.accuracy(&test_x, &test_y)
    );

    // The online phase is a TKAQ: F_P(q) ≥ ρ with signed weights w = y·α.
    let queries = sample_queries(&test_x, 2_000, 99);
    let tau = model.threshold();

    // Baseline: LIBSVM-style sequential evaluation of the decision function.
    let libsvm = LibSvmScan::new(model.support().clone(), model.weights().to_vec(), kernel);
    let t = Instant::now();
    let base_answers: Vec<bool> = queries.iter().map(|q| libsvm.tkaq(q, tau)).collect();
    let base_time = t.elapsed();

    // KARL: the same decision through linear bounds over a kd-tree
    // (Type III weighting → automatic P⁺/P⁻ split inside the evaluator).
    let eval = Evaluator::<Rect>::build(
        model.support(),
        model.weights(),
        kernel,
        BoundMethod::Karl,
        40,
    );
    let t = Instant::now();
    let karl_answers: Vec<bool> = queries.iter().map(|q| eval.tkaq(q, tau)).collect();
    let karl_time = t.elapsed();

    assert_eq!(base_answers, karl_answers, "KARL must preserve every prediction");
    let positives = karl_answers.iter().filter(|&&a| a).count();
    println!(
        "classified {} queries ({} positive) — answers identical",
        queries.len(),
        positives
    );
    println!(
        "LIBSVM-style scan: {:>9.1} queries/s",
        queries.len() as f64 / base_time.as_secs_f64()
    );
    println!(
        "KARL TKAQ:         {:>9.1} queries/s  ({:.1}x speedup)",
        queries.len() as f64 / karl_time.as_secs_f64(),
        base_time.as_secs_f64() / karl_time.as_secs_f64()
    );
}
