//! Quickstart: build a KARL evaluator over a synthetic dataset and compare
//! it against the naive scan on both query types.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use std::time::Instant;

use karl::core::{BoundMethod, Evaluator, Kernel, Scan};
use karl::data::{by_name, sample_queries};
use karl::geom::Rect;
use karl::kde::Kde;

fn main() {
    // A miniboone-like multi-modal dataset from the registry (50-d, two
    // broad clusters + background noise), scaled to laptop size.
    let dataset = by_name("miniboone").expect("registry dataset").generate_n(20_000);
    println!("dataset: {} ({} points, {} dims)", dataset.name, dataset.points.len(), dataset.points.dims());

    // Type I workload: kernel density estimation with Scott's-rule γ.
    let kde = Kde::fit(dataset.points.clone());
    println!("Scott's rule: γ = {:.3}", kde.gamma());
    let weights = vec![kde.weight(); dataset.points.len()];
    let kernel = Kernel::gaussian(kde.gamma());

    let queries = sample_queries(&dataset.points, 200, 42);

    // Baseline: exact sequential scan.
    let scan = Scan::new(dataset.points.clone(), weights.clone(), kernel);
    let t = Instant::now();
    let densities: Vec<f64> = queries.iter().map(|q| scan.aggregate(q)).collect();
    let scan_time = t.elapsed();
    let mu = densities.iter().sum::<f64>() / densities.len() as f64;
    println!("scan:  {:>8.1} queries/s (exact)", queries.len() as f64 / scan_time.as_secs_f64());

    // KARL: same queries, answered through the linear bounds.
    let eval = Evaluator::<Rect>::build(&dataset.points, &weights, kernel, BoundMethod::Karl, 80);

    // Threshold queries at τ = μ (the paper's default Type I-τ setting).
    let t = Instant::now();
    let above = queries.iter().filter(|q| eval.tkaq(q, mu)).count();
    let tkaq_time = t.elapsed();
    println!(
        "KARL TKAQ(τ=μ): {:>8.1} queries/s — {}/{} queries in the dense region",
        queries.len() as f64 / tkaq_time.as_secs_f64(),
        above,
        queries.len()
    );

    // Approximate density queries at ε = 0.2.
    let t = Instant::now();
    let mut max_rel_err: f64 = 0.0;
    for (i, q) in queries.iter().enumerate() {
        let est = eval.ekaq(q, 0.2);
        max_rel_err = max_rel_err.max((est - densities[i]).abs() / densities[i].max(1e-300));
    }
    let ekaq_time = t.elapsed();
    println!(
        "KARL eKAQ(ε=0.2): {:>8.1} queries/s — max observed relative error {:.3}",
        queries.len() as f64 / ekaq_time.as_secs_f64(),
        max_rel_err
    );
    assert!(max_rel_err <= 0.2 + 1e-9, "ε contract violated");

    println!(
        "speedup vs scan: {:.1}x (TKAQ), {:.1}x (eKAQ)",
        scan_time.as_secs_f64() / tkaq_time.as_secs_f64(),
        scan_time.as_secs_f64() / ekaq_time.as_secs_f64()
    );
}
