//! Dataset I/O: CSV-like text formats for points and labels.
//!
//! The synthetic registry covers the reproduction, but a library users can
//! adopt needs to ingest their own data. Two formats are supported:
//!
//! * **dense CSV** — one point per line, coordinates separated by commas
//!   (or any of `;`, whitespace, tabs); an optional label column first or
//!   last (`load_labeled_csv`).
//! * **LIBSVM sparse** — `label idx:val idx:val …` lines with 1-based
//!   indices (`load_libsvm`), densified to the maximum seen index.
//!
//! Parsers are strict about shape consistency (ragged rows are an error,
//! not a guess) and return typed errors rather than panicking, since file
//! contents are external input.

use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::Path;

use karl_geom::PointSet;

/// Errors produced by the dataset parsers.
#[derive(Debug)]
pub enum DataError {
    /// Underlying file I/O failure.
    Io(std::io::Error),
    /// A cell failed to parse as a number; `(line, cell)` are 1-based.
    BadNumber {
        /// 1-based line number.
        line: usize,
        /// Offending cell text.
        cell: String,
    },
    /// A row had a different arity than the first row.
    RaggedRow {
        /// 1-based line number.
        line: usize,
        /// Cells found on this line.
        found: usize,
        /// Cells expected (from the first data line).
        expected: usize,
    },
    /// The input contained no data rows.
    Empty,
    /// A LIBSVM feature index was not a positive integer.
    BadIndex {
        /// 1-based line number.
        line: usize,
        /// Offending index text.
        cell: String,
    },
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::Io(e) => write!(f, "I/O error: {e}"),
            DataError::BadNumber { line, cell } => {
                write!(f, "line {line}: cannot parse number from {cell:?}")
            }
            DataError::RaggedRow {
                line,
                found,
                expected,
            } => write!(f, "line {line}: {found} cells, expected {expected}"),
            DataError::Empty => write!(f, "no data rows found"),
            DataError::BadIndex { line, cell } => {
                write!(f, "line {line}: bad feature index {cell:?}")
            }
        }
    }
}

impl std::error::Error for DataError {}

impl From<std::io::Error> for DataError {
    fn from(e: std::io::Error) -> Self {
        DataError::Io(e)
    }
}

/// Which column of a labeled CSV holds the label.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LabelColumn {
    /// The first cell of each row.
    First,
    /// The last cell of each row.
    Last,
}

fn split_cells(line: &str) -> Vec<&str> {
    line.split(|c: char| c == ',' || c == ';' || c.is_whitespace())
        .filter(|s| !s.is_empty())
        .collect()
}

fn parse_rows(text: &str) -> Result<Vec<Vec<f64>>, DataError> {
    let mut rows: Vec<Vec<f64>> = Vec::new();
    let mut expected = 0usize;
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let cells = split_cells(line);
        // Header detection: skip a first row that doesn't parse at all.
        let mut row = Vec::with_capacity(cells.len());
        let mut ok = true;
        for cell in &cells {
            match cell.parse::<f64>() {
                Ok(v) => row.push(v),
                Err(_) => {
                    ok = false;
                    break;
                }
            }
        }
        if !ok {
            if rows.is_empty() {
                continue; // header line
            }
            let bad = cells
                .iter()
                .find(|c| c.parse::<f64>().is_err())
                .unwrap_or(&"")
                .to_string();
            return Err(DataError::BadNumber {
                line: lineno + 1,
                cell: bad,
            });
        }
        if rows.is_empty() {
            expected = row.len();
        } else if row.len() != expected {
            return Err(DataError::RaggedRow {
                line: lineno + 1,
                found: row.len(),
                expected,
            });
        }
        rows.push(row);
    }
    if rows.is_empty() {
        return Err(DataError::Empty);
    }
    Ok(rows)
}

/// Parses unlabeled dense CSV text into a point set.
pub fn parse_csv(text: &str) -> Result<PointSet, DataError> {
    let rows = parse_rows(text)?;
    Ok(PointSet::from_rows(&rows))
}

/// Loads unlabeled dense CSV from a file.
pub fn load_csv(path: impl AsRef<Path>) -> Result<PointSet, DataError> {
    parse_csv(&fs::read_to_string(path)?)
}

/// Parses labeled dense CSV text into `(points, labels)`.
pub fn parse_labeled_csv(
    text: &str,
    label: LabelColumn,
) -> Result<(PointSet, Vec<f64>), DataError> {
    let rows = parse_rows(text)?;
    if rows[0].len() < 2 {
        return Err(DataError::RaggedRow {
            line: 1,
            found: rows[0].len(),
            expected: 2,
        });
    }
    let mut labels = Vec::with_capacity(rows.len());
    let mut points = Vec::with_capacity(rows.len());
    for mut row in rows {
        let y = match label {
            LabelColumn::First => row.remove(0),
            LabelColumn::Last => row.pop().expect("checked arity"),
        };
        labels.push(y);
        points.push(row);
    }
    Ok((PointSet::from_rows(&points), labels))
}

/// Loads labeled dense CSV from a file.
pub fn load_labeled_csv(
    path: impl AsRef<Path>,
    label: LabelColumn,
) -> Result<(PointSet, Vec<f64>), DataError> {
    parse_labeled_csv(&fs::read_to_string(path)?, label)
}

/// Parses LIBSVM sparse text (`label idx:val …`, 1-based indices) into
/// `(points, labels)`, densified to the maximum index seen.
pub fn parse_libsvm(text: &str) -> Result<(PointSet, Vec<f64>), DataError> {
    let mut labels = Vec::new();
    let mut sparse: Vec<Vec<(usize, f64)>> = Vec::new();
    let mut max_idx = 0usize;
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let label_cell = parts.next().ok_or(DataError::Empty)?;
        let y: f64 = label_cell.parse().map_err(|_| DataError::BadNumber {
            line: lineno + 1,
            cell: label_cell.to_string(),
        })?;
        let mut feats = Vec::new();
        for pair in parts {
            let Some((idx, val)) = pair.split_once(':') else {
                return Err(DataError::BadIndex {
                    line: lineno + 1,
                    cell: pair.to_string(),
                });
            };
            let idx: usize = idx.parse().map_err(|_| DataError::BadIndex {
                line: lineno + 1,
                cell: pair.to_string(),
            })?;
            if idx == 0 {
                return Err(DataError::BadIndex {
                    line: lineno + 1,
                    cell: pair.to_string(),
                });
            }
            let val: f64 = val.parse().map_err(|_| DataError::BadNumber {
                line: lineno + 1,
                cell: pair.to_string(),
            })?;
            max_idx = max_idx.max(idx);
            feats.push((idx - 1, val));
        }
        labels.push(y);
        sparse.push(feats);
    }
    if labels.is_empty() {
        return Err(DataError::Empty);
    }
    let dims = max_idx.max(1);
    let mut data = vec![0.0; labels.len() * dims];
    for (i, feats) in sparse.iter().enumerate() {
        for &(j, v) in feats {
            data[i * dims + j] = v;
        }
    }
    Ok((PointSet::new(dims, data), labels))
}

/// Loads LIBSVM sparse data from a file.
pub fn load_libsvm(path: impl AsRef<Path>) -> Result<(PointSet, Vec<f64>), DataError> {
    parse_libsvm(&fs::read_to_string(path)?)
}

/// Writes a point set (optionally labeled, label last) as dense CSV.
pub fn save_csv(
    path: impl AsRef<Path>,
    points: &PointSet,
    labels: Option<&[f64]>,
) -> Result<(), DataError> {
    if let Some(l) = labels {
        assert_eq!(l.len(), points.len(), "labels/points mismatch");
    }
    let mut out = fs::File::create(path)?;
    let mut buf = String::new();
    for (i, p) in points.iter().enumerate() {
        buf.clear();
        for (j, x) in p.iter().enumerate() {
            if j > 0 {
                buf.push(',');
            }
            buf.push_str(&format!("{x}"));
        }
        if let Some(l) = labels {
            buf.push(',');
            buf.push_str(&format!("{}", l[i]));
        }
        buf.push('\n');
        out.write_all(buf.as_bytes())?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_plain_csv() {
        let ps = parse_csv("1.0,2.0\n3.0,4.0\n").unwrap();
        assert_eq!(ps.len(), 2);
        assert_eq!(ps.point(1), &[3.0, 4.0]);
    }

    #[test]
    fn parse_csv_with_header_comments_and_blank_lines() {
        let ps = parse_csv("x,y\n# comment\n\n1,2\n3,4\n").unwrap();
        assert_eq!(ps.len(), 2);
    }

    #[test]
    fn parse_csv_alternative_separators() {
        let ps = parse_csv("1;2;3\n4 5\t6\n").unwrap();
        assert_eq!(ps.dims(), 3);
        assert_eq!(ps.point(1), &[4.0, 5.0, 6.0]);
    }

    #[test]
    fn ragged_rows_are_rejected() {
        let err = parse_csv("1,2\n3\n").unwrap_err();
        assert!(matches!(err, DataError::RaggedRow { line: 2, found: 1, expected: 2 }));
    }

    #[test]
    fn bad_number_mid_file_is_rejected() {
        let err = parse_csv("1,2\n3,oops\n").unwrap_err();
        assert!(matches!(err, DataError::BadNumber { line: 2, .. }));
    }

    #[test]
    fn empty_input_is_rejected() {
        assert!(matches!(parse_csv("# nothing\n"), Err(DataError::Empty)));
    }

    #[test]
    fn labeled_csv_first_and_last() {
        let (ps, y) = parse_labeled_csv("1,0.5,0.6\n-1,0.7,0.8\n", LabelColumn::First).unwrap();
        assert_eq!(y, vec![1.0, -1.0]);
        assert_eq!(ps.point(0), &[0.5, 0.6]);
        let (ps2, y2) = parse_labeled_csv("0.5,0.6,1\n0.7,0.8,-1\n", LabelColumn::Last).unwrap();
        assert_eq!(y2, vec![1.0, -1.0]);
        assert_eq!(ps2.point(1), &[0.7, 0.8]);
    }

    #[test]
    fn libsvm_sparse_roundtrip() {
        let (ps, y) = parse_libsvm("+1 1:0.5 3:0.25\n-1 2:1.0\n").unwrap();
        assert_eq!(y, vec![1.0, -1.0]);
        assert_eq!(ps.dims(), 3);
        assert_eq!(ps.point(0), &[0.5, 0.0, 0.25]);
        assert_eq!(ps.point(1), &[0.0, 1.0, 0.0]);
    }

    #[test]
    fn libsvm_rejects_zero_index_and_garbage() {
        assert!(matches!(
            parse_libsvm("+1 0:0.5\n"),
            Err(DataError::BadIndex { .. })
        ));
        assert!(matches!(
            parse_libsvm("+1 nonsense\n"),
            Err(DataError::BadIndex { .. })
        ));
        assert!(matches!(
            parse_libsvm("abc 1:0.5\n"),
            Err(DataError::BadNumber { .. })
        ));
    }

    #[test]
    fn csv_file_roundtrip() {
        let dir = std::env::temp_dir().join("karl_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("points.csv");
        let ps = PointSet::new(2, vec![1.0, 2.0, 3.0, 4.0]);
        save_csv(&path, &ps, Some(&[1.0, -1.0])).unwrap();
        let (back, labels) = load_labeled_csv(&path, LabelColumn::Last).unwrap();
        assert_eq!(back, ps);
        assert_eq!(labels, vec![1.0, -1.0]);
        std::fs::remove_file(&path).ok();
    }
}
