//! Principal component analysis via a cyclic Jacobi eigensolver.
//!
//! Used by the dimensionality sweep of Figure 12 (the paper reduces the
//! 784-dimensional mnist data with PCA). Jacobi rotation is exact, simple
//! and fast enough for `d ≤ ~1000`, which covers everything the
//! reproduction needs.

use karl_geom::PointSet;

/// A fitted PCA transform.
#[derive(Debug, Clone)]
pub struct Pca {
    mean: Vec<f64>,
    /// Row-major `d × d`; row `k` is the `k`-th principal axis (descending
    /// explained variance).
    components: Vec<f64>,
    eigenvalues: Vec<f64>,
    dims: usize,
}

impl Pca {
    /// Fits PCA on `points` (population covariance, Jacobi
    /// eigendecomposition).
    ///
    /// # Panics
    /// Panics if `points` is empty.
    pub fn fit(points: &PointSet) -> Self {
        assert!(!points.is_empty(), "cannot fit PCA on an empty set");
        let d = points.dims();
        let n = points.len() as f64;
        let mean = points.mean();

        // Covariance matrix (population normalization).
        let mut cov = vec![0.0; d * d];
        let mut centered = vec![0.0; d];
        for p in points.iter() {
            for j in 0..d {
                centered[j] = p[j] - mean[j];
            }
            for i in 0..d {
                let ci = centered[i];
                // symmetric: fill upper triangle only
                for j in i..d {
                    cov[i * d + j] += ci * centered[j];
                }
            }
        }
        for i in 0..d {
            for j in i..d {
                let v = cov[i * d + j] / n;
                cov[i * d + j] = v;
                cov[j * d + i] = v;
            }
        }

        let (eigenvalues, vectors) = jacobi_eigen(&mut cov, d);
        // Sort descending by eigenvalue.
        let mut order: Vec<usize> = (0..d).collect();
        order.sort_by(|&a, &b| eigenvalues[b].total_cmp(&eigenvalues[a]));
        let mut components = vec![0.0; d * d];
        let mut sorted_vals = vec![0.0; d];
        for (row, &k) in order.iter().enumerate() {
            sorted_vals[row] = eigenvalues[k];
            for j in 0..d {
                // vectors stores eigenvectors as columns
                components[row * d + j] = vectors[j * d + k];
            }
        }
        Self {
            mean,
            components,
            eigenvalues: sorted_vals,
            dims: d,
        }
    }

    /// Eigenvalues in descending order (explained variance per axis).
    pub fn eigenvalues(&self) -> &[f64] {
        &self.eigenvalues
    }

    /// The `k`-th principal axis.
    ///
    /// # Panics
    /// Panics if `k ≥ dims`.
    pub fn component(&self, k: usize) -> &[f64] {
        assert!(k < self.dims, "component index out of range");
        &self.components[k * self.dims..(k + 1) * self.dims]
    }

    /// Projects `points` onto the top `k` principal axes.
    ///
    /// # Panics
    /// Panics if `k == 0`, `k > dims`, or dimensionality mismatches.
    pub fn project(&self, points: &PointSet, k: usize) -> PointSet {
        assert!(k >= 1 && k <= self.dims, "invalid target dimensionality");
        assert_eq!(points.dims(), self.dims, "dimensionality mismatch");
        let d = self.dims;
        let mut data = Vec::with_capacity(points.len() * k);
        let mut centered = vec![0.0; d];
        for p in points.iter() {
            for j in 0..d {
                centered[j] = p[j] - self.mean[j];
            }
            for row in 0..k {
                let axis = &self.components[row * d..(row + 1) * d];
                let mut acc = 0.0;
                for j in 0..d {
                    acc += axis[j] * centered[j];
                }
                data.push(acc);
            }
        }
        PointSet::new(k, data)
    }
}

/// Cyclic Jacobi eigendecomposition of a symmetric matrix (in place).
/// Returns `(eigenvalues, eigenvector_columns)`.
fn jacobi_eigen(a: &mut [f64], d: usize) -> (Vec<f64>, Vec<f64>) {
    let mut v = vec![0.0; d * d];
    for i in 0..d {
        v[i * d + i] = 1.0;
    }
    if d == 1 {
        return (vec![a[0]], v);
    }
    let max_sweeps = 64;
    for _ in 0..max_sweeps {
        // Off-diagonal Frobenius norm, for convergence.
        let mut off = 0.0;
        for p in 0..d {
            for q in p + 1..d {
                off += a[p * d + q] * a[p * d + q];
            }
        }
        let scale: f64 = (0..d).map(|i| a[i * d + i].abs()).sum::<f64>().max(1e-300);
        if off.sqrt() <= 1e-12 * scale {
            break;
        }
        for p in 0..d {
            for q in p + 1..d {
                let apq = a[p * d + q];
                if apq.abs() <= 1e-300 {
                    continue;
                }
                let app = a[p * d + p];
                let aqq = a[q * d + q];
                let theta = (aqq - app) / (2.0 * apq);
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                // Rotate rows/columns p and q of `a`.
                for k in 0..d {
                    let akp = a[k * d + p];
                    let akq = a[k * d + q];
                    a[k * d + p] = c * akp - s * akq;
                    a[k * d + q] = s * akp + c * akq;
                }
                for k in 0..d {
                    let apk = a[p * d + k];
                    let aqk = a[q * d + k];
                    a[p * d + k] = c * apk - s * aqk;
                    a[q * d + k] = s * apk + c * aqk;
                }
                // Accumulate the rotation into the eigenvector columns.
                for k in 0..d {
                    let vkp = v[k * d + p];
                    let vkq = v[k * d + q];
                    v[k * d + p] = c * vkp - s * vkq;
                    v[k * d + q] = s * vkp + c * vkq;
                }
            }
        }
    }
    let eig: Vec<f64> = (0..d).map(|i| a[i * d + i]).collect();
    (eig, v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use karl_testkit::rng::StdRng;
    use karl_testkit::rng::{Rng, SeedableRng};

    #[test]
    fn diagonal_covariance_recovers_axes() {
        // x-extent 10× the y-extent: first PC ≈ x axis.
        let mut rng = StdRng::seed_from_u64(1);
        let mut data = Vec::new();
        for _ in 0..500 {
            data.push(rng.random_range(-10.0..10.0));
            data.push(rng.random_range(-1.0..1.0));
        }
        let ps = PointSet::new(2, data);
        let pca = Pca::fit(&ps);
        assert!(pca.eigenvalues()[0] > pca.eigenvalues()[1]);
        let c0 = pca.component(0);
        assert!(c0[0].abs() > 0.99, "first axis should align with x: {c0:?}");
    }

    #[test]
    fn eigenvalues_sorted_descending_and_nonnegative() {
        let mut rng = StdRng::seed_from_u64(2);
        let ps = PointSet::new(
            5,
            (0..200 * 5)
                .map(|_| rng.random_range(-1.0..1.0))
                .collect::<Vec<_>>(),
        );
        let pca = Pca::fit(&ps);
        let ev = pca.eigenvalues();
        for w in ev.windows(2) {
            assert!(w[0] + 1e-12 >= w[1]);
        }
        for &e in ev {
            assert!(e >= -1e-10, "covariance eigenvalues must be ≥ 0, got {e}");
        }
    }

    #[test]
    fn components_are_orthonormal() {
        let mut rng = StdRng::seed_from_u64(3);
        let ps = PointSet::new(
            4,
            (0..100 * 4)
                .map(|_| rng.random_range(-2.0..2.0))
                .collect::<Vec<_>>(),
        );
        let pca = Pca::fit(&ps);
        for i in 0..4 {
            for j in 0..4 {
                let dot: f64 = pca
                    .component(i)
                    .iter()
                    .zip(pca.component(j))
                    .map(|(a, b)| a * b)
                    .sum();
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((dot - expect).abs() < 1e-8, "C{i}·C{j} = {dot}");
            }
        }
    }

    #[test]
    fn projection_preserves_pairwise_distance_in_full_rank() {
        let mut rng = StdRng::seed_from_u64(4);
        let ps = PointSet::new(
            3,
            (0..50 * 3)
                .map(|_| rng.random_range(-1.0..1.0))
                .collect::<Vec<_>>(),
        );
        let pca = Pca::fit(&ps);
        let proj = pca.project(&ps, 3);
        // Full-rank orthogonal projection preserves distances.
        for i in 0..10 {
            for j in 0..10 {
                let orig = karl_geom::dist2(ps.point(i), ps.point(j));
                let new = karl_geom::dist2(proj.point(i), proj.point(j));
                assert!((orig - new).abs() < 1e-8 * (1.0 + orig));
            }
        }
    }

    #[test]
    fn projected_variance_matches_eigenvalues() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut data = Vec::new();
        for _ in 0..400 {
            data.push(rng.random_range(-3.0..3.0));
            data.push(rng.random_range(-1.0..1.0));
            data.push(rng.random_range(-0.1..0.1));
        }
        let ps = PointSet::new(3, data);
        let pca = Pca::fit(&ps);
        let proj = pca.project(&ps, 2);
        let var = proj.std_dev();
        assert!((var[0] * var[0] - pca.eigenvalues()[0]).abs() < 1e-6 * (1.0 + pca.eigenvalues()[0]));
        assert!((var[1] * var[1] - pca.eigenvalues()[1]).abs() < 1e-6 * (1.0 + pca.eigenvalues()[1]));
    }

    #[test]
    fn single_dimension_pca() {
        let ps = PointSet::new(1, vec![1.0, 2.0, 3.0]);
        let pca = Pca::fit(&ps);
        assert_eq!(pca.eigenvalues().len(), 1);
        let proj = pca.project(&ps, 1);
        assert_eq!(proj.len(), 3);
    }
}
