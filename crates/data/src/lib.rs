//! # karl-data — datasets and preprocessing for the KARL reproduction
//!
//! * [`registry`] — seeded synthetic generators mirroring the ten
//!   evaluation datasets of the paper's Table VI (same dimensionalities,
//!   scaled cardinalities; see `DESIGN.md` for the substitution rationale).
//! * [`prep`] — min–max normalization (`[0,1]^d` for the Gaussian kernel,
//!   `[−1,1]^d` for the polynomial kernel), query sampling, subsampling,
//!   train/test splitting.
//! * [`pca`] — principal component analysis (cyclic Jacobi) for the
//!   dimensionality sweep of Figure 12.
//! * [`io`] — dense-CSV and LIBSVM-sparse loaders/writers so the library
//!   works on real data, not only on the synthetic registry.

pub mod io;
pub mod pca;
pub mod prep;
pub mod registry;

pub use io::{
    load_csv, load_labeled_csv, load_libsvm, parse_csv, parse_labeled_csv, parse_libsvm,
    save_csv, DataError, LabelColumn,
};
pub use pca::Pca;
pub use prep::{normalize_symmetric, normalize_unit, sample_queries, subsample, train_test_split};
pub use registry::{by_name, registry, Dataset, DatasetSpec, ModelKind};
