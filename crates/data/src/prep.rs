//! Dataset preprocessing: normalization, sampling, splitting.
//!
//! Mirrors the paper's protocol (Section V-A): Gaussian-kernel experiments
//! normalize data to `[0, 1]^d`, polynomial-kernel experiments to
//! `[−1, 1]^d`, query sets are random samples of the data.

use karl_geom::PointSet;
use karl_testkit::rng::StdRng;
use karl_testkit::rng::seq::SliceRandom;
use karl_testkit::rng::{Rng, SeedableRng};

/// Min–max normalizes each dimension into `[0, 1]`. Dimensions with zero
/// extent map to `0.5`.
pub fn normalize_unit(points: &PointSet) -> PointSet {
    normalize_into(points, 0.0, 1.0)
}

/// Min–max normalizes each dimension into `[−1, 1]`. Dimensions with zero
/// extent map to `0`.
pub fn normalize_symmetric(points: &PointSet) -> PointSet {
    normalize_into(points, -1.0, 1.0)
}

fn normalize_into(points: &PointSet, lo: f64, hi: f64) -> PointSet {
    assert!(!points.is_empty(), "cannot normalize an empty set");
    let d = points.dims();
    let mut min = points.point(0).to_vec();
    let mut max = min.clone();
    for p in points.iter() {
        for j in 0..d {
            if p[j] < min[j] {
                min[j] = p[j];
            }
            if p[j] > max[j] {
                max[j] = p[j];
            }
        }
    }
    let mid = 0.5 * (lo + hi);
    let mut data = Vec::with_capacity(points.len() * d);
    for p in points.iter() {
        for j in 0..d {
            let ext = max[j] - min[j];
            data.push(if ext > 0.0 {
                lo + (p[j] - min[j]) / ext * (hi - lo)
            } else {
                mid
            });
        }
    }
    PointSet::new(d, data)
}

/// Samples `k` query points from `points` with replacement (the paper's
/// query sets are random samples of each dataset).
///
/// # Panics
/// Panics if `points` is empty or `k == 0`.
pub fn sample_queries(points: &PointSet, k: usize, seed: u64) -> PointSet {
    assert!(!points.is_empty(), "cannot sample from an empty set");
    assert!(k > 0, "sample size must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    let idx: Vec<usize> = (0..k).map(|_| rng.random_range(0..points.len())).collect();
    points.select(&idx)
}

/// Takes a uniform subsample of `n` points without replacement (used by the
/// dataset-size sweep, Figure 11). Returns all points when `n ≥ len`.
pub fn subsample(points: &PointSet, n: usize, seed: u64) -> PointSet {
    assert!(!points.is_empty(), "cannot subsample an empty set");
    if n >= points.len() {
        return points.clone();
    }
    assert!(n > 0, "subsample size must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut idx: Vec<usize> = (0..points.len()).collect();
    let (chosen, _) = idx.partial_shuffle(&mut rng, n);
    points.select(chosen)
}

/// Splits `points` (and aligned `labels`) into a train/test pair by a
/// shuffled `train_frac` cut.
///
/// # Panics
/// Panics if lengths mismatch or `train_frac ∉ (0, 1)`.
pub fn train_test_split(
    points: &PointSet,
    labels: &[f64],
    train_frac: f64,
    seed: u64,
) -> (PointSet, Vec<f64>, PointSet, Vec<f64>) {
    assert_eq!(labels.len(), points.len(), "labels/points mismatch");
    assert!(
        train_frac > 0.0 && train_frac < 1.0,
        "train fraction out of range"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut idx: Vec<usize> = (0..points.len()).collect();
    idx.shuffle(&mut rng);
    let cut = ((points.len() as f64 * train_frac).round() as usize).clamp(1, points.len() - 1);
    let (tr, te) = idx.split_at(cut);
    let pick = |ids: &[usize]| -> (PointSet, Vec<f64>) {
        (
            points.select(ids),
            ids.iter().map(|&i| labels[i]).collect(),
        )
    };
    let (ptr, ltr) = pick(tr);
    let (pte, lte) = pick(te);
    (ptr, ltr, pte, lte)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PointSet {
        PointSet::new(2, vec![0.0, 10.0, 4.0, 30.0, 2.0, 20.0])
    }

    #[test]
    fn normalize_unit_hits_bounds() {
        let n = normalize_unit(&sample());
        assert_eq!(n.point(0), &[0.0, 0.0]);
        assert_eq!(n.point(1), &[1.0, 1.0]);
        assert_eq!(n.point(2), &[0.5, 0.5]);
    }

    #[test]
    fn normalize_symmetric_hits_bounds() {
        let n = normalize_symmetric(&sample());
        assert_eq!(n.point(0), &[-1.0, -1.0]);
        assert_eq!(n.point(1), &[1.0, 1.0]);
        assert_eq!(n.point(2), &[0.0, 0.0]);
    }

    #[test]
    fn normalize_handles_constant_dimension() {
        let ps = PointSet::new(2, vec![5.0, 1.0, 5.0, 2.0]);
        let n = normalize_unit(&ps);
        assert_eq!(n.point(0)[0], 0.5);
        assert_eq!(n.point(1)[0], 0.5);
    }

    #[test]
    fn sample_queries_is_deterministic() {
        let ps = sample();
        let a = sample_queries(&ps, 10, 7);
        let b = sample_queries(&ps, 10, 7);
        assert_eq!(a, b);
        assert_eq!(a.len(), 10);
    }

    #[test]
    fn subsample_without_replacement() {
        let ps = PointSet::new(1, (0..100).map(|i| i as f64).collect::<Vec<_>>());
        let s = subsample(&ps, 30, 1);
        assert_eq!(s.len(), 30);
        let mut seen: Vec<i64> = s.iter().map(|p| p[0] as i64).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 30, "duplicates in a without-replacement sample");
    }

    #[test]
    fn subsample_full_size_returns_everything() {
        let ps = sample();
        assert_eq!(subsample(&ps, 99, 2).len(), 3);
    }

    #[test]
    fn split_partitions_everything() {
        let ps = PointSet::new(1, (0..50).map(|i| i as f64).collect::<Vec<_>>());
        let labels: Vec<f64> = (0..50).map(|i| if i % 2 == 0 { 1.0 } else { -1.0 }).collect();
        let (ptr, ltr, pte, lte) = train_test_split(&ps, &labels, 0.8, 3);
        assert_eq!(ptr.len() + pte.len(), 50);
        assert_eq!(ltr.len(), ptr.len());
        assert_eq!(lte.len(), pte.len());
        let mut all: Vec<i64> = ptr.iter().chain(pte.iter()).map(|p| p[0] as i64).collect();
        all.sort_unstable();
        assert_eq!(all, (0..50).collect::<Vec<_>>());
    }
}
