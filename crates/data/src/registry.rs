//! The synthetic dataset registry mirroring the paper's evaluation suite
//! (Table VI).
//!
//! The original datasets (UCI / LIBSVM repositories) are not available
//! offline, so each is replaced by a **seeded synthetic generator with the
//! same dimensionality and a configurable fraction of the raw
//! cardinality**. The generators produce what the KARL speedup mechanism
//! actually depends on:
//!
//! * Type I (KDE) datasets are Gaussian-mixture clouds with **low
//!   intrinsic dimensionality** (a latent `k`-dimensional mixture embedded
//!   into the ambient `d` dimensions by a random linear map, plus a little
//!   ambient noise and uniform background points). Real detector/sensor
//!   datasets are strongly correlated across features; this latent
//!   structure is what lets tree nodes acquire narrow `[x_min, x_max]`
//!   intervals — the regime where the paper's bounds pay off. An isotropic
//!   full-dimensional cloud would be the degenerate worst case no indexing
//!   method (including the original KARL) can prune.
//! * Type II/III (SVM) datasets are overlapping labeled mixtures; after
//!   training, support vectors hug the class boundary, reproducing the
//!   paper's observation (Section V-C) that SVM workloads have compact,
//!   normalized support sets with very tight bounds.
//!
//! All generated data is min–max normalized to `[0, 1]^d`, matching the
//! paper's Gaussian-kernel protocol; re-normalize with
//! [`prep::normalize_symmetric`](crate::prep::normalize_symmetric) for
//! polynomial-kernel experiments.

use karl_geom::PointSet;
use karl_testkit::rng::StdRng;
use karl_testkit::rng::{Rng, SeedableRng};

use crate::prep::normalize_unit;

/// Which application model drives a dataset in the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelKind {
    /// Kernel density estimation — Type I weighting (queries I-ε, I-τ).
    KernelDensity,
    /// 1-class SVM — Type II weighting (query II-τ).
    OneClass,
    /// 2-class SVM — Type III weighting (query III-τ).
    TwoClass,
}

/// A generated dataset.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Registry name (paper dataset it mirrors).
    pub name: &'static str,
    /// Points, normalized to `[0, 1]^d`.
    pub points: PointSet,
    /// `±1` labels for [`ModelKind::TwoClass`] datasets, `None` otherwise.
    pub labels: Option<Vec<f64>>,
    /// Application model of this dataset.
    pub model: ModelKind,
}

/// A dataset generator with the paper's shape parameters.
#[derive(Debug, Clone, Copy)]
pub struct DatasetSpec {
    /// Name of the paper dataset this mirrors.
    pub name: &'static str,
    /// Cardinality of the paper's raw dataset.
    pub n_raw: usize,
    /// Dimensionality (matches the paper exactly).
    pub dims: usize,
    /// Application model.
    pub model: ModelKind,
    /// Number of mixture components.
    pub clusters: usize,
    /// Intrinsic (latent) dimensionality of the data manifold.
    pub intrinsic_dim: usize,
    /// Component standard deviation in latent space (centers live in
    /// `[−1, 1]^k`).
    pub spread: f64,
    /// Fraction of uniform background noise points.
    pub noise_frac: f64,
    /// Suggested ν for 1-class training (≈ the paper's support-vector
    /// fraction `n_model/n_raw` from Table VI).
    pub suggested_nu: f64,
    /// Label-flip fraction for 2-class datasets (controls how many support
    /// vectors training produces, mirroring Table VI's `n_model`).
    pub label_noise: f64,
    /// Generation seed (fixed per dataset → reproducible experiments).
    pub seed: u64,
}

/// The registry mirroring Table VI of the paper.
pub fn registry() -> Vec<DatasetSpec> {
    #[allow(clippy::too_many_arguments)]
    fn base(
        name: &'static str,
        n_raw: usize,
        dims: usize,
        model: ModelKind,
        clusters: usize,
        intrinsic_dim: usize,
        spread: f64,
        noise_frac: f64,
        seed: u64,
    ) -> DatasetSpec {
        DatasetSpec {
            name,
            n_raw,
            dims,
            model,
            clusters,
            intrinsic_dim,
            spread,
            noise_frac,
            suggested_nu: 0.1,
            label_noise: 0.0,
            seed,
        }
    }
    use ModelKind::*;
    vec![
        base("mnist", 60_000, 784, KernelDensity, 40, 10, 0.010, 0.02, 101),
        base("miniboone", 119_596, 50, KernelDensity, 24, 6, 0.030, 0.05, 102),
        base("home", 918_991, 10, KernelDensity, 16, 4, 0.05, 0.02, 103),
        base("susy", 4_990_000, 18, KernelDensity, 20, 5, 0.045, 0.05, 104),
        DatasetSpec {
            suggested_nu: 0.26,
            ..base("nsl-kdd", 67_343, 41, OneClass, 20, 6, 0.030, 0.05, 105)
        },
        DatasetSpec {
            suggested_nu: 0.02,
            ..base("kdd99", 972_780, 41, OneClass, 24, 5, 0.025, 0.02, 106)
        },
        DatasetSpec {
            suggested_nu: 0.05,
            ..base("covtype", 581_012, 54, OneClass, 24, 6, 0.025, 0.03, 107)
        },
        DatasetSpec {
            label_noise: 0.05,
            ..base("ijcnn1", 49_990, 22, TwoClass, 16, 5, 0.040, 0.0, 108)
        },
        DatasetSpec {
            label_noise: 0.15,
            ..base("a9a", 32_561, 123, TwoClass, 24, 8, 0.020, 0.0, 109)
        },
        DatasetSpec {
            label_noise: 0.30,
            ..base("covtype-b", 581_012, 54, TwoClass, 24, 6, 0.035, 0.0, 110)
        },
    ]
}

/// Looks a spec up by name.
pub fn by_name(name: &str) -> Option<DatasetSpec> {
    registry().into_iter().find(|s| s.name == name)
}

impl DatasetSpec {
    /// Generates the dataset at `scale` times the paper's raw cardinality
    /// (clamped below at 256 points so tiny scales stay usable).
    ///
    /// # Panics
    /// Panics unless `0 < scale ≤ 1`.
    pub fn generate(&self, scale: f64) -> Dataset {
        assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
        let n = ((self.n_raw as f64 * scale).round() as usize).max(256);
        self.generate_n(n)
    }

    /// Generates exactly `n` points.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn generate_n(&self, n: usize) -> Dataset {
        assert!(n > 0, "cannot generate an empty dataset");
        let mut rng = StdRng::seed_from_u64(self.seed);
        let d = self.dims;
        let nclust = self.clusters.max(1);
        let k = self.intrinsic_dim.clamp(1, d);
        // Small isotropic ambient noise so the data has full rank (PCA
        // sweeps need every dimension to carry *some* variance).
        let ambient_noise = 0.02;

        // The latent→ambient embedding and the latent cluster centers are
        // fixed by the seed and independent of n, so different scales
        // sample the same underlying distribution.
        let inv_sqrt_k = 1.0 / (k as f64).sqrt();
        let embed: Vec<f64> = (0..d * k)
            .map(|_| normal_sample(&mut rng) * inv_sqrt_k)
            .collect();
        let centers: Vec<Vec<f64>> = (0..nclust)
            .map(|_| (0..k).map(|_| rng.random_range(-1.0..1.0)).collect())
            .collect();
        // Per-cluster mixing weights, mildly unbalanced like real data.
        let raw_w: Vec<f64> = (0..nclust).map(|_| rng.random_range(0.5..2.0)).collect();
        let total_w: f64 = raw_w.iter().sum();

        let mut data = Vec::with_capacity(n * d);
        let mut labels = Vec::with_capacity(n);
        let mut latent = vec![0.0; k];
        for _ in 0..n {
            if rng.random::<f64>() < self.noise_frac {
                // Uniform background in latent space (still on the
                // manifold, like stray but in-domain measurements).
                for z in latent.iter_mut() {
                    *z = rng.random_range(-1.3..1.3);
                }
                push_embedded(&mut data, &embed, &latent, d, k, ambient_noise, &mut rng);
                labels.push(if rng.random_bool(0.5) { 1.0 } else { -1.0 });
                continue;
            }
            // Pick a cluster proportionally to its weight.
            let mut pick = rng.random::<f64>() * total_w;
            let mut ci = nclust - 1;
            for (i, &w) in raw_w.iter().enumerate() {
                if pick < w {
                    ci = i;
                    break;
                }
                pick -= w;
            }
            for (z, &c) in latent.iter_mut().zip(&centers[ci]) {
                *z = c + self.spread * normal_sample(&mut rng);
            }
            push_embedded(&mut data, &embed, &latent, d, k, ambient_noise, &mut rng);
            // Alternate cluster labels; flip a fraction to control overlap.
            let mut y = if ci.is_multiple_of(2) { 1.0 } else { -1.0 };
            if rng.random::<f64>() < self.label_noise {
                y = -y;
            }
            labels.push(y);
        }
        let points = normalize_unit(&PointSet::new(d, data));
        let labels = match self.model {
            ModelKind::TwoClass => {
                // Guard against a degenerate single-class draw.
                let pos = labels.iter().filter(|&&y| y > 0.0).count();
                let mut labels = labels;
                if pos == 0 {
                    labels[0] = 1.0;
                } else if pos == labels.len() {
                    labels[0] = -1.0;
                }
                Some(labels)
            }
            _ => None,
        };
        Dataset {
            name: self.name,
            points,
            labels,
            model: self.model,
        }
    }
}

/// Maps a latent point through the embedding and appends the ambient
/// coordinates (plus isotropic noise) to `data`.
fn push_embedded(
    data: &mut Vec<f64>,
    embed: &[f64],
    latent: &[f64],
    d: usize,
    k: usize,
    ambient_noise: f64,
    rng: &mut StdRng,
) {
    for j in 0..d {
        let row = &embed[j * k..(j + 1) * k];
        let mut x = 0.0;
        for (a, z) in row.iter().zip(latent) {
            x += a * z;
        }
        data.push(x + ambient_noise * normal_sample(rng));
    }
}

/// A standard normal sample (delegates to the testkit's Box–Muller).
fn normal_sample(rng: &mut StdRng) -> f64 {
    rng.random_normal()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_matches_paper_table_vi() {
        let reg = registry();
        assert_eq!(reg.len(), 10);
        let mnist = by_name("mnist").unwrap();
        assert_eq!(mnist.dims, 784);
        assert_eq!(mnist.n_raw, 60_000);
        assert_eq!(mnist.model, ModelKind::KernelDensity);
        let a9a = by_name("a9a").unwrap();
        assert_eq!(a9a.dims, 123);
        assert_eq!(a9a.model, ModelKind::TwoClass);
        let covtype = by_name("covtype").unwrap();
        assert_eq!(covtype.dims, 54);
        assert_eq!(covtype.model, ModelKind::OneClass);
        assert!(by_name("nonexistent").is_none());
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = by_name("home").unwrap();
        let a = spec.generate_n(500);
        let b = spec.generate_n(500);
        assert_eq!(a.points, b.points);
    }

    #[test]
    fn generated_data_is_normalized() {
        let spec = by_name("miniboone").unwrap();
        let ds = spec.generate_n(1000);
        assert_eq!(ds.points.dims(), 50);
        assert_eq!(ds.points.len(), 1000);
        for p in ds.points.iter() {
            for &x in p {
                assert!((0.0..=1.0).contains(&x), "coordinate {x} escapes [0,1]");
            }
        }
    }

    #[test]
    fn two_class_datasets_have_both_labels() {
        let spec = by_name("ijcnn1").unwrap();
        let ds = spec.generate_n(400);
        let labels = ds.labels.expect("2-class dataset must carry labels");
        assert_eq!(labels.len(), 400);
        assert!(labels.iter().any(|&y| y > 0.0));
        assert!(labels.iter().any(|&y| y < 0.0));
    }

    #[test]
    fn kde_datasets_have_no_labels() {
        let ds = by_name("susy").unwrap().generate_n(300);
        assert!(ds.labels.is_none());
    }

    #[test]
    fn scaled_generation_respects_minimum() {
        let spec = by_name("mnist").unwrap();
        let ds = spec.generate(1e-9);
        assert_eq!(ds.points.len(), 256);
    }

    #[test]
    fn data_has_low_intrinsic_dimensionality() {
        // The latent embedding must concentrate the variance on ~k
        // principal axes — the structure real sensor data has and the
        // structure that makes tree pruning possible.
        let spec = by_name("miniboone").unwrap();
        let ds = spec.generate_n(2000);
        let pca = crate::pca::Pca::fit(&ds.points);
        let ev = pca.eigenvalues();
        let total: f64 = ev.iter().sum();
        let top: f64 = ev.iter().take(spec.intrinsic_dim).sum();
        assert!(
            top / total > 0.8,
            "top-{} PCs explain only {:.1}% of variance",
            spec.intrinsic_dim,
            100.0 * top / total
        );
        // …but every dimension carries some variance (full rank).
        assert!(ev.iter().all(|&e| e > 0.0));
    }

    #[test]
    #[should_panic]
    fn zero_scale_panics() {
        by_name("home").unwrap().generate(0.0);
    }
}
