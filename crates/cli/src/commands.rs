//! Subcommand implementations.

use std::fmt::Write as _;
use std::path::Path;
use std::time::{Duration, Instant};

use karl_core::{
    plan_for_storage, AnyEvaluator, BoundMethod, Budget, Coreset, Engine, IndexKind, IndexMeta,
    Kernel, OfflineTuner, Query, QueryBatch, Scan, ServeConfig, Server, StatsSnapshot,
    StorageCalibration, StorageProfile,
};
use karl_data::{
    by_name, load_csv, load_labeled_csv, load_libsvm, registry, save_csv, LabelColumn,
};
use karl_geom::PointSet;
use karl_geom::{backend_name, set_backend, SimdChoice};
use karl_kde::scotts_gamma;
use karl_svm::{load_model, save_model, CSvc, OneClassSvm, SvmType};

use crate::args::Parsed;
use crate::CmdOutput;

type CmdResult = Result<String, String>;

/// `karl datasets`
pub fn datasets(p: &Parsed) -> CmdResult {
    p.expect_flags(&[]).map_err(|e| e.to_string())?;
    let mut out = String::from("name        n_raw    dims  model\n");
    for spec in registry() {
        let model = match spec.model {
            karl_data::ModelKind::KernelDensity => "kernel-density (Type I)",
            karl_data::ModelKind::OneClass => "1-class SVM (Type II)",
            karl_data::ModelKind::TwoClass => "2-class SVM (Type III)",
        };
        let _ = writeln!(
            out,
            "{:<10} {:>8} {:>6}  {model}",
            spec.name, spec.n_raw, spec.dims
        );
    }
    Ok(out)
}

/// `karl generate --name N --n COUNT --out FILE [--labeled]`
pub fn generate(p: &Parsed) -> CmdResult {
    p.expect_flags(&["name", "n", "out", "labeled"])
        .map_err(|e| e.to_string())?;
    let name = p.required("name").map_err(|e| e.to_string())?;
    let n: usize = p
        .get_or("n", 10_000, "a point count")
        .map_err(|e| e.to_string())?;
    let out_path = p.required("out").map_err(|e| e.to_string())?;
    let spec =
        by_name(name).ok_or_else(|| format!("unknown dataset {name:?} (try `karl datasets`)"))?;
    let ds = spec.generate_n(n);
    let labels = if p.has("labeled") {
        Some(
            ds.labels
                .clone()
                .ok_or_else(|| format!("dataset {name} has no labels"))?,
        )
    } else {
        None
    };
    save_csv(out_path, &ds.points, labels.as_deref()).map_err(|e| e.to_string())?;
    Ok(format!(
        "wrote {} points x {} dims to {out_path}{}\n",
        ds.points.len(),
        ds.points.dims(),
        if labels.is_some() {
            " (label last)"
        } else {
            ""
        }
    ))
}

fn parse_method(p: &Parsed) -> Result<BoundMethod, String> {
    match p.get("method") {
        None | Some("karl") => Ok(BoundMethod::Karl),
        Some("sota") => Ok(BoundMethod::Sota),
        Some(other) => Err(format!("unknown method {other:?} (karl|sota)")),
    }
}

fn gamma_for(p: &Parsed, points: &PointSet) -> Result<f64, String> {
    match p.get("gamma") {
        None | Some("auto") => Ok(scotts_gamma(points)),
        Some(v) => v
            .parse::<f64>()
            .map_err(|_| format!("--gamma {v:?}: expected a number or 'auto'")),
    }
}

/// `karl kde --data FILE --queries FILE (--tau T | --eps E) …`
pub fn kde(p: &Parsed) -> CmdResult {
    p.expect_flags(&["data", "queries", "tau", "eps", "method", "leaf", "gamma"])
        .map_err(|e| e.to_string())?;
    let data =
        load_csv(p.required("data").map_err(|e| e.to_string())?).map_err(|e| e.to_string())?;
    let queries =
        load_csv(p.required("queries").map_err(|e| e.to_string())?).map_err(|e| e.to_string())?;
    if queries.dims() != data.dims() {
        return Err(format!(
            "query dims {} != data dims {}",
            queries.dims(),
            data.dims()
        ));
    }
    let method = parse_method(p)?;
    let leaf: usize = p
        .get_or("leaf", 80, "a leaf capacity")
        .map_err(|e| e.to_string())?;
    let gamma = gamma_for(p, &data)?;
    let tau: Option<f64> = p.get_parsed("tau", "a number").map_err(|e| e.to_string())?;
    let eps: Option<f64> = p.get_parsed("eps", "a number").map_err(|e| e.to_string())?;

    let n = data.len();
    let weights = vec![1.0 / n as f64; n];
    let eval = AnyEvaluator::build(
        IndexKind::Kd,
        &data,
        &weights,
        Kernel::gaussian(gamma),
        method,
        leaf,
    );
    let mut out = String::with_capacity(queries.len() * 8);
    let start = Instant::now();
    match (tau, eps) {
        (Some(tau), None) => {
            for q in queries.iter() {
                out.push_str(if eval.tkaq(q, tau) { "1\n" } else { "0\n" });
            }
        }
        (None, Some(eps)) => {
            for q in queries.iter() {
                let _ = writeln!(out, "{}", eval.ekaq(q, eps));
            }
        }
        _ => return Err("exactly one of --tau or --eps is required".into()),
    }
    let elapsed = start.elapsed();
    let _ = writeln!(
        out,
        "# throughput {:.0} queries/s over {} points (gamma {:.4}, {:?}, leaf {leaf})",
        queries.len() as f64 / elapsed.as_secs_f64(),
        n,
        gamma,
        method
    );
    Ok(out)
}

/// `karl batch --data FILE --queries FILE (--tau T | --eps E | --tol W) …`
///
/// Same queries and answers as `kde`, executed through the parallel
/// [`QueryBatch`] engine. Worker count: `--threads` flag, else the
/// `KARL_THREADS` environment variable, else `available_parallelism`.
/// `--engine frozen|pointer` selects the evaluation index (default
/// `frozen` — the SoA index with fused bound kernels); both engines and
/// every thread count produce bitwise-identical answers.
///
/// `--budget-nodes` / `--budget-leaf` / `--deadline-ms` bound each
/// query's refinement; a query that trips a budget answers from the
/// certified interval it reached (TKAQ prints `?` when the interval
/// still straddles τ). Faults in individual queries are contained: the
/// poisoned query gets an `# error` line, every other query keeps its
/// exact bits, and [`CmdOutput::failed_queries`] counts the casualties.
pub fn batch(p: &Parsed) -> Result<CmdOutput, String> {
    p.expect_flags(&[
        "data",
        "index",
        "queries",
        "tau",
        "eps",
        "tol",
        "method",
        "leaf",
        "gamma",
        "threads",
        "engine",
        "envelope-cache",
        "stats",
        "budget-nodes",
        "budget-leaf",
        "deadline-ms",
        "dual",
        "coreset",
        "simd",
        "stats-json",
    ])
    .map_err(|e| e.to_string())?;
    // Resolve the SIMD backend before any kernel work (build or query);
    // backends are bitwise identical, so this changes speed, never bits.
    match p.get("simd") {
        None => {}
        Some(s) => match SimdChoice::parse(s) {
            Some(choice) => {
                set_backend(choice);
            }
            None => return Err(format!("unknown simd backend {s:?} (auto|avx2|scalar)")),
        },
    }
    let index_path = p.get("index");
    if index_path.is_some() {
        for flag in ["data", "gamma", "method", "leaf", "coreset", "dual"] {
            if p.has(flag) {
                return Err(format!(
                    "--{flag} conflicts with --index (kernel, method and leaf capacity are recorded in the index file)"
                ));
            }
        }
    }
    let data = match index_path {
        None => Some(
            load_csv(p.required("data").map_err(|e| e.to_string())?).map_err(|e| e.to_string())?,
        ),
        Some(_) => None,
    };
    let queries =
        load_csv(p.required("queries").map_err(|e| e.to_string())?).map_err(|e| e.to_string())?;
    if let Some(data) = &data {
        if queries.dims() != data.dims() {
            return Err(format!(
                "query dims {} != data dims {}",
                queries.dims(),
                data.dims()
            ));
        }
    }
    let tau: Option<f64> = p.get_parsed("tau", "a number").map_err(|e| e.to_string())?;
    let eps: Option<f64> = p.get_parsed("eps", "a number").map_err(|e| e.to_string())?;
    let tol: Option<f64> = p.get_parsed("tol", "a number").map_err(|e| e.to_string())?;
    let query = match (tau, eps, tol) {
        (Some(tau), None, None) => Query::Tkaq { tau },
        (None, Some(eps), None) => {
            if eps <= 0.0 {
                return Err("--eps must be positive".into());
            }
            Query::Ekaq { eps }
        }
        (None, None, Some(tol)) => {
            if tol <= 0.0 {
                return Err("--tol must be positive".into());
            }
            Query::Within { tol }
        }
        _ => return Err("exactly one of --tau, --eps or --tol is required".into()),
    };
    let threads: Option<usize> = p
        .get_parsed("threads", "a thread count")
        .map_err(|e| e.to_string())?;
    let engine = match p.get("engine") {
        None | Some("frozen") => Engine::Frozen,
        Some("pointer") => Engine::Pointer,
        Some(other) => return Err(format!("unknown engine {other:?} (frozen|pointer)")),
    };
    let env_cache = match p.get("envelope-cache") {
        Some("on") => true,
        None | Some("off") => false,
        Some(other) => return Err(format!("unknown envelope-cache {other:?} (on|off)")),
    };
    let want_stats = p.has("stats");
    #[cfg(not(feature = "stats"))]
    if want_stats {
        return Err("--stats requires building karl-cli with the `stats` feature".into());
    }
    let budget_nodes: Option<u64> = p
        .get_parsed("budget-nodes", "a node count")
        .map_err(|e| e.to_string())?;
    let budget_leaf: Option<u64> = p
        .get_parsed("budget-leaf", "a leaf-point count")
        .map_err(|e| e.to_string())?;
    let deadline_ms: Option<u64> = p
        .get_parsed("deadline-ms", "milliseconds")
        .map_err(|e| e.to_string())?;
    let mut budget = Budget::unlimited();
    if let Some(nodes) = budget_nodes {
        if nodes == 0 {
            return Err("--budget-nodes must be at least 1".into());
        }
        budget = budget.max_nodes(nodes);
    }
    if let Some(points) = budget_leaf {
        if points == 0 {
            return Err("--budget-leaf must be at least 1".into());
        }
        budget = budget.max_leaf_points(points);
    }
    if let Some(ms) = deadline_ms {
        budget = budget.deadline(Duration::from_millis(ms));
    }

    let coreset_eps: Option<f64> = p
        .get_parsed("coreset", "a target eps")
        .map_err(|e| e.to_string())?;

    let (mut eval, gamma, method, leaf) = match (index_path, &data) {
        (Some(path), _) => {
            if engine == Engine::Pointer {
                return Err(
                    "--engine pointer is unavailable with --index (loaded indexes carry only the frozen representation)"
                        .into(),
                );
            }
            let (eval, meta) =
                AnyEvaluator::from_index_file(Path::new(path)).map_err(|e| e.to_string())?;
            if queries.dims() != eval.dims() {
                return Err(format!(
                    "query dims {} != index dims {}",
                    queries.dims(),
                    eval.dims()
                ));
            }
            let gamma = match meta.kernel {
                Kernel::Gaussian { gamma }
                | Kernel::Polynomial { gamma, .. }
                | Kernel::Sigmoid { gamma, .. }
                | Kernel::Laplacian { gamma } => gamma,
            };
            (eval, gamma, meta.method, meta.leaf_capacity as usize)
        }
        (None, Some(data)) => {
            let method = parse_method(p)?;
            let leaf: usize = p
                .get_or("leaf", 80, "a leaf capacity")
                .map_err(|e| e.to_string())?;
            let gamma = gamma_for(p, data)?;
            let n = data.len();
            let weights = vec![1.0 / n as f64; n];
            let eval = AnyEvaluator::build(
                IndexKind::Kd,
                data,
                &weights,
                Kernel::gaussian(gamma),
                method,
                leaf,
            );
            (eval, gamma, method, leaf)
        }
        (None, None) => unreachable!("data is loaded whenever --index is absent"),
    };
    let n = eval.len();
    let mut spec = QueryBatch::new(&queries, query)
        .engine(engine)
        .envelope_cache(env_cache)
        .budget(budget);
    let coreset = match (coreset_eps, &data) {
        (Some(ceps), Some(data)) => {
            if ceps <= 0.0 {
                return Err("--coreset must be positive".into());
            }
            let weights = vec![1.0 / n as f64; n];
            let cs = Coreset::try_build(data, &weights, Kernel::gaussian(gamma), ceps)
                .map_err(|e| e.to_string())?;
            eval = eval.with_coreset_tier(&cs, leaf).map_err(|e| e.to_string())?;
            spec = spec.coreset(true);
            Some(cs)
        }
        _ => None,
    };
    if let Some(t) = threads {
        if t == 0 {
            return Err("--threads must be at least 1".into());
        }
        spec = spec.threads(t);
    }
    let dual = p.has("dual");
    let report = if dual {
        spec.try_run_dual_any(&eval)
    } else {
        spec.try_run_any(&eval)
    }
    .map_err(|e| e.to_string())?;

    let mut out = String::with_capacity(queries.len() * 8);
    let mut failed = 0usize;
    for (i, result) in report.results().iter().enumerate() {
        match result {
            Ok(o) => match query {
                Query::Tkaq { .. } if o.is_truncated() => out.push_str("?\n"),
                Query::Tkaq { .. } => {
                    out.push_str(if report.answer(o) == 1.0 { "1\n" } else { "0\n" });
                }
                Query::Ekaq { .. } | Query::Within { .. } => {
                    let _ = writeln!(out, "{}", report.answer(o));
                }
            },
            Err(e) => {
                failed += 1;
                let _ = writeln!(out, "# error query {i}: {e}");
            }
        }
    }
    let _ = writeln!(
        out,
        "# throughput {:.0} queries/s over {} points (gamma {:.4}, {:?}, leaf {leaf}, threads {}, engine {engine:?}, envelope-cache {}, simd {})",
        report.throughput(),
        n,
        gamma,
        method,
        report.threads(),
        if env_cache { "on" } else { "off" },
        backend_name()
    );
    if let Some(cs) = &coreset {
        let _ = writeln!(
            out,
            "# coreset tier {} of {} points (eps_c {:.3e}, margin {:.3e}, footprint {} bytes): decided {} fell_through {}",
            cs.len(),
            n,
            cs.eps_c(),
            cs.margin(),
            eval.tier_footprint_bytes().unwrap_or(0),
            report.coreset_decided(),
            report.coreset_fallthrough()
        );
    }
    let truncated = report.truncated_count();
    if truncated > 0 {
        let _ = writeln!(
            out,
            "# truncated {truncated} of {} queries answered from their certified interval at budget exhaustion",
            report.len()
        );
    }
    if failed > 0 {
        let _ = writeln!(out, "# failed {failed} of {} queries", report.len());
    }
    if let Some(path) = p.get("stats-json") {
        // The shared `karl-stats-v1` schema (`karl serve`'s `stats` verb
        // emits the same object): one batch is one micro-batch in which
        // every query was trivially admitted. No timing fields, so two
        // identical runs write identical bytes.
        let snap = StatsSnapshot {
            queries: report.len() as u64,
            admitted: report.len() as u64,
            rejected: 0,
            shed: 0,
            completed: report.completed_count() as u64,
            truncated: truncated as u64,
            faulted: failed as u64,
            protocol_errors: 0,
            batches: 1,
            queue_depth_max: report.len() as u64,
            threads: report.threads() as u64,
        };
        #[cfg(feature = "stats")]
        let json = karl_core::stats_json_with_run(&snap, &report.stats());
        #[cfg(not(feature = "stats"))]
        let json = karl_core::stats_json(&snap);
        std::fs::write(path, format!("{json}\n"))
            .map_err(|e| format!("--stats-json {path}: {e}"))?;
    }
    #[cfg(feature = "stats")]
    if want_stats {
        let s = report.stats();
        let _ = writeln!(
            out,
            "# stats nodes_refined {} envelopes_built {} cache_hits {} cache_misses {} curve_value_calls {} dual_pairs_scored {} dual_wholesale_decided {} coreset_decided {} coreset_fallthrough {} simd_backend {}",
            s.nodes_refined,
            s.envelopes_built,
            s.cache_hits,
            s.cache_misses,
            s.curve_value_calls,
            s.dual_pairs_scored,
            s.dual_wholesale_decided,
            s.coreset_decided,
            s.coreset_fallthrough,
            s.simd_backend
        );
    }
    Ok(CmdOutput {
        text: out,
        failed_queries: failed,
    })
}

/// `karl serve (--stdio | --listen ADDR) (--data FILE | --index FILE) …`
///
/// The online query daemon (DESIGN.md §16): newline-delimited JSON
/// requests in, one typed response line per request out, with bounded
/// admission (`--queue`), certified load shedding (`--shed`), and
/// micro-batch coalescing (`--batch`) through the parallel engine. The
/// response transcript on stdout is deterministic — summary lines go to
/// stderr — and the process exits 2 when any request faulted inside the
/// containment boundary, mirroring `batch`'s exit-code contract.
pub fn serve(p: &Parsed) -> Result<CmdOutput, String> {
    p.expect_flags(&[
        "stdio",
        "listen",
        "data",
        "index",
        "gamma",
        "method",
        "leaf",
        "threads",
        "queue",
        "shed",
        "batch",
        "budget-nodes",
        "budget-leaf",
        "summary-every",
        "simd",
    ])
    .map_err(|e| e.to_string())?;
    match p.get("simd") {
        None => {}
        Some(s) => match SimdChoice::parse(s) {
            Some(choice) => {
                set_backend(choice);
            }
            None => return Err(format!("unknown simd backend {s:?} (auto|avx2|scalar)")),
        },
    }

    let eval = match p.get("index") {
        Some(path) => {
            for flag in ["data", "gamma", "method", "leaf"] {
                if p.has(flag) {
                    return Err(format!(
                        "--{flag} conflicts with --index (kernel, method and leaf capacity are recorded in the index file)"
                    ));
                }
            }
            let (eval, _meta) =
                AnyEvaluator::from_index_file(Path::new(path)).map_err(|e| e.to_string())?;
            eval
        }
        None => {
            let data = load_csv(p.required("data").map_err(|e| e.to_string())?)
                .map_err(|e| e.to_string())?;
            let method = parse_method(p)?;
            let leaf: usize = p
                .get_or("leaf", 80, "a leaf capacity")
                .map_err(|e| e.to_string())?;
            let gamma = gamma_for(p, &data)?;
            let n = data.len();
            let weights = vec![1.0 / n as f64; n];
            AnyEvaluator::build(
                IndexKind::Kd,
                &data,
                &weights,
                Kernel::gaussian(gamma),
                method,
                leaf,
            )
        }
    };

    let defaults = ServeConfig::default();
    let budget_nodes: Option<u64> = p
        .get_parsed("budget-nodes", "a node count")
        .map_err(|e| e.to_string())?;
    let budget_leaf: Option<u64> = p
        .get_parsed("budget-leaf", "a leaf-point count")
        .map_err(|e| e.to_string())?;
    let mut budget = Budget::unlimited();
    if let Some(nodes) = budget_nodes {
        if nodes == 0 {
            return Err("--budget-nodes must be at least 1".into());
        }
        budget = budget.max_nodes(nodes);
    }
    if let Some(points) = budget_leaf {
        if points == 0 {
            return Err("--budget-leaf must be at least 1".into());
        }
        budget = budget.max_leaf_points(points);
    }
    let queue_cap: usize = p
        .get_or("queue", defaults.queue_cap, "a queue capacity")
        .map_err(|e| e.to_string())?;
    let cfg = ServeConfig {
        queue_cap,
        // Unless pinned, the shed watermark tracks the queue at 3/4 —
        // shedding kicks in with headroom left before hard rejection.
        shed_at: p
            .get_parsed("shed", "a shed watermark")
            .map_err(|e| e.to_string())?
            .unwrap_or((queue_cap * 3 / 4).max(1)),
        batch_max: p
            .get_or("batch", defaults.batch_max, "a micro-batch size")
            .map_err(|e| e.to_string())?,
        threads: p
            .get_parsed("threads", "a thread count")
            .map_err(|e| e.to_string())?,
        budget,
        summary_every: p
            .get_or("summary-every", 0u64, "a request count")
            .map_err(|e| e.to_string())?,
    };

    let mut server = Server::new(&eval, cfg).map_err(|e| e.to_string())?;
    match (p.has("stdio"), p.get("listen")) {
        (true, Some(_)) => return Err("--stdio conflicts with --listen".into()),
        (true, None) => {
            let stdin = std::io::stdin();
            let stdout = std::io::stdout();
            server
                .run(stdin.lock(), stdout.lock(), std::io::stderr())
                .map_err(|e| format!("serve transport error: {e}"))?;
        }
        (false, Some(addr)) => serve_tcp(&mut server, addr)?,
        (false, None) => {
            return Err(
                "serve needs a transport: --stdio (newline-delimited JSON on stdin/stdout) \
                 or --listen ADDR (TCP; needs the `net` build feature)"
                    .into(),
            )
        }
    }
    Ok(CmdOutput {
        text: String::new(),
        failed_queries: server.stats().faulted as usize,
    })
}

/// Serves the stdio protocol over TCP, one connection at a time; the
/// server (and its counters) persists across connections until a client
/// sends `shutdown`.
#[cfg(feature = "net")]
fn serve_tcp(server: &mut Server<'_>, addr: &str) -> Result<(), String> {
    let listener =
        std::net::TcpListener::bind(addr).map_err(|e| format!("--listen {addr}: {e}"))?;
    let local = listener
        .local_addr()
        .map_err(|e| format!("--listen {addr}: {e}"))?;
    eprintln!("# karl serve listening on {local}");
    for stream in listener.incoming() {
        let stream = stream.map_err(|e| format!("accept on {local}: {e}"))?;
        let reader = std::io::BufReader::new(
            stream
                .try_clone()
                .map_err(|e| format!("clone connection: {e}"))?,
        );
        server
            .run(reader, stream, std::io::stderr())
            .map_err(|e| format!("serve transport error: {e}"))?;
        if server.shutdown_requested() {
            break;
        }
    }
    Ok(())
}

#[cfg(not(feature = "net"))]
fn serve_tcp(_server: &mut Server<'_>, _addr: &str) -> Result<(), String> {
    Err("--listen requires building karl-cli with the `net` feature (--stdio is always available)"
        .into())
}

/// `karl coreset build --data FILE --eps E [--gamma G] [--kernel rbf|laplacian] [--leaf CAP]`
///
/// Builds the certified coreset the `batch --coreset` cascade uses and
/// reports its compression, the analytic certificate `eps_c`, the
/// discrepancy actually measured against brute force on held-out probes
/// (always ≤ the certified margin), and the frozen tier's memory
/// footprint. Construction is deterministic, so `batch --coreset EPS`
/// rebuilds the identical coreset inline — this verb exists to inspect
/// the trade-off before committing a workload to it.
pub fn coreset(p: &Parsed) -> CmdResult {
    match p.action.as_deref() {
        Some("build") => {}
        Some(other) => return Err(format!("unknown coreset action {other:?} (build)")),
        None => return Err("usage: karl coreset build --data FILE --eps E".into()),
    }
    p.expect_flags(&["data", "eps", "gamma", "kernel", "leaf"])
        .map_err(|e| e.to_string())?;
    let data =
        load_csv(p.required("data").map_err(|e| e.to_string())?).map_err(|e| e.to_string())?;
    let eps: f64 = p
        .get_parsed("eps", "a number")
        .map_err(|e| e.to_string())?
        .ok_or("missing required flag --eps")?;
    let gamma = gamma_for(p, &data)?;
    let kernel = match p.get("kernel") {
        None | Some("rbf") | Some("gaussian") => Kernel::gaussian(gamma),
        Some("laplacian") => Kernel::laplacian(gamma),
        Some(other) => {
            return Err(format!(
                "unknown kernel {other:?} (rbf|laplacian — polynomial/sigmoid have no uniform Lipschitz bound, so no certificate)"
            ))
        }
    };
    let leaf: usize = p
        .get_or("leaf", 80, "a leaf capacity")
        .map_err(|e| e.to_string())?;
    let n = data.len();
    let weights = vec![1.0 / n as f64; n];
    let start = Instant::now();
    let cs = Coreset::try_build(&data, &weights, kernel, eps).map_err(|e| e.to_string())?;
    let elapsed = start.elapsed();
    let eval = AnyEvaluator::build(IndexKind::Kd, &data, &weights, kernel, BoundMethod::Karl, leaf)
        .with_coreset_tier(&cs, leaf)
        .map_err(|e| e.to_string())?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "coreset: {} of {} points ({:.1}x compression) built in {elapsed:.2?}",
        cs.len(),
        n,
        n as f64 / cs.len() as f64
    );
    let _ = writeln!(out, "eps_c (certified, per unit |w|): {:.6e}", cs.eps_c());
    let _ = writeln!(
        out,
        "margin (eps_c x sum |w|):        {:.6e}",
        cs.margin()
    );
    let _ = writeln!(
        out,
        "measured over {} probes:         {:.6e} (must be <= margin)",
        cs.probe_count(),
        cs.eps_measured()
    );
    let _ = writeln!(
        out,
        "frozen tier footprint:           {} bytes (leaf {leaf})",
        eval.tier_footprint_bytes().unwrap_or(0)
    );
    Ok(out)
}

/// `karl index build DATA OUT …` / `karl index info PATH`
///
/// `build` constructs the evaluator over DATA (weights `1/n`, Gaussian
/// kernel) and saves it in the versioned zero-copy format of
/// `karl_tree::persist`; family and leaf capacity default to the
/// storage-aware cost model for `--profile` (memory is calibrated on
/// this machine, disk uses canned cold-storage constants), and explicit
/// `--family` / `--leaf` override it. `info` prints the header, the
/// decoded build metadata, and the per-section byte breakdown (the
/// checksum is verified as a side effect).
pub fn index(p: &Parsed) -> CmdResult {
    match p.action.as_deref() {
        Some("build") => index_build(p),
        Some("info") => index_info(p),
        Some(other) => Err(format!("unknown index action {other:?} (build|info)")),
        None => Err("usage: karl index build DATA OUT | karl index info PATH".into()),
    }
}

fn index_build(p: &Parsed) -> CmdResult {
    p.expect_flags(&["profile", "family", "leaf", "gamma", "method"])
        .map_err(|e| e.to_string())?;
    let [data_path, out_path] = p.rest.as_slice() else {
        return Err("usage: karl index build DATA OUT [--profile memory|disk] …".into());
    };
    let data = load_csv(data_path).map_err(|e| e.to_string())?;
    let method = parse_method(p)?;
    let gamma = gamma_for(p, &data)?;
    let profile = match p.get("profile") {
        None => StorageProfile::Memory,
        Some(s) => StorageProfile::parse(s)
            .ok_or_else(|| format!("unknown profile {s:?} (memory|disk)"))?,
    };
    let calibration = StorageCalibration::for_profile(profile);
    let plan = plan_for_storage(data.len(), data.dims(), profile, calibration);
    let family = match p.get("family") {
        None => plan.kind,
        Some("kd") => IndexKind::Kd,
        Some("ball") => IndexKind::Ball,
        Some(other) => return Err(format!("unknown family {other:?} (kd|ball)")),
    };
    let leaf: usize = p
        .get_parsed("leaf", "a leaf capacity")
        .map_err(|e| e.to_string())?
        .unwrap_or(plan.leaf_capacity);
    if leaf == 0 || leaf > u32::MAX as usize {
        return Err("--leaf must be between 1 and 2^32-1".into());
    }
    let n = data.len();
    let weights = vec![1.0 / n as f64; n];
    let t0 = Instant::now();
    let eval = AnyEvaluator::build(family, &data, &weights, Kernel::gaussian(gamma), method, leaf);
    let build_time = t0.elapsed();
    let meta = IndexMeta {
        kernel: Kernel::gaussian(gamma),
        method,
        leaf_capacity: leaf as u32,
        profile,
        calibration,
    };
    let t1 = Instant::now();
    let bytes = eval
        .write_index_file(Path::new(out_path), &meta)
        .map_err(|e| e.to_string())?;
    let write_time = t1.elapsed();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "indexed {n} points x {} dims into {out_path} ({bytes} bytes)",
        data.dims()
    );
    let _ = writeln!(
        out,
        "family {} leaf {leaf}{} (profile {profile}: node {:.0} ns, byte {:.4} ns)",
        match family {
            IndexKind::Kd => "kd",
            IndexKind::Ball => "ball",
        },
        if p.has("family") || p.has("leaf") {
            ""
        } else {
            " [auto-tuned]"
        },
        calibration.node_visit_ns,
        calibration.byte_read_ns
    );
    let _ = writeln!(
        out,
        "gamma {gamma:.4}, {method:?}; built in {build_time:.2?}, written in {write_time:.2?}"
    );
    Ok(out)
}

fn index_info(p: &Parsed) -> CmdResult {
    p.expect_flags(&[]).map_err(|e| e.to_string())?;
    let [path] = p.rest.as_slice() else {
        return Err("usage: karl index info PATH".into());
    };
    let info = karl_tree::index_file_info(Path::new(path)).map_err(|e| e.to_string())?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "format v{}  family {}  dims {}  {} bytes  checksum {:#018x} (verified)",
        info.version, info.family, info.dims, info.file_len, info.checksum
    );
    let _ = writeln!(
        out,
        "simd backend {} (KARL_SIMD to override; answers are backend-independent)",
        backend_name()
    );
    match IndexMeta::decode(&info.app_meta) {
        Ok(m) => {
            let _ = writeln!(
                out,
                "built with {:?} kernel, {:?}, leaf {}; tuned for {} (node {:.0} ns, byte {:.4} ns)",
                m.kernel,
                m.method,
                m.leaf_capacity,
                m.profile,
                m.calibration.node_visit_ns,
                m.calibration.byte_read_ns
            );
        }
        Err(_) => {
            let _ = writeln!(
                out,
                "metadata: {} bytes (not a karl-cli metadata record)",
                info.app_meta.len()
            );
        }
    }
    let _ = writeln!(out, "\nsection               elem       offset        bytes        count");
    let mut total = 0u64;
    for s in &info.sections {
        total += s.bytes;
        let _ = writeln!(
            out,
            "{:<20}  {:<4} {:>12} {:>12} {:>12}",
            s.label, s.elem, s.offset, s.bytes, s.count
        );
    }
    let _ = writeln!(
        out,
        "{:<20}  {:<4} {:>12} {:>12}",
        "total payload", "", "", total
    );
    Ok(out)
}

fn load_training(p: &Parsed) -> Result<(PointSet, Option<Vec<f64>>), String> {
    let path = p.required("data").map_err(|e| e.to_string())?;
    match p.get("format") {
        None | Some("csv-last") => {
            let (x, y) = load_labeled_csv(path, LabelColumn::Last).map_err(|e| e.to_string())?;
            Ok((x, Some(y)))
        }
        Some("csv-first") => {
            let (x, y) = load_labeled_csv(path, LabelColumn::First).map_err(|e| e.to_string())?;
            Ok((x, Some(y)))
        }
        Some("csv") => Ok((load_csv(path).map_err(|e| e.to_string())?, None)),
        Some("libsvm") => {
            let (x, y) = load_libsvm(path).map_err(|e| e.to_string())?;
            Ok((x, Some(y)))
        }
        Some(other) => Err(format!(
            "unknown format {other:?} (csv|csv-first|csv-last|libsvm)"
        )),
    }
}

fn kernel_from_flags(p: &Parsed, points: &PointSet) -> Result<Kernel, String> {
    let gamma = match p.get("gamma") {
        None | Some("auto") => 1.0 / points.dims() as f64, // LIBSVM default
        Some(v) => v
            .parse()
            .map_err(|_| format!("--gamma {v:?}: expected a number or 'auto'"))?,
    };
    let coef0: f64 = p
        .get_or("coef0", 0.0, "a number")
        .map_err(|e| e.to_string())?;
    let degree: u32 = p
        .get_or("degree", 3, "an integer")
        .map_err(|e| e.to_string())?;
    match p.get("kernel") {
        None | Some("rbf") | Some("gaussian") => Ok(Kernel::gaussian(gamma)),
        Some("poly") | Some("polynomial") => Ok(Kernel::polynomial(gamma, coef0, degree)),
        Some("sigmoid") => Ok(Kernel::sigmoid(gamma, coef0)),
        Some("laplacian") => Ok(Kernel::laplacian(gamma)),
        Some(other) => Err(format!(
            "unknown kernel {other:?} (rbf|poly|sigmoid|laplacian)"
        )),
    }
}

/// `karl svm-train --data FILE --svm csvc|oneclass --out MODEL …`
pub fn svm_train(p: &Parsed) -> CmdResult {
    p.expect_flags(&[
        "data", "svm", "out", "format", "c", "nu", "kernel", "gamma", "degree", "coef0",
    ])
    .map_err(|e| e.to_string())?;
    let out_path = p.required("out").map_err(|e| e.to_string())?;
    let svm = p.required("svm").map_err(|e| e.to_string())?.to_string();
    let (points, labels) = load_training(p)?;
    let kernel = kernel_from_flags(p, &points)?;
    let start = Instant::now();
    let (model, ty) = match svm.as_str() {
        "csvc" => {
            let y = labels.ok_or("csvc training needs labeled data")?;
            let c: f64 = p.get_or("c", 1.0, "a number").map_err(|e| e.to_string())?;
            (CSvc::new(c, kernel).train(&points, &y), SvmType::CSvc)
        }
        "oneclass" => {
            let nu: f64 = p.get_or("nu", 0.1, "a number").map_err(|e| e.to_string())?;
            (
                OneClassSvm::new(nu, kernel).train(&points),
                SvmType::OneClass,
            )
        }
        other => return Err(format!("unknown --svm {other:?} (csvc|oneclass)")),
    };
    let elapsed = start.elapsed();
    save_model(out_path, &model, ty).map_err(|e| e.to_string())?;
    Ok(format!(
        "trained {} on {} points in {elapsed:.2?}: {} support vectors, rho {:.6}; saved to {out_path}\n",
        if ty == SvmType::CSvc { "c_svc" } else { "one_class" },
        points.len(),
        model.num_support(),
        model.threshold()
    ))
}

/// `karl svm-predict --model MODEL --queries FILE …`
pub fn svm_predict(p: &Parsed) -> CmdResult {
    p.expect_flags(&["model", "queries", "method", "leaf"])
        .map_err(|e| e.to_string())?;
    let queries =
        load_csv(p.required("queries").map_err(|e| e.to_string())?).map_err(|e| e.to_string())?;
    let (model, _) = load_model(
        p.required("model").map_err(|e| e.to_string())?,
        Some(queries.dims()),
    )
    .map_err(|e| e.to_string())?;
    let tau = model.threshold();
    let leaf: usize = p
        .get_or("leaf", 40, "a leaf capacity")
        .map_err(|e| e.to_string())?;

    let mut out = String::with_capacity(queries.len() * 4);
    let start = Instant::now();
    if p.get("method") == Some("scan") {
        let scan = Scan::new(
            model.support().clone(),
            model.weights().to_vec(),
            *model.kernel(),
        );
        for q in queries.iter() {
            out.push_str(if scan.tkaq(q, tau) { "+1\n" } else { "-1\n" });
        }
    } else {
        let method = parse_method(p)?;
        let eval = AnyEvaluator::build(
            IndexKind::Kd,
            model.support(),
            model.weights(),
            *model.kernel(),
            method,
            leaf,
        );
        for q in queries.iter() {
            out.push_str(if eval.tkaq(q, tau) { "+1\n" } else { "-1\n" });
        }
    }
    let elapsed = start.elapsed();
    let _ = writeln!(
        out,
        "# throughput {:.0} queries/s ({} support vectors)",
        queries.len() as f64 / elapsed.as_secs_f64(),
        model.num_support()
    );
    Ok(out)
}

/// `karl tune --data FILE --queries FILE (--tau T | --eps E) …`
pub fn tune(p: &Parsed) -> CmdResult {
    p.expect_flags(&["data", "queries", "tau", "eps", "method", "gamma"])
        .map_err(|e| e.to_string())?;
    let data =
        load_csv(p.required("data").map_err(|e| e.to_string())?).map_err(|e| e.to_string())?;
    let queries =
        load_csv(p.required("queries").map_err(|e| e.to_string())?).map_err(|e| e.to_string())?;
    let method = parse_method(p)?;
    let gamma = gamma_for(p, &data)?;
    let tau: Option<f64> = p.get_parsed("tau", "a number").map_err(|e| e.to_string())?;
    let eps: Option<f64> = p.get_parsed("eps", "a number").map_err(|e| e.to_string())?;
    let workload = match (tau, eps) {
        (Some(tau), None) => Query::Tkaq { tau },
        (None, Some(eps)) => Query::Ekaq { eps },
        _ => return Err("exactly one of --tau or --eps is required".into()),
    };
    let n = data.len();
    let weights = vec![1.0 / n as f64; n];
    let outcome = OfflineTuner::default().tune(
        &data,
        &weights,
        Kernel::gaussian(gamma),
        method,
        &queries,
        workload,
    );
    let mut out = String::from("kind  leaf  queries/s\n");
    for c in &outcome.report {
        let _ = writeln!(
            out,
            "{:<5} {:>4}  {:>9.0}",
            match c.kind {
                IndexKind::Kd => "kd",
                IndexKind::Ball => "ball",
            },
            c.leaf_capacity,
            c.throughput
        );
    }
    let best = outcome.report[0];
    let _ = writeln!(
        out,
        "recommended: {:?} with leaf capacity {} ({:.0} queries/s)",
        best.kind, best.leaf_capacity, best.throughput
    );
    Ok(out)
}
