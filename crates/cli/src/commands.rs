//! Subcommand implementations.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use karl_core::{
    AnyEvaluator, BoundMethod, Budget, Coreset, Engine, IndexKind, Kernel, OfflineTuner, Query,
    QueryBatch, Scan,
};
use karl_data::{
    by_name, load_csv, load_labeled_csv, load_libsvm, registry, save_csv, LabelColumn,
};
use karl_geom::PointSet;
use karl_kde::scotts_gamma;
use karl_svm::{load_model, save_model, CSvc, OneClassSvm, SvmType};

use crate::args::Parsed;
use crate::CmdOutput;

type CmdResult = Result<String, String>;

/// `karl datasets`
pub fn datasets(p: &Parsed) -> CmdResult {
    p.expect_flags(&[]).map_err(|e| e.to_string())?;
    let mut out = String::from("name        n_raw    dims  model\n");
    for spec in registry() {
        let model = match spec.model {
            karl_data::ModelKind::KernelDensity => "kernel-density (Type I)",
            karl_data::ModelKind::OneClass => "1-class SVM (Type II)",
            karl_data::ModelKind::TwoClass => "2-class SVM (Type III)",
        };
        let _ = writeln!(
            out,
            "{:<10} {:>8} {:>6}  {model}",
            spec.name, spec.n_raw, spec.dims
        );
    }
    Ok(out)
}

/// `karl generate --name N --n COUNT --out FILE [--labeled]`
pub fn generate(p: &Parsed) -> CmdResult {
    p.expect_flags(&["name", "n", "out", "labeled"])
        .map_err(|e| e.to_string())?;
    let name = p.required("name").map_err(|e| e.to_string())?;
    let n: usize = p
        .get_or("n", 10_000, "a point count")
        .map_err(|e| e.to_string())?;
    let out_path = p.required("out").map_err(|e| e.to_string())?;
    let spec =
        by_name(name).ok_or_else(|| format!("unknown dataset {name:?} (try `karl datasets`)"))?;
    let ds = spec.generate_n(n);
    let labels = if p.has("labeled") {
        Some(
            ds.labels
                .clone()
                .ok_or_else(|| format!("dataset {name} has no labels"))?,
        )
    } else {
        None
    };
    save_csv(out_path, &ds.points, labels.as_deref()).map_err(|e| e.to_string())?;
    Ok(format!(
        "wrote {} points x {} dims to {out_path}{}\n",
        ds.points.len(),
        ds.points.dims(),
        if labels.is_some() {
            " (label last)"
        } else {
            ""
        }
    ))
}

fn parse_method(p: &Parsed) -> Result<BoundMethod, String> {
    match p.get("method") {
        None | Some("karl") => Ok(BoundMethod::Karl),
        Some("sota") => Ok(BoundMethod::Sota),
        Some(other) => Err(format!("unknown method {other:?} (karl|sota)")),
    }
}

fn gamma_for(p: &Parsed, points: &PointSet) -> Result<f64, String> {
    match p.get("gamma") {
        None | Some("auto") => Ok(scotts_gamma(points)),
        Some(v) => v
            .parse::<f64>()
            .map_err(|_| format!("--gamma {v:?}: expected a number or 'auto'")),
    }
}

/// `karl kde --data FILE --queries FILE (--tau T | --eps E) …`
pub fn kde(p: &Parsed) -> CmdResult {
    p.expect_flags(&["data", "queries", "tau", "eps", "method", "leaf", "gamma"])
        .map_err(|e| e.to_string())?;
    let data =
        load_csv(p.required("data").map_err(|e| e.to_string())?).map_err(|e| e.to_string())?;
    let queries =
        load_csv(p.required("queries").map_err(|e| e.to_string())?).map_err(|e| e.to_string())?;
    if queries.dims() != data.dims() {
        return Err(format!(
            "query dims {} != data dims {}",
            queries.dims(),
            data.dims()
        ));
    }
    let method = parse_method(p)?;
    let leaf: usize = p
        .get_or("leaf", 80, "a leaf capacity")
        .map_err(|e| e.to_string())?;
    let gamma = gamma_for(p, &data)?;
    let tau: Option<f64> = p.get_parsed("tau", "a number").map_err(|e| e.to_string())?;
    let eps: Option<f64> = p.get_parsed("eps", "a number").map_err(|e| e.to_string())?;

    let n = data.len();
    let weights = vec![1.0 / n as f64; n];
    let eval = AnyEvaluator::build(
        IndexKind::Kd,
        &data,
        &weights,
        Kernel::gaussian(gamma),
        method,
        leaf,
    );
    let mut out = String::with_capacity(queries.len() * 8);
    let start = Instant::now();
    match (tau, eps) {
        (Some(tau), None) => {
            for q in queries.iter() {
                out.push_str(if eval.tkaq(q, tau) { "1\n" } else { "0\n" });
            }
        }
        (None, Some(eps)) => {
            for q in queries.iter() {
                let _ = writeln!(out, "{}", eval.ekaq(q, eps));
            }
        }
        _ => return Err("exactly one of --tau or --eps is required".into()),
    }
    let elapsed = start.elapsed();
    let _ = writeln!(
        out,
        "# throughput {:.0} queries/s over {} points (gamma {:.4}, {:?}, leaf {leaf})",
        queries.len() as f64 / elapsed.as_secs_f64(),
        n,
        gamma,
        method
    );
    Ok(out)
}

/// `karl batch --data FILE --queries FILE (--tau T | --eps E | --tol W) …`
///
/// Same queries and answers as `kde`, executed through the parallel
/// [`QueryBatch`] engine. Worker count: `--threads` flag, else the
/// `KARL_THREADS` environment variable, else `available_parallelism`.
/// `--engine frozen|pointer` selects the evaluation index (default
/// `frozen` — the SoA index with fused bound kernels); both engines and
/// every thread count produce bitwise-identical answers.
///
/// `--budget-nodes` / `--budget-leaf` / `--deadline-ms` bound each
/// query's refinement; a query that trips a budget answers from the
/// certified interval it reached (TKAQ prints `?` when the interval
/// still straddles τ). Faults in individual queries are contained: the
/// poisoned query gets an `# error` line, every other query keeps its
/// exact bits, and [`CmdOutput::failed_queries`] counts the casualties.
pub fn batch(p: &Parsed) -> Result<CmdOutput, String> {
    p.expect_flags(&[
        "data",
        "queries",
        "tau",
        "eps",
        "tol",
        "method",
        "leaf",
        "gamma",
        "threads",
        "engine",
        "envelope-cache",
        "stats",
        "budget-nodes",
        "budget-leaf",
        "deadline-ms",
        "dual",
        "coreset",
    ])
    .map_err(|e| e.to_string())?;
    let data =
        load_csv(p.required("data").map_err(|e| e.to_string())?).map_err(|e| e.to_string())?;
    let queries =
        load_csv(p.required("queries").map_err(|e| e.to_string())?).map_err(|e| e.to_string())?;
    if queries.dims() != data.dims() {
        return Err(format!(
            "query dims {} != data dims {}",
            queries.dims(),
            data.dims()
        ));
    }
    let method = parse_method(p)?;
    let leaf: usize = p
        .get_or("leaf", 80, "a leaf capacity")
        .map_err(|e| e.to_string())?;
    let gamma = gamma_for(p, &data)?;
    let tau: Option<f64> = p.get_parsed("tau", "a number").map_err(|e| e.to_string())?;
    let eps: Option<f64> = p.get_parsed("eps", "a number").map_err(|e| e.to_string())?;
    let tol: Option<f64> = p.get_parsed("tol", "a number").map_err(|e| e.to_string())?;
    let query = match (tau, eps, tol) {
        (Some(tau), None, None) => Query::Tkaq { tau },
        (None, Some(eps), None) => {
            if eps <= 0.0 {
                return Err("--eps must be positive".into());
            }
            Query::Ekaq { eps }
        }
        (None, None, Some(tol)) => {
            if tol <= 0.0 {
                return Err("--tol must be positive".into());
            }
            Query::Within { tol }
        }
        _ => return Err("exactly one of --tau, --eps or --tol is required".into()),
    };
    let threads: Option<usize> = p
        .get_parsed("threads", "a thread count")
        .map_err(|e| e.to_string())?;
    let engine = match p.get("engine") {
        None | Some("frozen") => Engine::Frozen,
        Some("pointer") => Engine::Pointer,
        Some(other) => return Err(format!("unknown engine {other:?} (frozen|pointer)")),
    };
    let env_cache = match p.get("envelope-cache") {
        Some("on") => true,
        None | Some("off") => false,
        Some(other) => return Err(format!("unknown envelope-cache {other:?} (on|off)")),
    };
    let want_stats = p.has("stats");
    #[cfg(not(feature = "stats"))]
    if want_stats {
        return Err("--stats requires building karl-cli with the `stats` feature".into());
    }
    let budget_nodes: Option<u64> = p
        .get_parsed("budget-nodes", "a node count")
        .map_err(|e| e.to_string())?;
    let budget_leaf: Option<u64> = p
        .get_parsed("budget-leaf", "a leaf-point count")
        .map_err(|e| e.to_string())?;
    let deadline_ms: Option<u64> = p
        .get_parsed("deadline-ms", "milliseconds")
        .map_err(|e| e.to_string())?;
    let mut budget = Budget::unlimited();
    if let Some(nodes) = budget_nodes {
        if nodes == 0 {
            return Err("--budget-nodes must be at least 1".into());
        }
        budget = budget.max_nodes(nodes);
    }
    if let Some(points) = budget_leaf {
        if points == 0 {
            return Err("--budget-leaf must be at least 1".into());
        }
        budget = budget.max_leaf_points(points);
    }
    if let Some(ms) = deadline_ms {
        budget = budget.deadline(Duration::from_millis(ms));
    }

    let coreset_eps: Option<f64> = p
        .get_parsed("coreset", "a target eps")
        .map_err(|e| e.to_string())?;

    let n = data.len();
    let weights = vec![1.0 / n as f64; n];
    let mut eval = AnyEvaluator::build(
        IndexKind::Kd,
        &data,
        &weights,
        Kernel::gaussian(gamma),
        method,
        leaf,
    );
    let mut spec = QueryBatch::new(&queries, query)
        .engine(engine)
        .envelope_cache(env_cache)
        .budget(budget);
    let coreset = match coreset_eps {
        Some(ceps) => {
            if ceps <= 0.0 {
                return Err("--coreset must be positive".into());
            }
            let cs = Coreset::try_build(&data, &weights, Kernel::gaussian(gamma), ceps)
                .map_err(|e| e.to_string())?;
            eval = eval.with_coreset_tier(&cs, leaf).map_err(|e| e.to_string())?;
            spec = spec.coreset(true);
            Some(cs)
        }
        None => None,
    };
    if let Some(t) = threads {
        if t == 0 {
            return Err("--threads must be at least 1".into());
        }
        spec = spec.threads(t);
    }
    let dual = p.has("dual");
    let report = if dual {
        spec.try_run_dual_any(&eval)
    } else {
        spec.try_run_any(&eval)
    }
    .map_err(|e| e.to_string())?;

    let mut out = String::with_capacity(queries.len() * 8);
    let mut failed = 0usize;
    for (i, result) in report.results().iter().enumerate() {
        match result {
            Ok(o) => match query {
                Query::Tkaq { .. } if o.is_truncated() => out.push_str("?\n"),
                Query::Tkaq { .. } => {
                    out.push_str(if report.answer(o) == 1.0 { "1\n" } else { "0\n" });
                }
                Query::Ekaq { .. } | Query::Within { .. } => {
                    let _ = writeln!(out, "{}", report.answer(o));
                }
            },
            Err(e) => {
                failed += 1;
                let _ = writeln!(out, "# error query {i}: {e}");
            }
        }
    }
    let _ = writeln!(
        out,
        "# throughput {:.0} queries/s over {} points (gamma {:.4}, {:?}, leaf {leaf}, threads {}, engine {engine:?}, envelope-cache {})",
        report.throughput(),
        n,
        gamma,
        method,
        report.threads(),
        if env_cache { "on" } else { "off" }
    );
    if let Some(cs) = &coreset {
        let _ = writeln!(
            out,
            "# coreset tier {} of {} points (eps_c {:.3e}, margin {:.3e}, footprint {} bytes): decided {} fell_through {}",
            cs.len(),
            n,
            cs.eps_c(),
            cs.margin(),
            eval.tier_footprint_bytes().unwrap_or(0),
            report.coreset_decided(),
            report.coreset_fallthrough()
        );
    }
    let truncated = report.truncated_count();
    if truncated > 0 {
        let _ = writeln!(
            out,
            "# truncated {truncated} of {} queries answered from their certified interval at budget exhaustion",
            report.len()
        );
    }
    if failed > 0 {
        let _ = writeln!(out, "# failed {failed} of {} queries", report.len());
    }
    #[cfg(feature = "stats")]
    if want_stats {
        let s = report.stats();
        let _ = writeln!(
            out,
            "# stats nodes_refined {} envelopes_built {} cache_hits {} cache_misses {} curve_value_calls {} dual_pairs_scored {} dual_wholesale_decided {} coreset_decided {} coreset_fallthrough {}",
            s.nodes_refined,
            s.envelopes_built,
            s.cache_hits,
            s.cache_misses,
            s.curve_value_calls,
            s.dual_pairs_scored,
            s.dual_wholesale_decided,
            s.coreset_decided,
            s.coreset_fallthrough
        );
    }
    Ok(CmdOutput {
        text: out,
        failed_queries: failed,
    })
}

/// `karl coreset build --data FILE --eps E [--gamma G] [--kernel rbf|laplacian] [--leaf CAP]`
///
/// Builds the certified coreset the `batch --coreset` cascade uses and
/// reports its compression, the analytic certificate `eps_c`, the
/// discrepancy actually measured against brute force on held-out probes
/// (always ≤ the certified margin), and the frozen tier's memory
/// footprint. Construction is deterministic, so `batch --coreset EPS`
/// rebuilds the identical coreset inline — this verb exists to inspect
/// the trade-off before committing a workload to it.
pub fn coreset(p: &Parsed) -> CmdResult {
    match p.action.as_deref() {
        Some("build") => {}
        Some(other) => return Err(format!("unknown coreset action {other:?} (build)")),
        None => return Err("usage: karl coreset build --data FILE --eps E".into()),
    }
    p.expect_flags(&["data", "eps", "gamma", "kernel", "leaf"])
        .map_err(|e| e.to_string())?;
    let data =
        load_csv(p.required("data").map_err(|e| e.to_string())?).map_err(|e| e.to_string())?;
    let eps: f64 = p
        .get_parsed("eps", "a number")
        .map_err(|e| e.to_string())?
        .ok_or("missing required flag --eps")?;
    let gamma = gamma_for(p, &data)?;
    let kernel = match p.get("kernel") {
        None | Some("rbf") | Some("gaussian") => Kernel::gaussian(gamma),
        Some("laplacian") => Kernel::laplacian(gamma),
        Some(other) => {
            return Err(format!(
                "unknown kernel {other:?} (rbf|laplacian — polynomial/sigmoid have no uniform Lipschitz bound, so no certificate)"
            ))
        }
    };
    let leaf: usize = p
        .get_or("leaf", 80, "a leaf capacity")
        .map_err(|e| e.to_string())?;
    let n = data.len();
    let weights = vec![1.0 / n as f64; n];
    let start = Instant::now();
    let cs = Coreset::try_build(&data, &weights, kernel, eps).map_err(|e| e.to_string())?;
    let elapsed = start.elapsed();
    let eval = AnyEvaluator::build(IndexKind::Kd, &data, &weights, kernel, BoundMethod::Karl, leaf)
        .with_coreset_tier(&cs, leaf)
        .map_err(|e| e.to_string())?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "coreset: {} of {} points ({:.1}x compression) built in {elapsed:.2?}",
        cs.len(),
        n,
        n as f64 / cs.len() as f64
    );
    let _ = writeln!(out, "eps_c (certified, per unit |w|): {:.6e}", cs.eps_c());
    let _ = writeln!(
        out,
        "margin (eps_c x sum |w|):        {:.6e}",
        cs.margin()
    );
    let _ = writeln!(
        out,
        "measured over {} probes:         {:.6e} (must be <= margin)",
        cs.probe_count(),
        cs.eps_measured()
    );
    let _ = writeln!(
        out,
        "frozen tier footprint:           {} bytes (leaf {leaf})",
        eval.tier_footprint_bytes().unwrap_or(0)
    );
    Ok(out)
}

fn load_training(p: &Parsed) -> Result<(PointSet, Option<Vec<f64>>), String> {
    let path = p.required("data").map_err(|e| e.to_string())?;
    match p.get("format") {
        None | Some("csv-last") => {
            let (x, y) = load_labeled_csv(path, LabelColumn::Last).map_err(|e| e.to_string())?;
            Ok((x, Some(y)))
        }
        Some("csv-first") => {
            let (x, y) = load_labeled_csv(path, LabelColumn::First).map_err(|e| e.to_string())?;
            Ok((x, Some(y)))
        }
        Some("csv") => Ok((load_csv(path).map_err(|e| e.to_string())?, None)),
        Some("libsvm") => {
            let (x, y) = load_libsvm(path).map_err(|e| e.to_string())?;
            Ok((x, Some(y)))
        }
        Some(other) => Err(format!(
            "unknown format {other:?} (csv|csv-first|csv-last|libsvm)"
        )),
    }
}

fn kernel_from_flags(p: &Parsed, points: &PointSet) -> Result<Kernel, String> {
    let gamma = match p.get("gamma") {
        None | Some("auto") => 1.0 / points.dims() as f64, // LIBSVM default
        Some(v) => v
            .parse()
            .map_err(|_| format!("--gamma {v:?}: expected a number or 'auto'"))?,
    };
    let coef0: f64 = p
        .get_or("coef0", 0.0, "a number")
        .map_err(|e| e.to_string())?;
    let degree: u32 = p
        .get_or("degree", 3, "an integer")
        .map_err(|e| e.to_string())?;
    match p.get("kernel") {
        None | Some("rbf") | Some("gaussian") => Ok(Kernel::gaussian(gamma)),
        Some("poly") | Some("polynomial") => Ok(Kernel::polynomial(gamma, coef0, degree)),
        Some("sigmoid") => Ok(Kernel::sigmoid(gamma, coef0)),
        Some("laplacian") => Ok(Kernel::laplacian(gamma)),
        Some(other) => Err(format!(
            "unknown kernel {other:?} (rbf|poly|sigmoid|laplacian)"
        )),
    }
}

/// `karl svm-train --data FILE --svm csvc|oneclass --out MODEL …`
pub fn svm_train(p: &Parsed) -> CmdResult {
    p.expect_flags(&[
        "data", "svm", "out", "format", "c", "nu", "kernel", "gamma", "degree", "coef0",
    ])
    .map_err(|e| e.to_string())?;
    let out_path = p.required("out").map_err(|e| e.to_string())?;
    let svm = p.required("svm").map_err(|e| e.to_string())?.to_string();
    let (points, labels) = load_training(p)?;
    let kernel = kernel_from_flags(p, &points)?;
    let start = Instant::now();
    let (model, ty) = match svm.as_str() {
        "csvc" => {
            let y = labels.ok_or("csvc training needs labeled data")?;
            let c: f64 = p.get_or("c", 1.0, "a number").map_err(|e| e.to_string())?;
            (CSvc::new(c, kernel).train(&points, &y), SvmType::CSvc)
        }
        "oneclass" => {
            let nu: f64 = p.get_or("nu", 0.1, "a number").map_err(|e| e.to_string())?;
            (
                OneClassSvm::new(nu, kernel).train(&points),
                SvmType::OneClass,
            )
        }
        other => return Err(format!("unknown --svm {other:?} (csvc|oneclass)")),
    };
    let elapsed = start.elapsed();
    save_model(out_path, &model, ty).map_err(|e| e.to_string())?;
    Ok(format!(
        "trained {} on {} points in {elapsed:.2?}: {} support vectors, rho {:.6}; saved to {out_path}\n",
        if ty == SvmType::CSvc { "c_svc" } else { "one_class" },
        points.len(),
        model.num_support(),
        model.threshold()
    ))
}

/// `karl svm-predict --model MODEL --queries FILE …`
pub fn svm_predict(p: &Parsed) -> CmdResult {
    p.expect_flags(&["model", "queries", "method", "leaf"])
        .map_err(|e| e.to_string())?;
    let queries =
        load_csv(p.required("queries").map_err(|e| e.to_string())?).map_err(|e| e.to_string())?;
    let (model, _) = load_model(
        p.required("model").map_err(|e| e.to_string())?,
        Some(queries.dims()),
    )
    .map_err(|e| e.to_string())?;
    let tau = model.threshold();
    let leaf: usize = p
        .get_or("leaf", 40, "a leaf capacity")
        .map_err(|e| e.to_string())?;

    let mut out = String::with_capacity(queries.len() * 4);
    let start = Instant::now();
    if p.get("method") == Some("scan") {
        let scan = Scan::new(
            model.support().clone(),
            model.weights().to_vec(),
            *model.kernel(),
        );
        for q in queries.iter() {
            out.push_str(if scan.tkaq(q, tau) { "+1\n" } else { "-1\n" });
        }
    } else {
        let method = parse_method(p)?;
        let eval = AnyEvaluator::build(
            IndexKind::Kd,
            model.support(),
            model.weights(),
            *model.kernel(),
            method,
            leaf,
        );
        for q in queries.iter() {
            out.push_str(if eval.tkaq(q, tau) { "+1\n" } else { "-1\n" });
        }
    }
    let elapsed = start.elapsed();
    let _ = writeln!(
        out,
        "# throughput {:.0} queries/s ({} support vectors)",
        queries.len() as f64 / elapsed.as_secs_f64(),
        model.num_support()
    );
    Ok(out)
}

/// `karl tune --data FILE --queries FILE (--tau T | --eps E) …`
pub fn tune(p: &Parsed) -> CmdResult {
    p.expect_flags(&["data", "queries", "tau", "eps", "method", "gamma"])
        .map_err(|e| e.to_string())?;
    let data =
        load_csv(p.required("data").map_err(|e| e.to_string())?).map_err(|e| e.to_string())?;
    let queries =
        load_csv(p.required("queries").map_err(|e| e.to_string())?).map_err(|e| e.to_string())?;
    let method = parse_method(p)?;
    let gamma = gamma_for(p, &data)?;
    let tau: Option<f64> = p.get_parsed("tau", "a number").map_err(|e| e.to_string())?;
    let eps: Option<f64> = p.get_parsed("eps", "a number").map_err(|e| e.to_string())?;
    let workload = match (tau, eps) {
        (Some(tau), None) => Query::Tkaq { tau },
        (None, Some(eps)) => Query::Ekaq { eps },
        _ => return Err("exactly one of --tau or --eps is required".into()),
    };
    let n = data.len();
    let weights = vec![1.0 / n as f64; n];
    let outcome = OfflineTuner::default().tune(
        &data,
        &weights,
        Kernel::gaussian(gamma),
        method,
        &queries,
        workload,
    );
    let mut out = String::from("kind  leaf  queries/s\n");
    for c in &outcome.report {
        let _ = writeln!(
            out,
            "{:<5} {:>4}  {:>9.0}",
            match c.kind {
                IndexKind::Kd => "kd",
                IndexKind::Ball => "ball",
            },
            c.leaf_capacity,
            c.throughput
        );
    }
    let best = outcome.report[0];
    let _ = writeln!(
        out,
        "recommended: {:?} with leaf capacity {} ({:.0} queries/s)",
        best.kind, best.leaf_capacity, best.throughput
    );
    Ok(out)
}
