//! A small dependency-free flag parser for the CLI.
//!
//! Supports `--key value`, `--key=value` and bare `--flag` switches, plus
//! one leading positional subcommand, an optional positional action
//! (`karl coreset build …`), and trailing operands (`karl index build
//! DATA OUT`). Unknown flags are an error (typos should not be silently
//! ignored on a tool that runs long jobs); commands that take no action
//! or operands reject them at dispatch.

use std::collections::BTreeMap;
use std::fmt;

/// Parsed command line: a subcommand, an optional action, trailing
/// operands, and flags.
#[derive(Debug, Clone, Default)]
pub struct Parsed {
    /// The leading subcommand, if any.
    pub command: Option<String>,
    /// The second positional (e.g. `build` in `karl coreset build`), if any.
    pub action: Option<String>,
    /// Positional operands after the action (e.g. the `DATA OUT` paths of
    /// `karl index build DATA OUT`). Commands that take none reject them
    /// at dispatch.
    pub rest: Vec<String>,
    flags: BTreeMap<String, String>,
}

/// Flag-parsing errors.
#[derive(Debug, PartialEq, Eq)]
pub enum ArgError {
    /// `--key` appeared with no value while one was required downstream.
    MissingValue(String),
    /// A positional argument appeared after the subcommand.
    UnexpectedPositional(String),
    /// A flag the command does not know.
    UnknownFlag(String),
    /// A value failed to parse.
    BadValue {
        /// Flag name.
        flag: String,
        /// Raw value.
        value: String,
        /// What was expected.
        expected: &'static str,
    },
    /// A required flag is missing.
    Required(String),
}

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArgError::MissingValue(k) => write!(f, "flag --{k} needs a value"),
            ArgError::UnexpectedPositional(p) => write!(f, "unexpected argument {p:?}"),
            ArgError::UnknownFlag(k) => write!(f, "unknown flag --{k}"),
            ArgError::BadValue {
                flag,
                value,
                expected,
            } => write!(f, "--{flag} {value:?}: expected {expected}"),
            ArgError::Required(k) => write!(f, "missing required flag --{k}"),
        }
    }
}

impl std::error::Error for ArgError {}

impl Parsed {
    /// Parses raw arguments (without the program name).
    pub fn parse(args: &[String]) -> Result<Self, ArgError> {
        let mut out = Parsed::default();
        let mut i = 0;
        while i < args.len() {
            let a = &args[i];
            if let Some(stripped) = a.strip_prefix("--") {
                if let Some((k, v)) = stripped.split_once('=') {
                    out.flags.insert(k.to_string(), v.to_string());
                } else if i + 1 < args.len() && !args[i + 1].starts_with("--") {
                    out.flags.insert(stripped.to_string(), args[i + 1].clone());
                    i += 1;
                } else {
                    // bare switch
                    out.flags.insert(stripped.to_string(), String::new());
                }
            } else if out.command.is_none() {
                out.command = Some(a.clone());
            } else if out.action.is_none() {
                out.action = Some(a.clone());
            } else {
                out.rest.push(a.clone());
            }
            i += 1;
        }
        Ok(out)
    }

    /// Checks every provided flag against the allowed set.
    pub fn expect_flags(&self, allowed: &[&str]) -> Result<(), ArgError> {
        for k in self.flags.keys() {
            if !allowed.contains(&k.as_str()) {
                return Err(ArgError::UnknownFlag(k.clone()));
            }
        }
        Ok(())
    }

    /// Raw string flag.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.flags.get(key).map(String::as_str)
    }

    /// Required string flag.
    pub fn required(&self, key: &str) -> Result<&str, ArgError> {
        self.get(key).ok_or_else(|| ArgError::Required(key.into()))
    }

    /// Optional typed flag.
    pub fn get_parsed<T: std::str::FromStr>(
        &self,
        key: &str,
        expected: &'static str,
    ) -> Result<Option<T>, ArgError> {
        match self.get(key) {
            None => Ok(None),
            Some("") => Err(ArgError::MissingValue(key.into())),
            Some(v) => v.parse::<T>().map(Some).map_err(|_| ArgError::BadValue {
                flag: key.into(),
                value: v.into(),
                expected,
            }),
        }
    }

    /// Typed flag with a default.
    pub fn get_or<T: std::str::FromStr>(
        &self,
        key: &str,
        default: T,
        expected: &'static str,
    ) -> Result<T, ArgError> {
        Ok(self.get_parsed(key, expected)?.unwrap_or(default))
    }

    /// Whether a bare switch was given.
    pub fn has(&self, key: &str) -> bool {
        self.flags.contains_key(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(v: &[&str]) -> Result<Parsed, ArgError> {
        Parsed::parse(&v.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn subcommand_and_flags() {
        let p = parse(&["kde", "--data", "x.csv", "--eps=0.2", "--fast"]).unwrap();
        assert_eq!(p.command.as_deref(), Some("kde"));
        assert_eq!(p.get("data"), Some("x.csv"));
        assert_eq!(p.get("eps"), Some("0.2"));
        assert!(p.has("fast"));
    }

    #[test]
    fn typed_accessors() {
        let p = parse(&["x", "--eps", "0.25"]).unwrap();
        assert_eq!(p.get_or("eps", 0.1, "a number").unwrap(), 0.25);
        assert_eq!(p.get_or("tau", 9.0, "a number").unwrap(), 9.0);
        assert!(matches!(
            p.get_parsed::<f64>("eps", "a number"),
            Ok(Some(_))
        ));
    }

    #[test]
    fn bad_value_is_an_error() {
        let p = parse(&["x", "--eps", "lots"]).unwrap();
        assert!(matches!(
            p.get_or("eps", 0.1, "a number"),
            Err(ArgError::BadValue { .. })
        ));
    }

    #[test]
    fn unknown_flags_are_rejected() {
        let p = parse(&["x", "--whoops", "1"]).unwrap();
        assert_eq!(
            p.expect_flags(&["data"]),
            Err(ArgError::UnknownFlag("whoops".into()))
        );
    }

    #[test]
    fn action_positional_is_captured_and_operands_collected() {
        let p = parse(&["coreset", "build", "--eps", "0.1"]).unwrap();
        assert_eq!(p.command.as_deref(), Some("coreset"));
        assert_eq!(p.action.as_deref(), Some("build"));
        assert!(p.rest.is_empty());
        // Operands after the action land in `rest` in order (dispatch
        // rejects them for commands that take none).
        let p = parse(&["index", "build", "data.csv", "out.idx", "--leaf", "80"]).unwrap();
        assert_eq!(p.action.as_deref(), Some("build"));
        assert_eq!(p.rest, vec!["data.csv".to_string(), "out.idx".to_string()]);
        assert_eq!(p.get("leaf"), Some("80"));
    }

    #[test]
    fn required_flag_missing() {
        let p = parse(&["kde"]).unwrap();
        assert!(matches!(p.required("data"), Err(ArgError::Required(_))));
    }
}
