//! `karl` — the command-line face of the library.
//!
//! Exit codes: `0` on a clean run (budget-truncated answers included),
//! `1` on a command error (bad flags, unreadable files, invalid
//! parameters), `2` when the engine contained per-query failures — in
//! `batch`, healthy answers are still printed and poisoned queries get
//! `# error` lines; in `serve`, every faulted request already got its
//! own typed `error` response line.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match karl_cli::run_report(&args) {
        Ok(out) => {
            print!("{}", out.text);
            if out.failed_queries > 0 {
                eprintln!(
                    "warning: {} queries failed (see the per-query error lines above)",
                    out.failed_queries
                );
                ExitCode::from(2)
            } else {
                ExitCode::SUCCESS
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{}", karl_cli::USAGE);
            ExitCode::FAILURE
        }
    }
}
