//! `karl` — the command-line face of the library.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match karl_cli::run(&args) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{}", karl_cli::USAGE);
            ExitCode::FAILURE
        }
    }
}
