//! # karl-cli — command-line interface to the KARL library
//!
//! Subcommands:
//!
//! * `datasets` — list the paper's synthetic dataset registry.
//! * `generate` — write a registry dataset to CSV.
//! * `kde` — answer density queries (TKAQ or eKAQ) over a CSV dataset.
//! * `batch` — the same queries through the parallel batch engine.
//! * `serve` — the online query daemon: newline-delimited JSON requests
//!   with admission control, load shedding and graceful degradation.
//! * `coreset` — build a certified coreset and report its error certificate.
//! * `index` — build a persistent index file, inspect one, and serve
//!   `batch --index` queries from it with zero-copy loading.
//! * `svm-train` — train a C-SVC / one-class model, save LIBSVM format.
//! * `svm-predict` — classify queries with a saved model through KARL.
//! * `tune` — run the offline index tuner and print the grid report.
//!
//! Run `karl` with no arguments for usage. The [`run`] entry point is a
//! pure function from arguments to output, which is how the test suite
//! drives it.

pub mod args;
pub mod commands;

use args::Parsed;

/// Usage text shown on errors and `karl help`.
pub const USAGE: &str = "\
usage: karl <command> [flags]

commands:
  datasets                          list the synthetic dataset registry
  generate  --name N --n COUNT --out FILE [--labeled]
  kde       --data FILE --queries FILE (--tau T | --eps E)
            [--method karl|sota] [--leaf CAP] [--gamma G]
  batch     (--data FILE | --index FILE) --queries FILE
            (--tau T | --eps E | --tol W)
            [--method karl|sota] [--leaf CAP] [--gamma G] [--threads N]
            [--engine frozen|pointer] [--envelope-cache on|off] [--stats]
            [--budget-nodes N] [--budget-leaf P] [--deadline-ms MS]
            [--dual] [--coreset EPS] [--simd auto|avx2|scalar]
            [--stats-json FILE]
            parallel batch engine; KARL_THREADS env sets the default N;
            frozen (default) is the SoA index, bitwise equal to pointer;
            envelope-cache (default off) memoizes exact KARL envelopes,
            paying off when queries repeat — a pure perf switch, answers
            are bitwise identical either way;
            --dual (default off) freezes a second tree over the queries
            and decides whole query nodes at once from joint intervals
            (TKAQ); answers are identical to the default engine;
            --stats prints run counters (needs the `stats` build feature);
            budget flags bound each query's refinement (nodes refined,
            leaf points scanned, wall-clock deadline) — queries that hit
            a budget stop early and answer from the certified interval
            they reached (TKAQ prints '?' when still undecided); a
            contained per-query failure prints an '# error' line and the
            process exits 2 — exit codes: 0 = clean (budget-truncated
            answers included), 1 = command error (bad flags, unreadable
            files, invalid parameters), 2 = contained per-query failures;
            --stats-json FILE writes the run's counters to FILE as one
            karl-stats-v1 JSON object — the same schema `karl serve`
            reports — with no timing fields, so identical runs write
            identical bytes;
            --coreset EPS (default off) builds a certified coreset with
            per-unit-weight error EPS and answers TKAQ/eKAQ on the small
            tier first, widening by the certificate and falling through
            to the full tree only when undecided — TKAQ decisions are
            identical, eKAQ stays within the requested relative error,
            Within bypasses the tier (bitwise identical);
            --simd (default auto; KARL_SIMD env sets the default) picks
            the kernel backend — explicit AVX2 vectors or portable
            scalar code — a pure perf switch, every backend produces
            bitwise-identical answers;
            --index FILE answers from a persistent index built by
            `karl index build` instead of --data: the file is loaded
            zero-copy (kernel, method and leaf capacity come from the
            index metadata, so those flags and --gamma are rejected) and
            answers are byte-identical to a --data run with the same
            build parameters
  serve     (--stdio | --listen ADDR) (--data FILE | --index FILE)
            [--method karl|sota] [--leaf CAP] [--gamma G] [--threads N]
            [--queue CAP] [--shed AT] [--batch MAX] [--budget-nodes N]
            [--budget-leaf P] [--summary-every N] [--simd auto|avx2|scalar]
            online query daemon: one JSON request per stdin line, one
            typed response line per request on stdout (DESIGN.md §16 has
            the grammar); admits up to --queue pending requests (default
            1024; overflow gets a typed 'rejected' line), sheds load at
            --shed pending (default 3/4 of the queue) by answering from
            the certified root interval with zero refinement work, and
            coalesces micro-batches of --batch requests (default 64)
            for the parallel engine; a request's 'deadline_ms' shrinks
            its refinement budget by the time it waited in the queue
            (already-expired deadlines do zero work); 'shutdown' or EOF
            drains every admitted request and prints a final summary to
            stderr; same exit codes as batch (2 = some requests
            faulted, each with its own typed error line);
            --listen ADDR serves the identical protocol over TCP, one
            connection at a time (needs the `net` build feature;
            --stdio is always available)
  index     build DATA OUT [--profile memory|disk] [--family kd|ball]
            [--leaf CAP] [--gamma G] [--method karl|sota]
            build the evaluator over DATA (weights 1/n, Gaussian kernel)
            and save it to OUT in the versioned zero-copy format;
            family/leaf default to the storage-aware cost model for
            --profile (default memory, calibrated on this machine; disk
            uses canned cold-storage constants) — explicit --family or
            --leaf override the model
  index     info PATH
            print the header, decoded build metadata, and the per-section
            byte breakdown of an index file (validates the checksum)
  coreset   build --data FILE --eps E [--gamma G]
            [--kernel rbf|laplacian] [--leaf CAP]
            build a certified coreset and report its size, analytic
            certificate eps_c, the measured discrepancy on held-out
            probes, and the frozen tier footprint (construction is
            deterministic; `batch --coreset` rebuilds it inline)
  svm-train --data FILE --svm csvc|oneclass --out MODEL
            [--format csv-last|csv-first|libsvm] [--c C] [--nu NU]
            [--kernel rbf|poly|sigmoid|laplacian] [--gamma G]
            [--degree D] [--coef0 B]
  svm-predict --model MODEL --queries FILE
            [--method karl|sota|scan] [--leaf CAP]
  tune      --data FILE --queries FILE (--tau T | --eps E)
            [--method karl|sota]
";

/// Output of one CLI invocation: the stdout payload plus how many
/// individual queries failed inside an otherwise-successful `batch` or
/// `serve` command (always `0` for the other commands). The binary maps
/// a nonzero `failed_queries` to exit code 2 so scripts can tell a
/// partially-poisoned run from a clean one without parsing stdout:
/// 0 = clean (budget-truncated answers included), 1 = command error,
/// 2 = contained per-query failures.
#[derive(Debug, Clone)]
pub struct CmdOutput {
    /// What to print on stdout.
    pub text: String,
    /// Per-query failures contained by the batch engine.
    pub failed_queries: usize,
}

impl CmdOutput {
    fn clean(text: String) -> Self {
        CmdOutput {
            text,
            failed_queries: 0,
        }
    }
}

/// Entry point: parses `args`, dispatches, and returns the stdout payload
/// plus the count of contained per-query failures.
pub fn run_report(args: &[String]) -> Result<CmdOutput, String> {
    let parsed = Parsed::parse(args).map_err(|e| e.to_string())?;
    let command = parsed.command.as_deref();
    if let Some(action) = parsed.action.as_deref() {
        if !matches!(command, Some("coreset") | Some("index")) {
            return Err(format!("unexpected argument {action:?}"));
        }
    }
    if let Some(operand) = parsed.rest.first() {
        if command != Some("index") {
            return Err(format!("unexpected argument {operand:?}"));
        }
    }
    match command {
        Some("batch") => return commands::batch(&parsed),
        Some("serve") => return commands::serve(&parsed),
        Some("coreset") => commands::coreset(&parsed),
        Some("index") => commands::index(&parsed),
        Some("datasets") => commands::datasets(&parsed),
        Some("generate") => commands::generate(&parsed),
        Some("kde") => commands::kde(&parsed),
        Some("svm-train") => commands::svm_train(&parsed),
        Some("svm-predict") => commands::svm_predict(&parsed),
        Some("tune") => commands::tune(&parsed),
        Some("help") | None => Ok(USAGE.to_string()),
        Some(other) => Err(format!("unknown command {other:?}")),
    }
    .map(CmdOutput::clean)
}

/// Entry point returning only the stdout payload — what the test suite
/// and embedding callers use when they do not care about exit codes.
pub fn run(args: &[String]) -> Result<String, String> {
    run_report(args).map(|o| o.text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn run_vec(args: &[&str]) -> Result<String, String> {
        run(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("karl_cli_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn no_args_prints_usage() {
        assert!(run_vec(&[]).unwrap().contains("usage: karl"));
        assert!(run_vec(&["help"]).unwrap().contains("svm-train"));
    }

    #[test]
    fn unknown_command_errors() {
        assert!(run_vec(&["frobnicate"]).is_err());
    }

    #[test]
    fn datasets_lists_the_registry() {
        let out = run_vec(&["datasets"]).unwrap();
        for name in ["mnist", "susy", "covtype-b"] {
            assert!(out.contains(name), "missing {name}");
        }
    }

    #[test]
    fn generate_then_kde_end_to_end() {
        let data = tmp("home.csv");
        let out = run_vec(&[
            "generate",
            "--name",
            "home",
            "--n",
            "800",
            "--out",
            data.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.contains("800 points"));

        let result = run_vec(&[
            "kde",
            "--data",
            data.to_str().unwrap(),
            "--queries",
            data.to_str().unwrap(),
            "--eps",
            "0.2",
        ])
        .unwrap();
        // One density per query plus a trailing summary comment.
        let values: Vec<&str> = result.lines().filter(|l| !l.starts_with('#')).collect();
        assert_eq!(values.len(), 800);
        assert!(values[0].parse::<f64>().unwrap() > 0.0);
        assert!(result.lines().any(|l| l.starts_with("# throughput")));
    }

    #[test]
    fn kde_threshold_mode_prints_bools() {
        let data = tmp("mini.csv");
        run_vec(&[
            "generate",
            "--name",
            "miniboone",
            "--n",
            "400",
            "--out",
            data.to_str().unwrap(),
        ])
        .unwrap();
        let result = run_vec(&[
            "kde",
            "--data",
            data.to_str().unwrap(),
            "--queries",
            data.to_str().unwrap(),
            "--tau",
            "0.01",
            "--method",
            "sota",
        ])
        .unwrap();
        let answers: Vec<&str> = result.lines().filter(|l| !l.starts_with('#')).collect();
        assert_eq!(answers.len(), 400);
        assert!(answers.iter().all(|&a| a == "1" || a == "0"));
    }

    #[test]
    fn batch_answers_match_sequential_kde_exactly() {
        let data = tmp("batch_home.csv");
        run_vec(&[
            "generate",
            "--name",
            "home",
            "--n",
            "700",
            "--out",
            data.to_str().unwrap(),
        ])
        .unwrap();
        let strip = |s: &str| {
            s.lines()
                .filter(|l| !l.starts_with('#'))
                .map(String::from)
                .collect::<Vec<_>>()
        };
        for workload in [["--eps", "0.2"], ["--tau", "0.05"]] {
            let mut kde_args = vec![
                "kde",
                "--data",
                data.to_str().unwrap(),
                "--queries",
                data.to_str().unwrap(),
            ];
            kde_args.extend_from_slice(&workload);
            let sequential = run_vec(&kde_args).unwrap();
            for threads in ["1", "2", "4"] {
                let mut batch_args = vec![
                    "batch",
                    "--data",
                    data.to_str().unwrap(),
                    "--queries",
                    data.to_str().unwrap(),
                    "--threads",
                    threads,
                ];
                batch_args.extend_from_slice(&workload);
                let parallel = run_vec(&batch_args).unwrap();
                assert_eq!(
                    strip(&sequential),
                    strip(&parallel),
                    "batch ({threads} threads) must match kde for {workload:?}"
                );
                assert!(parallel.lines().any(|l| l.starts_with("# throughput")));
            }
        }
    }

    #[test]
    fn batch_engine_flag_selects_bitwise_equal_paths() {
        let data = tmp("batch_engine.csv");
        run_vec(&[
            "generate",
            "--name",
            "home",
            "--n",
            "400",
            "--out",
            data.to_str().unwrap(),
        ])
        .unwrap();
        let run_engine = |engine: &str| {
            run_vec(&[
                "batch",
                "--data",
                data.to_str().unwrap(),
                "--queries",
                data.to_str().unwrap(),
                "--eps",
                "0.15",
                "--threads",
                "2",
                "--engine",
                engine,
            ])
            .unwrap()
        };
        let strip = |s: &str| {
            s.lines()
                .filter(|l| !l.starts_with('#'))
                .map(String::from)
                .collect::<Vec<_>>()
        };
        let frozen = run_engine("frozen");
        let pointer = run_engine("pointer");
        assert_eq!(strip(&frozen), strip(&pointer));
        assert!(frozen.contains("engine Frozen"));
        assert!(pointer.contains("engine Pointer"));
        let err = run_vec(&[
            "batch",
            "--data",
            data.to_str().unwrap(),
            "--queries",
            data.to_str().unwrap(),
            "--eps",
            "0.15",
            "--engine",
            "hybrid",
        ])
        .unwrap_err();
        assert!(err.contains("frozen|pointer"));
    }

    #[test]
    fn batch_envelope_cache_flag_is_bitwise_neutral() {
        let data = tmp("batch_envcache.csv");
        run_vec(&[
            "generate",
            "--name",
            "home",
            "--n",
            "400",
            "--out",
            data.to_str().unwrap(),
        ])
        .unwrap();
        let run_cache = |setting: &str| {
            run_vec(&[
                "batch",
                "--data",
                data.to_str().unwrap(),
                "--queries",
                data.to_str().unwrap(),
                "--eps",
                "0.15",
                "--threads",
                "2",
                "--envelope-cache",
                setting,
            ])
            .unwrap()
        };
        let strip = |s: &str| {
            s.lines()
                .filter(|l| !l.starts_with('#'))
                .map(String::from)
                .collect::<Vec<_>>()
        };
        let on = run_cache("on");
        let off = run_cache("off");
        assert_eq!(strip(&on), strip(&off));
        assert!(on.contains("envelope-cache on"));
        assert!(off.contains("envelope-cache off"));
        let err = run_vec(&[
            "batch",
            "--data",
            data.to_str().unwrap(),
            "--queries",
            data.to_str().unwrap(),
            "--eps",
            "0.15",
            "--envelope-cache",
            "maybe",
        ])
        .unwrap_err();
        assert!(err.contains("on|off"));
    }

    #[test]
    fn batch_dual_flag_output_is_byte_identical_to_default() {
        let data = tmp("batch_dual.csv");
        run_vec(&[
            "generate",
            "--name",
            "home",
            "--n",
            "400",
            "--out",
            data.to_str().unwrap(),
        ])
        .unwrap();
        let strip = |s: &str| {
            s.lines()
                .filter(|l| !l.starts_with('#'))
                .map(String::from)
                .collect::<Vec<_>>()
        };
        // All three query types; --dual answer lines must match the
        // default engine byte for byte ('#' diagnostics carry timings).
        for spec in [["--tau", "0.3"], ["--eps", "0.15"], ["--tol", "0.05"]] {
            let mut args = vec![
                "batch",
                "--data",
                data.to_str().unwrap(),
                "--queries",
                data.to_str().unwrap(),
                spec[0],
                spec[1],
                "--threads",
                "2",
            ];
            let single = run_vec(&args).unwrap();
            args.push("--dual");
            let dual = run_vec(&args).unwrap();
            assert_eq!(strip(&dual), strip(&single), "{spec:?}");
        }
    }

    #[test]
    fn coreset_build_reports_a_certificate() {
        let data = tmp("coreset_build.csv");
        run_vec(&[
            "generate",
            "--name",
            "home",
            "--n",
            "600",
            "--out",
            data.to_str().unwrap(),
        ])
        .unwrap();
        let out = run_vec(&[
            "coreset",
            "build",
            "--data",
            data.to_str().unwrap(),
            "--eps",
            "0.05",
        ])
        .unwrap();
        for needle in ["compression", "eps_c", "margin", "probes", "footprint"] {
            assert!(out.contains(needle), "missing {needle} in:\n{out}");
        }
        // Unsupported kernels are rejected with the Lipschitz explanation.
        let err = run_vec(&[
            "coreset",
            "build",
            "--data",
            data.to_str().unwrap(),
            "--eps",
            "0.05",
            "--kernel",
            "poly",
        ])
        .unwrap_err();
        assert!(err.contains("Lipschitz"));
        // A bare `karl coreset` explains itself; stray actions on other
        // commands are rejected.
        assert!(run_vec(&["coreset"]).unwrap_err().contains("coreset build"));
        assert!(run_vec(&["datasets", "build"]).is_err());
    }

    #[test]
    fn batch_coreset_flag_keeps_decisions_and_reports_the_tier() {
        let data = tmp("batch_coreset.csv");
        run_vec(&[
            "generate",
            "--name",
            "home",
            "--n",
            "500",
            "--out",
            data.to_str().unwrap(),
        ])
        .unwrap();
        let strip = |s: &str| {
            s.lines()
                .filter(|l| !l.starts_with('#'))
                .map(String::from)
                .collect::<Vec<_>>()
        };
        // TKAQ decisions and Within answers must be byte-identical with the
        // cascade on; every TKAQ query is accounted to exactly one tier.
        for spec in [["--tau", "0.05"], ["--tol", "0.05"]] {
            let mut args = vec![
                "batch",
                "--data",
                data.to_str().unwrap(),
                "--queries",
                data.to_str().unwrap(),
                spec[0],
                spec[1],
                "--threads",
                "2",
            ];
            let plain = run_vec(&args).unwrap();
            args.extend_from_slice(&["--coreset", "0.02"]);
            let cascade = run_vec(&args).unwrap();
            assert_eq!(strip(&cascade), strip(&plain), "{spec:?}");
            let line = cascade
                .lines()
                .find(|l| l.starts_with("# coreset"))
                .expect("coreset summary line");
            assert!(line.contains("decided") && line.contains("fell_through"));
        }
        // Zero eps is rejected up front.
        assert!(run_vec(&[
            "batch",
            "--data",
            data.to_str().unwrap(),
            "--queries",
            data.to_str().unwrap(),
            "--tau",
            "0.05",
            "--coreset",
            "0",
        ])
        .unwrap_err()
        .contains("--coreset"));
    }

    #[test]
    fn batch_stats_flag_depends_on_the_feature() {
        let data = tmp("batch_stats.csv");
        run_vec(&[
            "generate",
            "--name",
            "home",
            "--n",
            "200",
            "--out",
            data.to_str().unwrap(),
        ])
        .unwrap();
        let result = run_vec(&[
            "batch",
            "--data",
            data.to_str().unwrap(),
            "--queries",
            data.to_str().unwrap(),
            "--eps",
            "0.2",
            "--stats",
        ]);
        #[cfg(feature = "stats")]
        {
            let out = result.unwrap();
            let stats_line = out
                .lines()
                .find(|l| l.starts_with("# stats"))
                .expect("stats line");
            for field in [
                "nodes_refined",
                "envelopes_built",
                "cache_hits",
                "cache_misses",
                "curve_value_calls",
                "coreset_decided",
                "coreset_fallthrough",
            ] {
                assert!(stats_line.contains(field), "missing {field}");
            }
        }
        #[cfg(not(feature = "stats"))]
        assert!(result.unwrap_err().contains("stats"));
    }

    #[test]
    fn batch_within_mode_prints_finite_estimates() {
        let data = tmp("batch_within.csv");
        run_vec(&[
            "generate",
            "--name",
            "home",
            "--n",
            "300",
            "--out",
            data.to_str().unwrap(),
        ])
        .unwrap();
        let out = run_vec(&[
            "batch",
            "--data",
            data.to_str().unwrap(),
            "--queries",
            data.to_str().unwrap(),
            "--tol",
            "0.001",
            "--threads",
            "2",
        ])
        .unwrap();
        let values: Vec<&str> = out.lines().filter(|l| !l.starts_with('#')).collect();
        assert_eq!(values.len(), 300);
        assert!(values.iter().all(|v| v.parse::<f64>().unwrap().is_finite()));
    }

    #[test]
    fn batch_budget_flags_truncate_and_stay_finite() {
        let data = tmp("batch_budget.csv");
        run_vec(&[
            "generate",
            "--name",
            "home",
            "--n",
            "500",
            "--out",
            data.to_str().unwrap(),
        ])
        .unwrap();
        let base = &[
            "batch",
            "--data",
            data.to_str().unwrap(),
            "--queries",
            data.to_str().unwrap(),
            "--tol",
            "0.0001",
            "--threads",
            "2",
        ];
        let strip = |s: &str| {
            s.lines()
                .filter(|l| !l.starts_with('#'))
                .map(String::from)
                .collect::<Vec<_>>()
        };
        // A 1-node budget truncates: answers are still printed (the
        // certified-interval midpoints), all finite, plus a summary line.
        let mut tight = base.to_vec();
        tight.extend_from_slice(&["--budget-nodes", "1"]);
        let truncated = run_vec(&tight).unwrap();
        assert!(truncated.lines().any(|l| l.starts_with("# truncated")));
        let values = strip(&truncated);
        assert_eq!(values.len(), 500);
        assert!(values.iter().all(|v| v.parse::<f64>().unwrap().is_finite()));
        // A generous budget never trips: byte-identical answers to the
        // unbudgeted run and no truncation summary.
        let mut roomy = base.to_vec();
        roomy.extend_from_slice(&["--budget-nodes", "100000000"]);
        let unbudgeted = run_vec(base).unwrap();
        let budgeted = run_vec(&roomy).unwrap();
        assert_eq!(strip(&unbudgeted), strip(&budgeted));
        assert!(!budgeted.lines().any(|l| l.starts_with("# truncated")));
        // Zero budgets are rejected up front.
        let mut zero = base.to_vec();
        zero.extend_from_slice(&["--budget-nodes", "0"]);
        assert!(run_vec(&zero).unwrap_err().contains("--budget-nodes"));
    }

    #[test]
    fn batch_zero_deadline_prints_undecided_tkaq() {
        let data = tmp("batch_deadline.csv");
        run_vec(&[
            "generate",
            "--name",
            "home",
            "--n",
            "300",
            "--out",
            data.to_str().unwrap(),
        ])
        .unwrap();
        let out = run_vec(&[
            "batch",
            "--data",
            data.to_str().unwrap(),
            "--queries",
            data.to_str().unwrap(),
            "--tau",
            "0.05",
            "--deadline-ms",
            "0",
        ])
        .unwrap();
        // Every query stops at the root interval; a decision may still
        // fall out when the root bound already clears τ, but each line is
        // one of the three legal answers and the run reports truncation.
        let answers: Vec<&str> = out.lines().filter(|l| !l.starts_with('#')).collect();
        assert_eq!(answers.len(), 300);
        assert!(answers.iter().all(|&a| a == "1" || a == "0" || a == "?"));
        assert!(out.lines().any(|l| l.starts_with("# truncated")));
    }

    #[test]
    fn batch_reports_zero_failed_queries_on_healthy_runs() {
        let data = tmp("batch_report.csv");
        run_vec(&[
            "generate",
            "--name",
            "home",
            "--n",
            "200",
            "--out",
            data.to_str().unwrap(),
        ])
        .unwrap();
        let args: Vec<String> = [
            "batch",
            "--data",
            data.to_str().unwrap(),
            "--queries",
            data.to_str().unwrap(),
            "--eps",
            "0.2",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let report = run_report(&args).unwrap();
        assert_eq!(report.failed_queries, 0);
        assert!(!report.text.contains("# error"));
    }

    #[test]
    fn batch_requires_exactly_one_workload() {
        let data = tmp("batch_wl.csv");
        run_vec(&[
            "generate",
            "--name",
            "home",
            "--n",
            "100",
            "--out",
            data.to_str().unwrap(),
        ])
        .unwrap();
        let err = run_vec(&[
            "batch",
            "--data",
            data.to_str().unwrap(),
            "--queries",
            data.to_str().unwrap(),
            "--tau",
            "0.1",
            "--eps",
            "0.1",
        ])
        .unwrap_err();
        assert!(err.contains("--tau, --eps or --tol"));
    }

    #[test]
    fn batch_stats_json_is_byte_stable_and_accounts_every_query() {
        let data = tmp("stats_json.csv");
        run_vec(&[
            "generate",
            "--name",
            "home",
            "--n",
            "300",
            "--out",
            data.to_str().unwrap(),
        ])
        .unwrap();
        let emit = |path: &PathBuf| {
            run_vec(&[
                "batch",
                "--data",
                data.to_str().unwrap(),
                "--queries",
                data.to_str().unwrap(),
                "--eps",
                "0.1",
                "--threads",
                "2",
                "--stats-json",
                path.to_str().unwrap(),
            ])
            .unwrap();
            std::fs::read_to_string(path).unwrap()
        };
        let first = emit(&tmp("stats_run1.json"));
        let second = emit(&tmp("stats_run2.json"));
        assert_eq!(
            first.as_bytes(),
            second.as_bytes(),
            "identical runs must write identical stats bytes"
        );
        // The shared serve schema with the batch-degenerate admission
        // counters: every query admitted, none shed or rejected.
        assert!(first.starts_with("{\"schema\":\"karl-stats-v1\","));
        for needle in [
            "\"queries\":300,",
            "\"admitted\":300,",
            "\"rejected\":0,",
            "\"shed\":0,",
            "\"completed\":300,",
            "\"truncated\":0,",
            "\"faulted\":0,",
            "\"protocol_errors\":0,",
            "\"batches\":1,",
            "\"threads\":2",
        ] {
            assert!(first.contains(needle), "missing {needle} in {first}");
        }
    }

    #[test]
    fn serve_rejects_bad_flag_combinations_up_front() {
        let data = tmp("serve_flags.csv");
        run_vec(&[
            "generate",
            "--name",
            "home",
            "--n",
            "100",
            "--out",
            data.to_str().unwrap(),
        ])
        .unwrap();
        // A transport is mandatory; without one the daemon would sit on a
        // terminal's stdin forever.
        let err = run_vec(&["serve", "--data", data.to_str().unwrap()]).unwrap_err();
        assert!(err.contains("--stdio"), "{err}");
        let err = run_vec(&[
            "serve",
            "--stdio",
            "--listen",
            "127.0.0.1:0",
            "--data",
            data.to_str().unwrap(),
        ])
        .unwrap_err();
        assert!(err.contains("conflicts"), "{err}");
        // Index metadata carries kernel/method/leaf, same rule as batch.
        let err = run_vec(&["serve", "--stdio", "--index", "x.idx", "--leaf", "8"]).unwrap_err();
        assert!(err.contains("--leaf conflicts with --index"), "{err}");
        // Watermark/batch validation is typed, not a mid-loop surprise.
        let err = run_vec(&[
            "serve",
            "--stdio",
            "--data",
            data.to_str().unwrap(),
            "--queue",
            "0",
        ])
        .unwrap_err();
        assert!(err.contains("invalid serve config"), "{err}");
        let err = run_vec(&[
            "serve",
            "--stdio",
            "--data",
            data.to_str().unwrap(),
            "--simd",
            "quantum",
        ])
        .unwrap_err();
        assert!(err.contains("auto|avx2|scalar"), "{err}");
        #[cfg(not(feature = "net"))]
        {
            let err = run_vec(&[
                "serve",
                "--listen",
                "127.0.0.1:0",
                "--data",
                data.to_str().unwrap(),
            ])
            .unwrap_err();
            assert!(err.contains("`net` feature"), "{err}");
        }
    }

    #[cfg(feature = "net")]
    #[test]
    fn serve_listen_answers_over_tcp_and_shuts_down() {
        use std::io::{BufRead, BufReader, Write};
        let data = tmp("serve_net.csv");
        run_vec(&[
            "generate",
            "--name",
            "home",
            "--n",
            "300",
            "--out",
            data.to_str().unwrap(),
        ])
        .unwrap();
        let dims = std::fs::read_to_string(&data)
            .unwrap()
            .lines()
            .next()
            .unwrap()
            .split(',')
            .count();
        // Grab a free loopback port, release it, and hand it to the
        // daemon — the rebind window is effectively zero in a test runner.
        let port = {
            let probe = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            probe.local_addr().unwrap().port()
        };
        let addr = format!("127.0.0.1:{port}");
        let args: Vec<String> = [
            "serve",
            "--listen",
            &addr,
            "--data",
            data.to_str().unwrap(),
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let daemon = std::thread::spawn(move || run_report(&args));
        let mut stream = None;
        for _ in 0..200 {
            match std::net::TcpStream::connect(&addr) {
                Ok(s) => {
                    stream = Some(s);
                    break;
                }
                Err(_) => std::thread::sleep(std::time::Duration::from_millis(10)),
            }
        }
        let mut stream = stream.expect("daemon must start listening");
        let q = vec!["0.0"; dims].join(",");
        write!(
            stream,
            "{{\"id\":1,\"op\":\"ekaq\",\"eps\":0.1,\"q\":[{q}]}}\n{{\"id\":2,\"op\":\"shutdown\"}}\n"
        )
        .unwrap();
        stream.flush().unwrap();
        let reader = BufReader::new(stream.try_clone().unwrap());
        let lines: Vec<String> = reader.lines().map(|l| l.unwrap()).collect();
        assert!(
            lines.iter().any(|l| l.contains("\"id\":1,\"status\":\"ok\"")),
            "{lines:?}"
        );
        assert!(
            lines
                .iter()
                .any(|l| l.contains("\"status\":\"shutdown\",\"admitted\":1,\"drained\":1")),
            "{lines:?}"
        );
        let report = daemon.join().unwrap().unwrap();
        assert_eq!(report.failed_queries, 0);
    }

    #[test]
    fn index_build_info_and_batch_roundtrip() {
        let data = tmp("index_data.csv");
        run_vec(&[
            "generate",
            "--name",
            "home",
            "--n",
            "500",
            "--out",
            data.to_str().unwrap(),
        ])
        .unwrap();
        let idx = tmp("home.idx");
        // Pin the family and leaf so the in-memory `batch` defaults match.
        let built = run_vec(&[
            "index",
            "build",
            data.to_str().unwrap(),
            idx.to_str().unwrap(),
            "--family",
            "kd",
            "--leaf",
            "80",
        ])
        .unwrap();
        assert!(built.contains("500 points"));
        assert!(built.contains("family kd leaf 80"));

        let info = run_vec(&["index", "info", idx.to_str().unwrap()]).unwrap();
        assert!(info.contains("format v1"), "missing header in:\n{info}");
        assert!(info.contains("(verified)"));
        assert!(info.contains("leaf 80"));
        assert!(info.contains("pos.points"));
        assert!(info.contains("pos.shape.lo"));

        // Answers from the loaded index are byte-identical to the
        // in-memory build, for every workload.
        let strip = |s: &str| {
            s.lines()
                .filter(|l| !l.starts_with('#'))
                .map(String::from)
                .collect::<Vec<_>>()
        };
        for spec in [["--tau", "0.3"], ["--eps", "0.15"], ["--tol", "0.05"]] {
            let fresh = run_vec(&[
                "batch",
                "--data",
                data.to_str().unwrap(),
                "--queries",
                data.to_str().unwrap(),
                spec[0],
                spec[1],
                "--threads",
                "2",
            ])
            .unwrap();
            let loaded = run_vec(&[
                "batch",
                "--index",
                idx.to_str().unwrap(),
                "--queries",
                data.to_str().unwrap(),
                spec[0],
                spec[1],
                "--threads",
                "2",
            ])
            .unwrap();
            assert_eq!(strip(&loaded), strip(&fresh), "{spec:?}");
        }

        // Flags recorded in the index conflict with --index.
        let err = run_vec(&[
            "batch",
            "--index",
            idx.to_str().unwrap(),
            "--queries",
            data.to_str().unwrap(),
            "--eps",
            "0.15",
            "--leaf",
            "40",
        ])
        .unwrap_err();
        assert!(err.contains("--leaf conflicts with --index"), "{err}");
        // The pointer engine cannot serve a loaded index.
        let err = run_vec(&[
            "batch",
            "--index",
            idx.to_str().unwrap(),
            "--queries",
            data.to_str().unwrap(),
            "--eps",
            "0.15",
            "--engine",
            "pointer",
        ])
        .unwrap_err();
        assert!(err.contains("frozen"), "{err}");
        // Missing operands and stray positionals stay errors.
        assert!(run_vec(&["index", "build"]).is_err());
        assert!(run_vec(&["index"]).unwrap_err().contains("usage"));
        assert!(run_vec(&["kde", "x", "y"]).is_err());
    }

    #[test]
    fn index_info_rejects_corruption_with_a_typed_reason() {
        let data = tmp("index_corrupt.csv");
        run_vec(&[
            "generate",
            "--name",
            "home",
            "--n",
            "200",
            "--out",
            data.to_str().unwrap(),
        ])
        .unwrap();
        let idx = tmp("corrupt.idx");
        run_vec(&[
            "index",
            "build",
            data.to_str().unwrap(),
            idx.to_str().unwrap(),
        ])
        .unwrap();
        let mut bytes = std::fs::read(&idx).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&idx, &bytes).unwrap();
        let err = run_vec(&["index", "info", idx.to_str().unwrap()]).unwrap_err();
        assert!(err.contains("checksum"), "{err}");
    }

    #[test]
    fn index_build_profiles_pick_monotone_leaves() {
        let data = tmp("index_profile.csv");
        run_vec(&[
            "generate",
            "--name",
            "home",
            "--n",
            "400",
            "--out",
            data.to_str().unwrap(),
        ])
        .unwrap();
        let leaf_of = |profile: &str| {
            let idx = tmp(&format!("profile_{profile}.idx"));
            run_vec(&[
                "index",
                "build",
                data.to_str().unwrap(),
                idx.to_str().unwrap(),
                "--profile",
                profile,
            ])
            .unwrap();
            let info = run_vec(&["index", "info", idx.to_str().unwrap()]).unwrap();
            let line = info.lines().find(|l| l.contains("leaf")).unwrap().to_string();
            let leaf: usize = line
                .split("leaf ")
                .nth(1)
                .unwrap()
                .split(|c: char| !c.is_ascii_digit())
                .next()
                .unwrap()
                .parse()
                .unwrap();
            leaf
        };
        assert!(leaf_of("memory") <= leaf_of("disk"));
    }

    #[test]
    fn svm_train_and_predict_roundtrip() {
        let data = tmp("labeled.csv");
        run_vec(&[
            "generate",
            "--name",
            "ijcnn1",
            "--n",
            "600",
            "--out",
            data.to_str().unwrap(),
            "--labeled",
        ])
        .unwrap();
        let model = tmp("model.txt");
        let out = run_vec(&[
            "svm-train",
            "--data",
            data.to_str().unwrap(),
            "--svm",
            "csvc",
            "--c",
            "5",
            "--out",
            model.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.contains("support vectors"));

        let unlabeled = tmp("queries.csv");
        run_vec(&[
            "generate",
            "--name",
            "ijcnn1",
            "--n",
            "50",
            "--out",
            unlabeled.to_str().unwrap(),
        ])
        .unwrap();
        let fast = run_vec(&[
            "svm-predict",
            "--model",
            model.to_str().unwrap(),
            "--queries",
            unlabeled.to_str().unwrap(),
        ])
        .unwrap();
        let scan = run_vec(&[
            "svm-predict",
            "--model",
            model.to_str().unwrap(),
            "--queries",
            unlabeled.to_str().unwrap(),
            "--method",
            "scan",
        ])
        .unwrap();
        let strip = |s: &str| {
            s.lines()
                .filter(|l| !l.starts_with('#'))
                .map(String::from)
                .collect::<Vec<_>>()
        };
        assert_eq!(strip(&fast), strip(&scan), "KARL must preserve predictions");
        assert_eq!(strip(&fast).len(), 50);
    }

    #[test]
    fn one_class_training_works() {
        let data = tmp("oneclass.csv");
        run_vec(&[
            "generate",
            "--name",
            "nsl-kdd",
            "--n",
            "500",
            "--out",
            data.to_str().unwrap(),
        ])
        .unwrap();
        let model = tmp("oc_model.txt");
        let out = run_vec(&[
            "svm-train",
            "--data",
            data.to_str().unwrap(),
            "--svm",
            "oneclass",
            "--nu",
            "0.1",
            "--out",
            model.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.contains("one_class"));
    }

    #[test]
    fn tune_prints_a_grid_report() {
        let data = tmp("tune.csv");
        run_vec(&[
            "generate",
            "--name",
            "home",
            "--n",
            "600",
            "--out",
            data.to_str().unwrap(),
        ])
        .unwrap();
        let out = run_vec(&[
            "tune",
            "--data",
            data.to_str().unwrap(),
            "--queries",
            data.to_str().unwrap(),
            "--eps",
            "0.2",
        ])
        .unwrap();
        assert!(out.contains("kind"));
        assert!(out.contains("recommended"));
    }

    #[test]
    fn kde_requires_a_workload() {
        let data = tmp("wl.csv");
        run_vec(&[
            "generate",
            "--name",
            "home",
            "--n",
            "300",
            "--out",
            data.to_str().unwrap(),
        ])
        .unwrap();
        let err = run_vec(&[
            "kde",
            "--data",
            data.to_str().unwrap(),
            "--queries",
            data.to_str().unwrap(),
        ])
        .unwrap_err();
        assert!(err.contains("--tau or --eps"));
    }
}
