//! Trained SVM models as kernel-aggregation workloads.
//!
//! A trained SVM *is* a kernel aggregation query (Table III of the paper):
//! classifying a query point `q` means testing
//!
//! ```text
//! F_P(q) = Σᵢ wᵢ·K(q, pᵢ)  ≥  ρ
//! ```
//!
//! where `P` is the set of support vectors, `wᵢ = yᵢαᵢ` (2-class, Type III
//! weighting) or `wᵢ = αᵢ` (1-class, Type II weighting) and `ρ` is the
//! trained offset. [`SvmModel`] packages exactly those pieces so they can
//! be handed straight to a `karl_core` evaluator.

use karl_core::{aggregate_exact, KarlError, Kernel};
use karl_geom::PointSet;

/// A trained SVM decision function `sign(Σ wᵢK(q, pᵢ) − ρ)`.
#[derive(Debug, Clone)]
pub struct SvmModel {
    support: PointSet,
    weights: Vec<f64>,
    rho: f64,
    kernel: Kernel,
}

impl SvmModel {
    /// Assembles a model from its parts.
    ///
    /// # Panics
    /// Panics if lengths mismatch or the support set is empty.
    pub fn new(support: PointSet, weights: Vec<f64>, rho: f64, kernel: Kernel) -> Self {
        Self::try_new(support, weights, rho, kernel).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Validating constructor: typed [`KarlError`] for an empty support
    /// set, length mismatch, non-finite support coordinates/weights or a
    /// non-finite `ρ`, instead of a panic.
    pub fn try_new(
        support: PointSet,
        weights: Vec<f64>,
        rho: f64,
        kernel: Kernel,
    ) -> Result<Self, KarlError> {
        if support.is_empty() {
            return Err(KarlError::EmptyPoints);
        }
        if weights.len() != support.len() {
            return Err(KarlError::LengthMismatch {
                expected: support.len(),
                got: weights.len(),
            });
        }
        support.check_finite()?;
        if let Some((index, &value)) = weights.iter().enumerate().find(|(_, w)| !w.is_finite()) {
            return Err(KarlError::NonFiniteWeight { index, value });
        }
        if !rho.is_finite() {
            return Err(KarlError::InvalidTau { value: rho });
        }
        Ok(Self {
            support,
            weights,
            rho,
            kernel,
        })
    }

    /// The support vectors (the point set `P` of the aggregation query).
    pub fn support(&self) -> &PointSet {
        &self.support
    }

    /// The aggregation weights `wᵢ` (signed for 2-class models).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// The decision offset `ρ`; the TKAQ threshold `τ` of the model.
    pub fn threshold(&self) -> f64 {
        self.rho
    }

    /// The kernel the model was trained with.
    pub fn kernel(&self) -> &Kernel {
        &self.kernel
    }

    /// Number of support vectors.
    pub fn num_support(&self) -> usize {
        self.support.len()
    }

    /// The raw decision value `Σ wᵢK(q, pᵢ) − ρ` (exact scan).
    pub fn decision(&self, q: &[f64]) -> f64 {
        aggregate_exact(&self.kernel, &self.support, &self.weights, q) - self.rho
    }

    /// Predicted class: `true` for the positive class / inlier.
    pub fn predict(&self, q: &[f64]) -> bool {
        self.decision(q) >= 0.0
    }

    /// Fraction of `points` whose prediction matches `labels` (±1).
    ///
    /// # Panics
    /// Panics if lengths mismatch.
    pub fn accuracy(&self, points: &PointSet, labels: &[f64]) -> f64 {
        assert_eq!(labels.len(), points.len(), "labels/points mismatch");
        if points.is_empty() {
            return 1.0;
        }
        let correct = points
            .iter()
            .zip(labels)
            .filter(|(p, &y)| self.predict(p) == (y > 0.0))
            .count();
        correct as f64 / points.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_model() -> SvmModel {
        let sv = PointSet::new(1, vec![-1.0, 1.0]);
        SvmModel::new(sv, vec![-0.8, 0.8], 0.0, Kernel::gaussian(1.0))
    }

    #[test]
    fn decision_is_signed_aggregate_minus_rho() {
        let m = toy_model();
        // At q=1: 0.8·K(1,1) − 0.8·K(1,−1) = 0.8(1 − e^{−4}) > 0
        assert!(m.decision(&[1.0]) > 0.0);
        assert!(m.decision(&[-1.0]) < 0.0);
        assert!(m.predict(&[1.0]));
        assert!(!m.predict(&[-1.0]));
    }

    #[test]
    fn accuracy_counts_matches() {
        let m = toy_model();
        let pts = PointSet::new(1, vec![1.5, -1.5, 0.9, -0.9]);
        let labels = vec![1.0, -1.0, 1.0, 1.0]; // last label is wrong on purpose
        let acc = m.accuracy(&pts, &labels);
        assert!((acc - 0.75).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn empty_support_panics() {
        SvmModel::new(PointSet::empty(2), vec![], 0.0, Kernel::gaussian(1.0));
    }
}
