//! 2-class C-SVC training (the Type III weighting source of the paper).

use karl_core::Kernel;
use karl_geom::PointSet;

use crate::model::SvmModel;
use crate::qmatrix::KernelQ;
use crate::smo::{solve, SmoConfig, SmoProblem};

/// A 2-class soft-margin SVM trainer (LIBSVM's `-s 0`).
///
/// Solves `min ½αᵀQα − eᵀα` s.t. `yᵀα = 0`, `0 ≤ αᵢ ≤ C`, with
/// `Q_ij = yᵢyⱼK(xᵢ, xⱼ)`, and keeps the support vectors (`αᵢ > 0`) as a
/// kernel-aggregation model with signed weights `wᵢ = yᵢαᵢ` and threshold
/// `ρ`.
#[derive(Debug, Clone)]
pub struct CSvc {
    /// The box constraint `C` (regularization).
    pub c: f64,
    /// Kernel function.
    pub kernel: Kernel,
    /// Solver tolerances.
    pub config: SmoConfig,
    /// Kernel-row cache budget in bytes.
    pub cache_bytes: usize,
}

impl CSvc {
    /// A trainer with LIBSVM-like defaults (`C = 1`, 64 MiB cache).
    pub fn new(c: f64, kernel: Kernel) -> Self {
        assert!(c.is_finite() && c > 0.0, "C must be positive");
        Self {
            c,
            kernel,
            config: SmoConfig::default(),
            cache_bytes: 64 << 20,
        }
    }

    /// Trains on `points` with labels `±1`.
    ///
    /// # Panics
    /// Panics if lengths mismatch, a label is not `±1`, or only one class
    /// is present.
    pub fn train(&self, points: &PointSet, labels: &[f64]) -> SvmModel {
        assert_eq!(labels.len(), points.len(), "labels/points mismatch");
        assert!(
            labels.iter().all(|&y| y == 1.0 || y == -1.0),
            "labels must be ±1"
        );
        let n_pos = labels.iter().filter(|&&y| y > 0.0).count();
        assert!(
            n_pos > 0 && n_pos < labels.len(),
            "training requires both classes"
        );
        let n = points.len();
        let mut q = KernelQ::new(points.clone(), self.kernel, labels.to_vec(), self.cache_bytes);
        let problem = SmoProblem {
            p: vec![-1.0; n],
            y: labels.to_vec(),
            c: vec![self.c; n],
            init_alpha: vec![0.0; n],
        };
        let sol = solve(&mut q, &problem, &self.config);

        let sv_idx: Vec<usize> = (0..n).filter(|&i| sol.alpha[i] > 1e-12).collect();
        assert!(!sv_idx.is_empty(), "degenerate model: no support vectors");
        let support = points.select(&sv_idx);
        let weights: Vec<f64> = sv_idx.iter().map(|&i| labels[i] * sol.alpha[i]).collect();
        SvmModel::new(support, weights, sol.rho, self.kernel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use karl_testkit::rng::StdRng;
    use karl_testkit::rng::{Rng, SeedableRng};

    /// Two Gaussian blobs, labels by blob.
    fn blobs(n: usize, sep: f64, seed: u64) -> (PointSet, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut data = Vec::with_capacity(n * 2);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let (c, y) = if i % 2 == 0 { (sep, 1.0) } else { (-sep, -1.0) };
            data.push(c + rng.random_range(-0.5..0.5));
            data.push(c + rng.random_range(-0.5..0.5));
            labels.push(y);
        }
        (PointSet::new(2, data), labels)
    }

    #[test]
    fn separable_blobs_train_to_high_accuracy() {
        let (ps, labels) = blobs(200, 2.0, 1);
        let model = CSvc::new(10.0, Kernel::gaussian(0.5)).train(&ps, &labels);
        assert!(model.accuracy(&ps, &labels) >= 0.99);
        // Well-separated data needs few support vectors.
        assert!(model.num_support() < ps.len() / 2);
    }

    #[test]
    fn overlapping_blobs_still_learn() {
        let (ps, labels) = blobs(300, 0.6, 2);
        let model = CSvc::new(1.0, Kernel::gaussian(1.0)).train(&ps, &labels);
        assert!(model.accuracy(&ps, &labels) >= 0.8);
    }

    #[test]
    fn weights_are_label_signed_and_balanced() {
        let (ps, labels) = blobs(100, 1.5, 3);
        let model = CSvc::new(5.0, Kernel::gaussian(0.8)).train(&ps, &labels);
        // Σ wᵢ = Σ yᵢαᵢ = 0 (the dual equality constraint).
        let sum: f64 = model.weights().iter().sum();
        assert!(sum.abs() < 1e-6, "weight sum {sum}");
        // Both signs present (Type III weighting).
        assert!(model.weights().iter().any(|&w| w > 0.0));
        assert!(model.weights().iter().any(|&w| w < 0.0));
    }

    #[test]
    fn polynomial_kernel_training_works() {
        let (ps, labels) = blobs(150, 1.2, 4);
        // Polynomial training expects data in [−1, 1]; blobs(±1.2·…) are
        // close enough for a smoke test.
        let model = CSvc::new(2.0, Kernel::polynomial(0.5, 1.0, 3)).train(&ps, &labels);
        assert!(model.accuracy(&ps, &labels) >= 0.9);
    }

    #[test]
    #[should_panic]
    fn one_class_only_panics() {
        let ps = PointSet::new(1, vec![0.0, 1.0]);
        CSvc::new(1.0, Kernel::gaussian(1.0)).train(&ps, &[1.0, 1.0]);
    }
}
