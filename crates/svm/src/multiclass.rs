//! Multi-class kernel SVM — one of the paper's "promising future research
//! directions" (Section VII), built the way LIBSVM does it: one-vs-one
//! pairwise C-SVC models with majority voting. Every vote is a threshold
//! kernel aggregation query, so the whole predictor can be served through
//! KARL evaluators ([`FastMultiClass`]).

use karl_core::{BoundMethod, Evaluator, KdEvaluator};
use karl_geom::PointSet;

use crate::csvc::CSvc;
use crate::model::SvmModel;

/// A trained one-vs-one multi-class SVM.
#[derive(Debug, Clone)]
pub struct MultiClassSvm {
    classes: Vec<usize>,
    /// `(class_a, class_b, model)` with the model voting `a` on a positive
    /// decision.
    pairs: Vec<(usize, usize, SvmModel)>,
}

impl MultiClassSvm {
    /// Trains `k·(k−1)/2` pairwise models with the given base trainer.
    ///
    /// # Panics
    /// Panics if lengths mismatch or fewer than two classes are present.
    pub fn train(trainer: &CSvc, points: &PointSet, labels: &[usize]) -> Self {
        assert_eq!(labels.len(), points.len(), "labels/points mismatch");
        let mut classes: Vec<usize> = labels.to_vec();
        classes.sort_unstable();
        classes.dedup();
        assert!(classes.len() >= 2, "multi-class training needs ≥ 2 classes");

        let mut pairs = Vec::with_capacity(classes.len() * (classes.len() - 1) / 2);
        for ai in 0..classes.len() {
            for bi in ai + 1..classes.len() {
                let (a, b) = (classes[ai], classes[bi]);
                let idx: Vec<usize> = (0..points.len())
                    .filter(|&i| labels[i] == a || labels[i] == b)
                    .collect();
                let sub = points.select(&idx);
                let sub_labels: Vec<f64> = idx
                    .iter()
                    .map(|&i| if labels[i] == a { 1.0 } else { -1.0 })
                    .collect();
                pairs.push((a, b, trainer.train(&sub, &sub_labels)));
            }
        }
        Self { classes, pairs }
    }

    /// The distinct class labels, ascending.
    pub fn classes(&self) -> &[usize] {
        &self.classes
    }

    /// The pairwise models.
    pub fn pairs(&self) -> &[(usize, usize, SvmModel)] {
        &self.pairs
    }

    /// Predicts by one-vs-one majority vote (ties break toward the smaller
    /// label, like LIBSVM).
    pub fn predict(&self, q: &[f64]) -> usize {
        let mut votes = vec![0usize; self.classes.len()];
        for (a, b, model) in &self.pairs {
            let winner = if model.predict(q) { a } else { b };
            let slot = self.classes.iter().position(|c| c == winner).expect("known class");
            votes[slot] += 1;
        }
        let best = votes
            .iter()
            .enumerate()
            .max_by(|(ia, va), (ib, vb)| va.cmp(vb).then(ib.cmp(ia)))
            .expect("at least one class")
            .0;
        self.classes[best]
    }

    /// Fraction of `points` predicted as `labels`.
    ///
    /// # Panics
    /// Panics if lengths mismatch.
    pub fn accuracy(&self, points: &PointSet, labels: &[usize]) -> f64 {
        assert_eq!(labels.len(), points.len(), "labels/points mismatch");
        if points.is_empty() {
            return 1.0;
        }
        let correct = points
            .iter()
            .zip(labels)
            .filter(|(p, &y)| self.predict(p) == y)
            .count();
        correct as f64 / points.len() as f64
    }
}

/// The KARL-served predictor: one kd-tree evaluator per pairwise model, so
/// every vote is answered by a fast TKAQ instead of a support-vector scan.
#[derive(Debug, Clone)]
pub struct FastMultiClass {
    classes: Vec<usize>,
    pairs: Vec<(usize, usize, KdEvaluator, f64)>,
}

impl FastMultiClass {
    /// Builds evaluators for every pairwise model.
    pub fn new(model: &MultiClassSvm, method: BoundMethod, leaf_capacity: usize) -> Self {
        let pairs = model
            .pairs
            .iter()
            .map(|(a, b, m)| {
                let eval =
                    Evaluator::build(m.support(), m.weights(), *m.kernel(), method, leaf_capacity);
                (*a, *b, eval, m.threshold())
            })
            .collect();
        Self {
            classes: model.classes.clone(),
            pairs,
        }
    }

    /// Predicts by majority vote over TKAQ answers. Produces exactly the
    /// same label as [`MultiClassSvm::predict`].
    pub fn predict(&self, q: &[f64]) -> usize {
        let mut votes = vec![0usize; self.classes.len()];
        for (a, b, eval, tau) in &self.pairs {
            let winner = if eval.tkaq(q, *tau) { a } else { b };
            let slot = self.classes.iter().position(|c| c == winner).expect("known class");
            votes[slot] += 1;
        }
        let best = votes
            .iter()
            .enumerate()
            .max_by(|(ia, va), (ib, vb)| va.cmp(vb).then(ib.cmp(ia)))
            .expect("at least one class")
            .0;
        self.classes[best]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use karl_core::Kernel;
    use karl_testkit::rng::StdRng;
    use karl_testkit::rng::{Rng, SeedableRng};

    /// Three well-separated blobs labeled 0/1/2.
    fn three_blobs(n: usize, seed: u64) -> (PointSet, Vec<usize>) {
        let centers = [(0.0, 0.0), (3.0, 0.0), (0.0, 3.0)];
        let mut rng = StdRng::seed_from_u64(seed);
        let mut data = Vec::with_capacity(n * 2);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let c = i % 3;
            data.push(centers[c].0 + rng.random_range(-0.4..0.4));
            data.push(centers[c].1 + rng.random_range(-0.4..0.4));
            labels.push(c);
        }
        (PointSet::new(2, data), labels)
    }

    #[test]
    fn three_class_training_and_voting() {
        let (x, y) = three_blobs(240, 1);
        let model = MultiClassSvm::train(&CSvc::new(5.0, Kernel::gaussian(1.0)), &x, &y);
        assert_eq!(model.classes(), &[0, 1, 2]);
        assert_eq!(model.pairs().len(), 3);
        assert!(model.accuracy(&x, &y) >= 0.98);
        // Cluster centers are classified as their own class.
        assert_eq!(model.predict(&[0.0, 0.0]), 0);
        assert_eq!(model.predict(&[3.0, 0.0]), 1);
        assert_eq!(model.predict(&[0.0, 3.0]), 2);
    }

    #[test]
    fn fast_predictor_matches_exact_predictor() {
        let (x, y) = three_blobs(300, 2);
        let model = MultiClassSvm::train(&CSvc::new(5.0, Kernel::gaussian(1.0)), &x, &y);
        let fast = FastMultiClass::new(&model, BoundMethod::Karl, 8);
        for i in 0..x.len() {
            let q = x.point(i);
            assert_eq!(fast.predict(q), model.predict(q), "vote diverged at {i}");
        }
    }

    #[test]
    fn non_contiguous_labels_work() {
        let (x, y3) = three_blobs(120, 3);
        let y: Vec<usize> = y3.iter().map(|&c| [7, 42, 99][c]).collect();
        let model = MultiClassSvm::train(&CSvc::new(5.0, Kernel::gaussian(1.0)), &x, &y);
        assert_eq!(model.classes(), &[7, 42, 99]);
        assert_eq!(model.predict(&[3.0, 0.0]), 42);
    }

    #[test]
    #[should_panic]
    fn single_class_panics() {
        let x = PointSet::new(1, vec![0.0, 1.0]);
        MultiClassSvm::train(&CSvc::new(1.0, Kernel::gaussian(1.0)), &x, &[5, 5]);
    }
}
