//! A sequential minimal optimization (SMO) solver for SVM duals.
//!
//! Solves the standard box-and-equality-constrained quadratic program that
//! both of this crate's trainers reduce to (the same formulation LIBSVM
//! uses):
//!
//! ```text
//! min_α   ½·αᵀQα + pᵀα
//! s.t.    yᵀα = Δ,     0 ≤ αᵢ ≤ Cᵢ,     yᵢ ∈ {+1, −1}
//! ```
//!
//! Working-set selection is the maximal-violating-pair rule (WSS1 of Fan,
//! Chen & Lin), with the analytic two-variable update and incremental
//! gradient maintenance. Kernel rows are served through an LRU row cache so
//! training stays `O(rows · n · d)` in kernel evaluations.

use crate::qmatrix::QMatrix;

/// Stopping tolerance and iteration budget for the solver.
#[derive(Debug, Clone, Copy)]
pub struct SmoConfig {
    /// KKT violation tolerance (LIBSVM's `-e`, default `1e-3`).
    pub eps: f64,
    /// Hard cap on iterations; `None` uses `max(10⁷, 100·n)`.
    pub max_iter: Option<usize>,
}

impl Default for SmoConfig {
    fn default() -> Self {
        Self {
            eps: 1e-3,
            max_iter: None,
        }
    }
}

/// The dual problem handed to the solver.
#[derive(Debug, Clone)]
pub struct SmoProblem {
    /// Linear term `p` (e.g. `−1` vector for C-SVC, `0` for one-class).
    pub p: Vec<f64>,
    /// Labels `yᵢ ∈ {+1, −1}`.
    pub y: Vec<f64>,
    /// Per-variable upper bounds `Cᵢ`.
    pub c: Vec<f64>,
    /// Feasible starting point (must satisfy the box and equality
    /// constraints).
    pub init_alpha: Vec<f64>,
}

/// Solver output.
#[derive(Debug, Clone)]
pub struct SmoSolution {
    /// Optimal dual variables.
    pub alpha: Vec<f64>,
    /// The offset `ρ` of the decision function `Σ yᵢαᵢK(·,xᵢ) − ρ`.
    pub rho: f64,
    /// Final dual objective value.
    pub objective: f64,
    /// Iterations executed.
    pub iterations: usize,
    /// Whether the KKT tolerance was reached within the iteration budget.
    pub converged: bool,
}

const TAU: f64 = 1e-12;

/// Runs SMO on `problem` over the kernel matrix `q`.
///
/// # Panics
/// Panics if the problem vectors disagree in length with `q.n()`, a label
/// is not `±1`, or the starting point is infeasible.
pub fn solve(q: &mut dyn QMatrix, problem: &SmoProblem, config: &SmoConfig) -> SmoSolution {
    let n = q.n();
    assert_eq!(problem.p.len(), n, "p length mismatch");
    assert_eq!(problem.y.len(), n, "y length mismatch");
    assert_eq!(problem.c.len(), n, "c length mismatch");
    assert_eq!(problem.init_alpha.len(), n, "alpha length mismatch");
    for (&yi, (&ci, &ai)) in problem.y.iter().zip(problem.c.iter().zip(&problem.init_alpha)) {
        assert!(yi == 1.0 || yi == -1.0, "labels must be ±1");
        assert!(ci >= 0.0, "box bounds must be non-negative");
        assert!(
            (-1e-9..=ci + 1e-9).contains(&ai),
            "starting point outside the box"
        );
    }

    let mut alpha = problem.init_alpha.clone();
    let y = &problem.y;
    let c = &problem.c;

    // G_i = Σ_j Q_ij α_j + p_i
    let mut grad = problem.p.clone();
    {
        let mut row = vec![0.0; n];
        #[allow(clippy::needless_range_loop)] // j indexes alpha and selects rows
        for j in 0..n {
            if alpha[j] != 0.0 {
                q.row(j, &mut row);
                let aj = alpha[j];
                for i in 0..n {
                    grad[i] += row[i] * aj;
                }
            }
        }
    }

    let max_iter = config.max_iter.unwrap_or_else(|| 10_000_000.max(100 * n));
    let mut iterations = 0;
    let mut converged = false;
    let mut row_i = vec![0.0; n];
    let mut row_j = vec![0.0; n];

    while iterations < max_iter {
        // Maximal violating pair.
        let mut g_max = f64::NEG_INFINITY;
        let mut g_min = f64::INFINITY;
        let mut i_sel = usize::MAX;
        let mut j_sel = usize::MAX;
        for t in 0..n {
            let yt = y[t];
            let up = (yt > 0.0 && alpha[t] < c[t]) || (yt < 0.0 && alpha[t] > 0.0);
            let low = (yt > 0.0 && alpha[t] > 0.0) || (yt < 0.0 && alpha[t] < c[t]);
            let v = -yt * grad[t];
            if up && v > g_max {
                g_max = v;
                i_sel = t;
            }
            if low && v < g_min {
                g_min = v;
                j_sel = t;
            }
        }
        if i_sel == usize::MAX || j_sel == usize::MAX || g_max - g_min <= config.eps {
            converged = i_sel == usize::MAX || j_sel == usize::MAX || g_max - g_min <= config.eps;
            break;
        }
        iterations += 1;
        let (i, j) = (i_sel, j_sel);
        q.row(i, &mut row_i);
        q.row(j, &mut row_j);

        let old_ai = alpha[i];
        let old_aj = alpha[j];
        if y[i] != y[j] {
            let mut quad = q.diag(i) + q.diag(j) + 2.0 * row_i[j];
            if quad <= 0.0 {
                quad = TAU;
            }
            let delta = (-grad[i] - grad[j]) / quad;
            let diff = alpha[i] - alpha[j];
            alpha[i] += delta;
            alpha[j] += delta;
            if diff > 0.0 {
                if alpha[j] < 0.0 {
                    alpha[j] = 0.0;
                    alpha[i] = diff;
                }
            } else if alpha[i] < 0.0 {
                alpha[i] = 0.0;
                alpha[j] = -diff;
            }
            if diff > c[i] - c[j] {
                if alpha[i] > c[i] {
                    alpha[i] = c[i];
                    alpha[j] = c[i] - diff;
                }
            } else if alpha[j] > c[j] {
                alpha[j] = c[j];
                alpha[i] = c[j] + diff;
            }
        } else {
            let mut quad = q.diag(i) + q.diag(j) - 2.0 * row_i[j];
            if quad <= 0.0 {
                quad = TAU;
            }
            let delta = (grad[i] - grad[j]) / quad;
            let sum = alpha[i] + alpha[j];
            alpha[i] -= delta;
            alpha[j] += delta;
            if sum > c[i] {
                if alpha[i] > c[i] {
                    alpha[i] = c[i];
                    alpha[j] = sum - c[i];
                }
            } else if alpha[j] < 0.0 {
                alpha[j] = 0.0;
                alpha[i] = sum;
            }
            if sum > c[j] {
                if alpha[j] > c[j] {
                    alpha[j] = c[j];
                    alpha[i] = sum - c[j];
                }
            } else if alpha[i] < 0.0 {
                alpha[i] = 0.0;
                alpha[j] = sum;
            }
        }

        let d_ai = alpha[i] - old_ai;
        let d_aj = alpha[j] - old_aj;
        if d_ai != 0.0 || d_aj != 0.0 {
            for t in 0..n {
                grad[t] += row_i[t] * d_ai + row_j[t] * d_aj;
            }
        }
    }

    let rho = compute_rho(&alpha, y, c, &grad, config.eps);
    let objective = {
        // ½αᵀQα + pᵀα = ½ Σ αᵢ(Gᵢ + pᵢ)
        let mut obj = 0.0;
        for i in 0..n {
            obj += alpha[i] * (grad[i] + problem.p[i]);
        }
        obj / 2.0
    };

    SmoSolution {
        alpha,
        rho,
        objective,
        iterations,
        converged,
    }
}

/// LIBSVM's ρ rule: average `y·G` over the free support vectors, falling
/// back to the midpoint of the boundary bracket when none are free.
fn compute_rho(alpha: &[f64], y: &[f64], c: &[f64], grad: &[f64], _eps: f64) -> f64 {
    let mut ub = f64::INFINITY;
    let mut lb = f64::NEG_INFINITY;
    let mut sum_free = 0.0;
    let mut n_free = 0usize;
    for i in 0..alpha.len() {
        let yg = y[i] * grad[i];
        if alpha[i] >= c[i] {
            if y[i] < 0.0 {
                ub = ub.min(yg);
            } else {
                lb = lb.max(yg);
            }
        } else if alpha[i] <= 0.0 {
            if y[i] > 0.0 {
                ub = ub.min(yg);
            } else {
                lb = lb.max(yg);
            }
        } else {
            n_free += 1;
            sum_free += yg;
        }
    }
    if n_free > 0 {
        sum_free / n_free as f64
    } else {
        (ub + lb) / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qmatrix::{DenseQ, KernelQ};
    use karl_core::Kernel;
    use karl_geom::PointSet;

    /// A tiny hand-checkable problem: two points, labels +1/−1, linear-ish
    /// separable via the Gaussian kernel.
    #[test]
    fn two_point_problem_converges() {
        let ps = PointSet::new(1, vec![-1.0, 1.0]);
        let y = vec![1.0, -1.0];
        let mut q = KernelQ::new(ps, Kernel::gaussian(0.5), y.clone(), 16 << 20);
        let problem = SmoProblem {
            p: vec![-1.0, -1.0],
            y,
            c: vec![1.0, 1.0],
            init_alpha: vec![0.0, 0.0],
        };
        let sol = solve(&mut q, &problem, &SmoConfig::default());
        assert!(sol.converged);
        // Equality constraint preserved.
        let eq: f64 = sol.alpha[0] - sol.alpha[1];
        assert!(eq.abs() < 1e-9);
        assert!(sol.alpha.iter().all(|&a| (0.0..=1.0 + 1e-9).contains(&a)));
        // Symmetric data → decision boundary at 0 → ρ ≈ 0.
        assert!(sol.rho.abs() < 1e-6);
    }

    #[test]
    fn solution_satisfies_kkt_tolerance() {
        // Random-ish dense PSD matrix via Gram construction.
        let n = 12;
        let mut gram = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                let v = ((i * 7 + j * 3) % 11) as f64 / 11.0;
                gram[i * n + j] = v;
            }
        }
        // Symmetrize and make diagonally dominant (PSD enough for the test).
        let mut qm = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                qm[i * n + j] = 0.5 * (gram[i * n + j] + gram[j * n + i]);
            }
            qm[i * n + i] += 3.0;
        }
        let y: Vec<f64> = (0..n).map(|i| if i % 2 == 0 { 1.0 } else { -1.0 }).collect();
        // Q must incorporate labels for the C-SVC form: Q_ij = y_i y_j K_ij.
        for i in 0..n {
            for j in 0..n {
                qm[i * n + j] *= y[i] * y[j];
            }
        }
        let mut q = DenseQ::new(n, qm);
        let problem = SmoProblem {
            p: vec![-1.0; n],
            y: y.clone(),
            c: vec![0.7; n],
            init_alpha: vec![0.0; n],
        };
        let cfg = SmoConfig {
            eps: 1e-6,
            max_iter: None,
        };
        let sol = solve(&mut q, &problem, &cfg);
        assert!(sol.converged);
        // Recompute the gradient and check the violating-pair gap.
        let mut grad = problem.p.clone();
        let mut row = vec![0.0; n];
        for j in 0..n {
            q.row(j, &mut row);
            for i in 0..n {
                grad[i] += row[i] * sol.alpha[j];
            }
        }
        let mut g_max = f64::NEG_INFINITY;
        let mut g_min = f64::INFINITY;
        for t in 0..n {
            let up = (y[t] > 0.0 && sol.alpha[t] < 0.7) || (y[t] < 0.0 && sol.alpha[t] > 0.0);
            let low = (y[t] > 0.0 && sol.alpha[t] > 0.0) || (y[t] < 0.0 && sol.alpha[t] < 0.7);
            let v = -y[t] * grad[t];
            if up {
                g_max = g_max.max(v);
            }
            if low {
                g_min = g_min.min(v);
            }
        }
        assert!(g_max - g_min <= 1e-6 + 1e-9, "KKT gap {}", g_max - g_min);
        // Equality constraint.
        let eq: f64 = sol.alpha.iter().zip(&y).map(|(a, yy)| a * yy).sum();
        assert!(eq.abs() < 1e-9);
    }

    #[test]
    fn objective_never_exceeds_feasible_start() {
        // Start from a feasible non-zero point; the solver must not end
        // with a worse dual objective.
        let n = 8;
        let ps = PointSet::new(
            2,
            (0..n * 2).map(|i| (i as f64 * 0.37).sin()).collect::<Vec<_>>(),
        );
        let y: Vec<f64> = (0..n).map(|i| if i < n / 2 { 1.0 } else { -1.0 }).collect();
        let init: Vec<f64> = vec![0.5; n]; // yᵀα = 0 because classes balance
        let mut q = KernelQ::new(ps, Kernel::gaussian(1.0), y.clone(), 16 << 20);
        let objective_at = |q: &mut KernelQ, a: &[f64]| {
            let mut row = vec![0.0; n];
            let mut obj = 0.0;
            for i in 0..n {
                q.row(i, &mut row);
                for j in 0..n {
                    obj += 0.5 * a[i] * a[j] * row[j];
                }
                obj += -a[i];
            }
            obj
        };
        let start_obj = objective_at(&mut q, &init);
        let problem = SmoProblem {
            p: vec![-1.0; n],
            y,
            c: vec![1.0; n],
            init_alpha: init,
        };
        let sol = solve(&mut q, &problem, &SmoConfig::default());
        assert!(sol.objective <= start_obj + 1e-9);
    }

    #[test]
    #[should_panic]
    fn bad_labels_panic() {
        let mut q = DenseQ::new(2, vec![1.0, 0.0, 0.0, 1.0]);
        let problem = SmoProblem {
            p: vec![0.0; 2],
            y: vec![1.0, 2.0],
            c: vec![1.0; 2],
            init_alpha: vec![0.0; 2],
        };
        solve(&mut q, &problem, &SmoConfig::default());
    }
}
