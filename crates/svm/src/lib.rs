//! # karl-svm — SVM training substrate
//!
//! The paper's Type II and Type III workloads come out of SVM training
//! (LIBSVM in the original evaluation). This crate is a from-scratch SMO
//! implementation of the two trainers the paper uses:
//!
//! * [`CSvc`] — 2-class soft-margin classification → signed weights
//!   `wᵢ = yᵢαᵢ` (Type III weighting) and threshold `ρ`.
//! * [`OneClassSvm`] — Schölkopf's ν-SVM for novelty detection → positive
//!   weights `wᵢ = αᵢ` (Type II weighting) and threshold `ρ`.
//!
//! Both produce an [`SvmModel`] whose `(support, weights, threshold,
//! kernel)` quadruple plugs directly into a `karl_core` evaluator: the
//! online classification of a query point is exactly the threshold kernel
//! aggregation query `F_P(q) ≥ ρ`.
//!
//! ```
//! use karl_core::{BoundMethod, Evaluator, Kernel};
//! use karl_geom::{PointSet, Rect};
//! use karl_svm::CSvc;
//!
//! // Two separable blobs.
//! let mut rows = Vec::new();
//! let mut labels = Vec::new();
//! for i in 0..40 {
//!     let c = if i % 2 == 0 { 1.0 } else { -1.0 };
//!     rows.push(vec![c + 0.1 * (i as f64).sin(), c + 0.1 * (i as f64).cos()]);
//!     labels.push(c);
//! }
//! let points = PointSet::from_rows(&rows);
//! let model = CSvc::new(10.0, Kernel::gaussian(0.5)).train(&points, &labels);
//!
//! // Serve classifications through KARL's fast TKAQ path.
//! let eval = Evaluator::<Rect>::build(
//!     model.support(), model.weights(), *model.kernel(),
//!     BoundMethod::Karl, 8);
//! let q = [1.0, 1.0];
//! assert_eq!(eval.tkaq(&q, model.threshold()), model.predict(&q));
//! ```

pub mod csvc;
pub mod libsvm_format;
pub mod model;
pub mod multiclass;
pub mod one_class;
pub mod qmatrix;
pub mod smo;

pub use csvc::CSvc;
pub use libsvm_format::{
    from_libsvm_string, load_model, save_model, to_libsvm_string, ModelFormatError, SvmType,
};
pub use model::SvmModel;
pub use multiclass::{FastMultiClass, MultiClassSvm};
pub use one_class::OneClassSvm;
pub use qmatrix::{DenseQ, KernelQ, QMatrix};
pub use smo::{solve, SmoConfig, SmoProblem, SmoSolution};
