//! Kernel (Q) matrix abstraction with an LRU row cache.
//!
//! SMO touches the kernel matrix one row at a time; materializing the full
//! `n × n` matrix is wasteful for all but tiny problems. [`KernelQ`] serves
//! rows `Q_ij = yᵢyⱼK(xᵢ, xⱼ)` computed on demand and keeps the most
//! recently used ones inside a byte budget, which is exactly LIBSVM's
//! caching strategy.

use std::collections::HashMap;

use karl_core::Kernel;
use karl_geom::PointSet;

/// A symmetric matrix the SMO solver reads row-wise.
pub trait QMatrix {
    /// Problem size.
    fn n(&self) -> usize;
    /// Copies row `i` into `out` (`out.len() == n()`).
    fn row(&mut self, i: usize, out: &mut [f64]);
    /// Diagonal entry `Q_ii`.
    fn diag(&self, i: usize) -> f64;
}

/// A fully materialized dense matrix (tests and tiny problems).
#[derive(Debug, Clone)]
pub struct DenseQ {
    n: usize,
    data: Vec<f64>,
}

impl DenseQ {
    /// Wraps a row-major `n × n` buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != n²`.
    pub fn new(n: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), n * n, "DenseQ requires an n×n buffer");
        Self { n, data }
    }
}

impl QMatrix for DenseQ {
    fn n(&self) -> usize {
        self.n
    }

    fn row(&mut self, i: usize, out: &mut [f64]) {
        out.copy_from_slice(&self.data[i * self.n..(i + 1) * self.n]);
    }

    fn diag(&self, i: usize) -> f64 {
        self.data[i * self.n + i]
    }
}

/// Label-signed kernel matrix `Q_ij = yᵢ·yⱼ·K(xᵢ, xⱼ)` with an LRU row
/// cache.
pub struct KernelQ {
    points: PointSet,
    norms2: Vec<f64>,
    kernel: Kernel,
    y: Vec<f64>,
    diag: Vec<f64>,
    cache: HashMap<usize, (u64, Vec<f64>)>,
    clock: u64,
    max_rows: usize,
}

impl KernelQ {
    /// Creates a cached Q matrix. `cache_bytes` bounds the row cache
    /// (LIBSVM's `-m`, here in bytes; at least one row is always kept).
    ///
    /// # Panics
    /// Panics if `y.len() != points.len()` or `points` is empty.
    pub fn new(points: PointSet, kernel: Kernel, y: Vec<f64>, cache_bytes: usize) -> Self {
        assert_eq!(y.len(), points.len(), "labels/points length mismatch");
        assert!(!points.is_empty(), "empty training set");
        let n = points.len();
        let norms2 = points.squared_norms();
        let mut diag = vec![0.0; n];
        for i in 0..n {
            let p = points.point(i);
            diag[i] = kernel.eval_cached(p, norms2[i], p, norms2[i]); // y_i² = 1
        }
        let row_bytes = n * std::mem::size_of::<f64>();
        let max_rows = (cache_bytes / row_bytes.max(1)).max(2);
        Self {
            points,
            norms2,
            kernel,
            y,
            diag,
            cache: HashMap::new(),
            clock: 0,
            max_rows,
        }
    }

    fn compute_row(&self, i: usize) -> Vec<f64> {
        let n = self.points.len();
        let xi = self.points.point(i);
        let ni = self.norms2[i];
        let yi = self.y[i];
        let mut row = Vec::with_capacity(n);
        for j in 0..n {
            let k = self
                .kernel
                .eval_cached(xi, ni, self.points.point(j), self.norms2[j]);
            row.push(yi * self.y[j] * k);
        }
        row
    }

    /// Number of rows currently cached (diagnostics).
    pub fn cached_rows(&self) -> usize {
        self.cache.len()
    }
}

impl QMatrix for KernelQ {
    fn n(&self) -> usize {
        self.points.len()
    }

    fn row(&mut self, i: usize, out: &mut [f64]) {
        self.clock += 1;
        let clock = self.clock;
        if let Some((stamp, row)) = self.cache.get_mut(&i) {
            *stamp = clock;
            out.copy_from_slice(row);
            return;
        }
        let row = self.compute_row(i);
        out.copy_from_slice(&row);
        if self.cache.len() >= self.max_rows {
            // Evict the least recently used row.
            if let Some((&victim, _)) = self.cache.iter().min_by_key(|(_, (stamp, _))| *stamp) {
                self.cache.remove(&victim);
            }
        }
        self.cache.insert(i, (clock, row));
    }

    fn diag(&self, i: usize) -> f64 {
        self.diag[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_q() -> KernelQ {
        let ps = PointSet::new(2, vec![0.0, 0.0, 1.0, 0.0, 0.0, 2.0, -1.0, 1.0]);
        let y = vec![1.0, -1.0, 1.0, -1.0];
        KernelQ::new(ps, Kernel::gaussian(0.5), y, 1 << 20)
    }

    #[test]
    fn rows_are_symmetric_and_signed() {
        let mut q = sample_q();
        let n = q.n();
        let mut rows = Vec::new();
        for i in 0..n {
            let mut r = vec![0.0; n];
            q.row(i, &mut r);
            rows.push(r);
        }
        #[allow(clippy::needless_range_loop)] // symmetric double index
        for i in 0..n {
            for j in 0..n {
                assert!((rows[i][j] - rows[j][i]).abs() < 1e-12);
            }
            assert!((rows[i][i] - q.diag(i)).abs() < 1e-12);
        }
        // Mixed labels flip signs off the diagonal.
        assert!(rows[0][1] < 0.0);
        assert!(rows[0][2] > 0.0);
    }

    #[test]
    fn diag_is_kernel_self_similarity() {
        let q = sample_q();
        for i in 0..q.n() {
            assert!((q.diag(i) - 1.0).abs() < 1e-12, "Gaussian K(x,x) = 1");
        }
    }

    #[test]
    fn lru_eviction_keeps_results_consistent() {
        let n = 50;
        let ps = PointSet::new(
            1,
            (0..n).map(|i| i as f64 / n as f64).collect::<Vec<_>>(),
        );
        let y = vec![1.0; n];
        // Budget of ~3 rows.
        let mut q = KernelQ::new(ps, Kernel::gaussian(2.0), y, 3 * n * 8);
        let mut first = vec![0.0; n];
        q.row(7, &mut first);
        // Thrash the cache.
        let mut tmp = vec![0.0; n];
        for i in 0..n {
            q.row(i, &mut tmp);
        }
        assert!(q.cached_rows() <= 3);
        let mut again = vec![0.0; n];
        q.row(7, &mut again);
        assert_eq!(first, again);
    }

    #[test]
    fn dense_q_roundtrip() {
        let mut q = DenseQ::new(2, vec![2.0, -1.0, -1.0, 2.0]);
        assert_eq!(q.n(), 2);
        assert_eq!(q.diag(1), 2.0);
        let mut r = vec![0.0; 2];
        q.row(0, &mut r);
        assert_eq!(r, vec![2.0, -1.0]);
    }
}
