//! 1-class ν-SVM training (the Type II weighting source of the paper).

use karl_core::Kernel;
use karl_geom::PointSet;

use crate::model::SvmModel;
use crate::qmatrix::KernelQ;
use crate::smo::{solve, SmoConfig, SmoProblem};

/// Schölkopf's one-class SVM for novelty/outlier detection (LIBSVM's
/// `-s 2`).
///
/// Solves `min ½αᵀQα` s.t. `eᵀα = ν·n`, `0 ≤ αᵢ ≤ 1`, with `Q_ij =
/// K(xᵢ, xⱼ)`. The decision function `Σ αᵢK(q, xᵢ) ≥ ρ` accepts inliers;
/// all weights are positive — a Type II aggregation query.
#[derive(Debug, Clone)]
pub struct OneClassSvm {
    /// The ν parameter: an upper bound on the training outlier fraction and
    /// a lower bound on the support-vector fraction. `0 < ν ≤ 1`.
    pub nu: f64,
    /// Kernel function.
    pub kernel: Kernel,
    /// Solver tolerances.
    pub config: SmoConfig,
    /// Kernel-row cache budget in bytes.
    pub cache_bytes: usize,
}

impl OneClassSvm {
    /// A trainer with LIBSVM-like defaults.
    ///
    /// # Panics
    /// Panics unless `0 < nu ≤ 1`.
    pub fn new(nu: f64, kernel: Kernel) -> Self {
        assert!(nu > 0.0 && nu <= 1.0, "nu must be in (0, 1]");
        Self {
            nu,
            kernel,
            config: SmoConfig::default(),
            cache_bytes: 64 << 20,
        }
    }

    /// Trains on the (unlabeled) `points`.
    ///
    /// # Panics
    /// Panics if `points` is empty.
    pub fn train(&self, points: &PointSet) -> SvmModel {
        assert!(!points.is_empty(), "empty training set");
        let n = points.len();
        // LIBSVM's feasible start: the first ⌊ν·n⌋ variables at their upper
        // bound, one fractional variable to hit Σα = ν·n exactly.
        let total = self.nu * n as f64;
        let full = total.floor() as usize;
        let mut init_alpha = vec![0.0; n];
        for a in init_alpha.iter_mut().take(full.min(n)) {
            *a = 1.0;
        }
        if full < n {
            init_alpha[full] = total - full as f64;
        }
        let y = vec![1.0; n];
        let mut q = KernelQ::new(points.clone(), self.kernel, y.clone(), self.cache_bytes);
        let problem = SmoProblem {
            p: vec![0.0; n],
            y,
            c: vec![1.0; n],
            init_alpha,
        };
        let sol = solve(&mut q, &problem, &self.config);

        let sv_idx: Vec<usize> = (0..n).filter(|&i| sol.alpha[i] > 1e-12).collect();
        assert!(!sv_idx.is_empty(), "degenerate model: no support vectors");
        let support = points.select(&sv_idx);
        let weights: Vec<f64> = sv_idx.iter().map(|&i| sol.alpha[i]).collect();
        SvmModel::new(support, weights, sol.rho, self.kernel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use karl_testkit::rng::StdRng;
    use karl_testkit::rng::{Rng, SeedableRng};

    fn blob(n: usize, seed: u64) -> PointSet {
        let mut rng = StdRng::seed_from_u64(seed);
        PointSet::new(
            2,
            (0..n * 2)
                .map(|_| rng.random_range(-0.5..0.5))
                .collect::<Vec<_>>(),
        )
    }

    #[test]
    fn inliers_accepted_outliers_rejected() {
        let ps = blob(300, 1);
        let model = OneClassSvm::new(0.1, Kernel::gaussian(1.0)).train(&ps);
        // The blob center is a confident inlier.
        assert!(model.predict(&[0.0, 0.0]));
        // A far-away point must be rejected.
        assert!(!model.predict(&[5.0, 5.0]));
    }

    #[test]
    fn weights_are_positive_type_ii() {
        let ps = blob(200, 2);
        let model = OneClassSvm::new(0.2, Kernel::gaussian(0.8)).train(&ps);
        assert!(model.weights().iter().all(|&w| w > 0.0));
        // Σα = ν·n is preserved by SMO's equality constraint.
        let sum: f64 = model.weights().iter().sum();
        assert!((sum - 0.2 * 200.0).abs() < 1e-6, "Σα = {sum}");
    }

    #[test]
    fn nu_bounds_training_outlier_fraction() {
        let ps = blob(400, 3);
        let nu = 0.15;
        let model = OneClassSvm::new(nu, Kernel::gaussian(1.5)).train(&ps);
        let rejected = ps.iter().filter(|p| !model.predict(p)).count();
        let frac = rejected as f64 / ps.len() as f64;
        // ν upper-bounds the fraction of margin errors (allow solver slack).
        assert!(frac <= nu + 0.05, "rejected fraction {frac} > ν {nu}");
        // …and lower-bounds the support-vector fraction.
        assert!(model.num_support() as f64 / ps.len() as f64 >= nu - 0.05);
    }

    #[test]
    #[should_panic]
    fn invalid_nu_panics() {
        OneClassSvm::new(0.0, Kernel::gaussian(1.0));
    }
}
