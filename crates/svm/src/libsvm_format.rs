//! LIBSVM model-file interchange.
//!
//! Writes and reads trained models in LIBSVM's `svm-train` model format so
//! models move freely between this library and the LIBSVM ecosystem:
//!
//! ```text
//! svm_type c_svc            (or one_class)
//! kernel_type rbf           (rbf | polynomial | sigmoid)
//! gamma 0.25                (+ degree/coef0 where applicable)
//! nr_class 2
//! total_sv 3
//! rho 0.5
//! SV
//! 0.75 1:0.1 2:-0.3
//! …
//! ```
//!
//! Each SV line is `weight idx:val …` with 1-based sparse indices — the
//! weight is `yᵢαᵢ` for C-SVC and `αᵢ` for one-class, i.e. exactly the
//! aggregation weights of the TKAQ this model becomes.

use std::fmt;
use std::fs;
use std::path::Path;

use karl_core::Kernel;
use karl_geom::PointSet;

use crate::model::SvmModel;

/// Errors from model (de)serialization.
#[derive(Debug)]
pub enum ModelFormatError {
    /// Underlying file I/O failure.
    Io(std::io::Error),
    /// A header line was malformed or a value failed to parse.
    BadHeader(String),
    /// Unsupported `svm_type`/`kernel_type` combination.
    Unsupported(String),
    /// An SV line was malformed.
    BadSv {
        /// 1-based SV line number (after the `SV` marker).
        line: usize,
        /// Explanation.
        what: String,
    },
    /// The file declared no support vectors.
    Empty,
}

impl fmt::Display for ModelFormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelFormatError::Io(e) => write!(f, "I/O error: {e}"),
            ModelFormatError::BadHeader(s) => write!(f, "bad header line: {s}"),
            ModelFormatError::Unsupported(s) => write!(f, "unsupported model: {s}"),
            ModelFormatError::BadSv { line, what } => write!(f, "SV line {line}: {what}"),
            ModelFormatError::Empty => write!(f, "model has no support vectors"),
        }
    }
}

impl std::error::Error for ModelFormatError {}

impl From<std::io::Error> for ModelFormatError {
    fn from(e: std::io::Error) -> Self {
        ModelFormatError::Io(e)
    }
}

/// Which LIBSVM `svm_type` a model carries (affects only the header; the
/// aggregation form is identical).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SvmType {
    /// 2-class C-SVC (`c_svc`).
    CSvc,
    /// 1-class ν-SVM (`one_class`).
    OneClass,
}

/// Serializes a model to LIBSVM's text format.
pub fn to_libsvm_string(model: &SvmModel, svm_type: SvmType) -> String {
    let mut out = String::new();
    out.push_str(match svm_type {
        SvmType::CSvc => "svm_type c_svc\n",
        SvmType::OneClass => "svm_type one_class\n",
    });
    match model.kernel() {
        Kernel::Gaussian { gamma } => {
            out.push_str("kernel_type rbf\n");
            out.push_str(&format!("gamma {gamma}\n"));
        }
        Kernel::Polynomial {
            gamma,
            coef0,
            degree,
        } => {
            out.push_str("kernel_type polynomial\n");
            out.push_str(&format!("degree {degree}\n"));
            out.push_str(&format!("gamma {gamma}\n"));
            out.push_str(&format!("coef0 {coef0}\n"));
        }
        Kernel::Sigmoid { gamma, coef0 } => {
            out.push_str("kernel_type sigmoid\n");
            out.push_str(&format!("gamma {gamma}\n"));
            out.push_str(&format!("coef0 {coef0}\n"));
        }
        Kernel::Laplacian { gamma } => {
            // Not a LIBSVM kernel; use a vendor extension tag read back by
            // this library only.
            out.push_str("kernel_type x_laplacian\n");
            out.push_str(&format!("gamma {gamma}\n"));
        }
    }
    out.push_str(&format!(
        "nr_class {}\n",
        if svm_type == SvmType::CSvc { 2 } else { 1 }
    ));
    out.push_str(&format!("total_sv {}\n", model.num_support()));
    out.push_str(&format!("rho {}\n", model.threshold()));
    out.push_str("SV\n");
    for (i, p) in model.support().iter().enumerate() {
        out.push_str(&format!("{}", model.weights()[i]));
        for (j, &x) in p.iter().enumerate() {
            if x != 0.0 {
                out.push_str(&format!(" {}:{}", j + 1, x));
            }
        }
        out.push('\n');
    }
    out
}

/// Writes a model file in LIBSVM's text format.
pub fn save_model(
    path: impl AsRef<Path>,
    model: &SvmModel,
    svm_type: SvmType,
) -> Result<(), ModelFormatError> {
    fs::write(path, to_libsvm_string(model, svm_type))?;
    Ok(())
}

/// Parses a model from LIBSVM's text format. `dims` may be provided to fix
/// the dimensionality (otherwise the maximum sparse index is used).
pub fn from_libsvm_string(
    text: &str,
    dims: Option<usize>,
) -> Result<(SvmModel, SvmType), ModelFormatError> {
    let mut svm_type = None;
    let mut kernel_type = None;
    let mut gamma = None;
    let mut coef0 = 0.0f64;
    let mut degree = 3u32;
    let mut rho = None;
    let mut lines = text.lines().enumerate();
    for (_, raw) in lines.by_ref() {
        let line = raw.trim();
        if line == "SV" {
            break;
        }
        if line.is_empty() {
            continue;
        }
        let Some((key, value)) = line.split_once(' ') else {
            return Err(ModelFormatError::BadHeader(line.to_string()));
        };
        match key {
            "svm_type" => {
                svm_type = Some(match value {
                    "c_svc" => SvmType::CSvc,
                    "one_class" => SvmType::OneClass,
                    other => return Err(ModelFormatError::Unsupported(other.to_string())),
                })
            }
            "kernel_type" => kernel_type = Some(value.to_string()),
            "gamma" => {
                gamma = Some(value.parse().map_err(|_| {
                    ModelFormatError::BadHeader(line.to_string())
                })?)
            }
            "coef0" => {
                coef0 = value
                    .parse()
                    .map_err(|_| ModelFormatError::BadHeader(line.to_string()))?
            }
            "degree" => {
                degree = value
                    .parse()
                    .map_err(|_| ModelFormatError::BadHeader(line.to_string()))?
            }
            "rho" => {
                rho = Some(value.parse().map_err(|_| {
                    ModelFormatError::BadHeader(line.to_string())
                })?)
            }
            // nr_class, total_sv, label, nr_sv: informational, ignored.
            _ => {}
        }
    }
    let svm_type = svm_type.ok_or_else(|| ModelFormatError::BadHeader("missing svm_type".into()))?;
    let gamma = gamma.ok_or_else(|| ModelFormatError::BadHeader("missing gamma".into()))?;
    let rho = rho.ok_or_else(|| ModelFormatError::BadHeader("missing rho".into()))?;
    let kernel = match kernel_type.as_deref() {
        Some("rbf") => Kernel::gaussian(gamma),
        Some("polynomial") => Kernel::polynomial(gamma, coef0, degree),
        Some("sigmoid") => Kernel::sigmoid(gamma, coef0),
        Some("x_laplacian") => Kernel::laplacian(gamma),
        other => {
            return Err(ModelFormatError::Unsupported(format!(
                "kernel_type {other:?}"
            )))
        }
    };

    // SV block.
    let mut weights = Vec::new();
    let mut sparse: Vec<Vec<(usize, f64)>> = Vec::new();
    let mut max_idx = 0usize;
    let mut sv_line = 0usize;
    for (_, raw) in lines {
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        sv_line += 1;
        let mut parts = line.split_whitespace();
        let w: f64 = parts
            .next()
            .and_then(|c| c.parse().ok())
            .ok_or(ModelFormatError::BadSv {
                line: sv_line,
                what: "missing weight".into(),
            })?;
        let mut feats = Vec::new();
        for pair in parts {
            let Some((idx, val)) = pair.split_once(':') else {
                return Err(ModelFormatError::BadSv {
                    line: sv_line,
                    what: format!("bad pair {pair:?}"),
                });
            };
            let idx: usize = idx.parse().map_err(|_| ModelFormatError::BadSv {
                line: sv_line,
                what: format!("bad index in {pair:?}"),
            })?;
            if idx == 0 {
                return Err(ModelFormatError::BadSv {
                    line: sv_line,
                    what: "indices are 1-based".into(),
                });
            }
            let val: f64 = val.parse().map_err(|_| ModelFormatError::BadSv {
                line: sv_line,
                what: format!("bad value in {pair:?}"),
            })?;
            max_idx = max_idx.max(idx);
            feats.push((idx - 1, val));
        }
        weights.push(w);
        sparse.push(feats);
    }
    if weights.is_empty() {
        return Err(ModelFormatError::Empty);
    }
    let dims = dims.unwrap_or(max_idx).max(1);
    let mut data = vec![0.0; weights.len() * dims];
    for (i, feats) in sparse.iter().enumerate() {
        for &(j, v) in feats {
            if j >= dims {
                return Err(ModelFormatError::BadSv {
                    line: i + 1,
                    what: format!("index {} exceeds dims {dims}", j + 1),
                });
            }
            data[i * dims + j] = v;
        }
    }
    let support = PointSet::new(dims, data);
    Ok((SvmModel::new(support, weights, rho, kernel), svm_type))
}

/// Reads a model file in LIBSVM's text format.
pub fn load_model(
    path: impl AsRef<Path>,
    dims: Option<usize>,
) -> Result<(SvmModel, SvmType), ModelFormatError> {
    from_libsvm_string(&fs::read_to_string(path)?, dims)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csvc::CSvc;
    use karl_testkit::rng::StdRng;
    use karl_testkit::rng::{Rng, SeedableRng};

    fn trained_model() -> SvmModel {
        let mut rng = StdRng::seed_from_u64(1);
        let mut data = Vec::new();
        let mut labels = Vec::new();
        for i in 0..80 {
            let c = if i % 2 == 0 { 1.0 } else { -1.0 };
            data.push(c + rng.random_range(-0.3..0.3));
            data.push(c + rng.random_range(-0.3..0.3));
            labels.push(c);
        }
        CSvc::new(5.0, Kernel::gaussian(0.7)).train(&PointSet::new(2, data), &labels)
    }

    #[test]
    fn roundtrip_preserves_decisions() {
        let model = trained_model();
        let text = to_libsvm_string(&model, SvmType::CSvc);
        let (back, ty) = from_libsvm_string(&text, Some(2)).unwrap();
        assert_eq!(ty, SvmType::CSvc);
        assert_eq!(back.num_support(), model.num_support());
        assert!((back.threshold() - model.threshold()).abs() < 1e-12);
        for q in [[0.9, 1.1], [-1.0, -0.8], [0.0, 0.0]] {
            assert!((back.decision(&q) - model.decision(&q)).abs() < 1e-9);
        }
    }

    #[test]
    fn header_contains_libsvm_fields() {
        let text = to_libsvm_string(&trained_model(), SvmType::CSvc);
        assert!(text.contains("svm_type c_svc"));
        assert!(text.contains("kernel_type rbf"));
        assert!(text.contains("rho "));
        assert!(text.contains("\nSV\n"));
    }

    #[test]
    fn polynomial_kernel_roundtrip() {
        let sv = PointSet::new(2, vec![0.5, -0.25, 0.0, 1.0]);
        let model = SvmModel::new(sv, vec![0.7, -0.4], 0.123, Kernel::polynomial(0.5, 1.0, 3));
        let text = to_libsvm_string(&model, SvmType::CSvc);
        let (back, _) = from_libsvm_string(&text, Some(2)).unwrap();
        assert!(matches!(
            back.kernel(),
            Kernel::Polynomial { degree: 3, .. }
        ));
        assert!((back.decision(&[0.2, 0.3]) - model.decision(&[0.2, 0.3])).abs() < 1e-9);
    }

    #[test]
    fn sparse_zero_features_restore_as_zero() {
        let sv = PointSet::new(3, vec![1.0, 0.0, 2.0]);
        let model = SvmModel::new(sv, vec![0.5], 0.0, Kernel::gaussian(1.0));
        let text = to_libsvm_string(&model, SvmType::OneClass);
        let (back, ty) = from_libsvm_string(&text, Some(3)).unwrap();
        assert_eq!(ty, SvmType::OneClass);
        assert_eq!(back.support().point(0), &[1.0, 0.0, 2.0]);
    }

    #[test]
    fn malformed_inputs_are_typed_errors() {
        assert!(matches!(
            from_libsvm_string("kernel_type rbf\ngamma 1\nrho 0\nSV\n0.5 1:1\n", None),
            Err(ModelFormatError::BadHeader(_))
        ));
        assert!(matches!(
            from_libsvm_string(
                "svm_type c_svc\nkernel_type weird\ngamma 1\nrho 0\nSV\n0.5 1:1\n",
                None
            ),
            Err(ModelFormatError::Unsupported(_))
        ));
        assert!(matches!(
            from_libsvm_string(
                "svm_type c_svc\nkernel_type rbf\ngamma 1\nrho 0\nSV\n0.5 0:1\n",
                None
            ),
            Err(ModelFormatError::BadSv { .. })
        ));
        assert!(matches!(
            from_libsvm_string("svm_type c_svc\nkernel_type rbf\ngamma 1\nrho 0\nSV\n", None),
            Err(ModelFormatError::Empty)
        ));
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("karl_model_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.txt");
        let model = trained_model();
        save_model(&path, &model, SvmType::CSvc).unwrap();
        let (back, _) = load_model(&path, Some(2)).unwrap();
        assert_eq!(back.num_support(), model.num_support());
        std::fs::remove_file(&path).ok();
    }
}
