//! Augmented hierarchical indexes for kernel aggregation queries.
//!
//! The paper's branch-and-bound framework (Section II-B) works over any
//! hierarchical index whose nodes carry a bounding volume plus the
//! aggregates needed by the bound functions. This crate provides the two
//! index families the paper (and Scikit-learn) use:
//!
//! * [`KdTree`] — nodes are axis-aligned bounding rectangles,
//! * [`BallTree`] — nodes are centroid bounding balls,
//!
//! both built by the same median split on the widest dimension, so the only
//! difference between the families is the node volume — exactly the degree
//! of freedom the paper's automatic index tuning (Section III-C) explores.
//!
//! Every node is augmented with the statistics of Lemma 2/5:
//! `W = Σ wᵢ`, `a = Σ wᵢ·pᵢ`, `b = Σ wᵢ·‖pᵢ‖²` and the point count, which
//! let the KARL linear bounds be evaluated in `O(d)` per node.
//!
//! Points are reordered at build time so that every subtree owns a
//! contiguous range of the point buffer; leaf refinement is then a linear
//! scan, and the "top-i-levels" tree views used by in-situ tuning fall out
//! for free (treat depth-`i` nodes as leaves).

pub mod error;
pub mod frozen;
pub mod persist;
pub mod stats;
pub mod tree;

pub use error::TreeError;
pub use frozen::{freeze_built, FrozenShapes, FrozenTree, NO_CHILD};
pub use persist::{
    index_file_info, load_index_file, write_index_file, IndexFileInfo, LeafData, LoadedIndex,
    LoadedSide, PersistError, SectionInfo, SideImage,
};
pub use stats::NodeStats;
pub use tree::{BallTree, KdTree, Node, NodeId, NodeShape, ShapeFamily, Tree};
