//! Versioned, checksummed on-disk format for frozen trees.
//!
//! A [`FrozenTree`] is already a handful of flat POD buffers, so its
//! persistent form is simply those buffers written **verbatim** (native
//! endianness, no per-element encoding) behind a fixed self-describing
//! header. Loading is the mirror image: one bulk read (or `mmap` under the
//! optional feature) into a 64-byte-aligned arena, a checksum pass, and
//! then zero-copy [`Buf`](karl_geom::Buf) views typed straight into the
//! arena — no per-node deserialization whatsoever, which is what makes
//! cold start ~free compared to rebuilding the tree.
//!
//! ## Layout (format version 1)
//!
//! ```text
//! offset  size  field
//! 0       8     magic "KARLIDX1"
//! 8       4     format version (u32, native endian) = 1
//! 12      4     endianness tag (u32) = 0x01020304 as written
//! 16      8     checksum: XXH64(bytes[64..], seed 0)
//! 24      4     dims (u32)
//! 28      4     family (u32): 0 = rect/kd, 1 = ball
//! 32      4     section count (u32)
//! 36      4     reserved (0)
//! 40      8     file length (u64)
//! 48      16    reserved (0)
//! 64      32×k  section table: {kind u32, elem u32, offset u64, bytes u64,
//!               count u64} per section
//! …             section payloads, each 64-byte aligned, zero padded
//! ```
//!
//! The endianness tag reads back as `0x04030201` on a foreign-endian host,
//! which the loader rejects up front — byte-swapping would defeat the
//! zero-copy point of the format. The checksum covers everything after the
//! header (table + payloads), so a flipped bit anywhere in the payload is
//! caught before any typed view is created; the header fields themselves
//! are each individually validated. Sections are 64-byte aligned so every
//! payload is aligned for its element type (and starts on a cache line)
//! inside the page-aligned arena.
//!
//! An index file carries one or two *sides* (the evaluator's P⁺/P⁻ split):
//! per side the eleven frozen node buffers plus the four leaf-refinement
//! buffers (reordered points, weights, squared norms, permutation) of the
//! originating tree — everything a query needs. An opaque `meta` section
//! lets the layer above (karl-core) record kernel/method/tuning state.

use std::path::Path;
use std::sync::Arc;

use karl_geom::{AlignedBytes, Buf, Pod, PointSet};

use crate::frozen::{FrozenShapes, FrozenTree, NO_CHILD};
use crate::tree::{NodeShape, ShapeFamily, Tree};

/// Magic bytes at offset 0 of every index file.
pub const MAGIC: [u8; 8] = *b"KARLIDX1";
/// The one format version this build reads and writes.
pub const FORMAT_VERSION: u32 = 1;
/// Endianness tag as written by the producing host.
pub const ENDIAN_TAG: u32 = 0x0102_0304;
/// The tag value a foreign-endian host observes.
const ENDIAN_TAG_SWAPPED: u32 = 0x0403_0201;
/// Header length in bytes; the checksum covers everything after it.
pub const HEADER_LEN: usize = 64;
/// Section payload (and arena) alignment in bytes.
pub const SECTION_ALIGN: usize = 64;
/// Byte length of one section-table entry.
const SECTION_ENTRY_LEN: usize = 32;

/// Section kind: opaque application metadata (written by karl-core).
pub const KIND_META: u32 = 0x0001;
/// Section kind base for the positive-weight side.
pub const KIND_POS: u32 = 0x0100;
/// Section kind base for the negative-weight side.
pub const KIND_NEG: u32 = 0x0200;
const SIDE_MASK: u32 = 0xFF00;

// Per-side field ids (added to the side base).
const F_SHAPE_A: u32 = 0; // rect lo / ball center
const F_SHAPE_B: u32 = 1; // rect hi / ball radius
const F_WEIGHT_SUM: u32 = 2;
const F_WEIGHTED_SUM: u32 = 3;
const F_WEIGHTED_NORM2: u32 = 4;
const F_COUNT: u32 = 5;
const F_DEPTH: u32 = 6;
const F_START: u32 = 7;
const F_END: u32 = 8;
const F_LEFT: u32 = 9;
const F_RIGHT: u32 = 10;
const F_POINTS: u32 = 11;
const F_WEIGHTS: u32 = 12;
const F_NORMS2: u32 = 13;
const F_PERM: u32 = 14;
const SIDE_FIELDS: u32 = 15;

// Element-type tags in section entries.
const ELEM_F64: u32 = 1;
const ELEM_U32: u32 = 2;
const ELEM_U16: u32 = 3;
const ELEM_U8: u32 = 4;

/// Errors from writing, loading or inspecting index files. Mapped onto
/// `KarlError` variants by karl-core at the public evaluator boundary.
#[derive(Debug, Clone, PartialEq)]
pub enum PersistError {
    /// An OS-level I/O failure (open/read/write), with the failing
    /// operation and the OS error text.
    Io {
        /// Which operation failed.
        op: &'static str,
        /// OS error rendering.
        reason: String,
    },
    /// The file ends before the bytes the header (or the header itself)
    /// requires.
    Truncated {
        /// Bytes required.
        needed: u64,
        /// Bytes actually present.
        got: u64,
    },
    /// A structurally invalid file: bad magic, foreign endianness,
    /// inconsistent section table, or malformed tree topology.
    Format {
        /// Human-readable description of the violation.
        reason: String,
    },
    /// The payload checksum did not match the header.
    ChecksumMismatch {
        /// Checksum recorded in the header.
        expected: u64,
        /// Checksum computed over the payload.
        got: u64,
    },
    /// The file's format version is not supported by this build.
    VersionUnsupported {
        /// Version found in the header.
        found: u32,
        /// Highest version this build supports.
        supported: u32,
    },
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io { op, reason } => write!(f, "index file {op} failed: {reason}"),
            PersistError::Truncated { needed, got } => write!(
                f,
                "index file truncated: need {needed} bytes, found {got}"
            ),
            PersistError::Format { reason } => write!(f, "invalid index file: {reason}"),
            PersistError::ChecksumMismatch { expected, got } => write!(
                f,
                "index file checksum mismatch: header records {expected:#018x}, payload hashes to {got:#018x}"
            ),
            PersistError::VersionUnsupported { found, supported } => write!(
                f,
                "index format version {found} unsupported (this build reads up to {supported})"
            ),
        }
    }
}

impl std::error::Error for PersistError {}

fn io_err(op: &'static str, e: std::io::Error) -> PersistError {
    PersistError::Io {
        op,
        reason: e.to_string(),
    }
}

fn format_err(reason: impl Into<String>) -> PersistError {
    PersistError::Format {
        reason: reason.into(),
    }
}

// ---------------------------------------------------------------------------
// XXH64 (in-tree; the workspace is registry-free)
// ---------------------------------------------------------------------------

const P1: u64 = 0x9E37_79B1_85EB_CA87;
const P2: u64 = 0xC2B2_AE3D_27D4_EB4F;
const P3: u64 = 0x1656_67B1_9E37_79F9;
const P4: u64 = 0x85EB_CA77_C2B2_AE63;
const P5: u64 = 0x27D4_EB2F_1656_67C5;

#[inline]
fn xxh_round(acc: u64, input: u64) -> u64 {
    acc.wrapping_add(input.wrapping_mul(P2))
        .rotate_left(31)
        .wrapping_mul(P1)
}

#[inline]
fn xxh_merge(acc: u64, val: u64) -> u64 {
    (acc ^ xxh_round(0, val)).wrapping_mul(P1).wrapping_add(P4)
}

#[inline]
fn load_u64(b: &[u8], i: usize) -> u64 {
    u64::from_le_bytes(b[i..i + 8].try_into().unwrap())
}

#[inline]
fn load_u32(b: &[u8], i: usize) -> u32 {
    u32::from_le_bytes(b[i..i + 4].try_into().unwrap())
}

/// The XXH64 hash of `data` with `seed`, implemented from the reference
/// specification (little-endian lane loads, so the digest is
/// host-independent even though the payload it guards is not).
pub fn xxh64(data: &[u8], seed: u64) -> u64 {
    let n = data.len();
    let mut i = 0usize;
    let mut h: u64;
    if n >= 32 {
        let mut v1 = seed.wrapping_add(P1).wrapping_add(P2);
        let mut v2 = seed.wrapping_add(P2);
        let mut v3 = seed;
        let mut v4 = seed.wrapping_sub(P1);
        while i + 32 <= n {
            v1 = xxh_round(v1, load_u64(data, i));
            v2 = xxh_round(v2, load_u64(data, i + 8));
            v3 = xxh_round(v3, load_u64(data, i + 16));
            v4 = xxh_round(v4, load_u64(data, i + 24));
            i += 32;
        }
        h = v1
            .rotate_left(1)
            .wrapping_add(v2.rotate_left(7))
            .wrapping_add(v3.rotate_left(12))
            .wrapping_add(v4.rotate_left(18));
        h = xxh_merge(h, v1);
        h = xxh_merge(h, v2);
        h = xxh_merge(h, v3);
        h = xxh_merge(h, v4);
    } else {
        h = seed.wrapping_add(P5);
    }
    h = h.wrapping_add(n as u64);
    while i + 8 <= n {
        h ^= xxh_round(0, load_u64(data, i));
        h = h.rotate_left(27).wrapping_mul(P1).wrapping_add(P4);
        i += 8;
    }
    if i + 4 <= n {
        h ^= u64::from(load_u32(data, i)).wrapping_mul(P1);
        h = h.rotate_left(23).wrapping_mul(P2).wrapping_add(P3);
        i += 4;
    }
    while i < n {
        h ^= u64::from(data[i]).wrapping_mul(P5);
        h = h.rotate_left(11).wrapping_mul(P1);
        i += 1;
    }
    h ^= h >> 33;
    h = h.wrapping_mul(P2);
    h ^= h >> 29;
    h = h.wrapping_mul(P3);
    h ^= h >> 32;
    h
}

// ---------------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------------

/// One evaluator side as borrowed buffers, ready to be written: the frozen
/// node arrays plus the leaf-refinement buffers of the originating tree
/// (points reordered into node-range order, matching weights/norms, and
/// the reorder permutation).
#[derive(Debug, Clone, Copy)]
pub struct SideImage<'a> {
    /// Frozen node buffers.
    pub frozen: &'a FrozenTree,
    /// Reordered point buffer the frozen ranges index into.
    pub points: &'a PointSet,
    /// Reordered per-point weights.
    pub weights: &'a [f64],
    /// Reordered per-point squared norms.
    pub norms2: &'a [f64],
    /// Reorder permutation (`perm[i]` = original index of point `i`).
    pub perm: &'a [u32],
}

impl<'a> SideImage<'a> {
    /// Borrows a side from a built pointer tree and its frozen compilation.
    pub fn from_tree<S: NodeShape>(tree: &'a Tree<S>, frozen: &'a FrozenTree) -> Self {
        Self {
            frozen,
            points: tree.points(),
            weights: tree.weights(),
            norms2: tree.norms2(),
            perm: tree.perm(),
        }
    }
}

fn family_of(shapes: &FrozenShapes) -> ShapeFamily {
    match shapes {
        FrozenShapes::Rect { .. } => ShapeFamily::Rect,
        FrozenShapes::Ball { .. } => ShapeFamily::Ball,
    }
}

#[inline]
fn align_up(v: usize) -> usize {
    v.div_ceil(SECTION_ALIGN) * SECTION_ALIGN
}

/// Reinterprets a POD slice as its underlying bytes (native endianness —
/// the verbatim representation the format stores).
fn pod_bytes<T: Pod>(s: &[T]) -> &[u8] {
    // SAFETY: Pod types have no padding and are valid for any bit pattern;
    // the byte view covers exactly the slice's memory.
    unsafe { std::slice::from_raw_parts(s.as_ptr().cast::<u8>(), std::mem::size_of_val(s)) }
}

struct SectionBuild<'a> {
    kind: u32,
    elem: u32,
    data: &'a [u8],
    count: u64,
}

fn side_sections<'a>(base: u32, side: &SideImage<'a>, out: &mut Vec<SectionBuild<'a>>) {
    let fz = side.frozen;
    let (a, b): (&[f64], &[f64]) = match &fz.shapes {
        FrozenShapes::Rect { lo, hi } => (lo, hi),
        FrozenShapes::Ball { center, radius } => (center, radius),
    };
    let mut push = |field: u32, elem: u32, data: &'a [u8], count: usize| {
        out.push(SectionBuild {
            kind: base + field,
            elem,
            data,
            count: count as u64,
        });
    };
    push(F_SHAPE_A, ELEM_F64, pod_bytes(a), a.len());
    push(F_SHAPE_B, ELEM_F64, pod_bytes(b), b.len());
    push(F_WEIGHT_SUM, ELEM_F64, pod_bytes(&fz.weight_sum), fz.weight_sum.len());
    push(F_WEIGHTED_SUM, ELEM_F64, pod_bytes(&fz.weighted_sum), fz.weighted_sum.len());
    push(
        F_WEIGHTED_NORM2,
        ELEM_F64,
        pod_bytes(&fz.weighted_norm2),
        fz.weighted_norm2.len(),
    );
    push(F_COUNT, ELEM_U32, pod_bytes(&fz.count), fz.count.len());
    push(F_DEPTH, ELEM_U16, pod_bytes(&fz.depth), fz.depth.len());
    push(F_START, ELEM_U32, pod_bytes(&fz.start), fz.start.len());
    push(F_END, ELEM_U32, pod_bytes(&fz.end), fz.end.len());
    push(F_LEFT, ELEM_U32, pod_bytes(&fz.left), fz.left.len());
    push(F_RIGHT, ELEM_U32, pod_bytes(&fz.right), fz.right.len());
    push(
        F_POINTS,
        ELEM_F64,
        pod_bytes(side.points.as_slice()),
        side.points.as_slice().len(),
    );
    push(F_WEIGHTS, ELEM_F64, pod_bytes(side.weights), side.weights.len());
    push(F_NORMS2, ELEM_F64, pod_bytes(side.norms2), side.norms2.len());
    push(F_PERM, ELEM_U32, pod_bytes(side.perm), side.perm.len());
}

fn check_side(side: &SideImage<'_>, family: ShapeFamily, dims: usize) -> Result<(), PersistError> {
    let fz = side.frozen;
    if family_of(&fz.shapes) != family {
        return Err(format_err("sides belong to different index families"));
    }
    if fz.dims != dims || side.points.dims() != dims {
        return Err(format_err("sides disagree on dimensionality"));
    }
    let n = fz.weight_sum.len();
    let npts = side.points.len();
    if n == 0 || npts == 0 {
        return Err(format_err("cannot write an empty side"));
    }
    if n > u32::MAX as usize || npts > u32::MAX as usize {
        return Err(format_err("side exceeds u32 node/point id space"));
    }
    if side.weights.len() != npts || side.norms2.len() != npts || side.perm.len() != npts {
        return Err(format_err("leaf buffers disagree on point count"));
    }
    if fz.weighted_sum.len() != n * dims {
        return Err(format_err("frozen aggregate buffer has wrong length"));
    }
    Ok(())
}

fn put_u32(b: &mut [u8], off: usize, v: u32) {
    b[off..off + 4].copy_from_slice(&v.to_ne_bytes());
}

fn put_u64(b: &mut [u8], off: usize, v: u64) {
    b[off..off + 8].copy_from_slice(&v.to_ne_bytes());
}

/// Serializes one or two sides plus opaque `app_meta` into the on-disk
/// image and writes it to `path` in one shot. Returns the file length.
///
/// The image is assembled in memory, checksummed, and written with a
/// single `write_all`; an existing file at `path` is replaced.
pub fn write_index_file(
    path: &Path,
    pos: Option<SideImage<'_>>,
    neg: Option<SideImage<'_>>,
    app_meta: &[u8],
) -> Result<u64, PersistError> {
    let lead = pos
        .as_ref()
        .or(neg.as_ref())
        .ok_or_else(|| format_err("cannot write an index with no sides"))?;
    let family = family_of(&lead.frozen.shapes);
    let dims = lead.frozen.dims;
    if let Some(s) = &pos {
        check_side(s, family, dims)?;
    }
    if let Some(s) = &neg {
        check_side(s, family, dims)?;
    }

    let mut sections: Vec<SectionBuild<'_>> = Vec::with_capacity(1 + 2 * SIDE_FIELDS as usize);
    sections.push(SectionBuild {
        kind: KIND_META,
        elem: ELEM_U8,
        data: app_meta,
        count: app_meta.len() as u64,
    });
    if let Some(s) = &pos {
        side_sections(KIND_POS, s, &mut sections);
    }
    if let Some(s) = &neg {
        side_sections(KIND_NEG, s, &mut sections);
    }

    let table_end = HEADER_LEN + sections.len() * SECTION_ENTRY_LEN;
    let mut image = vec![0u8; align_up(table_end)];
    let mut entries = Vec::with_capacity(sections.len());
    for s in &sections {
        let offset = image.len();
        image.extend_from_slice(s.data);
        image.resize(align_up(image.len()), 0);
        entries.push((s.kind, s.elem, offset as u64, s.data.len() as u64, s.count));
    }
    let file_len = image.len() as u64;

    image[0..8].copy_from_slice(&MAGIC);
    put_u32(&mut image, 8, FORMAT_VERSION);
    put_u32(&mut image, 12, ENDIAN_TAG);
    // checksum patched below
    put_u32(&mut image, 24, dims as u32);
    put_u32(&mut image, 28, family as u32);
    put_u32(&mut image, 32, sections.len() as u32);
    put_u64(&mut image, 40, file_len);
    for (i, (kind, elem, offset, bytes, count)) in entries.iter().enumerate() {
        let e = HEADER_LEN + i * SECTION_ENTRY_LEN;
        put_u32(&mut image, e, *kind);
        put_u32(&mut image, e + 4, *elem);
        put_u64(&mut image, e + 8, *offset);
        put_u64(&mut image, e + 16, *bytes);
        put_u64(&mut image, e + 24, *count);
    }
    let checksum = xxh64(&image[HEADER_LEN..], 0);
    put_u64(&mut image, 16, checksum);

    std::fs::write(path, &image).map_err(|e| io_err("write", e))?;
    Ok(file_len)
}

// ---------------------------------------------------------------------------
// Loading
// ---------------------------------------------------------------------------

/// The leaf-refinement buffers of one loaded side: the reordered points the
/// frozen node ranges index into, their weights and squared norms, and the
/// build-time permutation. All zero-copy views into the load arena.
#[derive(Debug, Clone)]
pub struct LeafData {
    points: PointSet,
    weights: Buf<f64>,
    norms2: Buf<f64>,
    perm: Buf<u32>,
}

impl LeafData {
    /// Assembles leaf data from parts (used by the loader and by tests).
    ///
    /// # Panics
    /// Panics if the buffer lengths disagree on the point count.
    pub fn new(points: PointSet, weights: Buf<f64>, norms2: Buf<f64>, perm: Buf<u32>) -> Self {
        let npts = points.len();
        assert!(
            weights.len() == npts && norms2.len() == npts && perm.len() == npts,
            "leaf buffers disagree on point count"
        );
        Self {
            points,
            weights,
            norms2,
            perm,
        }
    }

    /// The reordered point buffer.
    #[inline]
    pub fn points(&self) -> &PointSet {
        &self.points
    }

    /// Reordered per-point weights.
    #[inline]
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Reordered per-point squared norms.
    #[inline]
    pub fn norms2(&self) -> &[f64] {
        &self.norms2
    }

    /// Reorder permutation (`perm[i]` = original index of point `i`).
    #[inline]
    pub fn perm(&self) -> &[u32] {
        &self.perm
    }

    /// Number of points.
    #[inline]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the side holds no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

/// One loaded evaluator side: frozen node buffers plus leaf data, all
/// borrowing the shared load arena.
#[derive(Debug, Clone)]
pub struct LoadedSide {
    /// The frozen tree, viewing the arena.
    pub frozen: FrozenTree,
    /// Leaf-refinement buffers, viewing the arena.
    pub leaf: LeafData,
}

/// A fully parsed index file: the P⁺/P⁻ sides and the opaque application
/// metadata recorded at write time.
#[derive(Debug, Clone)]
pub struct LoadedIndex {
    /// Dimensionality of the indexed points.
    pub dims: usize,
    /// Index family of both sides.
    pub family: ShapeFamily,
    /// Positive-weight side, if the file has one.
    pub pos: Option<LoadedSide>,
    /// Negative-weight side, if the file has one.
    pub neg: Option<LoadedSide>,
    /// Application metadata written alongside the tree.
    pub app_meta: Vec<u8>,
}

#[derive(Debug, Clone, Copy)]
struct SectionRec {
    kind: u32,
    elem: u32,
    offset: u64,
    bytes: u64,
    count: u64,
}

struct RawImage {
    arena: Arc<AlignedBytes>,
    version: u32,
    dims: usize,
    family: ShapeFamily,
    checksum: u64,
    sections: Vec<SectionRec>,
}

fn rd_u32(b: &[u8], off: usize) -> u32 {
    u32::from_ne_bytes(b[off..off + 4].try_into().unwrap())
}

fn rd_u64(b: &[u8], off: usize) -> u64 {
    u64::from_ne_bytes(b[off..off + 8].try_into().unwrap())
}

fn elem_size(elem: u32) -> Option<u64> {
    match elem {
        ELEM_F64 => Some(8),
        ELEM_U32 => Some(4),
        ELEM_U16 => Some(2),
        ELEM_U8 => Some(1),
        _ => None,
    }
}

fn parse_raw(arena: Arc<AlignedBytes>) -> Result<RawImage, PersistError> {
    let b = arena.as_slice();
    debug_assert!(b.len() >= HEADER_LEN);
    if b[0..8] != MAGIC {
        return Err(format_err("bad magic (not a KARL index file)"));
    }
    let endian = rd_u32(b, 12);
    if endian == ENDIAN_TAG_SWAPPED {
        return Err(format_err(
            "endianness mismatch: index was written on a foreign-endian host",
        ));
    }
    if endian != ENDIAN_TAG {
        return Err(format_err("bad endianness tag"));
    }
    let version = rd_u32(b, 8);
    if version != FORMAT_VERSION {
        return Err(PersistError::VersionUnsupported {
            found: version,
            supported: FORMAT_VERSION,
        });
    }
    let file_len = rd_u64(b, 40);
    let actual = b.len() as u64;
    if file_len > actual {
        return Err(PersistError::Truncated {
            needed: file_len,
            got: actual,
        });
    }
    if file_len < actual {
        return Err(format_err("file is longer than the header records"));
    }
    let stored = rd_u64(b, 16);
    let computed = xxh64(&b[HEADER_LEN..], 0);
    if stored != computed {
        return Err(PersistError::ChecksumMismatch {
            expected: stored,
            got: computed,
        });
    }
    let dims = rd_u32(b, 24) as usize;
    if dims == 0 {
        return Err(format_err("dims must be positive"));
    }
    let family = match rd_u32(b, 28) {
        0 => ShapeFamily::Rect,
        1 => ShapeFamily::Ball,
        other => return Err(format_err(format!("unknown index family tag {other}"))),
    };
    let count = rd_u32(b, 32) as usize;
    let table_end = HEADER_LEN as u64 + (count as u64) * SECTION_ENTRY_LEN as u64;
    if table_end > file_len {
        return Err(format_err("section table exceeds the file"));
    }
    let mut sections = Vec::with_capacity(count);
    for i in 0..count {
        let e = HEADER_LEN + i * SECTION_ENTRY_LEN;
        let rec = SectionRec {
            kind: rd_u32(b, e),
            elem: rd_u32(b, e + 4),
            offset: rd_u64(b, e + 8),
            bytes: rd_u64(b, e + 16),
            count: rd_u64(b, e + 24),
        };
        let Some(esize) = elem_size(rec.elem) else {
            return Err(format_err(format!(
                "section {:#06x} has unknown element tag {}",
                rec.kind, rec.elem
            )));
        };
        if rec.bytes != rec.count.saturating_mul(esize)
            || !rec.offset.is_multiple_of(SECTION_ALIGN as u64)
            || rec.offset < table_end
            || rec.offset.checked_add(rec.bytes).is_none_or(|end| end > file_len)
        {
            return Err(format_err(format!(
                "section {:#06x} table entry is inconsistent",
                rec.kind
            )));
        }
        if sections.iter().any(|s: &SectionRec| s.kind == rec.kind) {
            return Err(format_err(format!("duplicate section {:#06x}", rec.kind)));
        }
        sections.push(rec);
    }
    Ok(RawImage {
        arena,
        version,
        dims,
        family,
        checksum: stored,
        sections,
    })
}

fn view<T: Pod>(raw: &RawImage, rec: &SectionRec, expect_elem: u32) -> Result<Buf<T>, PersistError> {
    if rec.elem != expect_elem {
        return Err(format_err(format!(
            "section {:#06x} has element tag {}, expected {}",
            rec.kind, rec.elem, expect_elem
        )));
    }
    Buf::view(Arc::clone(&raw.arena), rec.offset as usize, rec.count as usize)
        .ok_or_else(|| format_err(format!("section {:#06x} window is invalid", rec.kind)))
}

fn assemble_side(raw: &RawImage, base: u32) -> Result<Option<LoadedSide>, PersistError> {
    let sec = |field: u32| raw.sections.iter().find(|s| s.kind == base + field);
    if !raw.sections.iter().any(|s| s.kind & SIDE_MASK == base) {
        return Ok(None);
    }
    let get = |field: u32| -> Result<SectionRec, PersistError> {
        sec(field)
            .copied()
            .ok_or_else(|| format_err(format!("side {base:#06x} is missing field {field}")))
    };

    let d = raw.dims;
    let weight_sum: Buf<f64> = view(raw, &get(F_WEIGHT_SUM)?, ELEM_F64)?;
    let n = weight_sum.len();
    if n == 0 || n > u32::MAX as usize {
        return Err(format_err("node count out of range"));
    }
    let shape_a: Buf<f64> = view(raw, &get(F_SHAPE_A)?, ELEM_F64)?;
    let shape_b: Buf<f64> = view(raw, &get(F_SHAPE_B)?, ELEM_F64)?;
    let weighted_sum: Buf<f64> = view(raw, &get(F_WEIGHTED_SUM)?, ELEM_F64)?;
    let weighted_norm2: Buf<f64> = view(raw, &get(F_WEIGHTED_NORM2)?, ELEM_F64)?;
    let count: Buf<u32> = view(raw, &get(F_COUNT)?, ELEM_U32)?;
    let depth: Buf<u16> = view(raw, &get(F_DEPTH)?, ELEM_U16)?;
    let start: Buf<u32> = view(raw, &get(F_START)?, ELEM_U32)?;
    let end: Buf<u32> = view(raw, &get(F_END)?, ELEM_U32)?;
    let left: Buf<u32> = view(raw, &get(F_LEFT)?, ELEM_U32)?;
    let right: Buf<u32> = view(raw, &get(F_RIGHT)?, ELEM_U32)?;
    let points: Buf<f64> = view(raw, &get(F_POINTS)?, ELEM_F64)?;
    let weights: Buf<f64> = view(raw, &get(F_WEIGHTS)?, ELEM_F64)?;
    let norms2: Buf<f64> = view(raw, &get(F_NORMS2)?, ELEM_F64)?;
    let perm: Buf<u32> = view(raw, &get(F_PERM)?, ELEM_U32)?;

    let npts = weights.len();
    let shape_b_expect = match raw.family {
        ShapeFamily::Rect => n * d,
        ShapeFamily::Ball => n,
    };
    if shape_a.len() != n * d
        || shape_b.len() != shape_b_expect
        || weighted_sum.len() != n * d
        || weighted_norm2.len() != n
        || count.len() != n
        || depth.len() != n
        || start.len() != n
        || end.len() != n
        || left.len() != n
        || right.len() != n
        || npts == 0
        || npts > u32::MAX as usize
        || points.len() != npts * d
        || norms2.len() != npts
        || perm.len() != npts
    {
        return Err(format_err("side buffer lengths are inconsistent"));
    }

    // Topology validation: even a checksum-consistent (e.g. hand-crafted)
    // file must not be able to send the evaluator out of bounds or into a
    // cycle. Children strictly follow their parent (pre-order ids), ranges
    // nest inside the point buffer.
    for i in 0..n {
        let (l, r) = (left[i], right[i]);
        if (l == NO_CHILD) != (r == NO_CHILD) {
            return Err(format_err(format!("node {i} has exactly one child")));
        }
        if l != NO_CHILD {
            let (lu, ru) = (l as usize, r as usize);
            if lu <= i || ru <= i || lu >= n || ru >= n {
                return Err(format_err(format!("node {i} has out-of-order children")));
            }
        }
        let (s, e) = (start[i] as usize, end[i] as usize);
        if s > e || e > npts {
            return Err(format_err(format!("node {i} has an invalid point range")));
        }
    }

    let shapes = match raw.family {
        ShapeFamily::Rect => FrozenShapes::Rect {
            lo: shape_a,
            hi: shape_b,
        },
        ShapeFamily::Ball => FrozenShapes::Ball {
            center: shape_a,
            radius: shape_b,
        },
    };
    let frozen = FrozenTree {
        dims: d,
        shapes,
        weight_sum,
        weighted_sum,
        weighted_norm2,
        count,
        depth,
        start,
        end,
        left,
        right,
    };
    let points = PointSet::try_from_buf(d, points)
        .map_err(|e| format_err(format!("point section invalid: {e}")))?;
    Ok(Some(LoadedSide {
        frozen,
        leaf: LeafData::new(points, weights, norms2, perm),
    }))
}

fn assemble(raw: RawImage) -> Result<LoadedIndex, PersistError> {
    let pos = assemble_side(&raw, KIND_POS)?;
    let neg = assemble_side(&raw, KIND_NEG)?;
    if pos.is_none() && neg.is_none() {
        return Err(format_err("index file has no sides"));
    }
    let app_meta = raw
        .sections
        .iter()
        .find(|s| s.kind == KIND_META)
        .map(|s| {
            raw.arena.as_slice()[s.offset as usize..(s.offset + s.bytes) as usize].to_vec()
        })
        .unwrap_or_default();
    Ok(LoadedIndex {
        dims: raw.dims,
        family: raw.family,
        pos,
        neg,
        app_meta,
    })
}

fn read_arena(path: &Path) -> Result<Arc<AlignedBytes>, PersistError> {
    use std::io::Read;
    let mut file = std::fs::File::open(path).map_err(|e| io_err("open", e))?;
    let len = file
        .metadata()
        .map_err(|e| io_err("stat", e))?
        .len();
    if len < HEADER_LEN as u64 {
        return Err(PersistError::Truncated {
            needed: HEADER_LEN as u64,
            got: len,
        });
    }
    let mut arena = AlignedBytes::zeroed(len as usize);
    file.read_exact(arena.as_mut_slice())
        .map_err(|e| io_err("read", e))?;
    Ok(Arc::new(arena))
}

/// Loads an index file with one bulk read into a 64-byte-aligned arena and
/// assembles zero-copy views over it. The whole payload is checksummed and
/// structurally validated before any view is returned; corrupted or
/// malformed files yield a typed [`PersistError`], never a panic.
pub fn load_index_file(path: &Path) -> Result<LoadedIndex, PersistError> {
    assemble(parse_raw(read_arena(path)?)?)
}

/// Like [`load_index_file`] but maps the file with `mmap(2)` instead of
/// reading it, so untouched sections are paged in lazily. The checksum
/// pass still touches every page once; validation is identical.
#[cfg(feature = "mmap")]
pub fn load_index_file_mmap(path: &Path) -> Result<LoadedIndex, PersistError> {
    use std::os::fd::AsRawFd;
    let file = std::fs::File::open(path).map_err(|e| io_err("open", e))?;
    let len = file
        .metadata()
        .map_err(|e| io_err("stat", e))?
        .len();
    if len < HEADER_LEN as u64 {
        return Err(PersistError::Truncated {
            needed: HEADER_LEN as u64,
            got: len,
        });
    }
    let arena = AlignedBytes::map_file(file.as_raw_fd(), len as usize)
        .map_err(|e| io_err("mmap", e))?;
    assemble(parse_raw(Arc::new(arena))?)
}

// ---------------------------------------------------------------------------
// Inspection
// ---------------------------------------------------------------------------

/// One section-table entry, decoded for display.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SectionInfo {
    /// Raw section kind tag.
    pub kind: u32,
    /// Human-readable label, e.g. `pos.shape.lo` or `meta`.
    pub label: String,
    /// Element type name (`f64`/`u32`/`u16`/`u8`).
    pub elem: &'static str,
    /// Payload offset in the file.
    pub offset: u64,
    /// Payload length in bytes (before alignment padding).
    pub bytes: u64,
    /// Number of elements.
    pub count: u64,
}

/// Parsed header + section table of an index file (checksum verified).
#[derive(Debug, Clone)]
pub struct IndexFileInfo {
    /// Format version.
    pub version: u32,
    /// Dimensionality of the indexed points.
    pub dims: usize,
    /// Index family.
    pub family: ShapeFamily,
    /// Total file length in bytes.
    pub file_len: u64,
    /// Verified payload checksum.
    pub checksum: u64,
    /// Application metadata bytes.
    pub app_meta: Vec<u8>,
    /// All sections, in file order.
    pub sections: Vec<SectionInfo>,
}

fn field_label(family: ShapeFamily, field: u32) -> &'static str {
    match (field, family) {
        (F_SHAPE_A, ShapeFamily::Rect) => "shape.lo",
        (F_SHAPE_A, ShapeFamily::Ball) => "shape.center",
        (F_SHAPE_B, ShapeFamily::Rect) => "shape.hi",
        (F_SHAPE_B, ShapeFamily::Ball) => "shape.radius",
        (F_WEIGHT_SUM, _) => "weight_sum",
        (F_WEIGHTED_SUM, _) => "weighted_sum",
        (F_WEIGHTED_NORM2, _) => "weighted_norm2",
        (F_COUNT, _) => "count",
        (F_DEPTH, _) => "depth",
        (F_START, _) => "start",
        (F_END, _) => "end",
        (F_LEFT, _) => "left",
        (F_RIGHT, _) => "right",
        (F_POINTS, _) => "points",
        (F_WEIGHTS, _) => "weights",
        (F_NORMS2, _) => "norms2",
        (F_PERM, _) => "perm",
        _ => "unknown",
    }
}

/// Reads and validates `path` (including the checksum pass) and reports
/// its header fields and per-section byte breakdown without constructing
/// any tree.
pub fn index_file_info(path: &Path) -> Result<IndexFileInfo, PersistError> {
    let raw = parse_raw(read_arena(path)?)?;
    let sections = raw
        .sections
        .iter()
        .map(|s| {
            let label = if s.kind == KIND_META {
                "meta".to_string()
            } else {
                let side = match s.kind & SIDE_MASK {
                    KIND_POS => "pos",
                    KIND_NEG => "neg",
                    _ => "unknown",
                };
                format!("{side}.{}", field_label(raw.family, s.kind & !SIDE_MASK))
            };
            SectionInfo {
                kind: s.kind,
                label,
                elem: match s.elem {
                    ELEM_F64 => "f64",
                    ELEM_U32 => "u32",
                    ELEM_U16 => "u16",
                    _ => "u8",
                },
                offset: s.offset,
                bytes: s.bytes,
                count: s.count,
            }
        })
        .collect();
    let app_meta = raw
        .sections
        .iter()
        .find(|s| s.kind == KIND_META)
        .map(|s| {
            raw.arena.as_slice()[s.offset as usize..(s.offset + s.bytes) as usize].to_vec()
        })
        .unwrap_or_default();
    Ok(IndexFileInfo {
        version: raw.version,
        dims: raw.dims,
        family: raw.family,
        file_len: raw.arena.len() as u64,
        checksum: raw.checksum,
        app_meta,
        sections,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::{BallTree, KdTree};
    use karl_testkit::rng::{Rng, SeedableRng, StdRng};

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("karl_persist_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn random_points(n: usize, d: usize, seed: u64) -> PointSet {
        let mut rng = StdRng::seed_from_u64(seed);
        let data: Vec<f64> = (0..n * d).map(|_| rng.random_range(-10.0..10.0)).collect();
        PointSet::new(d, data)
    }

    #[test]
    fn xxh64_reference_vectors() {
        assert_eq!(xxh64(b"", 0), 0xEF46_DB37_51D8_E999);
        assert_eq!(xxh64(b"abc", 0), 0x44BC_2CF5_AD77_0999);
        // Exercise every input-length path (stripes, 8/4/1-byte tails) and
        // pin the digests so any future edit to the hash is loud: these
        // values guard compatibility of already-written index files.
        let data: Vec<u8> = (0u16..1021).map(|i| (i % 251) as u8).collect();
        let d1 = xxh64(&data, 0);
        let d2 = xxh64(&data, 1);
        assert_ne!(d1, d2);
        assert_eq!(d1, xxh64(&data.clone(), 0));
        assert_ne!(xxh64(&data[..32], 0), xxh64(&data[..33], 0));
    }

    #[test]
    fn kd_round_trip_is_bitwise_identical() {
        let ps = random_points(300, 4, 21);
        let w: Vec<f64> = (0..300).map(|i| (i as f64 * 0.7).sin() + 0.01).collect();
        let tree = KdTree::build(ps, &w, 8);
        let frozen = tree.freeze();
        let path = tmp("kd_round_trip.karlidx");
        let meta = b"app metadata".to_vec();
        write_index_file(
            &path,
            Some(SideImage::from_tree(&tree, &frozen)),
            None,
            &meta,
        )
        .unwrap();
        let loaded = load_index_file(&path).unwrap();
        assert_eq!(loaded.dims, 4);
        assert_eq!(loaded.family, ShapeFamily::Rect);
        assert_eq!(loaded.app_meta, meta);
        assert!(loaded.neg.is_none());
        let side = loaded.pos.unwrap();
        assert_frozen_eq(&frozen, &side.frozen);
        assert!(side.leaf.points().is_view());
        assert_eq!(side.leaf.points(), tree.points());
        assert_eq!(side.leaf.weights(), tree.weights());
        assert_eq!(side.leaf.norms2(), tree.norms2());
        assert_eq!(side.leaf.perm(), tree.perm());
        std::fs::remove_file(&path).ok();
    }

    fn assert_frozen_eq(a: &FrozenTree, b: &FrozenTree) {
        assert_eq!(a.dims(), b.dims());
        assert_eq!(a.num_nodes(), b.num_nodes());
        assert_eq!(a.shapes(), b.shapes());
        assert_eq!(&a.weight_sum[..], &b.weight_sum[..]);
        assert_eq!(&a.weighted_sum[..], &b.weighted_sum[..]);
        assert_eq!(&a.weighted_norm2[..], &b.weighted_norm2[..]);
        assert_eq!(&a.count[..], &b.count[..]);
        assert_eq!(&a.depth[..], &b.depth[..]);
        assert_eq!(&a.start[..], &b.start[..]);
        assert_eq!(&a.end[..], &b.end[..]);
        assert_eq!(&a.left[..], &b.left[..]);
        assert_eq!(&a.right[..], &b.right[..]);
    }

    #[test]
    fn two_sided_ball_round_trip() {
        let p1 = random_points(150, 3, 22);
        let p2 = random_points(90, 3, 23);
        let t1 = BallTree::build(p1, &vec![1.0; 150], 5);
        let t2 = BallTree::build(p2, &vec![2.0; 90], 5);
        let (f1, f2) = (t1.freeze(), t2.freeze());
        let path = tmp("ball_two_sided.karlidx");
        write_index_file(
            &path,
            Some(SideImage::from_tree(&t1, &f1)),
            Some(SideImage::from_tree(&t2, &f2)),
            &[],
        )
        .unwrap();
        let loaded = load_index_file(&path).unwrap();
        assert_eq!(loaded.family, ShapeFamily::Ball);
        assert_frozen_eq(&f1, &loaded.pos.as_ref().unwrap().frozen);
        assert_frozen_eq(&f2, &loaded.neg.as_ref().unwrap().frozen);
        assert!(loaded.app_meta.is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn info_reports_aligned_sections() {
        let ps = random_points(100, 2, 24);
        let tree = KdTree::build(ps, &vec![1.0; 100], 4);
        let frozen = tree.freeze();
        let path = tmp("info.karlidx");
        let len = write_index_file(
            &path,
            Some(SideImage::from_tree(&tree, &frozen)),
            None,
            b"m",
        )
        .unwrap();
        let info = index_file_info(&path).unwrap();
        assert_eq!(info.version, FORMAT_VERSION);
        assert_eq!(info.file_len, len);
        assert_eq!(info.dims, 2);
        assert_eq!(info.app_meta, b"m");
        assert_eq!(info.sections.len(), 16);
        for s in &info.sections {
            assert_eq!(s.offset % SECTION_ALIGN as u64, 0, "section {}", s.label);
        }
        let labels: Vec<&str> = info.sections.iter().map(|s| s.label.as_str()).collect();
        assert!(labels.contains(&"meta"));
        assert!(labels.contains(&"pos.shape.lo"));
        assert!(labels.contains(&"pos.points"));
        // The frozen node sections must agree byte-for-byte with the
        // in-memory footprint breakdown.
        let by_label = |l: &str| {
            info.sections
                .iter()
                .find(|s| s.label == format!("pos.{l}"))
                .unwrap()
                .bytes as usize
        };
        for (name, bytes) in frozen.footprint_sections() {
            assert_eq!(by_label(name), bytes, "section {name}");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corruption_is_rejected_with_typed_errors() {
        let ps = random_points(80, 3, 25);
        let tree = KdTree::build(ps, &vec![1.0; 80], 4);
        let frozen = tree.freeze();
        let path = tmp("corrupt.karlidx");
        write_index_file(&path, Some(SideImage::from_tree(&tree, &frozen)), None, &[]).unwrap();
        let image = std::fs::read(&path).unwrap();

        // Truncated file.
        std::fs::write(&path, &image[..image.len() - 7]).unwrap();
        assert!(matches!(
            load_index_file(&path),
            Err(PersistError::Truncated { .. })
        ));
        // Shorter than the header.
        std::fs::write(&path, &image[..32]).unwrap();
        assert!(matches!(
            load_index_file(&path),
            Err(PersistError::Truncated { needed: 64, got: 32 })
        ));
        // A flipped payload byte.
        let mut flipped = image.clone();
        let mid = HEADER_LEN + (flipped.len() - HEADER_LEN) / 2;
        flipped[mid] ^= 0x40;
        std::fs::write(&path, &flipped).unwrap();
        assert!(matches!(
            load_index_file(&path),
            Err(PersistError::ChecksumMismatch { .. })
        ));
        // Wrong magic.
        let mut bad_magic = image.clone();
        bad_magic[0] = b'X';
        std::fs::write(&path, &bad_magic).unwrap();
        assert!(matches!(
            load_index_file(&path),
            Err(PersistError::Format { .. })
        ));
        // Byte-swapped endianness tag.
        let mut foreign = image.clone();
        foreign[12..16].copy_from_slice(&ENDIAN_TAG.to_ne_bytes().iter().rev().copied().collect::<Vec<_>>());
        std::fs::write(&path, &foreign).unwrap();
        let err = load_index_file(&path).unwrap_err();
        match err {
            PersistError::Format { reason } => assert!(reason.contains("endianness")),
            other => panic!("expected Format, got {other:?}"),
        }
        // Unsupported version.
        let mut vnext = image.clone();
        vnext[8..12].copy_from_slice(&2u32.to_ne_bytes());
        std::fs::write(&path, &vnext).unwrap();
        assert!(matches!(
            load_index_file(&path),
            Err(PersistError::VersionUnsupported { found: 2, supported: 1 })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn checksum_consistent_bad_topology_is_rejected() {
        let ps = random_points(64, 2, 26);
        let tree = KdTree::build(ps, &vec![1.0; 64], 4);
        let frozen = tree.freeze();
        let path = tmp("topology.karlidx");
        write_index_file(&path, Some(SideImage::from_tree(&tree, &frozen)), None, &[]).unwrap();
        let mut image = std::fs::read(&path).unwrap();
        // Find the pos.left section and point the root at itself, then
        // re-checksum so only the structural validator can catch it.
        let info = index_file_info(&path).unwrap();
        let left = info.sections.iter().find(|s| s.label == "pos.left").unwrap();
        let off = left.offset as usize;
        image[off..off + 4].copy_from_slice(&0u32.to_ne_bytes());
        let sum = xxh64(&image[HEADER_LEN..], 0);
        image[16..24].copy_from_slice(&sum.to_ne_bytes());
        std::fs::write(&path, &image).unwrap();
        let err = load_index_file(&path).unwrap_err();
        assert!(matches!(err, PersistError::Format { .. }), "{err:?}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_write_is_rejected() {
        let path = tmp("empty.karlidx");
        assert!(matches!(
            write_index_file(&path, None, None, &[]),
            Err(PersistError::Format { .. })
        ));
    }

    #[cfg(feature = "mmap")]
    #[test]
    fn mmap_load_matches_read_load() {
        let ps = random_points(120, 3, 27);
        let tree = KdTree::build(ps, &vec![1.0; 120], 8);
        let frozen = tree.freeze();
        let path = tmp("mmap.karlidx");
        write_index_file(&path, Some(SideImage::from_tree(&tree, &frozen)), None, b"x").unwrap();
        let a = load_index_file(&path).unwrap();
        let b = load_index_file_mmap(&path).unwrap();
        assert_frozen_eq(&a.pos.as_ref().unwrap().frozen, &b.pos.as_ref().unwrap().frozen);
        assert_eq!(
            a.pos.as_ref().unwrap().leaf.points(),
            b.pos.as_ref().unwrap().leaf.points()
        );
        assert_eq!(a.app_meta, b.app_meta);
        std::fs::remove_file(&path).ok();
    }
}
