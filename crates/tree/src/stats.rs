//! Per-node aggregate statistics (Lemma 2 / Lemma 5 of the paper).

use karl_geom::{dot, simd, PointSet};

/// The precomputed aggregates that make the KARL linear bound functions
/// evaluable in `O(d)` per node:
///
/// ```text
/// Σᵢ wᵢ·(m·γ·dist(q,pᵢ)² + c) = m·γ·(W·‖q‖² − 2·q·a + b) + c·W
/// ```
///
/// where the sums range over the points owned by the node.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeStats {
    /// Number of points in the node.
    pub count: usize,
    /// `W = Σ wᵢ` — total weight.
    pub weight_sum: f64,
    /// `a = Σ wᵢ·pᵢ` — weighted coordinate sum.
    pub weighted_sum: Vec<f64>,
    /// `b = Σ wᵢ·‖pᵢ‖²` — weighted squared-norm sum.
    pub weighted_norm2: f64,
}

impl NodeStats {
    /// Computes the aggregates over the contiguous range `[start, end)`.
    ///
    /// # Panics
    /// Panics if the range is empty or out of bounds, or if
    /// `weights.len() != points.len()`.
    #[allow(clippy::needless_range_loop)] // i indexes weights and points in lockstep
    pub fn from_range(points: &PointSet, weights: &[f64], start: usize, end: usize) -> Self {
        assert!(start < end && end <= points.len(), "invalid stats range");
        assert_eq!(
            weights.len(),
            points.len(),
            "weights/points length mismatch"
        );
        let d = points.dims();
        let be = simd::backend();
        let mut weight_sum = 0.0;
        let mut weighted_sum = vec![0.0; d];
        let mut weighted_norm2 = 0.0;
        for i in start..end {
            let w = weights[i];
            let p = points.point(i);
            weight_sum += w;
            simd::axpy_with(be, &mut weighted_sum, w, p);
            weighted_norm2 += w * simd::norm2_with(be, p);
        }
        Self {
            count: end - start,
            weight_sum,
            weighted_sum,
            weighted_norm2,
        }
    }

    /// `S(q) = Σᵢ wᵢ·dist(q, pᵢ)² = W·‖q‖² − 2·q·a + b`, evaluated in O(d).
    ///
    /// This is the quantity the KARL bounds feed into the linear functions
    /// and into the optimal tangent location `t_opt = γ·S/W` (Theorems 1–2).
    #[inline]
    pub fn weighted_dist2_sum(&self, q: &[f64], q_norm2: f64) -> f64 {
        // Blocked `dot` so the pointer evaluator's q·a matches the fused
        // frozen-path accumulator bitwise (see karl_geom::fused).
        let qa = dot(q, &self.weighted_sum);
        self.weight_sum * q_norm2 - 2.0 * qa + self.weighted_norm2
    }

    /// `Σᵢ wᵢ·(q·pᵢ) = q·a`, evaluated in O(d). Used by the polynomial and
    /// sigmoid kernel bounds (Section IV-B).
    #[inline]
    pub fn weighted_ip_sum(&self, q: &[f64]) -> f64 {
        dot(q, &self.weighted_sum)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use karl_geom::dist2;
    use karl_testkit::prop_assert;
    use karl_testkit::props::vec_of;

    #[test]
    fn aggregates_match_bruteforce() {
        let ps = PointSet::new(2, vec![1.0, 2.0, 3.0, 4.0, -1.0, 0.5]);
        let w = [0.5, 2.0, 1.5];
        let s = NodeStats::from_range(&ps, &w, 0, 3);
        assert_eq!(s.count, 3);
        assert!((s.weight_sum - 4.0).abs() < 1e-12);
        // a = 0.5*(1,2) + 2*(3,4) + 1.5*(-1,0.5)
        assert!((s.weighted_sum[0] - 5.0).abs() < 1e-12);
        assert!((s.weighted_sum[1] - 9.75).abs() < 1e-12);
        // b = 0.5*5 + 2*25 + 1.5*1.25
        assert!((s.weighted_norm2 - 54.375).abs() < 1e-12);
    }

    #[test]
    fn subrange_aggregates() {
        let ps = PointSet::new(1, vec![1.0, 2.0, 3.0, 4.0]);
        let w = [1.0; 4];
        let s = NodeStats::from_range(&ps, &w, 1, 3);
        assert_eq!(s.count, 2);
        assert_eq!(s.weight_sum, 2.0);
        assert_eq!(s.weighted_sum, vec![5.0]);
        assert_eq!(s.weighted_norm2, 13.0);
    }

    #[test]
    #[should_panic]
    fn empty_range_panics() {
        let ps = PointSet::new(1, vec![1.0]);
        NodeStats::from_range(&ps, &[1.0], 1, 1);
    }

    karl_testkit::props! {
        /// The O(d) expansion of Σ wᵢ·dist² must match the brute-force sum
        /// for random data — this is exactly Lemma 2 of the paper.
        #[test]
        fn prop_weighted_dist2_sum_matches_bruteforce(
            rows in vec_of(vec_of(-10.0f64..10.0, 3), 1..12),
            ws in vec_of(0.0f64..5.0, 12),
            q in vec_of(-10.0f64..10.0, 3),
        ) {
            let ps = PointSet::from_rows(&rows);
            let w = &ws[..ps.len()];
            let s = NodeStats::from_range(&ps, w, 0, ps.len());
            let fast = s.weighted_dist2_sum(&q, karl_geom::norm2(&q));
            let slow: f64 = (0..ps.len())
                .map(|i| w[i] * dist2(&q, ps.point(i)))
                .sum();
            let scale = 1.0 + slow.abs();
            prop_assert!((fast - slow).abs() / scale < 1e-9);
        }

        /// Same for the weighted inner-product sum (polynomial kernel path).
        #[test]
        fn prop_weighted_ip_sum_matches_bruteforce(
            rows in vec_of(vec_of(-10.0f64..10.0, 2), 1..12),
            ws in vec_of(-3.0f64..3.0, 12),
            q in vec_of(-10.0f64..10.0, 2),
        ) {
            let ps = PointSet::from_rows(&rows);
            let w = &ws[..ps.len()];
            let s = NodeStats::from_range(&ps, w, 0, ps.len());
            let fast = s.weighted_ip_sum(&q);
            let slow: f64 = (0..ps.len())
                .map(|i| w[i] * karl_geom::dot(&q, ps.point(i)))
                .sum();
            let scale = 1.0 + slow.abs();
            prop_assert!((fast - slow).abs() / scale < 1e-9);
        }
    }
}
