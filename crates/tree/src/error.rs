//! Typed rejection for malformed tree-build inputs.

use std::fmt;

/// Defects [`crate::Tree::try_build`] can reject. `karl_core` converts
/// these into its `KarlError` taxonomy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TreeError {
    /// Cannot build a tree over an empty point set.
    EmptyPoints,
    /// `weights.len() != points.len()`.
    LengthMismatch {
        /// Number of points.
        expected: usize,
        /// Number of weights supplied.
        got: usize,
    },
    /// `leaf_capacity == 0`.
    ZeroLeafCapacity,
    /// A coordinate is NaN/±inf — rejected up front so the median split's
    /// comparator never sees unordered values mid-build.
    NonFiniteCoordinate {
        /// Point index (in the caller's original order).
        index: usize,
        /// Coordinate dimension.
        dim: usize,
        /// The offending value.
        value: f64,
    },
    /// A weight is NaN/±inf.
    NonFiniteWeight {
        /// Weight index.
        index: usize,
        /// The offending value.
        value: f64,
    },
}

impl fmt::Display for TreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TreeError::EmptyPoints => write!(f, "cannot build a tree over an empty set"),
            TreeError::LengthMismatch { expected, got } => {
                write!(f, "weights/points length mismatch: {got} weights for {expected} points")
            }
            TreeError::ZeroLeafCapacity => write!(f, "leaf capacity must be at least 1"),
            TreeError::NonFiniteCoordinate { index, dim, value } => {
                write!(f, "point {index} has non-finite coordinate {value} at dim {dim}")
            }
            TreeError::NonFiniteWeight { index, value } => {
                write!(f, "weight {index} is non-finite ({value})")
            }
        }
    }
}

impl std::error::Error for TreeError {}
