//! The generic median-split tree shared by the kd-tree and ball-tree
//! families.

use karl_geom::{Ball, BoundingShape, PointSet, Rect};

use crate::error::TreeError;
use crate::frozen::FrozenShapes;
use crate::stats::NodeStats;

/// Identifier of a node inside a [`Tree`]'s node arena.
pub type NodeId = u32;

/// The index family a node volume belongs to — the tag the persistent
/// index header records so a loader can reject a file built for the other
/// family before touching any payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShapeFamily {
    /// Axis-aligned bounding rectangles (kd-tree).
    Rect,
    /// Centroid bounding balls (ball-tree).
    Ball,
}

impl std::fmt::Display for ShapeFamily {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShapeFamily::Rect => write!(f, "kd"),
            ShapeFamily::Ball => write!(f, "ball"),
        }
    }
}

/// A bounding volume that can be constructed over a contiguous range of a
/// reordered point buffer. Implemented by [`Rect`] (kd-tree) and [`Ball`]
/// (ball-tree).
pub trait NodeShape: BoundingShape + Clone {
    /// The family tag this shape freezes and persists under.
    const FAMILY: ShapeFamily;

    /// Builds the volume covering `points[start..end]`. `scratch` is a
    /// reusable accumulation buffer shared across an entire tree build, so
    /// constructing thousands of nodes allocates no intermediates.
    fn from_range(points: &PointSet, start: usize, end: usize, scratch: &mut Vec<f64>) -> Self;

    /// Allocates empty SoA shape buffers for a frozen tree of this family
    /// (see [`crate::frozen`]), sized for `nodes` nodes of `dims`
    /// dimensions.
    fn frozen_shapes(dims: usize, nodes: usize) -> FrozenShapes;

    /// Appends this node's shape to a frozen tree's SoA buffers.
    ///
    /// # Panics
    /// Panics if `shapes` belongs to the other index family.
    fn push_frozen(&self, shapes: &mut FrozenShapes);
}

impl NodeShape for Rect {
    const FAMILY: ShapeFamily = ShapeFamily::Rect;

    fn from_range(points: &PointSet, start: usize, end: usize, scratch: &mut Vec<f64>) -> Self {
        Rect::bounding_range_scratch(points, start, end, scratch)
    }

    fn frozen_shapes(dims: usize, nodes: usize) -> FrozenShapes {
        FrozenShapes::Rect {
            lo: Vec::with_capacity(nodes * dims).into(),
            hi: Vec::with_capacity(nodes * dims).into(),
        }
    }

    fn push_frozen(&self, shapes: &mut FrozenShapes) {
        match shapes {
            FrozenShapes::Rect { lo, hi } => {
                lo.extend_from_slice(self.lo());
                hi.extend_from_slice(self.hi());
            }
            FrozenShapes::Ball { .. } => panic!("Rect node pushed into Ball SoA buffers"),
        }
    }
}

impl NodeShape for Ball {
    const FAMILY: ShapeFamily = ShapeFamily::Ball;

    fn from_range(points: &PointSet, start: usize, end: usize, scratch: &mut Vec<f64>) -> Self {
        Ball::bounding_range_scratch(points, start, end, scratch)
    }

    fn frozen_shapes(dims: usize, nodes: usize) -> FrozenShapes {
        FrozenShapes::Ball {
            center: Vec::with_capacity(nodes * dims).into(),
            radius: Vec::with_capacity(nodes).into(),
        }
    }

    fn push_frozen(&self, shapes: &mut FrozenShapes) {
        match shapes {
            FrozenShapes::Ball { center, radius } => {
                center.extend_from_slice(self.center());
                radius.push(self.radius());
            }
            FrozenShapes::Rect { .. } => panic!("Ball node pushed into Rect SoA buffers"),
        }
    }
}

/// One tree node: a bounding volume, the Lemma-2 aggregates, the contiguous
/// point range the node owns, and its children (if any).
#[derive(Debug, Clone)]
pub struct Node<S> {
    /// Bounding volume of the node's points.
    pub shape: S,
    /// Aggregate statistics over the node's points.
    pub stats: NodeStats,
    /// First point index (inclusive) in the reordered buffer.
    pub start: usize,
    /// Last point index (exclusive).
    pub end: usize,
    /// Children node ids, `None` for leaves.
    pub children: Option<(NodeId, NodeId)>,
    /// Depth of the node; the root is at depth 0.
    pub depth: u16,
}

impl<S> Node<S> {
    /// Whether the node has no children.
    #[inline]
    pub fn is_leaf(&self) -> bool {
        self.children.is_none()
    }

    /// Number of points owned by the node.
    #[inline]
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the node owns no points (never true for built trees).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// Phase-1 build record: `(start, end, depth, children)`.
type SkeletonNode = (usize, usize, u16, Option<(NodeId, NodeId)>);

/// A median-split tree over a weighted point set.
///
/// Use the [`KdTree`] / [`BallTree`] aliases; the shape parameter is the
/// only difference between the two families.
#[derive(Debug, Clone)]
pub struct Tree<S: NodeShape> {
    points: PointSet,
    weights: Vec<f64>,
    norms2: Vec<f64>,
    perm: Vec<u32>,
    nodes: Vec<Node<S>>,
    leaf_capacity: usize,
    max_depth: u16,
}

/// kd-tree: median-split tree with bounding-rectangle nodes.
pub type KdTree = Tree<Rect>;
/// ball-tree: median-split tree with bounding-ball nodes.
pub type BallTree = Tree<Ball>;

impl<S: NodeShape> Tree<S> {
    /// Builds a tree over `points` with per-point `weights`.
    ///
    /// `leaf_capacity` is the maximum number of points per leaf — the
    /// parameter the paper's index tuning sweeps (Figure 7).
    ///
    /// # Panics
    /// Panics if `points` is empty, `weights.len() != points.len()`,
    /// `leaf_capacity == 0`, or any coordinate/weight is non-finite (see
    /// [`try_build`](Self::try_build) for the typed variant).
    pub fn build(points: PointSet, weights: &[f64], leaf_capacity: usize) -> Self {
        Self::try_build(points, weights, leaf_capacity).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Validating variant of [`build`](Self::build): rejects structural
    /// mismatches and non-finite coordinates/weights with an index-level
    /// [`TreeError`] *before* the median split runs, so the comparator on
    /// the split axis never encounters an unordered NaN mid-build.
    pub fn try_build(
        points: PointSet,
        weights: &[f64],
        leaf_capacity: usize,
    ) -> Result<Self, TreeError> {
        if points.is_empty() {
            return Err(TreeError::EmptyPoints);
        }
        if weights.len() != points.len() {
            return Err(TreeError::LengthMismatch {
                expected: points.len(),
                got: weights.len(),
            });
        }
        if leaf_capacity == 0 {
            return Err(TreeError::ZeroLeafCapacity);
        }
        if let Err(e) = points.check_finite() {
            let karl_geom::GeomError::NonFiniteCoordinate { index, dim, value } = e else {
                unreachable!("check_finite only reports non-finite coordinates")
            };
            return Err(TreeError::NonFiniteCoordinate { index, dim, value });
        }
        if let Some((index, &value)) = weights
            .iter()
            .enumerate()
            .find(|(_, w)| !w.is_finite())
        {
            return Err(TreeError::NonFiniteWeight { index, value });
        }
        Ok(Self::build_unchecked(points, weights, leaf_capacity))
    }

    /// The build proper; inputs already validated.
    fn build_unchecked(points: PointSet, weights: &[f64], leaf_capacity: usize) -> Self {
        let n = points.len();
        let mut idx: Vec<u32> = (0..n as u32).collect();
        // Phase 1: recursively split the index permutation, recording the
        // (start, end, depth, children) skeleton. One scratch buffer serves
        // every split's widest-axis sweep.
        let mut skeleton: Vec<SkeletonNode> = Vec::new();
        let mut scratch: Vec<f64> = Vec::new();
        split_range(
            &points,
            &mut idx,
            0,
            n,
            0,
            leaf_capacity,
            &mut skeleton,
            &mut scratch,
        );

        // Phase 2: materialize the reordered buffers and per-node payloads.
        let usize_idx: Vec<usize> = idx.iter().map(|&i| i as usize).collect();
        let points = points.select(&usize_idx);
        let weights: Vec<f64> = usize_idx.iter().map(|&i| weights[i]).collect();
        let norms2 = points.squared_norms();

        let mut max_depth = 0;
        let nodes: Vec<Node<S>> = skeleton
            .into_iter()
            .map(|(start, end, depth, children)| {
                max_depth = max_depth.max(depth);
                Node {
                    shape: S::from_range(&points, start, end, &mut scratch),
                    stats: NodeStats::from_range(&points, &weights, start, end),
                    start,
                    end,
                    children,
                    depth,
                }
            })
            .collect();

        Self {
            points,
            weights,
            norms2,
            perm: idx,
            nodes,
            leaf_capacity,
            max_depth,
        }
    }

    /// The reordered point buffer. `point(i)` here is the point whose
    /// original index was `perm()[i]`.
    #[inline]
    pub fn points(&self) -> &PointSet {
        &self.points
    }

    /// Weights aligned with [`points`](Self::points).
    #[inline]
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Precomputed `‖pᵢ‖²` aligned with [`points`](Self::points).
    #[inline]
    pub fn norms2(&self) -> &[f64] {
        &self.norms2
    }

    /// `perm()[i]` is the original index of reordered point `i`.
    #[inline]
    pub fn perm(&self) -> &[u32] {
        &self.perm
    }

    /// Id of the root node.
    #[inline]
    pub fn root(&self) -> NodeId {
        0
    }

    /// Borrow a node by id.
    ///
    /// # Panics
    /// Panics if `id` is out of bounds.
    #[inline]
    pub fn node(&self, id: NodeId) -> &Node<S> {
        &self.nodes[id as usize]
    }

    /// Number of nodes in the tree.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of indexed points.
    #[inline]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the tree indexes no points (never true for built trees).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Dimensionality of the indexed points.
    #[inline]
    pub fn dims(&self) -> usize {
        self.points.dims()
    }

    /// The leaf-capacity parameter the tree was built with.
    #[inline]
    pub fn leaf_capacity(&self) -> usize {
        self.leaf_capacity
    }

    /// Depth of the deepest node (root = 0).
    #[inline]
    pub fn max_depth(&self) -> u16 {
        self.max_depth
    }

    /// The *frontier* at depth `l`: internal nodes exactly at depth `l` plus
    /// leaves shallower than `l`. The frontier partitions the point set and
    /// is what the paper's Figure 13 tightness metric aggregates over, and
    /// what the in-situ tuning's simulated tree `T_l` exposes as leaves.
    pub fn frontier_at_depth(&self, l: u16) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut stack = vec![self.root()];
        while let Some(id) = stack.pop() {
            let node = self.node(id);
            if node.depth == l || node.is_leaf() {
                out.push(id);
            } else {
                let (a, b) = node.children.expect("non-leaf has children");
                stack.push(b);
                stack.push(a);
            }
        }
        out
    }

    /// Iterate over all nodes with their ids.
    pub fn iter_nodes(&self) -> impl Iterator<Item = (NodeId, &Node<S>)> {
        self.nodes.iter().enumerate().map(|(i, n)| (i as NodeId, n))
    }
}

/// Recursive phase-1 splitter: partitions `idx[start..end]` by the median of
/// the widest dimension and records the node skeleton in pre-order.
///
/// `axis_scratch` is one shared buffer for the widest-axis sweep (`lo` in
/// `[..d]`, `hi` in `[d..2d]`): the old per-split `Vec<usize>` + throwaway
/// bounding rectangle made build time allocation-bound on deep trees.
#[allow(clippy::too_many_arguments)] // internal recursion, not API
fn split_range(
    points: &PointSet,
    idx: &mut [u32],
    start: usize,
    end: usize,
    depth: u16,
    leaf_capacity: usize,
    skeleton: &mut Vec<SkeletonNode>,
    axis_scratch: &mut Vec<f64>,
) -> NodeId {
    let my_id = skeleton.len() as NodeId;
    skeleton.push((start, end, depth, None));
    let count = end - start;
    if count <= leaf_capacity {
        return my_id;
    }
    // Split axis: widest dimension over the range (same choice the
    // bounding rectangle's widest_dim would make — first axis wins ties).
    let d = points.dims();
    axis_scratch.clear();
    let p0 = points.point(idx[start] as usize);
    axis_scratch.extend_from_slice(p0);
    axis_scratch.extend_from_slice(p0);
    {
        let (lo, hi) = axis_scratch.split_at_mut(d);
        for &i in &idx[start + 1..end] {
            let p = points.point(i as usize);
            for j in 0..d {
                if p[j] < lo[j] {
                    lo[j] = p[j];
                }
                if p[j] > hi[j] {
                    hi[j] = p[j];
                }
            }
        }
    }
    let mut axis = 0;
    let mut best = axis_scratch[d] - axis_scratch[0];
    for j in 1..d {
        let ext = axis_scratch[d + j] - axis_scratch[j];
        if ext > best {
            axis = j;
            best = ext;
        }
    }
    if best == 0.0 {
        // All points identical: splitting cannot make progress; keep a
        // (possibly oversized) leaf instead of recursing forever.
        return my_id;
    }
    let mid = count / 2;
    idx[start..end].select_nth_unstable_by(mid, |&a, &b| {
        let xa = points.point(a as usize)[axis];
        let xb = points.point(b as usize)[axis];
        xa.partial_cmp(&xb).expect("non-finite coordinate")
    });
    #[rustfmt::skip]
    let left = split_range(points, idx, start, start + mid, depth + 1, leaf_capacity, skeleton, axis_scratch);
    #[rustfmt::skip]
    let right = split_range(points, idx, start + mid, end, depth + 1, leaf_capacity, skeleton, axis_scratch);
    skeleton[my_id as usize].3 = Some((left, right));
    my_id
}

#[cfg(test)]
mod tests {
    use super::*;
    use karl_geom::dist2;
    use karl_testkit::prop_assert;
    use karl_testkit::rng::StdRng;
    use karl_testkit::rng::{Rng, SeedableRng};

    fn random_points(n: usize, d: usize, seed: u64) -> PointSet {
        let mut rng = StdRng::seed_from_u64(seed);
        let data: Vec<f64> = (0..n * d).map(|_| rng.random_range(-10.0..10.0)).collect();
        PointSet::new(d, data)
    }

    fn check_node_invariants<S: NodeShape>(tree: &Tree<S>) {
        for (_, node) in tree.iter_nodes() {
            assert!(!node.is_empty());
            // Every owned point lies inside the node volume (distance
            // bounds bracket zero at the point itself).
            for i in node.start..node.end {
                let p = tree.points().point(i);
                assert!(node.shape.mindist2(p) <= 1e-9, "point escapes node shape");
            }
            // Children partition the parent range.
            if let Some((a, b)) = node.children {
                let (l, r) = (tree.node(a), tree.node(b));
                assert_eq!(l.start, node.start);
                assert_eq!(l.end, r.start);
                assert_eq!(r.end, node.end);
                assert_eq!(l.depth, node.depth + 1);
                assert_eq!(r.depth, node.depth + 1);
            } else {
                // A leaf either respects the capacity or is a degenerate
                // all-identical-points node.
                if node.len() > tree.leaf_capacity() {
                    let first = tree.points().point(node.start).to_vec();
                    for i in node.start + 1..node.end {
                        assert_eq!(tree.points().point(i), &first[..]);
                    }
                }
            }
            // Aggregates match a brute-force recomputation.
            let expect = NodeStats::from_range(tree.points(), tree.weights(), node.start, node.end);
            assert_eq!(node.stats.count, expect.count);
            assert!((node.stats.weight_sum - expect.weight_sum).abs() < 1e-9);
            assert!((node.stats.weighted_norm2 - expect.weighted_norm2).abs() < 1e-6);
        }
    }

    #[test]
    fn kd_tree_invariants_random_data() {
        let ps = random_points(300, 4, 1);
        let w: Vec<f64> = (0..300).map(|i| 0.1 + (i % 7) as f64).collect();
        let tree = KdTree::build(ps, &w, 8);
        assert_eq!(tree.len(), 300);
        check_node_invariants(&tree);
    }

    #[test]
    fn ball_tree_invariants_random_data() {
        let ps = random_points(300, 4, 2);
        let w = vec![1.0; 300];
        let tree = BallTree::build(ps, &w, 16);
        check_node_invariants(&tree);
    }

    #[test]
    fn perm_maps_back_to_original_points() {
        let ps = random_points(64, 3, 3);
        let w = vec![1.0; 64];
        let tree = KdTree::build(ps.clone(), &w, 4);
        for i in 0..tree.len() {
            let orig = tree.perm()[i] as usize;
            assert_eq!(tree.points().point(i), ps.point(orig));
        }
    }

    #[test]
    fn weights_follow_permutation() {
        let ps = random_points(50, 2, 4);
        let w: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let tree = KdTree::build(ps, &w, 4);
        for i in 0..tree.len() {
            assert_eq!(tree.weights()[i], tree.perm()[i] as f64);
        }
    }

    #[test]
    fn single_point_tree() {
        let ps = PointSet::new(2, vec![1.0, 2.0]);
        let tree = KdTree::build(ps, &[3.0], 10);
        assert_eq!(tree.num_nodes(), 1);
        assert!(tree.node(tree.root()).is_leaf());
        assert_eq!(tree.node(0).stats.weight_sum, 3.0);
        assert_eq!(tree.max_depth(), 0);
    }

    #[test]
    fn identical_points_terminate() {
        let ps = PointSet::from_rows(&vec![vec![1.0, 1.0]; 20]);
        let tree = KdTree::build(ps, &[1.0; 20], 2);
        // Cannot split identical points: single (oversized) leaf.
        assert_eq!(tree.num_nodes(), 1);
        assert!(tree.node(0).is_leaf());
    }

    #[test]
    fn leaf_capacity_one_gives_singleton_leaves() {
        let ps = random_points(17, 2, 5);
        let tree = KdTree::build(ps, &[1.0; 17], 1);
        for (_, node) in tree.iter_nodes() {
            if node.is_leaf() {
                assert_eq!(node.len(), 1);
            }
        }
    }

    #[test]
    fn frontier_partitions_points() {
        let ps = random_points(200, 3, 6);
        let tree = KdTree::build(ps, &vec![1.0; 200], 4);
        for l in 0..=tree.max_depth() + 1 {
            let frontier = tree.frontier_at_depth(l);
            let total: usize = frontier.iter().map(|&id| tree.node(id).len()).sum();
            assert_eq!(total, 200, "frontier at depth {l} must cover all points");
            // Ranges must be disjoint: sort by start and check adjacency.
            let mut ranges: Vec<(usize, usize)> = frontier
                .iter()
                .map(|&id| (tree.node(id).start, tree.node(id).end))
                .collect();
            ranges.sort_unstable();
            for w in ranges.windows(2) {
                assert_eq!(w[0].1, w[1].0);
            }
        }
    }

    #[test]
    fn frontier_at_zero_is_root() {
        let ps = random_points(100, 2, 7);
        let tree = BallTree::build(ps, &vec![1.0; 100], 8);
        assert_eq!(tree.frontier_at_depth(0), vec![tree.root()]);
    }

    #[test]
    fn norms2_cached_correctly() {
        let ps = random_points(40, 5, 8);
        let tree = KdTree::build(ps, &vec![1.0; 40], 4);
        for i in 0..tree.len() {
            let expect = karl_geom::norm2(tree.points().point(i));
            assert!((tree.norms2()[i] - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn root_stats_cover_everything() {
        let ps = random_points(128, 3, 9);
        let w: Vec<f64> = (0..128).map(|i| (i as f64).sin().abs() + 0.1).collect();
        let tree = KdTree::build(ps.clone(), &w, 16);
        let root = tree.node(tree.root());
        let total_w: f64 = w.iter().sum();
        assert!((root.stats.weight_sum - total_w).abs() < 1e-9);
        assert_eq!(root.stats.count, 128);
        // mindist from any original point to the root volume is 0.
        for p in ps.iter() {
            assert!(root.shape.mindist2(p) <= 1e-9);
        }
    }

    #[test]
    fn try_build_rejects_with_index_level_diagnostics() {
        let mut ps = random_points(16, 2, 11);
        assert!(matches!(
            KdTree::try_build(ps.clone(), &[1.0; 15], 4),
            Err(TreeError::LengthMismatch {
                expected: 16,
                got: 15
            })
        ));
        assert!(matches!(
            KdTree::try_build(ps.clone(), &[1.0; 16], 0),
            Err(TreeError::ZeroLeafCapacity)
        ));
        let mut w = vec![1.0; 16];
        w[9] = f64::NAN;
        assert!(matches!(
            KdTree::try_build(ps.clone(), &w, 4),
            Err(TreeError::NonFiniteWeight { index: 9, .. })
        ));
        ps.point_mut(5)[1] = f64::INFINITY;
        assert!(matches!(
            KdTree::try_build(ps, &[1.0; 16], 4),
            Err(TreeError::NonFiniteCoordinate {
                index: 5,
                dim: 1,
                ..
            })
        ));
        assert!(matches!(
            BallTree::try_build(PointSet::empty(2), &[], 4),
            Err(TreeError::EmptyPoints)
        ));
        assert!(KdTree::try_build(random_points(8, 2, 12), &[1.0; 8], 4).is_ok());
    }

    #[test]
    fn median_split_balances_counts() {
        let ps = random_points(256, 2, 10);
        let tree = KdTree::build(ps, &vec![1.0; 256], 1);
        let root = tree.node(tree.root());
        let (a, b) = root.children.unwrap();
        assert_eq!(tree.node(a).len(), 128);
        assert_eq!(tree.node(b).len(), 128);
    }

    karl_testkit::props! {
        /// Exact aggregation over the root equals brute force over the
        /// original data, and every node's S(q) expansion is consistent.
        #[test]
        fn prop_tree_preserves_aggregates(
            n in 1usize..60,
            seed in 0u64..500,
            qx in -10.0f64..10.0,
            qy in -10.0f64..10.0,
        ) {
            let ps = random_points(n, 2, seed);
            let w: Vec<f64> = (0..n).map(|i| 0.5 + (i % 3) as f64).collect();
            let tree = KdTree::build(ps.clone(), &w, 4);
            let q = [qx, qy];
            let qn = karl_geom::norm2(&q);
            let fast = tree.node(tree.root()).stats.weighted_dist2_sum(&q, qn);
            let slow: f64 = (0..n).map(|i| w[i] * dist2(&q, ps.point(i))).sum();
            prop_assert!((fast - slow).abs() / (1.0 + slow.abs()) < 1e-9);
        }
    }
}
