//! Frozen structure-of-arrays evaluation index.
//!
//! A built [`Tree`](crate::Tree) is a pointer-style arena: every node owns
//! its shape (`Rect` lo/hi or `Ball` center) and its `a_R` aggregate as
//! separate heap `Vec<f64>`s, so each heap pop during branch-and-bound
//! evaluation chases 3–4 scattered allocations. [`FrozenTree`] is the
//! read-only compilation of that tree into node-major flat buffers: all
//! shape coordinates, aggregates and topology live in a handful of
//! contiguous arrays indexed by `NodeId`, so a per-node bound probe walks
//! a few adjacent cache lines instead of the allocator's scatter.
//!
//! The frozen index carries *node* data only. Leaf refinement still reads
//! the point/weight/norm buffers of the originating `Tree`, which the
//! evaluator retains anyway — for construction, introspection and as the
//! differential-test oracle the frozen path is checked against.
//!
//! Freezing copies values verbatim (no reordering, no re-summation), so
//! bounds computed from a frozen node are bit-identical to bounds computed
//! from the pointer node.

use karl_geom::{Buf, PointSet};

use crate::tree::{NodeId, NodeShape, Tree};

/// Child-id sentinel marking a leaf in [`FrozenTree::left`]/`right`.
pub const NO_CHILD: u32 = u32::MAX;

/// SoA shape buffers of a frozen tree: the per-family node volumes packed
/// node-major, `d` coordinates per node. The buffers are [`Buf`]s, so a
/// frozen tree either owns its storage (freshly frozen) or borrows a
/// loaded index arena (see [`crate::persist`]) — identically shaped either
/// way.
#[derive(Debug, Clone, PartialEq)]
pub enum FrozenShapes {
    /// kd-tree family: rectangle corners, each `nodes × d` long.
    Rect {
        /// Lower corners, node-major.
        lo: Buf<f64>,
        /// Upper corners, node-major.
        hi: Buf<f64>,
    },
    /// ball-tree family: centers (`nodes × d`) and per-node radii.
    Ball {
        /// Ball centers, node-major.
        center: Buf<f64>,
        /// Ball radii, one per node.
        radius: Buf<f64>,
    },
}

/// A read-only, node-major compilation of a built [`Tree`].
///
/// All per-node data lives in parallel flat arrays indexed by `NodeId`
/// (pre-order, root = 0, matching the source tree's ids exactly):
/// shape coordinates in [`FrozenShapes`], the Lemma-2 aggregates
/// (`W_R`, `a_R`, `b_R`), point ranges, depths, and child links with
/// [`NO_CHILD`] marking leaves.
#[derive(Debug, Clone)]
pub struct FrozenTree {
    pub(crate) dims: usize,
    pub(crate) shapes: FrozenShapes,
    pub(crate) weight_sum: Buf<f64>,
    /// `a_R` for every node, one contiguous `nodes × d` buffer.
    pub(crate) weighted_sum: Buf<f64>,
    pub(crate) weighted_norm2: Buf<f64>,
    pub(crate) count: Buf<u32>,
    pub(crate) depth: Buf<u16>,
    pub(crate) start: Buf<u32>,
    pub(crate) end: Buf<u32>,
    pub(crate) left: Buf<u32>,
    pub(crate) right: Buf<u32>,
}

impl FrozenTree {
    /// Compiles a built tree into the SoA layout. Values are copied
    /// verbatim; node ids are preserved.
    pub fn freeze<S: NodeShape>(tree: &Tree<S>) -> Self {
        let n = tree.num_nodes();
        let d = tree.dims();
        let mut shapes = S::frozen_shapes(d, n);
        let mut weight_sum = Vec::with_capacity(n);
        let mut weighted_sum = Vec::with_capacity(n * d);
        let mut weighted_norm2 = Vec::with_capacity(n);
        let mut count = Vec::with_capacity(n);
        let mut depth = Vec::with_capacity(n);
        let mut start = Vec::with_capacity(n);
        let mut end = Vec::with_capacity(n);
        let mut left = Vec::with_capacity(n);
        let mut right = Vec::with_capacity(n);
        for (_, node) in tree.iter_nodes() {
            node.shape.push_frozen(&mut shapes);
            weight_sum.push(node.stats.weight_sum);
            weighted_sum.extend_from_slice(&node.stats.weighted_sum);
            weighted_norm2.push(node.stats.weighted_norm2);
            count.push(node.stats.count as u32);
            depth.push(node.depth);
            start.push(node.start as u32);
            end.push(node.end as u32);
            let (l, r) = node.children.unwrap_or((NO_CHILD, NO_CHILD));
            left.push(l);
            right.push(r);
        }
        Self {
            dims: d,
            shapes,
            weight_sum: weight_sum.into(),
            weighted_sum: weighted_sum.into(),
            weighted_norm2: weighted_norm2.into(),
            count: count.into(),
            depth: depth.into(),
            start: start.into(),
            end: end.into(),
            left: left.into(),
            right: right.into(),
        }
    }

    /// Dimensionality of the indexed points.
    #[inline]
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.weight_sum.len()
    }

    /// Id of the root node.
    #[inline]
    pub fn root(&self) -> NodeId {
        0
    }

    /// Whether `id` is a leaf.
    #[inline]
    pub fn is_leaf(&self, id: NodeId) -> bool {
        self.left[id as usize] == NO_CHILD
    }

    /// Children of `id`, `None` for leaves.
    #[inline]
    pub fn children(&self, id: NodeId) -> Option<(NodeId, NodeId)> {
        let l = self.left[id as usize];
        if l == NO_CHILD {
            None
        } else {
            Some((l, self.right[id as usize]))
        }
    }

    /// Depth of `id` (root = 0).
    #[inline]
    pub fn depth(&self, id: NodeId) -> u16 {
        self.depth[id as usize]
    }

    /// The contiguous point range `[start, end)` owned by `id` in the
    /// originating tree's reordered buffers.
    #[inline]
    pub fn range(&self, id: NodeId) -> (usize, usize) {
        (
            self.start[id as usize] as usize,
            self.end[id as usize] as usize,
        )
    }

    /// Number of points owned by `id`.
    #[inline]
    pub fn count(&self, id: NodeId) -> usize {
        self.count[id as usize] as usize
    }

    /// `W_R = Σ wᵢ` of `id`.
    #[inline]
    pub fn weight_sum(&self, id: NodeId) -> f64 {
        self.weight_sum[id as usize]
    }

    /// `b_R = Σ wᵢ·‖pᵢ‖²` of `id`.
    #[inline]
    pub fn weighted_norm2(&self, id: NodeId) -> f64 {
        self.weighted_norm2[id as usize]
    }

    /// `a_R = Σ wᵢ·pᵢ` of `id`: a `d`-length slice into the contiguous
    /// aggregate buffer.
    #[inline]
    pub fn weighted_sum(&self, id: NodeId) -> &[f64] {
        let s = id as usize * self.dims;
        &self.weighted_sum[s..s + self.dims]
    }

    /// Appends `id`'s children to `out` (left then right — the canonical
    /// refinement order) and reports whether any were appended. The
    /// branch-and-bound frontier pass gathers children through this helper
    /// so the subsequent batched geometry kernels see one contiguous id
    /// list per pop.
    #[inline]
    pub fn gather_children(&self, id: NodeId, out: &mut Vec<NodeId>) -> bool {
        let l = self.left[id as usize];
        if l == NO_CHILD {
            false
        } else {
            out.push(l);
            out.push(self.right[id as usize]);
            true
        }
    }

    /// The full node-major `a_R` aggregate buffer (`num_nodes × dims`),
    /// for batched kernels that index it by node id themselves.
    #[inline]
    pub fn weighted_sums(&self) -> &[f64] {
        &self.weighted_sum
    }

    /// The full per-node `W_R` buffer (`num_nodes`), for batched kernels
    /// that index it by node id themselves — the dual-tree pair kernels
    /// need the weight sum alongside `a_R` for every node in one pass.
    #[inline]
    pub fn weight_sums(&self) -> &[f64] {
        &self.weight_sum
    }

    /// The packed shape buffers.
    #[inline]
    pub fn shapes(&self) -> &FrozenShapes {
        &self.shapes
    }

    /// Deepest node depth (root = 0). `0` for a single-leaf tree. Loaded
    /// trees have no originating pointer [`Tree`] to ask, so this scans
    /// the flat depth buffer.
    pub fn max_depth(&self) -> usize {
        self.depth.iter().copied().max().unwrap_or(0) as usize
    }

    /// Per-section byte sizes of the flat evaluation buffers, labelled the
    /// way `karl index info` reports them. Section names are stable (they
    /// double as regression-review keys): the shape pair is
    /// `shape.lo`/`shape.hi` for the kd family and
    /// `shape.center`/`shape.radius` for the ball family.
    pub fn footprint_sections(&self) -> Vec<(&'static str, usize)> {
        const F64: usize = std::mem::size_of::<f64>();
        const U32: usize = std::mem::size_of::<u32>();
        const U16: usize = std::mem::size_of::<u16>();
        let mut out = Vec::with_capacity(11);
        match &self.shapes {
            FrozenShapes::Rect { lo, hi } => {
                out.push(("shape.lo", lo.len() * F64));
                out.push(("shape.hi", hi.len() * F64));
            }
            FrozenShapes::Ball { center, radius } => {
                out.push(("shape.center", center.len() * F64));
                out.push(("shape.radius", radius.len() * F64));
            }
        }
        out.push(("weight_sum", self.weight_sum.len() * F64));
        out.push(("weighted_sum", self.weighted_sum.len() * F64));
        out.push(("weighted_norm2", self.weighted_norm2.len() * F64));
        out.push(("count", self.count.len() * U32));
        out.push(("depth", self.depth.len() * U16));
        out.push(("start", self.start.len() * U32));
        out.push(("end", self.end.len() * U32));
        out.push(("left", self.left.len() * U32));
        out.push(("right", self.right.len() * U32));
        out
    }

    /// Total heap bytes held by the flat evaluation buffers (the sum of
    /// [`footprint_sections`](Self::footprint_sections)). Lets callers
    /// that stack a small front-tier tree on top of a full index (the
    /// coreset cascade) report the extra footprint the tier costs.
    pub fn footprint_bytes(&self) -> usize {
        self.footprint_sections().iter().map(|(_, b)| b).sum()
    }
}

impl<S: NodeShape> Tree<S> {
    /// Compiles this tree into its [`FrozenTree`] SoA evaluation index.
    pub fn freeze(&self) -> FrozenTree {
        FrozenTree::freeze(self)
    }
}

/// Convenience: freeze a tree built fresh over `points`/`weights` (used by
/// tests and benchmarks).
pub fn freeze_built<S: NodeShape>(
    points: PointSet,
    weights: &[f64],
    leaf_capacity: usize,
) -> (Tree<S>, FrozenTree) {
    let tree = Tree::<S>::build(points, weights, leaf_capacity);
    let frozen = tree.freeze();
    (tree, frozen)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::{BallTree, KdTree};
    use karl_geom::BoundingShape;
    use karl_testkit::rng::{Rng, SeedableRng, StdRng};

    fn random_points(n: usize, d: usize, seed: u64) -> PointSet {
        let mut rng = StdRng::seed_from_u64(seed);
        let data: Vec<f64> = (0..n * d).map(|_| rng.random_range(-10.0..10.0)).collect();
        PointSet::new(d, data)
    }

    /// Every frozen field must be a verbatim copy of the pointer node —
    /// bitwise, since freezing performs no arithmetic.
    fn check_frozen_matches<S: NodeShape>(tree: &Tree<S>, frozen: &FrozenTree) {
        assert_eq!(frozen.num_nodes(), tree.num_nodes());
        assert_eq!(frozen.dims(), tree.dims());
        assert_eq!(frozen.root(), tree.root());
        for (id, node) in tree.iter_nodes() {
            assert_eq!(frozen.is_leaf(id), node.is_leaf());
            assert_eq!(frozen.children(id), node.children);
            assert_eq!(frozen.depth(id), node.depth);
            assert_eq!(frozen.range(id), (node.start, node.end));
            assert_eq!(frozen.count(id), node.stats.count);
            assert_eq!(frozen.weight_sum(id), node.stats.weight_sum);
            assert_eq!(frozen.weighted_norm2(id), node.stats.weighted_norm2);
            assert_eq!(frozen.weighted_sum(id), &node.stats.weighted_sum[..]);
        }
    }

    #[test]
    fn kd_freeze_copies_every_field_bitwise() {
        let ps = random_points(300, 4, 11);
        let w: Vec<f64> = (0..300).map(|i| 0.1 + (i % 7) as f64).collect();
        let tree = KdTree::build(ps, &w, 8);
        let frozen = tree.freeze();
        check_frozen_matches(&tree, &frozen);
        let FrozenShapes::Rect { lo, hi } = frozen.shapes() else {
            panic!("kd tree must freeze to Rect buffers");
        };
        assert_eq!(lo.len(), tree.num_nodes() * tree.dims());
        for (id, node) in tree.iter_nodes() {
            let s = id as usize * tree.dims();
            assert_eq!(&lo[s..s + tree.dims()], node.shape.lo());
            assert_eq!(&hi[s..s + tree.dims()], node.shape.hi());
        }
    }

    #[test]
    fn ball_freeze_copies_every_field_bitwise() {
        let ps = random_points(250, 3, 12);
        let w: Vec<f64> = (0..250).map(|i| (i as f64 * 0.37).sin()).collect();
        let tree = BallTree::build(ps, &w, 5);
        let frozen = tree.freeze();
        check_frozen_matches(&tree, &frozen);
        let FrozenShapes::Ball { center, radius } = frozen.shapes() else {
            panic!("ball tree must freeze to Ball buffers");
        };
        assert_eq!(radius.len(), tree.num_nodes());
        for (id, node) in tree.iter_nodes() {
            let s = id as usize * tree.dims();
            assert_eq!(&center[s..s + tree.dims()], node.shape.center());
            assert_eq!(radius[id as usize], node.shape.radius());
        }
    }

    #[test]
    fn gather_children_appends_left_then_right() {
        let ps = random_points(200, 3, 14);
        let tree = KdTree::build(ps, &vec![1.0; 200], 8);
        let frozen = tree.freeze();
        let mut out = Vec::new();
        for (id, node) in tree.iter_nodes() {
            out.clear();
            out.push(999); // pre-existing content must be preserved
            let gathered = frozen.gather_children(id, &mut out);
            match node.children {
                Some((l, r)) => {
                    assert!(gathered);
                    assert_eq!(out, vec![999, l, r]);
                }
                None => {
                    assert!(!gathered);
                    assert_eq!(out, vec![999]);
                }
            }
        }
        // The flat aggregate buffer matches the per-node slices.
        for (id, _) in tree.iter_nodes() {
            let s = id as usize * frozen.dims();
            assert_eq!(
                &frozen.weighted_sums()[s..s + frozen.dims()],
                frozen.weighted_sum(id)
            );
        }
    }

    #[test]
    fn footprint_counts_every_buffer_exactly() {
        let ps = random_points(150, 3, 15);
        let tree = KdTree::build(ps, &vec![1.0; 150], 4);
        let frozen = tree.freeze();
        let n = frozen.num_nodes();
        let d = frozen.dims();
        // Rect shapes: 2 corner buffers of n*d f64s; aggregates: W_R (n),
        // a_R (n*d), b_R (n); links/ranges/counts: 5 u32 buffers; depth u16.
        let expected = (2 * n * d + n + n * d + n) * 8 + 5 * n * 4 + n * 2;
        assert_eq!(frozen.footprint_bytes(), expected);
        // A coreset-sized tree must be strictly smaller than the full one.
        let small = KdTree::build(random_points(10, 3, 15), &[1.0; 10], 4).freeze();
        assert!(small.footprint_bytes() < frozen.footprint_bytes());
    }

    #[test]
    fn single_node_tree_freezes_to_one_leaf() {
        let ps = PointSet::new(2, vec![1.0, 2.0]);
        let tree = KdTree::build(ps, &[3.0], 10);
        let frozen = tree.freeze();
        assert_eq!(frozen.num_nodes(), 1);
        assert!(frozen.is_leaf(frozen.root()));
        assert_eq!(frozen.children(frozen.root()), None);
        assert_eq!(frozen.range(0), (0, 1));
        assert_eq!(frozen.weight_sum(0), 3.0);
    }

    #[test]
    fn frozen_shape_probe_matches_pointer_shape() {
        // The SoA slices must reproduce the pointer shape's bound queries
        // bitwise when fed through the same primitives.
        let ps = random_points(120, 5, 13);
        let tree = KdTree::build(ps, &vec![1.0; 120], 6);
        let frozen = tree.freeze();
        let FrozenShapes::Rect { lo, hi } = frozen.shapes() else {
            unreachable!()
        };
        let q: Vec<f64> = (0..5).map(|i| i as f64 * 0.9 - 2.0).collect();
        for (id, node) in tree.iter_nodes() {
            let s = id as usize * 5;
            let (mn, mx, _) = karl_geom::rect_dist::<false>(&q, &lo[s..s + 5], &hi[s..s + 5], &[]);
            assert_eq!(mn, node.shape.mindist2(&q));
            assert_eq!(mx, node.shape.maxdist2(&q));
        }
    }
}
