//! Automatic index tuning (Section III-C of the paper).
//!
//! The throughput of the branch-and-bound evaluator depends on the index
//! family (kd-tree vs ball-tree) and on the leaf capacity, and the best
//! choice is dataset-dependent (Figure 7). Two tuners are provided:
//!
//! * [`OfflineTuner`] — the offline scenario: the dataset is known in
//!   advance and tuning time is free. Builds one index per
//!   (family, leaf-capacity) candidate, measures throughput on a small
//!   query sample, and returns the fastest (`KARL_auto`, Table VIII).
//! * [`OnlineTuner`] — the in-situ scenario (online kernel learning): index
//!   construction and tuning count against the clock. Builds a single deep
//!   kd-tree, *simulates* the trees `T_i` that keep only the top `i` levels
//!   (a depth-capped query over the full tree behaves exactly like a query
//!   over `T_i`), spends a small fraction of the query stream finding the
//!   best level, and answers the remainder there (`KARL_online`, Table IX).

use std::time::{Duration, Instant};

use karl_geom::PointSet;

use crate::bounds::BoundMethod;
use crate::coreset::Coreset;
use crate::error::KarlError;
use crate::eval::{BallEvaluator, Evaluator, KdEvaluator, Query, RunOutcome};
use crate::kernel::Kernel;

/// The index families the tuner chooses between (the two supported by
/// Scikit-learn, which the paper mirrors).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexKind {
    /// kd-tree (bounding-rectangle nodes).
    Kd,
    /// ball-tree (bounding-ball nodes).
    Ball,
}

/// A runtime-dispatched evaluator over either index family.
#[derive(Debug, Clone)]
pub enum AnyEvaluator {
    /// kd-tree backed evaluator.
    Kd(KdEvaluator),
    /// ball-tree backed evaluator.
    Ball(BallEvaluator),
}

impl AnyEvaluator {
    /// Builds an evaluator of the requested family.
    pub fn build(
        kind: IndexKind,
        points: &PointSet,
        weights: &[f64],
        kernel: Kernel,
        method: BoundMethod,
        leaf_capacity: usize,
    ) -> Self {
        match kind {
            IndexKind::Kd => AnyEvaluator::Kd(Evaluator::build(
                points,
                weights,
                kernel,
                method,
                leaf_capacity,
            )),
            IndexKind::Ball => AnyEvaluator::Ball(Evaluator::build(
                points,
                weights,
                kernel,
                method,
                leaf_capacity,
            )),
        }
    }

    /// Attaches a certified coreset front tier to whichever family backs
    /// this evaluator (see [`Evaluator::with_coreset_tier`]).
    pub fn with_coreset_tier(
        self,
        coreset: &Coreset,
        leaf_capacity: usize,
    ) -> Result<Self, KarlError> {
        Ok(match self {
            AnyEvaluator::Kd(e) => AnyEvaluator::Kd(e.with_coreset_tier(coreset, leaf_capacity)?),
            AnyEvaluator::Ball(e) => {
                AnyEvaluator::Ball(e.with_coreset_tier(coreset, leaf_capacity)?)
            }
        })
    }

    /// Whether a coreset front tier is attached.
    pub fn has_coreset_tier(&self) -> bool {
        match self {
            AnyEvaluator::Kd(e) => e.has_coreset_tier(),
            AnyEvaluator::Ball(e) => e.has_coreset_tier(),
        }
    }

    /// Heap bytes of the attached tier's frozen indexes, if any.
    pub fn tier_footprint_bytes(&self) -> Option<usize> {
        match self {
            AnyEvaluator::Kd(e) => e.tier_footprint_bytes(),
            AnyEvaluator::Ball(e) => e.tier_footprint_bytes(),
        }
    }

    /// Which family backs this evaluator.
    pub fn kind(&self) -> IndexKind {
        match self {
            AnyEvaluator::Kd(_) => IndexKind::Kd,
            AnyEvaluator::Ball(_) => IndexKind::Ball,
        }
    }

    /// Threshold query (see [`Evaluator::tkaq`]).
    pub fn tkaq(&self, q: &[f64], tau: f64) -> bool {
        match self {
            AnyEvaluator::Kd(e) => e.tkaq(q, tau),
            AnyEvaluator::Ball(e) => e.tkaq(q, tau),
        }
    }

    /// Approximate query (see [`Evaluator::ekaq`]).
    pub fn ekaq(&self, q: &[f64], eps: f64) -> f64 {
        match self {
            AnyEvaluator::Kd(e) => e.ekaq(q, eps),
            AnyEvaluator::Ball(e) => e.ekaq(q, eps),
        }
    }

    /// Exact aggregate (see [`Evaluator::exact`]).
    pub fn exact(&self, q: &[f64]) -> f64 {
        match self {
            AnyEvaluator::Kd(e) => e.exact(q),
            AnyEvaluator::Ball(e) => e.exact(q),
        }
    }

    /// Raw query run (see [`Evaluator::run_query`]).
    pub fn run_query(&self, q: &[f64], query: Query, level_cap: Option<u16>) -> RunOutcome {
        match self {
            AnyEvaluator::Kd(e) => e.run_query(q, query, level_cap),
            AnyEvaluator::Ball(e) => e.run_query(q, query, level_cap),
        }
    }

    /// Answers `query` as the workload-appropriate scalar: TKAQ answers map
    /// to `1.0` / `0.0`, eKAQ answers to the estimate. Used by benchmark
    /// plumbing that is generic over the workload.
    pub fn answer(&self, q: &[f64], query: Query) -> f64 {
        match query {
            Query::Tkaq { tau } => {
                if self.tkaq(q, tau) {
                    1.0
                } else {
                    0.0
                }
            }
            Query::Ekaq { eps } => self.ekaq(q, eps),
            Query::Within { tol } => match self {
                AnyEvaluator::Kd(e) => e.within(q, tol).0,
                AnyEvaluator::Ball(e) => e.within(q, tol).0,
            },
        }
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        match self {
            AnyEvaluator::Kd(e) => e.len(),
            AnyEvaluator::Ball(e) => e.len(),
        }
    }

    /// Dimensionality of the indexed points.
    pub fn dims(&self) -> usize {
        match self {
            AnyEvaluator::Kd(e) => e.dims(),
            AnyEvaluator::Ball(e) => e.dims(),
        }
    }

    /// Whether no points are indexed (never true once built).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Where a persistent index is expected to live when it is queried —
/// the knob of the storage-aware tuner.
///
/// The branch-and-bound loop pays two very different prices per visited
/// node depending on residence: an in-memory (or page-cached) index costs
/// roughly a cache miss per node, while a cold on-disk index pays the
/// storage stack's per-access latency plus a per-byte transfer cost. The
/// optimal leaf capacity moves accordingly: cheap node visits favour
/// small leaves (tight bounds, little exact work), expensive ones favour
/// large leaves (fewer visits, sequential leaf scans).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StorageProfile {
    /// Index resident in RAM (the default; matches the in-process tuner).
    #[default]
    Memory,
    /// Index loaded cold from persistent storage per query batch.
    Disk,
}

impl std::fmt::Display for StorageProfile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            StorageProfile::Memory => "memory",
            StorageProfile::Disk => "disk",
        })
    }
}

impl StorageProfile {
    /// Parses the CLI spelling (`memory` / `disk`, case-insensitive).
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "memory" | "mem" | "ram" => Some(StorageProfile::Memory),
            "disk" | "ssd" | "cold" => Some(StorageProfile::Disk),
            _ => None,
        }
    }
}

/// The two measured parameters of the storage cost model: what one node
/// visit costs (latency) and what one transferred byte costs (bandwidth).
///
/// Recorded in the index file header at build time so `karl index info`
/// can report the assumptions the stored layout was tuned under.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StorageCalibration {
    /// Fixed cost per node visit, in nanoseconds (pointer chase / seek).
    pub node_visit_ns: f64,
    /// Cost per byte moved to the CPU, in nanoseconds.
    pub byte_read_ns: f64,
}

impl StorageCalibration {
    /// Canned calibration constants per profile: a RAM visit is a cache
    /// miss (~60 ns) with ~100 GB/s streaming; a cold-storage visit pays
    /// ~80 µs of stack latency with ~500 MB/s effective bandwidth.
    pub fn canned(profile: StorageProfile) -> Self {
        match profile {
            StorageProfile::Memory => Self {
                node_visit_ns: 60.0,
                byte_read_ns: 0.01,
            },
            StorageProfile::Disk => Self {
                node_visit_ns: 80_000.0,
                byte_read_ns: 2.0,
            },
        }
    }

    /// Measures the *memory* parameters on this machine with a short
    /// pointer-chase (latency) and sequential-sum (bandwidth) probe.
    /// Deterministic access pattern; only the timings vary per host.
    pub fn measure() -> Self {
        // Latency: chase a shuffled permutation so the prefetcher can't
        // help. 1 Mi entries × 8 B = 8 MiB, comfortably past L2.
        const N: usize = 1 << 20;
        let mut next: Vec<u32> = (0..N as u32).collect();
        // Deterministic LCG shuffle (no external RNG dependency here).
        let mut state = 0x9e37_79b9_7f4a_7c15u64;
        for i in (1..N).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            next.swap(i, j);
        }
        let t0 = Instant::now();
        let mut idx = 0u32;
        for _ in 0..N {
            idx = next[idx as usize];
        }
        std::hint::black_box(idx);
        let node_visit_ns = (t0.elapsed().as_nanos() as f64 / N as f64).max(1.0);

        // Bandwidth: stream the same buffer sequentially.
        let t1 = Instant::now();
        let sum: u64 = next.iter().map(|&x| x as u64).sum();
        std::hint::black_box(sum);
        let bytes = (N * std::mem::size_of::<u32>()) as f64;
        let byte_read_ns = (t1.elapsed().as_nanos() as f64 / bytes).max(1e-4);
        Self {
            node_visit_ns,
            byte_read_ns,
        }
    }

    /// Calibration for `profile`: measured on this host for
    /// [`Memory`](StorageProfile::Memory), canned constants for
    /// [`Disk`](StorageProfile::Disk) (cold-storage latency cannot be
    /// probed without actually owning the target device).
    pub fn for_profile(profile: StorageProfile) -> Self {
        match profile {
            StorageProfile::Memory => Self::measure(),
            StorageProfile::Disk => Self::canned(StorageProfile::Disk),
        }
    }
}

/// One candidate of the storage-aware analytic sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StorageCandidate {
    /// The index family tried.
    pub kind: IndexKind,
    /// The leaf capacity tried.
    pub leaf_capacity: usize,
    /// Modelled per-query cost in nanoseconds.
    pub est_cost_ns: f64,
}

/// The storage-aware tuning decision plus the full modelled sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct StoragePlan {
    /// Chosen index family.
    pub kind: IndexKind,
    /// Chosen leaf capacity.
    pub leaf_capacity: usize,
    /// The profile the plan was made for.
    pub profile: StorageProfile,
    /// The calibration the cost model used.
    pub calibration: StorageCalibration,
    /// Every candidate with its modelled cost, cheapest first.
    pub candidates: Vec<StorageCandidate>,
}

/// Bytes the evaluator touches per visited node of each family: the
/// frozen SoA row (shape + aggregates as `f64`, counts/ranges/links as
/// `u32`/`u16`), matching [`FrozenTree::footprint_sections`] per node.
///
/// [`FrozenTree::footprint_sections`]: karl_tree::FrozenTree::footprint_sections
fn node_bytes(kind: IndexKind, dims: usize) -> f64 {
    let d = dims as f64;
    let aggregates = (d + 2.0) * 8.0; // weighted_sum + weight_sum + weighted_norm2
    let links = 22.0; // count/start/end/left/right u32 + depth u16
    match kind {
        IndexKind::Kd => 2.0 * d * 8.0 + aggregates + links,
        IndexKind::Ball => (d + 1.0) * 8.0 + aggregates + links,
    }
}

/// Analytic storage-aware tuner: picks (family, leaf capacity) from a
/// two-parameter cost model instead of a measured sweep, so it can plan
/// for a device the build machine does not have (the `--profile disk`
/// case of `karl index build`).
///
/// Model: branch-and-bound refinement visits a corridor of `k` nodes per
/// level down a tree of `log₂(n / c)` levels, then refines `k` leaves of
/// `c` points each. Per node it pays `t_node + node_bytes · t_byte`; per
/// leaf additionally the point payload `c·(d+2)·8 · t_byte` plus the
/// arithmetic of `c` kernel evaluations. The corridor is wider for
/// rectangles in high dimension (their bounds loosen faster than balls'),
/// which is what lets the model flip family with `d`.
///
/// The absolute numbers are rough, but the *argmin* over candidates only
/// needs the relative shape: expensive node visits (disk) push the
/// optimum toward large leaves, cheap ones (memory) toward small leaves —
/// exactly the monotonicity the tests pin down.
pub fn plan_for_storage(
    n: usize,
    dims: usize,
    profile: StorageProfile,
    calibration: StorageCalibration,
) -> StoragePlan {
    const CAPS: [usize; 7] = [10, 20, 40, 80, 160, 320, 640];
    let d = dims as f64;
    let t_node = calibration.node_visit_ns.max(0.0);
    let t_byte = calibration.byte_read_ns.max(0.0);
    let mut candidates = Vec::with_capacity(2 * CAPS.len());
    for kind in [IndexKind::Kd, IndexKind::Ball] {
        let corridor = match kind {
            IndexKind::Kd => 8.0 * (1.0 + d / 16.0),
            IndexKind::Ball => 12.0,
        };
        let nb = node_bytes(kind, dims);
        for &cap in &CAPS {
            let c = cap as f64;
            let levels = ((n as f64 / c).max(2.0)).log2();
            let descend = corridor * levels * (t_node + nb * t_byte);
            let leaf_bytes = c * (d + 2.0) * 8.0;
            let eval_ns = c * (0.5 * d + 3.0);
            let refine = corridor * (t_node + leaf_bytes * t_byte + eval_ns);
            candidates.push(StorageCandidate {
                kind,
                leaf_capacity: cap,
                est_cost_ns: descend + refine,
            });
        }
    }
    // Cheapest first; break ties toward the kd family and the smaller
    // capacity so the plan is deterministic.
    candidates.sort_by(|a, b| {
        a.est_cost_ns
            .total_cmp(&b.est_cost_ns)
            .then_with(|| (a.kind == IndexKind::Ball).cmp(&(b.kind == IndexKind::Ball)))
            .then_with(|| a.leaf_capacity.cmp(&b.leaf_capacity))
    });
    let best = candidates[0];
    StoragePlan {
        kind: best.kind,
        leaf_capacity: best.leaf_capacity,
        profile,
        calibration,
        candidates,
    }
}

/// One measured tuning candidate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CandidateResult {
    /// The index family tried.
    pub kind: IndexKind,
    /// The leaf capacity tried.
    pub leaf_capacity: usize,
    /// Measured throughput (queries / second) on the sample.
    pub throughput: f64,
    /// Wall-clock time spent answering the sample.
    pub elapsed: Duration,
}

/// Result of an offline tuning sweep.
#[derive(Debug)]
pub struct OfflineTuningOutcome {
    /// The fastest evaluator (`KARL_auto`).
    pub best: AnyEvaluator,
    /// Every candidate with its measured throughput, best first.
    pub report: Vec<CandidateResult>,
}

/// Offline tuner: exhaustive sweep over (family × leaf capacity) scored on
/// a query sample.
#[derive(Debug, Clone)]
pub struct OfflineTuner {
    /// Leaf capacities to try (paper default: 10,20,40,…,640).
    pub leaf_capacities: Vec<usize>,
    /// Index families to try.
    pub index_kinds: Vec<IndexKind>,
}

impl Default for OfflineTuner {
    fn default() -> Self {
        Self {
            leaf_capacities: vec![10, 20, 40, 80, 160, 320, 640],
            index_kinds: vec![IndexKind::Kd, IndexKind::Ball],
        }
    }
}

impl OfflineTuner {
    /// Sweeps every candidate, measuring throughput of `workload` over
    /// `sample` queries, and returns the fastest evaluator plus the full
    /// report (sorted fastest-first).
    ///
    /// # Panics
    /// Panics if the candidate lists or the sample are empty.
    pub fn tune(
        &self,
        points: &PointSet,
        weights: &[f64],
        kernel: Kernel,
        method: BoundMethod,
        sample: &PointSet,
        workload: Query,
    ) -> OfflineTuningOutcome {
        assert!(!self.leaf_capacities.is_empty(), "no leaf capacities");
        assert!(!self.index_kinds.is_empty(), "no index kinds");
        assert!(!sample.is_empty(), "empty tuning sample");
        let mut best: Option<(f64, AnyEvaluator)> = None;
        let mut report = Vec::new();
        for &kind in &self.index_kinds {
            for &cap in &self.leaf_capacities {
                let eval = AnyEvaluator::build(kind, points, weights, kernel, method, cap);
                let start = Instant::now();
                for q in sample.iter() {
                    std::hint::black_box(eval.answer(q, workload));
                }
                let elapsed = start.elapsed();
                let throughput = sample.len() as f64 / elapsed.as_secs_f64().max(1e-12);
                report.push(CandidateResult {
                    kind,
                    leaf_capacity: cap,
                    throughput,
                    elapsed,
                });
                if best.as_ref().is_none_or(|(t, _)| throughput > *t) {
                    best = Some((throughput, eval));
                }
            }
        }
        report.sort_by(|a, b| b.throughput.total_cmp(&a.throughput));
        OfflineTuningOutcome {
            best: best.expect("at least one candidate").1,
            report,
        }
    }
}

/// Result of an in-situ (online) run: answers plus the time breakdown the
/// paper's end-to-end throughput metric charges.
#[derive(Debug, Clone)]
pub struct OnlineRunReport {
    /// Workload answers, aligned with the input query order (TKAQ answers
    /// encoded as 1.0/0.0).
    pub answers: Vec<f64>,
    /// The level `i*` the tuner settled on.
    pub chosen_level: u16,
    /// Time to build the single kd-tree.
    pub build_time: Duration,
    /// Time spent probing candidate levels on the sample queries.
    pub tuning_time: Duration,
    /// Time answering the remaining queries at the chosen level.
    pub query_time: Duration,
    /// End-to-end throughput: `|Q| / (build + tuning + query)`.
    pub throughput: f64,
}

/// In-situ tuner: one deep kd-tree, level probing on a query-sample
/// prefix, remainder answered at the best level.
#[derive(Debug, Clone, Copy)]
pub struct OnlineTuner {
    /// Fraction of the query stream spent probing levels (paper: 1%).
    pub sample_fraction: f64,
    /// Leaf capacity of the single tree (small, so that every level `i` up
    /// to ~log₂(n) can be simulated).
    pub leaf_capacity: usize,
}

impl Default for OnlineTuner {
    fn default() -> Self {
        Self {
            sample_fraction: 0.01,
            leaf_capacity: 8,
        }
    }
}

impl OnlineTuner {
    /// Runs the full in-situ pipeline: build, probe, answer.
    ///
    /// # Panics
    /// Panics if `queries` is empty or `sample_fraction ∉ (0, 1]`.
    pub fn run(
        &self,
        points: &PointSet,
        weights: &[f64],
        kernel: Kernel,
        method: BoundMethod,
        queries: &PointSet,
        workload: Query,
    ) -> OnlineRunReport {
        assert!(!queries.is_empty(), "empty query stream");
        assert!(
            self.sample_fraction > 0.0 && self.sample_fraction <= 1.0,
            "sample fraction out of range"
        );
        let t0 = Instant::now();
        let eval = KdEvaluator::build(points, weights, kernel, method, self.leaf_capacity);
        let build_time = t0.elapsed();

        // Candidate levels 0..=max_depth, thinned so every candidate gets at
        // least one probe query.
        let max_depth = eval.max_depth();
        let sample_count =
            ((queries.len() as f64 * self.sample_fraction).ceil() as usize).clamp(1, queries.len());
        let num_candidates = (max_depth as usize + 1).min(sample_count);
        let candidates: Vec<u16> = (0..num_candidates)
            .map(|i| {
                if num_candidates == 1 {
                    max_depth
                } else {
                    (i as f64 * max_depth as f64 / (num_candidates - 1) as f64).round() as u16
                }
            })
            .collect();

        let mut answers = vec![0.0; queries.len()];
        let t1 = Instant::now();
        // Round-robin the probe prefix across candidate levels, recording
        // per-level cost (the probe answers are exact regardless of level).
        let mut level_time = vec![Duration::ZERO; candidates.len()];
        let mut level_hits = vec![0u32; candidates.len()];
        #[allow(clippy::needless_range_loop)] // s drives the round-robin level index too
        for s in 0..sample_count {
            let li = s % candidates.len();
            let q = queries.point(s);
            let ts = Instant::now();
            answers[s] = answer_at_level(&eval, q, workload, candidates[li]);
            level_time[li] += ts.elapsed();
            level_hits[li] += 1;
        }
        let best_idx = (0..candidates.len())
            .filter(|&i| level_hits[i] > 0)
            .min_by(|&a, &b| {
                let ta = level_time[a].as_secs_f64() / level_hits[a] as f64;
                let tb = level_time[b].as_secs_f64() / level_hits[b] as f64;
                ta.total_cmp(&tb)
            })
            .expect("at least one probed level");
        let chosen_level = candidates[best_idx];
        let tuning_time = t1.elapsed();

        let t2 = Instant::now();
        #[allow(clippy::needless_range_loop)]
        for i in sample_count..queries.len() {
            answers[i] = answer_at_level(&eval, queries.point(i), workload, chosen_level);
        }
        let query_time = t2.elapsed();
        let total = build_time + tuning_time + query_time;
        OnlineRunReport {
            answers,
            chosen_level,
            build_time,
            tuning_time,
            query_time,
            throughput: queries.len() as f64 / total.as_secs_f64().max(1e-12),
        }
    }
}

fn answer_at_level(eval: &KdEvaluator, q: &[f64], workload: Query, level: u16) -> f64 {
    match workload {
        Query::Tkaq { tau } => {
            if eval.tkaq_at_level(q, tau, level) {
                1.0
            } else {
                0.0
            }
        }
        Query::Ekaq { eps } => eval.ekaq_at_level(q, eps, level),
        Query::Within { tol } => {
            let out = eval.run_query(q, Query::Within { tol }, Some(level));
            0.5 * (out.lb + out.ub)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::aggregate_exact;
    use karl_testkit::rng::StdRng;
    use karl_testkit::rng::{Rng, SeedableRng};

    fn clustered(n: usize, d: usize, seed: u64) -> PointSet {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut data = Vec::with_capacity(n * d);
        for i in 0..n {
            let c = if i % 3 == 0 { -1.5 } else { 1.5 };
            for _ in 0..d {
                data.push(c + rng.random_range(-0.4..0.4));
            }
        }
        PointSet::new(d, data)
    }

    #[test]
    fn any_evaluator_matches_both_families() {
        let ps = clustered(200, 2, 1);
        let w = vec![1.0; 200];
        let kernel = Kernel::gaussian(0.5);
        let q = ps.point(0).to_vec();
        let truth = aggregate_exact(&kernel, &ps, &w, &q);
        for kind in [IndexKind::Kd, IndexKind::Ball] {
            let e = AnyEvaluator::build(kind, &ps, &w, kernel, BoundMethod::Karl, 8);
            assert_eq!(e.kind(), kind);
            assert_eq!(e.len(), 200);
            assert!((e.exact(&q) - truth).abs() < 1e-9);
            assert!(e.tkaq(&q, truth * 0.9));
            assert!(!(e.tkaq(&q, truth * 1.1)));
            let est = e.ekaq(&q, 0.1);
            assert!(est >= 0.9 * truth - 1e-12 && est <= 1.1 * truth + 1e-12);
            assert_eq!(e.answer(&q, Query::Tkaq { tau: truth * 0.9 }), 1.0);
        }
    }

    #[test]
    fn offline_tuner_returns_fastest_candidate() {
        let ps = clustered(400, 3, 2);
        let w = vec![1.0; 400];
        let kernel = Kernel::gaussian(0.4);
        let sample = clustered(20, 3, 3);
        let tuner = OfflineTuner {
            leaf_capacities: vec![4, 64],
            index_kinds: vec![IndexKind::Kd, IndexKind::Ball],
        };
        let out = tuner.tune(
            &ps,
            &w,
            kernel,
            BoundMethod::Karl,
            &sample,
            Query::Ekaq { eps: 0.2 },
        );
        assert_eq!(out.report.len(), 4);
        // Report is sorted fastest-first and the winner matches `best`.
        for pair in out.report.windows(2) {
            assert!(pair[0].throughput >= pair[1].throughput);
        }
        let winner = out.report[0];
        assert_eq!(out.best.kind(), winner.kind);
        // The tuned evaluator still answers correctly.
        let q = ps.point(7).to_vec();
        let truth = aggregate_exact(&kernel, &ps, &w, &q);
        let est = out.best.ekaq(&q, 0.2);
        assert!(est >= 0.8 * truth - 1e-12 && est <= 1.2 * truth + 1e-12);
    }

    #[test]
    fn online_tuner_answers_are_exactly_correct() {
        let ps = clustered(300, 2, 4);
        let w = vec![1.0; 300];
        let kernel = Kernel::gaussian(0.6);
        let queries = clustered(50, 2, 5);
        // τ at the mean aggregate of the queries, like the paper's I-τ.
        let mean: f64 = queries
            .iter()
            .map(|q| aggregate_exact(&kernel, &ps, &w, q))
            .sum::<f64>()
            / queries.len() as f64;
        let tuner = OnlineTuner {
            sample_fraction: 0.2,
            leaf_capacity: 4,
        };
        let report = tuner.run(
            &ps,
            &w,
            kernel,
            BoundMethod::Karl,
            &queries,
            Query::Tkaq { tau: mean },
        );
        assert_eq!(report.answers.len(), 50);
        for (i, q) in queries.iter().enumerate() {
            let truth = aggregate_exact(&kernel, &ps, &w, q) >= mean;
            assert_eq!(report.answers[i] == 1.0, truth, "query {i}");
        }
        assert!(report.throughput > 0.0);
    }

    #[test]
    fn online_tuner_single_query_stream() {
        let ps = clustered(100, 2, 6);
        let w = vec![1.0; 100];
        let queries = ps.select(&[0]);
        let report = OnlineTuner::default().run(
            &ps,
            &w,
            Kernel::gaussian(0.5),
            BoundMethod::Karl,
            &queries,
            Query::Ekaq { eps: 0.3 },
        );
        assert_eq!(report.answers.len(), 1);
        let truth = aggregate_exact(&Kernel::gaussian(0.5), &ps, &w, queries.point(0));
        assert!((report.answers[0] - truth).abs() <= 0.3 * truth + 1e-9);
    }

    #[test]
    fn storage_plan_moves_to_larger_leaves_on_disk() {
        let n = 1_000_000;
        for dims in [2, 4, 8, 32] {
            let mem = plan_for_storage(
                n,
                dims,
                StorageProfile::Memory,
                StorageCalibration::canned(StorageProfile::Memory),
            );
            let disk = plan_for_storage(
                n,
                dims,
                StorageProfile::Disk,
                StorageCalibration::canned(StorageProfile::Disk),
            );
            // Expensive node visits must never shrink the optimal leaf.
            assert!(
                mem.leaf_capacity <= disk.leaf_capacity,
                "dims {dims}: memory cap {} > disk cap {}",
                mem.leaf_capacity,
                disk.leaf_capacity
            );
            // The sweep is exhaustive and sorted cheapest-first.
            assert_eq!(mem.candidates.len(), 14);
            for pair in mem.candidates.windows(2) {
                assert!(pair[0].est_cost_ns <= pair[1].est_cost_ns);
            }
            assert_eq!(mem.kind, mem.candidates[0].kind);
            assert_eq!(mem.leaf_capacity, mem.candidates[0].leaf_capacity);
        }
    }

    #[test]
    fn storage_plan_prefers_balls_in_high_dimension() {
        let cal = StorageCalibration::canned(StorageProfile::Memory);
        let low = plan_for_storage(1_000_000, 2, StorageProfile::Memory, cal);
        let high = plan_for_storage(1_000_000, 64, StorageProfile::Memory, cal);
        assert_eq!(low.kind, IndexKind::Kd);
        assert_eq!(high.kind, IndexKind::Ball);
    }

    #[test]
    fn storage_calibration_probe_is_sane() {
        let c = StorageCalibration::measure();
        // A pointer chase is slower per access than a streamed byte, and
        // both land in a physically plausible window.
        assert!(c.node_visit_ns >= 1.0 && c.node_visit_ns < 1e6);
        assert!(c.byte_read_ns > 0.0 && c.byte_read_ns < 1e3);
        assert!(c.node_visit_ns > c.byte_read_ns);
    }

    #[test]
    #[should_panic]
    fn offline_tuner_empty_sample_panics() {
        let ps = clustered(10, 2, 7);
        OfflineTuner::default().tune(
            &ps,
            &[1.0; 10],
            Kernel::gaussian(1.0),
            BoundMethod::Karl,
            &PointSet::empty(2),
            Query::Ekaq { eps: 0.1 },
        );
    }
}
