//! Typed errors for every validated public entry point.
//!
//! The refinement loop maintains a certified interval at every iteration,
//! so a query can always *degrade* — but only if malformed inputs are
//! rejected before they reach the hot path. [`KarlError`] is the single
//! taxonomy every `try_*` constructor and budgeted entry point in this
//! crate returns: index-level diagnostics for non-finite data, structural
//! mismatches, invalid kernel/query parameters, and (for the batch engine)
//! per-query panics contained by `catch_unwind`.
//!
//! Hot inner loops keep `debug_assert!`s; the panicking constructors
//! (`Evaluator::build`, `Kernel::gaussian`, …) remain as thin wrappers over
//! the validating `try_*` variants, so existing callers keep their
//! fail-fast behavior while `Result`-based callers get typed rejection.

use std::fmt;

use karl_geom::GeomError;
use karl_tree::TreeError;

/// Everything a validated `karl_core` entry point can reject or report.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum KarlError {
    /// The point set is empty (an aggregate over nothing is undefined).
    EmptyPoints,
    /// Two parallel buffers disagree in length (e.g. weights vs points).
    LengthMismatch {
        /// Expected element count (from the point set).
        expected: usize,
        /// Actual element count supplied.
        got: usize,
    },
    /// A query or batch has the wrong dimensionality for the evaluator.
    DimMismatch {
        /// The evaluator's dimensionality.
        expected: usize,
        /// The dimensionality supplied.
        got: usize,
    },
    /// A data point has a NaN/±inf coordinate.
    NonFinitePoint {
        /// Point index in the input buffer.
        index: usize,
        /// Offending coordinate dimension.
        dim: usize,
        /// The offending value (NaN or ±inf).
        value: f64,
    },
    /// A weight is NaN/±inf.
    NonFiniteWeight {
        /// Weight index in the input buffer.
        index: usize,
        /// The offending value.
        value: f64,
    },
    /// Every weight is exactly zero: the aggregate is trivially zero and
    /// the P⁺/P⁻ split has no tree to build.
    AllZeroWeights,
    /// A query point has a NaN/±inf coordinate.
    NonFiniteQuery {
        /// Offending coordinate dimension.
        dim: usize,
        /// The offending value.
        value: f64,
    },
    /// Kernel `γ` is not finite and positive.
    InvalidGamma {
        /// The rejected value.
        value: f64,
    },
    /// Kernel `coef0` (β) is not finite.
    InvalidCoef0 {
        /// The rejected value.
        value: f64,
    },
    /// eKAQ relative error bound `ε` is not finite and positive.
    InvalidEps {
        /// The rejected value.
        value: f64,
    },
    /// Absolute-gap tolerance is not finite and positive.
    InvalidTol {
        /// The rejected value.
        value: f64,
    },
    /// TKAQ threshold `τ` is NaN.
    InvalidTau {
        /// The rejected value.
        value: f64,
    },
    /// Tree leaf capacity is zero.
    InvalidLeafCapacity,
    /// An evaluator was assembled from no trees at all.
    NoTree,
    /// The kernel has no uniform Lipschitz bound in the data argument
    /// (polynomial / sigmoid grow with `‖q‖`), so a coreset cannot carry a
    /// certified error bound and the cascade tier is unavailable.
    UnsupportedCoresetKernel {
        /// Kernel family name.
        kernel: &'static str,
    },
    /// A batch query panicked inside the containment boundary; the rest of
    /// the batch completed normally.
    QueryPanicked {
        /// Index of the poisoned query within the batch.
        index: usize,
        /// Panic payload rendered as text (when downcastable).
        message: String,
    },
    /// An OS-level I/O failure while reading or writing an index file.
    IndexIo {
        /// Operation and OS error rendering.
        reason: String,
    },
    /// A structurally invalid index file: bad magic, foreign endianness,
    /// inconsistent section table, malformed tree topology, or metadata
    /// this build cannot decode.
    IndexFormat {
        /// Human-readable description of the violation.
        reason: String,
    },
    /// An index file's payload checksum did not match its header — the
    /// file was corrupted after it was written.
    ChecksumMismatch {
        /// Checksum recorded in the header.
        expected: u64,
        /// Checksum computed over the payload.
        got: u64,
    },
    /// An index file's format version is newer than this build supports.
    VersionUnsupported {
        /// Version found in the header.
        found: u32,
        /// Highest version this build supports.
        supported: u32,
    },
    /// An index file ends before the bytes its header requires.
    Truncated {
        /// Bytes required.
        needed: u64,
        /// Bytes actually present.
        got: u64,
    },
    /// The pointer engine was requested on an evaluator restored from a
    /// persistent index, which carries only the frozen representation.
    PointerEngineUnavailable,
    /// The serving admission queue was at its high watermark, so the
    /// request was rejected instead of queued (degrade, never collapse:
    /// the client gets a typed rejection it can retry, not an unbounded
    /// queue).
    Overloaded {
        /// The configured admission-queue capacity.
        capacity: usize,
    },
    /// A malformed request line on the serving wire: not JSON, missing or
    /// ill-typed fields, or an unknown verb.
    Protocol {
        /// Human-readable description of the violation.
        reason: String,
    },
    /// A serving configuration that cannot run (zero queue capacity or
    /// zero micro-batch size).
    InvalidConfig {
        /// Human-readable description of the violation.
        reason: String,
    },
}

impl fmt::Display for KarlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KarlError::EmptyPoints => write!(f, "point set is empty"),
            KarlError::LengthMismatch { expected, got } => {
                write!(f, "length mismatch: expected {expected} elements, got {got}")
            }
            KarlError::DimMismatch { expected, got } => {
                write!(f, "dimensionality mismatch: evaluator has {expected} dims, input has {got}")
            }
            KarlError::NonFinitePoint { index, dim, value } => {
                write!(f, "point {index} has non-finite coordinate {value} at dim {dim}")
            }
            KarlError::NonFiniteWeight { index, value } => {
                write!(f, "weight {index} is non-finite ({value})")
            }
            KarlError::AllZeroWeights => write!(f, "all weights are zero"),
            KarlError::NonFiniteQuery { dim, value } => {
                write!(f, "query has non-finite coordinate {value} at dim {dim}")
            }
            KarlError::InvalidGamma { value } => {
                write!(f, "gamma must be finite and positive (got {value})")
            }
            KarlError::InvalidCoef0 { value } => {
                write!(f, "coef0 must be finite (got {value})")
            }
            KarlError::InvalidEps { value } => {
                write!(f, "eps must be finite and positive (got {value})")
            }
            KarlError::InvalidTol { value } => {
                write!(f, "tol must be finite and positive (got {value})")
            }
            KarlError::InvalidTau { value } => {
                write!(f, "tau must not be NaN (got {value})")
            }
            KarlError::InvalidLeafCapacity => write!(f, "leaf capacity must be at least 1"),
            KarlError::NoTree => write!(f, "evaluator needs at least one tree"),
            KarlError::UnsupportedCoresetKernel { kernel } => {
                write!(f, "{kernel} kernel has no uniform Lipschitz bound; coreset tier unavailable")
            }
            KarlError::QueryPanicked { index, message } => {
                write!(f, "query {index} panicked: {message}")
            }
            KarlError::IndexIo { reason } => write!(f, "index file I/O error: {reason}"),
            KarlError::IndexFormat { reason } => write!(f, "invalid index file: {reason}"),
            KarlError::ChecksumMismatch { expected, got } => write!(
                f,
                "index file checksum mismatch: header records {expected:#018x}, payload hashes to {got:#018x}"
            ),
            KarlError::VersionUnsupported { found, supported } => write!(
                f,
                "index format version {found} unsupported (this build reads up to {supported})"
            ),
            KarlError::Truncated { needed, got } => {
                write!(f, "index file truncated: need {needed} bytes, found {got}")
            }
            KarlError::PointerEngineUnavailable => write!(
                f,
                "pointer engine unavailable: loaded indexes carry only the frozen representation"
            ),
            KarlError::Overloaded { capacity } => {
                write!(f, "admission queue full (capacity {capacity})")
            }
            KarlError::Protocol { reason } => write!(f, "protocol error: {reason}"),
            KarlError::InvalidConfig { reason } => write!(f, "invalid serve config: {reason}"),
        }
    }
}

impl std::error::Error for KarlError {}

impl From<karl_tree::PersistError> for KarlError {
    fn from(e: karl_tree::PersistError) -> Self {
        use karl_tree::PersistError as P;
        match e {
            P::Io { op, reason } => KarlError::IndexIo {
                reason: format!("{op}: {reason}"),
            },
            P::Truncated { needed, got } => KarlError::Truncated { needed, got },
            P::Format { reason } => KarlError::IndexFormat { reason },
            P::ChecksumMismatch { expected, got } => {
                KarlError::ChecksumMismatch { expected, got }
            }
            P::VersionUnsupported { found, supported } => {
                KarlError::VersionUnsupported { found, supported }
            }
        }
    }
}

impl From<TreeError> for KarlError {
    fn from(e: TreeError) -> Self {
        match e {
            TreeError::EmptyPoints => KarlError::EmptyPoints,
            TreeError::LengthMismatch { expected, got } => {
                KarlError::LengthMismatch { expected, got }
            }
            TreeError::ZeroLeafCapacity => KarlError::InvalidLeafCapacity,
            TreeError::NonFiniteCoordinate { index, dim, value } => {
                KarlError::NonFinitePoint { index, dim, value }
            }
            TreeError::NonFiniteWeight { index, value } => {
                KarlError::NonFiniteWeight { index, value }
            }
        }
    }
}

impl From<GeomError> for KarlError {
    fn from(e: GeomError) -> Self {
        match e {
            GeomError::ZeroDims => KarlError::EmptyPoints,
            GeomError::MisalignedData { len, dims } => KarlError::LengthMismatch {
                expected: len / dims.max(1) * dims.max(1),
                got: len,
            },
            GeomError::EmptyRows => KarlError::EmptyPoints,
            GeomError::InconsistentRow { expected, got, .. } => {
                KarlError::DimMismatch { expected, got }
            }
            GeomError::NonFiniteCoordinate { index, dim, value } => {
                KarlError::NonFinitePoint { index, dim, value }
            }
        }
    }
}

/// Scans `points` (row-major, `dims` per row) for the first non-finite
/// coordinate and `weights` for the first non-finite entry; also rejects
/// all-zero weight vectors. Shared by the evaluator / streaming / KDE
/// entry checks.
pub(crate) fn validate_data(
    points: &karl_geom::PointSet,
    weights: &[f64],
) -> Result<(), KarlError> {
    if points.is_empty() {
        return Err(KarlError::EmptyPoints);
    }
    if weights.len() != points.len() {
        return Err(KarlError::LengthMismatch {
            expected: points.len(),
            got: weights.len(),
        });
    }
    for (index, p) in points.iter().enumerate() {
        for (dim, &value) in p.iter().enumerate() {
            if !value.is_finite() {
                return Err(KarlError::NonFinitePoint { index, dim, value });
            }
        }
    }
    let mut any_nonzero = false;
    for (index, &value) in weights.iter().enumerate() {
        if !value.is_finite() {
            return Err(KarlError::NonFiniteWeight { index, value });
        }
        any_nonzero |= value != 0.0;
    }
    if !any_nonzero {
        return Err(KarlError::AllZeroWeights);
    }
    Ok(())
}

/// Validates a single query point against the evaluator dimensionality:
/// typed [`KarlError::DimMismatch`] / [`KarlError::NonFiniteQuery`] instead
/// of the panicking `check_query`.
pub(crate) fn validate_query(q: &[f64], dims: usize) -> Result<(), KarlError> {
    if q.len() != dims {
        return Err(KarlError::DimMismatch {
            expected: dims,
            got: q.len(),
        });
    }
    for (dim, &value) in q.iter().enumerate() {
        if !value.is_finite() {
            return Err(KarlError::NonFiniteQuery { dim, value });
        }
    }
    Ok(())
}

/// Validates a query spec's parameter (`τ`/`ε`/`tol`).
pub(crate) fn validate_spec(query: crate::eval::Query) -> Result<(), KarlError> {
    match query {
        crate::eval::Query::Tkaq { tau } if tau.is_nan() => {
            Err(KarlError::InvalidTau { value: tau })
        }
        crate::eval::Query::Ekaq { eps } if !(eps.is_finite() && eps > 0.0) => {
            Err(KarlError::InvalidEps { value: eps })
        }
        crate::eval::Query::Within { tol } if !(tol.is_finite() && tol > 0.0) => {
            Err(KarlError::InvalidTol { value: tol })
        }
        _ => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use karl_geom::PointSet;

    #[test]
    fn display_is_informative() {
        let e = KarlError::NonFinitePoint {
            index: 3,
            dim: 1,
            value: f64::NAN,
        };
        let s = e.to_string();
        assert!(s.contains('3') && s.contains('1') && s.contains("NaN"));
        assert!(KarlError::AllZeroWeights.to_string().contains("zero"));
    }

    #[test]
    fn validate_data_finds_first_offender() {
        let ps = PointSet::new(2, vec![0.0, 1.0, f64::INFINITY, 2.0]);
        let err = validate_data(&ps, &[1.0, 1.0]).unwrap_err();
        assert_eq!(
            err,
            KarlError::NonFinitePoint {
                index: 1,
                dim: 0,
                value: f64::INFINITY
            }
        );
    }

    #[test]
    fn validate_data_rejects_zero_weights_and_length() {
        let ps = PointSet::new(1, vec![0.0, 1.0]);
        assert_eq!(
            validate_data(&ps, &[0.0, 0.0]),
            Err(KarlError::AllZeroWeights)
        );
        assert_eq!(
            validate_data(&ps, &[1.0]),
            Err(KarlError::LengthMismatch {
                expected: 2,
                got: 1
            })
        );
        assert!(validate_data(&ps, &[0.0, -1.0]).is_ok());
    }

    #[test]
    fn validate_query_checks_dims_then_values() {
        assert_eq!(
            validate_query(&[0.0], 2),
            Err(KarlError::DimMismatch {
                expected: 2,
                got: 1
            })
        );
        assert!(matches!(
            validate_query(&[0.0, f64::NAN], 2),
            Err(KarlError::NonFiniteQuery { dim: 1, .. })
        ));
        assert!(validate_query(&[0.0, 1.0], 2).is_ok());
    }

    #[test]
    fn tree_and_geom_errors_convert() {
        let k: KarlError = TreeError::ZeroLeafCapacity.into();
        assert_eq!(k, KarlError::InvalidLeafCapacity);
        let k: KarlError = GeomError::NonFiniteCoordinate {
            index: 0,
            dim: 2,
            value: f64::NEG_INFINITY,
        }
        .into();
        assert!(matches!(k, KarlError::NonFinitePoint { dim: 2, .. }));
    }
}
