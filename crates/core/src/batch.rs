//! Batch query execution: scoped-thread workers over one evaluator.
//!
//! The paper measures single-query refinement cost; a serving system cares
//! about *throughput over a stream of queries*. This module amortizes the
//! index across a whole batch:
//!
//! * **Parallelism** — `std::thread::scope` workers (no runtime, no
//!   registry dependencies) pull chunks of query indices off an atomic
//!   work-stealing cursor, so skewed per-query refinement cost balances
//!   automatically.
//! * **Allocation reuse** — each worker owns one [`Scratch`] (priority
//!   queue storage + trace buffer) threaded through
//!   [`Evaluator::run_with_scratch`], so the per-query hot path performs
//!   zero heap allocations once the buffers reach the workload's
//!   high-water mark.
//! * **Determinism** — every query's [`RunOutcome`] is written to its own
//!   slot, each query is evaluated by exactly the same code path as the
//!   sequential [`Evaluator::run_query`], and the heap's refinement order
//!   is a pure function of the query (equal-gap ties break on node id).
//!   A batch result is therefore **bitwise identical** to the sequential
//!   loop, at any thread count.
//!
//! The thread count resolves in order: [`QueryBatch::threads`] override →
//! `KARL_THREADS` environment variable → `available_parallelism`, and is
//! finally capped by the number of queries.
//!
//! ```
//! use karl_core::{BoundMethod, Evaluator, Kernel, Query, QueryBatch};
//! use karl_geom::{PointSet, Rect};
//!
//! let points = PointSet::from_rows(&[vec![0.0, 0.0], vec![1.0, 1.0]]);
//! let eval = Evaluator::<Rect>::build(
//!     &points, &[1.0, 1.0], Kernel::gaussian(0.5), BoundMethod::Karl, 2);
//! let queries = PointSet::from_rows(&[vec![0.0, 0.0], vec![5.0, 5.0]]);
//!
//! let out = QueryBatch::new(&queries, Query::Tkaq { tau: 1.0 })
//!     .threads(2)
//!     .run(&eval);
//! assert_eq!(out.decisions(), vec![true, false]);
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use karl_geom::PointSet;
use karl_tree::NodeShape;

use crate::error::{self, KarlError};
#[cfg(feature = "stats")]
use crate::eval::RunStats;
use crate::eval::{
    decide_tkaq, estimate_ekaq, Budget, Engine, Evaluator, Outcome, Query, RunOutcome, Scratch,
};
use crate::tuning::AnyEvaluator;

/// Queries are handed to workers in index chunks of this size: large enough
/// that the `fetch_add` on the shared cursor is negligible next to even the
/// cheapest query, small enough that a straggler chunk cannot idle the
/// other workers at the end of a batch.
const CHUNK: usize = 16;

/// Between chunks each worker shrinks any scratch buffer that grew past
/// this many elements (and the envelope cache past this many slots), so a
/// single adversarial query cannot ratchet a worker's memory for the rest
/// of the batch. Generous enough that ordinary workloads never hit it —
/// the envelope cache's own table tops out at the same size.
const SCRATCH_CAP: usize = 1 << 15;

/// Resolves the worker count for a batch: explicit request →
/// `KARL_THREADS` → `available_parallelism` → 1. Zero and unparsable
/// values of `KARL_THREADS` are ignored rather than honored as nonsense.
pub fn resolve_threads(requested: Option<usize>) -> usize {
    if let Some(n) = requested {
        return n.max(1);
    }
    if let Ok(v) = std::env::var("KARL_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// A set of queries to evaluate under one query specification.
///
/// Built once, runnable against any evaluator whose dimensionality matches;
/// see the [module docs](self) for the execution model.
#[derive(Debug, Clone)]
pub struct QueryBatch<'a> {
    queries: &'a PointSet,
    query: Query,
    threads: Option<usize>,
    level_cap: Option<u16>,
    engine: Engine,
    env_cache: bool,
    budget: Budget,
}

impl<'a> QueryBatch<'a> {
    /// Creates a batch of `queries` all answering `query`.
    ///
    /// # Panics
    /// Panics if the query's parameter is invalid (non-finite `τ`,
    /// `eps <= 0` or `tol <= 0`) — validated here once instead of per
    /// query. Use [`try_new`](Self::try_new) for a typed rejection.
    pub fn new(queries: &'a PointSet, query: Query) -> Self {
        Self::try_new(queries, query).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Validating constructor: rejects invalid query parameters with a
    /// typed [`KarlError`] (`InvalidTau` / `InvalidEps` / `InvalidTol`)
    /// instead of panicking.
    pub fn try_new(queries: &'a PointSet, query: Query) -> Result<Self, KarlError> {
        error::validate_spec(query)?;
        Ok(Self {
            queries,
            query,
            threads: None,
            level_cap: None,
            engine: Engine::default(),
            env_cache: false,
            budget: Budget::UNLIMITED,
        })
    }

    /// Overrides the worker count (otherwise `KARL_THREADS` /
    /// `available_parallelism`).
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn threads(mut self, n: usize) -> Self {
        assert!(n >= 1, "thread count must be at least 1");
        self.threads = Some(n);
        self
    }

    /// Restricts refinement to the top `level` tree levels (the simulated
    /// tree of the in-situ tuner).
    pub fn level_cap(mut self, level: u16) -> Self {
        self.level_cap = Some(level);
        self
    }

    /// Selects the evaluation engine (default [`Engine::Frozen`]). Both
    /// engines are bitwise-identical; [`Engine::Pointer`] exists for
    /// differential testing and perf comparison.
    pub fn engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// Enables or disables the per-worker envelope memoization (default
    /// off). Purely a performance switch — outcomes are bitwise identical
    /// either way. Turn it on for duplicate-heavy query streams, where a
    /// repeated `(curve, lo, hi, x̄)` key costs a hash probe instead of an
    /// envelope build; on streams of distinct keys every probe misses and
    /// the table is pure overhead, which is why it is opt-in.
    pub fn envelope_cache(mut self, on: bool) -> Self {
        self.env_cache = on;
        self
    }

    /// Applies a per-query refinement [`Budget`] (default unlimited).
    /// Budgets are honored by [`try_run`](Self::try_run); queries that
    /// exhaust theirs report `Outcome::Truncated` with the certified
    /// interval at stop time. The legacy [`run`](Self::run) predates
    /// budgets and panics if one is set.
    pub fn budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Evaluates the batch against `eval`.
    ///
    /// Dimensionality is validated **once here for the whole batch**; the
    /// per-query hot path ([`Evaluator::run_with_scratch_on`]) only
    /// `debug_assert!`s it.
    ///
    /// # Panics
    /// Panics if the query dimensionality does not match the evaluator's,
    /// or if a worker thread panics.
    pub fn run<S: NodeShape + Sync>(&self, eval: &Evaluator<S>) -> BatchOutcome {
        assert_eq!(
            self.queries.dims(),
            eval.dims(),
            "query dimensionality mismatch"
        );
        assert!(
            self.budget.is_unlimited(),
            "budgeted batches must use try_run (run cannot represent truncated outcomes)"
        );
        let n = self.queries.len();
        let threads = resolve_threads(self.threads).min(n.max(1));
        let start = Instant::now();
        let (outcomes, scratches) = if threads <= 1 {
            let mut scratch = Scratch::new();
            scratch.set_envelope_cache(self.env_cache);
            let out = (0..n)
                .map(|i| {
                    eval.run_with_scratch_on(
                        self.engine,
                        self.queries.point(i),
                        self.query,
                        self.level_cap,
                        &mut scratch,
                    )
                })
                .collect();
            (out, vec![scratch])
        } else {
            self.run_parallel(eval, n, threads)
        };
        let elapsed = start.elapsed();
        #[cfg(feature = "stats")]
        let stats = {
            let mut s = RunStats::default();
            for sc in &scratches {
                s.merge(&sc.stats());
            }
            s
        };
        let _ = scratches;
        BatchOutcome {
            query: self.query,
            threads,
            elapsed,
            outcomes,
            #[cfg(feature = "stats")]
            stats,
        }
    }

    /// [`run`](Self::run) over a runtime-dispatched evaluator.
    pub fn run_any(&self, eval: &AnyEvaluator) -> BatchOutcome {
        match eval {
            AnyEvaluator::Kd(e) => self.run(e),
            AnyEvaluator::Ball(e) => self.run(e),
        }
    }

    /// Fault-contained batch evaluation: every query runs through the
    /// validated, budget-aware entry point inside `catch_unwind`, so one
    /// poisoned query (non-finite point, or a panic in the refinement
    /// loop) yields an `Err` in **its own result slot** while every other
    /// query completes normally — with outcomes bitwise identical to an
    /// all-healthy run.
    ///
    /// A worker whose query panicked discards its [`Scratch`] (the
    /// buffers may hold partially-updated state) and continues the batch
    /// with a fresh one; [`BatchReport::quarantined`] counts how often
    /// that happened. Batch-level defects — mismatched dimensionality,
    /// an invalid query spec — fail the whole call instead.
    pub fn try_run<S: NodeShape + Sync>(
        &self,
        eval: &Evaluator<S>,
    ) -> Result<BatchReport, KarlError> {
        if self.queries.dims() != eval.dims() {
            return Err(KarlError::DimMismatch {
                expected: eval.dims(),
                got: self.queries.dims(),
            });
        }
        error::validate_spec(self.query)?;
        let n = self.queries.len();
        let threads = resolve_threads(self.threads).min(n.max(1));
        let start = Instant::now();
        let (results, scratches, quarantined) = if threads <= 1 {
            let mut scratch = Scratch::new();
            scratch.set_envelope_cache(self.env_cache);
            let mut quarantined = 0usize;
            let out = (0..n)
                .map(|i| self.run_one_contained(eval, i, &mut scratch, &mut quarantined))
                .collect();
            (out, vec![scratch], quarantined)
        } else {
            self.try_run_parallel(eval, n, threads)
        };
        let elapsed = start.elapsed();
        #[cfg(feature = "stats")]
        let stats = {
            let mut s = RunStats::default();
            for sc in &scratches {
                s.merge(&sc.stats());
            }
            s
        };
        let _ = scratches;
        Ok(BatchReport {
            query: self.query,
            threads,
            elapsed,
            results,
            quarantined,
            #[cfg(feature = "stats")]
            stats,
        })
    }

    /// [`try_run`](Self::try_run) over a runtime-dispatched evaluator.
    pub fn try_run_any(&self, eval: &AnyEvaluator) -> Result<BatchReport, KarlError> {
        match eval {
            AnyEvaluator::Kd(e) => self.try_run(e),
            AnyEvaluator::Ball(e) => self.try_run(e),
        }
    }

    /// Evaluates query `i` with panic containment. On a panic the scratch
    /// is quarantined — replaced wholesale rather than reused — because an
    /// unwind can leave its buffers in a partially-updated state.
    fn run_one_contained<S: NodeShape + Sync>(
        &self,
        eval: &Evaluator<S>,
        i: usize,
        scratch: &mut Scratch,
        quarantined: &mut usize,
    ) -> Result<Outcome, KarlError> {
        // AssertUnwindSafe audit: the closure mutates only `scratch`, and
        // the catch arm below discards that scratch instead of reusing it,
        // so no broken invariant can escape the unwind.
        let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            #[cfg(feature = "fault-inject")]
            match crate::fault::planned(i) {
                Some(crate::fault::Fault::Panic) => panic!("injected fault at query {i}"),
                Some(crate::fault::Fault::Nan) => {
                    let nan_q = vec![f64::NAN; self.queries.dims()];
                    return eval.run_budgeted_with_scratch_on(
                        self.engine,
                        &nan_q,
                        self.query,
                        self.level_cap,
                        &self.budget,
                        scratch,
                    );
                }
                None => {}
            }
            eval.run_budgeted_with_scratch_on(
                self.engine,
                self.queries.point(i),
                self.query,
                self.level_cap,
                &self.budget,
                scratch,
            )
        }));
        match attempt {
            Ok(result) => result,
            Err(payload) => {
                *scratch = Scratch::new();
                scratch.set_envelope_cache(self.env_cache);
                *quarantined += 1;
                let message = if let Some(s) = payload.downcast_ref::<&str>() {
                    (*s).to_string()
                } else if let Some(s) = payload.downcast_ref::<String>() {
                    s.clone()
                } else {
                    "non-string panic payload".to_string()
                };
                Err(KarlError::QueryPanicked { index: i, message })
            }
        }
    }

    fn try_run_parallel<S: NodeShape + Sync>(
        &self,
        eval: &Evaluator<S>,
        n: usize,
        threads: usize,
    ) -> (Vec<Result<Outcome, KarlError>>, Vec<Scratch>, usize) {
        let cursor = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            let workers: Vec<_> = (0..threads)
                .map(|_| {
                    scope.spawn(|| {
                        let mut scratch = Scratch::new();
                        scratch.set_envelope_cache(self.env_cache);
                        let mut quarantined = 0usize;
                        let mut local: Vec<(usize, Result<Outcome, KarlError>)> =
                            Vec::with_capacity(n / threads + CHUNK);
                        loop {
                            let lo = cursor.fetch_add(CHUNK, Ordering::Relaxed);
                            if lo >= n {
                                break;
                            }
                            let hi = (lo + CHUNK).min(n);
                            for i in lo..hi {
                                let r = self.run_one_contained(
                                    eval,
                                    i,
                                    &mut scratch,
                                    &mut quarantined,
                                );
                                local.push((i, r));
                            }
                            scratch.reset_with_capacity_cap(SCRATCH_CAP);
                        }
                        (local, scratch, quarantined)
                    })
                })
                .collect();
            let mut out: Vec<Result<Outcome, KarlError>> = Vec::with_capacity(n);
            out.resize_with(n, || Err(KarlError::EmptyPoints));
            let mut scratches = Vec::with_capacity(threads);
            let mut quarantined = 0usize;
            for w in workers {
                // Worker threads never panic for query-level faults —
                // those are contained per slot — so this join only fails
                // on harness-level bugs.
                let (local, scratch, q) = w.join().expect("batch worker panicked");
                for (i, r) in local {
                    out[i] = r;
                }
                scratches.push(scratch);
                quarantined += q;
            }
            (out, scratches, quarantined)
        })
    }

    fn run_parallel<S: NodeShape + Sync>(
        &self,
        eval: &Evaluator<S>,
        n: usize,
        threads: usize,
    ) -> (Vec<RunOutcome>, Vec<Scratch>) {
        let cursor = AtomicUsize::new(0);
        let queries = self.queries;
        let (query, level_cap, engine) = (self.query, self.level_cap, self.engine);
        let env_cache = self.env_cache;
        std::thread::scope(|scope| {
            let workers: Vec<_> = (0..threads)
                .map(|_| {
                    scope.spawn(|| {
                        let mut scratch = Scratch::new();
                        scratch.set_envelope_cache(env_cache);
                        let mut local: Vec<(usize, RunOutcome)> =
                            Vec::with_capacity(n / threads + CHUNK);
                        loop {
                            let lo = cursor.fetch_add(CHUNK, Ordering::Relaxed);
                            if lo >= n {
                                break;
                            }
                            let hi = (lo + CHUNK).min(n);
                            for i in lo..hi {
                                let out = eval.run_with_scratch_on(
                                    engine,
                                    queries.point(i),
                                    query,
                                    level_cap,
                                    &mut scratch,
                                );
                                local.push((i, out));
                            }
                            // Bound the worker's memory between chunks: one
                            // adversarial query must not ratchet allocations
                            // for the rest of the batch. A no-op while every
                            // buffer stays under the cap, so warm envelope
                            // cache entries survive ordinary workloads.
                            scratch.reset_with_capacity_cap(SCRATCH_CAP);
                        }
                        (local, scratch)
                    })
                })
                .collect();
            // Stitch the stolen chunks back into query order; this is what
            // makes the outcome independent of scheduling.
            let mut out = vec![
                RunOutcome {
                    lb: 0.0,
                    ub: 0.0,
                    iterations: 0
                };
                n
            ];
            let mut scratches = Vec::with_capacity(threads);
            for w in workers {
                let (local, scratch) = w.join().expect("batch worker panicked");
                for (i, r) in local {
                    out[i] = r;
                }
                scratches.push(scratch);
            }
            (out, scratches)
        })
    }
}

/// Per-query bound outcomes of a batch run, plus execution statistics.
#[derive(Debug, Clone)]
pub struct BatchOutcome {
    query: Query,
    threads: usize,
    elapsed: Duration,
    outcomes: Vec<RunOutcome>,
    #[cfg(feature = "stats")]
    stats: RunStats,
}

impl BatchOutcome {
    /// Raw bound outcomes, in query order.
    pub fn outcomes(&self) -> &[RunOutcome] {
        &self.outcomes
    }

    /// Run counters summed across all workers (behind the `stats`
    /// feature). `nodes_refined` is deterministic at any thread count
    /// (outcomes are bitwise identical); the envelope/cache counters are
    /// not — each worker warms its own cache, so how queries were dealt
    /// to workers changes what hits.
    #[cfg(feature = "stats")]
    pub fn stats(&self) -> RunStats {
        self.stats
    }

    /// The query specification the batch answered.
    pub fn query(&self) -> Query {
        self.query
    }

    /// Worker threads the run actually used.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Wall-clock time of the run.
    pub fn elapsed(&self) -> Duration {
        self.elapsed
    }

    /// Queries answered per second.
    pub fn throughput(&self) -> f64 {
        self.outcomes.len() as f64 / self.elapsed.as_secs_f64().max(f64::MIN_POSITIVE)
    }

    /// Number of queries in the batch.
    pub fn len(&self) -> usize {
        self.outcomes.len()
    }

    /// Whether the batch held no queries.
    pub fn is_empty(&self) -> bool {
        self.outcomes.is_empty()
    }

    /// Total refinement iterations across the batch.
    pub fn total_iterations(&self) -> usize {
        self.outcomes.iter().map(|o| o.iterations).sum()
    }

    /// TKAQ decisions, in query order.
    ///
    /// # Panics
    /// Panics if the batch was not a [`Query::Tkaq`] batch.
    pub fn decisions(&self) -> Vec<bool> {
        let Query::Tkaq { tau } = self.query else {
            panic!("decisions() requires a TKAQ batch, got {:?}", self.query);
        };
        self.outcomes.iter().map(|o| decide_tkaq(o, tau)).collect()
    }

    /// Scalar answers, in query order: the eKAQ estimate, the Within
    /// midpoint, or `1.0`/`0.0` for TKAQ decisions (matching
    /// [`AnyEvaluator::answer`]).
    pub fn estimates(&self) -> Vec<f64> {
        match self.query {
            Query::Tkaq { tau } => self
                .outcomes
                .iter()
                .map(|o| if decide_tkaq(o, tau) { 1.0 } else { 0.0 })
                .collect(),
            Query::Ekaq { .. } => self.outcomes.iter().map(estimate_ekaq).collect(),
            Query::Within { .. } => self.outcomes.iter().map(|o| 0.5 * (o.lb + o.ub)).collect(),
        }
    }

    /// `(midpoint, half_width)` intervals, in query order.
    ///
    /// # Panics
    /// Panics if the batch was not a [`Query::Within`] batch.
    pub fn intervals(&self) -> Vec<(f64, f64)> {
        let Query::Within { .. } = self.query else {
            panic!("intervals() requires a Within batch, got {:?}", self.query);
        };
        self.outcomes
            .iter()
            .map(|o| (0.5 * (o.lb + o.ub), 0.5 * (o.ub - o.lb).max(0.0)))
            .collect()
    }
}

/// Result of a fault-contained [`QueryBatch::try_run`]: one
/// `Result<Outcome, KarlError>` per query, in query order. Healthy
/// queries carry the same bits they would in an all-healthy run; poisoned
/// queries carry the error that took them down.
#[derive(Debug, Clone)]
pub struct BatchReport {
    query: Query,
    threads: usize,
    elapsed: Duration,
    results: Vec<Result<Outcome, KarlError>>,
    quarantined: usize,
    #[cfg(feature = "stats")]
    stats: RunStats,
}

impl BatchReport {
    /// Per-query results, in query order.
    pub fn results(&self) -> &[Result<Outcome, KarlError>] {
        &self.results
    }

    /// The query specification the batch answered.
    pub fn query(&self) -> Query {
        self.query
    }

    /// Worker threads the run actually used.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Wall-clock time of the run.
    pub fn elapsed(&self) -> Duration {
        self.elapsed
    }

    /// How many times a worker discarded its scratch after containing a
    /// panic (at most once per failed query).
    pub fn quarantined(&self) -> usize {
        self.quarantined
    }

    /// Number of queries in the batch.
    pub fn len(&self) -> usize {
        self.results.len()
    }

    /// Whether the batch held no queries.
    pub fn is_empty(&self) -> bool {
        self.results.is_empty()
    }

    /// Indices of the queries that failed, in query order.
    pub fn failed_indices(&self) -> Vec<usize> {
        self.results
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.is_err().then_some(i))
            .collect()
    }

    /// Number of queries that completed (possibly truncated) successfully.
    pub fn ok_count(&self) -> usize {
        self.results.iter().filter(|r| r.is_ok()).count()
    }

    /// Whether any query failed.
    pub fn has_failures(&self) -> bool {
        self.results.iter().any(|r| r.is_err())
    }

    /// Number of queries whose budget tripped before termination.
    pub fn truncated_count(&self) -> usize {
        self.results
            .iter()
            .filter(|r| matches!(r, Ok(o) if o.is_truncated()))
            .count()
    }

    /// Queries answered per second.
    pub fn throughput(&self) -> f64 {
        self.results.len() as f64 / self.elapsed.as_secs_f64().max(f64::MIN_POSITIVE)
    }

    /// Scalar answer for one successful outcome under this batch's query
    /// spec, bit-for-bit equal to [`BatchOutcome::estimates`] on complete
    /// outcomes. Truncated outcomes degrade to the certified-interval
    /// midpoint (eKAQ / Within) or to the midpoint decision (TKAQ — use
    /// [`Outcome::is_truncated`] to tell an honest decision apart).
    pub fn answer(&self, out: &Outcome) -> f64 {
        match (*out, self.query) {
            (Outcome::Complete(run), Query::Tkaq { tau }) => {
                if decide_tkaq(&run, tau) {
                    1.0
                } else {
                    0.0
                }
            }
            (Outcome::Truncated { lb, ub, .. }, Query::Tkaq { tau }) => {
                if 0.5 * (lb + ub) >= tau {
                    1.0
                } else {
                    0.0
                }
            }
            (Outcome::Complete(run), Query::Ekaq { .. }) => estimate_ekaq(&run),
            (Outcome::Complete(run), Query::Within { .. }) => 0.5 * (run.lb + run.ub),
            (Outcome::Truncated { lb, ub, .. }, Query::Ekaq { .. } | Query::Within { .. }) => {
                0.5 * (lb + ub)
            }
        }
    }

    /// Run counters summed across all workers (behind the `stats`
    /// feature).
    #[cfg(feature = "stats")]
    pub fn stats(&self) -> RunStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds::BoundMethod;
    use crate::kernel::Kernel;
    use karl_geom::{Ball, Rect};
    use karl_testkit::rng::{Rng, SeedableRng, StdRng};

    fn clustered_points(n: usize, d: usize, seed: u64) -> PointSet {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut data = Vec::with_capacity(n * d);
        for i in 0..n {
            let center = if i % 2 == 0 { -2.0 } else { 2.0 };
            for _ in 0..d {
                data.push(center + rng.random_range(-0.5..0.5));
            }
        }
        PointSet::new(d, data)
    }

    fn mixed_weights(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let w: f64 = rng.random_range(0.2..2.0);
                if rng.random_bool(0.4) {
                    -w
                } else {
                    w
                }
            })
            .collect()
    }

    #[test]
    fn batch_matches_sequential_for_every_thread_count() {
        let ps = clustered_points(400, 3, 1);
        let w = mixed_weights(400, 2);
        let eval = Evaluator::<Rect>::build(&ps, &w, Kernel::gaussian(0.6), BoundMethod::Karl, 8);
        let queries = clustered_points(67, 3, 3);
        for query in [
            Query::Tkaq { tau: 0.2 },
            Query::Ekaq { eps: 0.15 },
            Query::Within { tol: 0.05 },
        ] {
            let sequential: Vec<RunOutcome> = queries
                .iter()
                .map(|q| eval.run_query(q, query, None))
                .collect();
            for threads in [1, 2, 4, 8] {
                let batch = QueryBatch::new(&queries, query).threads(threads).run(&eval);
                assert_eq!(batch.outcomes(), &sequential[..], "{query:?} x{threads}");
                assert!(batch.threads() <= threads);
            }
        }
    }

    #[test]
    fn envelope_cache_toggle_is_bit_identical_at_any_thread_count() {
        let ps = clustered_points(300, 3, 20);
        let w = mixed_weights(300, 21);
        let eval = Evaluator::<Rect>::build(&ps, &w, Kernel::gaussian(0.6), BoundMethod::Karl, 8);
        // Duplicate-heavy query stream: exercises actual cache hits, not
        // just the insert path.
        let base = clustered_points(12, 3, 22);
        let queries = PointSet::new(
            3,
            (0..36).flat_map(|i| base.point(i % 12).to_vec()).collect(),
        );
        for query in [
            Query::Tkaq { tau: 0.2 },
            Query::Ekaq { eps: 0.1 },
            Query::Within { tol: 0.05 },
        ] {
            let on = QueryBatch::new(&queries, query)
                .threads(1)
                .envelope_cache(true)
                .run(&eval);
            for threads in [1, 2, 4, 8] {
                let off = QueryBatch::new(&queries, query).threads(threads).run(&eval);
                let on_t = QueryBatch::new(&queries, query)
                    .threads(threads)
                    .envelope_cache(true)
                    .run(&eval);
                assert_eq!(on.outcomes(), off.outcomes(), "{query:?} x{threads}");
                assert_eq!(on.outcomes(), on_t.outcomes(), "{query:?} x{threads}");
            }
        }
    }

    #[cfg(feature = "stats")]
    #[test]
    fn batch_stats_aggregate_across_workers() {
        let ps = clustered_points(300, 3, 25);
        let w = mixed_weights(300, 26);
        let eval = Evaluator::<Rect>::build(&ps, &w, Kernel::gaussian(0.6), BoundMethod::Karl, 8);
        let base = clustered_points(8, 3, 27);
        let queries = PointSet::new(
            3,
            (0..32).flat_map(|i| base.point(i % 8).to_vec()).collect(),
        );
        let query = Query::Ekaq { eps: 0.1 };
        let seq = QueryBatch::new(&queries, query)
            .threads(1)
            .envelope_cache(true)
            .run(&eval);
        let par = QueryBatch::new(&queries, query)
            .threads(4)
            .envelope_cache(true)
            .run(&eval);
        let off = QueryBatch::new(&queries, query).threads(1).run(&eval);
        // Refinement work is a pure function of the queries.
        assert_eq!(
            seq.stats().nodes_refined,
            seq.total_iterations() as u64,
            "nodes_refined counts heap pops"
        );
        assert_eq!(seq.stats().nodes_refined, par.stats().nodes_refined);
        assert_eq!(seq.stats().nodes_refined, off.stats().nodes_refined);
        // The duplicate stream hits the cache sequentially; with the cache
        // off every lookup vanishes and every envelope is rebuilt.
        assert!(seq.stats().cache_hits > 0);
        assert_eq!(off.stats().cache_hits, 0);
        assert_eq!(off.stats().cache_misses, 0);
        assert!(seq.stats().envelopes_built < off.stats().envelopes_built);
        assert!(seq.stats().curve_value_calls < off.stats().curve_value_calls);
    }

    #[test]
    fn pointer_engine_batch_matches_frozen_default() {
        let ps = clustered_points(240, 3, 30);
        let w = mixed_weights(240, 31);
        let eval = Evaluator::<Rect>::build(&ps, &w, Kernel::gaussian(0.5), BoundMethod::Karl, 8);
        let queries = clustered_points(40, 3, 32);
        let query = Query::Ekaq { eps: 0.1 };
        let frozen = QueryBatch::new(&queries, query).threads(2).run(&eval);
        let pointer = QueryBatch::new(&queries, query)
            .engine(Engine::Pointer)
            .threads(2)
            .run(&eval);
        assert_eq!(frozen.outcomes(), pointer.outcomes());
    }

    #[test]
    fn batch_works_over_ball_trees_and_any_evaluator() {
        let ps = clustered_points(200, 2, 4);
        let w = vec![1.0; 200];
        let kernel = Kernel::gaussian(0.5);
        let ball = Evaluator::<Ball>::build(&ps, &w, kernel, BoundMethod::Karl, 16);
        let queries = clustered_points(20, 2, 5);
        let batch = QueryBatch::new(&queries, Query::Ekaq { eps: 0.1 });
        let direct = batch.threads(3).run(&ball);
        let any = AnyEvaluator::Ball(ball);
        let dispatched = QueryBatch::new(&queries, Query::Ekaq { eps: 0.1 })
            .threads(3)
            .run_any(&any);
        assert_eq!(direct.outcomes(), dispatched.outcomes());
        for (est, q) in dispatched.estimates().iter().zip(queries.iter()) {
            assert_eq!(*est, any.ekaq(q, 0.1));
        }
    }

    #[test]
    fn decisions_match_scalar_tkaq() {
        let ps = clustered_points(150, 2, 6);
        let w = mixed_weights(150, 7);
        let eval = Evaluator::<Rect>::build(&ps, &w, Kernel::gaussian(0.8), BoundMethod::Karl, 8);
        let queries = clustered_points(30, 2, 8);
        let out = QueryBatch::new(&queries, Query::Tkaq { tau: 0.1 })
            .threads(4)
            .run(&eval);
        let expect: Vec<bool> = queries.iter().map(|q| eval.tkaq(q, 0.1)).collect();
        assert_eq!(out.decisions(), expect);
        assert_eq!(out.len(), 30);
        assert!(out.total_iterations() > 0);
    }

    #[test]
    fn intervals_respect_the_tolerance() {
        let ps = clustered_points(200, 2, 9);
        let w = mixed_weights(200, 10);
        let eval = Evaluator::<Rect>::build(&ps, &w, Kernel::gaussian(0.9), BoundMethod::Karl, 8);
        let queries = clustered_points(15, 2, 11);
        let out = QueryBatch::new(&queries, Query::Within { tol: 0.02 })
            .threads(2)
            .run(&eval);
        for (mid, half) in out.intervals() {
            assert!(half <= 0.01 + 1e-12);
            assert!(mid.is_finite());
        }
    }

    #[test]
    fn level_cap_is_forwarded() {
        let ps = clustered_points(128, 2, 12);
        let w = vec![1.0; 128];
        let eval = Evaluator::<Rect>::build(&ps, &w, Kernel::gaussian(0.7), BoundMethod::Karl, 1);
        let queries = clustered_points(10, 2, 13);
        let out = QueryBatch::new(&queries, Query::Ekaq { eps: 0.1 })
            .level_cap(2)
            .threads(2)
            .run(&eval);
        let expect: Vec<RunOutcome> = queries
            .iter()
            .map(|q| eval.run_query(q, Query::Ekaq { eps: 0.1 }, Some(2)))
            .collect();
        assert_eq!(out.outcomes(), &expect[..]);
    }

    #[test]
    fn empty_batch_is_fine() {
        let ps = clustered_points(10, 2, 14);
        let eval =
            Evaluator::<Rect>::build(&ps, &[1.0; 10], Kernel::gaussian(1.0), BoundMethod::Karl, 4);
        let queries = PointSet::empty(2);
        let out = QueryBatch::new(&queries, Query::Tkaq { tau: 0.5 })
            .threads(4)
            .run(&eval);
        assert!(out.is_empty());
        assert_eq!(out.decisions(), Vec::<bool>::new());
    }

    #[test]
    #[should_panic]
    fn dimension_mismatch_panics_at_batch_entry() {
        let ps = clustered_points(10, 3, 15);
        let eval =
            Evaluator::<Rect>::build(&ps, &[1.0; 10], Kernel::gaussian(1.0), BoundMethod::Karl, 4);
        let queries = clustered_points(5, 2, 16);
        QueryBatch::new(&queries, Query::Tkaq { tau: 0.5 }).run(&eval);
    }

    #[test]
    #[should_panic]
    fn non_positive_eps_panics_at_construction() {
        let queries = clustered_points(5, 2, 17);
        QueryBatch::new(&queries, Query::Ekaq { eps: 0.0 });
    }

    #[test]
    fn explicit_thread_request_wins() {
        assert_eq!(resolve_threads(Some(3)), 3);
        assert_eq!(resolve_threads(Some(0)), 1);
        assert!(resolve_threads(None) >= 1);
    }
}
