//! Batch query execution: scoped-thread workers over one evaluator.
//!
//! The paper measures single-query refinement cost; a serving system cares
//! about *throughput over a stream of queries*. This module amortizes the
//! index across a whole batch:
//!
//! * **Parallelism** — `std::thread::scope` workers (no runtime, no
//!   registry dependencies) pull chunks of query indices off an atomic
//!   work-stealing cursor, so skewed per-query refinement cost balances
//!   automatically.
//! * **Allocation reuse** — each worker owns one [`Scratch`] (priority
//!   queue storage + trace buffer) threaded through
//!   [`Evaluator::run_with_scratch`], so the per-query hot path performs
//!   zero heap allocations once the buffers reach the workload's
//!   high-water mark.
//! * **Determinism** — every query's [`RunOutcome`] is written to its own
//!   slot, each query is evaluated by exactly the same code path as the
//!   sequential [`Evaluator::run_query`], and the heap's refinement order
//!   is a pure function of the query (equal-gap ties break on node id).
//!   A batch result is therefore **bitwise identical** to the sequential
//!   loop, at any thread count.
//!
//! The thread count resolves in order: [`QueryBatch::threads`] override →
//! `KARL_THREADS` environment variable → `available_parallelism`, and is
//! finally capped by the number of queries.
//!
//! # Dual-tree evaluation
//!
//! [`QueryBatch::run_dual`] amortizes bound work *across* queries: it
//! freezes a second tree over the query set, scores query-node ×
//! data-node **pair intervals** (valid for every query in the query
//! node), and accepts or prunes a whole query node at once when the
//! joint interval decides a TKAQ predicate for all its members. When
//! neither side's interval decides, the descent splits whichever side
//! of the widest pair has the larger spatial spread; child query nodes
//! inherit the parent's refined frontier intervals verbatim (sound,
//! since the child's region is a subset) and re-score pairs lazily,
//! gap-first. Query nodes the descent cannot decide fall back to the
//! exact per-query loop above, so answers stay equivalent to
//! [`QueryBatch::run`] at any thread count.
//!
//! ```
//! use karl_core::{BoundMethod, Evaluator, Kernel, Query, QueryBatch};
//! use karl_geom::{PointSet, Rect};
//!
//! let points = PointSet::from_rows(&[vec![0.0, 0.0], vec![1.0, 1.0]]);
//! let eval = Evaluator::<Rect>::build(
//!     &points, &[1.0, 1.0], Kernel::gaussian(0.5), BoundMethod::Karl, 2);
//! let queries = PointSet::from_rows(&[vec![0.0, 0.0], vec![5.0, 5.0]]);
//!
//! let out = QueryBatch::new(&queries, Query::Tkaq { tau: 1.0 })
//!     .threads(2)
//!     .run(&eval);
//! assert_eq!(out.decisions(), vec![true, false]);
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use karl_geom::PointSet;
use karl_tree::{freeze_built, FrozenShapes, FrozenTree, NodeId, NodeShape};

use crate::bounds::{
    assemble_pair, pair_intervals_frozen, BoundMethod, DualQueryContext, PairInterval,
};
use crate::error::{self, KarlError};
#[cfg(feature = "stats")]
use crate::eval::RunStats;
use crate::eval::{
    contribution, decide_tkaq, estimate_ekaq, Budget, Engine, Evaluator, Outcome, Query,
    RunOutcome, Scratch, TierPath,
};
use crate::kernel::Kernel;
use crate::tuning::AnyEvaluator;

/// Queries are handed to workers in index chunks of this size: large enough
/// that the `fetch_add` on the shared cursor is negligible next to even the
/// cheapest query, small enough that a straggler chunk cannot idle the
/// other workers at the end of a batch.
const CHUNK: usize = 16;

/// Between chunks each worker shrinks any scratch buffer that grew past
/// this many elements (and the envelope cache past this many slots), so a
/// single adversarial query cannot ratchet a worker's memory for the rest
/// of the batch. Generous enough that ordinary workloads never hit it —
/// the envelope cache's own table tops out at the same size.
const SCRATCH_CAP: usize = 1 << 15;

/// Leaf capacity of the tree frozen over the *query* set by the dual
/// descent. Small leaves keep query MBRs tight (a loose query region
/// widens every pair interval), while still amortizing one joint
/// decision over several queries.
const QUERY_LEAF: usize = 8;

/// Pair-scoring allowance of an *internal* query node:
/// `DUAL_EXPANSION_PER_QUERY × members + DUAL_EXPANSION_SLACK` scored
/// pair intervals (expansions and lazy re-scores both count). Internal
/// nodes exist to route a refined seed frontier to their children (the
/// spread rule usually splits them long before this cap), so their
/// allowance is kept small.
const DUAL_EXPANSION_PER_QUERY: usize = 4;
/// Pair-scoring allowance multiplier of a *leaf* query node. A leaf is
/// where a wholesale certificate either completes or its scored pairs
/// are wasted, and its alternative — per-query fallback — costs roughly
/// `members × (per-query refinement iterations)`, typically far more
/// than one joint certificate. The leaf budget is therefore sized
/// against the fallback cost, not the internal routing cost.
const DUAL_LEAF_EXPANSION_PER_QUERY: usize = 16;
/// Constant head-room of the expansion allowance, so singleton query
/// leaves still get a fair shot at a wholesale decision.
const DUAL_EXPANSION_SLACK: usize = 32;

/// Per-slot results of a fault-contained run: `(query index, outcome)`.
type TriedSlots = Vec<(usize, Result<Outcome, KarlError>)>;

/// Coreset-cascade tally of one run (or one worker's share of it): how many
/// queries tier 1 decided outright vs how many fell through to the full
/// tree. Each query's [`TierPath`] is a pure function of the query, so the
/// summed tally is deterministic at any thread count.
#[derive(Debug, Clone, Copy, Default)]
struct TierCounts {
    decided: u64,
    fell: u64,
}

impl TierCounts {
    #[inline]
    fn note(&mut self, path: TierPath) {
        match path {
            TierPath::Decided => self.decided += 1,
            TierPath::FellThrough => self.fell += 1,
            TierPath::Bypassed => {}
        }
    }

    #[inline]
    fn add(&mut self, other: &TierCounts) {
        self.decided += other.decided;
        self.fell += other.fell;
    }
}

/// Resolves the worker count for a batch: explicit request →
/// `KARL_THREADS` → `available_parallelism` → 1. Zero and unparsable
/// values of `KARL_THREADS` are ignored rather than honored as nonsense.
pub fn resolve_threads(requested: Option<usize>) -> usize {
    if let Some(n) = requested {
        return n.max(1);
    }
    if let Ok(v) = std::env::var("KARL_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// One query-node × data-node pair on the dual frontier, carrying its
/// contribution-adjusted bound interval (already sign-folded for the P⁻
/// tree, so frontier intervals always just sum).
///
/// `fresh` records whether the interval was scored against the *current*
/// query node's region. A child query node inherits its parent's frontier
/// intervals verbatim — the child's region is a subset of the parent's,
/// so the inherited interval stays sound, merely looser — and re-scores a
/// stale pair lazily, only when its gap is the one blocking a decision.
#[derive(Debug, Clone, Copy)]
struct DualPair {
    negated: bool,
    node: NodeId,
    lb: f64,
    ub: f64,
    fresh: bool,
}

/// What refining one query node's pair frontier concluded.
enum QnodeVerdict {
    /// The joint interval decided the predicate for every member query;
    /// the payload is the synthesized outcome for all of them.
    Decided(RunOutcome),
    /// Undecided — descend into the query node's children, seeding them
    /// with the refined data frontier.
    Split,
    /// Undecided at a query leaf (or with a degenerate frontier): the
    /// members run through the exact per-query loop.
    Fallback,
}

/// Immutable configuration of one dual descent.
struct DualCtx<'a> {
    tau: f64,
    kernel: &'a Kernel,
    method: BoundMethod,
    qfrozen: &'a FrozenTree,
    /// `[P⁺, P⁻]` data trees, indexed by `negated as usize`.
    sides: [Option<&'a FrozenTree>; 2],
}

/// Reused buffers and counters of one dual descent.
struct DualBufs {
    entries: Vec<DualPair>,
    ivbuf: Vec<PairInterval>,
    ids: Vec<NodeId>,
    pairs: u64,
}

/// Widest extent of a frozen node's bounding volume — the longest
/// rectangle side, or the ball diameter. The descent splits whichever
/// side of a pair is wider, since that side's extent dominates the pair
/// interval's slack.
fn node_spread(frozen: &FrozenTree, id: NodeId) -> f64 {
    match frozen.shapes() {
        FrozenShapes::Rect { lo, hi } => {
            let d = frozen.dims();
            let s = id as usize * d;
            lo[s..s + d]
                .iter()
                .zip(&hi[s..s + d])
                .map(|(l, h)| h - l)
                .fold(0.0, f64::max)
        }
        FrozenShapes::Ball { radius, .. } => 2.0 * radius[id as usize],
    }
}

/// Refines the data frontier of one query node until the joint interval
/// decides the TKAQ predicate for every member, or the descent concludes
/// that splitting the query node (or per-query fallback) is the better
/// move. On [`QnodeVerdict::Split`] the refined frontier is left in
/// `bufs.entries` for the caller to seed the children with.
fn refine_query_node(
    cx: &DualCtx<'_>,
    qnode: NodeId,
    seeds: &[DualPair],
    bufs: &mut DualBufs,
) -> QnodeVerdict {
    let DualBufs {
        entries,
        ivbuf,
        ids,
        pairs,
    } = bufs;
    let ctx = DualQueryContext::from_frozen(cx.kernel, cx.method, cx.qfrozen, qnode);
    let curve = ctx.curve();
    entries.clear();
    let mut lb_sum = 0.0f64;
    let mut ub_sum = 0.0f64;
    for s in seeds {
        // Inherited intervals were scored for an ancestor's (wider) query
        // region; this node's region is a subset, so they stay sound and
        // enter stale — re-scored lazily below, gap-first.
        lb_sum += s.lb;
        ub_sum += s.ub;
        entries.push(DualPair { fresh: false, ..*s });
    }
    let (start, end) = cx.qfrozen.range(qnode);
    let q_internal = !cx.qfrozen.is_leaf(qnode);
    let per_query = if q_internal {
        DUAL_EXPANSION_PER_QUERY
    } else {
        DUAL_LEAF_EXPANSION_PER_QUERY
    };
    let cap = per_query * (end - start) + DUAL_EXPANSION_SLACK;
    let qspread = node_spread(cx.qfrozen, qnode);
    let mut scored = 0usize;
    loop {
        if lb_sum >= cx.tau || ub_sum < cx.tau {
            // Sound for every member query: each pair interval encloses
            // that node's contribution for *all* queries in the node, so
            // the summed interval encloses every member's aggregate.
            return QnodeVerdict::Decided(RunOutcome {
                lb: lb_sum,
                ub: ub_sum,
                iterations: 0,
            });
        }
        // Widest actionable pair: stale pairs can be re-scored for this
        // region, fresh internal pairs can be expanded; fresh data-leaf
        // pairs are inert. Ties break on (node id, P⁺ before P⁻) so the
        // descent is a pure function of the batch.
        let mut best: Option<usize> = None;
        for (i, e) in entries.iter().enumerate() {
            let frozen = cx.sides[e.negated as usize].expect("frontier entry without tree");
            if e.fresh && frozen.is_leaf(e.node) {
                continue;
            }
            best = Some(match best {
                None => i,
                Some(j) => {
                    let o = &entries[j];
                    let (gi, gj) = (e.ub - e.lb, o.ub - o.lb);
                    if gi > gj || (gi == gj && (e.node, e.negated) < (o.node, o.negated)) {
                        i
                    } else {
                        j
                    }
                }
            });
        }
        let Some(bi) = best else {
            // All-fresh, all-leaf frontier: the joint interval cannot
            // tighten any further without per-query information.
            return if q_internal {
                QnodeVerdict::Split
            } else {
                QnodeVerdict::Fallback
            };
        };
        if scored >= cap {
            return if q_internal {
                QnodeVerdict::Split
            } else {
                QnodeVerdict::Fallback
            };
        }
        let e = entries[bi];
        let dfrozen = cx.sides[e.negated as usize].expect("actionable entry without tree");
        if !e.fresh {
            // Lazy re-score against this node's tighter query region.
            scored += 1;
            ids.clear();
            ids.push(e.node);
            pair_intervals_frozen(&ctx, dfrozen, ids, ivbuf);
            *pairs += 1;
            let b = assemble_pair(cx.method, curve, &ivbuf[0]);
            let (elb, eub) = contribution(&b, e.negated);
            lb_sum += elb - e.lb;
            ub_sum += eub - e.ub;
            entries[bi] = DualPair {
                lb: elb,
                ub: eub,
                fresh: true,
                ..e
            };
            continue;
        }
        if q_internal && qspread > node_spread(dfrozen, e.node) {
            return QnodeVerdict::Split;
        }
        entries.swap_remove(bi);
        lb_sum -= e.lb;
        ub_sum -= e.ub;
        ids.clear();
        let gathered = dfrozen.gather_children(e.node, ids);
        debug_assert!(gathered, "non-leaf node has children");
        pair_intervals_frozen(&ctx, dfrozen, ids, ivbuf);
        *pairs += ivbuf.len() as u64;
        scored += ivbuf.len();
        for iv in ivbuf.iter() {
            let b = assemble_pair(cx.method, curve, iv);
            let (elb, eub) = contribution(&b, e.negated);
            lb_sum += elb;
            ub_sum += eub;
            entries.push(DualPair {
                negated: e.negated,
                node: iv.node,
                lb: elb,
                ub: eub,
                fresh: true,
            });
        }
    }
}

/// Result of the simultaneous descent: which queries were decided
/// wholesale (and with what synthesized outcome), plus how many pair
/// intervals the descent scored getting there.
struct DualPlan {
    decided: Vec<Option<RunOutcome>>,
    pairs: u64,
}

/// A set of queries to evaluate under one query specification.
///
/// Built once, runnable against any evaluator whose dimensionality matches;
/// see the [module docs](self) for the execution model.
#[derive(Debug, Clone)]
pub struct QueryBatch<'a> {
    queries: &'a PointSet,
    query: Query,
    threads: Option<usize>,
    level_cap: Option<u16>,
    engine: Engine,
    env_cache: bool,
    budget: Budget,
    coreset: bool,
}

impl<'a> QueryBatch<'a> {
    /// Creates a batch of `queries` all answering `query`.
    ///
    /// # Panics
    /// Panics if the query's parameter is invalid (non-finite `τ`,
    /// `eps <= 0` or `tol <= 0`) — validated here once instead of per
    /// query. Use [`try_new`](Self::try_new) for a typed rejection.
    pub fn new(queries: &'a PointSet, query: Query) -> Self {
        Self::try_new(queries, query).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Validating constructor: rejects invalid query parameters with a
    /// typed [`KarlError`] (`InvalidTau` / `InvalidEps` / `InvalidTol`)
    /// instead of panicking.
    pub fn try_new(queries: &'a PointSet, query: Query) -> Result<Self, KarlError> {
        error::validate_spec(query)?;
        Ok(Self {
            queries,
            query,
            threads: None,
            level_cap: None,
            engine: Engine::default(),
            env_cache: false,
            budget: Budget::UNLIMITED,
            coreset: false,
        })
    }

    /// Overrides the worker count (otherwise `KARL_THREADS` /
    /// `available_parallelism`).
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn threads(mut self, n: usize) -> Self {
        assert!(n >= 1, "thread count must be at least 1");
        self.threads = Some(n);
        self
    }

    /// Restricts refinement to the top `level` tree levels (the simulated
    /// tree of the in-situ tuner).
    pub fn level_cap(mut self, level: u16) -> Self {
        self.level_cap = Some(level);
        self
    }

    /// Selects the evaluation engine (default [`Engine::Frozen`]). Both
    /// engines are bitwise-identical; [`Engine::Pointer`] exists for
    /// differential testing and perf comparison.
    pub fn engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// Enables or disables the per-worker envelope memoization (default
    /// off). Purely a performance switch — outcomes are bitwise identical
    /// either way. Turn it on for duplicate-heavy query streams, where a
    /// repeated `(curve, lo, hi, x̄)` key costs a hash probe instead of an
    /// envelope build; on streams of distinct keys every probe misses and
    /// the table is pure overhead, which is why it is opt-in.
    pub fn envelope_cache(mut self, on: bool) -> Self {
        self.env_cache = on;
        self
    }

    /// Enables the coreset cascade (default off): per-query evaluation
    /// first refines on the evaluator's attached coreset tier (see
    /// [`Evaluator::with_coreset_tier`]) and only falls through to the
    /// full tree when the widened interval cannot decide. A no-op on
    /// evaluators without a tier. Applies wherever the per-query path
    /// runs — [`run`](Self::run), [`try_run`](Self::try_run), and the
    /// per-query fallback of the dual-tree entry points.
    ///
    /// Answer contract (`tests/coreset_cascade_equivalence.rs`): TKAQ
    /// decisions and `Within` results are identical to the cascade-off
    /// run (`Within` queries bypass the tier entirely — their answer *is*
    /// the interval, which tier widening would legitimately coarsen — so
    /// their outcomes stay bitwise identical); eKAQ estimates satisfy the
    /// requested relative error but may differ bitwise when the tier
    /// decides. When off, the code path is bitwise identical to the
    /// pre-cascade engine.
    pub fn coreset(mut self, on: bool) -> Self {
        self.coreset = on;
        self
    }

    /// Applies a per-query refinement [`Budget`] (default unlimited).
    /// Budgets are honored by [`try_run`](Self::try_run); queries that
    /// exhaust theirs report `Outcome::Truncated` with the certified
    /// interval at stop time. The legacy [`run`](Self::run) predates
    /// budgets and panics if one is set.
    pub fn budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Evaluates the batch against `eval`.
    ///
    /// Dimensionality is validated **once here for the whole batch**; the
    /// per-query hot path ([`Evaluator::run_with_scratch_on`]) only
    /// `debug_assert!`s it.
    ///
    /// # Panics
    /// Panics if the query dimensionality does not match the evaluator's,
    /// or if a worker thread panics.
    pub fn run<S: NodeShape + Sync>(&self, eval: &Evaluator<S>) -> BatchOutcome {
        assert_eq!(
            self.queries.dims(),
            eval.dims(),
            "query dimensionality mismatch"
        );
        assert!(
            self.budget.is_unlimited(),
            "budgeted batches must use try_run (run cannot represent truncated outcomes)"
        );
        let n = self.queries.len();
        let threads = resolve_threads(self.threads).min(n.max(1));
        let start = Instant::now();
        let (outcomes, scratches, tier) = if threads <= 1 {
            let mut scratch = Scratch::new();
            scratch.set_envelope_cache(self.env_cache);
            let mut tier = TierCounts::default();
            let out = (0..n)
                .map(|i| self.run_one_unchecked(eval, self.queries.point(i), &mut scratch, &mut tier))
                .collect();
            (out, vec![scratch], tier)
        } else {
            self.run_parallel(eval, n, threads)
        };
        let elapsed = start.elapsed();
        #[cfg(feature = "stats")]
        let stats = {
            let mut s = RunStats::default();
            for sc in &scratches {
                s.merge(&sc.stats());
            }
            s.coreset_decided += tier.decided;
            s.coreset_fallthrough += tier.fell;
            s
        };
        let _ = scratches;
        BatchOutcome {
            query: self.query,
            threads,
            elapsed,
            outcomes,
            dual_pairs: 0,
            dual_wholesale: 0,
            coreset_decided: tier.decided,
            coreset_fallthrough: tier.fell,
            #[cfg(feature = "stats")]
            stats,
        }
    }

    /// One query through the unvalidated per-query path: the plain
    /// scratch-reusing entry point, or the cascade twin when
    /// [`coreset`](Self::coreset) is on. With the flag off this compiles
    /// down to exactly the pre-cascade call.
    #[inline]
    fn run_one_unchecked<S: NodeShape + Sync>(
        &self,
        eval: &Evaluator<S>,
        q: &[f64],
        scratch: &mut Scratch,
        tier: &mut TierCounts,
    ) -> RunOutcome {
        if self.coreset {
            let (out, path) =
                eval.run_cascade_with_scratch_on(self.engine, q, self.query, self.level_cap, scratch);
            tier.note(path);
            out
        } else {
            eval.run_with_scratch_on(self.engine, q, self.query, self.level_cap, scratch)
        }
    }

    /// [`run`](Self::run) over a runtime-dispatched evaluator.
    pub fn run_any(&self, eval: &AnyEvaluator) -> BatchOutcome {
        match eval {
            AnyEvaluator::Kd(e) => self.run(e),
            AnyEvaluator::Ball(e) => self.run(e),
        }
    }

    /// Fault-contained batch evaluation: every query runs through the
    /// validated, budget-aware entry point inside `catch_unwind`, so one
    /// poisoned query (non-finite point, or a panic in the refinement
    /// loop) yields an `Err` in **its own result slot** while every other
    /// query completes normally — with outcomes bitwise identical to an
    /// all-healthy run.
    ///
    /// A worker whose query panicked discards its [`Scratch`] (the
    /// buffers may hold partially-updated state) and continues the batch
    /// with a fresh one; [`BatchReport::quarantined`] counts how often
    /// that happened. Batch-level defects — mismatched dimensionality,
    /// an invalid query spec — fail the whole call instead.
    pub fn try_run<S: NodeShape + Sync>(
        &self,
        eval: &Evaluator<S>,
    ) -> Result<BatchReport, KarlError> {
        if self.queries.dims() != eval.dims() {
            return Err(KarlError::DimMismatch {
                expected: eval.dims(),
                got: self.queries.dims(),
            });
        }
        error::validate_spec(self.query)?;
        let n = self.queries.len();
        let threads = resolve_threads(self.threads).min(n.max(1));
        let start = Instant::now();
        let (results, scratches, quarantined, tier) = if threads <= 1 {
            let mut scratch = Scratch::new();
            scratch.set_envelope_cache(self.env_cache);
            let mut quarantined = 0usize;
            let mut tier = TierCounts::default();
            let out = (0..n)
                .map(|i| self.run_one_contained(eval, i, &mut scratch, &mut quarantined, &mut tier))
                .collect();
            (out, vec![scratch], quarantined, tier)
        } else {
            self.try_run_parallel(eval, n, threads)
        };
        let elapsed = start.elapsed();
        #[cfg(feature = "stats")]
        let stats = {
            let mut s = RunStats::default();
            for sc in &scratches {
                s.merge(&sc.stats());
            }
            s.coreset_decided += tier.decided;
            s.coreset_fallthrough += tier.fell;
            s
        };
        let _ = scratches;
        Ok(BatchReport {
            query: self.query,
            threads,
            elapsed,
            results,
            quarantined,
            dual_pairs: 0,
            dual_wholesale: 0,
            coreset_decided: tier.decided,
            coreset_fallthrough: tier.fell,
            #[cfg(feature = "stats")]
            stats,
        })
    }

    /// [`try_run`](Self::try_run) over a runtime-dispatched evaluator.
    pub fn try_run_any(&self, eval: &AnyEvaluator) -> Result<BatchReport, KarlError> {
        match eval {
            AnyEvaluator::Kd(e) => self.try_run(e),
            AnyEvaluator::Ball(e) => self.try_run(e),
        }
    }

    /// Dual-tree batch evaluation: freezes a second tree over the query
    /// set (same shape family as the data tree), runs a simultaneous
    /// descent scoring query-node × data-node pair intervals, and — for
    /// TKAQ batches — decides whole query nodes at once when a joint
    /// interval clears (or misses) `τ` for every member. Undecided query
    /// nodes, and every eKAQ / Within batch, complete through the exact
    /// per-query loop of [`run`](Self::run).
    ///
    /// Answers are equivalent to [`run`](Self::run) at any thread count:
    /// [`BatchOutcome::decisions`], [`BatchOutcome::estimates`] and
    /// [`BatchOutcome::intervals`] are bitwise identical. Raw
    /// [`BatchOutcome::outcomes`] of wholesale-decided TKAQ queries carry
    /// the joint interval with `iterations == 0` instead of that query's
    /// own refinement endpoint (a wholesale decision never reaches the
    /// per-query refinement), which is why eKAQ / Within batches — whose
    /// *answers* are the interval itself — never take the wholesale path.
    ///
    /// The descent itself is single-threaded (its work is sublinear in
    /// the batch on workloads where it helps); only the per-query
    /// fallback fans out to workers.
    ///
    /// # Panics
    /// Same contract as [`run`](Self::run): dimensionality mismatch, a
    /// configured budget, or a worker panic.
    pub fn run_dual<S: NodeShape + Sync>(&self, eval: &Evaluator<S>) -> BatchOutcome {
        assert_eq!(
            self.queries.dims(),
            eval.dims(),
            "query dimensionality mismatch"
        );
        assert!(
            self.budget.is_unlimited(),
            "budgeted batches must use try_run_dual (run_dual cannot represent truncated outcomes)"
        );
        let n = self.queries.len();
        let threads = resolve_threads(self.threads).min(n.max(1));
        let start = Instant::now();
        let plan = self.plan_dual(eval);
        let pending: Vec<usize> = (0..n).filter(|&i| plan.decided[i].is_none()).collect();
        let mut outcomes: Vec<RunOutcome> = plan
            .decided
            .iter()
            .map(|d| {
                d.unwrap_or(RunOutcome {
                    lb: 0.0,
                    ub: 0.0,
                    iterations: 0,
                })
            })
            .collect();
        let (filled, scratches, tier) = self.run_pending(eval, &pending, threads);
        for (i, out) in filled {
            outcomes[i] = out;
        }
        let elapsed = start.elapsed();
        let dual_wholesale = (n - pending.len()) as u64;
        #[cfg(feature = "stats")]
        let stats = {
            let mut s = RunStats::default();
            for sc in &scratches {
                s.merge(&sc.stats());
            }
            s.dual_pairs_scored += plan.pairs;
            s.dual_wholesale_decided += dual_wholesale;
            s.coreset_decided += tier.decided;
            s.coreset_fallthrough += tier.fell;
            s
        };
        let _ = scratches;
        BatchOutcome {
            query: self.query,
            threads,
            elapsed,
            outcomes,
            dual_pairs: plan.pairs,
            dual_wholesale,
            coreset_decided: tier.decided,
            coreset_fallthrough: tier.fell,
            #[cfg(feature = "stats")]
            stats,
        }
    }

    /// [`run_dual`](Self::run_dual) over a runtime-dispatched evaluator.
    pub fn run_dual_any(&self, eval: &AnyEvaluator) -> BatchOutcome {
        match eval {
            AnyEvaluator::Kd(e) => self.run_dual(e),
            AnyEvaluator::Ball(e) => self.run_dual(e),
        }
    }

    /// Fault-contained, budget-aware [`run_dual`](Self::run_dual):
    /// wholesale-decided queries report `Outcome::Complete` (a joint
    /// decision costs zero refinement iterations, so no budget can trip
    /// it); every other query runs through the same contained per-query
    /// path as [`try_run`](Self::try_run), honoring the configured
    /// [`Budget`] with certified `Outcome::Truncated` intervals.
    ///
    /// Fault-planned queries (under the `fault-inject` feature) are
    /// excluded from wholesale acceptance so a planted fault surfaces in
    /// exactly its own result slot rather than being masked by a joint
    /// decision.
    pub fn try_run_dual<S: NodeShape + Sync>(
        &self,
        eval: &Evaluator<S>,
    ) -> Result<BatchReport, KarlError> {
        if self.queries.dims() != eval.dims() {
            return Err(KarlError::DimMismatch {
                expected: eval.dims(),
                got: self.queries.dims(),
            });
        }
        error::validate_spec(self.query)?;
        let n = self.queries.len();
        let threads = resolve_threads(self.threads).min(n.max(1));
        let start = Instant::now();
        let plan = self.plan_dual(eval);
        let mut results: Vec<Result<Outcome, KarlError>> = Vec::with_capacity(n);
        results.resize_with(n, || Err(KarlError::EmptyPoints));
        let mut pending = Vec::new();
        for (i, d) in plan.decided.iter().enumerate() {
            #[cfg(feature = "fault-inject")]
            let d = if crate::fault::planned(i).is_some() {
                &None
            } else {
                d
            };
            match d {
                Some(out) => results[i] = Ok(Outcome::Complete(*out)),
                None => pending.push(i),
            }
        }
        let (filled, scratches, quarantined, tier) = self.try_run_pending(eval, &pending, threads);
        for (i, r) in filled {
            results[i] = r;
        }
        let elapsed = start.elapsed();
        let dual_wholesale = (n - pending.len()) as u64;
        #[cfg(feature = "stats")]
        let stats = {
            let mut s = RunStats::default();
            for sc in &scratches {
                s.merge(&sc.stats());
            }
            s.dual_pairs_scored += plan.pairs;
            s.dual_wholesale_decided += dual_wholesale;
            s.coreset_decided += tier.decided;
            s.coreset_fallthrough += tier.fell;
            s
        };
        let _ = scratches;
        Ok(BatchReport {
            query: self.query,
            threads,
            elapsed,
            results,
            quarantined,
            dual_pairs: plan.pairs,
            dual_wholesale,
            coreset_decided: tier.decided,
            coreset_fallthrough: tier.fell,
            #[cfg(feature = "stats")]
            stats,
        })
    }

    /// [`try_run_dual`](Self::try_run_dual) over a runtime-dispatched
    /// evaluator.
    pub fn try_run_dual_any(&self, eval: &AnyEvaluator) -> Result<BatchReport, KarlError> {
        match eval {
            AnyEvaluator::Kd(e) => self.try_run_dual(e),
            AnyEvaluator::Ball(e) => self.try_run_dual(e),
        }
    }

    /// Runs the simultaneous descent and returns which queries a joint
    /// interval decided. Non-TKAQ batches, empty batches, and batches
    /// with non-finite query coordinates skip the descent entirely (an
    /// all-`None` plan routes everything through the per-query path —
    /// NaN coordinates would poison the query tree's bounding volumes).
    fn plan_dual<S: NodeShape>(&self, eval: &Evaluator<S>) -> DualPlan {
        let n = self.queries.len();
        let mut plan = DualPlan {
            decided: vec![None; n],
            pairs: 0,
        };
        let Query::Tkaq { tau } = self.query else {
            return plan;
        };
        if n == 0 {
            return plan;
        }
        if self
            .queries
            .iter()
            .any(|q| q.iter().any(|v| !v.is_finite()))
        {
            return plan;
        }
        // Query weights are irrelevant to the descent; all-ones keeps the
        // builder's augmented statistics trivially valid.
        let ones = vec![1.0f64; n];
        let (qtree, qfrozen) = freeze_built::<S>(self.queries.clone(), &ones, QUERY_LEAF);
        let qperm = qtree.perm();
        let cx = DualCtx {
            tau,
            kernel: eval.kernel(),
            method: eval.method(),
            qfrozen: &qfrozen,
            sides: [eval.pos_frozen(), eval.neg_frozen()],
        };
        let mut bufs = DualBufs {
            entries: Vec::new(),
            ivbuf: Vec::new(),
            ids: Vec::new(),
            pairs: 0,
        };
        // Root seeds need real intervals (a child may inherit them before
        // ever re-scoring), so score the tree roots against the root
        // query node explicitly.
        let root_ctx = DualQueryContext::from_frozen(cx.kernel, cx.method, &qfrozen, qfrozen.root());
        let root_curve = root_ctx.curve();
        let mut seeds_root: Vec<DualPair> = Vec::new();
        for (negated, side) in [(false, cx.sides[0]), (true, cx.sides[1])] {
            if let Some(f) = side {
                bufs.ids.clear();
                bufs.ids.push(f.root());
                pair_intervals_frozen(&root_ctx, f, &bufs.ids, &mut bufs.ivbuf);
                bufs.pairs += 1;
                let b = assemble_pair(cx.method, root_curve, &bufs.ivbuf[0]);
                let (lb, ub) = contribution(&b, negated);
                seeds_root.push(DualPair {
                    negated,
                    node: f.root(),
                    lb,
                    ub,
                    fresh: true,
                });
            }
        }
        let mut kids: Vec<NodeId> = Vec::new();
        let mut stack: Vec<(NodeId, Vec<DualPair>)> = vec![(qfrozen.root(), seeds_root)];
        while let Some((qnode, seeds)) = stack.pop() {
            match refine_query_node(&cx, qnode, &seeds, &mut bufs) {
                QnodeVerdict::Decided(out) => {
                    let (start, end) = qfrozen.range(qnode);
                    for &p in &qperm[start..end] {
                        plan.decided[p as usize] = Some(out);
                    }
                }
                QnodeVerdict::Split => {
                    let seeds = bufs.entries.clone();
                    kids.clear();
                    let gathered = qfrozen.gather_children(qnode, &mut kids);
                    debug_assert!(gathered, "split verdict only on internal query nodes");
                    for &c in kids.iter() {
                        stack.push((c, seeds.clone()));
                    }
                }
                QnodeVerdict::Fallback => {}
            }
        }
        plan.pairs = bufs.pairs;
        plan
    }

    /// Runs the undecided subset of a dual batch through the exact
    /// per-query loop, sequentially or over scoped workers pulling
    /// chunks of the pending index list. Results come back tagged with
    /// their original slot.
    fn run_pending<S: NodeShape + Sync>(
        &self,
        eval: &Evaluator<S>,
        pending: &[usize],
        threads: usize,
    ) -> (Vec<(usize, RunOutcome)>, Vec<Scratch>, TierCounts) {
        let m = pending.len();
        let workers = threads.min(m.max(1));
        if workers <= 1 {
            let mut scratch = Scratch::new();
            scratch.set_envelope_cache(self.env_cache);
            let mut tier = TierCounts::default();
            let out = pending
                .iter()
                .map(|&i| {
                    let out = self.run_one_unchecked(
                        eval,
                        self.queries.point(i),
                        &mut scratch,
                        &mut tier,
                    );
                    (i, out)
                })
                .collect();
            return (out, vec![scratch], tier);
        }
        let cursor = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut scratch = Scratch::new();
                        scratch.set_envelope_cache(self.env_cache);
                        let mut tier = TierCounts::default();
                        let mut local: Vec<(usize, RunOutcome)> =
                            Vec::with_capacity(m / workers + CHUNK);
                        loop {
                            let lo = cursor.fetch_add(CHUNK, Ordering::Relaxed);
                            if lo >= m {
                                break;
                            }
                            let hi = (lo + CHUNK).min(m);
                            for &i in &pending[lo..hi] {
                                let out = self.run_one_unchecked(
                                    eval,
                                    self.queries.point(i),
                                    &mut scratch,
                                    &mut tier,
                                );
                                local.push((i, out));
                            }
                            scratch.reset_with_capacity_cap(SCRATCH_CAP);
                        }
                        (local, scratch, tier)
                    })
                })
                .collect();
            let mut out = Vec::with_capacity(m);
            let mut scratches = Vec::with_capacity(workers);
            let mut tier = TierCounts::default();
            for h in handles {
                let (local, scratch, t) = h.join().expect("batch worker panicked");
                out.extend(local);
                scratches.push(scratch);
                tier.add(&t);
            }
            (out, scratches, tier)
        })
    }

    /// Fault-contained, budget-aware twin of
    /// [`run_pending`](Self::run_pending).
    fn try_run_pending<S: NodeShape + Sync>(
        &self,
        eval: &Evaluator<S>,
        pending: &[usize],
        threads: usize,
    ) -> (TriedSlots, Vec<Scratch>, usize, TierCounts) {
        let m = pending.len();
        let workers = threads.min(m.max(1));
        if workers <= 1 {
            let mut scratch = Scratch::new();
            scratch.set_envelope_cache(self.env_cache);
            let mut quarantined = 0usize;
            let mut tier = TierCounts::default();
            let out = pending
                .iter()
                .map(|&i| {
                    let r =
                        self.run_one_contained(eval, i, &mut scratch, &mut quarantined, &mut tier);
                    (i, r)
                })
                .collect();
            return (out, vec![scratch], quarantined, tier);
        }
        let cursor = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut scratch = Scratch::new();
                        scratch.set_envelope_cache(self.env_cache);
                        let mut quarantined = 0usize;
                        let mut tier = TierCounts::default();
                        let mut local: Vec<(usize, Result<Outcome, KarlError>)> =
                            Vec::with_capacity(m / workers + CHUNK);
                        loop {
                            let lo = cursor.fetch_add(CHUNK, Ordering::Relaxed);
                            if lo >= m {
                                break;
                            }
                            let hi = (lo + CHUNK).min(m);
                            for &i in &pending[lo..hi] {
                                let r = self.run_one_contained(
                                    eval,
                                    i,
                                    &mut scratch,
                                    &mut quarantined,
                                    &mut tier,
                                );
                                local.push((i, r));
                            }
                            scratch.reset_with_capacity_cap(SCRATCH_CAP);
                        }
                        (local, scratch, quarantined, tier)
                    })
                })
                .collect();
            let mut out = Vec::with_capacity(m);
            let mut scratches = Vec::with_capacity(workers);
            let mut quarantined = 0usize;
            let mut tier = TierCounts::default();
            for h in handles {
                let (local, scratch, q, t) = h.join().expect("batch worker panicked");
                out.extend(local);
                scratches.push(scratch);
                quarantined += q;
                tier.add(&t);
            }
            (out, scratches, quarantined, tier)
        })
    }

    /// Evaluates query `i` with panic containment. On a panic the scratch
    /// is quarantined — replaced wholesale rather than reused — because an
    /// unwind can leave its buffers in a partially-updated state.
    fn run_one_contained<S: NodeShape + Sync>(
        &self,
        eval: &Evaluator<S>,
        i: usize,
        scratch: &mut Scratch,
        quarantined: &mut usize,
        tier: &mut TierCounts,
    ) -> Result<Outcome, KarlError> {
        // AssertUnwindSafe audit: the closure mutates only `scratch`, and
        // the catch arm below discards that scratch instead of reusing it,
        // so no broken invariant can escape the unwind.
        let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            #[cfg(feature = "fault-inject")]
            match crate::fault::planned(i) {
                Some(crate::fault::Fault::Panic) => panic!("injected fault at query {i}"),
                Some(crate::fault::Fault::Nan) => {
                    // Fault-planned queries skip the coreset tier
                    // (mirroring the dual wholesale exclusion): a planted
                    // fault must surface in its own slot, never be decided
                    // away by the tier.
                    let nan_q = vec![f64::NAN; self.queries.dims()];
                    return eval
                        .run_budgeted_with_scratch_on(
                            self.engine,
                            &nan_q,
                            self.query,
                            self.level_cap,
                            &self.budget,
                            scratch,
                        )
                        .map(|o| (o, TierPath::Bypassed));
                }
                None => {}
            }
            if self.coreset {
                eval.run_cascade_budgeted_with_scratch_on(
                    self.engine,
                    self.queries.point(i),
                    self.query,
                    self.level_cap,
                    &self.budget,
                    scratch,
                )
            } else {
                eval.run_budgeted_with_scratch_on(
                    self.engine,
                    self.queries.point(i),
                    self.query,
                    self.level_cap,
                    &self.budget,
                    scratch,
                )
                .map(|o| (o, TierPath::Bypassed))
            }
        }));
        match attempt {
            Ok(result) => result.map(|(o, path)| {
                tier.note(path);
                o
            }),
            Err(payload) => {
                *scratch = Scratch::new();
                scratch.set_envelope_cache(self.env_cache);
                *quarantined += 1;
                let message = if let Some(s) = payload.downcast_ref::<&str>() {
                    (*s).to_string()
                } else if let Some(s) = payload.downcast_ref::<String>() {
                    s.clone()
                } else {
                    "non-string panic payload".to_string()
                };
                Err(KarlError::QueryPanicked { index: i, message })
            }
        }
    }

    fn try_run_parallel<S: NodeShape + Sync>(
        &self,
        eval: &Evaluator<S>,
        n: usize,
        threads: usize,
    ) -> (
        Vec<Result<Outcome, KarlError>>,
        Vec<Scratch>,
        usize,
        TierCounts,
    ) {
        let cursor = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            let workers: Vec<_> = (0..threads)
                .map(|_| {
                    scope.spawn(|| {
                        let mut scratch = Scratch::new();
                        scratch.set_envelope_cache(self.env_cache);
                        let mut quarantined = 0usize;
                        let mut tier = TierCounts::default();
                        let mut local: Vec<(usize, Result<Outcome, KarlError>)> =
                            Vec::with_capacity(n / threads + CHUNK);
                        loop {
                            let lo = cursor.fetch_add(CHUNK, Ordering::Relaxed);
                            if lo >= n {
                                break;
                            }
                            let hi = (lo + CHUNK).min(n);
                            for i in lo..hi {
                                let r = self.run_one_contained(
                                    eval,
                                    i,
                                    &mut scratch,
                                    &mut quarantined,
                                    &mut tier,
                                );
                                local.push((i, r));
                            }
                            scratch.reset_with_capacity_cap(SCRATCH_CAP);
                        }
                        (local, scratch, quarantined, tier)
                    })
                })
                .collect();
            let mut out: Vec<Result<Outcome, KarlError>> = Vec::with_capacity(n);
            out.resize_with(n, || Err(KarlError::EmptyPoints));
            let mut scratches = Vec::with_capacity(threads);
            let mut quarantined = 0usize;
            let mut tier = TierCounts::default();
            for w in workers {
                // Worker threads never panic for query-level faults —
                // those are contained per slot — so this join only fails
                // on harness-level bugs.
                let (local, scratch, q, t) = w.join().expect("batch worker panicked");
                for (i, r) in local {
                    out[i] = r;
                }
                scratches.push(scratch);
                quarantined += q;
                tier.add(&t);
            }
            (out, scratches, quarantined, tier)
        })
    }

    fn run_parallel<S: NodeShape + Sync>(
        &self,
        eval: &Evaluator<S>,
        n: usize,
        threads: usize,
    ) -> (Vec<RunOutcome>, Vec<Scratch>, TierCounts) {
        let cursor = AtomicUsize::new(0);
        let queries = self.queries;
        std::thread::scope(|scope| {
            let workers: Vec<_> = (0..threads)
                .map(|_| {
                    scope.spawn(|| {
                        let mut scratch = Scratch::new();
                        scratch.set_envelope_cache(self.env_cache);
                        let mut tier = TierCounts::default();
                        let mut local: Vec<(usize, RunOutcome)> =
                            Vec::with_capacity(n / threads + CHUNK);
                        loop {
                            let lo = cursor.fetch_add(CHUNK, Ordering::Relaxed);
                            if lo >= n {
                                break;
                            }
                            let hi = (lo + CHUNK).min(n);
                            for i in lo..hi {
                                let out = self.run_one_unchecked(
                                    eval,
                                    queries.point(i),
                                    &mut scratch,
                                    &mut tier,
                                );
                                local.push((i, out));
                            }
                            // Bound the worker's memory between chunks: one
                            // adversarial query must not ratchet allocations
                            // for the rest of the batch. A no-op while every
                            // buffer stays under the cap, so warm envelope
                            // cache entries survive ordinary workloads.
                            scratch.reset_with_capacity_cap(SCRATCH_CAP);
                        }
                        (local, scratch, tier)
                    })
                })
                .collect();
            // Stitch the stolen chunks back into query order; this is what
            // makes the outcome independent of scheduling.
            let mut out = vec![
                RunOutcome {
                    lb: 0.0,
                    ub: 0.0,
                    iterations: 0
                };
                n
            ];
            let mut scratches = Vec::with_capacity(threads);
            let mut tier = TierCounts::default();
            for w in workers {
                let (local, scratch, t) = w.join().expect("batch worker panicked");
                for (i, r) in local {
                    out[i] = r;
                }
                scratches.push(scratch);
                tier.add(&t);
            }
            (out, scratches, tier)
        })
    }
}

/// Per-query bound outcomes of a batch run, plus execution statistics.
#[derive(Debug, Clone)]
pub struct BatchOutcome {
    query: Query,
    threads: usize,
    elapsed: Duration,
    outcomes: Vec<RunOutcome>,
    dual_pairs: u64,
    dual_wholesale: u64,
    coreset_decided: u64,
    coreset_fallthrough: u64,
    #[cfg(feature = "stats")]
    stats: RunStats,
}

impl BatchOutcome {
    /// Raw bound outcomes, in query order.
    pub fn outcomes(&self) -> &[RunOutcome] {
        &self.outcomes
    }

    /// Run counters summed across all workers (behind the `stats`
    /// feature). `nodes_refined` is deterministic at any thread count
    /// (outcomes are bitwise identical); the envelope/cache counters are
    /// not — each worker warms its own cache, so how queries were dealt
    /// to workers changes what hits.
    #[cfg(feature = "stats")]
    pub fn stats(&self) -> RunStats {
        self.stats
    }

    /// The query specification the batch answered.
    pub fn query(&self) -> Query {
        self.query
    }

    /// Worker threads the run actually used.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Wall-clock time of the run.
    pub fn elapsed(&self) -> Duration {
        self.elapsed
    }

    /// Queries answered per second.
    pub fn throughput(&self) -> f64 {
        self.outcomes.len() as f64 / self.elapsed.as_secs_f64().max(f64::MIN_POSITIVE)
    }

    /// Number of queries in the batch.
    pub fn len(&self) -> usize {
        self.outcomes.len()
    }

    /// Whether the batch held no queries.
    pub fn is_empty(&self) -> bool {
        self.outcomes.is_empty()
    }

    /// Total refinement iterations across the batch.
    pub fn total_iterations(&self) -> usize {
        self.outcomes.iter().map(|o| o.iterations).sum()
    }

    /// Query-node × data-node pair intervals scored by the dual-tree
    /// descent. Zero for [`QueryBatch::run`].
    pub fn dual_pairs(&self) -> u64 {
        self.dual_pairs
    }

    /// Queries decided wholesale by a joint query-node interval in
    /// [`QueryBatch::run_dual`], without any per-query refinement. Zero
    /// for [`QueryBatch::run`].
    pub fn dual_wholesale(&self) -> u64 {
        self.dual_wholesale
    }

    /// Queries the coreset front tier decided outright (the full tree was
    /// never touched). Zero when [`QueryBatch::coreset`] is off or the
    /// evaluator carries no tier.
    pub fn coreset_decided(&self) -> u64 {
        self.coreset_decided
    }

    /// Queries that ran the coreset tier but fell through to the full
    /// tree. Zero when [`QueryBatch::coreset`] is off or the evaluator
    /// carries no tier (`Within` queries bypass the tier and count in
    /// neither tally).
    pub fn coreset_fallthrough(&self) -> u64 {
        self.coreset_fallthrough
    }

    /// Total node visits attributable to a dual run: pair intervals
    /// scored by the descent plus refinement iterations of the
    /// per-query fallback. Comparable against
    /// [`total_iterations`](Self::total_iterations) of a single-tree
    /// run of the same batch.
    pub fn dual_node_visits(&self) -> u64 {
        self.dual_pairs + self.total_iterations() as u64
    }

    /// TKAQ decisions, in query order.
    ///
    /// # Panics
    /// Panics if the batch was not a [`Query::Tkaq`] batch.
    pub fn decisions(&self) -> Vec<bool> {
        let Query::Tkaq { tau } = self.query else {
            panic!("decisions() requires a TKAQ batch, got {:?}", self.query);
        };
        self.outcomes.iter().map(|o| decide_tkaq(o, tau)).collect()
    }

    /// Scalar answers, in query order: the eKAQ estimate, the Within
    /// midpoint, or `1.0`/`0.0` for TKAQ decisions (matching
    /// [`AnyEvaluator::answer`]).
    pub fn estimates(&self) -> Vec<f64> {
        match self.query {
            Query::Tkaq { tau } => self
                .outcomes
                .iter()
                .map(|o| if decide_tkaq(o, tau) { 1.0 } else { 0.0 })
                .collect(),
            Query::Ekaq { .. } => self.outcomes.iter().map(estimate_ekaq).collect(),
            Query::Within { .. } => self.outcomes.iter().map(|o| 0.5 * (o.lb + o.ub)).collect(),
        }
    }

    /// `(midpoint, half_width)` intervals, in query order.
    ///
    /// # Panics
    /// Panics if the batch was not a [`Query::Within`] batch.
    pub fn intervals(&self) -> Vec<(f64, f64)> {
        let Query::Within { .. } = self.query else {
            panic!("intervals() requires a Within batch, got {:?}", self.query);
        };
        self.outcomes
            .iter()
            .map(|o| (0.5 * (o.lb + o.ub), 0.5 * (o.ub - o.lb).max(0.0)))
            .collect()
    }
}

/// Result of a fault-contained [`QueryBatch::try_run`]: one
/// `Result<Outcome, KarlError>` per query, in query order. Healthy
/// queries carry the same bits they would in an all-healthy run; poisoned
/// queries carry the error that took them down.
#[derive(Debug, Clone)]
pub struct BatchReport {
    query: Query,
    threads: usize,
    elapsed: Duration,
    results: Vec<Result<Outcome, KarlError>>,
    quarantined: usize,
    dual_pairs: u64,
    dual_wholesale: u64,
    coreset_decided: u64,
    coreset_fallthrough: u64,
    #[cfg(feature = "stats")]
    stats: RunStats,
}

impl BatchReport {
    /// Per-query results, in query order.
    pub fn results(&self) -> &[Result<Outcome, KarlError>] {
        &self.results
    }

    /// The query specification the batch answered.
    pub fn query(&self) -> Query {
        self.query
    }

    /// Worker threads the run actually used.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Wall-clock time of the run.
    pub fn elapsed(&self) -> Duration {
        self.elapsed
    }

    /// How many times a worker discarded its scratch after containing a
    /// panic (at most once per failed query).
    pub fn quarantined(&self) -> usize {
        self.quarantined
    }

    /// Query-node × data-node pair intervals scored by the dual-tree
    /// descent. Zero for [`QueryBatch::try_run`].
    pub fn dual_pairs(&self) -> u64 {
        self.dual_pairs
    }

    /// Queries decided wholesale by a joint query-node interval in
    /// [`QueryBatch::try_run_dual`], without any per-query refinement
    /// (fault-planned queries never count — they always take the
    /// contained per-query path). Zero for [`QueryBatch::try_run`].
    pub fn dual_wholesale(&self) -> u64 {
        self.dual_wholesale
    }

    /// Queries the coreset front tier decided outright (fault-planned
    /// queries never count — they always take the contained per-query
    /// path). Zero when [`QueryBatch::coreset`] is off or the evaluator
    /// carries no tier.
    pub fn coreset_decided(&self) -> u64 {
        self.coreset_decided
    }

    /// Queries that ran the coreset tier but fell through to the full
    /// tree. Zero when [`QueryBatch::coreset`] is off or the evaluator
    /// carries no tier.
    pub fn coreset_fallthrough(&self) -> u64 {
        self.coreset_fallthrough
    }

    /// Number of queries in the batch.
    pub fn len(&self) -> usize {
        self.results.len()
    }

    /// Whether the batch held no queries.
    pub fn is_empty(&self) -> bool {
        self.results.is_empty()
    }

    /// Indices of the queries that failed, in query order.
    pub fn failed_indices(&self) -> Vec<usize> {
        self.results
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.is_err().then_some(i))
            .collect()
    }

    /// Number of queries that completed (possibly truncated) successfully.
    pub fn ok_count(&self) -> usize {
        self.results.iter().filter(|r| r.is_ok()).count()
    }

    /// Whether any query failed.
    pub fn has_failures(&self) -> bool {
        self.results.iter().any(|r| r.is_err())
    }

    /// Number of queries whose budget tripped before termination.
    pub fn truncated_count(&self) -> usize {
        self.results
            .iter()
            .filter(|r| matches!(r, Ok(o) if o.is_truncated()))
            .count()
    }

    /// Number of queries that ran to their normal termination — succeeded
    /// and were *not* budget-truncated. `completed_count() +
    /// truncated_count() + failed_indices().len()` always equals
    /// [`len`](Self::len).
    pub fn completed_count(&self) -> usize {
        self.results
            .iter()
            .filter(|r| matches!(r, Ok(o) if !o.is_truncated()))
            .count()
    }

    /// Queries answered per second.
    pub fn throughput(&self) -> f64 {
        self.results.len() as f64 / self.elapsed.as_secs_f64().max(f64::MIN_POSITIVE)
    }

    /// Scalar answer for one successful outcome under this batch's query
    /// spec, bit-for-bit equal to [`BatchOutcome::estimates`] on complete
    /// outcomes. Truncated outcomes degrade to the certified-interval
    /// midpoint (eKAQ / Within) or to the midpoint decision (TKAQ — use
    /// [`Outcome::is_truncated`] to tell an honest decision apart).
    pub fn answer(&self, out: &Outcome) -> f64 {
        match (*out, self.query) {
            (Outcome::Complete(run), Query::Tkaq { tau }) => {
                if decide_tkaq(&run, tau) {
                    1.0
                } else {
                    0.0
                }
            }
            (Outcome::Truncated { lb, ub, .. }, Query::Tkaq { tau }) => {
                if 0.5 * (lb + ub) >= tau {
                    1.0
                } else {
                    0.0
                }
            }
            (Outcome::Complete(run), Query::Ekaq { .. }) => estimate_ekaq(&run),
            (Outcome::Complete(run), Query::Within { .. }) => 0.5 * (run.lb + run.ub),
            (Outcome::Truncated { lb, ub, .. }, Query::Ekaq { .. } | Query::Within { .. }) => {
                0.5 * (lb + ub)
            }
        }
    }

    /// Run counters summed across all workers (behind the `stats`
    /// feature).
    #[cfg(feature = "stats")]
    pub fn stats(&self) -> RunStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds::BoundMethod;
    use crate::kernel::Kernel;
    use karl_geom::{Ball, Rect};
    use karl_testkit::rng::{Rng, SeedableRng, StdRng};

    fn clustered_points(n: usize, d: usize, seed: u64) -> PointSet {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut data = Vec::with_capacity(n * d);
        for i in 0..n {
            let center = if i % 2 == 0 { -2.0 } else { 2.0 };
            for _ in 0..d {
                data.push(center + rng.random_range(-0.5..0.5));
            }
        }
        PointSet::new(d, data)
    }

    fn mixed_weights(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let w: f64 = rng.random_range(0.2..2.0);
                if rng.random_bool(0.4) {
                    -w
                } else {
                    w
                }
            })
            .collect()
    }

    #[test]
    fn batch_matches_sequential_for_every_thread_count() {
        let ps = clustered_points(400, 3, 1);
        let w = mixed_weights(400, 2);
        let eval = Evaluator::<Rect>::build(&ps, &w, Kernel::gaussian(0.6), BoundMethod::Karl, 8);
        let queries = clustered_points(67, 3, 3);
        for query in [
            Query::Tkaq { tau: 0.2 },
            Query::Ekaq { eps: 0.15 },
            Query::Within { tol: 0.05 },
        ] {
            let sequential: Vec<RunOutcome> = queries
                .iter()
                .map(|q| eval.run_query(q, query, None))
                .collect();
            for threads in [1, 2, 4, 8] {
                let batch = QueryBatch::new(&queries, query).threads(threads).run(&eval);
                assert_eq!(batch.outcomes(), &sequential[..], "{query:?} x{threads}");
                assert!(batch.threads() <= threads);
            }
        }
    }

    #[test]
    fn envelope_cache_toggle_is_bit_identical_at_any_thread_count() {
        let ps = clustered_points(300, 3, 20);
        let w = mixed_weights(300, 21);
        let eval = Evaluator::<Rect>::build(&ps, &w, Kernel::gaussian(0.6), BoundMethod::Karl, 8);
        // Duplicate-heavy query stream: exercises actual cache hits, not
        // just the insert path.
        let base = clustered_points(12, 3, 22);
        let queries = PointSet::new(
            3,
            (0..36).flat_map(|i| base.point(i % 12).to_vec()).collect(),
        );
        for query in [
            Query::Tkaq { tau: 0.2 },
            Query::Ekaq { eps: 0.1 },
            Query::Within { tol: 0.05 },
        ] {
            let on = QueryBatch::new(&queries, query)
                .threads(1)
                .envelope_cache(true)
                .run(&eval);
            for threads in [1, 2, 4, 8] {
                let off = QueryBatch::new(&queries, query).threads(threads).run(&eval);
                let on_t = QueryBatch::new(&queries, query)
                    .threads(threads)
                    .envelope_cache(true)
                    .run(&eval);
                assert_eq!(on.outcomes(), off.outcomes(), "{query:?} x{threads}");
                assert_eq!(on.outcomes(), on_t.outcomes(), "{query:?} x{threads}");
            }
        }
    }

    #[cfg(feature = "stats")]
    #[test]
    fn batch_stats_aggregate_across_workers() {
        let ps = clustered_points(300, 3, 25);
        let w = mixed_weights(300, 26);
        let eval = Evaluator::<Rect>::build(&ps, &w, Kernel::gaussian(0.6), BoundMethod::Karl, 8);
        let base = clustered_points(8, 3, 27);
        let queries = PointSet::new(
            3,
            (0..32).flat_map(|i| base.point(i % 8).to_vec()).collect(),
        );
        let query = Query::Ekaq { eps: 0.1 };
        let seq = QueryBatch::new(&queries, query)
            .threads(1)
            .envelope_cache(true)
            .run(&eval);
        let par = QueryBatch::new(&queries, query)
            .threads(4)
            .envelope_cache(true)
            .run(&eval);
        let off = QueryBatch::new(&queries, query).threads(1).run(&eval);
        // Refinement work is a pure function of the queries.
        assert_eq!(
            seq.stats().nodes_refined,
            seq.total_iterations() as u64,
            "nodes_refined counts heap pops"
        );
        assert_eq!(seq.stats().nodes_refined, par.stats().nodes_refined);
        assert_eq!(seq.stats().nodes_refined, off.stats().nodes_refined);
        // The duplicate stream hits the cache sequentially; with the cache
        // off every lookup vanishes and every envelope is rebuilt.
        assert!(seq.stats().cache_hits > 0);
        assert_eq!(off.stats().cache_hits, 0);
        assert_eq!(off.stats().cache_misses, 0);
        assert!(seq.stats().envelopes_built < off.stats().envelopes_built);
        assert!(seq.stats().curve_value_calls < off.stats().curve_value_calls);
    }

    #[test]
    fn pointer_engine_batch_matches_frozen_default() {
        let ps = clustered_points(240, 3, 30);
        let w = mixed_weights(240, 31);
        let eval = Evaluator::<Rect>::build(&ps, &w, Kernel::gaussian(0.5), BoundMethod::Karl, 8);
        let queries = clustered_points(40, 3, 32);
        let query = Query::Ekaq { eps: 0.1 };
        let frozen = QueryBatch::new(&queries, query).threads(2).run(&eval);
        let pointer = QueryBatch::new(&queries, query)
            .engine(Engine::Pointer)
            .threads(2)
            .run(&eval);
        assert_eq!(frozen.outcomes(), pointer.outcomes());
    }

    #[test]
    fn batch_works_over_ball_trees_and_any_evaluator() {
        let ps = clustered_points(200, 2, 4);
        let w = vec![1.0; 200];
        let kernel = Kernel::gaussian(0.5);
        let ball = Evaluator::<Ball>::build(&ps, &w, kernel, BoundMethod::Karl, 16);
        let queries = clustered_points(20, 2, 5);
        let batch = QueryBatch::new(&queries, Query::Ekaq { eps: 0.1 });
        let direct = batch.threads(3).run(&ball);
        let any = AnyEvaluator::Ball(ball);
        let dispatched = QueryBatch::new(&queries, Query::Ekaq { eps: 0.1 })
            .threads(3)
            .run_any(&any);
        assert_eq!(direct.outcomes(), dispatched.outcomes());
        for (est, q) in dispatched.estimates().iter().zip(queries.iter()) {
            assert_eq!(*est, any.ekaq(q, 0.1));
        }
    }

    #[test]
    fn decisions_match_scalar_tkaq() {
        let ps = clustered_points(150, 2, 6);
        let w = mixed_weights(150, 7);
        let eval = Evaluator::<Rect>::build(&ps, &w, Kernel::gaussian(0.8), BoundMethod::Karl, 8);
        let queries = clustered_points(30, 2, 8);
        let out = QueryBatch::new(&queries, Query::Tkaq { tau: 0.1 })
            .threads(4)
            .run(&eval);
        let expect: Vec<bool> = queries.iter().map(|q| eval.tkaq(q, 0.1)).collect();
        assert_eq!(out.decisions(), expect);
        assert_eq!(out.len(), 30);
        assert!(out.total_iterations() > 0);
    }

    #[test]
    fn intervals_respect_the_tolerance() {
        let ps = clustered_points(200, 2, 9);
        let w = mixed_weights(200, 10);
        let eval = Evaluator::<Rect>::build(&ps, &w, Kernel::gaussian(0.9), BoundMethod::Karl, 8);
        let queries = clustered_points(15, 2, 11);
        let out = QueryBatch::new(&queries, Query::Within { tol: 0.02 })
            .threads(2)
            .run(&eval);
        for (mid, half) in out.intervals() {
            assert!(half <= 0.01 + 1e-12);
            assert!(mid.is_finite());
        }
    }

    #[test]
    fn level_cap_is_forwarded() {
        let ps = clustered_points(128, 2, 12);
        let w = vec![1.0; 128];
        let eval = Evaluator::<Rect>::build(&ps, &w, Kernel::gaussian(0.7), BoundMethod::Karl, 1);
        let queries = clustered_points(10, 2, 13);
        let out = QueryBatch::new(&queries, Query::Ekaq { eps: 0.1 })
            .level_cap(2)
            .threads(2)
            .run(&eval);
        let expect: Vec<RunOutcome> = queries
            .iter()
            .map(|q| eval.run_query(q, Query::Ekaq { eps: 0.1 }, Some(2)))
            .collect();
        assert_eq!(out.outcomes(), &expect[..]);
    }

    #[test]
    fn empty_batch_is_fine() {
        let ps = clustered_points(10, 2, 14);
        let eval =
            Evaluator::<Rect>::build(&ps, &[1.0; 10], Kernel::gaussian(1.0), BoundMethod::Karl, 4);
        let queries = PointSet::empty(2);
        let out = QueryBatch::new(&queries, Query::Tkaq { tau: 0.5 })
            .threads(4)
            .run(&eval);
        assert!(out.is_empty());
        assert_eq!(out.decisions(), Vec::<bool>::new());
    }

    #[test]
    #[should_panic]
    fn dimension_mismatch_panics_at_batch_entry() {
        let ps = clustered_points(10, 3, 15);
        let eval =
            Evaluator::<Rect>::build(&ps, &[1.0; 10], Kernel::gaussian(1.0), BoundMethod::Karl, 4);
        let queries = clustered_points(5, 2, 16);
        QueryBatch::new(&queries, Query::Tkaq { tau: 0.5 }).run(&eval);
    }

    #[test]
    #[should_panic]
    fn non_positive_eps_panics_at_construction() {
        let queries = clustered_points(5, 2, 17);
        QueryBatch::new(&queries, Query::Ekaq { eps: 0.0 });
    }

    #[test]
    fn dual_tkaq_decisions_match_and_wholesale_fires() {
        let ps = clustered_points(500, 3, 40);
        let w = mixed_weights(500, 41);
        let eval = Evaluator::<Rect>::build(&ps, &w, Kernel::gaussian(0.6), BoundMethod::Karl, 8);
        // Clustered queries sit far from half the data: joint intervals
        // decide whole query leaves wholesale at a mid-range τ.
        let queries = clustered_points(80, 3, 42);
        let query = Query::Tkaq { tau: 0.05 };
        let single = QueryBatch::new(&queries, query).threads(1).run(&eval);
        for threads in [1, 2, 4, 8] {
            let dual = QueryBatch::new(&queries, query)
                .threads(threads)
                .run_dual(&eval);
            assert_eq!(dual.decisions(), single.decisions(), "x{threads}");
            assert_eq!(dual.estimates(), single.estimates(), "x{threads}");
            assert!(dual.dual_pairs() > 0);
            assert!(dual.dual_wholesale() > 0, "no wholesale decision fired");
        }
        assert_eq!(single.dual_pairs(), 0);
        assert_eq!(single.dual_wholesale(), 0);
    }

    #[test]
    fn dual_ekaq_and_within_are_bitwise_identical() {
        let ps = clustered_points(300, 3, 43);
        let w = mixed_weights(300, 44);
        let eval = Evaluator::<Ball>::build(&ps, &w, Kernel::gaussian(0.7), BoundMethod::Karl, 8);
        let queries = clustered_points(50, 3, 45);
        for query in [Query::Ekaq { eps: 0.1 }, Query::Within { tol: 0.05 }] {
            let single = QueryBatch::new(&queries, query).threads(2).run(&eval);
            let dual = QueryBatch::new(&queries, query).threads(2).run_dual(&eval);
            assert_eq!(dual.outcomes(), single.outcomes(), "{query:?}");
            assert_eq!(dual.dual_wholesale(), 0, "non-TKAQ must not go wholesale");
        }
    }

    #[test]
    fn dual_wholesale_outcomes_cost_zero_iterations() {
        let ps = clustered_points(400, 2, 46);
        let w = vec![1.0; 400];
        let eval = Evaluator::<Rect>::build(&ps, &w, Kernel::gaussian(0.5), BoundMethod::Karl, 8);
        let queries = clustered_points(60, 2, 47);
        let dual = QueryBatch::new(&queries, Query::Tkaq { tau: 0.01 })
            .threads(1)
            .run_dual(&eval);
        assert!(dual.dual_wholesale() > 0);
        let zero_iter = dual
            .outcomes()
            .iter()
            .filter(|o| o.iterations == 0)
            .count() as u64;
        assert!(zero_iter >= dual.dual_wholesale());
    }

    #[test]
    fn dual_skips_non_finite_queries_gracefully() {
        let ps = clustered_points(100, 2, 48);
        let eval = Evaluator::<Rect>::build(
            &ps,
            &[1.0; 100],
            Kernel::gaussian(0.5),
            BoundMethod::Karl,
            8,
        );
        let base = clustered_points(10, 2, 49);
        let mut data: Vec<f64> = (0..10).flat_map(|i| base.point(i).to_vec()).collect();
        data.extend_from_slice(&[f64::NAN, 1.0]);
        let queries = PointSet::new(2, data);
        let query = Query::Tkaq { tau: 0.1 };
        // A NaN query dies in its own slot either way; the healthy slots
        // must carry identical answers and the descent must never build
        // a bounding volume over the poisoned coordinate.
        let single = QueryBatch::new(&queries, query)
            .threads(1)
            .try_run(&eval)
            .unwrap();
        let dual = QueryBatch::new(&queries, query)
            .threads(1)
            .try_run_dual(&eval)
            .unwrap();
        assert_eq!(dual.dual_pairs(), 0, "descent must not touch NaN MBRs");
        assert_eq!(dual.failed_indices(), single.failed_indices());
        assert_eq!(dual.failed_indices(), vec![10]);
        for (d, s) in dual.results().iter().zip(single.results()).take(10) {
            assert_eq!(
                dual.answer(d.as_ref().unwrap()),
                single.answer(s.as_ref().unwrap())
            );
        }
    }

    #[test]
    fn try_run_dual_matches_try_run_answers() {
        let ps = clustered_points(300, 3, 50);
        let w = mixed_weights(300, 51);
        let eval = Evaluator::<Rect>::build(&ps, &w, Kernel::gaussian(0.6), BoundMethod::Karl, 8);
        let queries = clustered_points(40, 3, 52);
        let query = Query::Tkaq { tau: 0.05 };
        let plain = QueryBatch::new(&queries, query)
            .threads(2)
            .try_run(&eval)
            .unwrap();
        let dual = QueryBatch::new(&queries, query)
            .threads(2)
            .try_run_dual(&eval)
            .unwrap();
        assert_eq!(dual.len(), plain.len());
        for (d, p) in dual.results().iter().zip(plain.results()) {
            let (d, p) = (d.as_ref().unwrap(), p.as_ref().unwrap());
            assert_eq!(dual.answer(d), plain.answer(p));
        }
    }

    #[test]
    fn explicit_thread_request_wins() {
        assert_eq!(resolve_threads(Some(3)), 3);
        assert_eq!(resolve_threads(Some(0)), 1);
        assert!(resolve_threads(None) >= 1);
    }
}
