//! Test-only fault injection for the batch engine (feature `fault-inject`).
//!
//! The containment tests need a way to make a *specific query index* fail —
//! by panicking inside the refinement loop or by corrupting the query point
//! to NaN — while every other query in the batch stays healthy. This module
//! keeps a process-global plan of `(query index, fault)` pairs that
//! [`crate::batch::QueryBatch::try_run`] consults right before evaluating
//! each query.
//!
//! The plan is guarded by an [`InjectionGuard`] holding a global lock, so
//! concurrently running `#[test]`s cannot interleave their plans; dropping
//! the guard clears the plan even when the test itself panics.

use std::sync::{Mutex, MutexGuard, PoisonError};

/// What to do to a planned query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Panic inside the per-query evaluation closure.
    Panic,
    /// Replace the query point with an all-NaN vector so the validated
    /// entry path rejects it with `KarlError::NonFiniteQuery`.
    Nan,
}

static PLAN: Mutex<Vec<(usize, Fault)>> = Mutex::new(Vec::new());
static GATE: Mutex<()> = Mutex::new(());

fn plan() -> MutexGuard<'static, Vec<(usize, Fault)>> {
    // Injected panics unwind through the batch worker while it may hold
    // this lock-free path; the plan lock itself is only poisoned if a test
    // dies between install and clear — recover the data either way.
    PLAN.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Serializes fault-injection tests and clears the plan on drop.
pub struct InjectionGuard {
    _gate: MutexGuard<'static, ()>,
}

impl Drop for InjectionGuard {
    fn drop(&mut self) {
        plan().clear();
    }
}

/// Installs a fault plan, returning a guard that holds the global
/// injection lock until dropped. Tests must keep the guard alive for the
/// duration of the batch run they want sabotaged.
pub fn inject(faults: &[(usize, Fault)]) -> InjectionGuard {
    let gate = GATE.lock().unwrap_or_else(PoisonError::into_inner);
    let mut p = plan();
    p.clear();
    p.extend_from_slice(faults);
    InjectionGuard { _gate: gate }
}

/// Removes every planned fault (also done automatically on guard drop).
pub fn clear_plan() {
    plan().clear();
}

/// The fault planned for `index`, if any. Consulted by the batch engine
/// once per query.
pub(crate) fn planned(index: usize) -> Option<Fault> {
    plan().iter().find(|(i, _)| *i == index).map(|(_, f)| *f)
}
