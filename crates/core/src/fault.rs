//! Test-only fault injection for the batch engine (feature `fault-inject`).
//!
//! The containment tests need a way to make a *specific query index* fail —
//! by panicking inside the refinement loop or by corrupting the query point
//! to NaN — while every other query in the batch stays healthy. This module
//! keeps a process-global plan of `(query index, fault)` pairs that
//! [`crate::batch::QueryBatch::try_run`] consults right before evaluating
//! each query.
//!
//! The plan is guarded by an [`InjectionGuard`] holding a global lock, so
//! concurrently running `#[test]`s cannot interleave their plans; dropping
//! the guard clears the plan even when the test itself panics.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

/// What to do to a planned query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Panic inside the per-query evaluation closure.
    Panic,
    /// Replace the query point with an all-NaN vector so the validated
    /// entry path rejects it with `KarlError::NonFiniteQuery`.
    Nan,
}

static PLAN: Mutex<Vec<(usize, Fault)>> = Mutex::new(Vec::new());
static GATE: Mutex<()> = Mutex::new(());
static BASE: AtomicUsize = AtomicUsize::new(0);

fn plan() -> MutexGuard<'static, Vec<(usize, Fault)>> {
    // Injected panics unwind through the batch worker while it may hold
    // this lock-free path; the plan lock itself is only poisoned if a test
    // dies between install and clear — recover the data either way.
    PLAN.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Serializes fault-injection tests and clears the plan on drop.
pub struct InjectionGuard {
    _gate: MutexGuard<'static, ()>,
}

impl Drop for InjectionGuard {
    fn drop(&mut self) {
        plan().clear();
        BASE.store(0, Ordering::SeqCst);
    }
}

/// Installs a fault plan, returning a guard that holds the global
/// injection lock until dropped. Tests must keep the guard alive for the
/// duration of the batch run they want sabotaged.
pub fn inject(faults: &[(usize, Fault)]) -> InjectionGuard {
    let gate = GATE.lock().unwrap_or_else(PoisonError::into_inner);
    let mut p = plan();
    p.clear();
    p.extend_from_slice(faults);
    BASE.store(0, Ordering::SeqCst);
    InjectionGuard { _gate: gate }
}

/// Removes every planned fault (also done automatically on guard drop).
pub fn clear_plan() {
    plan().clear();
    BASE.store(0, Ordering::SeqCst);
}

/// Offsets subsequent plan lookups: the batch engine consults the plan at
/// `base + slot` for slot `i` of its query set. A standalone
/// [`crate::batch::QueryBatch`] run leaves the base at 0, so plan indices
/// are batch slots; the serve loop sets the base to its dispatch counter
/// before each micro-batch group, so plan indices address *dispatch
/// ordinals* — "poison the k-th request handed to the engine" — across
/// any number of micro-batches. Reset to 0 by [`inject`], [`clear_plan`]
/// and guard drop.
pub fn set_base(base: usize) {
    BASE.store(base, Ordering::SeqCst);
}

/// The current lookup offset (see [`set_base`]).
pub fn base() -> usize {
    BASE.load(Ordering::SeqCst)
}

/// The fault planned for lookup index `base() + slot`, if any. Consulted
/// by the batch engine once per query slot.
pub(crate) fn planned(slot: usize) -> Option<Fault> {
    let index = BASE.load(Ordering::SeqCst) + slot;
    plan().iter().find(|(i, _)| *i == index).map(|(_, f)| *f)
}
