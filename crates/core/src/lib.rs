//! # karl-core — fast kernel aggregation queries
//!
//! The primary contribution of *"KARL: Fast Kernel Aggregation Queries"*
//! (Chan, Yiu, U — ICDE 2019): linear bound functions for weighted kernel
//! aggregates, a branch-and-bound evaluator for threshold (TKAQ) and
//! approximate (eKAQ) queries over kd-/ball-tree indexes, and automatic
//! index tuning.
//!
//! ## Layout
//!
//! * [`kernel`] — the Gaussian / polynomial / sigmoid kernels and their
//!   reduction to scalar curves.
//! * [`curve`] — the scalar curves `exp(−x)`, `x^deg`, `tanh(x)` with their
//!   curvature structure.
//! * [`envelope`] — chord / optimal-tangent / rotation linear envelopes
//!   (Sections III-A, III-B, IV-B).
//! * [`bounds`] — per-node `[LB, UB]` pairs: SOTA's constant bounds and
//!   KARL's linear bounds.
//! * [`eval`] — the priority-queue refinement evaluator (Section II-B)
//!   supporting all three weighting types via the P⁺/P⁻ split.
//! * [`scan`] — the SCAN and LIBSVM-style exact baselines.
//! * [`batch`] — the scoped-thread batch executor with reusable per-worker
//!   scratch (deterministic at any thread count).
//! * [`tuning`] — offline (`KARL_auto`) and in-situ (`KARL_online`) index
//!   tuning.
//! * [`serve`] — the online query daemon: NDJSON request loop with
//!   admission control, load shedding and graceful degradation.
//!
//! ## Example
//!
//! ```
//! use karl_core::{BoundMethod, Evaluator, Kernel};
//! use karl_geom::{PointSet, Rect};
//!
//! let points = PointSet::from_rows(&[
//!     vec![0.0, 0.0],
//!     vec![0.1, 0.1],
//!     vec![5.0, 5.0],
//! ]);
//! let weights = vec![1.0; 3];
//! let eval = Evaluator::<Rect>::build(
//!     &points, &weights, Kernel::gaussian(0.5), BoundMethod::Karl, 2);
//!
//! // Threshold query: is the aggregate at the origin at least 1.0?
//! assert!(eval.tkaq(&[0.0, 0.0], 1.0));
//! // Approximate query with 10% relative error.
//! let f = eval.ekaq(&[0.0, 0.0], 0.1);
//! let exact = eval.exact(&[0.0, 0.0]);
//! assert!((f - exact).abs() <= 0.1 * exact);
//! ```

pub mod batch;
pub mod bounds;
pub mod coreset;
pub mod curve;
pub mod envelope;
pub mod error;
pub mod eval;
#[cfg(feature = "fault-inject")]
pub mod fault;
pub mod index;
pub mod kernel;
pub mod scan;
pub mod serve;
pub mod stream;
pub mod tuning;

pub use batch::{resolve_threads, BatchOutcome, BatchReport, QueryBatch};
pub use error::KarlError;
pub use bounds::{
    assemble_interval, assemble_pair, node_bounds, node_bounds_frozen, node_interval_frozen,
    node_intervals_frozen, pair_bounds_frozen, pair_interval_frozen, pair_intervals_frozen,
    BoundMethod, BoundPair, DualQueryContext, NodeInterval, PairInterval, QueryContext,
    QueryRegion,
};
pub use coreset::{lipschitz, Coreset};
pub use curve::{Curvature, Curve};
pub use envelope::{envelope, envelope_parts, Envelope, EnvelopeCache, EnvelopeParts, Line};
#[cfg(feature = "stats")]
pub use eval::RunStats;
pub use eval::{
    BallEvaluator, Budget, Engine, Estimate, Evaluator, KdEvaluator, Outcome, Query, RunOutcome,
    Scratch, TierPath, TkaqDecision, TraceStep, TruncateReason,
};
#[cfg(feature = "fault-inject")]
pub use fault::{base, clear_plan, inject, set_base, Fault, InjectionGuard};
pub use index::{IndexMeta, META_LEN};
pub use kernel::{aggregate_exact, Kernel};
pub use scan::{LibSvmScan, Scan};
#[cfg(feature = "stats")]
pub use serve::stats_json_with_run;
pub use serve::{
    parse_json, push_num, push_str_json, stats_json, Json, LatencyHistogram, ServeConfig,
    ServeStats, Server, StatsSnapshot,
};
pub use stream::StreamingEvaluator;
pub use tuning::{
    plan_for_storage, AnyEvaluator, CandidateResult, IndexKind, OfflineTuner,
    OfflineTuningOutcome, OnlineRunReport, OnlineTuner, StorageCalibration, StorageCandidate,
    StoragePlan, StorageProfile,
};
