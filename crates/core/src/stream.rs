//! Streaming / online-learning support (the paper's in-situ motivation,
//! Section I issue 4: "online kernel learning, in which the model … would
//! be updated frequently").
//!
//! [`StreamingEvaluator`] keeps an indexed bulk plus a small unindexed
//! overlay of recent insertions. Queries combine the branch-and-bound
//! bounds of the bulk with an exact scan of the overlay (which is exact,
//! so it never loosens the bounds); when the overlay outgrows a fraction
//! of the bulk the whole set is re-indexed. This gives amortized-cheap
//! insertion without giving up any query guarantee.

use karl_geom::PointSet;
use karl_tree::NodeShape;

use crate::bounds::BoundMethod;
use crate::error::KarlError;
use crate::eval::{Evaluator, Query};
use crate::kernel::Kernel;
use crate::scan::Scan;

/// An insert-friendly evaluator: indexed bulk + exact overlay.
#[derive(Debug, Clone)]
pub struct StreamingEvaluator<S: NodeShape> {
    points: PointSet,
    weights: Vec<f64>,
    indexed: usize,
    base: Option<Evaluator<S>>,
    kernel: Kernel,
    method: BoundMethod,
    leaf_capacity: usize,
    /// Re-index when the overlay exceeds this fraction of the bulk.
    pub rebuild_fraction: f64,
    /// Overlay size that always triggers a rebuild regardless of fraction.
    pub rebuild_min: usize,
}

impl<S: NodeShape> StreamingEvaluator<S> {
    /// An empty streaming evaluator for `dims`-dimensional points.
    ///
    /// # Panics
    /// Panics if `dims == 0` or `leaf_capacity == 0`.
    pub fn new(dims: usize, kernel: Kernel, method: BoundMethod, leaf_capacity: usize) -> Self {
        Self::try_new(dims, kernel, method, leaf_capacity).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Validating constructor: rejects `dims == 0` (`EmptyPoints`) and
    /// `leaf_capacity == 0` (`InvalidLeafCapacity`) with a typed error.
    pub fn try_new(
        dims: usize,
        kernel: Kernel,
        method: BoundMethod,
        leaf_capacity: usize,
    ) -> Result<Self, KarlError> {
        if dims == 0 {
            return Err(KarlError::EmptyPoints);
        }
        if leaf_capacity == 0 {
            return Err(KarlError::InvalidLeafCapacity);
        }
        Ok(Self {
            points: PointSet::empty(dims),
            weights: Vec::new(),
            indexed: 0,
            base: None,
            kernel,
            method,
            leaf_capacity,
            rebuild_fraction: 0.25,
            rebuild_min: 256,
        })
    }

    /// Total number of (weighted) points, indexed plus overlay.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the evaluator holds no points yet.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Number of points currently in the unindexed overlay.
    pub fn overlay_len(&self) -> usize {
        self.points.len() - self.indexed
    }

    /// Inserts one weighted point, re-indexing when the overlay outgrows
    /// its budget.
    ///
    /// # Panics
    /// Panics on dimensionality mismatch or non-finite weight.
    pub fn insert(&mut self, p: &[f64], w: f64) {
        self.try_insert(p, w).unwrap_or_else(|e| panic!("{e}"));
    }

    /// Validating insert: rejects dimension mismatches, non-finite
    /// coordinates and non-finite weights with a typed error; the
    /// evaluator state is untouched on rejection.
    pub fn try_insert(&mut self, p: &[f64], w: f64) -> Result<(), KarlError> {
        let index = self.points.len();
        if p.len() != self.points.dims() {
            return Err(KarlError::DimMismatch {
                expected: self.points.dims(),
                got: p.len(),
            });
        }
        if let Some((dim, &value)) = p.iter().enumerate().find(|(_, v)| !v.is_finite()) {
            return Err(KarlError::NonFinitePoint { index, dim, value });
        }
        if !w.is_finite() {
            return Err(KarlError::NonFiniteWeight { index, value: w });
        }
        self.points.push(p);
        self.weights.push(w);
        let overlay = self.overlay_len();
        if overlay >= self.rebuild_min
            || (self.indexed > 0 && overlay as f64 > self.rebuild_fraction * self.indexed as f64)
        {
            self.rebuild();
        }
        Ok(())
    }

    /// Inserts a batch of weighted points.
    ///
    /// # Panics
    /// Panics if lengths mismatch.
    pub fn extend(&mut self, points: &PointSet, weights: &[f64]) {
        assert_eq!(weights.len(), points.len(), "weights/points mismatch");
        for (p, &w) in points.iter().zip(weights) {
            self.insert(p, w);
        }
    }

    /// Forces re-indexing of everything inserted so far.
    pub fn rebuild(&mut self) {
        if self.points.is_empty() || self.weights.iter().all(|&w| w == 0.0) {
            self.indexed = self.points.len();
            self.base = None;
            return;
        }
        self.base = Some(Evaluator::build(
            &self.points,
            &self.weights,
            self.kernel,
            self.method,
            self.leaf_capacity,
        ));
        self.indexed = self.points.len();
    }

    fn overlay_aggregate(&self, q: &[f64]) -> f64 {
        let mut acc = 0.0;
        for i in self.indexed..self.points.len() {
            acc += self.weights[i] * self.kernel.eval(q, self.points.point(i));
        }
        acc
    }

    /// Exact `F_P(q)` over everything inserted so far.
    pub fn exact(&self, q: &[f64]) -> f64 {
        let base = self.base.as_ref().map_or(0.0, |b| b.exact(q));
        base + self.overlay_aggregate(q)
    }

    /// Threshold query over the full (bulk + overlay) set. Exactly correct:
    /// the overlay contribution is exact, so the bulk query runs against
    /// the shifted threshold `τ − F_overlay(q)`.
    pub fn tkaq(&self, q: &[f64], tau: f64) -> bool {
        let overlay = self.overlay_aggregate(q);
        match &self.base {
            Some(base) => base.tkaq(q, tau - overlay),
            None => overlay >= tau,
        }
    }

    /// Approximate query over the full set. For non-negative weights the
    /// estimate satisfies the usual `(1±ε)` contract (the overlay part is
    /// exact, the bulk part is ε-bounded).
    ///
    /// # Panics
    /// Panics unless `eps > 0`.
    pub fn ekaq(&self, q: &[f64], eps: f64) -> f64 {
        assert!(eps > 0.0, "eps must be positive");
        let overlay = self.overlay_aggregate(q);
        match &self.base {
            Some(base) => base.ekaq(q, eps) + overlay,
            None => overlay,
        }
    }

    /// Raw bounds over the full set (bulk bounds + exact overlay shift).
    pub fn run_query(&self, q: &[f64], query: Query) -> (f64, f64) {
        let overlay = self.overlay_aggregate(q);
        match &self.base {
            Some(base) => {
                let shifted = match query {
                    Query::Tkaq { tau } => Query::Tkaq { tau: tau - overlay },
                    other => other,
                };
                let out = base.run_query(q, shifted, None);
                (out.lb + overlay, out.ub + overlay)
            }
            None => (overlay, overlay),
        }
    }

    /// Builds a plain scan over the full current contents (testing aid).
    pub fn to_scan(&self) -> Scan {
        Scan::new(self.points.clone(), self.weights.clone(), self.kernel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::aggregate_exact;
    use karl_geom::Rect;
    use karl_testkit::rng::StdRng;
    use karl_testkit::rng::{Rng, SeedableRng};

    fn stream_points(n: usize, seed: u64) -> PointSet {
        let mut rng = StdRng::seed_from_u64(seed);
        PointSet::new(
            2,
            (0..n * 2)
                .map(|_| rng.random_range(-1.0..1.0))
                .collect::<Vec<_>>(),
        )
    }

    fn build_streaming(n: usize, seed: u64) -> (StreamingEvaluator<Rect>, PointSet, Vec<f64>) {
        let ps = stream_points(n, seed);
        let w: Vec<f64> = (0..n).map(|i| 0.5 + (i % 3) as f64 * 0.25).collect();
        let mut ev =
            StreamingEvaluator::<Rect>::new(2, Kernel::gaussian(1.5), BoundMethod::Karl, 16);
        ev.extend(&ps, &w);
        (ev, ps, w)
    }

    #[test]
    fn incremental_matches_batch_exact() {
        let (ev, ps, w) = build_streaming(700, 1);
        assert_eq!(ev.len(), 700);
        let kernel = Kernel::gaussian(1.5);
        for i in [0, 123, 456] {
            let q = ps.point(i);
            let truth = aggregate_exact(&kernel, &ps, &w, q);
            assert!((ev.exact(q) - truth).abs() < 1e-9 * (1.0 + truth.abs()));
        }
    }

    #[test]
    fn tkaq_correct_with_overlay_present() {
        let (mut ev, ps, mut w) = build_streaming(600, 2);
        // Leave a fresh overlay in place (below the rebuild threshold).
        let extra = stream_points(20, 3);
        for p in extra.iter() {
            ev.insert(p, 2.0);
            w.push(2.0);
        }
        assert!(ev.overlay_len() > 0, "test requires an active overlay");
        let mut all = ps.clone();
        for p in extra.iter() {
            all.push(p);
        }
        let kernel = Kernel::gaussian(1.5);
        for i in 0..10 {
            let q = all.point(i * 37 % all.len());
            let truth = aggregate_exact(&kernel, &all, &w, q);
            for mult in [0.7, 1.3] {
                assert_eq!(ev.tkaq(q, truth * mult), truth >= truth * mult);
            }
            let est = ev.ekaq(q, 0.1);
            assert!(est >= 0.9 * truth - 1e-9 && est <= 1.1 * truth + 1e-9);
        }
    }

    #[test]
    fn rebuild_threshold_bounds_overlay() {
        let mut ev =
            StreamingEvaluator::<Rect>::new(2, Kernel::gaussian(1.0), BoundMethod::Karl, 8);
        ev.rebuild_min = 64;
        let ps = stream_points(1_000, 4);
        for p in ps.iter() {
            ev.insert(p, 1.0);
            assert!(ev.overlay_len() <= 64.max(ev.len() / 4 + 1));
        }
    }

    #[test]
    fn empty_streaming_evaluator_is_well_defined() {
        let ev = StreamingEvaluator::<Rect>::new(3, Kernel::gaussian(1.0), BoundMethod::Karl, 8);
        assert!(ev.is_empty());
        assert_eq!(ev.exact(&[0.0, 0.0, 0.0]), 0.0);
        assert!(!ev.tkaq(&[0.0, 0.0, 0.0], 0.5));
        assert_eq!(ev.ekaq(&[0.0, 0.0, 0.0], 0.1), 0.0);
    }

    #[test]
    fn mixed_sign_stream_is_exact_on_tkaq() {
        let ps = stream_points(400, 5);
        let w: Vec<f64> = (0..400)
            .map(|i| if i % 3 == 0 { -1.0 } else { 0.8 })
            .collect();
        let mut ev =
            StreamingEvaluator::<Rect>::new(2, Kernel::gaussian(2.0), BoundMethod::Karl, 8);
        ev.extend(&ps, &w);
        let kernel = Kernel::gaussian(2.0);
        for i in 0..10 {
            let q = ps.point(i * 31);
            let truth = aggregate_exact(&kernel, &ps, &w, q);
            assert!(!(ev.tkaq(q, truth + 0.05)));
            assert!(ev.tkaq(q, truth - 0.05));
        }
    }
}
