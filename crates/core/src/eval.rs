//! The branch-and-bound kernel aggregation evaluator.
//!
//! This is the query-processing framework of Section II-B (Table V): global
//! lower/upper bounds on `F_P(q)` are assembled from per-node bounds, the
//! node with the largest bound gap is refined first (priority queue), and
//! the loop stops as soon as the bounds decide the query:
//!
//! * **TKAQ** `F_P(q) ≥ τ?` — stop when `lb ≥ τ` (yes) or `ub < τ` (no);
//! * **eKAQ** — stop when `ub ≤ (1+ε)·lb`, return `lb` (which then has
//!   relative error ≤ ε on both sides);
//! * **Within** (extension) — stop when `ub − lb ≤ tol`, return the
//!   midpoint; valid for signed aggregates.
//!
//! Mixed-sign weights (Type III, 2-class SVM) are handled by the P⁺/P⁻
//! split of Section IV-A2: two trees are built over the positive- and
//! negative-weight points (the latter with `|wᵢ|`), and a negated entry's
//! contribution to the global bounds is `[−ub, −lb]`.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::time::{Duration, Instant};

use karl_geom::{norm2, PointSet};
use karl_tree::{FrozenTree, LeafData, NodeId, NodeShape, SideImage, Tree};

use crate::bounds::{
    assemble_interval, node_bounds, node_intervals_frozen, BoundMethod, BoundPair, NodeInterval,
    QueryContext,
};
use crate::coreset::Coreset;
use crate::envelope::EnvelopeCache;
use crate::error::{self, KarlError};
use crate::kernel::Kernel;

/// Which evaluation index [`Evaluator`] routes a query through.
///
/// Both engines walk the same refinement loop with the same bound values
/// and produce bitwise-identical outcomes and traces (enforced by
/// `tests/frozen_equivalence.rs`); they differ only in memory layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// The frozen SoA index with fused per-node bound kernels — the
    /// default evaluation path.
    #[default]
    Frozen,
    /// The pointer-style node arena the trees are built as. Retained for
    /// construction and introspection, and as the differential-testing
    /// oracle for the frozen path.
    Pointer,
}

/// One recorded refinement step, for the convergence traces of Figure 6.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceStep {
    /// Refinement iteration (0 = bounds of the root(s) only).
    pub iteration: usize,
    /// Global lower bound after the step.
    pub lb: f64,
    /// Global upper bound after the step.
    pub ub: f64,
}

/// A kernel aggregation query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Query {
    /// Threshold query: is `F_P(q) ≥ τ`?
    Tkaq {
        /// The threshold `τ`.
        tau: f64,
    },
    /// Approximate query: return `F̂` with relative error ≤ ε.
    Ekaq {
        /// The relative error budget `ε > 0`.
        eps: f64,
    },
    /// Absolute-gap query: refine until `ub − lb ≤ tol` and return the
    /// interval midpoint. Unlike [`Query::Ekaq`] this termination works for
    /// aggregates of any sign, which is what the kernel-regression
    /// extension needs for its (possibly negative) numerator `Σ yᵢK(q,pᵢ)`.
    Within {
        /// The absolute gap budget `tol > 0`.
        tol: f64,
    },
}

/// Outcome of one evaluator run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunOutcome {
    /// Final global lower bound.
    pub lb: f64,
    /// Final global upper bound.
    pub ub: f64,
    /// Number of refinement iterations executed.
    pub iterations: usize,
}

/// How often the amortized wall-clock deadline is consulted: every this
/// many refinement iterations. `Instant::now()` is a vDSO call, but even
/// so one syscall-ish probe per node refinement would dominate cheap
/// queries; one probe per 64 refinements bounds overshoot to a few
/// microseconds of refinement work while keeping the deadline honest.
const DEADLINE_STRIDE: usize = 64;

/// A work/time budget for the refinement loop.
///
/// The branch-and-bound loop maintains a certified `[lb, ub]` at every
/// iteration, so it can stop *anywhere* and still return a sound interval.
/// A `Budget` caps the loop by refined-node count, by leaf points scanned,
/// and/or by an amortized wall-clock deadline (checked every
/// [`DEADLINE_STRIDE`] refinements; `Instant::now` is only ever called
/// when a deadline is set). Exhaustion yields
/// [`Outcome::Truncated`] carrying the interval at stop time; whenever the
/// budget is *not* hit, results are bitwise identical to the unbudgeted
/// entry points.
///
/// Truncation granularity: the budget is consulted at the top of the loop,
/// so the final refinement before the stop completes in full (one node, or
/// one leaf scan) — a run may slightly overshoot `max_leaf_points` by up
/// to one leaf.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Budget {
    max_nodes: Option<u64>,
    max_leaf_points: Option<u64>,
    deadline: Option<Duration>,
}

impl Budget {
    /// The no-op budget: never truncates.
    pub const UNLIMITED: Budget = Budget {
        max_nodes: None,
        max_leaf_points: None,
        deadline: None,
    };

    /// A budget with no caps (same as [`Budget::UNLIMITED`]).
    pub fn unlimited() -> Self {
        Self::UNLIMITED
    }

    /// Caps the number of refined nodes (heap pops).
    pub fn max_nodes(mut self, n: u64) -> Self {
        self.max_nodes = Some(n);
        self
    }

    /// Caps the number of leaf points scanned exactly.
    pub fn max_leaf_points(mut self, n: u64) -> Self {
        self.max_leaf_points = Some(n);
        self
    }

    /// Sets an amortized wall-clock deadline for the refinement loop.
    pub fn deadline(mut self, limit: Duration) -> Self {
        self.deadline = Some(limit);
        self
    }

    /// Sets the deadline to whatever is left of `total` after `spent` has
    /// already elapsed — e.g. time a request waited in a serving admission
    /// queue before dispatch. Saturates at zero: once `spent >= total` the
    /// deadline is `Duration::ZERO`, which trips on the very first budget
    /// probe (iteration 0 is always a probe), so the run performs **zero
    /// refinement work** and answers from the root interval. It never
    /// underflows and never spends a frontier pass it no longer has time
    /// for.
    pub fn deadline_after(self, total: Duration, spent: Duration) -> Self {
        self.deadline(total.saturating_sub(spent))
    }

    /// Whether no cap is set (the hot loop skips all checks).
    #[inline]
    pub fn is_unlimited(&self) -> bool {
        self.max_nodes.is_none() && self.max_leaf_points.is_none() && self.deadline.is_none()
    }

    /// Consults the caps; called at the top of the refinement loop, after
    /// the termination test and before the next heap pop.
    #[inline]
    fn check(
        &self,
        iterations: usize,
        leaf_points: u64,
        deadline_start: &mut Option<Instant>,
    ) -> Option<TruncateReason> {
        if let Some(max) = self.max_nodes {
            if iterations as u64 >= max {
                return Some(TruncateReason::NodeBudget);
            }
        }
        if let Some(max) = self.max_leaf_points {
            if leaf_points >= max {
                return Some(TruncateReason::LeafBudget);
            }
        }
        if let Some(limit) = self.deadline {
            if iterations.is_multiple_of(DEADLINE_STRIDE) {
                let start = *deadline_start.get_or_insert_with(Instant::now);
                if start.elapsed() >= limit {
                    return Some(TruncateReason::Deadline);
                }
            }
        }
        None
    }
}

/// Which budget cap stopped a truncated run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TruncateReason {
    /// `max_nodes` refined nodes were spent.
    NodeBudget,
    /// `max_leaf_points` leaf points were scanned.
    LeafBudget,
    /// The wall-clock deadline elapsed.
    Deadline,
}

impl std::fmt::Display for TruncateReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TruncateReason::NodeBudget => write!(f, "node budget exhausted"),
            TruncateReason::LeafBudget => write!(f, "leaf-point budget exhausted"),
            TruncateReason::Deadline => write!(f, "deadline elapsed"),
        }
    }
}

/// Result of a budgeted run: either the query ran to its normal
/// termination, or the budget stopped it with a still-certified interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Outcome {
    /// The query terminated normally; bitwise identical to the unbudgeted
    /// [`RunOutcome`].
    Complete(RunOutcome),
    /// The budget ran out first. `[lb, ub]` is the certified interval at
    /// stop time — it encloses the exact aggregate, it is just wider than
    /// the query asked for.
    Truncated {
        /// Certified global lower bound at stop time.
        lb: f64,
        /// Certified global upper bound at stop time.
        ub: f64,
        /// Which cap fired.
        reason: TruncateReason,
    },
}

impl Outcome {
    /// Certified lower bound (either variant).
    pub fn lb(&self) -> f64 {
        match *self {
            Outcome::Complete(out) => out.lb,
            Outcome::Truncated { lb, .. } => lb,
        }
    }

    /// Certified upper bound (either variant).
    pub fn ub(&self) -> f64 {
        match *self {
            Outcome::Complete(out) => out.ub,
            Outcome::Truncated { ub, .. } => ub,
        }
    }

    /// Whether the budget stopped the run.
    pub fn is_truncated(&self) -> bool {
        matches!(self, Outcome::Truncated { .. })
    }

    /// The truncation reason, if any.
    pub fn reason(&self) -> Option<TruncateReason> {
        match *self {
            Outcome::Complete(_) => None,
            Outcome::Truncated { reason, .. } => Some(reason),
        }
    }
}

/// Answer of a budgeted threshold query: decided, or the certified
/// interval straddling `τ` when the budget ran out first.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TkaqDecision {
    /// The bounds decided the threshold before the budget ran out.
    Decided(bool),
    /// Budget exhausted with `lb < τ ≤ ub`: honest "don't know yet",
    /// carrying the certified interval so the caller can resume or decide
    /// by policy.
    Undecided {
        /// Certified lower bound at stop time.
        lb: f64,
        /// Certified upper bound at stop time.
        ub: f64,
    },
}

/// Answer of a budgeted approximate query: the estimate plus the relative
/// error it actually *achieved* (not the one requested).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Estimate {
    /// The estimate: the converged eKAQ answer when complete, the interval
    /// midpoint when truncated.
    pub value: f64,
    /// Certified lower bound backing the estimate.
    pub lb: f64,
    /// Certified upper bound backing the estimate.
    pub ub: f64,
    /// Tight worst-case relative error of `value` over the certified
    /// interval (`max(|value−F|/F)` for `F ∈ [lb, ub]`); infinite when
    /// `lb ≤ 0`, where relative-error guarantees are meaningless — use
    /// `(ub − lb) / 2` as the absolute half-width instead.
    pub achieved_eps: f64,
    /// `Some(reason)` when the budget stopped refinement early.
    pub truncated: Option<TruncateReason>,
}

/// Worst-case relative error of `value` over `F ∈ [lb, ub]`: `|value−F|/F`
/// is monotone on either side of `value`, so the maximum sits at an
/// endpoint.
fn achieved_rel_err(value: f64, lb: f64, ub: f64) -> f64 {
    if lb > 0.0 {
        let at_lb = (value - lb).abs() / lb;
        let at_ub = (value - ub).abs() / ub;
        at_lb.max(at_ub)
    } else {
        f64::INFINITY
    }
}

#[derive(Debug)]
struct Entry {
    gap: f64,
    node: NodeId,
    negated: bool,
    lb: f64,
    ub: f64,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.gap == other.gap && self.node == other.node && self.negated == other.negated
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Ties on `gap` are broken on (node, negated) so the refinement
        // order — and therefore every trace and iteration count — is a
        // pure function of the inputs. Equal-gap entries pop smallest node
        // id first, positive tree before negated.
        self.gap
            .total_cmp(&other.gap)
            .then_with(|| other.node.cmp(&self.node))
            .then_with(|| other.negated.cmp(&self.negated))
    }
}

/// Run counters accumulated per [`Scratch`] (behind the `stats` feature):
/// how much refinement and envelope work the queries routed through that
/// scratch performed, and how much of it the envelope cache absorbed.
#[cfg(feature = "stats")]
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Heap pops (refinement iterations) across all runs.
    pub nodes_refined: u64,
    /// Envelopes actually constructed (cache hits skip construction).
    pub envelopes_built: u64,
    /// Envelope-cache lookups answered from the table.
    pub cache_hits: u64,
    /// Envelope-cache lookups that fell through to construction.
    pub cache_misses: u64,
    /// `Curve::value` evaluations — the transcendental workhorse count.
    pub curve_value_calls: u64,
    /// Query-node × data-node pair intervals scored by the dual-tree
    /// descent (zero outside `run_dual`).
    pub dual_pairs_scored: u64,
    /// Queries decided wholesale by a joint query-node interval, without
    /// any per-query refinement (zero outside `run_dual`).
    pub dual_wholesale_decided: u64,
    /// Queries the coreset front tier decided outright (zero when the
    /// cascade is off).
    pub coreset_decided: u64,
    /// Queries that ran the coreset tier but fell through to the full tree
    /// (zero when the cascade is off).
    pub coreset_fallthrough: u64,
    /// Active SIMD backend name (`"avx2"` / `"scalar"`) the run's kernels
    /// dispatched to; `""` until a run stamps it. Purely informational —
    /// backends are bitwise identical — but it records which ISA produced
    /// the numbers next to them.
    pub simd_backend: &'static str,
}

#[cfg(feature = "stats")]
impl RunStats {
    /// Field-wise accumulation (used to sum per-worker stats in batch mode).
    pub fn merge(&mut self, other: &RunStats) {
        self.nodes_refined += other.nodes_refined;
        self.envelopes_built += other.envelopes_built;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.curve_value_calls += other.curve_value_calls;
        self.dual_pairs_scored += other.dual_pairs_scored;
        self.dual_wholesale_decided += other.dual_wholesale_decided;
        self.coreset_decided += other.coreset_decided;
        self.coreset_fallthrough += other.coreset_fallthrough;
        if self.simd_backend.is_empty() {
            self.simd_backend = other.simd_backend;
        }
    }
}

/// Reusable per-query workspace for [`Evaluator::run_with_scratch`]: the
/// priority-queue storage (which doubles as the entry pool — `BinaryHeap`
/// keeps its backing buffer across [`clear`](BinaryHeap::clear)), the
/// trace buffer, the frontier/interval buffers of the two-pass bound
/// kernel, and the envelope memoization table. After the first few queries
/// have grown the buffers to the workload's high-water mark, evaluation
/// performs no heap allocation.
///
/// One `Scratch` per worker thread is the intended usage; see
/// [`crate::batch`].
#[derive(Debug)]
pub struct Scratch {
    heap: BinaryHeap<Entry>,
    trace: Vec<TraceStep>,
    /// Node ids gathered by pass 1 of the frontier bound kernel.
    frontier: Vec<NodeId>,
    /// Interval records pass 1 emits and pass 2 consumes.
    intervals: Vec<NodeInterval>,
    /// Exact envelope memoization, warm across every query routed through
    /// this scratch (entries are pure functions of their keys, so
    /// cross-query reuse is always bitwise-safe).
    env_cache: EnvelopeCache,
    env_cache_enabled: bool,
    #[cfg(feature = "stats")]
    stats: RunStats,
}

impl Default for Scratch {
    fn default() -> Self {
        Self {
            heap: BinaryHeap::new(),
            trace: Vec::new(),
            frontier: Vec::new(),
            intervals: Vec::new(),
            env_cache: EnvelopeCache::new(),
            // The cache changes no bits, only cost — but on streams of
            // distinct queries every probe misses and the tax exceeds a
            // shared-endpoint Gaussian build, so it is opt-in (it pays on
            // duplicate-heavy query streams; see DESIGN.md §10).
            env_cache_enabled: false,
            #[cfg(feature = "stats")]
            stats: RunStats::default(),
        }
    }
}

impl Scratch {
    /// Creates an empty workspace (buffers grow on first use) with the
    /// envelope cache disabled (enable it with
    /// [`set_envelope_cache`](Self::set_envelope_cache) for duplicate-heavy
    /// query streams).
    pub fn new() -> Self {
        Self::default()
    }

    /// The bound trajectory recorded by the last traced run (empty for
    /// untraced runs).
    pub fn trace(&self) -> &[TraceStep] {
        &self.trace
    }

    /// Enables or disables the envelope memoization for subsequent runs.
    /// Purely a performance switch: outcomes and traces are bitwise
    /// identical either way (`tests/envelope_cache_equivalence.rs`).
    pub fn set_envelope_cache(&mut self, enabled: bool) {
        self.env_cache_enabled = enabled;
    }

    /// Whether the envelope memoization is enabled.
    pub fn envelope_cache_enabled(&self) -> bool {
        self.env_cache_enabled
    }

    /// Clears every buffer and shrinks any that grew beyond `cap` elements
    /// (`cap` slots for the envelope cache) back down to it. Long batch
    /// runs call this between chunks so one adversarial query cannot
    /// ratchet a worker's memory for the rest of the batch; buffers at or
    /// under the cap keep their allocations (and the envelope cache keeps
    /// its entries — dropping them is never needed for correctness).
    pub fn reset_with_capacity_cap(&mut self, cap: usize) {
        self.heap.clear();
        self.heap.shrink_to(cap);
        self.trace.clear();
        self.trace.shrink_to(cap);
        self.frontier.clear();
        self.frontier.shrink_to(cap);
        self.intervals.clear();
        self.intervals.shrink_to(cap);
        self.env_cache.shrink_to_cap(cap);
    }

    /// The accumulated run counters, with the envelope cache's live
    /// hit/miss totals folded in (behind the `stats` feature).
    #[cfg(feature = "stats")]
    pub fn stats(&self) -> RunStats {
        let mut s = self.stats;
        s.cache_hits = self.env_cache.hits();
        s.cache_misses = self.env_cache.misses();
        s.simd_backend = karl_geom::backend_name();
        s
    }
}

/// The KARL/SOTA query evaluator over one index family.
///
/// Generic over the node volume `S` ([`karl_geom::Rect`] for the kd-tree,
/// [`karl_geom::Ball`] for the ball-tree); use the [`KdEvaluator`] /
/// [`BallEvaluator`] aliases or the runtime-dispatched
/// [`AnyEvaluator`](crate::tuning::AnyEvaluator).
#[derive(Debug, Clone)]
pub struct Evaluator<S: NodeShape> {
    pos: Option<SideData<S>>,
    neg: Option<SideData<S>>,
    /// SoA compilations of `pos`/`neg`, frozen at construction (or loaded
    /// straight from an index file). Always `Some` exactly where the side
    /// is `Some`.
    pos_frozen: Option<FrozenTree>,
    neg_frozen: Option<FrozenTree>,
    kernel: Kernel,
    method: BoundMethod,
    dims: usize,
    /// Optional coreset front tier for the evaluation cascade (default
    /// `None`; attach with [`with_coreset_tier`](Self::with_coreset_tier)).
    tier: Option<Box<CoresetTier<S>>>,
}

/// Per-side point data backing leaf refinement: either a built pointer
/// tree (which owns its reordered point buffers), or the bare leaf
/// buffers restored zero-copy from a persistent index.
///
/// Both the frozen and the pointer refinement loop read only
/// `points`/`weights`/`norms2` at the leaves; the pointer engine
/// additionally needs the node arena and is therefore only available on
/// [`Built`](SideData::Built) sides.
#[derive(Debug, Clone)]
enum SideData<S: NodeShape> {
    /// A tree built in this process; the pointer engine can walk it.
    Built(Tree<S>),
    /// Leaf buffers loaded from an index file; frozen engine only.
    Loaded(LeafData),
}

impl<S: NodeShape> SideData<S> {
    #[inline]
    fn points(&self) -> &PointSet {
        match self {
            SideData::Built(t) => t.points(),
            SideData::Loaded(l) => l.points(),
        }
    }

    #[inline]
    fn weights(&self) -> &[f64] {
        match self {
            SideData::Built(t) => t.weights(),
            SideData::Loaded(l) => l.weights(),
        }
    }

    #[inline]
    fn norms2(&self) -> &[f64] {
        match self {
            SideData::Built(t) => t.norms2(),
            SideData::Loaded(l) => l.norms2(),
        }
    }

    #[inline]
    fn len(&self) -> usize {
        match self {
            SideData::Built(t) => t.len(),
            SideData::Loaded(l) => l.len(),
        }
    }

    /// The pointer tree, when this side was built in-process.
    #[inline]
    fn tree(&self) -> Option<&Tree<S>> {
        match self {
            SideData::Built(t) => Some(t),
            SideData::Loaded(_) => None,
        }
    }
}

/// The coreset front tier: a second (small) evaluator frozen over the
/// coreset representatives, plus the certified absolute widening its
/// intervals need to stay sound for the full dataset.
#[derive(Debug, Clone)]
struct CoresetTier<S: NodeShape> {
    eval: Evaluator<S>,
    /// `eps_c · Σ|wᵢ|`: `|S_coreset(q) − S_full(q)|` never exceeds this for
    /// any finite query (see [`crate::coreset`] for the certificate).
    margin: f64,
}

/// Which tier of the coreset cascade produced a query's answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TierPath {
    /// No tier is attached, or the query type bypasses the tier (`Within`
    /// queries always run on the full tree so their answers stay bitwise
    /// identical to the non-cascade engine).
    Bypassed,
    /// The widened coreset interval decided the query at tier 1; the full
    /// tree was never touched.
    Decided,
    /// The widened interval could not decide; the full tree answered.
    FellThrough,
}

/// Evaluator over a kd-tree.
pub type KdEvaluator = Evaluator<karl_geom::Rect>;
/// Evaluator over a ball-tree.
pub type BallEvaluator = Evaluator<karl_geom::Ball>;

impl<S: NodeShape> Evaluator<S> {
    /// Builds an evaluator over `points` with signed `weights`.
    ///
    /// Points with positive weight go into the P⁺ tree, points with
    /// negative weight into the P⁻ tree (indexed with `|wᵢ|`), zero-weight
    /// points are dropped. `leaf_capacity` is the index granularity knob
    /// the automatic tuner sweeps.
    ///
    /// # Panics
    /// Panics if `points` is empty, lengths mismatch, every weight is zero,
    /// or any coordinate/weight is non-finite (see
    /// [`try_build`](Self::try_build) for the typed variant).
    pub fn build(
        points: &PointSet,
        weights: &[f64],
        kernel: Kernel,
        method: BoundMethod,
        leaf_capacity: usize,
    ) -> Self {
        Self::try_build(points, weights, kernel, method, leaf_capacity)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Validating variant of [`build`](Self::build): rejects empty data,
    /// length mismatches, non-finite coordinates/weights (with the
    /// offending index), all-zero weights, and a zero leaf capacity with a
    /// typed [`KarlError`] instead of panicking.
    pub fn try_build(
        points: &PointSet,
        weights: &[f64],
        kernel: Kernel,
        method: BoundMethod,
        leaf_capacity: usize,
    ) -> Result<Self, KarlError> {
        if leaf_capacity == 0 {
            return Err(KarlError::InvalidLeafCapacity);
        }
        error::validate_data(points, weights)?;
        let mut pos_idx = Vec::new();
        let mut neg_idx = Vec::new();
        for (i, &w) in weights.iter().enumerate() {
            if w > 0.0 {
                pos_idx.push(i);
            } else if w < 0.0 {
                neg_idx.push(i);
            }
        }
        let build_side = |idx: &[usize], flip: bool| -> Result<Option<Tree<S>>, KarlError> {
            if idx.is_empty() {
                return Ok(None);
            }
            let pts = points.select(idx);
            let ws: Vec<f64> = idx
                .iter()
                .map(|&i| if flip { -weights[i] } else { weights[i] })
                .collect();
            Ok(Some(Tree::try_build(pts, &ws, leaf_capacity)?))
        };
        let pos = build_side(&pos_idx, false)?;
        let neg = build_side(&neg_idx, true)?;
        Ok(Self {
            pos_frozen: pos.as_ref().map(Tree::freeze),
            neg_frozen: neg.as_ref().map(Tree::freeze),
            pos: pos.map(SideData::Built),
            neg: neg.map(SideData::Built),
            kernel,
            method,
            dims: points.dims(),
            tier: None,
        })
    }

    /// Wraps pre-built trees (advanced; both trees must hold non-negative
    /// weights, the `neg` tree representing `|wᵢ|` of the negative side).
    ///
    /// # Panics
    /// Panics if both trees are `None` or their dimensionalities disagree.
    pub fn from_trees(
        pos: Option<Tree<S>>,
        neg: Option<Tree<S>>,
        kernel: Kernel,
        method: BoundMethod,
    ) -> Self {
        Self::try_from_trees(pos, neg, kernel, method).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Validating variant of [`from_trees`](Self::from_trees): typed
    /// [`KarlError::NoTree`] / [`KarlError::DimMismatch`] instead of
    /// panicking.
    pub fn try_from_trees(
        pos: Option<Tree<S>>,
        neg: Option<Tree<S>>,
        kernel: Kernel,
        method: BoundMethod,
    ) -> Result<Self, KarlError> {
        let dims = match (&pos, &neg) {
            (Some(p), Some(n)) => {
                if p.dims() != n.dims() {
                    return Err(KarlError::DimMismatch {
                        expected: p.dims(),
                        got: n.dims(),
                    });
                }
                p.dims()
            }
            (Some(p), None) => p.dims(),
            (None, Some(n)) => n.dims(),
            (None, None) => return Err(KarlError::NoTree),
        };
        Ok(Self {
            pos_frozen: pos.as_ref().map(Tree::freeze),
            neg_frozen: neg.as_ref().map(Tree::freeze),
            pos: pos.map(SideData::Built),
            neg: neg.map(SideData::Built),
            kernel,
            method,
            dims,
            tier: None,
        })
    }

    /// Assembles an evaluator from loaded (frozen-only) sides; the
    /// zero-copy path of [`from_index_file`](Self::from_index_file).
    pub(crate) fn from_loaded(
        pos: Option<(FrozenTree, LeafData)>,
        neg: Option<(FrozenTree, LeafData)>,
        kernel: Kernel,
        method: BoundMethod,
    ) -> Result<Self, KarlError> {
        let dims = match (&pos, &neg) {
            (Some((p, _)), Some((n, _))) => {
                if p.dims() != n.dims() {
                    return Err(KarlError::DimMismatch {
                        expected: p.dims(),
                        got: n.dims(),
                    });
                }
                p.dims()
            }
            (Some((p, _)), None) => p.dims(),
            (None, Some((n, _))) => n.dims(),
            (None, None) => return Err(KarlError::NoTree),
        };
        let split = |side: Option<(FrozenTree, LeafData)>| match side {
            Some((frozen, leaf)) => (Some(frozen), Some(SideData::Loaded(leaf))),
            None => (None, None),
        };
        let (pos_frozen, pos) = split(pos);
        let (neg_frozen, neg) = split(neg);
        Ok(Self {
            pos_frozen,
            neg_frozen,
            pos,
            neg,
            kernel,
            method,
            dims,
            tier: None,
        })
    }

    /// Borrows both sides as persistence images (used by
    /// [`write_index_file`](Self::write_index_file); works for built and
    /// loaded sides alike, so a loaded index can be re-serialized).
    pub(crate) fn side_images(&self) -> (Option<SideImage<'_>>, Option<SideImage<'_>>) {
        fn image<'a, S: NodeShape>(
            side: Option<&'a SideData<S>>,
            frozen: Option<&'a FrozenTree>,
        ) -> Option<SideImage<'a>> {
            side.zip(frozen).map(|(s, f)| match s {
                SideData::Built(t) => SideImage::from_tree(t, f),
                SideData::Loaded(l) => SideImage {
                    frozen: f,
                    points: l.points(),
                    weights: l.weights(),
                    norms2: l.norms2(),
                    perm: l.perm(),
                },
            })
        }
        (
            image(self.pos.as_ref(), self.pos_frozen.as_ref()),
            image(self.neg.as_ref(), self.neg_frozen.as_ref()),
        )
    }

    /// The kernel this evaluator aggregates with.
    #[inline]
    pub fn kernel(&self) -> &Kernel {
        &self.kernel
    }

    /// The bound method (SOTA or KARL) in use.
    #[inline]
    pub fn method(&self) -> BoundMethod {
        self.method
    }

    /// Switches the bound method, reusing the trees (used by comparisons).
    pub fn with_method(mut self, method: BoundMethod) -> Self {
        self.method = method;
        self
    }

    /// Number of indexed points (both signs).
    pub fn len(&self) -> usize {
        self.pos.as_ref().map_or(0, SideData::len) + self.neg.as_ref().map_or(0, SideData::len)
    }

    /// Whether the evaluator indexes no points (never true once built).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Dimensionality of the indexed points.
    #[inline]
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Depth of the deepest node across both trees.
    pub fn max_depth(&self) -> u16 {
        let side = |side: Option<&SideData<S>>, frozen: Option<&FrozenTree>| match side {
            Some(SideData::Built(t)) => t.max_depth(),
            Some(SideData::Loaded(_)) => {
                frozen.map_or(0, |f| f.max_depth().try_into().unwrap_or(u16::MAX))
            }
            None => 0,
        };
        side(self.pos.as_ref(), self.pos_frozen.as_ref())
            .max(side(self.neg.as_ref(), self.neg_frozen.as_ref()))
    }

    /// The positive-weight pointer tree, if this evaluator was built
    /// in-process (`None` on a side restored from an index file).
    pub fn pos_tree(&self) -> Option<&Tree<S>> {
        self.pos.as_ref().and_then(SideData::tree)
    }

    /// The negative-weight pointer tree (holding `|wᵢ|`), if this
    /// evaluator was built in-process.
    pub fn neg_tree(&self) -> Option<&Tree<S>> {
        self.neg.as_ref().and_then(SideData::tree)
    }

    /// Whether the pointer engine can run: every present side must carry
    /// its built pointer tree. Sides restored from a persistent index are
    /// frozen-only.
    pub fn pointer_available(&self) -> bool {
        self.pos.as_ref().is_none_or(|s| s.tree().is_some())
            && self.neg.as_ref().is_none_or(|s| s.tree().is_some())
    }

    /// The frozen SoA index of the positive-weight tree, if any.
    pub fn pos_frozen(&self) -> Option<&FrozenTree> {
        self.pos_frozen.as_ref()
    }

    /// The frozen SoA index of the negative-weight tree, if any.
    pub fn neg_frozen(&self) -> Option<&FrozenTree> {
        self.neg_frozen.as_ref()
    }

    /// Exact `F_P(q)` by scanning both trees (no pruning). Ground truth.
    pub fn exact(&self, q: &[f64]) -> f64 {
        self.check_query(q);
        let qn = norm2(q);
        let side = |side: &SideData<S>| {
            self.kernel.eval_range(
                side.points(),
                side.weights(),
                side.norms2(),
                0,
                side.len(),
                q,
                qn,
            )
        };
        self.pos.as_ref().map_or(0.0, side) - self.neg.as_ref().map_or(0.0, side)
    }

    /// Threshold query: `F_P(q) ≥ τ`?
    pub fn tkaq(&self, q: &[f64], tau: f64) -> bool {
        let out = self.run(q, Query::Tkaq { tau }, None);
        decide_tkaq(&out, tau)
    }

    /// Threshold query restricted to the top `level` tree levels (the
    /// simulated tree `T_level` of the in-situ tuning, Section III-C).
    pub fn tkaq_at_level(&self, q: &[f64], tau: f64, level: u16) -> bool {
        let out = self.run(q, Query::Tkaq { tau }, Some(level));
        decide_tkaq(&out, tau)
    }

    /// Approximate query: returns `F̂` with `(1−ε)F ≤ F̂ ≤ (1+ε)F`
    /// (for non-negative `F`; mixed-sign aggregates fall back to the exact
    /// value).
    ///
    /// # Panics
    /// Panics unless `eps > 0`.
    pub fn ekaq(&self, q: &[f64], eps: f64) -> f64 {
        assert!(eps > 0.0, "eps must be positive");
        let out = self.run(q, Query::Ekaq { eps }, None);
        estimate_ekaq(&out)
    }

    /// Approximate query restricted to the top `level` tree levels.
    pub fn ekaq_at_level(&self, q: &[f64], eps: f64, level: u16) -> f64 {
        assert!(eps > 0.0, "eps must be positive");
        let out = self.run(q, Query::Ekaq { eps }, Some(level));
        estimate_ekaq(&out)
    }

    /// Absolute-gap query: returns `(F̂, half_width)` with
    /// `|F̂ − F_P(q)| ≤ half_width ≤ tol/2` (exactly `F` when the tree
    /// bottoms out first).
    ///
    /// # Panics
    /// Panics unless `tol > 0`.
    pub fn within(&self, q: &[f64], tol: f64) -> (f64, f64) {
        assert!(tol > 0.0, "tol must be positive");
        let out = self.run(q, Query::Within { tol }, None);
        (0.5 * (out.lb + out.ub), 0.5 * (out.ub - out.lb).max(0.0))
    }

    /// Runs a threshold query recording the bound trajectory (Figure 6).
    pub fn trace_tkaq(&self, q: &[f64], tau: f64) -> (bool, Vec<TraceStep>) {
        let (out, trace) = self.trace_run_on(Engine::default(), q, Query::Tkaq { tau });
        (decide_tkaq(&out, tau), trace)
    }

    /// Runs an approximate query recording the bound trajectory.
    pub fn trace_ekaq(&self, q: &[f64], eps: f64) -> (f64, Vec<TraceStep>) {
        assert!(eps > 0.0, "eps must be positive");
        let (out, trace) = self.trace_run_on(Engine::default(), q, Query::Ekaq { eps });
        (estimate_ekaq(&out), trace)
    }

    /// Runs a query on a chosen engine, recording the bound trajectory.
    /// The differential entry point of `tests/frozen_equivalence.rs`.
    pub fn trace_run_on(
        &self,
        engine: Engine,
        q: &[f64],
        query: Query,
    ) -> (RunOutcome, Vec<TraceStep>) {
        self.check_query(q);
        let mut scratch = Scratch::new();
        let (out, _) = self.run_core_on(
            engine,
            q,
            query,
            None,
            &mut scratch,
            true,
            &Budget::UNLIMITED,
            0.0,
        );
        (out, std::mem::take(&mut scratch.trace))
    }

    /// Runs a query and returns the raw bound outcome (used by the harness
    /// and the tuners; `level_cap` simulates the top-`level` tree).
    pub fn run_query(&self, q: &[f64], query: Query, level_cap: Option<u16>) -> RunOutcome {
        self.run(q, query, level_cap)
    }

    /// Validating variant of [`run_query`](Self::run_query): rejects a
    /// wrong-dimensional or non-finite query point and invalid query
    /// parameters with a typed [`KarlError`] instead of panicking.
    pub fn try_run_query(
        &self,
        q: &[f64],
        query: Query,
        level_cap: Option<u16>,
    ) -> Result<RunOutcome, KarlError> {
        error::validate_query(q, self.dims)?;
        error::validate_spec(query)?;
        let (out, _) = self.run_core_on(
            Engine::default(),
            q,
            query,
            level_cap,
            &mut Scratch::new(),
            false,
            &Budget::UNLIMITED,
            0.0,
        );
        Ok(out)
    }

    /// Runs a query under a [`Budget`]. Whenever the budget is not hit the
    /// result is `Outcome::Complete` and bitwise identical to
    /// [`run_query`](Self::run_query); otherwise the loop stops at the cap
    /// and returns the certified interval it had at that moment.
    pub fn run_budgeted(
        &self,
        q: &[f64],
        query: Query,
        level_cap: Option<u16>,
        budget: &Budget,
    ) -> Result<Outcome, KarlError> {
        self.run_budgeted_with_scratch_on(
            Engine::default(),
            q,
            query,
            level_cap,
            budget,
            &mut Scratch::new(),
        )
    }

    /// [`run_budgeted`](Self::run_budgeted) on a chosen engine with
    /// caller-owned scratch — the validated, budget-aware hot entry point
    /// of the fault-contained batch engine.
    pub fn run_budgeted_with_scratch_on(
        &self,
        engine: Engine,
        q: &[f64],
        query: Query,
        level_cap: Option<u16>,
        budget: &Budget,
        scratch: &mut Scratch,
    ) -> Result<Outcome, KarlError> {
        error::validate_query(q, self.dims)?;
        error::validate_spec(query)?;
        if engine == Engine::Pointer && !self.pointer_available() {
            return Err(KarlError::PointerEngineUnavailable);
        }
        let (out, truncated) =
            self.run_core_on(engine, q, query, level_cap, scratch, false, budget, 0.0);
        Ok(match truncated {
            None => Outcome::Complete(out),
            Some(reason) => Outcome::Truncated {
                lb: out.lb,
                ub: out.ub,
                reason,
            },
        })
    }

    /// Budgeted threshold query: [`TkaqDecision::Decided`] when the bounds
    /// settle `F_P(q) ≥ τ` within budget, otherwise
    /// [`TkaqDecision::Undecided`] with the certified interval straddling
    /// `τ`.
    pub fn tkaq_budgeted(
        &self,
        q: &[f64],
        tau: f64,
        budget: &Budget,
    ) -> Result<TkaqDecision, KarlError> {
        match self.run_budgeted(q, Query::Tkaq { tau }, None, budget)? {
            Outcome::Complete(out) => Ok(TkaqDecision::Decided(decide_tkaq(&out, tau))),
            // The budget check runs only while the bounds are still
            // straddling τ (the termination test fires first), so a
            // truncated threshold query is always undecided.
            Outcome::Truncated { lb, ub, .. } => Ok(TkaqDecision::Undecided { lb, ub }),
        }
    }

    /// Budgeted approximate query: the converged eKAQ answer when complete,
    /// otherwise the interval midpoint — either way [`Estimate`] reports
    /// the relative error actually *achieved*, not the one requested.
    pub fn ekaq_budgeted(
        &self,
        q: &[f64],
        eps: f64,
        budget: &Budget,
    ) -> Result<Estimate, KarlError> {
        match self.run_budgeted(q, Query::Ekaq { eps }, None, budget)? {
            Outcome::Complete(out) => {
                let value = estimate_ekaq(&out);
                Ok(Estimate {
                    value,
                    lb: out.lb,
                    ub: out.ub,
                    achieved_eps: achieved_rel_err(value, out.lb, out.ub),
                    truncated: None,
                })
            }
            Outcome::Truncated { lb, ub, reason } => {
                let value = 0.5 * (lb + ub);
                Ok(Estimate {
                    value,
                    lb,
                    ub,
                    achieved_eps: achieved_rel_err(value, lb, ub),
                    truncated: Some(reason),
                })
            }
        }
    }

    /// [`run_query`](Self::run_query) on a chosen engine.
    pub fn run_query_on(
        &self,
        engine: Engine,
        q: &[f64],
        query: Query,
        level_cap: Option<u16>,
    ) -> RunOutcome {
        self.check_query(q);
        self.run_core_on(
            engine,
            q,
            query,
            level_cap,
            &mut Scratch::new(),
            false,
            &Budget::UNLIMITED,
            0.0,
        )
        .0
    }

    /// [`run_query`](Self::run_query) with caller-owned scratch buffers:
    /// after the buffers have grown to the workload's high-water mark, the
    /// query path performs zero heap allocations. This is the hot entry
    /// point of the batch engine (one [`Scratch`] per worker thread); the
    /// outcome is bit-identical to [`run_query`](Self::run_query).
    ///
    /// Dimensionality is only `debug_assert!`ed here — callers (like
    /// [`crate::batch::QueryBatch`]) validate once per batch, not once per
    /// query.
    pub fn run_with_scratch(
        &self,
        q: &[f64],
        query: Query,
        level_cap: Option<u16>,
        scratch: &mut Scratch,
    ) -> RunOutcome {
        self.run_core_on(
            Engine::default(),
            q,
            query,
            level_cap,
            scratch,
            false,
            &Budget::UNLIMITED,
            0.0,
        )
        .0
    }

    /// [`run_with_scratch`](Self::run_with_scratch) on a chosen engine.
    pub fn run_with_scratch_on(
        &self,
        engine: Engine,
        q: &[f64],
        query: Query,
        level_cap: Option<u16>,
        scratch: &mut Scratch,
    ) -> RunOutcome {
        self.run_core_on(
            engine,
            q,
            query,
            level_cap,
            scratch,
            false,
            &Budget::UNLIMITED,
            0.0,
        )
        .0
    }

    /// Attaches a coreset front tier, turning this evaluator into a two-tier
    /// cascade: TKAQ/eKAQ queries first refine on a small tree frozen over
    /// the coreset representatives with every termination test widened by
    /// the certificate `margin = eps_c·Σ|wᵢ|`, and only fall through to the
    /// full tree when the widened interval cannot decide. A tier answer is
    /// sound for the full dataset because `S_full(q)` always lies inside
    /// `[lb_core − margin, ub_core + margin]`.
    ///
    /// `Within` queries always bypass the tier (their batch contract is a
    /// bitwise-identical answer to the non-cascade engine, see
    /// `tests/coreset_cascade_equivalence.rs`). The tier only pays when
    /// queries land in clear accept/reject regions of `τ` (or loose `ε`);
    /// a fall-through costs one extra O(|coreset|) refinement.
    ///
    /// Errors: [`KarlError::DimMismatch`] when the coreset dimensionality
    /// disagrees, [`KarlError::LengthMismatch`] via tree construction, and
    /// a kernel mismatch is rejected as
    /// [`KarlError::UnsupportedCoresetKernel`] — the certificate is only
    /// valid for the kernel it was derived for.
    pub fn with_coreset_tier(
        mut self,
        coreset: &Coreset,
        leaf_capacity: usize,
    ) -> Result<Self, KarlError> {
        if coreset.points().dims() != self.dims {
            return Err(KarlError::DimMismatch {
                expected: self.dims,
                got: coreset.points().dims(),
            });
        }
        if coreset.kernel() != self.kernel {
            return Err(KarlError::UnsupportedCoresetKernel {
                kernel: "mismatched (coreset was certified for a different kernel)",
            });
        }
        let eval = Evaluator::try_build(
            coreset.points(),
            coreset.weights(),
            self.kernel,
            self.method,
            leaf_capacity,
        )?;
        self.tier = Some(Box::new(CoresetTier {
            eval,
            margin: coreset.margin(),
        }));
        Ok(self)
    }

    /// Detaches the coreset tier (subsequent runs use the full tree only).
    pub fn without_coreset_tier(mut self) -> Self {
        self.tier = None;
        self
    }

    /// Whether a coreset front tier is attached.
    pub fn has_coreset_tier(&self) -> bool {
        self.tier.is_some()
    }

    /// The certified absolute widening of the attached tier, if any.
    pub fn coreset_margin(&self) -> Option<f64> {
        self.tier.as_ref().map(|t| t.margin)
    }

    /// Heap bytes of the attached tier's frozen indexes, if any — the extra
    /// memory the cascade stacks on top of the full index.
    pub fn tier_footprint_bytes(&self) -> Option<usize> {
        self.tier.as_ref().map(|t| {
            t.eval.pos_frozen().map_or(0, FrozenTree::footprint_bytes)
                + t.eval.neg_frozen().map_or(0, FrozenTree::footprint_bytes)
        })
    }

    /// Whether the attached tier applies to `query` at all (`Within`
    /// bypasses it, and without a tier nothing applies).
    #[inline]
    fn tier_applies(&self, query: Query) -> bool {
        self.tier.is_some() && !matches!(query, Query::Within { .. })
    }

    /// Runs tier 1 of the cascade: refine on the coreset tree with the
    /// termination test widened by the certificate margin, and return the
    /// *widened* outcome when it decides the query. `None` means the tier
    /// does not apply or could not decide: tier refinement stops at the
    /// certificate's resolution (interval width ≤ margin) because past
    /// that floor the coreset's own error dominates — queries inside the
    /// margin-wide boundary band fall through instead of grinding the
    /// coreset tree down to an exact scan.
    fn tier_attempt(
        &self,
        engine: Engine,
        q: &[f64],
        query: Query,
        scratch: &mut Scratch,
    ) -> Option<RunOutcome> {
        let tier = self.tier.as_deref()?;
        if matches!(query, Query::Within { .. }) {
            return None;
        }
        // Unbudgeted: the tier's cost is bounded by the coreset size, and
        // the caller's budget governs the expensive fall-through run only
        // (mirroring the dual-tree wholesale semantics).
        let (out, _) = tier.eval.run_core_on(
            engine,
            q,
            query,
            None,
            scratch,
            false,
            &Budget::UNLIMITED,
            tier.margin,
        );
        if terminated(query, out.lb, out.ub, tier.margin) {
            Some(RunOutcome {
                lb: out.lb - tier.margin,
                ub: out.ub + tier.margin,
                iterations: out.iterations,
            })
        } else {
            None
        }
    }

    /// [`run_with_scratch_on`](Self::run_with_scratch_on) through the
    /// coreset cascade: tier 1 first (when attached and applicable), full
    /// tree on fall-through. The returned [`TierPath`] records which tier
    /// answered; a [`TierPath::Decided`] outcome carries the widened —
    /// still certified — interval, whose `decide_tkaq`/`estimate_ekaq`
    /// answers match the full-tree engine (TKAQ exactly, eKAQ within the
    /// requested ε).
    pub fn run_cascade_with_scratch_on(
        &self,
        engine: Engine,
        q: &[f64],
        query: Query,
        level_cap: Option<u16>,
        scratch: &mut Scratch,
    ) -> (RunOutcome, TierPath) {
        if let Some(out) = self.tier_attempt(engine, q, query, scratch) {
            return (out, TierPath::Decided);
        }
        let path = if self.tier_applies(query) {
            TierPath::FellThrough
        } else {
            TierPath::Bypassed
        };
        let out = self
            .run_core_on(
                engine,
                q,
                query,
                level_cap,
                scratch,
                false,
                &Budget::UNLIMITED,
                0.0,
            )
            .0;
        (out, path)
    }

    /// Budget-aware cascade twin of
    /// [`run_budgeted_with_scratch_on`](Self::run_budgeted_with_scratch_on).
    /// The budget applies to the fall-through full-tree run only: tier-1
    /// work is bounded by the coreset size, so a tier-decided query is
    /// always `Outcome::Complete` even under a starving budget (exactly the
    /// dual-tree wholesale contract).
    #[allow(clippy::too_many_arguments)] // mirrors run_budgeted_with_scratch_on
    pub fn run_cascade_budgeted_with_scratch_on(
        &self,
        engine: Engine,
        q: &[f64],
        query: Query,
        level_cap: Option<u16>,
        budget: &Budget,
        scratch: &mut Scratch,
    ) -> Result<(Outcome, TierPath), KarlError> {
        error::validate_query(q, self.dims)?;
        error::validate_spec(query)?;
        if engine == Engine::Pointer && !self.pointer_available() {
            return Err(KarlError::PointerEngineUnavailable);
        }
        if let Some(out) = self.tier_attempt(engine, q, query, scratch) {
            return Ok((Outcome::Complete(out), TierPath::Decided));
        }
        let path = if self.tier_applies(query) {
            TierPath::FellThrough
        } else {
            TierPath::Bypassed
        };
        let (out, truncated) =
            self.run_core_on(engine, q, query, level_cap, scratch, false, budget, 0.0);
        Ok((
            match truncated {
                None => Outcome::Complete(out),
                Some(reason) => Outcome::Truncated {
                    lb: out.lb,
                    ub: out.ub,
                    reason,
                },
            },
            path,
        ))
    }

    fn check_query(&self, q: &[f64]) {
        assert_eq!(q.len(), self.dims, "query dimensionality mismatch");
    }

    fn run(&self, q: &[f64], query: Query, level_cap: Option<u16>) -> RunOutcome {
        self.check_query(q);
        self.run_core_on(
            Engine::default(),
            q,
            query,
            level_cap,
            &mut Scratch::new(),
            false,
            &Budget::UNLIMITED,
            0.0,
        )
        .0
    }

    /// [`trace_run_on`](Self::trace_run_on) with caller-owned scratch: the
    /// trajectory lands in [`Scratch::trace`], so a warm scratch (and its
    /// envelope cache) can be threaded through a sequence of traced runs.
    pub fn trace_run_with_scratch_on(
        &self,
        engine: Engine,
        q: &[f64],
        query: Query,
        scratch: &mut Scratch,
    ) -> RunOutcome {
        self.check_query(q);
        self.run_core_on(engine, q, query, None, scratch, true, &Budget::UNLIMITED, 0.0)
            .0
    }

    #[inline]
    #[allow(clippy::too_many_arguments)] // internal plumbing shared by every public entry
    fn run_core_on(
        &self,
        engine: Engine,
        q: &[f64],
        query: Query,
        level_cap: Option<u16>,
        scratch: &mut Scratch,
        record_trace: bool,
        budget: &Budget,
        margin: f64,
    ) -> (RunOutcome, Option<TruncateReason>) {
        #[cfg(feature = "stats")]
        let (value_calls0, built0) = (
            crate::curve::stats::value_calls(),
            crate::envelope::stats::envelopes_built(),
        );
        let out = match engine {
            Engine::Frozen => {
                self.run_core_frozen(q, query, level_cap, scratch, record_trace, budget, margin)
            }
            Engine::Pointer => {
                self.run_core_pointer(q, query, level_cap, scratch, record_trace, budget, margin)
            }
        };
        #[cfg(feature = "stats")]
        {
            scratch.stats.nodes_refined += out.0.iterations as u64;
            scratch.stats.envelopes_built +=
                crate::envelope::stats::envelopes_built() - built0;
            scratch.stats.curve_value_calls += crate::curve::stats::value_calls() - value_calls0;
        }
        out
    }

    /// The frozen-path refinement loop: identical control flow to
    /// [`run_core_pointer`](Self::run_core_pointer), but per-node bounds
    /// come from the SoA index through the **two-pass frontier kernel**.
    /// Each heap pop gathers its children into the frontier buffer, pass 1
    /// streams the batched fused geometry kernels over them emitting
    /// [`NodeInterval`] records, and pass 2 sweeps those records building
    /// envelopes through the scratch's memoization table.
    ///
    /// Frontier order is left child then right child — exactly the push
    /// order of the old one-node-at-a-time loop — and pass 2 accumulates
    /// `lb`/`ub` in that same order with the same per-node arithmetic, so
    /// outcomes and traces are bitwise identical to the pre-frontier engine
    /// (and to the pointer oracle).
    #[allow(clippy::too_many_arguments)] // internal plumbing shared by every public entry
    fn run_core_frozen(
        &self,
        q: &[f64],
        query: Query,
        level_cap: Option<u16>,
        scratch: &mut Scratch,
        record_trace: bool,
        budget: &Budget,
        margin: f64,
    ) -> (RunOutcome, Option<TruncateReason>) {
        debug_assert_eq!(q.len(), self.dims, "query dimensionality mismatch");
        let ctx = QueryContext::new(&self.kernel, self.method, q);
        let method = self.method;
        let curve = self.kernel.curve();
        let use_cache = scratch.env_cache_enabled;
        let Scratch {
            heap,
            trace,
            frontier,
            intervals,
            env_cache,
            ..
        } = scratch;
        heap.clear();
        trace.clear();
        let mut lb = 0.0f64;
        let mut ub = 0.0f64;
        let pos = self.pos.as_ref().zip(self.pos_frozen.as_ref());
        let neg = self.neg.as_ref().zip(self.neg_frozen.as_ref());

        let mut bound_frontier = |heap: &mut BinaryHeap<Entry>,
                                  lb: &mut f64,
                                  ub: &mut f64,
                                  frozen: &FrozenTree,
                                  ids: &[NodeId],
                                  negated: bool| {
            node_intervals_frozen(&ctx, frozen, ids, intervals);
            for iv in intervals.iter() {
                let b = assemble_interval(method, curve, iv, env_cache, use_cache);
                let (elb, eub) = contribution(&b, negated);
                *lb += elb;
                *ub += eub;
                heap.push(Entry {
                    gap: eub - elb,
                    node: iv.node,
                    negated,
                    lb: elb,
                    ub: eub,
                });
            }
        };

        if let Some((_, frozen)) = pos {
            frontier.clear();
            frontier.push(frozen.root());
            bound_frontier(heap, &mut lb, &mut ub, frozen, frontier, false);
        }
        if let Some((_, frozen)) = neg {
            frontier.clear();
            frontier.push(frozen.root());
            bound_frontier(heap, &mut lb, &mut ub, frozen, frontier, true);
        }

        let mut iterations = 0usize;
        let mut leaf_points = 0u64;
        let mut truncated = None;
        let mut deadline_start = None;
        // Hoisted so unbudgeted runs pay one bool test per iteration.
        let budgeted = !budget.is_unlimited();
        if record_trace {
            trace.push(TraceStep {
                iteration: 0,
                lb,
                ub,
            });
        }
        loop {
            if terminated(query, lb, ub, margin) {
                break;
            }
            // Tier runs (margin > 0) refine at certificate resolution only:
            // once the interval is narrower than the widening margin the
            // coreset's own error dominates, so grinding on (ultimately to
            // an exact scan of every representative) cannot settle a query
            // the widened test hasn't settled already — give up and let the
            // caller fall through to the full tree.
            if margin > 0.0 && ub - lb <= margin {
                break;
            }
            // Checked after the termination test so a completed run can
            // never be reported as truncated, and before the pop so the
            // certified interval at stop time is left intact.
            if budgeted {
                if let Some(reason) = budget.check(iterations, leaf_points, &mut deadline_start) {
                    truncated = Some(reason);
                    break;
                }
            }
            let Some(entry) = heap.pop() else { break };
            iterations += 1;
            lb -= entry.lb;
            ub -= entry.ub;
            let (side, frozen) = if entry.negated {
                neg.expect("negated entry without neg tree")
            } else {
                pos.expect("entry without pos tree")
            };
            let refine_exactly = frozen.is_leaf(entry.node)
                || level_cap.is_some_and(|cap| frozen.depth(entry.node) >= cap);
            if refine_exactly {
                let (start, end) = frozen.range(entry.node);
                leaf_points += (end - start) as u64;
                let exact = self.kernel.eval_range(
                    side.points(),
                    side.weights(),
                    side.norms2(),
                    start,
                    end,
                    q,
                    ctx.q_norm2(),
                );
                let signed = if entry.negated { -exact } else { exact };
                lb += signed;
                ub += signed;
            } else {
                frontier.clear();
                let gathered = frozen.gather_children(entry.node, frontier);
                debug_assert!(gathered, "non-leaf node has children");
                bound_frontier(heap, &mut lb, &mut ub, frozen, frontier, entry.negated);
            }
            if record_trace {
                trace.push(TraceStep {
                    iteration: iterations,
                    lb,
                    ub,
                });
            }
        }
        (RunOutcome { lb, ub, iterations }, truncated)
    }

    #[allow(clippy::too_many_arguments)] // internal plumbing shared by every public entry
    fn run_core_pointer(
        &self,
        q: &[f64],
        query: Query,
        level_cap: Option<u16>,
        scratch: &mut Scratch,
        record_trace: bool,
        budget: &Budget,
        margin: f64,
    ) -> (RunOutcome, Option<TruncateReason>) {
        debug_assert_eq!(q.len(), self.dims, "query dimensionality mismatch");
        let qn = norm2(q);
        scratch.heap.clear();
        scratch.trace.clear();
        let heap = &mut scratch.heap;
        let trace = &mut scratch.trace;
        let mut lb = 0.0f64;
        let mut ub = 0.0f64;

        let push = |heap: &mut BinaryHeap<Entry>,
                    lb: &mut f64,
                    ub: &mut f64,
                    tree: &Tree<S>,
                    node: NodeId,
                    negated: bool| {
            let n = tree.node(node);
            let b = node_bounds(self.method, &self.kernel, &n.shape, &n.stats, q, qn);
            let (elb, eub) = contribution(&b, negated);
            *lb += elb;
            *ub += eub;
            heap.push(Entry {
                gap: eub - elb,
                node,
                negated,
                lb: elb,
                ub: eub,
            });
        };

        // Loaded (frozen-only) sides cannot reach here: the validated
        // entry points reject `Engine::Pointer` with
        // `KarlError::PointerEngineUnavailable` first.
        fn expect_tree<S: NodeShape>(side: &SideData<S>) -> &Tree<S> {
            side.tree()
                .expect("pointer engine requires built trees; loaded indexes are frozen-only")
        }
        if let Some(side) = &self.pos {
            let tree = expect_tree(side);
            push(heap, &mut lb, &mut ub, tree, tree.root(), false);
        }
        if let Some(side) = &self.neg {
            let tree = expect_tree(side);
            push(heap, &mut lb, &mut ub, tree, tree.root(), true);
        }

        let mut iterations = 0usize;
        let mut leaf_points = 0u64;
        let mut truncated = None;
        let mut deadline_start = None;
        let budgeted = !budget.is_unlimited();
        if record_trace {
            trace.push(TraceStep {
                iteration: 0,
                lb,
                ub,
            });
        }
        loop {
            if terminated(query, lb, ub, margin) {
                break;
            }
            // Certificate-resolution floor for tier runs; see the frozen
            // loop for the rationale (the two engines must stay in lockstep).
            if margin > 0.0 && ub - lb <= margin {
                break;
            }
            if budgeted {
                if let Some(reason) = budget.check(iterations, leaf_points, &mut deadline_start) {
                    truncated = Some(reason);
                    break;
                }
            }
            let Some(entry) = heap.pop() else { break };
            iterations += 1;
            lb -= entry.lb;
            ub -= entry.ub;
            let tree = expect_tree(if entry.negated {
                self.neg.as_ref().expect("negated entry without neg tree")
            } else {
                self.pos.as_ref().expect("entry without pos tree")
            });
            let node = tree.node(entry.node);
            let refine_exactly = node.is_leaf() || level_cap.is_some_and(|cap| node.depth >= cap);
            if refine_exactly {
                leaf_points += (node.end - node.start) as u64;
                let exact = self.kernel.eval_range(
                    tree.points(),
                    tree.weights(),
                    tree.norms2(),
                    node.start,
                    node.end,
                    q,
                    qn,
                );
                let signed = if entry.negated { -exact } else { exact };
                lb += signed;
                ub += signed;
            } else {
                let (a, b) = node.children.expect("non-leaf node has children");
                push(heap, &mut lb, &mut ub, tree, a, entry.negated);
                push(heap, &mut lb, &mut ub, tree, b, entry.negated);
            }
            if record_trace {
                trace.push(TraceStep {
                    iteration: iterations,
                    lb,
                    ub,
                });
            }
        }
        (RunOutcome { lb, ub, iterations }, truncated)
    }
}

#[inline]
pub(crate) fn contribution(b: &BoundPair, negated: bool) -> (f64, f64) {
    if negated {
        (-b.ub, -b.lb)
    } else {
        (b.lb, b.ub)
    }
}

/// Termination test on the interval `[lb − margin, ub + margin]`.
///
/// `margin` is the coreset cascade's certified widening (`eps_c · Σ|wᵢ|`);
/// the full-tree paths pass `0.0`, for which every arm reduces *exactly* to
/// the unwidened predicate (`x − 0.0` and `x + 0.0` preserve the value of
/// every finite `x`, and `±0.0` compare equal), so the margin-free paths
/// stay bitwise identical to the pre-cascade engine.
#[inline]
fn terminated(query: Query, lb: f64, ub: f64, margin: f64) -> bool {
    let (wl, wu) = (lb - margin, ub + margin);
    match query {
        Query::Tkaq { tau } => wl >= tau || wu < tau,
        Query::Ekaq { eps } => (wl > 0.0 && wu <= (1.0 + eps) * wl) || wu <= wl,
        Query::Within { tol } => wu - wl <= tol,
    }
}

pub(crate) fn decide_tkaq(out: &RunOutcome, tau: f64) -> bool {
    if out.lb >= tau {
        true
    } else if out.ub < tau {
        false
    } else {
        // Heap exhausted without a decision: lb == ub == F up to rounding.
        0.5 * (out.lb + out.ub) >= tau
    }
}

pub(crate) fn estimate_ekaq(out: &RunOutcome) -> f64 {
    if out.lb > 0.0 && out.ub > out.lb {
        out.lb
    } else {
        0.5 * (out.lb + out.ub)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::aggregate_exact;
    use karl_geom::{Ball, Rect};
    use karl_testkit::rng::StdRng;
    use karl_testkit::rng::{Rng, SeedableRng};
    use karl_testkit::{prop_assert, prop_assert_eq};

    fn clustered_points(n: usize, d: usize, seed: u64) -> PointSet {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut data = Vec::with_capacity(n * d);
        for i in 0..n {
            let center = if i % 2 == 0 { -2.0 } else { 2.0 };
            for _ in 0..d {
                data.push(center + rng.random_range(-0.5..0.5));
            }
        }
        PointSet::new(d, data)
    }

    fn mixed_weights(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let w: f64 = rng.random_range(0.2..2.0);
                if rng.random_bool(0.4) {
                    -w
                } else {
                    w
                }
            })
            .collect()
    }

    #[test]
    fn tkaq_matches_scan_type1() {
        let ps = clustered_points(400, 3, 1);
        let w = vec![1.0 / 400.0; 400];
        let kernel = Kernel::gaussian(0.5);
        for method in [BoundMethod::Sota, BoundMethod::Karl] {
            let eval = Evaluator::<Rect>::build(&ps, &w, kernel, method, 16);
            let queries = clustered_points(30, 3, 2);
            for q in queries.iter() {
                let truth = aggregate_exact(&kernel, &ps, &w, q);
                for mult in [0.5, 0.9, 1.1, 2.0] {
                    let tau = truth * mult;
                    assert_eq!(
                        eval.tkaq(q, tau),
                        truth >= tau,
                        "{method:?} wrong at tau={tau}, truth={truth}"
                    );
                }
            }
        }
    }

    #[test]
    fn tkaq_matches_scan_type3_mixed_weights() {
        let ps = clustered_points(300, 2, 3);
        let w = mixed_weights(300, 4);
        let kernel = Kernel::gaussian(0.8);
        let eval = Evaluator::<Rect>::build(&ps, &w, kernel, BoundMethod::Karl, 8);
        let queries = clustered_points(25, 2, 5);
        for q in queries.iter() {
            let truth = aggregate_exact(&kernel, &ps, &w, q);
            for delta in [-0.5, -0.05, 0.05, 0.5] {
                let tau = truth + delta;
                assert_eq!(eval.tkaq(q, tau), truth >= tau, "tau={tau} truth={truth}");
            }
        }
    }

    #[test]
    fn ekaq_respects_relative_error() {
        let ps = clustered_points(500, 3, 6);
        let w = vec![0.01; 500];
        let kernel = Kernel::gaussian(0.4);
        for method in [BoundMethod::Sota, BoundMethod::Karl] {
            let eval = Evaluator::<Ball>::build(&ps, &w, kernel, method, 32);
            let queries = clustered_points(20, 3, 7);
            for eps in [0.05, 0.2, 0.5] {
                for q in queries.iter() {
                    let truth = aggregate_exact(&kernel, &ps, &w, q);
                    let est = eval.ekaq(q, eps);
                    assert!(
                        est >= (1.0 - eps) * truth - 1e-12 && est <= (1.0 + eps) * truth + 1e-12,
                        "{method:?} eps={eps}: est={est} truth={truth}"
                    );
                }
            }
        }
    }

    #[test]
    fn exact_matches_scan() {
        let ps = clustered_points(150, 4, 8);
        let w = mixed_weights(150, 9);
        let kernel = Kernel::polynomial(0.5, 0.2, 3);
        let eval = Evaluator::<Rect>::build(&ps, &w, kernel, BoundMethod::Karl, 4);
        let queries = clustered_points(10, 4, 10);
        for q in queries.iter() {
            let truth = aggregate_exact(&kernel, &ps, &w, q);
            let got = eval.exact(q);
            assert!((got - truth).abs() < 1e-8 * (1.0 + truth.abs()));
        }
    }

    #[test]
    fn karl_terminates_in_fewer_iterations_than_sota() {
        // Figure 6's qualitative claim: KARL's tighter bounds stop sooner.
        let ps = clustered_points(2000, 3, 11);
        let w = vec![1.0; 2000];
        let kernel = Kernel::gaussian(0.2);
        let karl = Evaluator::<Rect>::build(&ps, &w, kernel, BoundMethod::Karl, 8);
        let sota = karl.clone().with_method(BoundMethod::Sota);
        let queries = clustered_points(20, 3, 12);
        let mut karl_iters = 0usize;
        let mut sota_iters = 0usize;
        for q in queries.iter() {
            let truth = aggregate_exact(&kernel, &ps, &w, q);
            let tau = truth * 1.05;
            karl_iters += karl.run_query(q, Query::Tkaq { tau }, None).iterations;
            sota_iters += sota.run_query(q, Query::Tkaq { tau }, None).iterations;
        }
        assert!(
            karl_iters <= sota_iters,
            "KARL used {karl_iters} iterations vs SOTA {sota_iters}"
        );
    }

    #[test]
    fn level_capped_queries_are_correct() {
        let ps = clustered_points(256, 2, 13);
        let w = vec![0.5; 256];
        let kernel = Kernel::gaussian(0.6);
        let eval = Evaluator::<Rect>::build(&ps, &w, kernel, BoundMethod::Karl, 1);
        let queries = clustered_points(10, 2, 14);
        for q in queries.iter() {
            let truth = aggregate_exact(&kernel, &ps, &w, q);
            for level in [0, 1, 3, 8] {
                let tau = truth * 1.2;
                assert_eq!(eval.tkaq_at_level(q, tau, level), truth >= tau);
                let est = eval.ekaq_at_level(q, 0.1, level);
                assert!(est >= 0.9 * truth - 1e-12 && est <= 1.1 * truth + 1e-12);
            }
        }
    }

    #[test]
    fn trace_is_monotone_and_bracketing() {
        let ps = clustered_points(512, 3, 15);
        let w = vec![1.0; 512];
        let kernel = Kernel::gaussian(0.3);
        let eval = Evaluator::<Rect>::build(&ps, &w, kernel, BoundMethod::Karl, 4);
        let q = ps.point(0).to_vec();
        let truth = aggregate_exact(&kernel, &ps, &w, &q);
        let (_, trace) = eval.trace_tkaq(&q, truth * 2.0);
        assert!(!trace.is_empty());
        for step in &trace {
            assert!(step.lb <= truth + 1e-6 * truth.abs().max(1.0));
            assert!(step.ub + 1e-6 * truth.abs().max(1.0) >= truth);
        }
        // Bounds tighten (weakly) as refinement proceeds.
        for w2 in trace.windows(2) {
            assert!(w2[1].lb >= w2[0].lb - 1e-7 * (1.0 + w2[0].lb.abs()));
            assert!(w2[1].ub <= w2[0].ub + 1e-7 * (1.0 + w2[0].ub.abs()));
        }
    }

    #[test]
    fn all_negative_weights_work() {
        let ps = clustered_points(100, 2, 16);
        let w = vec![-1.0; 100];
        let kernel = Kernel::gaussian(0.5);
        let eval = Evaluator::<Rect>::build(&ps, &w, kernel, BoundMethod::Karl, 8);
        let q = vec![0.0, 0.0];
        let truth = aggregate_exact(&kernel, &ps, &w, &q);
        assert!(truth < 0.0);
        assert!((eval.exact(&q) - truth).abs() < 1e-9);
        assert!(!(eval.tkaq(&q, truth + 0.1)));
        assert!(eval.tkaq(&q, truth - 0.1));
    }

    #[test]
    #[should_panic]
    fn query_dim_mismatch_panics() {
        let ps = clustered_points(10, 3, 17);
        let eval =
            Evaluator::<Rect>::build(&ps, &[1.0; 10], Kernel::gaussian(1.0), BoundMethod::Karl, 4);
        eval.tkaq(&[0.0, 0.0], 1.0);
    }

    #[test]
    #[should_panic]
    fn all_zero_weights_panics() {
        let ps = clustered_points(5, 2, 18);
        Evaluator::<Rect>::build(&ps, &[0.0; 5], Kernel::gaussian(1.0), BoundMethod::Karl, 4);
    }

    #[test]
    fn zero_weight_points_are_dropped() {
        let ps = clustered_points(20, 2, 19);
        let mut w = vec![1.0; 20];
        for wi in w.iter_mut().take(10) {
            *wi = 0.0;
        }
        let eval = Evaluator::<Rect>::build(&ps, &w, Kernel::gaussian(1.0), BoundMethod::Karl, 4);
        assert_eq!(eval.len(), 10);
    }

    #[test]
    fn within_query_respects_absolute_tolerance() {
        let ps = clustered_points(300, 2, 21);
        let w = mixed_weights(300, 22);
        let kernel = Kernel::gaussian(0.9);
        let eval = Evaluator::<Rect>::build(&ps, &w, kernel, BoundMethod::Karl, 8);
        for i in 0..10 {
            let q = ps.point(i * 29).to_vec();
            let truth = aggregate_exact(&kernel, &ps, &w, &q);
            for tol in [2.0, 0.2, 0.002] {
                let (est, half) = eval.within(&q, tol);
                assert!(half <= tol / 2.0 + 1e-12, "half-width {half} > tol/2");
                assert!((est - truth).abs() <= half + 1e-9 * (1.0 + truth.abs()));
            }
        }
    }

    #[test]
    fn trace_ekaq_ends_within_contract() {
        let ps = clustered_points(400, 2, 23);
        let w = vec![1.0; 400];
        let kernel = Kernel::gaussian(0.4);
        let eval = Evaluator::<Rect>::build(&ps, &w, kernel, BoundMethod::Karl, 8);
        let q = ps.point(5).to_vec();
        let truth = aggregate_exact(&kernel, &ps, &w, &q);
        let (est, trace) = eval.trace_ekaq(&q, 0.2);
        assert!(!trace.is_empty());
        assert!(est >= 0.8 * truth - 1e-12 && est <= 1.2 * truth + 1e-12);
        let last = trace.last().unwrap();
        assert!(last.ub <= (1.0 + 0.2) * last.lb + 1e-12 || last.ub <= last.lb + 1e-12);
    }

    #[test]
    fn scratch_reuse_is_bit_identical_to_fresh_runs() {
        let ps = clustered_points(300, 3, 42);
        let w = mixed_weights(300, 43);
        let kernel = Kernel::gaussian(0.6);
        let eval = Evaluator::<Rect>::build(&ps, &w, kernel, BoundMethod::Karl, 8);
        let mut scratch = Scratch::new();
        let queries = clustered_points(20, 3, 44);
        for q in queries.iter() {
            for query in [
                Query::Tkaq { tau: 0.3 },
                Query::Ekaq { eps: 0.1 },
                Query::Within { tol: 0.05 },
            ] {
                let fresh = eval.run_query(q, query, None);
                let reused = eval.run_with_scratch(q, query, None, &mut scratch);
                assert_eq!(fresh, reused, "{query:?}");
            }
        }
        assert!(scratch.trace().is_empty(), "untraced runs record no trace");
    }

    #[test]
    fn scratch_cache_toggle_is_bit_identical() {
        // Cache-on and cache-off scratches must produce identical outcomes
        // and identical traces on the same query stream (with duplicates,
        // so the cache actually gets hits).
        let ps = clustered_points(300, 3, 45);
        let w = mixed_weights(300, 46);
        let kernel = Kernel::gaussian(0.6);
        let eval = Evaluator::<Rect>::build(&ps, &w, kernel, BoundMethod::Karl, 8);
        let mut on = Scratch::new();
        let mut off = Scratch::new();
        on.set_envelope_cache(true);
        assert!(on.envelope_cache_enabled());
        assert!(!off.envelope_cache_enabled(), "cache is opt-in");
        let queries = clustered_points(10, 3, 47);
        for pass in 0..2 {
            for q in queries.iter() {
                for query in [
                    Query::Tkaq { tau: 0.2 },
                    Query::Ekaq { eps: 0.1 },
                    Query::Within { tol: 0.05 },
                ] {
                    let a = eval.run_with_scratch(q, query, None, &mut on);
                    let b = eval.run_with_scratch(q, query, None, &mut off);
                    assert_eq!(a, b, "pass {pass} {query:?}");
                    let ta = eval.trace_run_with_scratch_on(Engine::Frozen, q, query, &mut on);
                    let trace_a: Vec<TraceStep> = on.trace().to_vec();
                    let tb = eval.trace_run_with_scratch_on(Engine::Frozen, q, query, &mut off);
                    assert_eq!(ta, tb, "pass {pass} {query:?} traced");
                    assert_eq!(trace_a.as_slice(), off.trace(), "pass {pass} {query:?} trace");
                }
            }
        }
    }

    #[test]
    fn reset_with_capacity_cap_shrinks_oversized_buffers() {
        // Grow a scratch well past a small cap on a real workload, then
        // check the shrink policy: every buffer lands at or below the cap,
        // and subsequent runs still produce identical results.
        let ps = clustered_points(2000, 3, 48);
        let w = vec![1.0 / 2000.0; 2000];
        let kernel = Kernel::gaussian(0.2);
        let eval = Evaluator::<Rect>::build(&ps, &w, kernel, BoundMethod::Karl, 2);
        let mut scratch = Scratch::new();
        let q = ps.point(0).to_vec();
        // A tight Within query forces deep refinement → large buffers.
        let want = eval.run_with_scratch(&q, Query::Within { tol: 1e-9 }, None, &mut scratch);
        let grown = scratch.heap.capacity();
        assert!(grown > 8, "workload too small to grow the heap ({grown})");

        let cap = 8usize;
        scratch.reset_with_capacity_cap(cap);
        assert!(scratch.heap.capacity() <= cap);
        assert!(scratch.trace.capacity() <= cap);
        assert!(scratch.frontier.capacity() <= cap);
        assert!(scratch.intervals.capacity() <= cap);
        assert!(scratch.env_cache.capacity() <= cap);
        assert!(scratch.heap.is_empty() && scratch.trace.is_empty());

        // Within-cap buffers are left alone by a larger cap.
        let big = 1 << 20;
        scratch.reset_with_capacity_cap(big);
        assert!(scratch.heap.capacity() <= cap.max(8));

        // And the scratch still evaluates identically after shrinking.
        let again = eval.run_with_scratch(&q, Query::Within { tol: 1e-9 }, None, &mut scratch);
        assert_eq!(want, again);
    }

    /// The `stats`-gated proof that the envelope cache actually removes
    /// transcendental work: a canned clustered workload with repeated
    /// queries must cost strictly fewer `Curve::value` calls with the
    /// cache on than off, with the difference visible as cache hits.
    #[cfg(feature = "stats")]
    #[test]
    fn stats_cache_reduces_curve_value_calls_on_clustered_workload() {
        let ps = clustered_points(400, 3, 49);
        let w = vec![1.0 / 400.0; 400];
        let kernel = Kernel::gaussian(0.5);
        let eval = Evaluator::<Rect>::build(&ps, &w, kernel, BoundMethod::Karl, 8);
        // 6 distinct clustered queries, each issued 4 times — the canned
        // duplicate-heavy stream the memoization targets.
        let base = clustered_points(6, 3, 50);
        let queries: Vec<Vec<f64>> = (0..24).map(|i| base.point(i % 6).to_vec()).collect();

        let mut on = Scratch::new();
        let mut off = Scratch::new();
        on.set_envelope_cache(true);
        for q in &queries {
            eval.run_with_scratch(q, Query::Ekaq { eps: 0.1 }, None, &mut on);
            eval.run_with_scratch(q, Query::Ekaq { eps: 0.1 }, None, &mut off);
        }
        let stats_on = on.stats();
        let stats_off = off.stats();

        assert_eq!(stats_on.nodes_refined, stats_off.nodes_refined);
        assert!(stats_on.cache_hits > 0, "duplicate queries must hit");
        assert_eq!(stats_off.cache_hits, 0);
        assert_eq!(stats_off.cache_misses, 0);
        assert!(
            stats_on.curve_value_calls < stats_off.curve_value_calls,
            "cache on: {} value calls, off: {}",
            stats_on.curve_value_calls,
            stats_off.curve_value_calls
        );
        assert!(
            stats_on.envelopes_built < stats_off.envelopes_built,
            "hits must skip envelope construction"
        );
        assert_eq!(
            stats_on.envelopes_built,
            stats_on.cache_misses,
            "with the cache on, every construction is a miss"
        );
    }

    #[test]
    fn equal_gap_entries_refine_deterministically() {
        // A perfectly symmetric point set makes sibling gaps collide; the
        // (gap, node, negated) tie-break must still give a reproducible
        // trace.
        let ps = PointSet::from_rows(&[
            vec![-1.0, 0.0],
            vec![1.0, 0.0],
            vec![0.0, -1.0],
            vec![0.0, 1.0],
        ]);
        let w = vec![1.0, 1.0, -1.0, -1.0];
        let eval = Evaluator::<Rect>::build(&ps, &w, Kernel::gaussian(0.5), BoundMethod::Karl, 1);
        let q = [0.0, 0.0];
        let (_, t1) = eval.trace_tkaq(&q, 0.1);
        let (_, t2) = eval.trace_tkaq(&q, 0.1);
        assert_eq!(t1, t2);
    }

    #[test]
    fn from_trees_wraps_prebuilt_indexes() {
        let ps = clustered_points(100, 2, 24);
        let w = vec![1.0; 100];
        let kernel = Kernel::gaussian(1.0);
        let tree = karl_tree::Tree::<Rect>::build(ps.clone(), &w, 8);
        let eval = Evaluator::from_trees(Some(tree), None, kernel, BoundMethod::Karl);
        let q = ps.point(0).to_vec();
        let truth = aggregate_exact(&kernel, &ps, &w, &q);
        assert!((eval.exact(&q) - truth).abs() < 1e-9);
        assert_eq!(eval.dims(), 2);
    }

    #[test]
    #[should_panic]
    fn from_trees_requires_a_tree() {
        Evaluator::<Rect>::from_trees(None, None, Kernel::gaussian(1.0), BoundMethod::Karl);
    }

    #[test]
    fn laplacian_kernel_queries_are_exact() {
        let ps = clustered_points(250, 3, 25);
        let w = vec![0.7; 250];
        let kernel = Kernel::laplacian(2.0);
        let eval = Evaluator::<Rect>::build(&ps, &w, kernel, BoundMethod::Karl, 8);
        for i in 0..8 {
            let q = ps.point(i * 31).to_vec();
            let truth = aggregate_exact(&kernel, &ps, &w, &q);
            assert!(!(eval.tkaq(&q, truth * 1.02)));
            assert!(eval.tkaq(&q, truth * 0.98));
        }
    }

    #[test]
    fn polynomial_overflow_keeps_intervals_finite_and_correct() {
        // Coordinates of 3e102 keep every *per-point* kernel value finite
        // (⟨q,p⟩³ = 2.7e307), but the root rect corner (3e102, 3e102) maps
        // to ⟨q,corner⟩³ = inf. Without envelope saturation that ±inf node
        // bound turns the global interval into NaN via `inf − inf`; with
        // it every certified interval stays finite and encloses the exact
        // aggregate.
        let ps = PointSet::new(2, vec![3e102, 0.0, 0.0, 3e102]);
        let w = vec![1.0, 1.0];
        let kernel = Kernel::polynomial(1.0, 0.0, 3);
        let exact = aggregate_exact(&kernel, &ps, &w, &[1.0, 1.0]);
        assert!(exact.is_finite());
        for method in [BoundMethod::Karl, BoundMethod::Sota] {
            let eval = Evaluator::<Rect>::build(&ps, &w, kernel, method, 1);
            let out = eval.run_query(&[1.0, 1.0], Query::Within { tol: 1.0 }, None);
            assert!(
                out.lb.is_finite() && out.ub.is_finite(),
                "{method:?} interval poisoned: [{}, {}]",
                out.lb,
                out.ub
            );
            assert!(out.lb <= exact && exact <= out.ub, "{method:?}");
        }
    }

    karl_testkit::props! {
        /// TKAQ must agree with the scan ground truth for random mixed-sign
        /// workloads, kernels and thresholds.
        #[test]
        fn prop_tkaq_agrees_with_scan(
            seed in 0u64..40,
            kid in 0usize..3,
            tau_off in -1.0f64..1.0,
            leaf_cap in 1usize..20,
        ) {
            let n = 120;
            let ps = clustered_points(n, 2, seed);
            let w = mixed_weights(n, seed + 1000);
            let kernel = [
                Kernel::gaussian(0.7),
                Kernel::polynomial(0.4, 0.3, 3),
                Kernel::sigmoid(0.6, 0.1),
            ][kid];
            let eval = Evaluator::<Rect>::build(&ps, &w, kernel, BoundMethod::Karl, leaf_cap);
            let q = ps.point(seed as usize % n).to_vec();
            let truth = aggregate_exact(&kernel, &ps, &w, &q);
            // Keep τ away from the exact value to avoid FP-tie flakiness.
            let tau = truth + tau_off.signum() * (0.01 + tau_off.abs());
            prop_assert_eq!(eval.tkaq(&q, tau), truth >= tau);
        }

        /// eKAQ estimates respect the ε contract on positive aggregates.
        #[test]
        fn prop_ekaq_within_eps(
            seed in 0u64..40,
            eps in 0.02f64..0.6,
            ball in karl_testkit::props::bools(),
        ) {
            let n = 200;
            let ps = clustered_points(n, 2, seed);
            let w = vec![1.0; n];
            let kernel = Kernel::gaussian(0.5);
            let q = ps.point((seed as usize * 7) % n).to_vec();
            let truth = aggregate_exact(&kernel, &ps, &w, &q);
            let est = if ball {
                Evaluator::<Ball>::build(&ps, &w, kernel, BoundMethod::Karl, 8).ekaq(&q, eps)
            } else {
                Evaluator::<Rect>::build(&ps, &w, kernel, BoundMethod::Karl, 8).ekaq(&q, eps)
            };
            prop_assert!(est >= (1.0 - eps) * truth - 1e-9);
            prop_assert!(est <= (1.0 + eps) * truth + 1e-9);
        }
    }
}
