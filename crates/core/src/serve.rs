//! The serving loop: an online query daemon over a newline-delimited JSON
//! wire, engineered to *degrade, never collapse*.
//!
//! [`Server`] accepts TKAQ / eKAQ / Within requests one line at a time,
//! coalesces them into micro-batches for the existing [`QueryBatch`]
//! engine, and composes every robustness primitive the library already
//! has into an admission-control state machine:
//!
//! * **Bounded admission queue** — beyond the high watermark
//!   ([`ServeConfig::queue_cap`]) a request is answered immediately with a
//!   typed `rejected` line ([`KarlError::Overloaded`]) instead of growing
//!   an unbounded queue.
//! * **Load shedding with certified answers** — at or above
//!   [`ServeConfig::shed_at`] pending requests, new admissions are flagged
//!   *shed*: they are evaluated under a zero-work budget and answer from
//!   the certified root interval (`status:"shed"` with `[lb, ub]`), the
//!   anytime-answer property the branch-and-bound loop guarantees at every
//!   iteration. A shed request still gets a sound interval — degraded, not
//!   dropped.
//! * **Deadline propagation** — a request's `deadline_ms` is mapped onto
//!   [`Budget::deadline_after`]: time spent queued before dispatch shrinks
//!   the refinement deadline, saturating at zero (an already-expired
//!   deadline does zero refinement work and answers from the root
//!   interval).
//! * **Per-request fault quarantine** — evaluation goes through
//!   [`QueryBatch::try_run_any`], so a poisoned request (non-finite
//!   coordinates, or an injected panic under the `fault-inject` feature)
//!   yields a typed `error` line in its own response while every other
//!   request in the same micro-batch completes bitwise-identically.
//! * **Graceful drain** — `shutdown` (and EOF) stops admitting, flushes
//!   every in-flight request, and emits a final stats summary. No admitted
//!   request is ever lost or answered twice.
//!
//! # Determinism
//!
//! The read loop is synchronous: admission decisions (admit / shed /
//! reject) are a pure function of the request script and the configured
//! watermarks, never of wall-clock time, and the batch engine is bitwise
//! deterministic at any thread count. A fixed request script therefore
//! produces a byte-identical response transcript at 1/2/4/8 worker
//! threads and under any SIMD backend — unless the script itself opts
//! into wall-clock behavior with a nonzero `deadline_ms`. (`deadline_ms`
//! of `0` is deterministic: the remaining deadline saturates to zero
//! regardless of queue time.) The one exception is the `stats` response,
//! whose snapshot embeds the *resolved* worker-thread count — that field
//! reflects configuration, every other transcript byte is a function of
//! the script. Floats are printed in Rust's shortest
//! round-trip form, so transcript numbers can be parsed back and compared
//! bit-for-bit against an offline [`QueryBatch`] run.
//!
//! # Protocol
//!
//! One JSON object per line. Blank lines and lines starting with `#` are
//! ignored. Requests:
//!
//! ```text
//! {"id":1,"op":"tkaq","tau":0.3,"q":[0.1,0.2]}
//! {"id":2,"op":"ekaq","eps":0.1,"q":[0.5,0.5],"deadline_ms":5}
//! {"id":3,"op":"within","tol":0.01,"q":[1.0,1.0]}
//! {"op":"flush"}                       dispatch pending requests now
//! {"op":"stats"}                       flush, then report counters
//! {"op":"stats","latency":true}        … plus p50/p99 (non-deterministic)
//! {"op":"shutdown"}                    drain, summarize, stop
//! ```
//!
//! `q` coordinates accept `NaN` / `Infinity` / `-Infinity` tokens, which
//! flow into the engine and come back as typed per-request errors — the
//! hermetic way to script a fault-containment exercise. Responses carry
//! the request's `id` and a `status` of `ok`, `truncated`, `shed`,
//! `rejected` or `error`; see DESIGN.md §16 for the full grammar and the
//! shed-vs-truncate policy table.

use std::fmt::Write as _;
use std::io::{self, BufRead, Write};
use std::time::{Duration, Instant};

use karl_geom::PointSet;

use crate::batch::{resolve_threads, BatchReport, QueryBatch};
use crate::error::KarlError;
use crate::eval::{Budget, Outcome, Query, TruncateReason};
use crate::tuning::AnyEvaluator;

// ---------------------------------------------------------------------------
// Minimal JSON: value model, parser, emit helpers
// ---------------------------------------------------------------------------

/// A parsed JSON value. Dialect note: numbers additionally accept the
/// bare tokens `NaN`, `Infinity` and `-Infinity` (and the writer emits
/// them), so query coordinates round-trip through the wire with full
/// `f64` fidelity — including the non-finite values the fault-containment
/// path exists for.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number (possibly NaN/±∞ in this dialect).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object as an ordered key/value list (first occurrence wins on
    /// duplicate keys).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on an object (None on non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The bool, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Parses one JSON value (the wire dialect above) from `s`, rejecting
/// trailing garbage. Errors are human-readable with a byte offset.
pub fn parse_json(s: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing characters at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, token: &str) -> bool {
        if self.bytes[self.pos..].starts_with(token.as_bytes()) {
            self.pos += token.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            None => Err("unexpected end of input".into()),
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') if self.eat("true") => Ok(Json::Bool(true)),
            Some(b'f') if self.eat("false") => Ok(Json::Bool(false)),
            Some(b'n') if self.eat("null") => Ok(Json::Null),
            Some(b'N') if self.eat("NaN") => Ok(Json::Num(f64::NAN)),
            Some(b'I') if self.eat("Infinity") => Ok(Json::Num(f64::INFINITY)),
            Some(b'-') if self.bytes[self.pos..].starts_with(b"-Infinity") => {
                self.pos += "-Infinity".len();
                Ok(Json::Num(f64::NEG_INFINITY))
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(format!(
                "unexpected character {:?} at byte {}",
                b as char, self.pos
            )),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.pos += 1; // '{'
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(format!("expected object key at byte {}", self.pos));
            }
            let key = self.string()?;
            self.skip_ws();
            if self.peek() != Some(b':') {
                return Err(format!("expected ':' at byte {}", self.pos));
            }
            self.pos += 1;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.pos += 1; // '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.pos += 1; // '"'
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8 sequences pass through untouched:
                    // find the char at this byte position in the source str.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8 in string")?;
                    let c = rest.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let token = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        token
            .parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number {token:?} at byte {start}"))
    }
}

/// Appends `v` to `out` in the wire dialect: Rust's shortest round-trip
/// decimal form for finite values (parsing it back with `str::parse`
/// recovers the exact bits), `NaN` / `Infinity` / `-Infinity` otherwise.
pub fn push_num(out: &mut String, v: f64) {
    if v.is_nan() {
        out.push_str("NaN");
    } else if v == f64::INFINITY {
        out.push_str("Infinity");
    } else if v == f64::NEG_INFINITY {
        out.push_str("-Infinity");
    } else {
        let _ = write!(out, "{v}");
    }
}

/// Appends `s` to `out` as a quoted, escaped JSON string.
pub fn push_str_json(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Stats: shared schema, latency histogram
// ---------------------------------------------------------------------------

/// The counter set shared between `karl serve`'s `stats` verb and
/// `karl batch --stats-json` — one schema (`karl-stats-v1`) for both, so
/// dashboards built on batch output read serve metrics unchanged. For a
/// batch run, every query is trivially "admitted" in one micro-batch and
/// the admission-control counters (`rejected`, `shed`, `protocol_errors`)
/// are zero.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Query requests seen (admitted + rejected); batch: the batch size.
    pub queries: u64,
    /// Requests accepted into the pending queue.
    pub admitted: u64,
    /// Requests refused with a typed `Overloaded` rejection.
    pub rejected: u64,
    /// Admitted requests answered under the zero-work shed budget.
    pub shed: u64,
    /// Requests that ran to normal termination (not truncated).
    pub completed: u64,
    /// Requests answered from a certified interval at budget exhaustion
    /// (excluding shed requests, which are counted in `shed`).
    pub truncated: u64,
    /// Requests whose evaluation failed inside the containment boundary
    /// (non-finite coordinates, injected panics).
    pub faulted: u64,
    /// Malformed request lines (unparseable JSON, bad fields, unknown
    /// verbs, wrong dimensionality).
    pub protocol_errors: u64,
    /// Micro-batches dispatched to the engine.
    pub batches: u64,
    /// High-water mark of the pending queue.
    pub queue_depth_max: u64,
    /// Worker threads per micro-batch.
    pub threads: u64,
}

/// Renders the shared `karl-stats-v1` object with a fixed key order (the
/// field order of [`StatsSnapshot`]). Byte-stable: two identical runs
/// produce identical bytes.
pub fn stats_json(s: &StatsSnapshot) -> String {
    let mut out = String::with_capacity(256);
    push_stats_object(&mut out, s, None);
    out
}

/// [`stats_json`] plus the [`RunStats`](crate::eval::RunStats) engine
/// counters as a nested `"run"` object (the `stats` build feature).
#[cfg(feature = "stats")]
pub fn stats_json_with_run(s: &StatsSnapshot, run: &crate::eval::RunStats) -> String {
    let mut out = String::with_capacity(512);
    push_stats_object(&mut out, s, Some(run));
    out
}

#[cfg(not(feature = "stats"))]
type RunRef<'a> = &'a ();
#[cfg(feature = "stats")]
type RunRef<'a> = &'a crate::eval::RunStats;

fn push_stats_object(out: &mut String, s: &StatsSnapshot, run: Option<RunRef<'_>>) {
    let _ = write!(
        out,
        "{{\"schema\":\"karl-stats-v1\",\"queries\":{},\"admitted\":{},\"rejected\":{},\
         \"shed\":{},\"completed\":{},\"truncated\":{},\"faulted\":{},\
         \"protocol_errors\":{},\"batches\":{},\"queue_depth_max\":{},\"threads\":{}",
        s.queries,
        s.admitted,
        s.rejected,
        s.shed,
        s.completed,
        s.truncated,
        s.faulted,
        s.protocol_errors,
        s.batches,
        s.queue_depth_max,
        s.threads
    );
    #[cfg(feature = "stats")]
    if let Some(r) = run {
        let _ = write!(
            out,
            ",\"run\":{{\"nodes_refined\":{},\"envelopes_built\":{},\"cache_hits\":{},\
             \"cache_misses\":{},\"curve_value_calls\":{},\"dual_pairs_scored\":{},\
             \"dual_wholesale_decided\":{},\"coreset_decided\":{},\
             \"coreset_fallthrough\":{},\"simd_backend\":",
            r.nodes_refined,
            r.envelopes_built,
            r.cache_hits,
            r.cache_misses,
            r.curve_value_calls,
            r.dual_pairs_scored,
            r.dual_wholesale_decided,
            r.coreset_decided,
            r.coreset_fallthrough
        );
        push_str_json(out, &r.simd_backend.to_string());
        out.push('}');
    }
    #[cfg(not(feature = "stats"))]
    let _ = run;
    out.push('}');
}

/// A power-of-two-bucket latency histogram (microseconds). Bucket `i`
/// covers `[2^(i-1), 2^i)` µs (bucket 0 is `< 1 µs`); quantiles report
/// the upper edge of the bucket the target rank lands in — coarse, but
/// allocation-free and O(1) per record, which is what a per-request hot
/// path wants.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    buckets: [u64; 40],
    count: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: [0; 40],
            count: 0,
        }
    }
}

impl LatencyHistogram {
    /// Records one latency observation.
    pub fn record(&mut self, elapsed: Duration) {
        let us = elapsed.as_micros().min(u128::from(u64::MAX)) as u64;
        let bucket = if us == 0 {
            0
        } else {
            (64 - us.leading_zeros() as usize).min(self.buckets.len() - 1)
        };
        self.buckets[bucket] += 1;
        self.count += 1;
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The upper bucket edge (µs) at quantile `q` in `[0, 1]`; 0 when
    /// empty.
    pub fn quantile_us(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return if i == 0 { 1 } else { 1u64 << i };
            }
        }
        1u64 << (self.buckets.len() - 1)
    }
}

/// Serve-side counters: the shared [`StatsSnapshot`] fields plus the
/// latency histogram and (under the `stats` feature) the accumulated
/// engine [`RunStats`](crate::eval::RunStats).
#[derive(Debug, Clone, Default)]
pub struct ServeStats {
    /// Query requests seen (admitted + rejected).
    pub queries: u64,
    /// Requests accepted into the pending queue.
    pub admitted: u64,
    /// Requests refused with a typed `Overloaded` rejection.
    pub rejected: u64,
    /// Admitted requests answered under the zero-work shed budget.
    pub shed: u64,
    /// Requests that ran to normal termination.
    pub completed: u64,
    /// Budget-truncated requests (excluding shed).
    pub truncated: u64,
    /// Contained per-request evaluation failures.
    pub faulted: u64,
    /// Malformed request lines.
    pub protocol_errors: u64,
    /// Micro-batches dispatched.
    pub batches: u64,
    /// Pending-queue high-water mark.
    pub queue_depth_max: u64,
    /// Admission-to-response latency histogram.
    pub latency: LatencyHistogram,
    /// Engine counters accumulated across micro-batches.
    #[cfg(feature = "stats")]
    pub run: crate::eval::RunStats,
}

impl ServeStats {
    /// The shared-schema counter snapshot (see [`StatsSnapshot`]).
    pub fn snapshot(&self, threads: u64) -> StatsSnapshot {
        StatsSnapshot {
            queries: self.queries,
            admitted: self.admitted,
            rejected: self.rejected,
            shed: self.shed,
            completed: self.completed,
            truncated: self.truncated,
            faulted: self.faulted,
            protocol_errors: self.protocol_errors,
            batches: self.batches,
            queue_depth_max: self.queue_depth_max,
            threads,
        }
    }

    /// Median admission-to-response latency (µs, bucket upper edge).
    pub fn p50_us(&self) -> u64 {
        self.latency.quantile_us(0.50)
    }

    /// 99th-percentile admission-to-response latency (µs, bucket upper
    /// edge).
    pub fn p99_us(&self) -> u64 {
        self.latency.quantile_us(0.99)
    }
}

// ---------------------------------------------------------------------------
// Configuration and server
// ---------------------------------------------------------------------------

/// Admission-control configuration for a [`Server`].
///
/// Invariant (checked by [`Server::new`]): `queue_cap >= 1` and
/// `batch_max >= 1`. The watermarks compose as `shed_at <= queue_cap`
/// for shedding to be reachable (a request is rejected before it could
/// be shed once the queue is full) and `batch_max <= queue_cap` for
/// dispatch to trigger before rejection in steady state; both are
/// allowed to violate those inequalities deliberately — e.g. tests set
/// `batch_max > queue_cap` to force an overflow burst.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Admission-queue high watermark: at this depth new requests are
    /// rejected with [`KarlError::Overloaded`].
    pub queue_cap: usize,
    /// Shed watermark: at or above this pending depth, new admissions are
    /// answered under the zero-work budget (certified root interval).
    pub shed_at: usize,
    /// Micro-batch size: pending requests are dispatched to the engine as
    /// soon as this many are queued (or on `flush`/`stats`/`shutdown`/EOF).
    pub batch_max: usize,
    /// Worker threads per micro-batch (`None`: `KARL_THREADS`, then
    /// available parallelism — see
    /// [`resolve_threads`](crate::batch::resolve_threads)).
    pub threads: Option<usize>,
    /// Base per-request refinement budget; a request's `deadline_ms`
    /// tightens it via [`Budget::deadline_after`].
    pub budget: Budget,
    /// Emit a `# serve …` summary line to the log sink every N admitted
    /// requests (0: only the final summary).
    pub summary_every: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            queue_cap: 1024,
            shed_at: 768,
            batch_max: 64,
            threads: None,
            budget: Budget::UNLIMITED,
            summary_every: 0,
        }
    }
}

/// A request admitted to the pending queue.
#[derive(Debug)]
struct Pending {
    id: u64,
    query: Query,
    q: Vec<f64>,
    shed: bool,
    deadline: Option<Duration>,
    admitted_at: Instant,
}

/// A decoded request line.
enum Request {
    Query {
        id: u64,
        query: Query,
        q: Vec<f64>,
        deadline: Option<Duration>,
    },
    Flush,
    Stats {
        id: Option<u64>,
        latency: bool,
    },
    Shutdown {
        id: Option<u64>,
    },
}

/// The online query daemon: wraps an [`AnyEvaluator`] with the
/// admission-control state machine described in the
/// [module docs](crate::serve), generic over its transport
/// (`BufRead` in, `Write` out, plus a log sink for human-facing summary
/// lines that must stay off the response stream).
#[derive(Debug)]
pub struct Server<'a> {
    eval: &'a AnyEvaluator,
    cfg: ServeConfig,
    pending: Vec<Pending>,
    /// Requests handed to the engine so far, in dispatch order; under
    /// `fault-inject` this is the base for plan lookups, so plan indices
    /// address dispatch ordinals across micro-batches.
    dispatched: u64,
    stats: ServeStats,
    shutdown: bool,
}

impl<'a> Server<'a> {
    /// Builds a server over `eval`, validating `cfg`.
    pub fn new(eval: &'a AnyEvaluator, cfg: ServeConfig) -> Result<Self, KarlError> {
        if cfg.queue_cap == 0 {
            return Err(KarlError::InvalidConfig {
                reason: "queue capacity must be at least 1".into(),
            });
        }
        if cfg.batch_max == 0 {
            return Err(KarlError::InvalidConfig {
                reason: "micro-batch size must be at least 1".into(),
            });
        }
        if let Some(0) = cfg.threads {
            return Err(KarlError::InvalidConfig {
                reason: "thread count must be at least 1".into(),
            });
        }
        Ok(Server {
            eval,
            cfg,
            pending: Vec::new(),
            dispatched: 0,
            stats: ServeStats::default(),
            shutdown: false,
        })
    }

    /// The counters accumulated so far (across [`run`](Self::run) calls —
    /// a server reused over several connections keeps counting).
    pub fn stats(&self) -> &ServeStats {
        &self.stats
    }

    /// Whether a `shutdown` request ended the last [`run`](Self::run).
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown
    }

    /// Runs the request loop until `shutdown` or EOF: reads one
    /// newline-delimited JSON request per line from `reader`, writes one
    /// response line per query to `out`, and human-facing summary lines to
    /// `log`. On return every admitted request has been answered exactly
    /// once (graceful drain). Only transport I/O errors abort the loop;
    /// malformed requests and poisoned queries get typed response lines.
    pub fn run<R: BufRead, W: Write, L: Write>(
        &mut self,
        mut reader: R,
        mut out: W,
        mut log: L,
    ) -> io::Result<()> {
        self.shutdown = false;
        let threads = resolve_threads(self.cfg.threads);
        writeln!(
            log,
            "# karl serve ready: {} points x {} dims, queue {} shed {} batch {} threads {}",
            self.eval.len(),
            self.eval.dims(),
            self.cfg.queue_cap,
            self.cfg.shed_at,
            self.cfg.batch_max,
            threads
        )?;
        let mut line = String::new();
        let mut line_no = 0u64;
        loop {
            line.clear();
            if reader.read_line(&mut line)? == 0 {
                break; // EOF: drain below.
            }
            line_no += 1;
            let text = line.trim();
            if text.is_empty() || text.starts_with('#') {
                continue;
            }
            let value = match parse_json(text) {
                Ok(v) => v,
                Err(reason) => {
                    self.stats.protocol_errors += 1;
                    let e = KarlError::Protocol { reason };
                    write_error_line(&mut out, None, Some(line_no), &e)?;
                    continue;
                }
            };
            match decode_request(&value, self.eval.dims()) {
                Err((id, e)) => {
                    self.stats.protocol_errors += 1;
                    write_error_line(&mut out, id, Some(line_no), &e)?;
                }
                Ok(Request::Query {
                    id,
                    query,
                    q,
                    deadline,
                }) => {
                    self.stats.queries += 1;
                    if self.pending.len() >= self.cfg.queue_cap {
                        self.stats.rejected += 1;
                        let e = KarlError::Overloaded {
                            capacity: self.cfg.queue_cap,
                        };
                        let mut resp = String::with_capacity(64);
                        let _ = write!(resp, "{{\"id\":{id},\"status\":\"rejected\",\"error\":");
                        push_str_json(&mut resp, &e.to_string());
                        resp.push_str("}\n");
                        out.write_all(resp.as_bytes())?;
                        out.flush()?;
                        continue;
                    }
                    let shed = self.pending.len() >= self.cfg.shed_at;
                    if shed {
                        self.stats.shed += 1;
                    }
                    self.stats.admitted += 1;
                    self.pending.push(Pending {
                        id,
                        query,
                        q,
                        shed,
                        deadline,
                        admitted_at: Instant::now(),
                    });
                    self.stats.queue_depth_max =
                        self.stats.queue_depth_max.max(self.pending.len() as u64);
                    if self.pending.len() >= self.cfg.batch_max {
                        self.flush(&mut out)?;
                    }
                    if self.cfg.summary_every > 0
                        && self.stats.admitted.is_multiple_of(self.cfg.summary_every)
                    {
                        self.write_summary(&mut log, threads)?;
                    }
                }
                Ok(Request::Flush) => self.flush(&mut out)?,
                Ok(Request::Stats { id, latency }) => {
                    // Flush first so the counters describe a settled queue
                    // (and the response order stays deterministic).
                    self.flush(&mut out)?;
                    let mut resp = String::with_capacity(256);
                    resp.push('{');
                    if let Some(id) = id {
                        let _ = write!(resp, "\"id\":{id},");
                    }
                    resp.push_str("\"status\":\"stats\"");
                    if latency {
                        let _ = write!(
                            resp,
                            ",\"p50_us\":{},\"p99_us\":{}",
                            self.stats.p50_us(),
                            self.stats.p99_us()
                        );
                    }
                    resp.push_str(",\"stats\":");
                    let snap = self.stats.snapshot(threads as u64);
                    #[cfg(feature = "stats")]
                    resp.push_str(&stats_json_with_run(&snap, &self.stats.run));
                    #[cfg(not(feature = "stats"))]
                    resp.push_str(&stats_json(&snap));
                    resp.push_str("}\n");
                    out.write_all(resp.as_bytes())?;
                    out.flush()?;
                }
                Ok(Request::Shutdown { id }) => {
                    let draining = self.pending.len();
                    self.flush(&mut out)?;
                    let mut resp = String::with_capacity(64);
                    resp.push('{');
                    if let Some(id) = id {
                        let _ = write!(resp, "\"id\":{id},");
                    }
                    let _ = write!(
                        resp,
                        "\"status\":\"shutdown\",\"admitted\":{},\"drained\":{draining}}}",
                        self.stats.admitted
                    );
                    resp.push('\n');
                    out.write_all(resp.as_bytes())?;
                    out.flush()?;
                    self.shutdown = true;
                    break;
                }
            }
        }
        // Graceful drain: stop admitting (the loop has exited), answer
        // everything already admitted, summarize.
        self.flush(&mut out)?;
        self.write_summary(&mut log, threads)?;
        Ok(())
    }

    /// Dispatches every pending request as micro-batch groups and writes
    /// the responses in admission order.
    fn flush<W: Write>(&mut self, out: &mut W) -> io::Result<()> {
        if self.pending.is_empty() {
            return Ok(());
        }
        let pend = std::mem::take(&mut self.pending);
        self.stats.batches += 1;
        let dims = self.eval.dims();
        let mut responses: Vec<String> = vec![String::new(); pend.len()];
        // Group by (query spec, effective budget): the engine evaluates
        // one spec per batch. Groups preserve first-seen order, members
        // preserve admission order, and responses are written back in
        // admission order regardless of grouping.
        let mut groups: Vec<(Query, Budget, Vec<usize>)> = Vec::new();
        for (i, p) in pend.iter().enumerate() {
            let budget = self.effective_budget(p);
            match groups
                .iter_mut()
                .find(|(q, b, _)| *q == p.query && *b == budget)
            {
                Some((_, _, members)) => members.push(i),
                None => groups.push((p.query, budget, vec![i])),
            }
        }
        for (query, budget, members) in &groups {
            let mut flat = Vec::with_capacity(members.len() * dims);
            for &i in members {
                flat.extend_from_slice(&pend[i].q);
            }
            let queries = PointSet::new(dims, flat);
            let mut spec = QueryBatch::new(&queries, *query).budget(*budget);
            if let Some(t) = self.cfg.threads {
                spec = spec.threads(t);
            }
            #[cfg(feature = "fault-inject")]
            crate::fault::set_base(self.dispatched as usize);
            match spec.try_run_any(self.eval) {
                Ok(report) => {
                    #[cfg(feature = "stats")]
                    self.stats.run.merge(&report.stats());
                    for (slot, &i) in members.iter().enumerate() {
                        responses[i] =
                            render_response(&pend[i], *query, &report, slot, &mut self.stats);
                    }
                }
                Err(e) => {
                    // Batch-level defects cannot occur here (dims and spec
                    // are validated at admission), but if one ever does,
                    // degrade it to per-request typed errors rather than
                    // killing the daemon.
                    for &i in members {
                        self.stats.faulted += 1;
                        responses[i] = error_response(pend[i].id, &e);
                    }
                }
            }
            self.dispatched += members.len() as u64;
        }
        #[cfg(feature = "fault-inject")]
        crate::fault::set_base(0);
        for (i, resp) in responses.iter().enumerate() {
            self.stats.latency.record(pend[i].admitted_at.elapsed());
            out.write_all(resp.as_bytes())?;
        }
        out.flush()
    }

    /// The budget a pending request runs under: the zero-work shed budget
    /// for shed requests, the base budget tightened by the remaining
    /// deadline for deadline requests, the base budget otherwise.
    fn effective_budget(&self, p: &Pending) -> Budget {
        if p.shed {
            return Budget::unlimited().max_nodes(0);
        }
        match p.deadline {
            Some(total) => self.cfg.budget.deadline_after(total, p.admitted_at.elapsed()),
            None => self.cfg.budget,
        }
    }

    fn write_summary<L: Write>(&self, log: &mut L, threads: usize) -> io::Result<()> {
        writeln!(
            log,
            "# serve admitted {} rejected {} shed {} completed {} truncated {} faulted {} \
             protocol_errors {} batches {} depth_max {} threads {} p50_us {} p99_us {}",
            self.stats.admitted,
            self.stats.rejected,
            self.stats.shed,
            self.stats.completed,
            self.stats.truncated,
            self.stats.faulted,
            self.stats.protocol_errors,
            self.stats.batches,
            self.stats.queue_depth_max,
            threads,
            self.stats.p50_us(),
            self.stats.p99_us()
        )
    }
}

// ---------------------------------------------------------------------------
// Request decoding and response rendering
// ---------------------------------------------------------------------------

fn proto(reason: impl Into<String>) -> KarlError {
    KarlError::Protocol {
        reason: reason.into(),
    }
}

/// Extracts a non-negative integer id (exact in f64) from a member.
fn decode_id(v: &Json) -> Result<u64, KarlError> {
    let n = v
        .as_f64()
        .ok_or_else(|| proto("\"id\" must be a number"))?;
    if !(n.is_finite() && n >= 0.0 && n.fract() == 0.0 && n <= 9_007_199_254_740_992.0) {
        return Err(proto(format!("\"id\" must be a non-negative integer (got {n})")));
    }
    Ok(n as u64)
}

fn decode_request(value: &Json, dims: usize) -> Result<Request, (Option<u64>, KarlError)> {
    if !matches!(value, Json::Obj(_)) {
        return Err((None, proto("request must be a JSON object")));
    }
    let id = match value.get("id") {
        None => None,
        Some(v) => Some(decode_id(v).map_err(|e| (None, e))?),
    };
    let op = value
        .get("op")
        .and_then(Json::as_str)
        .ok_or_else(|| (id, proto("missing \"op\" string")))?;
    match op {
        "flush" => Ok(Request::Flush),
        "shutdown" => Ok(Request::Shutdown { id }),
        "stats" => {
            let latency = value
                .get("latency")
                .map(|v| v.as_bool().ok_or_else(|| (id, proto("\"latency\" must be a bool"))))
                .transpose()?
                .unwrap_or(false);
            Ok(Request::Stats { id, latency })
        }
        "tkaq" | "ekaq" | "within" => {
            let id = id.ok_or_else(|| (None, proto("query requests need an \"id\"")))?;
            let fail = |e: KarlError| (Some(id), e);
            let param = |key: &str| -> Result<f64, (Option<u64>, KarlError)> {
                value
                    .get(key)
                    .and_then(Json::as_f64)
                    .ok_or_else(|| fail(proto(format!("\"{op}\" needs a numeric \"{key}\""))))
            };
            let query = match op {
                "tkaq" => Query::Tkaq { tau: param("tau")? },
                "ekaq" => Query::Ekaq { eps: param("eps")? },
                _ => Query::Within { tol: param("tol")? },
            };
            crate::error::validate_spec(query).map_err(fail)?;
            let coords = value
                .get("q")
                .and_then(Json::as_arr)
                .ok_or_else(|| fail(proto("missing \"q\" coordinate array")))?;
            let mut q = Vec::with_capacity(coords.len());
            for c in coords {
                q.push(
                    c.as_f64()
                        .ok_or_else(|| fail(proto("\"q\" must contain only numbers")))?,
                );
            }
            // Wrong dimensionality is a batch-level defect in the engine,
            // so it must be rejected here, per request. Non-finite
            // coordinates pass through on purpose: the engine contains
            // them per slot.
            if q.len() != dims {
                return Err((
                    Some(id),
                    KarlError::DimMismatch {
                        expected: dims,
                        got: q.len(),
                    },
                ));
            }
            let deadline = match value.get("deadline_ms") {
                None => None,
                Some(v) => {
                    let ms = v
                        .as_f64()
                        .filter(|ms| ms.is_finite() && *ms >= 0.0)
                        .ok_or_else(|| {
                            fail(proto("\"deadline_ms\" must be a non-negative number"))
                        })?;
                    Some(Duration::from_secs_f64(ms / 1000.0))
                }
            };
            Ok(Request::Query {
                id,
                query,
                q,
                deadline,
            })
        }
        other => Err((id, proto(format!("unknown op {other:?}")))),
    }
}

fn reason_str(reason: TruncateReason) -> &'static str {
    match reason {
        TruncateReason::NodeBudget => "nodes",
        TruncateReason::LeafBudget => "leaf-points",
        TruncateReason::Deadline => "deadline",
    }
}

fn error_response(id: u64, e: &KarlError) -> String {
    let mut s = String::with_capacity(96);
    let _ = write!(s, "{{\"id\":{id},\"status\":\"error\",\"error\":");
    push_str_json(&mut s, &e.to_string());
    s.push_str("}\n");
    s
}

fn write_error_line<W: Write>(
    out: &mut W,
    id: Option<u64>,
    line: Option<u64>,
    e: &KarlError,
) -> io::Result<()> {
    let mut s = String::with_capacity(96);
    s.push('{');
    if let Some(id) = id {
        let _ = write!(s, "\"id\":{id},");
    }
    s.push_str("\"status\":\"error\",");
    if let Some(line) = line {
        let _ = write!(s, "\"line\":{line},");
    }
    s.push_str("\"error\":");
    push_str_json(&mut s, &e.to_string());
    s.push_str("}\n");
    out.write_all(s.as_bytes())?;
    out.flush()
}

/// Renders the response line for one request slot of a finished
/// micro-batch, updating the outcome counters.
fn render_response(
    p: &Pending,
    query: Query,
    report: &BatchReport,
    slot: usize,
    stats: &mut ServeStats,
) -> String {
    match &report.results()[slot] {
        Err(e) => {
            stats.faulted += 1;
            error_response(p.id, e)
        }
        Ok(outcome) => {
            let mut s = String::with_capacity(96);
            let _ = write!(s, "{{\"id\":{}", p.id);
            if outcome.is_truncated() {
                // Shed requests report "shed" (policy truncation); organic
                // budget exhaustion reports "truncated" with the reason.
                if p.shed {
                    s.push_str(",\"status\":\"shed\"");
                } else {
                    stats.truncated += 1;
                    s.push_str(",\"status\":\"truncated\"");
                    if let Outcome::Truncated { reason, .. } = outcome {
                        let _ = write!(s, ",\"reason\":\"{}\"", reason_str(*reason));
                    }
                }
                // TKAQ cannot answer honestly from a straddling interval
                // (the batch CLI prints `?`); eKAQ/Within degrade to the
                // certified midpoint.
                if !matches!(query, Query::Tkaq { .. }) {
                    s.push_str(",\"answer\":");
                    push_num(&mut s, report.answer(outcome));
                }
                s.push_str(",\"lb\":");
                push_num(&mut s, outcome.lb());
                s.push_str(",\"ub\":");
                push_num(&mut s, outcome.ub());
            } else {
                // A shed request whose root interval already decided the
                // query completed honestly with zero work — that is an
                // "ok", not a degradation.
                stats.completed += 1;
                s.push_str(",\"status\":\"ok\",\"answer\":");
                push_num(&mut s, report.answer(outcome));
            }
            s.push_str("}\n");
            s
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_round_trips_shortest_form() {
        let v = parse_json("{\"a\":[1,2.5,-3e-2,NaN,Infinity,-Infinity],\"b\":\"x\\n\"}").unwrap();
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[1].as_f64(), Some(2.5));
        assert!(arr[3].as_f64().unwrap().is_nan());
        assert_eq!(arr[4].as_f64(), Some(f64::INFINITY));
        assert_eq!(arr[5].as_f64(), Some(f64::NEG_INFINITY));
        assert_eq!(v.get("b").unwrap().as_str(), Some("x\n"));

        let mut out = String::new();
        push_num(&mut out, 0.1 + 0.2);
        assert_eq!(out.parse::<f64>().unwrap().to_bits(), (0.1f64 + 0.2).to_bits());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_json("{").is_err());
        assert!(parse_json("{\"a\":}").is_err());
        assert!(parse_json("[1,]").is_err());
        assert!(parse_json("{} trailing").is_err());
        assert!(parse_json("nope").is_err());
    }

    #[test]
    fn stats_schema_is_byte_stable_and_ordered() {
        let snap = StatsSnapshot {
            queries: 9,
            admitted: 7,
            rejected: 2,
            shed: 1,
            completed: 5,
            truncated: 1,
            faulted: 1,
            protocol_errors: 0,
            batches: 2,
            queue_depth_max: 4,
            threads: 2,
        };
        let a = stats_json(&snap);
        assert_eq!(a, stats_json(&snap));
        assert!(a.starts_with("{\"schema\":\"karl-stats-v1\",\"queries\":9,"));
        let order = [
            "queries", "admitted", "rejected", "shed", "completed", "truncated", "faulted",
            "protocol_errors", "batches", "queue_depth_max", "threads",
        ];
        let mut last = 0;
        for key in order {
            let pos = a.find(&format!("\"{key}\":")).expect(key);
            assert!(pos > last, "{key} out of order in {a}");
            last = pos;
        }
    }

    #[test]
    fn histogram_quantiles_are_monotone() {
        let mut h = LatencyHistogram::default();
        for us in [1u64, 3, 3, 9, 80, 700, 700, 700, 6000, 50_000] {
            h.record(Duration::from_micros(us));
        }
        assert_eq!(h.count(), 10);
        let p50 = h.quantile_us(0.5);
        let p99 = h.quantile_us(0.99);
        assert!(p50 <= p99);
        // Rank-5 value is 80 µs → bucket [64, 128); rank-10 is 50 ms.
        assert_eq!(p50, 128, "p50 bucket edge");
        assert_eq!(p99, 65_536, "p99 bucket edge");
    }
}
