//! Scalar kernel curves.
//!
//! Every kernel the paper considers factors through a scalar curve `f(x)`
//! applied to a per-point scalar `x`:
//!
//! | kernel     | `x`                | `f(x)`      |
//! |------------|--------------------|-------------|
//! | Gaussian   | `γ·dist(q,p)²`     | `exp(−x)`   |
//! | polynomial | `γ·(q·p) + β`      | `x^deg`     |
//! | sigmoid    | `γ·(q·p) + β`      | `tanh(x)`   |
//! | Laplacian  | `γ²·dist(q,p)²`    | `exp(−√x)`  |
//!
//! (The Laplacian row is this library's extension beyond the paper.)
//!
//! The bound machinery only needs three things from a curve: point
//! evaluation, the derivative (for tangent lines), and its curvature
//! structure (where it is convex/concave), which [`Curve::curvature_on`]
//! exposes. All the curves have at most one inflection point, at `x = 0`.

/// Curvature classification of a curve restricted to an interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Curvature {
    /// `f'' ≥ 0` on the whole interval.
    Convex,
    /// `f'' ≤ 0` on the whole interval.
    Concave,
    /// Concave for `x ≤ 0`, convex for `x ≥ 0` (odd-degree polynomial).
    ConcaveThenConvex,
    /// Convex for `x ≤ 0`, concave for `x ≥ 0` (sigmoid / tanh).
    ConvexThenConcave,
    /// `f'' = 0`: the curve is a straight line (degree ≤ 1 polynomial).
    Linear,
}

/// The scalar curve through which a kernel evaluates, with the structure the
/// envelope construction needs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Curve {
    /// `f(x) = exp(−x)` — Gaussian kernel curve; convex and decreasing.
    NegExp,
    /// `f(x) = x^deg` — polynomial kernel curve.
    PowInt {
        /// Polynomial degree (`deg ≥ 0`).
        degree: u32,
    },
    /// `f(x) = tanh(x)` — sigmoid kernel curve; increasing, S-shaped.
    Tanh,
    /// `f(x) = exp(−√x)` on `x ≥ 0` — Laplacian kernel curve (an extension
    /// beyond the paper: the Laplacian kernel `exp(−γ·dist)` factors
    /// through this curve with `x = γ²·dist²`, keeping the O(d) aggregate
    /// machinery applicable). Convex and decreasing; the derivative blows
    /// up at `x = 0`, which the envelope construction guards.
    NegExpSqrt,
}

#[cfg(feature = "stats")]
pub mod stats {
    //! Thread-local instrumentation of curve evaluations (behind the
    //! `stats` feature). [`Curve::value`](super::Curve::value) is the
    //! transcendental workhorse of envelope construction, so its call
    //! count is the direct measure of what the envelope memoization and
    //! the shared-endpoint refactor save.

    use std::cell::Cell;

    thread_local! {
        static VALUE_CALLS: Cell<u64> = const { Cell::new(0) };
    }

    #[inline]
    pub(crate) fn bump_value() {
        VALUE_CALLS.with(|c| c.set(c.get() + 1));
    }

    /// Total `Curve::value` evaluations on this thread since it started.
    /// Callers measure deltas; the counter is never reset.
    pub fn value_calls() -> u64 {
        VALUE_CALLS.with(Cell::get)
    }
}

impl Curve {
    /// Evaluates `f(x)`.
    #[inline]
    pub fn value(self, x: f64) -> f64 {
        #[cfg(feature = "stats")]
        stats::bump_value();
        match self {
            Curve::NegExp => (-x).exp(),
            Curve::PowInt { degree } => x.powi(degree as i32),
            Curve::Tanh => x.tanh(),
            Curve::NegExpSqrt => (-x.max(0.0).sqrt()).exp(),
        }
    }

    /// Evaluates `(f(x), f'(x))` with one transcendental where the algebra
    /// allows it, instead of the two that separate [`Curve::value`] /
    /// [`Curve::deriv`] calls cost.
    ///
    /// Bitwise identical to the separate calls by construction:
    ///
    /// * `NegExp` — `f' = −f` and IEEE-754 negation is exact;
    /// * `Tanh` — `f' = 1 − t²` with `t = tanh(x)`, the same expression
    ///   `deriv` computes from its own `tanh` call;
    /// * `NegExpSqrt` (for `x ≥ 1e-300`, i.e. away from `deriv`'s clamp) —
    ///   `f' = −f / (2√x)`, the same expression with the same `√x` bits;
    /// * `PowInt` — no transcendental to share; falls through to the pair.
    #[inline]
    pub fn value_deriv(self, x: f64) -> (f64, f64) {
        match self {
            Curve::NegExp => {
                let v = self.value(x);
                (v, -v)
            }
            Curve::Tanh => {
                let t = self.value(x);
                (t, 1.0 - t * t)
            }
            Curve::NegExpSqrt if x >= 1e-300 => {
                let v = self.value(x);
                (v, -v / (2.0 * x.sqrt()))
            }
            _ => (self.value(x), self.deriv(x)),
        }
    }

    /// Evaluates `f'(x)`.
    ///
    /// For [`Curve::NegExpSqrt`] the derivative diverges at `x → 0⁺`; the
    /// value returned there is a large finite slope, and the envelope
    /// construction never places a tangent at the singular point.
    #[inline]
    pub fn deriv(self, x: f64) -> f64 {
        match self {
            Curve::NegExp => -(-x).exp(),
            Curve::PowInt { degree: 0 } => 0.0,
            Curve::PowInt { degree } => degree as f64 * x.powi(degree as i32 - 1),
            Curve::Tanh => {
                let t = x.tanh();
                1.0 - t * t
            }
            Curve::NegExpSqrt => {
                let s = x.max(1e-300).sqrt();
                -(-s).exp() / (2.0 * s)
            }
        }
    }

    /// The curvature structure of `f` restricted to `[lo, hi]`.
    pub fn curvature_on(self, lo: f64, hi: f64) -> Curvature {
        debug_assert!(lo <= hi);
        match self {
            Curve::NegExp | Curve::NegExpSqrt => Curvature::Convex,
            Curve::PowInt { degree: 0 } | Curve::PowInt { degree: 1 } => Curvature::Linear,
            Curve::PowInt { degree } if degree % 2 == 0 => Curvature::Convex,
            Curve::PowInt { .. } => {
                // odd degree ≥ 3: concave on (−∞,0], convex on [0,∞)
                if lo >= 0.0 {
                    Curvature::Convex
                } else if hi <= 0.0 {
                    Curvature::Concave
                } else {
                    Curvature::ConcaveThenConvex
                }
            }
            Curve::Tanh => {
                if lo >= 0.0 {
                    Curvature::Concave
                } else if hi <= 0.0 {
                    Curvature::Convex
                } else {
                    Curvature::ConvexThenConcave
                }
            }
        }
    }

    /// Whether the curve is monotonically increasing on all of `ℝ`.
    #[inline]
    pub fn is_increasing(self) -> bool {
        match self {
            Curve::NegExp | Curve::NegExpSqrt => false,
            Curve::PowInt { degree } => degree % 2 == 1,
            Curve::Tanh => true,
        }
    }

    /// The exact range `(min f, max f)` of `f` over `[lo, hi]`.
    ///
    /// This is the constant bound the state of the art uses per node
    /// (`LB_R = W·f_min`, `UB_R = W·f_max`), generalized beyond the Gaussian
    /// kernel as Section IV of the paper requires.
    pub fn range(self, lo: f64, hi: f64) -> (f64, f64) {
        debug_assert!(lo <= hi);
        match self {
            Curve::NegExp => ((-hi).exp(), (-lo).exp()),
            Curve::NegExpSqrt => (self.value(hi), self.value(lo)),
            Curve::PowInt { degree: 0 } => (1.0, 1.0),
            Curve::PowInt { degree } if degree % 2 == 0 => {
                let (a, b) = (self.value(lo), self.value(hi));
                let max = a.max(b);
                let min = if lo <= 0.0 && 0.0 <= hi {
                    0.0
                } else {
                    a.min(b)
                };
                (min, max)
            }
            // odd powers and tanh are increasing
            _ => (self.value(lo), self.value(hi)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use karl_testkit::prop_assert;

    #[test]
    fn neg_exp_values() {
        assert_eq!(Curve::NegExp.value(0.0), 1.0);
        assert!((Curve::NegExp.value(1.0) - (-1.0f64).exp()).abs() < 1e-15);
        assert_eq!(Curve::NegExp.deriv(0.0), -1.0);
    }

    #[test]
    fn pow_values_and_derivs() {
        let cube = Curve::PowInt { degree: 3 };
        assert_eq!(cube.value(2.0), 8.0);
        assert_eq!(cube.value(-2.0), -8.0);
        assert_eq!(cube.deriv(2.0), 12.0);
        let konst = Curve::PowInt { degree: 0 };
        assert_eq!(konst.value(5.0), 1.0);
        assert_eq!(konst.deriv(5.0), 0.0);
    }

    #[test]
    fn neg_exp_sqrt_values() {
        let c = Curve::NegExpSqrt;
        assert_eq!(c.value(0.0), 1.0);
        assert!((c.value(4.0) - (-2.0f64).exp()).abs() < 1e-15);
        // decreasing and convex on a sample triple
        let (a, b, m) = (c.value(1.0), c.value(4.0), c.value(2.5));
        assert!(a > b);
        assert!(m < 0.5 * (a + b), "midpoint below chord => convex");
        assert_eq!(c.curvature_on(0.0, 9.0), Curvature::Convex);
        assert_eq!(c.range(1.0, 4.0), (c.value(4.0), c.value(1.0)));
    }

    #[test]
    fn tanh_values() {
        assert_eq!(Curve::Tanh.value(0.0), 0.0);
        assert_eq!(Curve::Tanh.deriv(0.0), 1.0);
        assert!(Curve::Tanh.value(100.0) <= 1.0);
    }

    #[test]
    fn curvature_classification() {
        assert_eq!(Curve::NegExp.curvature_on(0.0, 9.0), Curvature::Convex);
        assert_eq!(
            Curve::PowInt { degree: 2 }.curvature_on(-1.0, 1.0),
            Curvature::Convex
        );
        assert_eq!(
            Curve::PowInt { degree: 1 }.curvature_on(-1.0, 1.0),
            Curvature::Linear
        );
        let cube = Curve::PowInt { degree: 3 };
        assert_eq!(cube.curvature_on(0.5, 2.0), Curvature::Convex);
        assert_eq!(cube.curvature_on(-2.0, -0.5), Curvature::Concave);
        assert_eq!(cube.curvature_on(-1.0, 1.0), Curvature::ConcaveThenConvex);
        assert_eq!(Curve::Tanh.curvature_on(0.1, 3.0), Curvature::Concave);
        assert_eq!(Curve::Tanh.curvature_on(-3.0, -0.1), Curvature::Convex);
        assert_eq!(
            Curve::Tanh.curvature_on(-1.0, 1.0),
            Curvature::ConvexThenConcave
        );
    }

    #[test]
    fn range_even_power_straddling_zero() {
        let sq = Curve::PowInt { degree: 2 };
        assert_eq!(sq.range(-2.0, 1.0), (0.0, 4.0));
        assert_eq!(sq.range(1.0, 3.0), (1.0, 9.0));
        assert_eq!(sq.range(-3.0, -1.0), (1.0, 9.0));
    }

    #[test]
    fn range_monotone_curves() {
        assert_eq!(Curve::NegExp.range(0.0, 1.0), ((-1.0f64).exp(), 1.0));
        let cube = Curve::PowInt { degree: 3 };
        assert_eq!(cube.range(-2.0, 2.0), (-8.0, 8.0));
        let (lo, hi) = Curve::Tanh.range(-1.0, 2.0);
        assert!(lo < 0.0 && hi > 0.0);
    }

    karl_testkit::props! {
        /// `value_deriv` must be bitwise identical to separate
        /// `value`/`deriv` calls — the contract the fused envelope path
        /// relies on for trace-level equivalence.
        #[test]
        fn prop_value_deriv_bitwise_matches_separate_calls(
            curve_id in 0usize..7,
            x in -6.0f64..6.0,
        ) {
            let curve = [
                Curve::NegExp,
                Curve::PowInt { degree: 0 },
                Curve::PowInt { degree: 2 },
                Curve::PowInt { degree: 3 },
                Curve::PowInt { degree: 5 },
                Curve::Tanh,
                Curve::NegExpSqrt,
            ][curve_id];
            let xs = if matches!(curve, Curve::NegExpSqrt) {
                // Exercise the clamped-derivative branch near 0 too.
                vec![x.abs(), 0.0, 1e-301, 1e-300, 1e-12]
            } else {
                vec![x]
            };
            for x in xs {
                let (v, d) = curve.value_deriv(x);
                prop_assert!(v.to_bits() == curve.value(x).to_bits(),
                    "{curve:?} value at {x}");
                prop_assert!(d.to_bits() == curve.deriv(x).to_bits(),
                    "{curve:?} deriv at {x}");
            }
        }

        /// `range` must bracket pointwise values on a dense grid.
        #[test]
        fn prop_range_brackets_values(
            curve_id in 0usize..6,
            a in -4.0f64..4.0,
            b in -4.0f64..4.0,
        ) {
            let curve = [
                Curve::NegExp,
                Curve::PowInt { degree: 2 },
                Curve::PowInt { degree: 3 },
                Curve::PowInt { degree: 5 },
                Curve::Tanh,
                Curve::NegExpSqrt,
            ][curve_id];
            let (mut lo, mut hi) = if a <= b { (a, b) } else { (b, a) };
            if matches!(curve, Curve::NegExpSqrt) {
                lo = lo.abs();
                hi = hi.abs();
                if lo > hi { std::mem::swap(&mut lo, &mut hi); }
            }
            let (fmin, fmax) = curve.range(lo, hi);
            for k in 0..=32 {
                let x = lo + (hi - lo) * (k as f64 / 32.0);
                let v = curve.value(x);
                prop_assert!(v >= fmin - 1e-9 * (1.0 + fmin.abs()));
                prop_assert!(v <= fmax + 1e-9 * (1.0 + fmax.abs()));
            }
        }

        /// The derivative must match a central finite difference.
        #[test]
        fn prop_deriv_matches_finite_difference(
            curve_id in 0usize..6,
            x in -3.0f64..3.0,
        ) {
            let curve = [
                Curve::NegExp,
                Curve::PowInt { degree: 2 },
                Curve::PowInt { degree: 3 },
                Curve::PowInt { degree: 4 },
                Curve::Tanh,
                Curve::NegExpSqrt,
            ][curve_id];
            let x = if matches!(curve, Curve::NegExpSqrt) { x.abs() + 0.1 } else { x };
            let h = 1e-6;
            let fd = (curve.value(x + h) - curve.value(x - h)) / (2.0 * h);
            let an = curve.deriv(x);
            prop_assert!((fd - an).abs() < 1e-4 * (1.0 + an.abs()),
                "curve {curve:?} at {x}: fd={fd} analytic={an}");
        }
    }
}
