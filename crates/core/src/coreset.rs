//! Weighted coreset construction with a certified uniform error bound.
//!
//! A coreset is a small weighted point set whose kernel aggregate tracks the
//! full dataset's aggregate uniformly over all queries:
//! `|S_coreset(q) − S_full(q)| ≤ eps_c · Σ|wᵢ|` for every finite `q`. The
//! cascade tier (see `Evaluator::with_coreset_tier`) answers TKAQ/eKAQ on a
//! tree frozen over the coreset first and widens the resulting certified
//! interval by that bound, so a tier answer is sound for the full dataset
//! and the full tree is only walked when the widened interval cannot decide.
//!
//! # Certification does not depend on the construction heuristic
//!
//! The builder snaps points to a uniform grid and merges each occupied cell
//! at its `|w|`-weighted centroid (a grid-discrepancy construction in the
//! spirit of Phillips–Tai coresets for KDEs), but the *certificate* never
//! trusts that heuristic. For any assignment `i → rep(i)` of source points
//! to representatives, where the representative's weight is the signed sum
//! of its members' weights,
//!
//! ```text
//! S_full(q) − S_coreset(q) = Σᵢ wᵢ·(K(q,pᵢ) − K(q,rep(i)))
//! |S_full(q) − S_coreset(q)| ≤ L_K · Σᵢ |wᵢ|·‖pᵢ − rep(i)‖
//! ```
//!
//! whenever the kernel is `L_K`-Lipschitz in its data argument uniformly in
//! `q`. The bound is computed from the *actual* displacements after
//! construction, so a bad heuristic only costs tightness, never soundness.
//! Mixed-sign weights are handled by the absolute values: the certificate
//! widens by `eps_c · Σ|wᵢ|`, not `eps_c · |Σwᵢ|`.
//!
//! Uniform Lipschitz constants (over all of `ℝᵈ × ℝᵈ`):
//!
//! * Gaussian `exp(−γ·r²)`: `|d/dr| = 2γr·exp(−γr²)` peaks at `r = 1/√(2γ)`
//!   giving `L = √(2γ)·e^{−1/2}`.
//! * Laplacian `exp(−γ·r)`: `|d/dr| ≤ γ`, so `L = γ`.
//! * Polynomial / sigmoid depend on the inner product `γ·q·p + β`, whose
//!   sensitivity to `p` grows with `‖q‖` — no uniform constant exists and
//!   [`Coreset::try_build`] rejects them with
//!   [`KarlError::UnsupportedCoresetKernel`].
//!
//! The builder additionally *measures* the discrepancy over a deterministic
//! probe set (source samples, representatives, centroid and far probes) by
//! brute force; `eps_measured() ≤ margin()` is asserted in the test suite
//! against the `karl_testkit` oracle, and the measured value is reported by
//! `karl coreset build` as an empirical sanity check on the certificate.

use karl_geom::PointSet;
use std::collections::BTreeMap;

use crate::error::{validate_data, KarlError};
use crate::kernel::Kernel;

/// Upper bound on probe points used for the empirical discrepancy check.
const MAX_PROBES: usize = 96;

/// A weighted coreset with a certified uniform kernel-sum error bound.
///
/// Built by [`Coreset::try_build`]; consumed by
/// `Evaluator::with_coreset_tier`, which freezes it into its own small tree
/// and uses it as the first tier of the evaluation cascade.
#[derive(Debug, Clone)]
pub struct Coreset {
    points: PointSet,
    weights: Vec<f64>,
    kernel: Kernel,
    /// Certified per-unit-weight bound: `sup_q |S_core − S_full| / Σ|wᵢ|`.
    eps_c: f64,
    /// Largest absolute discrepancy observed over the probe set.
    eps_measured: f64,
    sum_abs_weight: f64,
    source_len: usize,
    probes: usize,
}

impl Coreset {
    /// Builds a coreset targeting a per-unit-weight error of `target_eps`
    /// (i.e. absolute error ≤ `target_eps · Σ|wᵢ|`). Panics on invalid
    /// input; see [`Coreset::try_build`] for the validating twin.
    pub fn build(points: &PointSet, weights: &[f64], kernel: Kernel, target_eps: f64) -> Self {
        Self::try_build(points, weights, kernel, target_eps).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Builds a coreset targeting a per-unit-weight error of `target_eps`.
    ///
    /// Grid-snap construction: the bounding box is tiled with cells of side
    /// `target_eps / (L_K·√d)` so any in-cell displacement costs at most
    /// `target_eps` per unit of `|w|`; each occupied cell collapses to its
    /// `|w|`-weighted centroid carrying the signed weight sum. The recorded
    /// [`eps_c`](Self::eps_c) is then computed from the actual
    /// displacements, so it is typically much tighter than `target_eps` and
    /// remains sound even if the grid heuristic were replaced wholesale.
    ///
    /// Errors: the usual data validation ([`KarlError::EmptyPoints`] /
    /// [`KarlError::LengthMismatch`] / non-finite variants /
    /// [`KarlError::AllZeroWeights`]), [`KarlError::InvalidEps`] for a
    /// non-positive or non-finite `target_eps`, and
    /// [`KarlError::UnsupportedCoresetKernel`] for polynomial/sigmoid.
    pub fn try_build(
        points: &PointSet,
        weights: &[f64],
        kernel: Kernel,
        target_eps: f64,
    ) -> Result<Self, KarlError> {
        validate_data(points, weights)?;
        if !(target_eps.is_finite() && target_eps > 0.0) {
            return Err(KarlError::InvalidEps { value: target_eps });
        }
        let lip = lipschitz(&kernel)?;

        let dims = points.dims();
        let n = points.len();
        let sum_abs_weight: f64 = weights.iter().map(|w| w.abs()).sum();

        // Cell side so that the worst in-cell displacement (the full cell
        // diagonal, a conservative bound on point-to-centroid distance)
        // costs at most `target_eps` per unit of |w|.
        let cell = target_eps / (lip * (dims as f64).sqrt());

        let mut lo = vec![f64::INFINITY; dims];
        for p in points.iter() {
            for (l, &x) in lo.iter_mut().zip(p) {
                *l = l.min(x);
            }
        }

        // BTreeMap keeps cell iteration order deterministic, so identical
        // inputs always produce the identical coreset.
        let mut cells: BTreeMap<Vec<i64>, Vec<usize>> = BTreeMap::new();
        let mut key = vec![0i64; dims];
        for (i, p) in points.iter().enumerate() {
            for ((k, &x), &l) in key.iter_mut().zip(p).zip(&lo) {
                // `as` saturates on overflow, which only merges the most
                // extreme cells — sound, since eps_c uses real displacements.
                *k = ((x - l) / cell).floor() as i64;
            }
            cells.entry(key.clone()).or_default().push(i);
        }

        let mut core_points = PointSet::empty(dims);
        let mut core_weights = Vec::new();
        let mut centroid = vec![0.0; dims];
        // Certified absolute discrepancy: L_K · Σᵢ |wᵢ|·‖pᵢ − rep(i)‖.
        let mut weighted_displacement = 0.0;
        for members in cells.values() {
            let cell_abs: f64 = members.iter().map(|&i| weights[i].abs()).sum();
            centroid.iter_mut().for_each(|c| *c = 0.0);
            if cell_abs > 0.0 {
                for &i in members {
                    let s = weights[i].abs() / cell_abs;
                    for (c, &x) in centroid.iter_mut().zip(points.point(i)) {
                        *c += s * x;
                    }
                }
            } else {
                // All-zero-weight cell: members contribute nothing to either
                // sum and nothing to the certificate; skip it entirely.
                continue;
            }
            let net: f64 = members.iter().map(|&i| weights[i]).sum();
            for &i in members {
                let d2: f64 = centroid
                    .iter()
                    .zip(points.point(i))
                    .map(|(c, &x)| (x - c) * (x - c))
                    .sum();
                weighted_displacement += weights[i].abs() * d2.sqrt();
            }
            // A net-zero representative would be dropped by the P⁺/P⁻ split
            // anyway; its members are still covered by the displacement
            // terms above (their summed contribution to S_core is zero
            // either way).
            if net != 0.0 {
                core_points.push(&centroid);
                core_weights.push(net);
            }
        }
        if core_weights.is_empty() {
            return Err(KarlError::AllZeroWeights);
        }

        let eps_c = lip * weighted_displacement / sum_abs_weight;

        let mut cs = Coreset {
            points: core_points,
            weights: core_weights,
            kernel,
            eps_c,
            eps_measured: 0.0,
            sum_abs_weight,
            source_len: n,
            probes: 0,
        };
        cs.measure(points, weights);
        Ok(cs)
    }

    /// Measures `max |S_core(q) − S_full(q)|` by brute force over a
    /// deterministic probe set: stride samples of the source points, the
    /// representatives, the source centroid, and far probes offset by the
    /// bounding-box diagonal. Purely diagnostic — the cascade widens by the
    /// analytic certificate, never by this measurement.
    fn measure(&mut self, points: &PointSet, weights: &[f64]) {
        let dims = points.dims();
        let mut probes = PointSet::empty(dims);
        let src_budget = MAX_PROBES / 2;
        let stride = points.len().div_ceil(src_budget).max(1);
        for i in (0..points.len()).step_by(stride) {
            probes.push(points.point(i));
        }
        let rep_budget = MAX_PROBES / 4;
        let rep_stride = self.points.len().div_ceil(rep_budget).max(1);
        for i in (0..self.points.len()).step_by(rep_stride) {
            probes.push(self.points.point(i));
        }
        let mean = points.mean();
        let mut hi = vec![f64::NEG_INFINITY; dims];
        let mut lo = vec![f64::INFINITY; dims];
        for p in points.iter() {
            for ((h, l), &x) in hi.iter_mut().zip(lo.iter_mut()).zip(p) {
                *h = h.max(x);
                *l = l.min(x);
            }
        }
        probes.push(&mean);
        let far: Vec<f64> = mean
            .iter()
            .zip(hi.iter().zip(&lo))
            .map(|(m, (h, l))| m + 2.0 * (h - l).max(1.0))
            .collect();
        probes.push(&far);

        let mut worst = 0.0f64;
        for q in probes.iter() {
            let full: f64 = points
                .iter()
                .zip(weights)
                .map(|(p, &w)| w * self.kernel.eval(q, p))
                .sum();
            let core: f64 = self
                .points
                .iter()
                .zip(&self.weights)
                .map(|(p, &w)| w * self.kernel.eval(q, p))
                .sum();
            worst = worst.max((full - core).abs());
        }
        self.eps_measured = worst;
        self.probes = probes.len();
    }

    /// The representative points.
    pub fn points(&self) -> &PointSet {
        &self.points
    }

    /// The signed representative weights (cell-wise weight sums).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Number of representatives.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// True when the coreset holds no representatives (never after a
    /// successful build).
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Number of source points the coreset summarizes.
    pub fn source_len(&self) -> usize {
        self.source_len
    }

    /// The kernel the certificate was derived for; the cascade tier rejects
    /// evaluators using any other kernel.
    pub fn kernel(&self) -> Kernel {
        self.kernel
    }

    /// Certified per-unit-weight uniform error bound (`sup_q` discrepancy
    /// divided by `Σ|wᵢ|`).
    pub fn eps_c(&self) -> f64 {
        self.eps_c
    }

    /// The absolute interval widening the cascade applies: `eps_c · Σ|wᵢ|`
    /// (sign-aware — absolute weight mass, not the signed sum).
    pub fn margin(&self) -> f64 {
        self.eps_c * self.sum_abs_weight
    }

    /// Largest absolute discrepancy observed over the probe set (always
    /// ≤ [`margin`](Self::margin); diagnostic only).
    pub fn eps_measured(&self) -> f64 {
        self.eps_measured
    }

    /// Number of probe points used for the empirical measurement.
    pub fn probe_count(&self) -> usize {
        self.probes
    }

    /// Total absolute weight mass `Σ|wᵢ|` of the source data.
    pub fn sum_abs_weight(&self) -> f64 {
        self.sum_abs_weight
    }
}

/// Uniform Lipschitz constant of `p ↦ K(q, p)` over all queries, when one
/// exists (Gaussian / Laplacian).
pub fn lipschitz(kernel: &Kernel) -> Result<f64, KarlError> {
    match *kernel {
        Kernel::Gaussian { gamma } => Ok((2.0 * gamma).sqrt() * (-0.5f64).exp()),
        Kernel::Laplacian { gamma } => Ok(gamma),
        Kernel::Polynomial { .. } => Err(KarlError::UnsupportedCoresetKernel {
            kernel: "polynomial",
        }),
        Kernel::Sigmoid { .. } => Err(KarlError::UnsupportedCoresetKernel { kernel: "sigmoid" }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_points(n: usize, dims: usize) -> (PointSet, Vec<f64>) {
        let mut ps = PointSet::empty(dims);
        let mut ws = Vec::new();
        let mut p = vec![0.0; dims];
        for i in 0..n {
            for (d, x) in p.iter_mut().enumerate() {
                *x = ((i * (d + 3) + d) % 17) as f64 * 0.25;
            }
            ps.push(&p);
            // Mixed signs, never zero.
            ws.push(if i % 3 == 0 { -0.4 } else { 0.7 } + (i % 5) as f64 * 0.05);
        }
        (ps, ws)
    }

    #[test]
    fn build_compresses_and_certifies() {
        let (ps, ws) = grid_points(300, 2);
        let k = Kernel::gaussian(0.5);
        let cs = Coreset::try_build(&ps, &ws, k, 0.2).unwrap();
        assert!(cs.len() < ps.len(), "coreset should merge grid duplicates");
        assert!(!cs.is_empty());
        assert_eq!(cs.source_len(), 300);
        // Certificate respects the target and the measurement respects the
        // certificate.
        assert!(cs.eps_c() <= 0.2 + 1e-12, "eps_c {} > target", cs.eps_c());
        assert!(
            cs.eps_measured() <= cs.margin() + 1e-9,
            "measured {} exceeds certified margin {}",
            cs.eps_measured(),
            cs.margin()
        );
        // Signed weight mass is preserved exactly by cell sums (up to fp
        // reassociation).
        let full: f64 = ws.iter().sum();
        let core: f64 = cs.weights().iter().sum();
        assert!((full - core).abs() < 1e-9 * ws.len() as f64);
    }

    #[test]
    fn tiny_eps_degenerates_to_identity_like_coreset() {
        let (ps, ws) = grid_points(40, 3);
        let cs = Coreset::try_build(&ps, &ws, Kernel::laplacian(1.0), 1e-9).unwrap();
        // Cells shrink below the point spacing: every distinct point is its
        // own representative and the certificate collapses to ~0.
        assert!(cs.eps_c() <= 1e-9);
        assert!(cs.eps_measured() <= cs.margin() + 1e-12);
    }

    #[test]
    fn unsupported_kernels_are_rejected() {
        let (ps, ws) = grid_points(20, 2);
        for k in [Kernel::polynomial(0.5, 1.0, 2), Kernel::sigmoid(0.5, 0.1)] {
            assert!(matches!(
                Coreset::try_build(&ps, &ws, k, 0.1),
                Err(KarlError::UnsupportedCoresetKernel { .. })
            ));
        }
    }

    #[test]
    fn invalid_inputs_are_rejected() {
        let (ps, ws) = grid_points(20, 2);
        assert!(matches!(
            Coreset::try_build(&ps, &ws, Kernel::gaussian(0.5), 0.0),
            Err(KarlError::InvalidEps { .. })
        ));
        assert!(matches!(
            Coreset::try_build(&ps, &ws, Kernel::gaussian(0.5), f64::NAN),
            Err(KarlError::InvalidEps { .. })
        ));
        let zeros = vec![0.0; ps.len()];
        assert!(matches!(
            Coreset::try_build(&ps, &zeros, Kernel::gaussian(0.5), 0.1),
            Err(KarlError::AllZeroWeights)
        ));
    }

    #[test]
    fn lipschitz_constants_bound_the_kernels() {
        // Finite-difference check: |K(q,p) − K(q,p')| ≤ L·‖p − p'‖ on a
        // sweep of radii.
        for (k, l) in [
            (Kernel::gaussian(0.7), lipschitz(&Kernel::gaussian(0.7)).unwrap()),
            (
                Kernel::laplacian(1.3),
                lipschitz(&Kernel::laplacian(1.3)).unwrap(),
            ),
        ] {
            let q = [0.0, 0.0];
            for i in 0..400 {
                let r = i as f64 * 0.01;
                let p = [r, 0.0];
                let p2 = [r + 0.005, 0.0];
                let diff = (k.eval(&q, &p) - k.eval(&q, &p2)).abs();
                assert!(
                    diff <= l * 0.005 + 1e-12,
                    "kernel {k:?} violates Lipschitz bound at r={r}"
                );
            }
        }
    }
}
