//! Linear envelope construction — the core of KARL's bound functions.
//!
//! Given a scalar curve `f` and the interval `[x_min, x_max]` a tree node
//! induces, this module produces two straight lines `E^L(x) = m_l·x + c_l`
//! and `E^U(x) = m_u·x + c_u` with
//!
//! ```text
//! E^L(x) ≤ f(x) ≤ E^U(x)    for all x ∈ [x_min, x_max]
//! ```
//!
//! (Definition 3 of the paper). The construction per curvature class:
//!
//! * **convex** `f` (Gaussian `exp(−x)`, even-degree polynomial): the upper
//!   line is the chord (Figure 4); the lower line is the tangent at the
//!   weighted mean `x̄` of the node, which Theorems 1–2 prove optimal among
//!   all tangents (Figure 5b).
//! * **concave** `f`: the mirror image — tangent above, chord below.
//! * **mixed** intervals of the S-shaped curves (odd-degree polynomial,
//!   `tanh`): the "rotate-down"/"rotate-up" lines of Figure 8 — anchored at
//!   the endpoint lying in the convex (resp. concave) branch and tangent to
//!   the opposite branch, found by bisection on the tangency condition; if
//!   the tangency point falls outside the interval, the chord through both
//!   endpoints is the valid rotation limit.

use crate::curve::{Curvature, Curve};

/// A straight line `x ↦ m·x + c`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Line {
    /// Slope.
    pub m: f64,
    /// Intercept.
    pub c: f64,
}

impl Line {
    /// Evaluates the line at `x`.
    #[inline]
    pub fn eval(&self, x: f64) -> f64 {
        self.m * x + self.c
    }
}

/// A pair of bounding lines valid on one interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Envelope {
    /// Line below the curve on the interval.
    pub lower: Line,
    /// Line above the curve on the interval.
    pub upper: Line,
}

/// Chord of `f` through `(lo, f(lo))` and `(hi, f(hi))`.
fn chord(curve: Curve, lo: f64, hi: f64) -> Line {
    debug_assert!(hi > lo);
    let flo = curve.value(lo);
    let fhi = curve.value(hi);
    let m = (fhi - flo) / (hi - lo);
    Line { m, c: flo - m * lo }
}

/// Tangent of `f` at `t`.
fn tangent(curve: Curve, t: f64) -> Line {
    let m = curve.deriv(t);
    Line {
        m,
        c: curve.value(t) - m * t,
    }
}

/// Solves the tangency condition for a line through the anchor point
/// `(a, f(a))` that is tangent to `f` at some `s` in `[blo, bhi]`:
///
/// ```text
/// φ(s) = f(s) + f'(s)·(a − s) − f(a) = 0
/// ```
///
/// On the branches we use it for, `φ` is monotone (its derivative is
/// `f''(s)·(a − s)`, which has constant sign on one curvature branch with
/// the anchor on the other side), so bisection is safe. Returns `None`
/// when no sign change brackets a root — the caller then falls back to the
/// chord.
///
/// For odd-power curves the condition is *homogeneous* in `(s, a)` — the
/// tangency point is always `s* = c_deg · a` where `c_deg < 0` depends only
/// on the degree (e.g. `−1/2` for the cubic) — so the hot polynomial path
/// costs O(1) instead of a root-finding loop.
fn solve_tangency(curve: Curve, anchor: f64, blo: f64, bhi: f64) -> Option<f64> {
    if let Curve::PowInt { degree } = curve {
        let s = tangency_ratio(degree) * anchor;
        let (lo, hi) = (blo.min(bhi), blo.max(bhi));
        return if s >= lo && s <= hi { Some(s) } else { None };
    }
    let fa = curve.value(anchor);
    let phi = |s: f64| curve.value(s) + curve.deriv(s) * (anchor - s) - fa;
    let (mut lo, mut hi) = (blo, bhi);
    let (plo, phi_hi) = (phi(lo), phi(hi));
    if plo == 0.0 {
        return Some(lo);
    }
    if phi_hi == 0.0 {
        return Some(hi);
    }
    if plo.signum() == phi_hi.signum() {
        return None;
    }
    // Bisection with a relative-width stop; ~50 iterations at most, and the
    // aggregated bounds are insensitive to sub-1e-12 tangency error.
    for _ in 0..64 {
        let mid = 0.5 * (lo + hi);
        if mid <= lo || mid >= hi || (hi - lo) <= 1e-12 * (1.0 + mid.abs()) {
            break;
        }
        let pm = phi(mid);
        if pm == 0.0 {
            return Some(mid);
        }
        if pm.signum() == plo.signum() {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Some(0.5 * (lo + hi))
}

/// The negative root `c` of `(1−n)·cⁿ + n·c^{n−1} − 1 = 0` for odd `n ≥ 3`:
/// the tangency point of a line anchored at `(a, aⁿ)` on the opposite
/// curvature branch is `c·a`. `c = −1/2` for the cubic; other degrees are
/// solved once and memoized per thread.
fn tangency_ratio(degree: u32) -> f64 {
    use std::cell::RefCell;
    use std::collections::HashMap;
    debug_assert!(degree % 2 == 1 && degree >= 3);
    if degree == 3 {
        return -0.5;
    }
    thread_local! {
        static CACHE: RefCell<HashMap<u32, f64>> = RefCell::new(HashMap::new());
    }
    CACHE.with(|cache| {
        *cache.borrow_mut().entry(degree).or_insert_with(|| {
            let n = degree as i32;
            let g = |c: f64| (1.0 - n as f64) * c.powi(n) + n as f64 * c.powi(n - 1) - 1.0;
            // Root is bracketed in (−1, 0): g(0) = −1, g(−1) = 2n − 2 > 0.
            let (mut lo, mut hi) = (-1.0, 0.0);
            for _ in 0..80 {
                let mid = 0.5 * (lo + hi);
                if g(mid) > 0.0 {
                    lo = mid;
                } else {
                    hi = mid;
                }
            }
            0.5 * (lo + hi)
        })
    })
}

/// Line through `(anchor, f(anchor))` tangent to `f` on the branch
/// `[blo, bhi]`, or the chord over `[lo, hi]` when the rotation limit is the
/// far endpoint.
fn anchored_or_chord(curve: Curve, anchor: f64, blo: f64, bhi: f64, lo: f64, hi: f64) -> Line {
    match solve_tangency(curve, anchor, blo, bhi) {
        Some(s) => {
            let m = curve.deriv(s);
            Line {
                m,
                c: curve.value(anchor) - m * anchor,
            }
        }
        None => chord(curve, lo, hi),
    }
}

/// Builds the bounding envelope of `curve` on `[lo, hi]`.
///
/// `xbar` is the weighted mean `Σ wᵢxᵢ / Σ wᵢ` of the node being bounded —
/// the optimal tangent location of Theorems 1–2. It is clamped into
/// `[lo, hi]` defensively.
///
/// # Panics
/// Panics if `lo > hi` or any of the inputs is NaN.
pub fn envelope(curve: Curve, lo: f64, hi: f64, xbar: f64) -> Envelope {
    assert!(lo <= hi, "envelope interval inverted: [{lo}, {hi}]");
    assert!(
        lo.is_finite() && hi.is_finite() && !xbar.is_nan(),
        "non-finite envelope inputs"
    );
    // Degenerate interval: the node's points all map to (almost) one scalar;
    // the constant range bounds are exact and always valid.
    if hi - lo <= 1e-13 * (1.0 + lo.abs().max(hi.abs())) {
        let (fmin, fmax) = curve.range(lo, hi);
        return Envelope {
            lower: Line { m: 0.0, c: fmin },
            upper: Line { m: 0.0, c: fmax },
        };
    }
    let xbar = xbar.clamp(lo, hi);
    match curve.curvature_on(lo, hi) {
        Curvature::Linear => {
            let line = chord(curve, lo, hi);
            Envelope {
                lower: line,
                upper: line,
            }
        }
        Curvature::Convex => {
            // Guard the Laplacian curve's singular derivative at x = 0: a
            // tangent slightly right of 0 is still a valid lower bound of a
            // convex curve everywhere on its domain.
            let t = match curve {
                Curve::NegExpSqrt => xbar.max(1e-12 * (1.0 + hi)),
                _ => xbar,
            };
            Envelope {
                lower: tangent(curve, t),
                upper: chord(curve, lo, hi),
            }
        }
        Curvature::Concave => Envelope {
            lower: chord(curve, lo, hi),
            upper: tangent(curve, xbar),
        },
        // Odd-degree polynomial on an interval straddling 0: concave branch
        // is [lo, 0], convex branch is [0, hi] (Figure 8).
        Curvature::ConcaveThenConvex => Envelope {
            // rotate-up around the left endpoint, tangent to the convex branch
            lower: anchored_or_chord(curve, lo, 0.0, hi, lo, hi),
            // rotate-down around the right endpoint, tangent to the concave branch
            upper: anchored_or_chord(curve, hi, lo, 0.0, lo, hi),
        },
        // tanh: convex branch [lo, 0], concave branch [0, hi].
        Curvature::ConvexThenConcave => Envelope {
            // anchored at the right endpoint, tangent to the convex branch
            lower: anchored_or_chord(curve, hi, lo, 0.0, lo, hi),
            // anchored at the left endpoint, tangent to the concave branch
            upper: anchored_or_chord(curve, lo, 0.0, hi, lo, hi),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use karl_testkit::prop_assert;

    const CURVES: [Curve; 7] = [
        Curve::NegExp,
        Curve::PowInt { degree: 1 },
        Curve::PowInt { degree: 2 },
        Curve::PowInt { degree: 3 },
        Curve::PowInt { degree: 5 },
        Curve::Tanh,
        Curve::NegExpSqrt,
    ];

    /// Checks `lower ≤ f ≤ upper` on a dense grid with relative tolerance.
    fn assert_envelope_valid(curve: Curve, lo: f64, hi: f64, env: &Envelope) {
        for k in 0..=200 {
            let x = lo + (hi - lo) * (k as f64 / 200.0);
            let f = curve.value(x);
            let tol = 1e-9 * (1.0 + f.abs());
            assert!(
                env.lower.eval(x) <= f + tol,
                "{curve:?} lower line violated at {x}: {} > {}",
                env.lower.eval(x),
                f
            );
            assert!(
                env.upper.eval(x) + tol >= f,
                "{curve:?} upper line violated at {x}: {} < {}",
                env.upper.eval(x),
                f
            );
        }
    }

    #[test]
    fn gaussian_chord_and_tangent() {
        let env = envelope(Curve::NegExp, 0.2, 2.0, 0.9);
        assert_envelope_valid(Curve::NegExp, 0.2, 2.0, &env);
        // chord endpoints exact
        assert!((env.upper.eval(0.2) - (-0.2f64).exp()).abs() < 1e-12);
        assert!((env.upper.eval(2.0) - (-2.0f64).exp()).abs() < 1e-12);
        // tangent touches at xbar
        assert!((env.lower.eval(0.9) - (-0.9f64).exp()).abs() < 1e-12);
    }

    #[test]
    fn degenerate_interval_is_exact() {
        let env = envelope(Curve::NegExp, 1.0, 1.0, 1.0);
        let f = (-1.0f64).exp();
        assert!((env.lower.eval(1.0) - f).abs() < 1e-12);
        assert!((env.upper.eval(1.0) - f).abs() < 1e-12);
    }

    #[test]
    fn linear_curve_is_exact() {
        let env = envelope(Curve::PowInt { degree: 1 }, -3.0, 4.0, 0.0);
        assert_eq!(env.lower, env.upper);
        assert!((env.lower.m - 1.0).abs() < 1e-12);
        assert!(env.lower.c.abs() < 1e-12);
    }

    #[test]
    fn cube_mixed_interval() {
        let c = Curve::PowInt { degree: 3 };
        let env = envelope(c, -1.0, 2.0, 0.3);
        assert_envelope_valid(c, -1.0, 2.0, &env);
        // the rotate-down upper line passes through the right endpoint
        assert!((env.upper.eval(2.0) - 8.0).abs() < 1e-9);
        // the rotate-up lower line passes through the left endpoint
        assert!((env.lower.eval(-1.0) + 1.0).abs() < 1e-9);
    }

    #[test]
    fn cube_chord_fallback_when_tangency_escapes() {
        // A long concave branch and a stubby convex branch: the rotate-up
        // tangency would land beyond hi, so the lower line must be the chord.
        let c = Curve::PowInt { degree: 3 };
        let (lo, hi) = (-10.0, 0.1);
        let env = envelope(c, lo, hi, -2.0);
        assert_envelope_valid(c, lo, hi, &env);
        assert!((env.lower.eval(lo) - c.value(lo)).abs() < 1e-6);
        assert!((env.lower.eval(hi) - c.value(hi)).abs() < 1e-6);
    }

    #[test]
    fn tanh_mixed_interval() {
        let env = envelope(Curve::Tanh, -2.0, 3.0, 0.5);
        assert_envelope_valid(Curve::Tanh, -2.0, 3.0, &env);
        // anchors: upper at lo, lower at hi
        assert!((env.upper.eval(-2.0) - (-2.0f64).tanh()).abs() < 1e-9);
        assert!((env.lower.eval(3.0) - 3.0f64.tanh()).abs() < 1e-9);
    }

    #[test]
    fn tanh_pure_concave_interval() {
        let env = envelope(Curve::Tanh, 0.5, 2.5, 1.0);
        assert_envelope_valid(Curve::Tanh, 0.5, 2.5, &env);
        // tangent above at the mean
        assert!((env.upper.eval(1.0) - 1.0f64.tanh()).abs() < 1e-12);
    }

    #[test]
    fn karl_upper_tighter_than_sota_on_convex() {
        // Lemma 3: the chord never exceeds exp(−x_min) on the interval.
        let (lo, hi) = (0.3, 2.7);
        let env = envelope(Curve::NegExp, lo, hi, 1.0);
        let sota_ub = (-lo).exp();
        for k in 0..=100 {
            let x = lo + (hi - lo) * (k as f64 / 100.0);
            assert!(env.upper.eval(x) <= sota_ub + 1e-12);
        }
    }

    #[test]
    fn karl_lower_tighter_than_sota_on_convex() {
        // Lemma 4 is a statement about the *aggregated* bound: evaluated at
        // the node's weighted mean x̄ (which is where the aggregate
        // `m·X + c·W = W·(m·x̄ + c)` lands), the tangent bound
        // `W·f(x̄)` dominates SOTA's `W·f(x_max)` for every x̄ ≤ x_max.
        let (lo, hi) = (0.3f64, 2.7f64);
        let sota_lb = (-hi).exp();
        for k in 0..=100 {
            let xbar = lo + (hi - lo) * (k as f64 / 100.0);
            let env = envelope(Curve::NegExp, lo, hi, xbar);
            assert!(env.lower.eval(xbar) + 1e-12 >= sota_lb);
        }
    }

    #[test]
    fn tangent_at_mean_is_optimal() {
        // Theorem 1: among tangents, the one at x̄ maximizes the aggregated
        // lower bound m·X + c·W with X = W·x̄.
        let curve = Curve::NegExp;
        let (lo, hi, xbar, w) = (0.1, 3.0, 1.3, 5.0);
        let x_agg = w * xbar;
        let at_mean = tangent(curve, xbar);
        let best = at_mean.m * x_agg + at_mean.c * w;
        for t in [lo, 0.5, 0.9, 2.0, 2.9, hi] {
            let line = tangent(curve, t);
            let val = line.m * x_agg + line.c * w;
            assert!(val <= best + 1e-12, "tangent at {t} beats tangent at mean");
        }
    }

    /// Regression pinned from a recorded proptest failure seed (formerly
    /// `proptest-regressions/envelope.txt`, which shrank to
    /// `a = 0.0, b = 5.0656497446710285, frac = 0.0`): with x̄ exactly at
    /// the interval's left edge, the tangent lower bound evaluated at x̄
    /// must still dominate SOTA's constant `f(hi)` (Lemma 4 edge case).
    #[test]
    fn regression_tangent_at_left_edge_dominates_sota() {
        let (lo, hi) = (0.0, 5.0656497446710285);
        let curve = Curve::NegExp;
        let xbar = lo; // frac = 0.0 ⇒ x̄ degenerates onto the lower endpoint
        let env = envelope(curve, lo, hi, xbar);
        let (fmin, fmax) = curve.range(lo, hi);
        for k in 0..=32 {
            let x = lo + (hi - lo) * (k as f64 / 32.0);
            assert!(
                env.upper.eval(x) <= fmax + 1e-9,
                "chord UB above SOTA at {x}"
            );
        }
        assert!(
            env.lower.eval(xbar) + 1e-9 >= fmin,
            "tangent LB below SOTA at x̄"
        );
    }

    karl_testkit::props! {
        /// Envelope validity on random intervals for every curve.
        #[test]
        fn prop_envelope_bounds_curve(
            curve_id in 0usize..CURVES.len(),
            a in -5.0f64..5.0,
            b in -5.0f64..5.0,
            frac in 0.0f64..=1.0,
        ) {
            let curve = CURVES[curve_id];
            let (mut lo, mut hi) = if a <= b { (a, b) } else { (b, a) };
            if matches!(curve, Curve::NegExp | Curve::NegExpSqrt) {
                // Gaussian/Laplacian intervals are γ·dist² ≥ 0
                lo = lo.abs();
                hi = hi.abs();
                if lo > hi { std::mem::swap(&mut lo, &mut hi); }
            }
            let xbar = lo + frac * (hi - lo);
            let env = envelope(curve, lo, hi, xbar);
            for k in 0..=64 {
                let x = lo + (hi - lo) * (k as f64 / 64.0);
                let f = curve.value(x);
                let tol = 1e-8 * (1.0 + f.abs());
                prop_assert!(env.lower.eval(x) <= f + tol,
                    "{curve:?} lower violated at {x} in [{lo},{hi}]");
                prop_assert!(env.upper.eval(x) + tol >= f,
                    "{curve:?} upper violated at {x} in [{lo},{hi}]");
            }
        }

        /// On convex intervals the envelope must be at least as tight as the
        /// SOTA constant bounds everywhere (Lemmas 3 and 4).
        #[test]
        fn prop_tighter_than_sota_on_convex(
            a in 0.0f64..6.0,
            b in 0.0f64..6.0,
            frac in 0.0f64..=1.0,
        ) {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            let curve = Curve::NegExp;
            let xbar = lo + frac * (hi - lo);
            let env = envelope(curve, lo, hi, xbar);
            let (fmin, fmax) = curve.range(lo, hi);
            // The chord upper bound beats SOTA pointwise (Lemma 3)…
            for k in 0..=32 {
                let x = lo + (hi - lo) * (k as f64 / 32.0);
                prop_assert!(env.upper.eval(x) <= fmax + 1e-9);
            }
            // …and the tangent lower bound beats SOTA where the aggregate
            // evaluates it: at the weighted mean (Lemma 4).
            prop_assert!(env.lower.eval(xbar) + 1e-9 >= fmin);
        }
    }
}
