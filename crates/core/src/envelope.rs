//! Linear envelope construction — the core of KARL's bound functions.
//!
//! Given a scalar curve `f` and the interval `[x_min, x_max]` a tree node
//! induces, this module produces two straight lines `E^L(x) = m_l·x + c_l`
//! and `E^U(x) = m_u·x + c_u` with
//!
//! ```text
//! E^L(x) ≤ f(x) ≤ E^U(x)    for all x ∈ [x_min, x_max]
//! ```
//!
//! (Definition 3 of the paper). The construction per curvature class:
//!
//! * **convex** `f` (Gaussian `exp(−x)`, even-degree polynomial): the upper
//!   line is the chord (Figure 4); the lower line is the tangent at the
//!   weighted mean `x̄` of the node, which Theorems 1–2 prove optimal among
//!   all tangents (Figure 5b).
//! * **concave** `f`: the mirror image — tangent above, chord below.
//! * **mixed** intervals of the S-shaped curves (odd-degree polynomial,
//!   `tanh`): the "rotate-down"/"rotate-up" lines of Figure 8 — anchored at
//!   the endpoint lying in the convex (resp. concave) branch and tangent to
//!   the opposite branch, found by bisection on the tangency condition; if
//!   the tangency point falls outside the interval, the chord through both
//!   endpoints is the valid rotation limit.

use crate::curve::{Curvature, Curve};

/// A straight line `x ↦ m·x + c`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Line {
    /// Slope.
    pub m: f64,
    /// Intercept.
    pub c: f64,
}

impl Line {
    /// Evaluates the line at `x`.
    #[inline]
    pub fn eval(&self, x: f64) -> f64 {
        self.m * x + self.c
    }
}

/// A pair of bounding lines valid on one interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Envelope {
    /// Line below the curve on the interval.
    pub lower: Line,
    /// Line above the curve on the interval.
    pub upper: Line,
}

/// An [`Envelope`] together with the exact curve range on the same
/// interval — everything per-node bound assembly needs, so one envelope
/// construction (or one cache hit) serves both the linear bounds and the
/// SOTA clamp without re-evaluating the curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnvelopeParts {
    /// The bounding lines.
    pub env: Envelope,
    /// `min f` over the interval (the SOTA constant lower bound's factor).
    pub fmin: f64,
    /// `max f` over the interval (the SOTA constant upper bound's factor).
    pub fmax: f64,
}

#[cfg(feature = "stats")]
pub mod stats {
    //! Thread-local count of envelope constructions (behind the `stats`
    //! feature). A cache hit skips [`envelope_parts`](super::envelope_parts)
    //! entirely, so `envelopes_built` vs cache hits/misses quantifies the
    //! memoization directly.

    use std::cell::Cell;

    thread_local! {
        static ENVELOPES_BUILT: Cell<u64> = const { Cell::new(0) };
    }

    #[inline]
    pub(crate) fn bump_built() {
        ENVELOPES_BUILT.with(|c| c.set(c.get() + 1));
    }

    /// Total envelope constructions on this thread since it started.
    /// Callers measure deltas; the counter is never reset.
    pub fn envelopes_built() -> u64 {
        ENVELOPES_BUILT.with(Cell::get)
    }
}

/// Chord of `f` through `(lo, f(lo))` and `(hi, f(hi))`, with the endpoint
/// values threaded in by the caller (computed exactly once per envelope).
#[inline]
fn chord(lo: f64, hi: f64, flo: f64, fhi: f64) -> Line {
    debug_assert!(hi > lo);
    let m = (fhi - flo) / (hi - lo);
    Line { m, c: flo - m * lo }
}

/// Tangent of `f` at `t` — one fused `value_deriv` evaluation.
#[inline]
fn tangent(curve: Curve, t: f64) -> Line {
    let (v, m) = curve.value_deriv(t);
    Line { m, c: v - m * t }
}

/// The exact range `(min f, max f)` over `[lo, hi]`, recomputed from the
/// already-evaluated endpoint values. Bitwise identical to
/// [`Curve::range`]: every `range` arm reduces to `value(lo)`/`value(hi)`
/// (or the literal constants), so substituting the threaded `flo`/`fhi`
/// reproduces the same bits without re-evaluating the curve.
#[inline]
fn range_from_values(curve: Curve, lo: f64, hi: f64, flo: f64, fhi: f64) -> (f64, f64) {
    match curve {
        // Decreasing curves: range is (f(hi), f(lo)); `Curve::range`'s
        // NegExp arm computes `(-hi).exp()` inline, the same expression
        // `value(hi)` evaluates.
        Curve::NegExp | Curve::NegExpSqrt => (fhi, flo),
        Curve::PowInt { degree: 0 } => (1.0, 1.0),
        Curve::PowInt { degree } if degree % 2 == 0 => {
            let max = flo.max(fhi);
            let min = if lo <= 0.0 && 0.0 <= hi {
                0.0
            } else {
                flo.min(fhi)
            };
            (min, max)
        }
        // Odd powers and tanh are increasing.
        _ => (flo, fhi),
    }
}

/// Solves the tangency condition for a line through the anchor point
/// `(a, f(a))` that is tangent to `f` at some `s` in `[blo, bhi]`:
///
/// ```text
/// φ(s) = f(s) + f'(s)·(a − s) − f(a) = 0
/// ```
///
/// On the branches we use it for, `φ` is monotone (its derivative is
/// `f''(s)·(a − s)`, which has constant sign on one curvature branch with
/// the anchor on the other side), so bisection is safe. Returns `None`
/// when no sign change brackets a root — the caller then falls back to the
/// chord.
///
/// For odd-power curves the condition is *homogeneous* in `(s, a)` — the
/// tangency point is always `s* = c_deg · a` where `c_deg < 0` depends only
/// on the degree (e.g. `−1/2` for the cubic) — so the hot polynomial path
/// costs O(1) instead of a root-finding loop.
fn solve_tangency(curve: Curve, anchor: f64, fa: f64, blo: f64, bhi: f64) -> Option<f64> {
    if let Curve::PowInt { degree } = curve {
        let s = tangency_ratio(degree) * anchor;
        let (lo, hi) = (blo.min(bhi), blo.max(bhi));
        return if s >= lo && s <= hi { Some(s) } else { None };
    }
    let phi = |s: f64| {
        let (v, d) = curve.value_deriv(s);
        v + d * (anchor - s) - fa
    };
    let (mut lo, mut hi) = (blo, bhi);
    let (plo, phi_hi) = (phi(lo), phi(hi));
    if plo == 0.0 {
        return Some(lo);
    }
    if phi_hi == 0.0 {
        return Some(hi);
    }
    if plo.signum() == phi_hi.signum() {
        return None;
    }
    // Bisection with a relative-width stop; ~50 iterations at most, and the
    // aggregated bounds are insensitive to sub-1e-12 tangency error.
    for _ in 0..64 {
        let mid = 0.5 * (lo + hi);
        if mid <= lo || mid >= hi || (hi - lo) <= 1e-12 * (1.0 + mid.abs()) {
            break;
        }
        let pm = phi(mid);
        if pm == 0.0 {
            return Some(mid);
        }
        if pm.signum() == plo.signum() {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Some(0.5 * (lo + hi))
}

/// The negative root `c` of `(1−n)·cⁿ + n·c^{n−1} − 1 = 0` for odd `n ≥ 3`:
/// the tangency point of a line anchored at `(a, aⁿ)` on the opposite
/// curvature branch is `c·a`. `c = −1/2` for the cubic; other degrees are
/// solved once and memoized per thread.
fn tangency_ratio(degree: u32) -> f64 {
    use std::cell::RefCell;
    use std::collections::HashMap;
    debug_assert!(degree % 2 == 1 && degree >= 3);
    if degree == 3 {
        return -0.5;
    }
    thread_local! {
        static CACHE: RefCell<HashMap<u32, f64>> = RefCell::new(HashMap::new());
    }
    CACHE.with(|cache| {
        *cache.borrow_mut().entry(degree).or_insert_with(|| {
            let n = degree as i32;
            let g = |c: f64| (1.0 - n as f64) * c.powi(n) + n as f64 * c.powi(n - 1) - 1.0;
            // Root is bracketed in (−1, 0): g(0) = −1, g(−1) = 2n − 2 > 0.
            let (mut lo, mut hi) = (-1.0, 0.0);
            for _ in 0..80 {
                let mid = 0.5 * (lo + hi);
                if g(mid) > 0.0 {
                    lo = mid;
                } else {
                    hi = mid;
                }
            }
            0.5 * (lo + hi)
        })
    })
}

/// Line through `(anchor, f(anchor))` tangent to `f` on the branch
/// `[blo, bhi]`, or the chord over `[lo, hi]` when the rotation limit is the
/// far endpoint.
///
/// `fa` is `f(anchor)` and `flo`/`fhi` are the endpoint values — all
/// computed once by [`envelope_parts`] and threaded through, so the chord
/// fallback no longer re-evaluates the curve at either endpoint.
#[allow(clippy::too_many_arguments)]
fn anchored_or_chord(
    curve: Curve,
    anchor: f64,
    fa: f64,
    blo: f64,
    bhi: f64,
    lo: f64,
    hi: f64,
    flo: f64,
    fhi: f64,
) -> Line {
    match solve_tangency(curve, anchor, fa, blo, bhi) {
        Some(s) => {
            let m = curve.deriv(s);
            Line {
                m,
                c: fa - m * anchor,
            }
        }
        None => chord(lo, hi, flo, fhi),
    }
}

/// Builds the bounding envelope of `curve` on `[lo, hi]` together with the
/// exact curve range — the full per-node bound ingredients.
///
/// `xbar` is the weighted mean `Σ wᵢxᵢ / Σ wᵢ` of the node being bounded —
/// the optimal tangent location of Theorems 1–2. It is clamped into
/// `[lo, hi]` defensively.
///
/// The endpoint values `f(lo)`, `f(hi)` are evaluated exactly once and
/// shared between the range, the chord and the rotation-limit anchors;
/// tangents go through the fused [`Curve::value_deriv`]. Every shared
/// value is bitwise identical to the separate evaluations it replaces, so
/// the envelope bits are unchanged from the pre-sharing construction. A
/// Gaussian convex interval now costs 3 `exp` evaluations (endpoints +
/// fused tangent) instead of the former 6.
///
/// # Panics
/// Panics if `lo > hi` or any of the inputs is NaN.
#[inline]
pub fn envelope_parts(curve: Curve, lo: f64, hi: f64, xbar: f64) -> EnvelopeParts {
    assert!(lo <= hi, "envelope interval inverted: [{lo}, {hi}]");
    assert!(
        !lo.is_nan() && !hi.is_nan() && !xbar.is_nan(),
        "NaN envelope inputs"
    );
    // An extreme γ (or a far-away node) can overflow the scalar interval
    // itself: `γ·dist²`/`γ·⟨q,p⟩+β` → ±inf. Saturate to the representable
    // range — every curve here is monotone toward its limits on the
    // clamped stretch, so the values at ±f64::MAX enclose the values at
    // ±inf within f64 arithmetic (and endpoint-value overflow is handled
    // by the constant-envelope branch below). Bitwise no-op on the finite
    // intervals of ordinary workloads.
    let (lo, hi) = if -f64::MAX <= lo && hi <= f64::MAX {
        (lo, hi) // finite interval: the common case, untouched
    } else {
        (lo.clamp(-f64::MAX, f64::MAX), hi.clamp(-f64::MAX, f64::MAX))
    };
    #[cfg(feature = "stats")]
    stats::bump_built();
    let flo = curve.value(lo);
    let fhi = curve.value(hi);
    let (fmin, fmax) = range_from_values(curve, lo, hi, flo, fhi);
    // Overflow saturation: a huge `|γ·x + β|` pushes the endpoint values
    // of a polynomial/sigmoid curve past f64 range. A chord or tangent
    // through an infinite endpoint is useless — its line evaluates to
    // NaN/±inf, and ±inf per-node bounds poison the evaluator's
    // subtract-re-add accounting (`inf − inf = NaN`). A *constant*
    // envelope at the curve's (saturated) range is still a valid
    // enclosure of every finitely-representable curve value on the
    // interval, so truncate the infinities to ±f64::MAX and fall back to
    // range bounds. NaN range endpoints (from inf-valued arithmetic in
    // the range reduction) widen to the full representable range.
    if !(flo.is_finite() && fhi.is_finite()) {
        let lo_c = if fmin.is_nan() {
            -f64::MAX
        } else {
            fmin.clamp(-f64::MAX, f64::MAX)
        };
        let hi_c = if fmax.is_nan() {
            f64::MAX
        } else {
            fmax.clamp(-f64::MAX, f64::MAX)
        };
        return EnvelopeParts {
            env: Envelope {
                lower: Line { m: 0.0, c: lo_c },
                upper: Line { m: 0.0, c: hi_c },
            },
            fmin: lo_c,
            fmax: hi_c,
        };
    }
    // Degenerate interval: the node's points all map to (almost) one scalar;
    // the constant range bounds are exact and always valid.
    if hi - lo <= 1e-13 * (1.0 + lo.abs().max(hi.abs())) {
        return EnvelopeParts {
            env: Envelope {
                lower: Line { m: 0.0, c: fmin },
                upper: Line { m: 0.0, c: fmax },
            },
            fmin,
            fmax,
        };
    }
    let xbar = xbar.clamp(lo, hi);
    let env = match curve.curvature_on(lo, hi) {
        Curvature::Linear => {
            let line = chord(lo, hi, flo, fhi);
            Envelope {
                lower: line,
                upper: line,
            }
        }
        Curvature::Convex => {
            // Guard the Laplacian curve's singular derivative at x = 0: a
            // tangent slightly right of 0 is still a valid lower bound of a
            // convex curve everywhere on its domain.
            let t = match curve {
                Curve::NegExpSqrt => xbar.max(1e-12 * (1.0 + hi)),
                _ => xbar,
            };
            Envelope {
                lower: tangent(curve, t),
                upper: chord(lo, hi, flo, fhi),
            }
        }
        Curvature::Concave => Envelope {
            lower: chord(lo, hi, flo, fhi),
            upper: tangent(curve, xbar),
        },
        // Odd-degree polynomial on an interval straddling 0: concave branch
        // is [lo, 0], convex branch is [0, hi] (Figure 8).
        Curvature::ConcaveThenConvex => Envelope {
            // rotate-up around the left endpoint, tangent to the convex branch
            lower: anchored_or_chord(curve, lo, flo, 0.0, hi, lo, hi, flo, fhi),
            // rotate-down around the right endpoint, tangent to the concave branch
            upper: anchored_or_chord(curve, hi, fhi, lo, 0.0, lo, hi, flo, fhi),
        },
        // tanh: convex branch [lo, 0], concave branch [0, hi].
        Curvature::ConvexThenConcave => Envelope {
            // anchored at the right endpoint, tangent to the convex branch
            lower: anchored_or_chord(curve, hi, fhi, lo, 0.0, lo, hi, flo, fhi),
            // anchored at the left endpoint, tangent to the concave branch
            upper: anchored_or_chord(curve, lo, flo, 0.0, hi, lo, hi, flo, fhi),
        },
    };
    EnvelopeParts { env, fmin, fmax }
}

/// Builds the bounding envelope of `curve` on `[lo, hi]`; see
/// [`envelope_parts`] for the construction and its invariants.
///
/// # Panics
/// Panics if `lo > hi` or any of the inputs is NaN.
#[inline]
pub fn envelope(curve: Curve, lo: f64, hi: f64, xbar: f64) -> Envelope {
    envelope_parts(curve, lo, hi, xbar).env
}

/// Initial slot count of an [`EnvelopeCache`] table (power of two).
const CACHE_INITIAL_SLOTS: usize = 256;

/// Hard slot-count ceiling (power of two): 32768 slots ≈ 2.6 MiB per
/// worker at full load. When a table at this size fills past its load
/// limit it is cleared in place (the entries are pure-function results, so
/// dropping them is only a perf event), which bounds both memory and probe
/// lengths on unbounded query streams.
const CACHE_MAX_SLOTS: usize = 1 << 15;

/// Occupied-slot marker: curve tags are always non-zero.
const EMPTY_TAG: u64 = 0;

#[derive(Debug, Clone, Copy)]
struct CacheSlot {
    tag: u64,
    lo: u64,
    hi: u64,
    xbar: u64,
    lower: Line,
    upper: Line,
    fmin: f64,
    fmax: f64,
}

const EMPTY_SLOT: CacheSlot = CacheSlot {
    tag: EMPTY_TAG,
    lo: 0,
    hi: 0,
    xbar: 0,
    lower: Line { m: 0.0, c: 0.0 },
    upper: Line { m: 0.0, c: 0.0 },
    fmin: 0.0,
    fmax: 0.0,
};

/// Non-zero discriminant of a curve for cache keys. `PowInt` folds the
/// degree in, so distinct degrees never collide.
#[inline]
fn curve_tag(curve: Curve) -> u64 {
    match curve {
        Curve::NegExp => 1,
        Curve::Tanh => 2,
        Curve::NegExpSqrt => 3,
        Curve::PowInt { degree } => 4 + degree as u64,
    }
}

/// SplitMix64 finalizer — the standard 64-bit avalanche mixer.
#[inline]
fn mix64(mut h: u64) -> u64 {
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

#[inline]
fn hash_key(tag: u64, lo: u64, hi: u64, xbar: u64) -> u64 {
    mix64(tag ^ mix64(lo ^ mix64(hi ^ mix64(xbar))))
}

/// Exact memoization of envelope construction, keyed on the **bit
/// patterns** of `(curve, lo, hi, x̄)`.
///
/// [`envelope_parts`] is a pure function of exactly those four inputs, so
/// an entry built for one query is bit-for-bit correct for any later
/// lookup of the same key — across queries, evaluators and bound methods.
/// The table therefore never needs invalidation: keeping it warm across a
/// whole batch is what converts repeated intervals (duplicate queries,
/// clustered query streams) from `exp`/bisection into a hash probe.
/// Because keys are exact bit patterns, a hit returns the *same bits* the
/// builder would produce, which is why cache-on and cache-off runs are
/// bitwise identical (enforced by `tests/envelope_cache_equivalence.rs`).
///
/// Open addressing with linear probing over power-of-two tables; grows at
/// 3/4 load up to [`CACHE_MAX_SLOTS`], then clears in place instead of
/// growing (see the constant's note). Not thread-safe by design — one
/// cache per [`Scratch`](crate::eval::Scratch), one scratch per worker.
#[derive(Debug, Clone, Default)]
pub struct EnvelopeCache {
    slots: Vec<CacheSlot>,
    len: usize,
    #[cfg(feature = "stats")]
    hits: u64,
    #[cfg(feature = "stats")]
    misses: u64,
}

impl EnvelopeCache {
    /// Creates an empty cache; the table is allocated lazily on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of live entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the cache holds no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Current slot-table size (0 until first use; power of two after).
    #[inline]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Lookups answered from the table (behind the `stats` feature).
    #[cfg(feature = "stats")]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that had to build the envelope (behind the `stats` feature).
    #[cfg(feature = "stats")]
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Returns the memoized envelope parts for `(curve, lo, hi, xbar)`,
    /// building and inserting them on a miss. Identical bits to calling
    /// [`envelope_parts`] directly, hit or miss.
    ///
    /// # Panics
    /// Propagates [`envelope_parts`]' panics on invalid inputs (which can
    /// never have been inserted, so the lookup misses first).
    pub fn get_or_build(&mut self, curve: Curve, lo: f64, hi: f64, xbar: f64) -> EnvelopeParts {
        if self.slots.is_empty() {
            self.slots = vec![EMPTY_SLOT; CACHE_INITIAL_SLOTS];
        }
        let tag = curve_tag(curve);
        let (lb, hb, xb) = (lo.to_bits(), hi.to_bits(), xbar.to_bits());
        match self.find(tag, lb, hb, xb) {
            Ok(i) => {
                #[cfg(feature = "stats")]
                {
                    self.hits += 1;
                }
                let s = &self.slots[i];
                EnvelopeParts {
                    env: Envelope {
                        lower: s.lower,
                        upper: s.upper,
                    },
                    fmin: s.fmin,
                    fmax: s.fmax,
                }
            }
            Err(mut i) => {
                #[cfg(feature = "stats")]
                {
                    self.misses += 1;
                }
                let parts = envelope_parts(curve, lo, hi, xbar);
                if (self.len + 1) * 4 > self.slots.len() * 3 {
                    if self.slots.len() < CACHE_MAX_SLOTS {
                        self.grow();
                    } else {
                        self.clear();
                    }
                    i = self
                        .find(tag, lb, hb, xb)
                        .expect_err("key cannot exist after rehash/clear");
                }
                self.slots[i] = CacheSlot {
                    tag,
                    lo: lb,
                    hi: hb,
                    xbar: xb,
                    lower: parts.env.lower,
                    upper: parts.env.upper,
                    fmin: parts.fmin,
                    fmax: parts.fmax,
                };
                self.len += 1;
                parts
            }
        }
    }

    /// Linear probe: `Ok(slot)` on a key match, `Err(slot)` with the first
    /// empty slot on the probe path otherwise. The table is never full
    /// (grow/clear keeps load ≤ 3/4), so the probe always terminates.
    #[inline]
    fn find(&self, tag: u64, lo: u64, hi: u64, xbar: u64) -> Result<usize, usize> {
        let mask = self.slots.len() - 1;
        let mut i = hash_key(tag, lo, hi, xbar) as usize & mask;
        loop {
            let s = &self.slots[i];
            if s.tag == EMPTY_TAG {
                return Err(i);
            }
            if s.tag == tag && s.lo == lo && s.hi == hi && s.xbar == xbar {
                return Ok(i);
            }
            i = (i + 1) & mask;
        }
    }

    fn grow(&mut self) {
        let doubled = vec![EMPTY_SLOT; self.slots.len() * 2];
        let old = std::mem::replace(&mut self.slots, doubled);
        for s in old {
            if s.tag != EMPTY_TAG {
                let i = self
                    .find(s.tag, s.lo, s.hi, s.xbar)
                    .expect_err("rehash of distinct keys cannot collide");
                self.slots[i] = s;
            }
        }
    }

    /// Drops every entry, keeping the allocated table. Never required for
    /// correctness (entries are exact); used to bound probe lengths once
    /// the table hits [`CACHE_MAX_SLOTS`].
    pub fn clear(&mut self) {
        self.slots.fill(EMPTY_SLOT);
        self.len = 0;
    }

    /// Shrink policy for [`Scratch::reset_with_capacity_cap`]
    /// (crate::eval::Scratch): if the table has grown beyond `cap` slots,
    /// reallocate it at the largest power of two ≤ `cap` (dropping the
    /// entries — a perf event only, never a correctness one); tables
    /// within the cap are left untouched, entries and all, so cross-query
    /// reuse survives the reset.
    pub fn shrink_to_cap(&mut self, cap: usize) {
        if self.slots.len() <= cap {
            return;
        }
        if cap == 0 {
            self.slots = Vec::new();
        } else {
            let target = if cap.is_power_of_two() {
                cap
            } else {
                cap.next_power_of_two() / 2
            };
            self.slots = vec![EMPTY_SLOT; target];
        }
        self.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use karl_testkit::prop_assert;

    const CURVES: [Curve; 7] = [
        Curve::NegExp,
        Curve::PowInt { degree: 1 },
        Curve::PowInt { degree: 2 },
        Curve::PowInt { degree: 3 },
        Curve::PowInt { degree: 5 },
        Curve::Tanh,
        Curve::NegExpSqrt,
    ];

    /// Checks `lower ≤ f ≤ upper` on a dense grid with relative tolerance.
    fn assert_envelope_valid(curve: Curve, lo: f64, hi: f64, env: &Envelope) {
        for k in 0..=200 {
            let x = lo + (hi - lo) * (k as f64 / 200.0);
            let f = curve.value(x);
            let tol = 1e-9 * (1.0 + f.abs());
            assert!(
                env.lower.eval(x) <= f + tol,
                "{curve:?} lower line violated at {x}: {} > {}",
                env.lower.eval(x),
                f
            );
            assert!(
                env.upper.eval(x) + tol >= f,
                "{curve:?} upper line violated at {x}: {} < {}",
                env.upper.eval(x),
                f
            );
        }
    }

    #[test]
    fn gaussian_chord_and_tangent() {
        let env = envelope(Curve::NegExp, 0.2, 2.0, 0.9);
        assert_envelope_valid(Curve::NegExp, 0.2, 2.0, &env);
        // chord endpoints exact
        assert!((env.upper.eval(0.2) - (-0.2f64).exp()).abs() < 1e-12);
        assert!((env.upper.eval(2.0) - (-2.0f64).exp()).abs() < 1e-12);
        // tangent touches at xbar
        assert!((env.lower.eval(0.9) - (-0.9f64).exp()).abs() < 1e-12);
    }

    #[test]
    fn degenerate_interval_is_exact() {
        let env = envelope(Curve::NegExp, 1.0, 1.0, 1.0);
        let f = (-1.0f64).exp();
        assert!((env.lower.eval(1.0) - f).abs() < 1e-12);
        assert!((env.upper.eval(1.0) - f).abs() < 1e-12);
    }

    #[test]
    fn linear_curve_is_exact() {
        let env = envelope(Curve::PowInt { degree: 1 }, -3.0, 4.0, 0.0);
        assert_eq!(env.lower, env.upper);
        assert!((env.lower.m - 1.0).abs() < 1e-12);
        assert!(env.lower.c.abs() < 1e-12);
    }

    #[test]
    fn cube_mixed_interval() {
        let c = Curve::PowInt { degree: 3 };
        let env = envelope(c, -1.0, 2.0, 0.3);
        assert_envelope_valid(c, -1.0, 2.0, &env);
        // the rotate-down upper line passes through the right endpoint
        assert!((env.upper.eval(2.0) - 8.0).abs() < 1e-9);
        // the rotate-up lower line passes through the left endpoint
        assert!((env.lower.eval(-1.0) + 1.0).abs() < 1e-9);
    }

    #[test]
    fn cube_chord_fallback_when_tangency_escapes() {
        // A long concave branch and a stubby convex branch: the rotate-up
        // tangency would land beyond hi, so the lower line must be the chord.
        let c = Curve::PowInt { degree: 3 };
        let (lo, hi) = (-10.0, 0.1);
        let env = envelope(c, lo, hi, -2.0);
        assert_envelope_valid(c, lo, hi, &env);
        assert!((env.lower.eval(lo) - c.value(lo)).abs() < 1e-6);
        assert!((env.lower.eval(hi) - c.value(hi)).abs() < 1e-6);
    }

    #[test]
    fn tanh_mixed_interval() {
        let env = envelope(Curve::Tanh, -2.0, 3.0, 0.5);
        assert_envelope_valid(Curve::Tanh, -2.0, 3.0, &env);
        // anchors: upper at lo, lower at hi
        assert!((env.upper.eval(-2.0) - (-2.0f64).tanh()).abs() < 1e-9);
        assert!((env.lower.eval(3.0) - 3.0f64.tanh()).abs() < 1e-9);
    }

    #[test]
    fn tanh_pure_concave_interval() {
        let env = envelope(Curve::Tanh, 0.5, 2.5, 1.0);
        assert_envelope_valid(Curve::Tanh, 0.5, 2.5, &env);
        // tangent above at the mean
        assert!((env.upper.eval(1.0) - 1.0f64.tanh()).abs() < 1e-12);
    }

    #[test]
    fn karl_upper_tighter_than_sota_on_convex() {
        // Lemma 3: the chord never exceeds exp(−x_min) on the interval.
        let (lo, hi) = (0.3, 2.7);
        let env = envelope(Curve::NegExp, lo, hi, 1.0);
        let sota_ub = (-lo).exp();
        for k in 0..=100 {
            let x = lo + (hi - lo) * (k as f64 / 100.0);
            assert!(env.upper.eval(x) <= sota_ub + 1e-12);
        }
    }

    #[test]
    fn karl_lower_tighter_than_sota_on_convex() {
        // Lemma 4 is a statement about the *aggregated* bound: evaluated at
        // the node's weighted mean x̄ (which is where the aggregate
        // `m·X + c·W = W·(m·x̄ + c)` lands), the tangent bound
        // `W·f(x̄)` dominates SOTA's `W·f(x_max)` for every x̄ ≤ x_max.
        let (lo, hi) = (0.3f64, 2.7f64);
        let sota_lb = (-hi).exp();
        for k in 0..=100 {
            let xbar = lo + (hi - lo) * (k as f64 / 100.0);
            let env = envelope(Curve::NegExp, lo, hi, xbar);
            assert!(env.lower.eval(xbar) + 1e-12 >= sota_lb);
        }
    }

    #[test]
    fn tangent_at_mean_is_optimal() {
        // Theorem 1: among tangents, the one at x̄ maximizes the aggregated
        // lower bound m·X + c·W with X = W·x̄.
        let curve = Curve::NegExp;
        let (lo, hi, xbar, w) = (0.1, 3.0, 1.3, 5.0);
        let x_agg = w * xbar;
        let at_mean = tangent(curve, xbar);
        let best = at_mean.m * x_agg + at_mean.c * w;
        for t in [lo, 0.5, 0.9, 2.0, 2.9, hi] {
            let line = tangent(curve, t);
            let val = line.m * x_agg + line.c * w;
            assert!(val <= best + 1e-12, "tangent at {t} beats tangent at mean");
        }
    }

    /// Regression pinned from a recorded proptest failure seed (formerly
    /// `proptest-regressions/envelope.txt`, which shrank to
    /// `a = 0.0, b = 5.0656497446710285, frac = 0.0`): with x̄ exactly at
    /// the interval's left edge, the tangent lower bound evaluated at x̄
    /// must still dominate SOTA's constant `f(hi)` (Lemma 4 edge case).
    #[test]
    fn regression_tangent_at_left_edge_dominates_sota() {
        let (lo, hi) = (0.0, 5.0656497446710285);
        let curve = Curve::NegExp;
        let xbar = lo; // frac = 0.0 ⇒ x̄ degenerates onto the lower endpoint
        let env = envelope(curve, lo, hi, xbar);
        let (fmin, fmax) = curve.range(lo, hi);
        for k in 0..=32 {
            let x = lo + (hi - lo) * (k as f64 / 32.0);
            assert!(
                env.upper.eval(x) <= fmax + 1e-9,
                "chord UB above SOTA at {x}"
            );
        }
        assert!(
            env.lower.eval(xbar) + 1e-9 >= fmin,
            "tangent LB below SOTA at x̄"
        );
    }

    /// Field-by-field bit equality of two [`EnvelopeParts`] — stricter
    /// than `==` (distinguishes `-0.0` from `0.0`).
    fn parts_bits(p: &EnvelopeParts) -> [u64; 6] {
        [
            p.env.lower.m.to_bits(),
            p.env.lower.c.to_bits(),
            p.env.upper.m.to_bits(),
            p.env.upper.c.to_bits(),
            p.fmin.to_bits(),
            p.fmax.to_bits(),
        ]
    }

    #[test]
    fn cache_hit_and_miss_are_bitwise_identical_to_builder() {
        let mut cache = EnvelopeCache::new();
        let keys: Vec<(Curve, f64, f64, f64)> = (0..300)
            .map(|i| {
                let curve = CURVES[i % CURVES.len()];
                let t = i as f64 * 0.137;
                let (mut lo, mut hi) = (t.sin() * 4.0, t.cos() * 4.0 + 1.0);
                if matches!(curve, Curve::NegExp | Curve::NegExpSqrt) {
                    lo = lo.abs();
                    hi = hi.abs();
                }
                if lo > hi {
                    std::mem::swap(&mut lo, &mut hi);
                }
                let xbar = lo + (hi - lo) * (0.5 + 0.5 * (t * 3.0).sin());
                (curve, lo, hi, xbar)
            })
            .collect();
        // First pass: all misses. Second pass: all hits. Both must return
        // the builder's exact bits.
        for pass in 0..2 {
            for &(curve, lo, hi, xbar) in &keys {
                let direct = envelope_parts(curve, lo, hi, xbar);
                let cached = cache.get_or_build(curve, lo, hi, xbar);
                assert_eq!(
                    parts_bits(&cached),
                    parts_bits(&direct),
                    "pass {pass}: {curve:?} on [{lo}, {hi}], xbar {xbar}"
                );
            }
        }
        // Distinct (curve, lo, hi) tuples may repeat across i % 7 cycles,
        // but every key must be present exactly once.
        let distinct: std::collections::HashSet<_> = keys
            .iter()
            .map(|&(c, lo, hi, x)| (curve_tag(c), lo.to_bits(), hi.to_bits(), x.to_bits()))
            .collect();
        assert_eq!(cache.len(), distinct.len());
    }

    #[test]
    fn cache_grows_past_initial_table_and_keeps_entries() {
        let mut cache = EnvelopeCache::new();
        // More distinct keys than CACHE_INITIAL_SLOTS * 3/4 forces at least
        // one grow + rehash.
        let n = 2 * CACHE_INITIAL_SLOTS;
        for i in 0..n {
            let lo = i as f64 * 1e-3;
            cache.get_or_build(Curve::NegExp, lo, lo + 1.0, lo + 0.5);
        }
        assert!(cache.capacity() > CACHE_INITIAL_SLOTS);
        assert_eq!(cache.len(), n);
        // Every entry survived the rehash with identical bits.
        for i in 0..n {
            let lo = i as f64 * 1e-3;
            let direct = envelope_parts(Curve::NegExp, lo, lo + 1.0, lo + 0.5);
            let cached = cache.get_or_build(Curve::NegExp, lo, lo + 1.0, lo + 0.5);
            assert_eq!(parts_bits(&cached), parts_bits(&direct));
        }
        assert_eq!(cache.len(), n, "re-lookups must not insert");
    }

    #[test]
    fn cache_clears_in_place_at_max_slots() {
        let mut cache = EnvelopeCache::new();
        // Fill past the ceiling's load limit; the table must stop growing at
        // CACHE_MAX_SLOTS and recycle in place rather than expand.
        let n = CACHE_MAX_SLOTS;
        for i in 0..n {
            let lo = i as f64 * 1e-4;
            cache.get_or_build(Curve::NegExp, lo, lo + 1.0, lo + 0.5);
        }
        assert_eq!(cache.capacity(), CACHE_MAX_SLOTS);
        assert!(cache.len() <= CACHE_MAX_SLOTS * 3 / 4);
        // Still answers correctly after the in-place clear.
        let direct = envelope_parts(Curve::NegExp, 0.25, 1.25, 0.75);
        let cached = cache.get_or_build(Curve::NegExp, 0.25, 1.25, 0.75);
        assert_eq!(parts_bits(&cached), parts_bits(&direct));
    }

    #[test]
    fn cache_shrink_to_cap_policy() {
        let mut cache = EnvelopeCache::new();
        for i in 0..CACHE_INITIAL_SLOTS {
            let lo = i as f64 * 1e-2;
            cache.get_or_build(Curve::NegExp, lo, lo + 1.0, lo + 0.5);
        }
        let grown = cache.capacity();
        assert!(grown > CACHE_INITIAL_SLOTS);

        // Within the cap: untouched, entries preserved.
        let len_before = cache.len();
        cache.shrink_to_cap(grown);
        assert_eq!(cache.capacity(), grown);
        assert_eq!(cache.len(), len_before);

        // Beyond the cap: reallocated to the largest power of two ≤ cap,
        // entries dropped (a perf event only — keys fully determine values).
        cache.shrink_to_cap(grown / 2 + 3);
        assert_eq!(cache.capacity(), grown / 2);
        assert!(cache.is_empty());

        // Still correct afterwards.
        let direct = envelope_parts(Curve::Tanh, -1.0, 2.0, 0.5);
        let cached = cache.get_or_build(Curve::Tanh, -1.0, 2.0, 0.5);
        assert_eq!(parts_bits(&cached), parts_bits(&direct));

        // cap = 0 drops the table entirely; the next use re-allocates.
        cache.shrink_to_cap(0);
        assert_eq!(cache.capacity(), 0);
        let cached = cache.get_or_build(Curve::Tanh, -1.0, 2.0, 0.5);
        assert_eq!(parts_bits(&cached), parts_bits(&direct));
        assert_eq!(cache.capacity(), CACHE_INITIAL_SLOTS);
    }

    #[test]
    fn overflow_saturates_to_finite_constant_envelope() {
        // x³ at x = 6e102 overflows f64: the old chord/tangent through the
        // infinite endpoint produced ±inf/NaN lines that poisoned every
        // downstream interval. The saturated branch must emit a *finite*
        // constant envelope that still encloses every representable curve
        // value on the interval.
        let curve = Curve::PowInt { degree: 3 };
        let parts = envelope_parts(curve, 0.0, 6e102, 3e102);
        assert!(parts.fmin.is_finite() && parts.fmax.is_finite());
        assert_eq!(parts.env.lower.m, 0.0);
        assert_eq!(parts.env.upper.m, 0.0);
        // Pointwise validity at interior points whose value is finite.
        for x in [0.0, 1.0, 3e102] {
            let v = curve.value(x);
            assert!(v.is_finite(), "probe value overflowed at {x}");
            assert!(parts.env.lower.m * x + parts.env.lower.c <= v);
            assert!(parts.env.upper.m * x + parts.env.upper.c >= v);
        }
    }

    karl_testkit::props! {
        /// `range_from_values` fed the endpoint values must be bitwise
        /// identical to `Curve::range` — the substitution the shared-endpoint
        /// refactor relies on for trace-level equivalence.
        #[test]
        fn prop_range_from_values_bitwise_matches_range(
            curve_id in 0usize..CURVES.len(),
            a in -5.0f64..5.0,
            b in -5.0f64..5.0,
        ) {
            let curve = CURVES[curve_id];
            let (mut lo, mut hi) = if a <= b { (a, b) } else { (b, a) };
            if matches!(curve, Curve::NegExp | Curve::NegExpSqrt) {
                lo = lo.abs();
                hi = hi.abs();
                if lo > hi { std::mem::swap(&mut lo, &mut hi); }
            }
            let (rmin, rmax) = curve.range(lo, hi);
            let (vmin, vmax) =
                range_from_values(curve, lo, hi, curve.value(lo), curve.value(hi));
            prop_assert!(vmin.to_bits() == rmin.to_bits(),
                "{curve:?} min on [{lo},{hi}]");
            prop_assert!(vmax.to_bits() == rmax.to_bits(),
                "{curve:?} max on [{lo},{hi}]");
        }

        /// Envelope validity on random intervals for every curve.
        #[test]
        fn prop_envelope_bounds_curve(
            curve_id in 0usize..CURVES.len(),
            a in -5.0f64..5.0,
            b in -5.0f64..5.0,
            frac in 0.0f64..=1.0,
        ) {
            let curve = CURVES[curve_id];
            let (mut lo, mut hi) = if a <= b { (a, b) } else { (b, a) };
            if matches!(curve, Curve::NegExp | Curve::NegExpSqrt) {
                // Gaussian/Laplacian intervals are γ·dist² ≥ 0
                lo = lo.abs();
                hi = hi.abs();
                if lo > hi { std::mem::swap(&mut lo, &mut hi); }
            }
            let xbar = lo + frac * (hi - lo);
            let env = envelope(curve, lo, hi, xbar);
            for k in 0..=64 {
                let x = lo + (hi - lo) * (k as f64 / 64.0);
                let f = curve.value(x);
                let tol = 1e-8 * (1.0 + f.abs());
                prop_assert!(env.lower.eval(x) <= f + tol,
                    "{curve:?} lower violated at {x} in [{lo},{hi}]");
                prop_assert!(env.upper.eval(x) + tol >= f,
                    "{curve:?} upper violated at {x} in [{lo},{hi}]");
            }
        }

        /// On convex intervals the envelope must be at least as tight as the
        /// SOTA constant bounds everywhere (Lemmas 3 and 4).
        #[test]
        fn prop_tighter_than_sota_on_convex(
            a in 0.0f64..6.0,
            b in 0.0f64..6.0,
            frac in 0.0f64..=1.0,
        ) {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            let curve = Curve::NegExp;
            let xbar = lo + frac * (hi - lo);
            let env = envelope(curve, lo, hi, xbar);
            let (fmin, fmax) = curve.range(lo, hi);
            // The chord upper bound beats SOTA pointwise (Lemma 3)…
            for k in 0..=32 {
                let x = lo + (hi - lo) * (k as f64 / 32.0);
                prop_assert!(env.upper.eval(x) <= fmax + 1e-9);
            }
            // …and the tangent lower bound beats SOTA where the aggregate
            // evaluates it: at the weighted mean (Lemma 4).
            prop_assert!(env.lower.eval(xbar) + 1e-9 >= fmin);
        }
    }
}
