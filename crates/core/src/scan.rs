//! Index-free baselines: the SCAN and LIBSVM-style sequential evaluators.
//!
//! These are the comparison points of Table VII. Both compute `F_P(q)`
//! exactly in `O(n·d)`; they differ only in the kernel evaluation strategy:
//!
//! * [`Scan`] evaluates `K(q, pᵢ)` directly from coordinates — the naive
//!   baseline ("SCAN" in the paper).
//! * [`LibSvmScan`] mirrors LIBSVM's predictor: squared norms of the model
//!   points are precomputed once and the Gaussian kernel is evaluated
//!   through the `‖q‖² − 2·q·p + ‖p‖²` expansion ("LIBSVM" in the paper).

use karl_geom::{norm2, PointSet};

use crate::kernel::Kernel;

/// The naive sequential-scan evaluator.
#[derive(Debug, Clone)]
pub struct Scan {
    points: PointSet,
    weights: Vec<f64>,
    kernel: Kernel,
}

impl Scan {
    /// Creates a scan baseline over `points` with signed `weights`.
    ///
    /// # Panics
    /// Panics if lengths mismatch or `points` is empty.
    pub fn new(points: PointSet, weights: Vec<f64>, kernel: Kernel) -> Self {
        assert_eq!(
            weights.len(),
            points.len(),
            "weights/points length mismatch"
        );
        assert!(!points.is_empty(), "empty point set");
        Self {
            points,
            weights,
            kernel,
        }
    }

    /// Exact `F_P(q)`.
    ///
    /// The dimensionality check happens once here (the per-point kernel and
    /// distance helpers only `debug_assert!`); the loop is unrolled 4-wide
    /// with independent partial sums so the accumulator adds pipeline and
    /// the inner dot products stay vectorized.
    pub fn aggregate(&self, q: &[f64]) -> f64 {
        assert_eq!(q.len(), self.points.dims(), "query dimensionality mismatch");
        let n = self.points.len();
        let w = &self.weights[..n];
        let blocks = n / 4 * 4;
        let mut acc = [0.0f64; 4];
        for i in (0..blocks).step_by(4) {
            acc[0] += w[i] * self.kernel.eval(q, self.points.point(i));
            acc[1] += w[i + 1] * self.kernel.eval(q, self.points.point(i + 1));
            acc[2] += w[i + 2] * self.kernel.eval(q, self.points.point(i + 2));
            acc[3] += w[i + 3] * self.kernel.eval(q, self.points.point(i + 3));
        }
        let mut tail = 0.0;
        for (i, &wi) in w.iter().enumerate().skip(blocks) {
            tail += wi * self.kernel.eval(q, self.points.point(i));
        }
        (acc[0] + acc[1]) + (acc[2] + acc[3]) + tail
    }

    /// Threshold query by exact computation.
    pub fn tkaq(&self, q: &[f64], tau: f64) -> bool {
        self.aggregate(q) >= tau
    }

    /// "Approximate" query — the scan is always exact, so this just returns
    /// the exact value (the `_eps` parameter documents intent at call
    /// sites).
    pub fn ekaq(&self, q: &[f64], _eps: f64) -> f64 {
        self.aggregate(q)
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the scan holds no points (never true once built).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

/// LIBSVM-style sequential evaluator: norm-expansion kernel evaluation with
/// precomputed model norms.
#[derive(Debug, Clone)]
pub struct LibSvmScan {
    points: PointSet,
    weights: Vec<f64>,
    norms2: Vec<f64>,
    kernel: Kernel,
}

impl LibSvmScan {
    /// Creates a LIBSVM-style baseline over `points` with signed `weights`.
    ///
    /// # Panics
    /// Panics if lengths mismatch or `points` is empty.
    pub fn new(points: PointSet, weights: Vec<f64>, kernel: Kernel) -> Self {
        assert_eq!(
            weights.len(),
            points.len(),
            "weights/points length mismatch"
        );
        assert!(!points.is_empty(), "empty point set");
        let norms2 = points.squared_norms();
        Self {
            points,
            weights,
            norms2,
            kernel,
        }
    }

    /// Exact `F_P(q)` through the norm expansion.
    pub fn aggregate(&self, q: &[f64]) -> f64 {
        assert_eq!(q.len(), self.points.dims(), "query dimensionality mismatch");
        let qn = norm2(q);
        self.kernel.eval_range(
            &self.points,
            &self.weights,
            &self.norms2,
            0,
            self.points.len(),
            q,
            qn,
        )
    }

    /// Threshold query by exact computation (LIBSVM's decision function).
    pub fn tkaq(&self, q: &[f64], tau: f64) -> bool {
        self.aggregate(q) >= tau
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the scan holds no points (never true once built).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::aggregate_exact;
    use karl_testkit::rng::StdRng;
    use karl_testkit::rng::{Rng, SeedableRng};

    fn random_points(n: usize, d: usize, seed: u64) -> PointSet {
        let mut rng = StdRng::seed_from_u64(seed);
        PointSet::new(d, (0..n * d).map(|_| rng.random_range(-1.0..1.0)).collect())
    }

    #[test]
    fn scan_matches_ground_truth() {
        let ps = random_points(80, 3, 1);
        let w: Vec<f64> = (0..80).map(|i| (i as f64 * 0.7).sin()).collect();
        let kernel = Kernel::gaussian(1.2);
        let scan = Scan::new(ps.clone(), w.clone(), kernel);
        let q = [0.1, -0.2, 0.3];
        let truth = aggregate_exact(&kernel, &ps, &w, &q);
        assert!((scan.aggregate(&q) - truth).abs() < 1e-12);
        assert!(scan.tkaq(&q, truth - 0.01));
        assert!(!(scan.tkaq(&q, truth + 0.01)));
        assert_eq!(scan.ekaq(&q, 0.5), scan.aggregate(&q));
    }

    #[test]
    fn libsvm_scan_matches_scan_for_all_kernels() {
        let ps = random_points(60, 4, 2);
        let w = vec![0.5; 60];
        let q = [0.2, 0.4, -0.6, 0.8];
        for kernel in [
            Kernel::gaussian(0.9),
            Kernel::polynomial(0.8, 0.1, 3),
            Kernel::sigmoid(0.7, -0.2),
        ] {
            let a = Scan::new(ps.clone(), w.clone(), kernel).aggregate(&q);
            let b = LibSvmScan::new(ps.clone(), w.clone(), kernel).aggregate(&q);
            assert!((a - b).abs() < 1e-9, "{kernel:?}: {a} vs {b}");
        }
    }

    #[test]
    #[should_panic]
    fn scan_dim_mismatch_panics() {
        let ps = random_points(5, 2, 3);
        Scan::new(ps, vec![1.0; 5], Kernel::gaussian(1.0)).aggregate(&[0.0]);
    }
}
