//! Kernel functions and their reduction to scalar curves.
//!
//! The three kernels of the paper (Gaussian, polynomial, sigmoid), each
//! exposing the pieces the bound machinery needs:
//!
//! * exact per-point evaluation (with a norm-cached fast path, the same
//!   `‖q‖² − 2·q·p + ‖p‖²` expansion LIBSVM uses),
//! * the scalar interval `[x_min, x_max]` a bounding volume induces,
//! * the weighted scalar aggregate `X = Σ wᵢ·xᵢ` computed in `O(d)` from
//!   node statistics (Lemmas 2 and 5),
//! * the scalar [`Curve`] through which the kernel evaluates.

use karl_geom::{dist2, dot, norm2, BoundingShape};
use karl_tree::NodeStats;

use crate::curve::Curve;
use crate::error::KarlError;

#[inline]
fn check_gamma(gamma: f64) -> Result<(), KarlError> {
    if gamma.is_finite() && gamma > 0.0 {
        Ok(())
    } else {
        Err(KarlError::InvalidGamma { value: gamma })
    }
}

#[inline]
fn check_coef0(coef0: f64) -> Result<(), KarlError> {
    if coef0.is_finite() {
        Ok(())
    } else {
        Err(KarlError::InvalidCoef0 { value: coef0 })
    }
}

/// A kernel function `K(q, p)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Kernel {
    /// Gaussian kernel `exp(−γ·dist(q,p)²)`, `γ > 0`.
    Gaussian {
        /// Smoothing parameter `γ`.
        gamma: f64,
    },
    /// Polynomial kernel `(γ·q·p + β)^deg`, `γ > 0`.
    Polynomial {
        /// Inner-product scale `γ`.
        gamma: f64,
        /// Offset `β` (LIBSVM's `coef0`).
        coef0: f64,
        /// Degree `deg ≥ 0` (LIBSVM default 3).
        degree: u32,
    },
    /// Sigmoid kernel `tanh(γ·q·p + β)`, `γ > 0`.
    Sigmoid {
        /// Inner-product scale `γ`.
        gamma: f64,
        /// Offset `β` (LIBSVM's `coef0`).
        coef0: f64,
    },
    /// Laplacian kernel `exp(−γ·dist(q,p))`, `γ > 0` — an extension beyond
    /// the paper demonstrating Section IV's claim of kernel extensibility:
    /// it factors through the convex curve `exp(−√x)` with `x = γ²·dist²`,
    /// so the same O(d) aggregates drive its linear bounds.
    Laplacian {
        /// Decay rate `γ`.
        gamma: f64,
    },
}

impl Kernel {
    /// A Gaussian kernel with smoothing parameter `gamma`.
    ///
    /// # Panics
    /// Panics unless `gamma` is finite and positive.
    pub fn gaussian(gamma: f64) -> Self {
        Self::try_gaussian(gamma).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Validating variant of [`gaussian`](Self::gaussian).
    pub fn try_gaussian(gamma: f64) -> Result<Self, KarlError> {
        check_gamma(gamma)?;
        Ok(Kernel::Gaussian { gamma })
    }

    /// A polynomial kernel `(γ·q·p + β)^deg`.
    ///
    /// # Panics
    /// Panics unless `gamma` is finite and positive and `coef0` is finite.
    pub fn polynomial(gamma: f64, coef0: f64, degree: u32) -> Self {
        Self::try_polynomial(gamma, coef0, degree).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Validating variant of [`polynomial`](Self::polynomial).
    pub fn try_polynomial(gamma: f64, coef0: f64, degree: u32) -> Result<Self, KarlError> {
        check_gamma(gamma)?;
        check_coef0(coef0)?;
        Ok(Kernel::Polynomial {
            gamma,
            coef0,
            degree,
        })
    }

    /// A sigmoid kernel `tanh(γ·q·p + β)`.
    ///
    /// # Panics
    /// Panics unless `gamma` is finite and positive and `coef0` is finite.
    pub fn sigmoid(gamma: f64, coef0: f64) -> Self {
        Self::try_sigmoid(gamma, coef0).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Validating variant of [`sigmoid`](Self::sigmoid).
    pub fn try_sigmoid(gamma: f64, coef0: f64) -> Result<Self, KarlError> {
        check_gamma(gamma)?;
        check_coef0(coef0)?;
        Ok(Kernel::Sigmoid { gamma, coef0 })
    }

    /// A Laplacian kernel `exp(−γ·dist(q,p))`.
    ///
    /// # Panics
    /// Panics unless `gamma` is finite and positive.
    pub fn laplacian(gamma: f64) -> Self {
        Self::try_laplacian(gamma).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Validating variant of [`laplacian`](Self::laplacian).
    pub fn try_laplacian(gamma: f64) -> Result<Self, KarlError> {
        check_gamma(gamma)?;
        Ok(Kernel::Laplacian { gamma })
    }

    /// The scalar curve `f` with `K(q,p) = f(x(q,p))`.
    #[inline]
    pub fn curve(&self) -> Curve {
        match *self {
            Kernel::Gaussian { .. } => Curve::NegExp,
            Kernel::Polynomial { degree, .. } => Curve::PowInt { degree },
            Kernel::Sigmoid { .. } => Curve::Tanh,
            Kernel::Laplacian { .. } => Curve::NegExpSqrt,
        }
    }

    /// Exact `K(q, p)`.
    #[inline]
    pub fn eval(&self, q: &[f64], p: &[f64]) -> f64 {
        match *self {
            Kernel::Gaussian { gamma } => (-gamma * dist2(q, p)).exp(),
            Kernel::Polynomial {
                gamma,
                coef0,
                degree,
            } => (gamma * dot(q, p) + coef0).powi(degree as i32),
            Kernel::Sigmoid { gamma, coef0 } => (gamma * dot(q, p) + coef0).tanh(),
            Kernel::Laplacian { gamma } => (-gamma * dist2(q, p).sqrt()).exp(),
        }
    }

    /// Exact `K(q, p)` using precomputed squared norms, the expansion
    /// `dist² = ‖q‖² − 2·q·p + ‖p‖²` (only the Gaussian kernel needs the
    /// norms; the others reduce to the dot product anyway).
    #[inline]
    pub fn eval_cached(&self, q: &[f64], q_norm2: f64, p: &[f64], p_norm2: f64) -> f64 {
        match *self {
            Kernel::Gaussian { gamma } => {
                let d2 = (q_norm2 - 2.0 * dot(q, p) + p_norm2).max(0.0);
                (-gamma * d2).exp()
            }
            Kernel::Laplacian { gamma } => {
                let d2 = (q_norm2 - 2.0 * dot(q, p) + p_norm2).max(0.0);
                (-gamma * d2.sqrt()).exp()
            }
            _ => self.eval(q, p),
        }
    }

    /// The per-point scalar `x(q, p)` with `K = f(x)`.
    #[inline]
    pub fn x_of(&self, q: &[f64], p: &[f64]) -> f64 {
        match *self {
            Kernel::Gaussian { gamma } => gamma * dist2(q, p),
            Kernel::Laplacian { gamma } => gamma * gamma * dist2(q, p),
            Kernel::Polynomial { gamma, coef0, .. } | Kernel::Sigmoid { gamma, coef0 } => {
                gamma * dot(q, p) + coef0
            }
        }
    }

    /// The interval `[x_min, x_max]` covering `x(q, p)` for every point `p`
    /// inside `shape`.
    #[inline]
    pub fn x_interval<S: BoundingShape>(&self, shape: &S, q: &[f64]) -> (f64, f64) {
        match *self {
            Kernel::Gaussian { gamma } => (gamma * shape.mindist2(q), gamma * shape.maxdist2(q)),
            Kernel::Laplacian { gamma } => {
                let g2 = gamma * gamma;
                (g2 * shape.mindist2(q), g2 * shape.maxdist2(q))
            }
            Kernel::Polynomial { gamma, coef0, .. } | Kernel::Sigmoid { gamma, coef0 } => (
                gamma * shape.ip_min(q) + coef0,
                gamma * shape.ip_max(q) + coef0,
            ),
        }
    }

    /// The weighted scalar aggregate `X = Σᵢ wᵢ·x(q, pᵢ)` over a node,
    /// computed in `O(d)` from the node statistics:
    ///
    /// * Gaussian: `X = γ·(W‖q‖² − 2·q·a + b)` (Lemma 2 / Lemma 5),
    /// * polynomial & sigmoid: `X = γ·(q·a) + β·W` (Section IV-B).
    #[inline]
    pub fn x_aggregate(&self, stats: &NodeStats, q: &[f64], q_norm2: f64) -> f64 {
        match *self {
            Kernel::Gaussian { gamma } => gamma * stats.weighted_dist2_sum(q, q_norm2),
            Kernel::Laplacian { gamma } => gamma * gamma * stats.weighted_dist2_sum(q, q_norm2),
            Kernel::Polynomial { gamma, coef0, .. } | Kernel::Sigmoid { gamma, coef0 } => {
                gamma * stats.weighted_ip_sum(q) + coef0 * stats.weight_sum
            }
        }
    }

    /// Exact weighted aggregation `Σᵢ wᵢ·K(q, pᵢ)` over the contiguous
    /// range `[start, end)` of a reordered point buffer, using the cached
    /// squared norms. This is the refinement step applied to leaves.
    ///
    /// The loop is unrolled 4-wide with independent partial sums: the four
    /// kernel evaluations per block carry no dependency on each other, so
    /// the accumulator chain stops serializing the floating-point adds and
    /// LLVM can keep the `O(d)` dot products vectorized. The blocked
    /// summation order is fixed (it is part of the determinism guarantee:
    /// batch and sequential execution share this exact code path).
    ///
    /// # Panics
    /// Panics in debug builds if the range or buffer lengths are
    /// inconsistent; release callers are trusted (the evaluator validates
    /// its buffers once at build time).
    #[allow(clippy::too_many_arguments)] // hot path: flat scalars beat a params struct
    pub fn eval_range(
        &self,
        points: &karl_geom::PointSet,
        weights: &[f64],
        norms2: &[f64],
        start: usize,
        end: usize,
        q: &[f64],
        q_norm2: f64,
    ) -> f64 {
        debug_assert!(start <= end && end <= points.len(), "range out of bounds");
        debug_assert_eq!(weights.len(), points.len(), "weights length mismatch");
        debug_assert_eq!(norms2.len(), points.len(), "norms2 length mismatch");
        let w = &weights[start..end];
        let n2 = &norms2[start..end];
        let blocks = w.len() / 4 * 4;
        let mut acc = [0.0f64; 4];
        for j in (0..blocks).step_by(4) {
            let i = start + j;
            acc[0] += w[j] * self.eval_cached(q, q_norm2, points.point(i), n2[j]);
            acc[1] += w[j + 1] * self.eval_cached(q, q_norm2, points.point(i + 1), n2[j + 1]);
            acc[2] += w[j + 2] * self.eval_cached(q, q_norm2, points.point(i + 2), n2[j + 2]);
            acc[3] += w[j + 3] * self.eval_cached(q, q_norm2, points.point(i + 3), n2[j + 3]);
        }
        let mut tail = 0.0;
        for j in blocks..w.len() {
            tail += w[j] * self.eval_cached(q, q_norm2, points.point(start + j), n2[j]);
        }
        (acc[0] + acc[1]) + (acc[2] + acc[3]) + tail
    }

    /// The `γ` parameter common to all kernels.
    #[inline]
    pub fn gamma(&self) -> f64 {
        match *self {
            Kernel::Gaussian { gamma }
            | Kernel::Polynomial { gamma, .. }
            | Kernel::Sigmoid { gamma, .. }
            | Kernel::Laplacian { gamma } => gamma,
        }
    }
}

/// Convenience: exact `F_P(q) = Σᵢ wᵢ·K(q, pᵢ)` over a whole point set,
/// without any index. This is the SCAN baseline's inner computation and the
/// ground truth for every test in the workspace.
pub fn aggregate_exact(
    kernel: &Kernel,
    points: &karl_geom::PointSet,
    weights: &[f64],
    q: &[f64],
) -> f64 {
    assert_eq!(weights.len(), points.len());
    let qn = norm2(q);
    let mut acc = 0.0;
    for (i, p) in points.iter().enumerate() {
        acc += weights[i] * kernel.eval_cached(q, qn, p, norm2(p));
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use karl_geom::{PointSet, Rect};
    use karl_testkit::prop_assert;
    use karl_testkit::props::vec_of;

    #[test]
    fn gaussian_eval() {
        let k = Kernel::gaussian(0.5);
        let v = k.eval(&[0.0, 0.0], &[1.0, 1.0]);
        assert!((v - (-1.0f64).exp()).abs() < 1e-12);
        assert_eq!(k.eval(&[2.0, 3.0], &[2.0, 3.0]), 1.0);
    }

    #[test]
    fn polynomial_eval() {
        let k = Kernel::polynomial(2.0, 1.0, 3);
        // (2*(1*2 + 0*0) + 1)^3 = 125
        assert_eq!(k.eval(&[1.0, 0.0], &[2.0, 0.0]), 125.0);
    }

    #[test]
    fn sigmoid_eval() {
        let k = Kernel::sigmoid(1.0, 0.0);
        assert_eq!(k.eval(&[0.0], &[5.0]), 0.0);
        assert!((k.eval(&[1.0], &[1.0]) - 1.0f64.tanh()).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn non_positive_gamma_panics() {
        Kernel::gaussian(0.0);
    }

    #[test]
    fn cached_eval_matches_plain() {
        let k = Kernel::gaussian(0.7);
        let q = [1.0, -2.0, 0.5];
        let p = [0.3, 0.1, -0.9];
        let plain = k.eval(&q, &p);
        let cached = k.eval_cached(&q, norm2(&q), &p, norm2(&p));
        assert!((plain - cached).abs() < 1e-12);
    }

    #[test]
    fn x_interval_brackets_x_of() {
        let ps = PointSet::new(2, vec![0.0, 0.0, 1.0, 2.0, -1.0, 0.5]);
        let idx: Vec<usize> = (0..3).collect();
        let rect = Rect::bounding(&ps, &idx);
        let q = [0.5, -0.5];
        for k in [
            Kernel::gaussian(0.8),
            Kernel::polynomial(1.5, 0.3, 3),
            Kernel::sigmoid(1.2, -0.1),
        ] {
            let (lo, hi) = k.x_interval(&rect, &q);
            for p in ps.iter() {
                let x = k.x_of(&q, p);
                assert!(
                    lo <= x + 1e-12 && x <= hi + 1e-12,
                    "{k:?}: {x} ∉ [{lo},{hi}]"
                );
            }
        }
    }

    #[test]
    fn aggregate_exact_simple() {
        let ps = PointSet::new(1, vec![0.0, 1.0]);
        let k = Kernel::gaussian(1.0);
        let f = aggregate_exact(&k, &ps, &[2.0, 3.0], &[0.0]);
        assert!((f - (2.0 + 3.0 * (-1.0f64).exp())).abs() < 1e-12);
    }

    karl_testkit::props! {
        /// X aggregate from node stats equals the brute-force Σ wᵢ·xᵢ.
        #[test]
        fn prop_x_aggregate_matches_bruteforce(
            rows in vec_of(vec_of(-5.0f64..5.0, 3), 1..10),
            ws in vec_of(0.01f64..4.0, 10),
            q in vec_of(-5.0f64..5.0, 3),
            kid in 0usize..3,
        ) {
            let ps = PointSet::from_rows(&rows);
            let w = &ws[..ps.len()];
            let kernel = [
                Kernel::gaussian(0.6),
                Kernel::polynomial(0.9, 0.2, 3),
                Kernel::sigmoid(1.1, 0.4),
            ][kid];
            let stats = NodeStats::from_range(&ps, w, 0, ps.len());
            let fast = kernel.x_aggregate(&stats, &q, norm2(&q));
            let slow: f64 = (0..ps.len())
                .map(|i| w[i] * kernel.x_of(&q, ps.point(i)))
                .sum();
            prop_assert!((fast - slow).abs() / (1.0 + slow.abs()) < 1e-9);
        }

        /// eval_range over the full range equals aggregate_exact.
        #[test]
        fn prop_eval_range_matches_aggregate(
            rows in vec_of(vec_of(-3.0f64..3.0, 2), 1..10),
            q in vec_of(-3.0f64..3.0, 2),
        ) {
            let ps = PointSet::from_rows(&rows);
            let w: Vec<f64> = (0..ps.len()).map(|i| 1.0 + i as f64 * 0.1).collect();
            let norms = ps.squared_norms();
            let k = Kernel::gaussian(0.5);
            let fast = k.eval_range(&ps, &w, &norms, 0, ps.len(), &q, norm2(&q));
            let slow = aggregate_exact(&k, &ps, &w, &q);
            prop_assert!((fast - slow).abs() / (1.0 + slow.abs()) < 1e-10);
        }
    }
}
