//! Evaluator-level persistence: save a built evaluator to the on-disk
//! format of [`karl_tree::persist`] and restore it zero-copy.
//!
//! The tree crate's format stores the frozen node buffers and the
//! reordered leaf buffers verbatim, plus an opaque application-metadata
//! section. This module defines that metadata — [`IndexMeta`], a small
//! fixed-layout record carrying the kernel, the bound method, and the
//! storage-tuning decision — so a file round-trips into a ready-to-query
//! evaluator with no per-node work and no sidecar configuration.
//!
//! A restored evaluator answers **bitwise identically** to the one that
//! wrote the file: the frozen engine reads exactly the buffers that were
//! serialized, in the same order (pinned by
//! `tests/index_persist_equivalence.rs`). Only the pointer-arena engine
//! is unavailable on a loaded evaluator
//! ([`KarlError::PointerEngineUnavailable`]).

use std::path::Path;

use karl_geom::{Ball, Rect};
use karl_tree::{LoadedIndex, NodeShape, ShapeFamily};

use crate::bounds::BoundMethod;
use crate::error::KarlError;
use crate::eval::Evaluator;
use crate::kernel::Kernel;
use crate::tuning::{AnyEvaluator, StorageCalibration, StorageProfile};

/// Encoded length of [`IndexMeta`] (fixed little-endian layout).
pub const META_LEN: usize = 56;

/// Version of the metadata record (independent of the container format
/// version in the file header).
const META_VERSION: u32 = 1;

const KERNEL_GAUSSIAN: u32 = 0;
const KERNEL_POLYNOMIAL: u32 = 1;
const KERNEL_SIGMOID: u32 = 2;
const KERNEL_LAPLACIAN: u32 = 3;

/// Query configuration stored alongside the tree buffers, so an index
/// file is self-describing: loading needs no kernel/method flags and
/// `karl index info` can report how the index was built and tuned.
///
/// Encoded as a 56-byte little-endian record (see the layout table in
/// `DESIGN.md` §14); unlike the tree payload it is byte-order-normalized
/// because it is tiny and decoded once.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IndexMeta {
    /// The kernel the evaluator aggregates with.
    pub kernel: Kernel,
    /// The bound method (SOTA or KARL).
    pub method: BoundMethod,
    /// Leaf capacity the trees were built with.
    pub leaf_capacity: u32,
    /// Storage profile the layout was tuned for.
    pub profile: StorageProfile,
    /// The cost-model calibration recorded at build time.
    pub calibration: StorageCalibration,
}

impl IndexMeta {
    /// Serializes the record into its fixed 56-byte layout.
    pub fn encode(&self) -> [u8; META_LEN] {
        let (kind, gamma, coef0, degree) = match self.kernel {
            Kernel::Gaussian { gamma } => (KERNEL_GAUSSIAN, gamma, 0.0, 0),
            Kernel::Polynomial {
                gamma,
                coef0,
                degree,
            } => (KERNEL_POLYNOMIAL, gamma, coef0, degree),
            Kernel::Sigmoid { gamma, coef0 } => (KERNEL_SIGMOID, gamma, coef0, 0),
            Kernel::Laplacian { gamma } => (KERNEL_LAPLACIAN, gamma, 0.0, 0),
        };
        let mut out = [0u8; META_LEN];
        out[0..4].copy_from_slice(&META_VERSION.to_le_bytes());
        out[4..8].copy_from_slice(&kind.to_le_bytes());
        out[8..16].copy_from_slice(&gamma.to_le_bytes());
        out[16..24].copy_from_slice(&coef0.to_le_bytes());
        out[24..28].copy_from_slice(&degree.to_le_bytes());
        out[28..32].copy_from_slice(
            &match self.method {
                BoundMethod::Sota => 0u32,
                BoundMethod::Karl => 1u32,
            }
            .to_le_bytes(),
        );
        out[32..36].copy_from_slice(&self.leaf_capacity.to_le_bytes());
        out[36..40].copy_from_slice(
            &match self.profile {
                StorageProfile::Memory => 0u32,
                StorageProfile::Disk => 1u32,
            }
            .to_le_bytes(),
        );
        out[40..48].copy_from_slice(&self.calibration.node_visit_ns.to_le_bytes());
        out[48..56].copy_from_slice(&self.calibration.byte_read_ns.to_le_bytes());
        out
    }

    /// Decodes and validates the record (typed [`KarlError::IndexFormat`]
    /// on any malformed field; kernel parameters go through the same
    /// validators as the builder API).
    pub fn decode(bytes: &[u8]) -> Result<Self, KarlError> {
        if bytes.len() != META_LEN {
            return Err(KarlError::IndexFormat {
                reason: format!(
                    "application metadata is {} bytes, expected {META_LEN}",
                    bytes.len()
                ),
            });
        }
        let u32_at = |off: usize| u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap());
        let f64_at = |off: usize| f64::from_le_bytes(bytes[off..off + 8].try_into().unwrap());
        let version = u32_at(0);
        if version != META_VERSION {
            return Err(KarlError::IndexFormat {
                reason: format!("metadata version {version} unsupported (expected {META_VERSION})"),
            });
        }
        let gamma = f64_at(8);
        let coef0 = f64_at(16);
        let degree = u32_at(24);
        let kernel = match u32_at(4) {
            KERNEL_GAUSSIAN => Kernel::try_gaussian(gamma),
            KERNEL_POLYNOMIAL => Kernel::try_polynomial(gamma, coef0, degree),
            KERNEL_SIGMOID => Kernel::try_sigmoid(gamma, coef0),
            KERNEL_LAPLACIAN => Kernel::try_laplacian(gamma),
            k => {
                return Err(KarlError::IndexFormat {
                    reason: format!("unknown kernel tag {k}"),
                })
            }
        }
        .map_err(|e| KarlError::IndexFormat {
            reason: format!("invalid kernel parameters: {e}"),
        })?;
        let method = match u32_at(28) {
            0 => BoundMethod::Sota,
            1 => BoundMethod::Karl,
            m => {
                return Err(KarlError::IndexFormat {
                    reason: format!("unknown bound-method tag {m}"),
                })
            }
        };
        let leaf_capacity = u32_at(32);
        if leaf_capacity == 0 {
            return Err(KarlError::IndexFormat {
                reason: "zero leaf capacity in metadata".into(),
            });
        }
        let profile = match u32_at(36) {
            0 => StorageProfile::Memory,
            1 => StorageProfile::Disk,
            p => {
                return Err(KarlError::IndexFormat {
                    reason: format!("unknown storage-profile tag {p}"),
                })
            }
        };
        let (node_visit_ns, byte_read_ns) = (f64_at(40), f64_at(48));
        let calib_ok = |v: f64| v.is_finite() && v >= 0.0;
        if !calib_ok(node_visit_ns) || !calib_ok(byte_read_ns) {
            return Err(KarlError::IndexFormat {
                reason: "non-finite or negative calibration in metadata".into(),
            });
        }
        Ok(Self {
            kernel,
            method,
            leaf_capacity,
            profile,
            calibration: StorageCalibration {
                node_visit_ns,
                byte_read_ns,
            },
        })
    }
}

impl<S: NodeShape> Evaluator<S> {
    /// Serializes this evaluator's frozen index and leaf buffers (plus
    /// `meta`) to `path`; returns the file length in bytes. Works for
    /// built and loaded evaluators alike, so indexes can be re-saved.
    pub fn write_index_file(&self, path: &Path, meta: &IndexMeta) -> Result<u64, KarlError> {
        let (pos, neg) = self.side_images();
        Ok(karl_tree::write_index_file(path, pos, neg, &meta.encode())?)
    }

    /// Restores an evaluator from an index file written by
    /// [`write_index_file`](Self::write_index_file), zero-copy: the file
    /// is read into one aligned arena and every buffer is a view into it.
    ///
    /// Fails with a typed [`KarlError`] if the file is corrupt, written
    /// by an incompatible build, or holds the other index family (use
    /// [`AnyEvaluator::from_index_file`] for family dispatch).
    pub fn from_index_file(path: &Path) -> Result<(Self, IndexMeta), KarlError> {
        Self::from_loaded_index(karl_tree::load_index_file(path)?)
    }

    /// [`from_index_file`](Self::from_index_file) through an `mmap(2)` of
    /// the file instead of a bulk read (still fully validated up front).
    #[cfg(feature = "mmap")]
    pub fn from_index_file_mmap(path: &Path) -> Result<(Self, IndexMeta), KarlError> {
        Self::from_loaded_index(karl_tree::persist::load_index_file_mmap(path)?)
    }

    fn from_loaded_index(loaded: LoadedIndex) -> Result<(Self, IndexMeta), KarlError> {
        if loaded.family != S::FAMILY {
            return Err(KarlError::IndexFormat {
                reason: format!(
                    "index holds a {}-tree, evaluator requires a {}-tree",
                    loaded.family,
                    S::FAMILY
                ),
            });
        }
        let meta = IndexMeta::decode(&loaded.app_meta)?;
        let side = |s: Option<karl_tree::LoadedSide>| s.map(|s| (s.frozen, s.leaf));
        let eval = Evaluator::from_loaded(
            side(loaded.pos),
            side(loaded.neg),
            meta.kernel,
            meta.method,
        )?;
        Ok((eval, meta))
    }
}

impl AnyEvaluator {
    /// Restores an evaluator from an index file, dispatching on the
    /// family recorded in the file header.
    pub fn from_index_file(path: &Path) -> Result<(Self, IndexMeta), KarlError> {
        let loaded = karl_tree::load_index_file(path)?;
        match loaded.family {
            ShapeFamily::Rect => Evaluator::<Rect>::from_loaded_index(loaded)
                .map(|(e, m)| (AnyEvaluator::Kd(e), m)),
            ShapeFamily::Ball => Evaluator::<Ball>::from_loaded_index(loaded)
                .map(|(e, m)| (AnyEvaluator::Ball(e), m)),
        }
    }

    /// Serializes whichever family backs this evaluator (see
    /// [`Evaluator::write_index_file`]).
    pub fn write_index_file(&self, path: &Path, meta: &IndexMeta) -> Result<u64, KarlError> {
        match self {
            AnyEvaluator::Kd(e) => e.write_index_file(path, meta),
            AnyEvaluator::Ball(e) => e.write_index_file(path, meta),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(kernel: Kernel) -> IndexMeta {
        IndexMeta {
            kernel,
            method: BoundMethod::Karl,
            leaf_capacity: 40,
            profile: StorageProfile::Disk,
            calibration: StorageCalibration::canned(StorageProfile::Disk),
        }
    }

    #[test]
    fn meta_round_trips_every_kernel() {
        for kernel in [
            Kernel::gaussian(0.5),
            Kernel::polynomial(0.25, 1.5, 3),
            Kernel::sigmoid(0.1, -0.5),
            Kernel::laplacian(2.0),
        ] {
            let m = meta(kernel);
            let bytes = m.encode();
            assert_eq!(bytes.len(), META_LEN);
            assert_eq!(IndexMeta::decode(&bytes).unwrap(), m);
        }
    }

    #[test]
    fn meta_rejects_malformed_records() {
        let m = meta(Kernel::gaussian(1.0));
        let good = m.encode();

        // Wrong length.
        assert!(matches!(
            IndexMeta::decode(&good[..40]),
            Err(KarlError::IndexFormat { .. })
        ));
        // Unknown kernel tag.
        let mut bad = good;
        bad[4..8].copy_from_slice(&9u32.to_le_bytes());
        assert!(matches!(
            IndexMeta::decode(&bad),
            Err(KarlError::IndexFormat { .. })
        ));
        // Invalid gamma (negative) must fail the kernel validator.
        let mut bad = good;
        bad[8..16].copy_from_slice(&(-1.0f64).to_le_bytes());
        assert!(matches!(
            IndexMeta::decode(&bad),
            Err(KarlError::IndexFormat { .. })
        ));
        // Unknown method / profile tags, zero leaf capacity.
        for (off, val) in [(28usize, 7u32), (36, 7), (32, 0)] {
            let mut bad = good;
            bad[off..off + 4].copy_from_slice(&val.to_le_bytes());
            assert!(
                matches!(IndexMeta::decode(&bad), Err(KarlError::IndexFormat { .. })),
                "offset {off}"
            );
        }
        // Non-finite calibration.
        let mut bad = good;
        bad[40..48].copy_from_slice(&f64::NAN.to_le_bytes());
        assert!(matches!(
            IndexMeta::decode(&bad),
            Err(KarlError::IndexFormat { .. })
        ));
    }
}
