//! Per-node bound functions: SOTA's constant bounds and KARL's linear
//! bounds.
//!
//! Both take a tree node (bounding volume + aggregates) and a query point
//! and return `[LB, UB]` with `LB ≤ Σᵢ wᵢ·K(q, pᵢ) ≤ UB`, where the sum
//! ranges over the node's points and all node weights are non-negative
//! (negative weights are handled a level up by the P⁺/P⁻ split of
//! Section IV-A2).

use karl_geom::{
    ball_ball_dist, ball_ball_dist_nodes, ball_ball_ip, ball_ball_ip_nodes, ball_dist,
    ball_dist_nodes, ball_ip, ball_ip_nodes, norm2, rect_dist, rect_dist_nodes, rect_ip,
    rect_ip_nodes, rect_rect_dist, rect_rect_dist_nodes, rect_rect_ip, rect_rect_ip_nodes,
    BallQueryNode, BoundingShape, RectQueryNode,
};
use karl_tree::{FrozenShapes, FrozenTree, NodeId, NodeStats};

use crate::curve::Curve;
use crate::envelope::{envelope_parts, EnvelopeCache, EnvelopeParts};
use crate::kernel::Kernel;

/// Which per-node bound functions the evaluator uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoundMethod {
    /// Constant min/max bounds of the state of the art
    /// (`W·f_min`, `W·f_max`) [Gray & Moore; Gan & Bailis].
    Sota,
    /// KARL's linear bound functions (chord / optimal tangent / rotation
    /// envelopes), clamped by the constant bounds so they are never looser.
    Karl,
}

/// A `[lower, upper]` bound pair on a node's weighted kernel aggregate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundPair {
    /// Lower bound.
    pub lb: f64,
    /// Upper bound.
    pub ub: f64,
}

impl BoundPair {
    /// The refinement priority of the paper's framework: the bound gap.
    #[inline]
    pub fn gap(&self) -> f64 {
        self.ub - self.lb
    }
}

/// Computes the `[LB, UB]` pair for one node.
///
/// `q_norm2` must be `‖q‖²` (hoisted out because one query visits many
/// nodes).
pub fn node_bounds<S: BoundingShape>(
    method: BoundMethod,
    kernel: &Kernel,
    shape: &S,
    stats: &NodeStats,
    q: &[f64],
    q_norm2: f64,
) -> BoundPair {
    let w = stats.weight_sum;
    if w <= 0.0 {
        // A node of all-zero weights contributes nothing either way.
        return BoundPair { lb: 0.0, ub: 0.0 };
    }
    let (lo, hi) = kernel.x_interval(shape, q);
    let x_agg = match method {
        // SOTA never needs the aggregate; 0.0 is ignored by assemble.
        BoundMethod::Sota => 0.0,
        BoundMethod::Karl => kernel.x_aggregate(stats, q, q_norm2),
    };
    assemble(method, kernel.curve(), w, lo, hi, x_agg)
}

/// Constant (SOTA) bound pair `w · [fmin, fmax]`, saturating an overflow
/// to the finite range only when one actually happens — same rationale
/// as `finish_karl`'s overflow path, same bits on finite products.
#[inline]
fn sota_pair(w: f64, (fmin, fmax): (f64, f64)) -> BoundPair {
    let lb = w * fmin;
    let ub = w * fmax;
    if lb.is_finite() && ub.is_finite() {
        return BoundPair { lb, ub };
    }
    BoundPair {
        lb: lb.clamp(-f64::MAX, f64::MAX),
        ub: ub.clamp(-f64::MAX, f64::MAX),
    }
}

/// Aggregates one node's envelope parts into the final KARL `[LB, UB]`
/// pair: evaluate the linear bounds at the aggregate `(X, W)` and clamp
/// with the constant bounds carried in the same parts.
#[inline]
fn finish_karl(parts: &EnvelopeParts, w: f64, x_agg: f64) -> BoundPair {
    let sota_lb = w * parts.fmin;
    let sota_ub = w * parts.fmax;
    let lb = parts.env.lower.m * x_agg + parts.env.lower.c * w;
    let ub = parts.env.upper.m * x_agg + parts.env.upper.c * w;
    // The linear bounds are provably tighter on convex intervals
    // (Lemmas 3-4); on the mixed intervals of Section IV-B the
    // endpoint-anchored lines can overshoot the constant bounds at
    // the far endpoint, so take the tighter of the two for free.
    let out = BoundPair {
        lb: lb.max(sota_lb),
        ub: ub.min(sota_ub),
    };
    if out.lb.is_finite() && out.ub.is_finite() {
        // Fast path: exactly the pre-saturation arithmetic, bit for bit.
        // IEEE max/min prefer the non-NaN operand, so a NaN linear bound
        // (from `0 · ±inf`) already fell back to the constant bound here.
        return out;
    }
    // Overflow path. ±inf per-node bounds would poison the evaluator's
    // subtract-re-add accounting with `inf − inf = NaN`, so saturate the
    // constant bounds to the finite range; a non-finite linear bound
    // (±inf from an overflowed aggregate `X`) says nothing — fall back
    // to the constant bound alone.
    let sota_lb = sota_lb.clamp(-f64::MAX, f64::MAX);
    let sota_ub = sota_ub.clamp(-f64::MAX, f64::MAX);
    BoundPair {
        lb: if lb.is_finite() { lb.max(sota_lb) } else { sota_lb },
        ub: if ub.is_finite() { ub.min(sota_ub) } else { sota_ub },
    }
}

/// Turns the scalar interval `[lo, hi]`, the node weight `w` and (for
/// KARL) the scalar aggregate `X` into the final `[LB, UB]` pair. Shared
/// verbatim by the pointer and frozen evaluation paths so their bound
/// assembly is bit-identical.
#[inline]
fn assemble(method: BoundMethod, curve: Curve, w: f64, lo: f64, hi: f64, x_agg: f64) -> BoundPair {
    match method {
        BoundMethod::Sota => sota_pair(w, curve.range(lo, hi)),
        BoundMethod::Karl => finish_karl(&envelope_parts(curve, lo, hi, x_agg / w), w, x_agg),
    }
}

/// How a kernel maps geometry to its scalar `x`: through squared distance
/// (Gaussian/Laplacian, with the γ or γ² prescale) or through the inner
/// product (polynomial/sigmoid).
#[derive(Debug, Clone, Copy)]
enum XMode {
    /// `x = scale · dist²` — `scale` is γ (Gaussian) or γ² (Laplacian).
    Dist {
        /// Prescale applied to squared distances.
        scale: f64,
    },
    /// `x = γ · (q·p) + β`.
    Ip {
        /// Inner-product scale γ.
        gamma: f64,
        /// Offset β.
        coef0: f64,
    },
}

/// Per-query invariants of bound evaluation, hoisted out of the per-node
/// path: `‖q‖²` (and its square root for ball inner products), the scalar
/// curve, the kernel's constants and the bound method. Built once per
/// query; every frozen-tree node probe then reuses it.
#[derive(Debug, Clone)]
pub struct QueryContext<'q> {
    q: &'q [f64],
    q_norm2: f64,
    q_norm: f64,
    curve: Curve,
    method: BoundMethod,
    mode: XMode,
    karl: bool,
}

impl<'q> QueryContext<'q> {
    /// Precomputes the per-query invariants for `q` under `kernel` and
    /// `method`.
    pub fn new(kernel: &Kernel, method: BoundMethod, q: &'q [f64]) -> Self {
        let q_norm2 = norm2(q);
        let mode = match *kernel {
            Kernel::Gaussian { gamma } => XMode::Dist { scale: gamma },
            Kernel::Laplacian { gamma } => XMode::Dist {
                scale: gamma * gamma,
            },
            Kernel::Polynomial { gamma, coef0, .. } | Kernel::Sigmoid { gamma, coef0 } => {
                XMode::Ip { gamma, coef0 }
            }
        };
        Self {
            q,
            q_norm2,
            q_norm: q_norm2.sqrt(),
            curve: kernel.curve(),
            method,
            mode,
            karl: method == BoundMethod::Karl,
        }
    }

    /// The query point.
    #[inline]
    pub fn q(&self) -> &[f64] {
        self.q
    }

    /// The hoisted `‖q‖²`.
    #[inline]
    pub fn q_norm2(&self) -> f64 {
        self.q_norm2
    }
}

/// The geometry pass's per-node record: everything bound assembly needs,
/// with the `d`-dimensional work already reduced to scalars. Pass 1 of the
/// frontier kernel emits these; pass 2 turns them into [`BoundPair`]s via
/// [`assemble_interval`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeInterval {
    /// The frozen-tree node this record describes.
    pub node: NodeId,
    /// `W_R = Σ wᵢ` of the node.
    pub w: f64,
    /// Lower end of the node's scalar curve interval.
    pub lo: f64,
    /// Upper end of the node's scalar curve interval.
    pub hi: f64,
    /// The scalar aggregate `X_R` (0 under SOTA, which never reads it).
    pub x_agg: f64,
}

/// Pass 1 for a single frozen-tree node: one fused pass over the node's
/// `d` SoA coordinates yields the scalar interval and (for KARL) the
/// `q·a_R` aggregate together. The per-lane summation order matches the
/// separate pointer-path reductions, so the scalars are bit-identical to
/// the ones the pointer path feeds `assemble`.
pub fn node_interval_frozen(ctx: &QueryContext<'_>, tree: &FrozenTree, id: NodeId) -> NodeInterval {
    let w = tree.weight_sum(id);
    if w <= 0.0 {
        // A node of all-zero weights contributes nothing either way; skip
        // the geometry entirely, as the pre-interval path always did.
        return NodeInterval {
            node: id,
            w,
            lo: 0.0,
            hi: 0.0,
            x_agg: 0.0,
        };
    }
    let d = tree.dims();
    let s = id as usize * d;
    let a = tree.weighted_sum(id);
    let q = ctx.q;
    let (lo, hi, x_agg) = match (tree.shapes(), ctx.mode) {
        (FrozenShapes::Rect { lo, hi }, XMode::Dist { scale }) => {
            let (lo, hi) = (&lo[s..s + d], &hi[s..s + d]);
            let (mn, mx, qa) = if ctx.karl {
                rect_dist::<true>(q, lo, hi, a)
            } else {
                rect_dist::<false>(q, lo, hi, a)
            };
            let x_agg = if ctx.karl {
                scale * (w * ctx.q_norm2 - 2.0 * qa + tree.weighted_norm2(id))
            } else {
                0.0
            };
            (scale * mn, scale * mx, x_agg)
        }
        (FrozenShapes::Rect { lo, hi }, XMode::Ip { gamma, coef0 }) => {
            let (lo, hi) = (&lo[s..s + d], &hi[s..s + d]);
            let (mn, mx, qa) = if ctx.karl {
                rect_ip::<true>(q, lo, hi, a)
            } else {
                rect_ip::<false>(q, lo, hi, a)
            };
            let x_agg = if ctx.karl {
                gamma * qa + coef0 * w
            } else {
                0.0
            };
            (gamma * mn + coef0, gamma * mx + coef0, x_agg)
        }
        (FrozenShapes::Ball { center, radius }, XMode::Dist { scale }) => {
            let c = &center[s..s + d];
            let r = radius[id as usize];
            let (d2c, qa) = if ctx.karl {
                ball_dist::<true>(q, c, a)
            } else {
                ball_dist::<false>(q, c, a)
            };
            let dc = d2c.sqrt();
            let mn = (dc - r).max(0.0);
            let mx = dc + r;
            let x_agg = if ctx.karl {
                scale * (w * ctx.q_norm2 - 2.0 * qa + tree.weighted_norm2(id))
            } else {
                0.0
            };
            (scale * (mn * mn), scale * (mx * mx), x_agg)
        }
        (FrozenShapes::Ball { center, radius }, XMode::Ip { gamma, coef0 }) => {
            let c = &center[s..s + d];
            let (qc, qa) = if ctx.karl {
                ball_ip::<true>(q, c, a)
            } else {
                ball_ip::<false>(q, c, a)
            };
            let rq = radius[id as usize] * ctx.q_norm;
            let x_agg = if ctx.karl {
                gamma * qa + coef0 * w
            } else {
                0.0
            };
            (gamma * (qc - rq) + coef0, gamma * (qc + rq) + coef0, x_agg)
        }
    };
    NodeInterval {
        node: id,
        w,
        lo,
        hi,
        x_agg,
    }
}

/// Pass 1 for a whole frontier: resolves the `(shapes, mode)` dispatch
/// once, then streams the batched fused kernels over `ids`, appending one
/// [`NodeInterval`] per id to `out` (cleared first) in frontier order.
///
/// Each per-node probe and scalar expression is the *same* code
/// [`node_interval_frozen`] runs, so the records are bitwise identical to
/// the one-at-a-time path — except that zero-weight nodes get their
/// geometry computed rather than skipped, which [`assemble_interval`]
/// renders irrelevant by zeroing their bounds either way.
pub fn node_intervals_frozen(
    ctx: &QueryContext<'_>,
    tree: &FrozenTree,
    ids: &[NodeId],
    out: &mut Vec<NodeInterval>,
) {
    out.clear();
    out.reserve(ids.len());
    let q = ctx.q;
    let a = tree.weighted_sums();
    let karl = ctx.karl;
    let q_norm2 = ctx.q_norm2;
    let mut k = 0usize;
    match (tree.shapes(), ctx.mode) {
        (FrozenShapes::Rect { lo, hi }, XMode::Dist { scale }) => {
            let mut emit = |mn: f64, mx: f64, qa: f64| {
                let id = ids[k];
                k += 1;
                let w = tree.weight_sum(id);
                let x_agg = if karl {
                    scale * (w * q_norm2 - 2.0 * qa + tree.weighted_norm2(id))
                } else {
                    0.0
                };
                out.push(NodeInterval {
                    node: id,
                    w,
                    lo: scale * mn,
                    hi: scale * mx,
                    x_agg,
                });
            };
            if karl {
                rect_dist_nodes::<true, _>(q, lo, hi, a, ids, &mut emit);
            } else {
                rect_dist_nodes::<false, _>(q, lo, hi, a, ids, &mut emit);
            }
        }
        (FrozenShapes::Rect { lo, hi }, XMode::Ip { gamma, coef0 }) => {
            let mut emit = |mn: f64, mx: f64, qa: f64| {
                let id = ids[k];
                k += 1;
                let w = tree.weight_sum(id);
                let x_agg = if karl { gamma * qa + coef0 * w } else { 0.0 };
                out.push(NodeInterval {
                    node: id,
                    w,
                    lo: gamma * mn + coef0,
                    hi: gamma * mx + coef0,
                    x_agg,
                });
            };
            if karl {
                rect_ip_nodes::<true, _>(q, lo, hi, a, ids, &mut emit);
            } else {
                rect_ip_nodes::<false, _>(q, lo, hi, a, ids, &mut emit);
            }
        }
        (FrozenShapes::Ball { center, radius }, XMode::Dist { scale }) => {
            let mut emit = |d2c: f64, qa: f64| {
                let id = ids[k];
                k += 1;
                let w = tree.weight_sum(id);
                let r = radius[id as usize];
                let dc = d2c.sqrt();
                let mn = (dc - r).max(0.0);
                let mx = dc + r;
                let x_agg = if karl {
                    scale * (w * q_norm2 - 2.0 * qa + tree.weighted_norm2(id))
                } else {
                    0.0
                };
                out.push(NodeInterval {
                    node: id,
                    w,
                    lo: scale * (mn * mn),
                    hi: scale * (mx * mx),
                    x_agg,
                });
            };
            if karl {
                ball_dist_nodes::<true, _>(q, center, a, ids, &mut emit);
            } else {
                ball_dist_nodes::<false, _>(q, center, a, ids, &mut emit);
            }
        }
        (FrozenShapes::Ball { center, radius }, XMode::Ip { gamma, coef0 }) => {
            let mut emit = |qc: f64, qa: f64| {
                let id = ids[k];
                k += 1;
                let w = tree.weight_sum(id);
                let rq = radius[id as usize] * ctx.q_norm;
                let x_agg = if karl { gamma * qa + coef0 * w } else { 0.0 };
                out.push(NodeInterval {
                    node: id,
                    w,
                    lo: gamma * (qc - rq) + coef0,
                    hi: gamma * (qc + rq) + coef0,
                    x_agg,
                });
            };
            if karl {
                ball_ip_nodes::<true, _>(q, center, a, ids, &mut emit);
            } else {
                ball_ip_nodes::<false, _>(q, center, a, ids, &mut emit);
            }
        }
    }
}

/// Pass 2: one [`NodeInterval`] into its `[LB, UB]` pair, optionally
/// through the envelope memoization.
///
/// With `use_cache` the KARL envelope comes from
/// [`EnvelopeCache::get_or_build`]; keys are exact bit patterns, so the
/// result is bitwise identical to the direct construction regardless of
/// hit or miss. SOTA never builds envelopes and ignores the cache.
#[inline]
pub fn assemble_interval(
    method: BoundMethod,
    curve: Curve,
    iv: &NodeInterval,
    cache: &mut EnvelopeCache,
    use_cache: bool,
) -> BoundPair {
    let w = iv.w;
    if w <= 0.0 {
        // A node of all-zero weights contributes nothing either way.
        return BoundPair { lb: 0.0, ub: 0.0 };
    }
    match method {
        BoundMethod::Sota => sota_pair(w, curve.range(iv.lo, iv.hi)),
        BoundMethod::Karl => {
            let xbar = iv.x_agg / w;
            let parts = if use_cache {
                cache.get_or_build(curve, iv.lo, iv.hi, xbar)
            } else {
                envelope_parts(curve, iv.lo, iv.hi, xbar)
            };
            finish_karl(&parts, w, iv.x_agg)
        }
    }
}

/// Computes the `[LB, UB]` pair for one frozen-tree node — the fused
/// counterpart of [`node_bounds`], composed from the two frontier passes
/// ([`node_interval_frozen`] then [`assemble_interval`] without a cache).
pub fn node_bounds_frozen(ctx: &QueryContext<'_>, tree: &FrozenTree, id: NodeId) -> BoundPair {
    let iv = node_interval_frozen(ctx, tree, id);
    let w = iv.w;
    if w <= 0.0 {
        return BoundPair { lb: 0.0, ub: 0.0 };
    }
    assemble(ctx.method, ctx.curve, w, iv.lo, iv.hi, iv.x_agg)
}

// ---------------------------------------------------------------------------
// Dual-tree pair bounds: one certified interval per query-node × data-node
// ---------------------------------------------------------------------------

/// The query-side region a dual-tree pair bound quantifies over: the
/// bounding volume of a query-tree node, in the same shape family as the
/// data tree it is probed against.
#[derive(Debug, Clone)]
pub enum QueryRegion<'a> {
    /// Axis-aligned MBR `[lo, hi]` enclosing the node's queries.
    Rect {
        /// Lower corner.
        lo: &'a [f64],
        /// Upper corner.
        hi: &'a [f64],
    },
    /// Bounding ball enclosing the node's queries.
    Ball {
        /// Center of the ball.
        center: &'a [f64],
        /// Radius of the ball.
        radius: f64,
    },
}

/// Hoisted query-node constants, family-dispatched once per query node.
enum QuerySide<'a> {
    Rect(RectQueryNode<'a>),
    Ball(BallQueryNode<'a>),
}

/// Per-query-node invariants of dual-tree bound evaluation — the
/// node-level analogue of [`QueryContext`]: the query region with its
/// query-constant terms hoisted (corner squares, center norms), the
/// scalar curve, the kernel constants and the bound method. Built once
/// per query node; every data-node pair probe then reuses it.
pub struct DualQueryContext<'a> {
    side: QuerySide<'a>,
    curve: Curve,
    method: BoundMethod,
    mode: XMode,
    karl: bool,
}

impl<'a> DualQueryContext<'a> {
    /// Precomputes the per-query-node invariants for `region` under
    /// `kernel` and `method`.
    pub fn new(kernel: &Kernel, method: BoundMethod, region: QueryRegion<'a>) -> Self {
        let mode = match *kernel {
            Kernel::Gaussian { gamma } => XMode::Dist { scale: gamma },
            Kernel::Laplacian { gamma } => XMode::Dist {
                scale: gamma * gamma,
            },
            Kernel::Polynomial { gamma, coef0, .. } | Kernel::Sigmoid { gamma, coef0 } => {
                XMode::Ip { gamma, coef0 }
            }
        };
        let side = match region {
            QueryRegion::Rect { lo, hi } => QuerySide::Rect(RectQueryNode::new(lo, hi)),
            QueryRegion::Ball { center, radius } => {
                QuerySide::Ball(BallQueryNode::new(center, radius))
            }
        };
        Self {
            side,
            curve: kernel.curve(),
            method,
            mode,
            karl: method == BoundMethod::Karl,
        }
    }

    /// Builds the context for node `id` of a frozen *query* tree: the
    /// node's bounding volume becomes the [`QueryRegion`].
    pub fn from_frozen(
        kernel: &Kernel,
        method: BoundMethod,
        qtree: &'a FrozenTree,
        id: NodeId,
    ) -> Self {
        let d = qtree.dims();
        let s = id as usize * d;
        let region = match qtree.shapes() {
            FrozenShapes::Rect { lo, hi } => QueryRegion::Rect {
                lo: &lo[s..s + d],
                hi: &hi[s..s + d],
            },
            FrozenShapes::Ball { center, radius } => QueryRegion::Ball {
                center: &center[s..s + d],
                radius: radius[id as usize],
            },
        };
        Self::new(kernel, method, region)
    }

    /// The bound method the context assembles with.
    #[inline]
    pub fn method(&self) -> BoundMethod {
        self.method
    }

    /// The kernel's scalar curve.
    #[inline]
    pub fn curve(&self) -> Curve {
        self.curve
    }
}

/// The dual geometry pass's per-pair record: the scalar curve interval
/// `[lo, hi]` valid for every `(q, p)` in query-region × data-node, and
/// the aggregate interval `[x_lo, x_hi]` enclosing `X_R(q)` for every `q`
/// in the query region. [`assemble_pair`] turns it into a [`BoundPair`]
/// certified for the whole query node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PairInterval {
    /// The data-tree node this record describes.
    pub node: NodeId,
    /// `W_R = Σ wᵢ` of the data node.
    pub w: f64,
    /// Lower end of the pair's scalar curve interval.
    pub lo: f64,
    /// Upper end of the pair's scalar curve interval.
    pub hi: f64,
    /// Lower end of the aggregate interval (0 under SOTA).
    pub x_lo: f64,
    /// Upper end of the aggregate interval (0 under SOTA).
    pub x_hi: f64,
}

/// Aggregate-interval algebra shared by the single and batched ball-dist
/// pair paths: bounds `g(q) = W‖q‖² − 2·q·a` over the query ball from the
/// fused reductions, via `g(q) = (‖W·q − a‖² − ‖a‖²)/W` and the triangle
/// inequality on `‖W·q − a‖` around the query center.
#[inline]
fn ball_dist_agg(qnode: &BallQueryNode<'_>, w: f64, qa: f64, aa: f64) -> (f64, f64) {
    let v0 = (w * w * qnode.norm2() - 2.0 * w * qa + aa).max(0.0).sqrt();
    let wr = w * qnode.radius();
    let tn = (v0 - wr).max(0.0);
    let tx = v0 + wr;
    ((tn * tn - aa) / w, (tx * tx - aa) / w)
}

/// The dual pass for a single data node: one fused pair probe yields the
/// pair's scalar interval and (for KARL) the aggregate interval together.
/// Panics if the query region's shape family differs from the data
/// tree's — the dual descent always freezes both trees in one family.
pub fn pair_interval_frozen(
    ctx: &DualQueryContext<'_>,
    tree: &FrozenTree,
    id: NodeId,
) -> PairInterval {
    let w = tree.weight_sum(id);
    if w <= 0.0 {
        // A node of all-zero weights contributes nothing either way.
        return PairInterval {
            node: id,
            w,
            lo: 0.0,
            hi: 0.0,
            x_lo: 0.0,
            x_hi: 0.0,
        };
    }
    let d = tree.dims();
    let s = id as usize * d;
    let a = tree.weighted_sum(id);
    let (lo, hi, x_lo, x_hi) = match (&ctx.side, tree.shapes(), ctx.mode) {
        (QuerySide::Rect(qn), FrozenShapes::Rect { lo, hi }, XMode::Dist { scale }) => {
            let (lo, hi) = (&lo[s..s + d], &hi[s..s + d]);
            let (mn, mx, gn, gx) = if ctx.karl {
                rect_rect_dist::<true>(qn, lo, hi, a, w)
            } else {
                rect_rect_dist::<false>(qn, lo, hi, &[], 0.0)
            };
            let b = tree.weighted_norm2(id);
            let (x_lo, x_hi) = if ctx.karl {
                (scale * (gn + b), scale * (gx + b))
            } else {
                (0.0, 0.0)
            };
            (scale * mn, scale * mx, x_lo, x_hi)
        }
        (QuerySide::Rect(qn), FrozenShapes::Rect { lo, hi }, XMode::Ip { gamma, coef0 }) => {
            let (lo, hi) = (&lo[s..s + d], &hi[s..s + d]);
            let (mn, mx, an, ax) = if ctx.karl {
                rect_rect_ip::<true>(qn, lo, hi, a)
            } else {
                rect_rect_ip::<false>(qn, lo, hi, &[])
            };
            let (x_lo, x_hi) = if ctx.karl {
                (gamma * an + coef0 * w, gamma * ax + coef0 * w)
            } else {
                (0.0, 0.0)
            };
            (gamma * mn + coef0, gamma * mx + coef0, x_lo, x_hi)
        }
        (QuerySide::Ball(qn), FrozenShapes::Ball { center, radius }, XMode::Dist { scale }) => {
            let c = &center[s..s + d];
            let r = radius[id as usize];
            let (d2c, qa, aa) = if ctx.karl {
                ball_ball_dist::<true>(qn, c, a)
            } else {
                ball_ball_dist::<false>(qn, c, &[])
            };
            let dc = d2c.sqrt();
            let mn = (dc - r - qn.radius()).max(0.0);
            let mx = dc + r + qn.radius();
            let (x_lo, x_hi) = if ctx.karl {
                let (gn, gx) = ball_dist_agg(qn, w, qa, aa);
                let b = tree.weighted_norm2(id);
                (scale * (gn + b), scale * (gx + b))
            } else {
                (0.0, 0.0)
            };
            (scale * (mn * mn), scale * (mx * mx), x_lo, x_hi)
        }
        (QuerySide::Ball(qn), FrozenShapes::Ball { center, radius }, XMode::Ip { gamma, coef0 }) => {
            let c = &center[s..s + d];
            let r = radius[id as usize];
            let (qc, cc, qa, aa) = if ctx.karl {
                ball_ball_ip::<true>(qn, c, a)
            } else {
                ball_ball_ip::<false>(qn, c, &[])
            };
            let pad = qn.radius() * cc.sqrt() + r * qn.norm() + qn.radius() * r;
            let (x_lo, x_hi) = if ctx.karl {
                let ra = qn.radius() * aa.sqrt();
                (
                    gamma * (qa - ra) + coef0 * w,
                    gamma * (qa + ra) + coef0 * w,
                )
            } else {
                (0.0, 0.0)
            };
            (
                gamma * (qc - pad) + coef0,
                gamma * (qc + pad) + coef0,
                x_lo,
                x_hi,
            )
        }
        _ => panic!("dual-tree pair bounds need matching query/data shape families"),
    };
    PairInterval {
        node: id,
        w,
        lo,
        hi,
        x_lo,
        x_hi,
    }
}

/// The dual pass for a gathered list of data nodes: resolves the
/// `(region, shapes, mode)` dispatch once, then streams the batched pair
/// kernels over `ids`, appending one [`PairInterval`] per id to `out`
/// (cleared first) in order. Each per-node probe is the same scalar
/// kernel as [`pair_interval_frozen`], with the query-constant terms
/// hoisted out of the node loop.
pub fn pair_intervals_frozen(
    ctx: &DualQueryContext<'_>,
    tree: &FrozenTree,
    ids: &[NodeId],
    out: &mut Vec<PairInterval>,
) {
    out.clear();
    out.reserve(ids.len());
    let a = tree.weighted_sums();
    let ws = tree.weight_sums();
    let karl = ctx.karl;
    let mut k = 0usize;
    match (&ctx.side, tree.shapes(), ctx.mode) {
        (QuerySide::Rect(qn), FrozenShapes::Rect { lo, hi }, XMode::Dist { scale }) => {
            let mut emit = |mn: f64, mx: f64, gn: f64, gx: f64| {
                let id = ids[k];
                k += 1;
                let w = tree.weight_sum(id);
                let (x_lo, x_hi) = if karl {
                    let b = tree.weighted_norm2(id);
                    (scale * (gn + b), scale * (gx + b))
                } else {
                    (0.0, 0.0)
                };
                out.push(PairInterval {
                    node: id,
                    w,
                    lo: scale * mn,
                    hi: scale * mx,
                    x_lo,
                    x_hi,
                });
            };
            if karl {
                rect_rect_dist_nodes::<true, _>(qn, lo, hi, a, ws, ids, &mut emit);
            } else {
                rect_rect_dist_nodes::<false, _>(qn, lo, hi, &[], ws, ids, &mut emit);
            }
        }
        (QuerySide::Rect(qn), FrozenShapes::Rect { lo, hi }, XMode::Ip { gamma, coef0 }) => {
            let mut emit = |mn: f64, mx: f64, an: f64, ax: f64| {
                let id = ids[k];
                k += 1;
                let w = tree.weight_sum(id);
                let (x_lo, x_hi) = if karl {
                    (gamma * an + coef0 * w, gamma * ax + coef0 * w)
                } else {
                    (0.0, 0.0)
                };
                out.push(PairInterval {
                    node: id,
                    w,
                    lo: gamma * mn + coef0,
                    hi: gamma * mx + coef0,
                    x_lo,
                    x_hi,
                });
            };
            if karl {
                rect_rect_ip_nodes::<true, _>(qn, lo, hi, a, ids, &mut emit);
            } else {
                rect_rect_ip_nodes::<false, _>(qn, lo, hi, &[], ids, &mut emit);
            }
        }
        (QuerySide::Ball(qn), FrozenShapes::Ball { center, radius }, XMode::Dist { scale }) => {
            let mut emit = |d2c: f64, qa: f64, aa: f64| {
                let id = ids[k];
                k += 1;
                let w = tree.weight_sum(id);
                let r = radius[id as usize];
                let dc = d2c.sqrt();
                let mn = (dc - r - qn.radius()).max(0.0);
                let mx = dc + r + qn.radius();
                let (x_lo, x_hi) = if karl {
                    let (gn, gx) = ball_dist_agg(qn, w, qa, aa);
                    let b = tree.weighted_norm2(id);
                    (scale * (gn + b), scale * (gx + b))
                } else {
                    (0.0, 0.0)
                };
                out.push(PairInterval {
                    node: id,
                    w,
                    lo: scale * (mn * mn),
                    hi: scale * (mx * mx),
                    x_lo,
                    x_hi,
                });
            };
            if karl {
                ball_ball_dist_nodes::<true, _>(qn, center, a, ids, &mut emit);
            } else {
                ball_ball_dist_nodes::<false, _>(qn, center, &[], ids, &mut emit);
            }
        }
        (QuerySide::Ball(qn), FrozenShapes::Ball { center, radius }, XMode::Ip { gamma, coef0 }) => {
            let mut emit = |qc: f64, cc: f64, qa: f64, aa: f64| {
                let id = ids[k];
                k += 1;
                let w = tree.weight_sum(id);
                let r = radius[id as usize];
                let pad = qn.radius() * cc.sqrt() + r * qn.norm() + qn.radius() * r;
                let (x_lo, x_hi) = if karl {
                    let ra = qn.radius() * aa.sqrt();
                    (gamma * (qa - ra) + coef0 * w, gamma * (qa + ra) + coef0 * w)
                } else {
                    (0.0, 0.0)
                };
                out.push(PairInterval {
                    node: id,
                    w,
                    lo: gamma * (qc - pad) + coef0,
                    hi: gamma * (qc + pad) + coef0,
                    x_lo,
                    x_hi,
                });
            };
            if karl {
                ball_ball_ip_nodes::<true, _>(qn, center, a, ids, &mut emit);
            } else {
                ball_ball_ip_nodes::<false, _>(qn, center, &[], ids, &mut emit);
            }
        }
        _ => panic!("dual-tree pair bounds need matching query/data shape families"),
    }
    // Zero-weight nodes skip the emit-side math but still occupy a slot
    // in the batched pass; normalize them to the canonical zero record.
    for pi in out.iter_mut() {
        if pi.w <= 0.0 {
            *pi = PairInterval {
                node: pi.node,
                w: pi.w,
                lo: 0.0,
                hi: 0.0,
                x_lo: 0.0,
                x_hi: 0.0,
            };
        }
    }
}

/// The pair analogue of [`finish_karl`]: the envelope lines hold for the
/// whole pair interval, so the worst case over `X ∈ [x_lo, x_hi]` of each
/// line — picked by the slope's sign — bounds every query in the node.
/// Clamp and overflow saturation mirror `finish_karl` exactly.
#[inline]
fn finish_karl_pair(parts: &EnvelopeParts, w: f64, x_lo: f64, x_hi: f64) -> BoundPair {
    let sota_lb = w * parts.fmin;
    let sota_ub = w * parts.fmax;
    let lower = parts.env.lower;
    let upper = parts.env.upper;
    let lb = if lower.m >= 0.0 {
        lower.m * x_lo
    } else {
        lower.m * x_hi
    } + lower.c * w;
    let ub = if upper.m >= 0.0 {
        upper.m * x_hi
    } else {
        upper.m * x_lo
    } + upper.c * w;
    let out = BoundPair {
        lb: lb.max(sota_lb),
        ub: ub.min(sota_ub),
    };
    if out.lb.is_finite() && out.ub.is_finite() {
        return out;
    }
    let sota_lb = sota_lb.clamp(-f64::MAX, f64::MAX);
    let sota_ub = sota_ub.clamp(-f64::MAX, f64::MAX);
    BoundPair {
        lb: if lb.is_finite() { lb.max(sota_lb) } else { sota_lb },
        ub: if ub.is_finite() { ub.min(sota_ub) } else { sota_ub },
    }
}

/// Turns one [`PairInterval`] into a `[LB, UB]` pair certified for
/// **every** query in the query region: `LB ≤ Σᵢ wᵢ·K(q, pᵢ) ≤ UB` for
/// all `q` in the region, the sum over the data node's points.
///
/// Soundness: the envelope is built over the pair's scalar interval, so
/// its lines bound the curve for every `(q, p)` the pair can produce; the
/// anchor `x̄` (the aggregate-interval midpoint) only shapes tightness,
/// never validity. Evaluating each line at its worst end of
/// `[x_lo, x_hi]` then minimizes/maximizes `m·X(q) + c·W` over every
/// admissible aggregate, and the constant `W·[fmin, fmax]` clamp is
/// query-independent.
pub fn assemble_pair(method: BoundMethod, curve: Curve, pi: &PairInterval) -> BoundPair {
    let w = pi.w;
    if w <= 0.0 {
        return BoundPair { lb: 0.0, ub: 0.0 };
    }
    match method {
        BoundMethod::Sota => sota_pair(w, curve.range(pi.lo, pi.hi)),
        BoundMethod::Karl => {
            let xbar = 0.5 * (pi.x_lo + pi.x_hi) / w;
            finish_karl_pair(
                &envelope_parts(curve, pi.lo, pi.hi, xbar),
                w,
                pi.x_lo,
                pi.x_hi,
            )
        }
    }
}

/// Computes the certified `[LB, UB]` pair for one query-region ×
/// data-node pair — [`pair_interval_frozen`] composed with
/// [`assemble_pair`].
pub fn pair_bounds_frozen(
    ctx: &DualQueryContext<'_>,
    tree: &FrozenTree,
    id: NodeId,
) -> BoundPair {
    assemble_pair(
        ctx.method,
        ctx.curve,
        &pair_interval_frozen(ctx, tree, id),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::aggregate_exact;
    use karl_geom::{norm2, Ball, PointSet, Rect};
    use karl_testkit::prop_assert;
    use karl_testkit::rng::StdRng;
    use karl_testkit::rng::{Rng, SeedableRng};
    use karl_tree::{BallTree, KdTree};

    fn random_points(n: usize, d: usize, seed: u64) -> PointSet {
        let mut rng = StdRng::seed_from_u64(seed);
        PointSet::new(d, (0..n * d).map(|_| rng.random_range(-2.0..2.0)).collect())
    }

    fn kernels() -> Vec<Kernel> {
        vec![
            Kernel::gaussian(0.8),
            Kernel::polynomial(0.7, 0.5, 3),
            Kernel::polynomial(0.7, -0.2, 2),
            Kernel::polynomial(0.5, 0.1, 5),
            Kernel::sigmoid(0.9, 0.1),
            Kernel::laplacian(1.1),
        ]
    }

    /// Every node of every tree, for every kernel and both methods, must
    /// bracket the exact node aggregate; and KARL must be at least as tight
    /// as SOTA.
    #[test]
    fn bounds_bracket_exact_node_aggregates() {
        let ps = random_points(200, 3, 42);
        let w: Vec<f64> = (0..200).map(|i| 0.2 + (i % 5) as f64 * 0.3).collect();
        let kd = KdTree::build(ps.clone(), &w, 8);
        let ball = BallTree::build(ps, &w, 8);
        let queries = random_points(5, 3, 43);

        for q in queries.iter() {
            let qn = norm2(q);
            for kernel in kernels() {
                for (_, node) in kd.iter_nodes() {
                    let exact = kernel.eval_range(
                        kd.points(),
                        kd.weights(),
                        kd.norms2(),
                        node.start,
                        node.end,
                        q,
                        qn,
                    );
                    check_node(&kernel, &node.shape, &node.stats, q, qn, exact);
                }
                for (_, node) in ball.iter_nodes() {
                    let exact = kernel.eval_range(
                        ball.points(),
                        ball.weights(),
                        ball.norms2(),
                        node.start,
                        node.end,
                        q,
                        qn,
                    );
                    check_node(&kernel, &node.shape, &node.stats, q, qn, exact);
                }
            }
        }
    }

    fn check_node<S: BoundingShape>(
        kernel: &Kernel,
        shape: &S,
        stats: &NodeStats,
        q: &[f64],
        qn: f64,
        exact: f64,
    ) {
        let tol = 1e-7 * (1.0 + exact.abs());
        let sota = node_bounds(BoundMethod::Sota, kernel, shape, stats, q, qn);
        let karl = node_bounds(BoundMethod::Karl, kernel, shape, stats, q, qn);
        assert!(
            sota.lb <= exact + tol && exact <= sota.ub + tol,
            "SOTA bounds broken for {kernel:?}: {exact} ∉ [{}, {}]",
            sota.lb,
            sota.ub
        );
        assert!(
            karl.lb <= exact + tol && exact <= karl.ub + tol,
            "KARL bounds broken for {kernel:?}: {exact} ∉ [{}, {}]",
            karl.lb,
            karl.ub
        );
        assert!(
            karl.lb + tol >= sota.lb && karl.ub <= sota.ub + tol,
            "KARL looser than SOTA for {kernel:?}"
        );
    }

    #[test]
    fn frontier_passes_bitwise_match_single_node_path() {
        // Over every node of both tree families and every kernel ×
        // method: the batched pass-1 records and the pass-2 assembly
        // (cache on and off) must reproduce `node_bounds_frozen` exactly.
        let ps = random_points(150, 3, 77);
        // Mixed-sign weights with a few zeros so the zero-weight arm is hit.
        let w: Vec<f64> = (0..150)
            .map(|i| match i % 5 {
                0 => 0.0,
                1 => -0.7,
                _ => 0.3 + (i % 3) as f64 * 0.4,
            })
            .map(f64::abs) // node weights are non-negative post P⁺/P⁻ split
            .collect();
        let kd = KdTree::build(ps.clone(), &w, 6).freeze();
        let ball = BallTree::build(ps, &w, 6).freeze();
        let q = [0.4, -1.1, 0.9];

        for kernel in kernels() {
            for method in [BoundMethod::Sota, BoundMethod::Karl] {
                for tree in [&kd, &ball] {
                    let ctx = QueryContext::new(&kernel, method, &q);
                    let ids: Vec<NodeId> = (0..tree.num_nodes() as NodeId).collect();
                    let mut records = Vec::new();
                    node_intervals_frozen(&ctx, tree, &ids, &mut records);
                    assert_eq!(records.len(), ids.len());
                    let mut cache = EnvelopeCache::new();
                    for (iv, &id) in records.iter().zip(&ids) {
                        assert_eq!(iv.node, id);
                        let single = node_interval_frozen(&ctx, tree, id);
                        if single.w > 0.0 {
                            assert_eq!(*iv, single, "{kernel:?}/{method:?} node {id}");
                        }
                        let want = node_bounds_frozen(&ctx, tree, id);
                        let direct =
                            assemble_interval(method, ctx.curve, iv, &mut cache, false);
                        let cached =
                            assemble_interval(method, ctx.curve, iv, &mut cache, true);
                        let recached =
                            assemble_interval(method, ctx.curve, iv, &mut cache, true);
                        assert_eq!(direct, want, "{kernel:?}/{method:?} node {id}");
                        assert_eq!(cached, want, "{kernel:?}/{method:?} node {id} (miss)");
                        assert_eq!(recached, want, "{kernel:?}/{method:?} node {id} (hit)");
                    }
                }
            }
        }
    }

    #[test]
    fn zero_weight_node_bounds_are_zero() {
        let ps = PointSet::new(2, vec![1.0, 1.0, 2.0, 2.0]);
        let w = [0.0, 0.0];
        let stats = NodeStats::from_range(&ps, &w, 0, 2);
        let rect = Rect::bounding(&ps, &[0, 1]);
        let b = node_bounds(
            BoundMethod::Karl,
            &Kernel::gaussian(1.0),
            &rect,
            &stats,
            &[0.0, 0.0],
            0.0,
        );
        assert_eq!(b.lb, 0.0);
        assert_eq!(b.ub, 0.0);
    }

    #[test]
    fn gap_shrinks_relative_to_sota_in_gaussian_case() {
        // KARL's headline claim, checked on a concrete node.
        let ps = random_points(64, 4, 7);
        let w = vec![1.0; 64];
        let stats = NodeStats::from_range(&ps, &w, 0, 64);
        let idx: Vec<usize> = (0..64).collect();
        let rect = Rect::bounding(&ps, &idx);
        let q = vec![3.0, -3.0, 3.0, -3.0]; // outside the data cloud
        let qn = norm2(&q);
        let kernel = Kernel::gaussian(0.3);
        let sota = node_bounds(BoundMethod::Sota, &kernel, &rect, &stats, &q, qn);
        let karl = node_bounds(BoundMethod::Karl, &kernel, &rect, &stats, &q, qn);
        assert!(karl.gap() < sota.gap());
    }

    #[test]
    fn bounds_exact_for_point_node() {
        // A node covering a single point must produce exact bounds for the
        // Gaussian kernel (interval degenerates).
        let ps = PointSet::new(2, vec![0.5, -0.5]);
        let w = [2.0];
        let stats = NodeStats::from_range(&ps, &w, 0, 1);
        let ball = Ball::new(vec![0.5, -0.5], 0.0);
        let q = [1.0, 1.0];
        let kernel = Kernel::gaussian(1.0);
        let exact = 2.0 * kernel.eval(&q, &[0.5, -0.5]);
        let b = node_bounds(BoundMethod::Karl, &kernel, &ball, &stats, &q, norm2(&q));
        assert!((b.lb - exact).abs() < 1e-10);
        assert!((b.ub - exact).abs() < 1e-10);
    }

    karl_testkit::props! {
        /// Randomized version of the bracketing + tightness invariants.
        #[test]
        fn prop_bounds_bracket_and_karl_tighter(
            n in 1usize..30,
            seed in 0u64..300,
            kid in 0usize..6,
            qseed in 0u64..100,
        ) {
            let ps = random_points(n, 2, seed);
            let w: Vec<f64> = (0..n).map(|i| 0.1 + (i % 4) as f64).collect();
            let stats = NodeStats::from_range(&ps, &w, 0, n);
            let idx: Vec<usize> = (0..n).collect();
            let rect = Rect::bounding(&ps, &idx);
            let mut rng = StdRng::seed_from_u64(qseed);
            let q = [rng.random_range(-3.0..3.0), rng.random_range(-3.0..3.0)];
            let qn = norm2(&q);
            let kernel = kernels()[kid];
            let exact = aggregate_exact(&kernel, &ps, &w, &q);
            let tol = 1e-7 * (1.0 + exact.abs());
            let sota = node_bounds(BoundMethod::Sota, &kernel, &rect, &stats, &q, qn);
            let karl = node_bounds(BoundMethod::Karl, &kernel, &rect, &stats, &q, qn);
            prop_assert!(sota.lb <= exact + tol && exact <= sota.ub + tol);
            prop_assert!(karl.lb <= exact + tol && exact <= karl.ub + tol);
            prop_assert!(karl.lb + tol >= sota.lb);
            prop_assert!(karl.ub <= sota.ub + tol);
        }
    }

    /// Dual-tree pair bounds: for every data node and every query sampled
    /// inside the query region, the certified pair interval must bracket
    /// the exact node aggregate — both methods, both families, every
    /// kernel. The batched pass must match the single-pair pass bitwise.
    fn check_pair_family<S: karl_tree::NodeShape>(region: QueryRegion<'_>, queries: &[Vec<f64>]) {
        let ps = random_points(160, 3, 7);
        let w: Vec<f64> = (0..160).map(|i| 0.2 + (i % 5) as f64 * 0.3).collect();
        let (tree, frozen) = karl_tree::freeze_built::<S>(ps.clone(), &w, 6);
        for kernel in kernels() {
            for method in [BoundMethod::Sota, BoundMethod::Karl] {
                let ctx = DualQueryContext::new(&kernel, method, region.clone());
                let ids: Vec<NodeId> = (0..frozen.num_nodes() as NodeId).collect();
                let mut batched = Vec::new();
                pair_intervals_frozen(&ctx, &frozen, &ids, &mut batched);
                for &id in &ids {
                    let pi = pair_interval_frozen(&ctx, &frozen, id);
                    assert_eq!(batched[id as usize], pi, "batched pair mismatch at {id}");
                    let b = assemble_pair(method, kernel.curve(), &pi);
                    assert_eq!(
                        pair_bounds_frozen(&ctx, &frozen, id),
                        b,
                        "pair_bounds_frozen composition"
                    );
                    let (start, end) = frozen.range(id);
                    for q in queries {
                        let exact = kernel.eval_range(
                            tree.points(),
                            tree.weights(),
                            tree.norms2(),
                            start,
                            end,
                            q,
                            norm2(q),
                        );
                        let tol = 1e-7 * (1.0 + exact.abs());
                        assert!(
                            b.lb <= exact + tol && exact <= b.ub + tol,
                            "{kernel:?} {method:?} node {id}: [{}, {}] misses {exact}",
                            b.lb,
                            b.ub
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn pair_bounds_bracket_every_query_in_the_region() {
        let qlo = [-1.0, -0.5, 0.0];
        let qhi = [0.5, 0.75, 1.25];
        let mut rng = StdRng::seed_from_u64(99);
        let mut queries: Vec<Vec<f64>> = (0..12)
            .map(|_| {
                (0..3)
                    .map(|j| rng.random_range(qlo[j]..qhi[j]))
                    .collect::<Vec<f64>>()
            })
            .collect();
        queries.push(qlo.to_vec());
        queries.push(qhi.to_vec());
        check_pair_family::<Rect>(QueryRegion::Rect { lo: &qlo, hi: &qhi }, &queries);
        // A ball region concentric with the MBR and large enough to
        // enclose it covers the same sampled queries.
        let qcenter = [-0.25, 0.125, 0.625];
        let qradius = norm2(&[0.75, 0.625, 0.625]).sqrt() + 1e-12;
        check_pair_family::<Ball>(
            QueryRegion::Ball {
                center: &qcenter,
                radius: qradius,
            },
            &queries,
        );
    }

    /// A zero-volume query region holding a single query point must agree
    /// with the per-query frozen bounds (up to reduction rounding).
    #[test]
    fn degenerate_pair_region_matches_per_query_bounds() {
        let ps = random_points(120, 3, 11);
        let w: Vec<f64> = (0..120).map(|i| 0.3 + (i % 3) as f64 * 0.5).collect();
        let (_, frozen) = karl_tree::freeze_built::<Rect>(ps, &w, 5);
        let q = [0.3, -0.8, 1.1];
        for kernel in kernels() {
            for method in [BoundMethod::Sota, BoundMethod::Karl] {
                let qctx = QueryContext::new(&kernel, method, &q);
                let dctx =
                    DualQueryContext::new(&kernel, method, QueryRegion::Rect { lo: &q, hi: &q });
                for id in 0..frozen.num_nodes() as NodeId {
                    let single = node_bounds_frozen(&qctx, &frozen, id);
                    let pair = pair_bounds_frozen(&dctx, &frozen, id);
                    let tol = 1e-9 * (1.0 + single.lb.abs().max(single.ub.abs()));
                    assert!(
                        (pair.lb - single.lb).abs() <= tol && (pair.ub - single.ub).abs() <= tol,
                        "{kernel:?} {method:?} node {id}: pair [{}, {}] vs single [{}, {}]",
                        pair.lb,
                        pair.ub,
                        single.lb,
                        single.ub
                    );
                }
            }
        }
    }
}
