//! Ablation: gap-priority refinement (the paper's framework) versus plain
//! breadth-first (FIFO) refinement, both with KARL bounds. Shows how much
//! of the win comes from *where* the framework refines, not just from the
//! bounds.

mod common;

use karl_testkit::bench::black_box;
use karl_bench::fifo::FifoEvaluator;
use karl_bench::workloads::build_type1;
use karl_core::{BoundMethod, Evaluator};
use karl_geom::Rect;

fn main() {
    let mut c = common::criterion();
    let cfg = common::bench_config();
    let w = build_type1("home", &cfg);
    let gap =
        Evaluator::<Rect>::build(&w.points, &w.weights, w.kernel, BoundMethod::Karl, 40);
    let fifo = FifoEvaluator::build(&w.points, &w.weights, w.kernel, BoundMethod::Karl, 40);

    // Report the iteration-count difference once.
    let mut gap_iters = 0usize;
    let mut fifo_iters = 0usize;
    for q in w.queries.iter() {
        gap_iters += gap
            .run_query(q, karl_core::Query::Tkaq { tau: w.tau }, None)
            .iterations;
        fifo_iters += fifo.tkaq(q, w.tau).1;
    }
    eprintln!(
        "ablation queue: gap-priority {:.1} iters/q vs FIFO {:.1} iters/q",
        gap_iters as f64 / w.queries.len() as f64,
        fifo_iters as f64 / w.queries.len() as f64
    );

    let mut group = c.benchmark_group("ablation_queue");
    {
        let queries = &w.queries;
        let mut qi = 0usize;
        group.bench_function("gap_priority", |b| {
            b.iter(|| {
                qi = (qi + 1) % queries.len();
                black_box(gap.tkaq(queries.point(qi), w.tau))
            })
        });
    }
    {
        let queries = &w.queries;
        let mut qi = 0usize;
        group.bench_function("fifo", |b| {
            b.iter(|| {
                qi = (qi + 1) % queries.len();
                black_box(fifo.tkaq(queries.point(qi), w.tau))
            })
        });
    }
    group.finish();
    c.final_summary();
}
