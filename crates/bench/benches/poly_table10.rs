//! Table X (bench-sized): polynomial-kernel (degree 3) threshold queries,
//! scan vs SOTA vs KARL, on a 2-class SVM workload in `[−1, 1]^d`.

mod common;

use karl_testkit::bench::black_box;
use karl_bench::workloads::{build_type3, KernelFamily};
use karl_core::{AnyEvaluator, BoundMethod, IndexKind, Scan};

fn main() {
    let mut c = common::criterion();
    let cfg = common::bench_config();
    let w = build_type3("ijcnn1", KernelFamily::Polynomial, &cfg);
    let scan = Scan::new(w.points.clone(), w.weights.clone(), w.kernel);
    let mut group = c.benchmark_group("table10_polynomial");
    {
        let queries = &w.queries;
        let mut qi = 0usize;
        group.bench_function("scan", |b| {
            b.iter(|| {
                qi = (qi + 1) % queries.len();
                black_box(scan.tkaq(queries.point(qi), w.tau))
            })
        });
    }
    for (name, method) in [("sota", BoundMethod::Sota), ("karl", BoundMethod::Karl)] {
        let eval = AnyEvaluator::build(
            IndexKind::Kd,
            &w.points,
            &w.weights,
            w.kernel,
            method,
            40,
        );
        let queries = &w.queries;
        let mut qi = 0usize;
        group.bench_function(name, |b| {
            b.iter(|| {
                qi = (qi + 1) % queries.len();
                black_box(eval.tkaq(queries.point(qi), w.tau))
            })
        });
    }
    group.finish();
    c.final_summary();
}
