//! Figure 11 (bench-sized): I-τ query cost vs dataset size on susy
//! subsamples, SOTA vs KARL.

mod common;

use karl_testkit::bench::black_box;
use karl_bench::workloads::build_type1_from_points;
use karl_core::{AnyEvaluator, BoundMethod, IndexKind};
use karl_data::{by_name, subsample};

fn main() {
    let mut c = common::criterion();
    let cfg = common::bench_config();
    let full = by_name("susy").unwrap().generate_n(4_000);
    let mut group = c.benchmark_group("fig11_size");
    for n in [1_000usize, 2_000, 4_000] {
        let pts = subsample(&full.points, n, 1);
        let w = build_type1_from_points("susy", pts, &cfg);
        for (mname, method) in [("sota", BoundMethod::Sota), ("karl", BoundMethod::Karl)] {
            let eval = AnyEvaluator::build(
                IndexKind::Kd,
                &w.points,
                &w.weights,
                w.kernel,
                method,
                80,
            );
            let queries = w.queries.clone();
            let tau = w.tau;
            let mut qi = 0usize;
            group.bench_function(format!("n{n}/{mname}"), move |b| {
                b.iter(|| {
                    qi = (qi + 1) % queries.len();
                    black_box(eval.tkaq(queries.point(qi), tau))
                })
            });
        }
    }
    group.finish();
    c.final_summary();
}
