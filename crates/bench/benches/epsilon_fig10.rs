//! Figure 10 (bench-sized): I-ε query cost across ε ∈ {0.05, 0.3}, SOTA vs
//! KARL.

mod common;

use karl_testkit::bench::black_box;
use karl_bench::workloads::build_type1;
use karl_core::{AnyEvaluator, BoundMethod, IndexKind};

fn main() {
    let mut c = common::criterion();
    let cfg = common::bench_config();
    let w = build_type1("home", &cfg);
    let mut group = c.benchmark_group("fig10_epsilon");
    for eps in [0.05, 0.3] {
        for (mname, method) in [("sota", BoundMethod::Sota), ("karl", BoundMethod::Karl)] {
            let eval = AnyEvaluator::build(
                IndexKind::Kd,
                &w.points,
                &w.weights,
                w.kernel,
                method,
                80,
            );
            let queries = &w.queries;
            let mut qi = 0usize;
            group.bench_function(format!("eps{eps}/{mname}"), |b| {
                b.iter(|| {
                    qi = (qi + 1) % queries.len();
                    black_box(eval.ekaq(queries.point(qi), eps))
                })
            });
        }
    }
    group.finish();
    c.final_summary();
}
