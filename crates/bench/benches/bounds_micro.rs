//! Micro-benchmark: cost of one per-node bound evaluation, SOTA vs KARL,
//! for each kernel family. KARL's linear bounds must stay within a small
//! constant factor of SOTA's constant bounds (both are O(d)) — this is the
//! premise that lets the tighter bounds win overall.

mod common;

use karl_testkit::bench::{black_box, Criterion};
use karl_bench::workloads::build_type1;
use karl_core::{node_bounds, BoundMethod, Kernel};
use karl_geom::norm2;
use karl_tree::KdTree;

fn main() {
    let mut c = common::criterion();
    bench(&mut c);
    c.final_summary();
}

fn bench(c: &mut Criterion) {
    let cfg = common::bench_config();
    let w = build_type1("home", &cfg);
    let tree = KdTree::build(w.points.clone(), &w.weights, 64);
    let node = tree.node(tree.root());
    let q = w.queries.point(0).to_vec();
    let qn = norm2(&q);

    let kernels = [
        ("gaussian", w.kernel),
        ("poly3", Kernel::polynomial(0.1, 0.0, 3)),
        ("sigmoid", Kernel::sigmoid(0.1, 0.0)),
    ];
    let mut group = c.benchmark_group("node_bounds");
    for (kname, kernel) in kernels {
        for (mname, method) in [("sota", BoundMethod::Sota), ("karl", BoundMethod::Karl)] {
            group.bench_function(format!("{kname}/{mname}"), |b| {
                b.iter(|| {
                    black_box(node_bounds(
                        method,
                        &kernel,
                        &node.shape,
                        &node.stats,
                        black_box(&q),
                        qn,
                    ))
                })
            });
        }
    }
    group.finish();
}
