//! Figure 12 (bench-sized): I-τ query cost vs PCA dimensionality on a
//! small mnist sample, SOTA vs KARL.

mod common;

use karl_testkit::bench::black_box;
use karl_bench::workloads::build_type1_from_points;
use karl_core::{AnyEvaluator, BoundMethod, IndexKind};
use karl_data::{by_name, normalize_unit, Pca};

fn main() {
    let mut c = common::criterion();
    let cfg = common::bench_config();
    // A small mnist draw keeps the 784-d PCA fit to a couple of seconds.
    let ds = by_name("mnist").unwrap().generate_n(1_500);
    let pca = Pca::fit(&ds.points);
    let mut group = c.benchmark_group("fig12_dims");
    for dims in [16usize, 64, 256] {
        let pts = normalize_unit(&pca.project(&ds.points, dims));
        let w = build_type1_from_points("mnist", pts, &cfg);
        for (mname, method) in [("sota", BoundMethod::Sota), ("karl", BoundMethod::Karl)] {
            let eval = AnyEvaluator::build(
                IndexKind::Kd,
                &w.points,
                &w.weights,
                w.kernel,
                method,
                80,
            );
            let queries = w.queries.clone();
            let tau = w.tau;
            let mut qi = 0usize;
            group.bench_function(format!("d{dims}/{mname}"), move |b| {
                b.iter(|| {
                    qi = (qi + 1) % queries.len();
                    black_box(eval.tkaq(queries.point(qi), tau))
                })
            });
        }
    }
    group.finish();
    c.final_summary();
}
