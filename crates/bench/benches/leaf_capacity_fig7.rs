//! Figure 7 (bench-sized): KARL I-τ query cost vs leaf capacity, kd-tree
//! vs ball-tree.

mod common;

use karl_testkit::bench::black_box;
use karl_bench::workloads::build_type1;
use karl_core::{AnyEvaluator, BoundMethod, IndexKind};

fn main() {
    let mut c = common::criterion();
    let cfg = common::bench_config();
    let w = build_type1("home", &cfg);
    let mut group = c.benchmark_group("fig7_leaf_capacity");
    for kind in [IndexKind::Kd, IndexKind::Ball] {
        for cap in [10usize, 80, 640] {
            let eval =
                AnyEvaluator::build(kind, &w.points, &w.weights, w.kernel, BoundMethod::Karl, cap);
            let queries = &w.queries;
            let mut qi = 0usize;
            group.bench_function(format!("{kind:?}/leaf{cap}"), |b| {
                b.iter(|| {
                    qi = (qi + 1) % queries.len();
                    black_box(eval.tkaq(queries.point(qi), w.tau))
                })
            });
        }
    }
    group.finish();
    c.final_summary();
}
