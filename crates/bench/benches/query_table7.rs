//! Table VII (bench-sized): end-to-end query cost of SCAN / LIBSVM-style /
//! SOTA / KARL for the four query types on 2 000-point workloads.

mod common;

use karl_testkit::bench::{black_box, Criterion};
use karl_bench::workloads::{build_type1, build_type2, build_type3, KernelFamily, Workload};
use karl_core::{AnyEvaluator, BoundMethod, IndexKind, LibSvmScan, Query, Scan};

fn main() {
    let mut c = common::criterion();
    let cfg = common::bench_config();

    let w1 = build_type1("home", &cfg);
    run_group(&mut c, "I-eps/home", &w1, Query::Ekaq { eps: 0.2 });
    let q = Query::Tkaq { tau: w1.tau };
    run_group(&mut c, "I-tau/home", &w1, q);
    let w2 = build_type2("nsl-kdd", KernelFamily::Gaussian, &cfg);
    let q = Query::Tkaq { tau: w2.tau };
    run_group(&mut c, "II-tau/nsl-kdd", &w2, q);
    let w3 = build_type3("ijcnn1", KernelFamily::Gaussian, &cfg);
    let q = Query::Tkaq { tau: w3.tau };
    run_group(&mut c, "III-tau/ijcnn1", &w3, q);
    c.final_summary();
}

fn run_group(c: &mut Criterion, label: &str, w: &Workload, query: Query) {
    let mut group = c.benchmark_group(format!("table7/{label}"));
    let scan = Scan::new(w.points.clone(), w.weights.clone(), w.kernel);
    let libsvm = LibSvmScan::new(w.points.clone(), w.weights.clone(), w.kernel);
    let sota = AnyEvaluator::build(
        IndexKind::Kd,
        &w.points,
        &w.weights,
        w.kernel,
        BoundMethod::Sota,
        80,
    );
    let karl = AnyEvaluator::build(
        IndexKind::Kd,
        &w.points,
        &w.weights,
        w.kernel,
        BoundMethod::Karl,
        80,
    );
    let queries = &w.queries;
    let mut qi = 0usize;
    let mut next = move || {
        qi = (qi + 1) % queries.len();
        queries.point(qi)
    };
    group.bench_function("scan", |b| {
        b.iter(|| match query {
            Query::Tkaq { tau } => black_box(scan.tkaq(next(), tau)),
            Query::Ekaq { eps } => black_box(scan.ekaq(next(), eps) > 0.0),
            Query::Within { .. } => unreachable!("bench uses TKAQ/eKAQ only"),
        })
    });
    let mut qi2 = 0usize;
    let queries2 = &w.queries;
    let mut next2 = move || {
        qi2 = (qi2 + 1) % queries2.len();
        queries2.point(qi2)
    };
    if let Query::Tkaq { tau } = query {
        group.bench_function("libsvm", |b| b.iter(|| black_box(libsvm.tkaq(next2(), tau))));
    }
    for (name, eval) in [("sota", &sota), ("karl", &karl)] {
        let queries3 = &w.queries;
        let mut qi3 = 0usize;
        group.bench_function(name, |b| {
            b.iter(|| {
                qi3 = (qi3 + 1) % queries3.len();
                black_box(eval.answer(queries3.point(qi3), query))
            })
        });
    }
    group.finish();
}
